// Co-design of analytics and storage: refactor all three evaluation datasets
// onto a deep (4-tier) hierarchy and show where every product lands, how much
// capacity each tier consumes, and what each access pattern costs.
//
//   $ ./tiered_storage_pipeline [--scale=0.5]
//
// Demonstrates the Fig. 1 / Fig. 2 story: base datasets on NVRAM-class
// storage, deltas cascading down to the parallel file system and campaign
// storage, and the bypass rule when a tier fills up.

#include <cstdio>

#include "core/canopus.hpp"
#include "sim/datasets.hpp"
#include "storage/hierarchy.hpp"
#include "util/cli.hpp"

using namespace canopus;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 0.5);

  // A deep hierarchy: NVRAM / SSD / Lustre / campaign. The NVRAM tier is
  // deliberately small so large products overflow downward.
  storage::StorageHierarchy tiers({
      storage::nvram_spec(256 << 10),
      storage::ssd_spec(8 << 20),
      storage::lustre_spec(1 << 30),
      storage::campaign_spec(8ull << 30),
  });

  Pipeline pipeline(tiers);
  core::RefactorConfig config;
  config.levels = 4;
  config.codec = "zfp";
  config.error_bound = 1e-5;

  std::printf("%-9s %-8s %-6s %10s %10s  %s\n", "dataset", "product", "level",
              "raw KiB", "stored KiB", "tier");
  for (const auto& ds : sim::all_datasets(scale)) {
    WriteRequest wreq;
    wreq.path = ds.name + ".bp";
    wreq.var = ds.variable;
    wreq.mesh = &ds.mesh;
    wreq.values = &ds.values;
    wreq.config = config;
    WriteResult wres;
    const Status ws = pipeline.write(wreq, &wres);
    if (!ws.ok()) {
      std::printf("write of %s failed: %s\n", ds.name.c_str(),
                  ws.to_string().c_str());
      return 1;
    }
    for (const auto& p : wres.report.products) {
      std::printf("%-9s %-8s %-6u %10.1f %10.1f  %u (%s)\n", ds.name.c_str(),
                  p.name.c_str(), p.level,
                  static_cast<double>(p.raw_bytes) / 1024.0,
                  static_cast<double>(p.stored_bytes) / 1024.0, p.tier,
                  tiers.tier(p.tier).spec().name.c_str());
    }
  }

  std::printf("\ntier occupancy:\n");
  for (std::size_t i = 0; i < tiers.tier_count(); ++i) {
    const auto& t = tiers.tier(i);
    std::printf("  %-10s %8.1f / %10.1f KiB used\n", t.spec().name.c_str(),
                static_cast<double>(t.used_bytes()) / 1024.0,
                static_cast<double>(t.spec().capacity_bytes) / 1024.0);
  }

  // Access-cost story: reading the base vs restoring everything.
  std::printf("\naccess costs (simulated):\n");
  for (const char* name : {"xgc1", "genasis", "cfd"}) {
    const std::string var = std::string(name) == "xgc1"      ? "dpot"
                            : std::string(name) == "genasis" ? "normVec"
                                                             : "pressure";
    ReadRequest rreq;
    rreq.path = std::string(name) + ".bp";
    rreq.var = var;
    // Base only: the coarsest stored level (levels - 1).
    rreq.target_level = static_cast<std::uint32_t>(config.levels - 1);
    ReadResult base;
    if (!pipeline.read(rreq, &base).usable()) return 1;
    const double base_io = base.timings.io_seconds;
    rreq.target_level = 0;  // full accuracy
    ReadResult full;
    if (!pipeline.read(rreq, &full).usable()) return 1;
    std::printf("  %-9s base-only io %7.3f ms   full-restore io %7.3f ms (%.1fx)\n",
                name, base_io * 1e3, full.timings.io_seconds * 1e3,
                full.timings.io_seconds / base_io);
  }
  return 0;
}
