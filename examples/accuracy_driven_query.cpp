// Accuracy-driven, automated progressive retrieval (Section III-E): the user
// declares an RMSE tolerance instead of a level; Canopus keeps fetching
// deltas until consecutive levels stop changing the field by more than the
// tolerance, and reports how much I/O the early exit saved.
//
//   $ ./accuracy_driven_query [--rmse=0.01]

#include <cstdio>

#include "core/canopus.hpp"
#include "sim/datasets.hpp"
#include "storage/hierarchy.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"

using namespace canopus;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const double rmse = cli.get_double("rmse", 0.1);

  sim::GenasisOptions opt;  // smooth astrophysics field: refines converge fast
  opt.rings = 96;
  opt.sectors = 380;
  const auto ds = sim::make_genasis_dataset(opt);

  storage::StorageHierarchy tiers(
      {storage::tmpfs_spec(2 << 20), storage::lustre_spec(1 << 30)});
  Pipeline pipeline(tiers);
  WriteRequest wreq;
  wreq.path = "g.bp";
  wreq.var = ds.variable;
  wreq.mesh = &ds.mesh;
  wreq.values = &ds.values;
  wreq.config.levels = 5;
  wreq.config.codec = "zfp";
  wreq.config.error_bound = 1e-6;
  if (!pipeline.write(wreq).ok()) return 1;

  // The accuracy-driven query: declare an RMSE tolerance, not a level.
  ReadRequest rreq;
  rreq.path = "g.bp";
  rreq.var = ds.variable;
  rreq.rmse_threshold = rmse;
  ReadResult result;
  if (!pipeline.read(rreq, &result).usable()) return 1;
  std::printf("declared tolerance: rmse < %g between adjacent levels\n\n", rmse);
  std::printf("stopped at level %u of %zu, io %.3f ms\n", result.level,
              static_cast<std::size_t>(wreq.config.levels),
              result.timings.io_seconds * 1e3);

  ReadRequest full_req;
  full_req.path = "g.bp";
  full_req.var = ds.variable;
  full_req.target_level = 0;
  ReadResult full;
  if (!pipeline.read(full_req, &full).usable()) return 1;
  std::printf("full accuracy would cost io %.3f ms -> early exit saved %.0f%%\n",
              full.timings.io_seconds * 1e3,
              100.0 * (1.0 - result.timings.io_seconds /
                                 full.timings.io_seconds));

  // How far is the early-exit field from the truth?
  if (result.level > 0) {
    // Compare on the common support by decimating the truth is nontrivial;
    // instead report the RMS of the remaining deltas as an upper bound.
    std::printf("(remaining levels carry the residual detail below rmse %g)\n",
                rmse);
  } else {
    std::printf("full accuracy reached; max error %.2e\n",
                util::max_abs_error(ds.values, result.values));
  }
  return 0;
}
