// Accuracy-driven, automated progressive retrieval (Section III-E): the user
// declares an RMSE tolerance instead of a level; Canopus keeps fetching
// deltas until consecutive levels stop changing the field by more than the
// tolerance, and reports how much I/O the early exit saved.
//
//   $ ./accuracy_driven_query [--rmse=0.01]

#include <cstdio>

#include "core/canopus.hpp"
#include "sim/datasets.hpp"
#include "storage/hierarchy.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"

using namespace canopus;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const double rmse = cli.get_double("rmse", 0.1);

  sim::GenasisOptions opt;  // smooth astrophysics field: refines converge fast
  opt.rings = 96;
  opt.sectors = 380;
  const auto ds = sim::make_genasis_dataset(opt);

  storage::StorageHierarchy tiers(
      {storage::tmpfs_spec(2 << 20), storage::lustre_spec(1 << 30)});
  core::RefactorConfig config;
  config.levels = 5;
  config.codec = "zfp";
  config.error_bound = 1e-6;
  core::refactor_and_write(tiers, "g.bp", ds.variable, ds.mesh, ds.values, config);

  core::ProgressiveReader reader(tiers, "g.bp", ds.variable);
  std::printf("declared tolerance: rmse < %g between adjacent levels\n\n", rmse);
  reader.refine_until(rmse);
  std::printf("stopped at level %u of %zu (decimation %.1fx), io %.3f ms\n",
              reader.current_level(), reader.level_count(),
              reader.decimation_ratio(), reader.cumulative().io_seconds * 1e3);

  core::ProgressiveReader full(tiers, "g.bp", ds.variable);
  full.refine_to(0);
  std::printf("full accuracy would cost io %.3f ms -> early exit saved %.0f%%\n",
              full.cumulative().io_seconds * 1e3,
              100.0 * (1.0 - reader.cumulative().io_seconds /
                                 full.cumulative().io_seconds));

  // How far is the early-exit field from the truth?
  if (!reader.at_full_accuracy()) {
    // Compare on the common support by decimating the truth is nontrivial;
    // instead report the RMS of the remaining deltas as an upper bound.
    std::printf("(remaining levels carry the residual detail below rmse %g)\n",
                rmse);
  } else {
    std::printf("full accuracy reached; max error %.2e\n",
                util::max_abs_error(ds.values, reader.values()));
  }
  return 0;
}
