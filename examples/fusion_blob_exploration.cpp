// The paper's flagship use case (Section IV-D): progressive blob detection on
// fusion (XGC1-like) data.
//
//   $ ./fusion_blob_exploration [--levels=6] [--raster=300] [--out=/tmp]
//
// A scientist scans for high-electric-potential blobs on the cheap base
// dataset first, then zooms in by refining accuracy only as far as the
// features require. The example prints blob statistics per accuracy level and
// dumps a PGM panel per level (the macroscopic view of Fig. 7).

#include <algorithm>
#include <cstdio>

#include "analytics/blob.hpp"
#include "analytics/raster.hpp"
#include "core/canopus.hpp"
#include "mesh/mesh_io.hpp"
#include "sim/datasets.hpp"
#include "storage/hierarchy.hpp"
#include "util/cli.hpp"

using namespace canopus;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto levels = static_cast<std::size_t>(cli.get_int("levels", 6));
  const auto raster_px = static_cast<std::size_t>(cli.get_int("raster", 300));
  const auto out_dir = cli.get("out", "/tmp");

  // Synthetic stand-in for one XGC1 dpot plane (~20.7k vertices).
  std::vector<sim::BlobSpec> truth;
  const auto ds = sim::make_xgc_dataset({}, &truth);
  std::printf("xgc1 dpot plane: %zu vertices, %zu triangles, %zu injected blobs\n",
              ds.mesh.vertex_count(), ds.mesh.triangle_count(), truth.size());

  storage::StorageHierarchy tiers(
      {storage::tmpfs_spec(1 << 20), storage::lustre_spec(1 << 30)});
  core::RefactorConfig config;
  config.levels = levels;
  config.codec = "zfp";
  config.error_bound = 1e-4;
  core::refactor_and_write(tiers, "xgc.bp", "dpot", ds.mesh, ds.values, config);

  // Fixed raster frame and intensity range from the full-accuracy data so
  // images at every level are comparable.
  const auto bounds = ds.mesh.bounds();
  const auto [lo_it, hi_it] = std::minmax_element(ds.values.begin(), ds.values.end());
  const double lo = *lo_it, hi = *hi_it;

  analytics::BlobParams params;  // the paper's Config1: <10, 200, 100>
  params.min_threshold = 10;
  params.max_threshold = 200;
  params.min_area = 100;

  // Reference blobs from the full-accuracy field.
  const auto full_raster = analytics::rasterize(ds.mesh, ds.values, raster_px,
                                                raster_px, bounds, lo);
  const auto reference = analytics::detect_blobs(
      analytics::to_gray8(full_raster, lo, hi), raster_px, raster_px, params);
  std::printf("reference (L0): %zu blobs detected\n\n", reference.size());

  core::ProgressiveReader reader(tiers, "xgc.bp", "dpot");
  std::printf("%-6s %-10s %-7s %-9s %-9s %-8s %s\n", "level", "decimation",
              "blobs", "avg-diam", "area", "overlap", "cumulative-io(ms)");
  for (;;) {
    const auto raster = analytics::rasterize(reader.current_mesh(), reader.values(),
                                             raster_px, raster_px, bounds, lo);
    const auto img = analytics::to_gray8(raster, lo, hi);
    const auto blobs = analytics::detect_blobs(img, raster_px, raster_px, params);
    const auto stats = analytics::summarize(blobs);
    const double overlap = analytics::overlap_ratio(blobs, reference);
    std::printf("L%-5u %-10.1f %-7zu %-9.1f %-9.0f %-8.2f %.2f\n",
                reader.current_level(), reader.decimation_ratio(), stats.count,
                stats.mean_diameter, stats.aggregate_area, overlap,
                reader.cumulative().io_seconds * 1e3);
    mesh::save_pgm(img, raster_px, raster_px,
                   out_dir + "/blobs_L" + std::to_string(reader.current_level()) +
                       ".pgm");
    if (reader.at_full_accuracy()) break;
    reader.refine();
  }
  std::printf("\npanels written to %s/blobs_L*.pgm (Fig. 7 style)\n",
              out_dir.c_str());
  return 0;
}
