// Quickstart: refactor a simulation variable with Canopus, then read it back
// progressively at increasing accuracy.
//
//   $ ./quickstart
//
// Walks the full write path (decimate -> delta -> compress -> place) and the
// full read path (base -> refine -> refine), printing sizes and timings.

#include <cstdio>

#include "core/canopus.hpp"
#include "mesh/generators.hpp"
#include "storage/hierarchy.hpp"
#include "util/stats.hpp"

using namespace canopus;

int main() {
  // 1. A two-tier storage hierarchy: fast-but-small tmpfs over a large PFS.
  storage::StorageHierarchy tiers(
      {storage::tmpfs_spec(4 << 20), storage::lustre_spec(1 << 30)});

  // 2. Simulation output: a scalar field on an unstructured triangular mesh.
  const auto mesh = mesh::make_annulus_mesh(48, 240, 0.3, 1.0, 0.12, 42);
  mesh::Field values(mesh.vertex_count());
  for (mesh::VertexId v = 0; v < mesh.vertex_count(); ++v) {
    const auto p = mesh.vertex(v);
    values[v] = std::sin(3.0 * p.x) * std::cos(4.0 * p.y);
  }
  std::printf("simulation output: %zu vertices, %zu triangles (%.1f KiB raw)\n",
              mesh.vertex_count(), mesh.triangle_count(),
              static_cast<double>(values.size() * sizeof(double)) / 1024.0);

  // 3. Refactor into 3 accuracy levels and write across the tiers, through
  //    the Pipeline facade: option-struct request in, Status out.
  Pipeline pipeline(tiers);
  WriteRequest wreq;
  wreq.path = "quickstart.bp";
  wreq.var = "field";
  wreq.mesh = &mesh;
  wreq.values = &values;
  wreq.config.levels = 3;          // L0 (full), L1 (2x), L2 (4x, the base)
  wreq.config.codec = "zfp";
  wreq.config.error_bound = 1e-6;  // absolute bound per stored product
  WriteResult wres;
  const Status ws = pipeline.write(wreq, &wres);
  if (!ws.ok()) {
    std::printf("write failed: %s\n", ws.to_string().c_str());
    return 1;
  }
  const auto& report = wres.report;

  std::printf("\nrefactored products:\n");
  for (const auto& p : report.products) {
    std::printf("  %-7s level %u  %7.1f KiB -> %7.1f KiB  on tier %u (%s)\n",
                p.name.c_str(), p.level,
                static_cast<double>(p.raw_bytes) / 1024.0,
                static_cast<double>(p.stored_bytes) / 1024.0, p.tier,
                tiers.tier(p.tier).spec().name.c_str());
  }

  // 4. Progressive read-back: open at base accuracy, then refine on demand.
  //    (pipeline.read() would fetch a target level in one call; open() hands
  //    out the step-wise reader for interactive refinement.)
  ReadRequest rreq;
  rreq.path = "quickstart.bp";
  rreq.var = "field";
  std::unique_ptr<core::ProgressiveReader> reader;
  const Status rs = pipeline.open(rreq, &reader);
  if (!rs.ok()) {
    std::printf("open failed: %s\n", rs.to_string().c_str());
    return 1;
  }
  std::printf("\nprogressive retrieval:\n");
  std::printf("  level %u (base): %zu vertices, decimation %.1fx, io %.2f ms\n",
              reader->current_level(), reader->values().size(),
              reader->decimation_ratio(),
              reader->cumulative().io_seconds * 1e3);
  while (!reader->at_full_accuracy()) {
    const auto t = reader->refine();
    std::printf(
        "  level %u: %zu vertices, io %.2f ms, decompress %.2f ms, restore %.2f ms\n",
        reader->current_level(), reader->values().size(), t.io_seconds * 1e3,
        t.decompress_seconds * 1e3, t.restore_seconds * 1e3);
  }

  const double err = util::max_abs_error(values, reader->values());
  std::printf("\nfull-accuracy max restoration error: %.2e (budget %.2e)\n", err,
              3.0 * wreq.config.error_bound);
  return err <= 3.0 * wreq.config.error_bound ? 0 : 1;
}
