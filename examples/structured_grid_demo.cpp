// The structured-grid path (Section III-C covers "both structured and
// unstructured meshes"): refactor a uniform-grid field into a base pyramid
// level plus bilinear-estimate deltas, place it across tiers, and read it
// back progressively.
//
//   $ ./structured_grid_demo [--nx=512] [--ny=384] [--levels=5]

#include <cmath>
#include <cstdio>

#include "core/canopus.hpp"
#include "grid/refactor.hpp"
#include "storage/hierarchy.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"

using namespace canopus;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  grid::GridShape shape;
  shape.nx = static_cast<std::size_t>(cli.get_int("nx", 512));
  shape.ny = static_cast<std::size_t>(cli.get_int("ny", 384));
  shape.dx = 1.0 / static_cast<double>(shape.nx);
  shape.dy = 1.0 / static_cast<double>(shape.ny);

  // A vortical pressure field with a sharp front: smooth at large scales,
  // structured detail at fine ones.
  grid::GridField values(shape.point_count());
  for (std::size_t y = 0; y < shape.ny; ++y) {
    for (std::size_t x = 0; x < shape.nx; ++x) {
      const double px = static_cast<double>(x) * shape.dx;
      const double py = static_cast<double>(y) * shape.dy;
      const double r = std::hypot(px - 0.5, py - 0.5);
      values[y * shape.nx + x] =
          std::tanh((0.3 - r) * 40.0) + 0.15 * std::sin(20.0 * px) *
                                            std::cos(16.0 * py);
    }
  }
  std::printf("structured field: %zux%zu points (%.1f KiB raw)\n", shape.nx,
              shape.ny,
              static_cast<double>(values.size() * sizeof(double)) / 1024.0);

  storage::StorageHierarchy tiers(
      {storage::tmpfs_spec(2 << 20), storage::lustre_spec(1 << 30)});
  core::RefactorConfig config;
  config.levels = static_cast<std::size_t>(cli.get_int("levels", 5));
  config.codec = "zfp";
  config.error_bound = 1e-6;
  const auto report = grid::refactor_and_write_grid(tiers, "grid.bp",
                                                    "pressure", shape, values,
                                                    config);
  std::printf("stored %.1f KiB across the hierarchy (%.1fx reduction)\n\n",
              static_cast<double>(report.stored_bytes) / 1024.0,
              static_cast<double>(report.raw_bytes) /
                  static_cast<double>(report.stored_bytes));

  grid::GridProgressiveReader reader(tiers, "grid.bp", "pressure");
  std::printf("%-6s %-12s %-10s %s\n", "level", "grid", "decimation",
              "cumulative-io(ms)");
  for (;;) {
    std::printf("L%-5u %zux%-9zu %-10.1f %.3f\n", reader.current_level(),
                reader.current_shape().nx, reader.current_shape().ny,
                reader.decimation_ratio(),
                reader.cumulative().io_seconds * 1e3);
    if (reader.at_full_accuracy()) break;
    reader.refine();
  }
  std::printf("\nfull-accuracy max error: %.2e (budget %.2e)\n",
              util::max_abs_error(values, reader.values()),
              static_cast<double>(config.levels) * config.error_bound);
  return 0;
}
