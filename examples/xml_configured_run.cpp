// ADIOS-style declarative configuration: the storage hierarchy and the
// refactoring policy come from an external XML file, so switching layouts
// (tiers, codec, accuracy) needs no recompilation — Section III-D's workflow.
//
//   $ ./xml_configured_run [--config=path/to/config.xml]
//
// Without --config a built-in sample document is used (and printed).
//
// Robustness keys (all optional):
//
//   <faults seed="42">
//     <tier name="lustre" read-error="0.1" write-error="0" corrupt="0.01"
//           latency-spike="0.05" spike-duration="20ms"/>
//   </faults>
//   <retry max-attempts="4" backoff="1ms" multiplier="2"/>
//
// <faults> wires a seeded storage::FaultInjector into the built hierarchy;
// each child names a configured tier and gives its failure probabilities
// (in [0,1]) plus the simulated duration of one latency spike. <retry> tunes
// the hierarchy's read retry-with-backoff policy (backoff is charged to the
// simulated clock, so faulty runs stay deterministic and reproducible).

#include <cstdio>

#include "core/canopus.hpp"
#include "core/config.hpp"
#include "sim/datasets.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"

using namespace canopus;

namespace {
const char* kDefaultConfig = R"(<canopus-config>
  <storage policy="fastest-fit">
    <tier preset="nvram"  capacity="512KiB"/>
    <tier preset="ssd"    capacity="16MiB"/>
    <tier preset="lustre" capacity="4GiB" read-bw="150MB/s" read-latency="6ms"/>
  </storage>
  <refactor levels="4" codec="zfp+lzss" error-bound="1e-5"
            estimate="barycentric" priority="shortest"/>
  <faults seed="2">
    <tier name="lustre" read-error="0.05" corrupt="0.005"
          latency-spike="0.02" spike-duration="20ms"/>
  </faults>
  <retry max-attempts="4" backoff="1ms" multiplier="2"/>
  <observability enabled="true" trace="xml_run_trace.json"/>
</canopus-config>)";
}

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  core::RuntimeConfig config;
  if (cli.has("config")) {
    config = core::load_config_file(cli.get("config", ""));
    std::printf("loaded configuration from %s\n", cli.get("config", "").c_str());
  } else {
    std::printf("using the built-in sample configuration:\n%s\n\n", kDefaultConfig);
    config = core::load_config(kDefaultConfig);
  }

  // The facade builds the hierarchy (tiers, faults, retry) and installs the
  // <observability> plan in one step; the pipeline owns the result.
  auto pipeline = Pipeline::from_config(config);
  auto& tiers = pipeline.hierarchy();
  std::printf("hierarchy: ");
  for (std::size_t i = 0; i < tiers.tier_count(); ++i) {
    std::printf("%s%s", i ? " > " : "", tiers.tier(i).spec().name.c_str());
  }
  std::printf("\nrefactor: %zu levels, codec %s, error bound %g, estimate %s\n\n",
              config.refactor.levels, config.refactor.codec.c_str(),
              config.refactor.error_bound,
              core::to_string(config.refactor.estimate).c_str());

  sim::XgcOptions opt;
  opt.rings = 40;
  opt.sectors = 200;
  const auto ds = sim::make_xgc_dataset(opt);
  WriteRequest wreq;
  wreq.path = "run.bp";
  wreq.var = ds.variable;
  wreq.mesh = &ds.mesh;
  wreq.values = &ds.values;
  wreq.config = config.refactor;
  WriteResult wres;
  const Status ws = pipeline.write(wreq, &wres);
  if (!ws.ok()) {
    std::printf("write failed: %s\n", ws.to_string().c_str());
    return 1;
  }
  for (const auto& p : wres.report.products) {
    std::printf("  %-7s -> tier %u (%s), %zu bytes\n", p.name.c_str(), p.tier,
                tiers.tier(p.tier).spec().name.c_str(), p.stored_bytes);
  }

  ReadRequest rreq;
  rreq.path = "run.bp";
  rreq.var = ds.variable;
  rreq.target_level = 0;  // full accuracy
  ReadResult rres;
  const Status rs = pipeline.read(rreq, &rres);
  if (!rs.usable()) {
    std::printf("read failed: %s\n", rs.to_string().c_str());
    return 1;
  }
  std::printf("\nround trip max error: %.2e (budget %.2e), status %s\n",
              util::max_abs_error(ds.values, rres.values),
              static_cast<double>(config.refactor.levels) *
                  config.refactor.error_bound,
              rs.to_string().c_str());
  if (const auto* faults = tiers.fault_injector()) {
    const auto& c = faults->counters();
    std::printf(
        "fault model: %llu read errors, %llu corruptions, %llu latency "
        "spikes injected; reader retried %zu reads (status: %s)\n",
        static_cast<unsigned long long>(c.read_errors),
        static_cast<unsigned long long>(c.corruptions),
        static_cast<unsigned long long>(c.latency_spikes),
        rres.timings.retries, core::to_string(rres.refine_status).c_str());
  }
  const auto trace = pipeline.flush_observability();
  if (!trace.empty()) std::printf("chrome trace written to %s\n", trace.c_str());
  return 0;
}
