// Focused data retrieval (Sections III-E and IV-D): scan for features on the
// cheap base dataset, then fetch *only the high-accuracy delta chunks around
// the detected features* — "this can help scientists to quickly scan for
// features at low accuracy, then zoom into areas with features by fetching a
// subset of high accuracy data."
//
//   $ ./roi_zoom [--chunks=64] [--raster=300]

#include <algorithm>
#include <cstdio>

#include "analytics/blob.hpp"
#include "analytics/raster.hpp"
#include "core/canopus.hpp"
#include "sim/datasets.hpp"
#include "storage/hierarchy.hpp"
#include "util/cli.hpp"

using namespace canopus;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto chunks = static_cast<std::uint32_t>(cli.get_int("chunks", 64));
  const auto raster_px = static_cast<std::size_t>(cli.get_int("raster", 300));

  const auto ds = sim::make_xgc_dataset({});
  storage::StorageHierarchy tiers(
      {storage::tmpfs_spec(1 << 20), storage::lustre_spec(1 << 30)});
  core::RefactorConfig config;
  config.levels = 4;
  config.codec = "zfp";
  config.error_bound = 1e-5;
  config.delta_chunks = chunks;  // spatially chunked deltas enable the zoom
  Pipeline pipeline(tiers);
  WriteRequest wreq;
  wreq.path = "xgc.bp";
  wreq.var = "dpot";
  wreq.mesh = &ds.mesh;
  wreq.values = &ds.values;
  wreq.config = config;
  if (!pipeline.write(wreq).ok()) return 1;
  const auto geometry = core::GeometryCache::load(tiers, "xgc.bp", "dpot");

  // --- Step 1: scan the base dataset for blobs. ---------------------------
  // The zoom loop drives refinement interactively, so open() the step-wise
  // reader rather than issuing one-shot pipeline.read() calls.
  ReadRequest rreq;
  rreq.path = "xgc.bp";
  rreq.var = "dpot";
  rreq.geometry = &geometry;
  std::unique_ptr<core::ProgressiveReader> reader_ptr;
  if (!pipeline.open(rreq, &reader_ptr).ok()) return 1;
  auto& reader = *reader_ptr;
  const auto bounds = ds.mesh.bounds();
  const double hi = *std::max_element(ds.values.begin(), ds.values.end());
  analytics::BlobParams params;
  params.min_threshold = 10;
  params.max_threshold = 200;
  params.min_area = 60;
  const auto raster = analytics::rasterize(reader.current_mesh(), reader.values(),
                                           raster_px, raster_px, bounds, 0.0);
  const auto blobs = analytics::detect_blobs(analytics::to_gray8(raster, 0.0, hi),
                                             raster_px, raster_px, params);
  std::printf("base scan (decimation %.0fx): %zu candidate blobs, io %.3f ms\n",
              reader.decimation_ratio(), blobs.size(),
              reader.cumulative().io_seconds * 1e3);

  // --- Step 2: zoom — refine only around the most prominent blob.
  // (detect_blobs sorts by area, so blobs[0] is the biggest feature; a real
  // workflow would loop this step over whichever features look interesting.)
  if (blobs.empty()) {
    std::printf("no blobs found; nothing to zoom into\n");
    return 0;
  }
  const auto& target = blobs.front();
  const double px_to_x = bounds.width() / static_cast<double>(raster_px);
  const double px_to_y = bounds.height() / static_cast<double>(raster_px);
  const mesh::Vec2 center{bounds.lo.x + target.center.x * px_to_x,
                          bounds.lo.y + target.center.y * px_to_y};
  const double rx = (target.radius() + 6.0) * px_to_x;
  const double ry = (target.radius() + 6.0) * px_to_y;
  mesh::Aabb roi;
  roi.lo = {center.x - rx, center.y - ry};
  roi.hi = {center.x + rx, center.y + ry};
  std::printf("zoom region: [%.2f, %.2f] x [%.2f, %.2f]\n", roi.lo.x, roi.hi.x,
              roi.lo.y, roi.hi.y);

  std::size_t roi_bytes = 0;
  while (!reader.at_full_accuracy()) {
    const auto step = reader.refine_region(roi);
    roi_bytes += step.bytes_read;
    std::printf("  refined to level %u inside the region: %zu bytes, io %.3f ms\n",
                reader.current_level(), step.bytes_read, step.io_seconds * 1e3);
  }

  // --- Compare against a full-accuracy fetch. ------------------------------
  core::ProgressiveReader full(tiers, "xgc.bp", "dpot", &geometry);
  const auto base_bytes = full.cumulative().bytes_read;
  full.refine_to(0);
  const std::size_t full_bytes = full.cumulative().bytes_read - base_bytes;
  std::printf("\nfocused zoom moved %zu bytes vs %zu for full refinement "
              "(%.0f%% saved); the region of interest is at full accuracy.\n",
              roi_bytes, full_bytes,
              100.0 * (1.0 - static_cast<double>(roi_bytes) /
                                 static_cast<double>(full_bytes)));
  return 0;
}
