// Concurrent read sessions sharing one block cache.
//
// The scenario Section V's campaign readers motivate: K analytics clients
// open the same refactored variable and each restores it to full accuracy.
// Uncached, every client pays the full contended-PFS fetch and chunk decode
// itself; with the shared BlockCache the first reader (or a warm-up pass)
// faults each blob in once and everyone else hits memory — single-flight
// loading guarantees one tier fetch and one decode per block regardless of
// how many sessions race for it.
//
// Prints the per-session cost breakdown and the aggregate read throughput of
// the cache-off vs warm-cache configurations, verifies the restored fields
// are bitwise-identical everywhere (equal accuracy), and exits non-zero if
// the warm-cache aggregate throughput is not at least 2x the uncached one.
//
// Cluster mode (--nodes=N, N >= 2): instead of one process-local hierarchy,
// the refactored products are sharded across a simulated N-node fabric
// (src/fabric) — every node gets identical hardware (a fast tier sized to
// ~1.35x its shard, a contended PFS below it, a slice of the cache budget)
// and K sessions are spread round-robin across the nodes, resolving
// non-local chunks through the fabric's remote-read envelope. The baseline
// is ONE such node serving everything (its fast tier overflows to the
// contended PFS). Exits non-zero unless the cluster run performed remote
// reads, restored bitwise-identical fields, and met or beat the single-node
// aggregate throughput — the elastic scale-out claim.
//
// Flags: --sessions=8 --cache-mb=64 --threads=0 --eb=1e-4 [--nodes=N]
//        [--trace-out=f]

#include <cstring>
#include <iostream>
#include <thread>

#include "bench_common.hpp"
#include "fabric/fabric.hpp"

using namespace canopus;

namespace {

struct ConfigResult {
  std::string label;
  double io = 0.0;          // mean per-session simulated tier I/O seconds
  double decompress = 0.0;  // mean per-session wall
  double restore = 0.0;     // mean per-session wall
  double elapsed = 0.0;     // max per-session total: the concurrent makespan
  double wall = 0.0;        // real wall-clock of the measured run
  double max_abs_error = 0.0;
  std::vector<mesh::Field> fields;  // one restored field per session
  cache::BlockCache::Stats cache_stats;
  bool cached = false;
};

double max_abs_error(const mesh::Field& got, const mesh::Field& want) {
  double e = 0.0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    e = std::max(e, std::abs(got[i] - want[i]));
  }
  return e;
}

ConfigResult run_config(const sim::Dataset& ds, const bench::PipelineOptions& opt,
                        bool cached) {
  const std::size_t raw_bytes = ds.values.size() * sizeof(double);
  auto tiers = bench::make_two_tier(raw_bytes);

  canopus::PipelineOptions popt;
  popt.parallel.threads = opt.threads;
  popt.io.depth = opt.io_depth;
  popt.io.batch = opt.io_batch;
  if (cached) {
    cache::CacheConfig cc;
    cc.budget_bytes = opt.cache_mb << 20;
    popt.cache = cc;
  }
  Pipeline pipeline(tiers, popt);

  WriteRequest wreq;
  wreq.path = "run.bp";
  wreq.var = ds.variable;
  wreq.mesh = &ds.mesh;
  wreq.values = &ds.values;
  wreq.config.levels = 4;  // decimation ratio 8
  wreq.config.delta_chunks = opt.delta_chunks;
  wreq.config.codec = opt.codec;
  wreq.config.error_bound = opt.error_bound;
  const auto ws = pipeline.write(wreq);
  if (!ws.ok()) throw Error("refactor failed: " + ws.to_string());
  const auto geometry = core::GeometryCache::load(tiers, "run.bp", ds.variable);

  ReadRequest rreq;
  rreq.path = "run.bp";
  rreq.var = ds.variable;
  rreq.geometry = &geometry;

  if (cached) {
    // Warm pass: one unmeasured session faults every blob and decoded chunk
    // into the cache, modeling steady-state campaign analytics where the
    // products of the current timestep are already resident.
    std::unique_ptr<ReadSession> warm;
    auto st = pipeline.open_session(rreq, &warm);
    if (st.ok()) st = warm->refine_to(0);
    if (!st.ok()) throw Error("warm-up failed: " + st.to_string());
  }

  const std::size_t n = opt.sessions;
  std::vector<std::unique_ptr<ReadSession>> sessions(n);
  std::vector<Status> statuses(n);
  util::WallTimer wall;
  {
    std::vector<std::thread> clients;
    clients.reserve(n);
    for (std::size_t s = 0; s < n; ++s) {
      clients.emplace_back([&, s] {
        auto st = pipeline.open_session(rreq, &sessions[s]);
        if (st.ok()) st = sessions[s]->refine_to(0);
        statuses[s] = st;
      });
    }
    for (auto& client : clients) client.join();
  }

  ConfigResult r;
  r.label = cached ? "cache " + std::to_string(opt.cache_mb) + "MiB (warm)"
                   : "cache off";
  r.cached = cached;
  r.wall = wall.seconds();
  for (std::size_t s = 0; s < n; ++s) {
    if (!statuses[s].ok()) {
      throw Error("session failed: " + statuses[s].to_string());
    }
    const auto& t = sessions[s]->timings();
    const double total =
        t.io_seconds + t.decompress_seconds + t.restore_seconds;
    r.io += t.io_seconds;
    r.decompress += t.decompress_seconds;
    r.restore += t.restore_seconds;
    r.elapsed = std::max(r.elapsed, total);
    r.max_abs_error =
        std::max(r.max_abs_error, max_abs_error(sessions[s]->values(), ds.values));
    r.fields.push_back(sessions[s]->values());
  }
  r.io /= static_cast<double>(n);
  r.decompress /= static_cast<double>(n);
  r.restore /= static_cast<double>(n);
  if (const auto* cache = pipeline.block_cache()) {
    r.cache_stats = cache->stats();
  }
  return r;
}

// ----------------------------------------------------------------------------
// Cluster mode (--nodes=N).

struct ClusterResult {
  std::string label;
  double io = 0.0;          // mean per-session simulated tier I/O seconds
  double decompress = 0.0;  // mean per-session wall
  double restore = 0.0;     // mean per-session wall
  double elapsed = 0.0;     // max per-session total: the concurrent makespan
  std::vector<mesh::Field> fields;
  fabric::Fabric::Stats stats;
  fabric::ImportReport report;
};

/// One fabric run: `run_nodes` identical nodes (fast tier of
/// `fast_capacity` bytes over a contended PFS, `cache_mb_per_node` MiB of
/// cache each), the staged container sharded across them, and
/// `opt.sessions` full-accuracy sessions spread round-robin.
ClusterResult run_fabric_config(const sim::Dataset& ds,
                                const bench::PipelineOptions& opt,
                                storage::StorageHierarchy& staging,
                                std::size_t run_nodes,
                                std::size_t fast_capacity,
                                std::size_t cache_mb_per_node) {
  fabric::FabricOptions fo;
  fo.nodes = run_nodes;
  fo.eviction_high = 0.9;  // anticipatory eviction keeps the fast tier open
  fabric::Fabric cluster(
      fo, {storage::tmpfs_spec(fast_capacity),
           bench::contended_lustre_spec(8ull << 30)});

  ClusterResult r;
  r.label = std::to_string(run_nodes) + (run_nodes == 1 ? " node" : " nodes");
  r.report = cluster.import_container(staging, "run.bp");

  cache::CacheConfig cc;
  cc.budget_bytes = cache_mb_per_node << 20;
  cluster.attach_node_caches(cc);

  // Campaign-lifetime geometry, preloaded off the measured path (every node
  // holds a full copy of the mesh/mapping blocks).
  const auto geometry =
      core::GeometryCache::load(cluster.node(0), "run.bp", ds.variable);

  canopus::PipelineOptions popt;
  popt.parallel.threads = opt.threads;
  popt.io.depth = opt.io_depth;
  popt.io.batch = opt.io_batch;
  std::vector<std::unique_ptr<Pipeline>> pipelines;
  pipelines.reserve(run_nodes);
  for (std::size_t i = 0; i < run_nodes; ++i) {
    pipelines.push_back(std::make_unique<Pipeline>(cluster.node(i), popt));
  }

  ReadRequest rreq;
  rreq.path = "run.bp";
  rreq.var = ds.variable;
  rreq.geometry = &geometry;

  const std::size_t n = opt.sessions;
  std::vector<std::unique_ptr<ReadSession>> sessions(n);
  std::vector<Status> statuses(n);
  {
    std::vector<std::thread> clients;
    clients.reserve(n);
    for (std::size_t s = 0; s < n; ++s) {
      clients.emplace_back([&, s] {
        auto st = pipelines[s % run_nodes]->open_session(rreq, &sessions[s]);
        if (st.ok()) st = sessions[s]->refine_to(0);
        statuses[s] = st;
      });
    }
    for (auto& client : clients) client.join();
  }

  for (std::size_t s = 0; s < n; ++s) {
    if (!statuses[s].usable()) {
      throw Error("cluster session failed: " + statuses[s].to_string());
    }
    const auto& t = sessions[s]->timings();
    const double total =
        t.io_seconds + t.decompress_seconds + t.restore_seconds;
    r.io += t.io_seconds;
    r.decompress += t.decompress_seconds;
    r.restore += t.restore_seconds;
    r.elapsed = std::max(r.elapsed, total);
    r.fields.push_back(sessions[s]->values());
  }
  r.io /= static_cast<double>(n);
  r.decompress /= static_cast<double>(n);
  r.restore /= static_cast<double>(n);
  r.stats = cluster.stats();
  return r;
}

int run_cluster_bench(const sim::Dataset& ds, const bench::PipelineOptions& opt,
                      std::size_t nodes) {
  const std::size_t raw_bytes = ds.values.size() * sizeof(double);
  std::cout << "cluster mode: " << nodes << " simulated nodes, "
            << opt.sessions << " sessions round-robin\n\n";

  // Refactor once into an unconstrained staging hierarchy; both fabric runs
  // shard the same container. More delta chunks than nodes so the Morton
  // ranges split evenly.
  storage::StorageHierarchy staging({storage::tmpfs_spec(1ull << 30)});
  {
    canopus::PipelineOptions popt;
    popt.parallel.threads = opt.threads;
    Pipeline writer(staging, popt);
    WriteRequest wreq;
    wreq.path = "run.bp";
    wreq.var = ds.variable;
    wreq.mesh = &ds.mesh;
    wreq.values = &ds.values;
    wreq.config.levels = 4;
    wreq.config.delta_chunks = 4 * nodes;
    wreq.config.codec = opt.codec;
    wreq.config.error_bound = opt.error_bound;
    const auto ws = writer.write(wreq);
    if (!ws.ok()) throw Error("refactor failed: " + ws.to_string());
  }

  // Size each node's fast tier to ~1.35x its shard of the refactored
  // payload: an N-node fabric serves every primary from aggregate fast
  // memory, while the 1-node baseline (identical hardware) overflows
  // ~(1 - 1.35/N) of the payload to the contended PFS.
  std::size_t sharded_bytes = 0;
  {
    adios::BpReader scan(staging, "run.bp");
    for (const auto& name : scan.variables()) {
      for (const auto& b : scan.inq_var(name).blocks) {
        if (b.kind == adios::BlockKind::kBase ||
            b.kind == adios::BlockKind::kDelta ||
            b.kind == adios::BlockKind::kData) {
          sharded_bytes += static_cast<std::size_t>(b.stored_bytes);
        }
      }
    }
  }
  const auto fast_capacity = std::max<std::size_t>(
      static_cast<std::size_t>(1.35 * static_cast<double>(sharded_bytes) /
                               static_cast<double>(nodes)),
      64ull << 10);
  const std::size_t cache_mb_per_node =
      std::max<std::size_t>(1, opt.cache_mb / nodes);
  std::cout << "refactored payload " << sharded_bytes / 1024
            << " KiB sharded; per-node fast tier " << fast_capacity / 1024
            << " KiB, per-node cache " << cache_mb_per_node << " MiB\n\n";

  const auto single =
      run_fabric_config(ds, opt, staging, 1, fast_capacity, cache_mb_per_node);
  const auto cluster = run_fabric_config(ds, opt, staging, nodes,
                                         fast_capacity, cache_mb_per_node);

  const double s = static_cast<double>(opt.sessions);
  auto throughput = [&](const ClusterResult& r) {
    return s * static_cast<double>(raw_bytes) / r.elapsed / 1e6;  // MB/s
  };

  util::Table t({"config", "io(s)", "decompress(s)", "restore(s)",
                 "makespan(s)", "agg MB/s", "remote", "local", "fallback"});
  for (const auto* r : {&single, &cluster}) {
    t.add_row({r->label, util::Table::num(r->io, 4),
               util::Table::num(r->decompress, 4),
               util::Table::num(r->restore, 4),
               util::Table::num(r->elapsed, 4),
               util::Table::num(throughput(*r), 1),
               std::to_string(r->stats.remote_reads),
               std::to_string(r->stats.local_hits),
               std::to_string(r->stats.replica_fallbacks)});
  }
  t.print(std::cout, "sharded fabric vs single node, per-session means (" +
                         std::to_string(opt.sessions) + " sessions)");

  bool identical = true;
  for (const auto* r : {&single, &cluster}) {
    for (const auto& f : r->fields) {
      identical = identical && f.size() == single.fields.front().size() &&
                  std::memcmp(f.data(), single.fields.front().data(),
                              f.size() * sizeof(double)) == 0;
    }
  }
  const double ratio = throughput(cluster) / throughput(single);
  std::cout << "\nfields bitwise-identical across sessions and configs: "
            << (identical ? "yes" : "NO") << "\n";
  std::cout << "cluster remote reads: " << cluster.stats.remote_reads
            << ", failed: " << cluster.stats.failed_remote_reads << "\n";
  std::cout << "aggregate throughput (" << nodes << " nodes vs 1): "
            << util::Table::num(ratio, 1) << "x\n";

  std::cout << '\n';
  bench::flush_observability(std::cout);

  if (!identical || cluster.stats.remote_reads == 0 || ratio < 1.0) {
    std::cout << "\nFAIL: expected remote reads, bitwise-identical fields, "
                 "and cluster throughput >= single-node\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  bench::PipelineOptions opt;
  opt.error_bound = cli.get_double("eb", 1e-4);
  opt.threads = bench::threads_flag(cli);
  opt.cache_mb = static_cast<std::size_t>(cli.get_int("cache-mb", 64));
  opt.sessions = static_cast<std::size_t>(
      std::max<std::int64_t>(2, cli.get_int("sessions", 8)));
  if (opt.cache_mb == 0) opt.cache_mb = 64;  // the study needs a cache to compare
  // --io-depth/--io-batch route session fetches through the async engine;
  // --delta-chunks gives it (and the parallel decode) its parallelism.
  bench::io_flags(cli, opt);
  // Observability is on by default here so the cache.* counters land in the
  // metric summary; --trace-out additionally writes the Chrome trace.
  if (cli.has("trace-out")) {
    bench::observability_flags(cli);
  } else {
    obs::ObservabilityOptions oopt;
    oopt.enabled = true;
    obs::install(oopt);
  }

  const auto ds = sim::make_xgc_dataset({});
  const std::size_t raw_bytes = ds.values.size() * sizeof(double);
  std::cout << "workload: xgc1 dpot plane, " << ds.values.size() << " values ("
            << raw_bytes / 1024 << " KiB raw), " << opt.sessions
            << " concurrent full-accuracy sessions per config\n\n";

  const auto nodes = static_cast<std::size_t>(
      std::max<std::int64_t>(1, cli.get_int("nodes", 1)));
  if (nodes >= 2) return run_cluster_bench(ds, opt, nodes);

  const auto off = run_config(ds, opt, false);
  const auto on = run_config(ds, opt, true);

  // Aggregate read throughput: every session delivers the full-accuracy
  // field, and the concurrent makespan is the slowest session's total
  // (simulated I/O + decode + restore).
  const double s = static_cast<double>(opt.sessions);
  auto throughput = [&](const ConfigResult& r) {
    return s * static_cast<double>(raw_bytes) / r.elapsed / 1e6;  // MB/s
  };

  util::Table t({"config", "io(s)", "decompress(s)", "restore(s)",
                 "makespan(s)", "agg MB/s"});
  for (const auto* r : {&off, &on}) {
    t.add_row({r->label, util::Table::num(r->io, 4),
               util::Table::num(r->decompress, 4),
               util::Table::num(r->restore, 4),
               util::Table::num(r->elapsed, 4),
               util::Table::num(throughput(*r), 1)});
  }
  t.print(std::cout,
          "concurrent full-accuracy retrieval, per-session means (" +
              std::to_string(opt.sessions) + " sessions)");

  // Equal accuracy: every session of every config must restore the exact
  // same field — the cache returns the bytes the tiers would have.
  bool identical = true;
  for (const auto* r : {&off, &on}) {
    for (const auto& f : r->fields) {
      identical = identical && f.size() == off.fields.front().size() &&
                  std::memcmp(f.data(), off.fields.front().data(),
                              f.size() * sizeof(double)) == 0;
    }
  }
  std::cout << "\nfields bitwise-identical across sessions and configs: "
            << (identical ? "yes" : "NO") << "\n";
  std::cout << "max |error| vs original: cache-off "
            << util::Table::num(off.max_abs_error, 6) << ", warm-cache "
            << util::Table::num(on.max_abs_error, 6) << " (bound "
            << util::Table::num(opt.error_bound, 6) << ")\n";

  const auto& cs = on.cache_stats;
  std::cout << "warm-cache counters: hits " << cs.hits << ", misses "
            << cs.misses << ", single-flight waits " << cs.single_flight_waits
            << ", evictions " << cs.evictions << "\n";

  const double speedup = throughput(on) / throughput(off);
  std::cout << "aggregate throughput speedup (warm cache vs off): "
            << util::Table::num(speedup, 1) << "x\n";

  std::cout << '\n';
  bench::flush_observability(std::cout);

  if (!identical || speedup < 2.0) {
    std::cout << "\nFAIL: expected bitwise-identical fields and >=2x speedup\n";
    return 1;
  }
  return 0;
}
