// Concurrent read sessions sharing one block cache.
//
// The scenario Section V's campaign readers motivate: K analytics clients
// open the same refactored variable and each restores it to full accuracy.
// Uncached, every client pays the full contended-PFS fetch and chunk decode
// itself; with the shared BlockCache the first reader (or a warm-up pass)
// faults each blob in once and everyone else hits memory — single-flight
// loading guarantees one tier fetch and one decode per block regardless of
// how many sessions race for it.
//
// Prints the per-session cost breakdown and the aggregate read throughput of
// the cache-off vs warm-cache configurations, verifies the restored fields
// are bitwise-identical everywhere (equal accuracy), and exits non-zero if
// the warm-cache aggregate throughput is not at least 2x the uncached one.
//
// Flags: --sessions=8 --cache-mb=64 --threads=0 --eb=1e-4 [--trace-out=f]

#include <cstring>
#include <iostream>
#include <thread>

#include "bench_common.hpp"

using namespace canopus;

namespace {

struct ConfigResult {
  std::string label;
  double io = 0.0;          // mean per-session simulated tier I/O seconds
  double decompress = 0.0;  // mean per-session wall
  double restore = 0.0;     // mean per-session wall
  double elapsed = 0.0;     // max per-session total: the concurrent makespan
  double wall = 0.0;        // real wall-clock of the measured run
  double max_abs_error = 0.0;
  std::vector<mesh::Field> fields;  // one restored field per session
  cache::BlockCache::Stats cache_stats;
  bool cached = false;
};

double max_abs_error(const mesh::Field& got, const mesh::Field& want) {
  double e = 0.0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    e = std::max(e, std::abs(got[i] - want[i]));
  }
  return e;
}

ConfigResult run_config(const sim::Dataset& ds, const bench::PipelineOptions& opt,
                        bool cached) {
  const std::size_t raw_bytes = ds.values.size() * sizeof(double);
  auto tiers = bench::make_two_tier(raw_bytes);

  canopus::PipelineOptions popt;
  popt.parallel.threads = opt.threads;
  if (cached) {
    cache::CacheConfig cc;
    cc.budget_bytes = opt.cache_mb << 20;
    popt.cache = cc;
  }
  Pipeline pipeline(tiers, popt);

  WriteRequest wreq;
  wreq.path = "run.bp";
  wreq.var = ds.variable;
  wreq.mesh = &ds.mesh;
  wreq.values = &ds.values;
  wreq.config.levels = 4;  // decimation ratio 8
  wreq.config.codec = opt.codec;
  wreq.config.error_bound = opt.error_bound;
  const auto ws = pipeline.write(wreq);
  if (!ws.ok()) throw Error("refactor failed: " + ws.to_string());
  const auto geometry = core::GeometryCache::load(tiers, "run.bp", ds.variable);

  ReadRequest rreq;
  rreq.path = "run.bp";
  rreq.var = ds.variable;
  rreq.geometry = &geometry;

  if (cached) {
    // Warm pass: one unmeasured session faults every blob and decoded chunk
    // into the cache, modeling steady-state campaign analytics where the
    // products of the current timestep are already resident.
    std::unique_ptr<ReadSession> warm;
    auto st = pipeline.open_session(rreq, &warm);
    if (st.ok()) st = warm->refine_to(0);
    if (!st.ok()) throw Error("warm-up failed: " + st.to_string());
  }

  const std::size_t n = opt.sessions;
  std::vector<std::unique_ptr<ReadSession>> sessions(n);
  std::vector<Status> statuses(n);
  util::WallTimer wall;
  {
    std::vector<std::thread> clients;
    clients.reserve(n);
    for (std::size_t s = 0; s < n; ++s) {
      clients.emplace_back([&, s] {
        auto st = pipeline.open_session(rreq, &sessions[s]);
        if (st.ok()) st = sessions[s]->refine_to(0);
        statuses[s] = st;
      });
    }
    for (auto& client : clients) client.join();
  }

  ConfigResult r;
  r.label = cached ? "cache " + std::to_string(opt.cache_mb) + "MiB (warm)"
                   : "cache off";
  r.cached = cached;
  r.wall = wall.seconds();
  for (std::size_t s = 0; s < n; ++s) {
    if (!statuses[s].ok()) {
      throw Error("session failed: " + statuses[s].to_string());
    }
    const auto& t = sessions[s]->timings();
    const double total =
        t.io_seconds + t.decompress_seconds + t.restore_seconds;
    r.io += t.io_seconds;
    r.decompress += t.decompress_seconds;
    r.restore += t.restore_seconds;
    r.elapsed = std::max(r.elapsed, total);
    r.max_abs_error =
        std::max(r.max_abs_error, max_abs_error(sessions[s]->values(), ds.values));
    r.fields.push_back(sessions[s]->values());
  }
  r.io /= static_cast<double>(n);
  r.decompress /= static_cast<double>(n);
  r.restore /= static_cast<double>(n);
  if (const auto* cache = pipeline.block_cache()) {
    r.cache_stats = cache->stats();
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  bench::PipelineOptions opt;
  opt.error_bound = cli.get_double("eb", 1e-4);
  opt.threads = bench::threads_flag(cli);
  opt.cache_mb = static_cast<std::size_t>(cli.get_int("cache-mb", 64));
  opt.sessions = static_cast<std::size_t>(
      std::max<std::int64_t>(2, cli.get_int("sessions", 8)));
  if (opt.cache_mb == 0) opt.cache_mb = 64;  // the study needs a cache to compare
  // Observability is on by default here so the cache.* counters land in the
  // metric summary; --trace-out additionally writes the Chrome trace.
  if (cli.has("trace-out")) {
    bench::observability_flags(cli);
  } else {
    obs::ObservabilityOptions oopt;
    oopt.enabled = true;
    obs::install(oopt);
  }

  const auto ds = sim::make_xgc_dataset({});
  const std::size_t raw_bytes = ds.values.size() * sizeof(double);
  std::cout << "workload: xgc1 dpot plane, " << ds.values.size() << " values ("
            << raw_bytes / 1024 << " KiB raw), " << opt.sessions
            << " concurrent full-accuracy sessions per config\n\n";

  const auto off = run_config(ds, opt, false);
  const auto on = run_config(ds, opt, true);

  // Aggregate read throughput: every session delivers the full-accuracy
  // field, and the concurrent makespan is the slowest session's total
  // (simulated I/O + decode + restore).
  const double s = static_cast<double>(opt.sessions);
  auto throughput = [&](const ConfigResult& r) {
    return s * static_cast<double>(raw_bytes) / r.elapsed / 1e6;  // MB/s
  };

  util::Table t({"config", "io(s)", "decompress(s)", "restore(s)",
                 "makespan(s)", "agg MB/s"});
  for (const auto* r : {&off, &on}) {
    t.add_row({r->label, util::Table::num(r->io, 4),
               util::Table::num(r->decompress, 4),
               util::Table::num(r->restore, 4),
               util::Table::num(r->elapsed, 4),
               util::Table::num(throughput(*r), 1)});
  }
  t.print(std::cout,
          "concurrent full-accuracy retrieval, per-session means (" +
              std::to_string(opt.sessions) + " sessions)");

  // Equal accuracy: every session of every config must restore the exact
  // same field — the cache returns the bytes the tiers would have.
  bool identical = true;
  for (const auto* r : {&off, &on}) {
    for (const auto& f : r->fields) {
      identical = identical && f.size() == off.fields.front().size() &&
                  std::memcmp(f.data(), off.fields.front().data(),
                              f.size() * sizeof(double)) == 0;
    }
  }
  std::cout << "\nfields bitwise-identical across sessions and configs: "
            << (identical ? "yes" : "NO") << "\n";
  std::cout << "max |error| vs original: cache-off "
            << util::Table::num(off.max_abs_error, 6) << ", warm-cache "
            << util::Table::num(on.max_abs_error, 6) << " (bound "
            << util::Table::num(opt.error_bound, 6) << ")\n";

  const auto& cs = on.cache_stats;
  std::cout << "warm-cache counters: hits " << cs.hits << ", misses "
            << cs.misses << ", single-flight waits " << cs.single_flight_waits
            << ", evictions " << cs.evictions << "\n";

  const double speedup = throughput(on) / throughput(off);
  std::cout << "aggregate throughput speedup (warm cache vs off): "
            << util::Table::num(speedup, 1) << "x\n";

  std::cout << '\n';
  bench::flush_observability(std::cout);

  if (!identical || speedup < 2.0) {
    std::cout << "\nFAIL: expected bitwise-identical fields and >=2x speedup\n";
    return 1;
  }
  return 0;
}
