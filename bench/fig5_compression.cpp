// Figure 5 (a, b, c): Canopus vs direct multi-level compression.
//
// For each dataset and each total level count N in 1..4, compare the total
// normalized size (stored bytes / raw L0 bytes) of
//   direct : compress L^0 .. L^{N-1} independently, and
//   canopus: compress L^{N-1} plus the deltas delta^{l-(l+1)}.
// Also reports encode+decode wall time per approach, backing the paper's
// "both cases result in similar compression speed" observation.

#include <iostream>

#include "bench_common.hpp"
#include "compress/codec.hpp"
#include "core/delta.hpp"
#include "mesh/cascade.hpp"
#include "util/timer.hpp"

using namespace canopus;

namespace {

struct Sizes {
  std::size_t stored = 0;
  double encode_s = 0.0;
  double decode_s = 0.0;
};

Sizes canopus_sizes(const mesh::Cascade& cascade, const compress::Codec& codec,
                    double eb) {
  Sizes out;
  util::WallTimer t;
  std::vector<util::Bytes> streams;
  streams.push_back(codec.encode(cascade.levels.back().values, eb));
  for (std::size_t l = cascade.level_count() - 1; l-- > 0;) {
    const auto& fine = cascade.levels[l];
    const auto& coarse = cascade.levels[l + 1];
    const auto mapping = core::build_mapping(fine.mesh, coarse.mesh);
    const auto delta = core::compute_delta(coarse.mesh, coarse.values,
                                           fine.values, mapping,
                                           core::EstimateMode::kUniformThirds);
    streams.push_back(codec.encode(delta, eb));
  }
  out.encode_s = t.seconds();
  for (const auto& s : streams) out.stored += s.size();
  t.reset();
  for (const auto& s : streams) codec.decode(s);
  out.decode_s = t.seconds();
  return out;
}

Sizes direct_sizes(const mesh::Cascade& cascade, const compress::Codec& codec,
                   double eb) {
  Sizes out;
  util::WallTimer t;
  std::vector<util::Bytes> streams;
  for (const auto& level : cascade.levels) {
    streams.push_back(codec.encode(level.values, eb));
  }
  out.encode_s = t.seconds();
  for (const auto& s : streams) out.stored += s.size();
  t.reset();
  for (const auto& s : streams) codec.decode(s);
  out.decode_s = t.seconds();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0);
  const double eb = cli.get_double("eb", 1e-3);
  const auto codec = compress::make_codec(cli.get("codec", "zfp"));

  std::cout << "Figure 5: Canopus vs direct compression (codec="
            << codec->name() << ", abs error bound=" << eb << ")\n\n";

  for (const auto& ds : sim::all_datasets(scale)) {
    const std::size_t raw = ds.values.size() * sizeof(double);
    util::Table t({"total-levels", "direct", "canopus", "improvement",
                   "direct-enc(s)", "canopus-enc(s)", "direct-dec(s)",
                   "canopus-dec(s)"});
    for (std::size_t n = 1; n <= 4; ++n) {
      mesh::CascadeOptions copt;
      copt.levels = n;
      const auto cascade = mesh::build_cascade(ds.mesh, ds.values, copt);
      const auto d = direct_sizes(cascade, *codec, eb);
      const auto c = canopus_sizes(cascade, *codec, eb);
      const double dn = static_cast<double>(d.stored) / static_cast<double>(raw);
      const double cn = static_cast<double>(c.stored) / static_cast<double>(raw);
      t.add_row({std::to_string(n), util::Table::num(dn, 4),
                 util::Table::num(cn, 4),
                 util::Table::pct(dn > 0 ? (dn - cn) / dn : 0.0),
                 util::Table::num(d.encode_s, 4), util::Table::num(c.encode_s, 4),
                 util::Table::num(d.decode_s, 4), util::Table::num(c.decode_s, 4)});
    }
    const char panel = ds.name == "xgc1" ? 'a' : ds.name == "genasis" ? 'b' : 'c';
    t.print(std::cout, std::string("Fig. 5") + panel + " " + ds.name + " (" +
                           ds.variable + "), normalized size vs total levels");
    if (cli.has("csv")) {
      t.save_csv(cli.get("csv", ".") + "/fig5" + panel + "_" + ds.name + ".csv");
    }
    std::cout << '\n';
  }
  return 0;
}
