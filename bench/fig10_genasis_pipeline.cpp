// Figure 10: GenASiS retrieval pipeline (I/O, decompression, restoration —
// no analysis stage), plus full-accuracy restoration times (10b).

#include <iostream>

#include "bench_common.hpp"

using namespace canopus;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  bench::PipelineOptions opt;
  opt.detect_blobs = false;
  opt.error_bound = cli.get_double("eb", 1e-4);
  opt.threads = bench::threads_flag(cli);
  bench::session_flags(cli, opt);
  bench::io_flags(cli, opt);
  bench::observability_flags(cli);

  sim::GenasisOptions gopt;  // paper-sized: ~130k triangles
  const auto ds = sim::make_genasis_dataset(gopt);
  std::cout << "workload: genasis normVec magnitude, " << ds.values.size()
            << " values (" << ds.values.size() * sizeof(double) / 1024
            << " KiB raw)\n\n";

  std::vector<bench::PipelineCase> full;
  const auto cases = bench::run_pipeline(ds, opt, &full);
  bench::print_pipeline_table("Fig. 10a time usage of Canopus phases", cases,
                              false, std::cout);
  std::cout << '\n';
  bench::print_pipeline_table(
      "Fig. 10b restoring full accuracy from base + deltas", full, false,
      std::cout);
  std::cout << '\n';
  bench::flush_observability(std::cout);
  return 0;
}
