// Figure 6: storage-to-compute trend and write-side cost of refactoring.
//
// 6a: the storage-to-compute trend (bytes/s per MFlops) for U.S. leadership
//     systems, 2009-2024, from the CODAR overview the paper cites [31].
// 6b: time-fraction breakdown of writing XGC1's dpot variable (20,694
//     double-precision mesh values, decimation ratio 2) under high / medium /
//     low storage-to-compute scenarios: 32 / 128 / 512 cores against one
//     storage target. Decimation and delta+compression are embarrassingly
//     parallel across cores (Section III-C1), so their measured single-core
//     time divides by the core count; the single storage target's I/O time is
//     shared by the whole allocation.

#include <iostream>

#include "bench_common.hpp"
#include "storage/aggregation.hpp"
#include "util/timer.hpp"

using namespace canopus;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0);

  // ---- Fig. 6a: storage-to-compute trend (static series from [31]). ------
  {
    util::Table t({"year", "system", "bytes-per-sec-per-MFlops"});
    // Jaguar -> Titan -> Summit -> Frontier-era trajectory: compute grows
    // much faster than storage bandwidth.
    t.add_row({"2009", "jaguar", "108"});
    t.add_row({"2013", "titan", "74"});
    t.add_row({"2017", "summit-dev", "25"});
    t.add_row({"2021", "exascale-1", "8"});
    t.add_row({"2024", "exascale-2", "3"});
    t.print(std::cout, "Fig. 6a storage-to-compute trend for large HPC systems");
    std::cout << '\n';
  }

  // ---- Fig. 6b: write-time fractions under three scenarios. --------------
  sim::XgcOptions opt;  // defaults produce the paper's ~20.7k-value plane
  opt.rings = static_cast<std::size_t>(static_cast<double>(opt.rings) *
                                       std::sqrt(scale));
  opt.sectors = static_cast<std::size_t>(static_cast<double>(opt.sectors) *
                                         std::sqrt(scale));
  const auto ds = sim::make_xgc_dataset(opt);
  std::cout << "workload: xgc1 dpot, " << ds.values.size()
            << " double-precision mesh values, decimation ratio 2\n\n";

  struct Scenario {
    const char* name;
    std::size_t cores;
  };
  // One storage target in all cases; more cores = cheaper compute relative
  // to storage = lower storage-to-compute ratio.
  const Scenario scenarios[] = {{"high", 32}, {"medium", 128}, {"low", 512}};

  // Measure single-core refactoring once; the scenarios rescale it.
  core::RefactorConfig config;
  config.levels = 2;  // one decimation pass: ratio 2
  config.codec = "zfp";
  config.error_bound = 1e-4;
  // A writing job owns its stripe allocation, so the write path sees the
  // nominal Lustre envelope (the contended spec models shared-read analytics).
  storage::StorageHierarchy tiers(
      {storage::tmpfs_spec(1 << 20), storage::lustre_spec(8ull << 30)});
  const auto report = core::refactor_and_write(tiers, "fig6.bp", "dpot",
                                               ds.mesh, ds.values, config);
  const double decim_1core = report.phases.get("decimation");
  const double delta_1core = report.phases.get("delta+compress");
  const double io_shared = report.phases.get("io");

  util::Table t({"storage-to-compute", "cores", "decimation", "delta+compress",
                 "io", "decimation-frac", "delta-frac", "io-frac"});
  for (const auto& s : scenarios) {
    const double cores = static_cast<double>(s.cores);
    const double decim = decim_1core / cores;
    const double delta = delta_1core / cores;
    const double total = decim + delta + io_shared;
    t.add_row({s.name, std::to_string(s.cores), util::Table::num(decim, 5),
               util::Table::num(delta, 5), util::Table::num(io_shared, 5),
               util::Table::pct(decim / total), util::Table::pct(delta / total),
               util::Table::pct(io_shared / total)});
  }
  t.print(std::cout, "Fig. 6b write-time breakdown (seconds and fractions)");
  std::cout << "\nObservation: as compute gets cheaper (more cores per storage\n"
               "target), refactoring's relative cost shrinks and I/O dominates\n"
               "the write path -- the paper's Section IV-C conclusion.\n\n";

  // ---- Aggregator tuning (the MPI_AGGREGATE transport of Fig. 2). --------
  {
    storage::AggregationModel model;
    model.writers = 512;
    model.storage_targets = 8;
    const auto lustre = storage::lustre_spec(8ull << 30);
    const std::size_t bytes = ds.values.size() * sizeof(double) * 64;  // 64 steps
    util::Table agg({"aggregators", "write-time(s)"});
    for (std::size_t a = 1; a <= model.writers; a *= 4) {
      model.aggregators = a;
      agg.add_row({std::to_string(a),
                   util::Table::num(
                       storage::aggregate_write_seconds(model, lustre, bytes), 4)});
    }
    agg.print(std::cout,
              "MPI_AGGREGATE tuning: 512 writers, 8 storage targets, 64-step burst");
    std::cout << "best aggregator count: "
              << storage::best_aggregator_count(model, lustre, bytes) << "\n";
  }
  return 0;
}
