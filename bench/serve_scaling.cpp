// Closed-loop multi-client serving under overload (ISSUE 5 acceptance run).
//
// The regime the scheduler exists for: N ≫ capacity analytics clients each
// issue a stream of full-accuracy queries against one refactored variable.
// Two configurations over the identical workload:
//
//   baseline   every client greedily refines to full accuracy on its own
//              ReadSession — no arbitration, the slow tier saturates and
//              every query pays the full retrieval cost;
//   scheduled  the same clients go through Pipeline::submit_query with a
//              deadline that covers the base plus ~40 % of the refinement
//              work. Admission is bounded (queue-limit); shed clients back
//              off 1 ms and resubmit (closed loop), so every query
//              eventually completes, degrades, or counts a shed.
//
// One client in four is high-priority (priority 8) — the "urgent dashboard"
// stream whose p99 the scheduler must protect under overload.
//
// Latency accounting is the repo's deterministic retrieval cost
// (RetrievalTimings::total(): simulated tier I/O + measured compute); the
// scheduled runs add the real wall time spent queued. Exit is non-zero
// unless every acceptance criterion holds:
//
//   * zero unbounded queuing: every query resolved, max queue depth never
//     exceeded the configured bound, and overload actually shed (> 0);
//   * p99 latency of the high-priority scheduled stream below the baseline
//     p99;
//   * every served field bitwise-identical to an unscheduled
//     Pipeline::read at the same achieved level.
//
// Flags: --clients=24 --queries=3 --workers=2 --queue-limit=12
//        --deadline-ms=0 (0 = auto: base cost + 40 % of the full refine
//        cost) --threads=0 [--trace-out=f]

#include <algorithm>
#include <cstring>
#include <iostream>
#include <map>
#include <thread>

#include "bench_common.hpp"
#include "serve/cost_model.hpp"
#include "serve/query_scheduler.hpp"

using namespace canopus;

namespace {

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(xs.size())));
  return xs[std::min(xs.size() - 1, rank == 0 ? 0 : rank - 1)];
}

struct RunSummary {
  std::string label;
  std::vector<double> latencies;           // every query, cost seconds
  std::vector<double> high_pri_latencies;  // the priority-8 stream
  std::uint64_t completed = 0;
  std::uint64_t degraded = 0;
  std::uint64_t shed = 0;  // resubmitted by the closed loop
  double wall = 0.0;
  double mean_achieved = 0.0;
  /// First field served at each distinct achieved level, for the bitwise
  /// identity checks.
  std::map<std::uint32_t, mesh::Field> fields_by_level;
  bool intra_level_identical = true;
};

/// No-scheduler baseline: `clients` threads, each refining `queries` fresh
/// sessions to full accuracy, all at once.
RunSummary run_baseline(Pipeline& pipeline, const ReadRequest& rreq,
                        std::size_t clients, std::size_t queries) {
  RunSummary r;
  r.label = "baseline (greedy)";
  std::vector<std::vector<double>> per_client(clients);
  std::vector<std::string> errors(clients);
  util::WallTimer wall;
  {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        for (std::size_t q = 0; q < queries; ++q) {
          std::unique_ptr<ReadSession> session;
          auto st = pipeline.open_session(rreq, &session);
          if (st.ok()) st = session->refine_to(0);
          if (!st.usable()) {
            errors[c] = st.to_string();
            return;
          }
          per_client[c].push_back(session->timings().total());
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  r.wall = wall.seconds();
  for (std::size_t c = 0; c < clients; ++c) {
    if (!errors[c].empty()) throw Error("baseline client failed: " + errors[c]);
    for (double l : per_client[c]) {
      r.latencies.push_back(l);
      if (c % 4 == 0) r.high_pri_latencies.push_back(l);
    }
  }
  r.completed = r.latencies.size();
  return r;
}

/// Scheduled closed loop: kOverloaded submissions back off 1 ms and retry
/// until the query lands, so overload converts into sheds + latency, never
/// into lost queries.
RunSummary run_scheduled(Pipeline& pipeline, const serve::QueryRequest& base_query,
                         std::size_t clients, std::size_t queries) {
  RunSummary r;
  r.label = "scheduled";
  auto& scheduler = pipeline.query_scheduler();

  struct PerClient {
    std::vector<double> latencies;
    std::vector<serve::QueryResult> results;
    std::uint64_t degraded = 0;
    std::uint64_t shed = 0;
    std::string error;
  };
  std::vector<PerClient> per_client(clients);

  util::WallTimer wall;
  {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        auto& mine = per_client[c];
        serve::QueryRequest request = base_query;
        request.priority = (c % 4 == 0) ? 8 : 0;
        for (std::size_t q = 0; q < queries; ++q) {
          for (;;) {
            const serve::QueryOutcome outcome =
                scheduler.submit(request).get();
            if (outcome.status.code == StatusCode::kOverloaded) {
              ++mine.shed;  // admission backpressure: back off, try again
              std::this_thread::sleep_for(std::chrono::milliseconds(1));
              continue;
            }
            if (!outcome.status.usable()) {
              mine.error = outcome.status.to_string();
              return;
            }
            if (outcome.status.degraded) ++mine.degraded;
            mine.latencies.push_back(outcome.result.queue_seconds +
                                     outcome.result.timings.total());
            mine.results.push_back(std::move(outcome.result));
            break;
          }
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  r.wall = wall.seconds();

  double level_sum = 0.0;
  for (std::size_t c = 0; c < clients; ++c) {
    auto& mine = per_client[c];
    if (!mine.error.empty()) {
      throw Error("scheduled client failed: " + mine.error);
    }
    r.degraded += mine.degraded;
    r.shed += mine.shed;
    for (std::size_t q = 0; q < mine.latencies.size(); ++q) {
      r.latencies.push_back(mine.latencies[q]);
      if (c % 4 == 0) r.high_pri_latencies.push_back(mine.latencies[q]);
      const auto& result = mine.results[q];
      level_sum += result.achieved_level;
      auto [it, inserted] =
          r.fields_by_level.emplace(result.achieved_level, result.values);
      if (!inserted) {
        // Every query served at the same level must return the same bits.
        r.intra_level_identical =
            r.intra_level_identical &&
            it->second.size() == result.values.size() &&
            std::memcmp(it->second.data(), result.values.data(),
                        it->second.size() * sizeof(double)) == 0;
      }
    }
  }
  r.completed = r.latencies.size();
  r.mean_achieved =
      r.completed > 0 ? level_sum / static_cast<double>(r.completed) : 0.0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto clients =
      static_cast<std::size_t>(std::max<std::int64_t>(2, cli.get_int("clients", 24)));
  const auto queries =
      static_cast<std::size_t>(std::max<std::int64_t>(1, cli.get_int("queries", 3)));
  serve::ServeConfig serve_config;
  serve_config.workers =
      static_cast<std::size_t>(std::max<std::int64_t>(1, cli.get_int("workers", 2)));
  serve_config.queue_limit = static_cast<std::size_t>(
      std::max<std::int64_t>(1, cli.get_int("queue-limit", 12)));
  const double deadline_ms = cli.get_double("deadline-ms", 0.0);
  bench::observability_flags(cli);

  const auto ds = sim::make_xgc_dataset({});
  const std::size_t raw_bytes = ds.values.size() * sizeof(double);
  auto tiers = bench::make_two_tier(raw_bytes);

  bench::PipelineOptions io_opt;
  bench::io_flags(cli, io_opt);
  canopus::PipelineOptions popt;
  popt.parallel.threads = bench::threads_flag(cli);
  popt.io.depth = io_opt.io_depth;
  popt.io.batch = io_opt.io_batch;
  Pipeline pipeline(tiers, popt);

  WriteRequest wreq;
  wreq.path = "run.bp";
  wreq.var = ds.variable;
  wreq.mesh = &ds.mesh;
  wreq.values = &ds.values;
  wreq.config.levels = 4;  // decimation ratio 8
  wreq.config.delta_chunks = io_opt.delta_chunks;
  wreq.config.codec = "zfp";
  wreq.config.error_bound = 1e-4;
  const auto ws = pipeline.write(wreq);
  if (!ws.ok()) throw Error("refactor failed: " + ws.to_string());
  const auto geometry = core::GeometryCache::load(tiers, "run.bp", ds.variable);

  ReadRequest rreq;
  rreq.path = "run.bp";
  rreq.var = ds.variable;
  rreq.geometry = &geometry;

  // Probe the deterministic cost envelope: the base retrieval plus the
  // planner's estimate of the full base->L0 refinement. The auto deadline
  // covers the base and ~40 % of the refinement work, so under overload the
  // scheduler must degrade a meaningful fraction of queries instead of
  // letting everyone refine greedily.
  double base_cost = 0.0;
  double full_refine_cost = 0.0;
  {
    std::unique_ptr<core::ProgressiveReader> probe;
    const auto st = pipeline.open(rreq, &probe);
    if (!st.ok()) throw Error("probe open failed: " + st.to_string());
    base_cost = probe->cumulative().total();
    const auto model = serve::CostModel::build(tiers, *probe);
    full_refine_cost = model.cost_between(probe->current_level(), 0);
  }
  const double deadline = deadline_ms > 0.0 ? deadline_ms * 1e-3
                                            : base_cost + 0.4 * full_refine_cost;
  serve_config.default_deadline_seconds = deadline;

  std::cout << "workload: xgc1 dpot plane, " << ds.values.size() << " values ("
            << raw_bytes / 1024 << " KiB raw), " << clients << " clients x "
            << queries << " queries, " << serve_config.workers
            << " scheduler workers, queue limit " << serve_config.queue_limit
            << "\n";
  std::cout << "cost envelope: base " << util::Table::num(base_cost, 4)
            << " s, full refine " << util::Table::num(full_refine_cost, 4)
            << " s, deadline " << util::Table::num(deadline, 4) << " s\n\n";

  // The scheduled pipeline is separate so its serve knobs apply and the
  // baseline's sessions cannot warm anything for it (and vice versa: no
  // cache is configured, every query pays its own tier reads).
  canopus::PipelineOptions spopt;
  spopt.parallel.threads = bench::threads_flag(cli);
  spopt.io.depth = io_opt.io_depth;
  spopt.io.batch = io_opt.io_batch;
  spopt.serve = serve_config;
  Pipeline scheduled_pipeline(tiers, spopt);
  serve::QueryRequest base_query;
  base_query.path = "run.bp";
  base_query.var = ds.variable;
  base_query.target_level = 0;
  base_query.geometry = &geometry;

  const auto baseline = run_baseline(pipeline, rreq, clients, queries);
  const auto scheduled =
      run_scheduled(scheduled_pipeline, base_query, clients, queries);
  const auto stats = scheduled_pipeline.query_scheduler().stats();

  util::Table t({"config", "queries", "degraded", "shed", "p50(s)", "p99(s)",
                 "hi-pri p99(s)", "wall(s)"});
  for (const auto* r : {&baseline, &scheduled}) {
    t.add_row({r->label, std::to_string(r->completed),
               std::to_string(r->degraded), std::to_string(r->shed),
               util::Table::num(percentile(r->latencies, 0.50), 4),
               util::Table::num(percentile(r->latencies, 0.99), 4),
               util::Table::num(percentile(r->high_pri_latencies, 0.99), 4),
               util::Table::num(r->wall, 3)});
  }
  t.print(std::cout, "closed-loop serving, latency = retrieval cost (+ queue wait)");

  std::cout << "\nscheduler stats: submitted " << stats.submitted << ", admitted "
            << stats.admitted << ", shed " << stats.shed << ", completed "
            << stats.completed << ", degraded " << stats.degraded << ", failed "
            << stats.failed << ", max queue depth " << stats.max_queue_depth
            << " (limit " << serve_config.queue_limit << ")\n";
  std::cout << "mean achieved level (0 = full accuracy): "
            << util::Table::num(scheduled.mean_achieved, 2) << "\n";

  // --- acceptance checks ---------------------------------------------------
  bool ok = true;
  auto check = [&](bool condition, const std::string& what) {
    std::cout << (condition ? "  ok: " : "  FAIL: ") << what << "\n";
    ok = ok && condition;
  };

  std::cout << "\nacceptance:\n";
  check(scheduled.completed == clients * queries,
        "every query completed or degraded after backoff (" +
            std::to_string(scheduled.completed) + "/" +
            std::to_string(clients * queries) + ")");
  check(stats.submitted == stats.admitted + stats.shed &&
            stats.admitted == stats.completed + stats.failed &&
            stats.failed == 0,
        "scheduler accounting closed (no lost or failed queries)");
  // Overload is only guaranteed when the first client wave alone overwhelms
  // the admission capacity (queue slots + running workers).
  const bool overloaded_regime =
      clients > serve_config.queue_limit + serve_config.workers;
  if (overloaded_regime) {
    check(stats.shed == scheduled.shed && stats.shed > 0,
          "overload shed with kOverloaded (" + std::to_string(stats.shed) +
              " sheds) and every shed was observed by a client");
  } else {
    check(stats.shed == scheduled.shed,
          "every shed was observed by a client (clients <= capacity: shedding "
          "not required)");
  }
  check(stats.max_queue_depth <= serve_config.queue_limit,
        "queue depth never exceeded the bound (" +
            std::to_string(stats.max_queue_depth) + " <= " +
            std::to_string(serve_config.queue_limit) + ")");
  const double baseline_p99 = percentile(baseline.latencies, 0.99);
  const double high_pri_p99 = percentile(scheduled.high_pri_latencies, 0.99);
  check(high_pri_p99 < baseline_p99,
        "high-priority p99 under overload below the no-scheduler baseline (" +
            util::Table::num(high_pri_p99, 4) + " < " +
            util::Table::num(baseline_p99, 4) + " s)");
  check(scheduled.intra_level_identical,
        "queries served at the same level returned identical bits");
  for (const auto& [level, field] : scheduled.fields_by_level) {
    ReadRequest ref = rreq;
    ref.target_level = level;
    ReadResult reference;
    const auto st = pipeline.read(ref, &reference);
    check(st.ok() && reference.level == level &&
              reference.values.size() == field.size() &&
              std::memcmp(reference.values.data(), field.data(),
                          field.size() * sizeof(double)) == 0,
          "served field bitwise-identical to unscheduled read at level " +
              std::to_string(level));
  }

  std::cout << '\n';
  bench::flush_observability(std::cout);

  if (!ok) {
    std::cout << "\nFAIL: acceptance criteria not met\n";
    return 1;
  }
  return 0;
}
