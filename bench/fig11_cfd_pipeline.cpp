// Figure 11: CFD retrieval pipeline (ratios None, 2, 4, 8 as in the paper),
// plus full-accuracy restoration times (11b).

#include <iostream>

#include "bench_common.hpp"

using namespace canopus;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  bench::PipelineOptions opt;
  opt.detect_blobs = false;
  opt.ratios = {2, 4, 8};  // the CFD mesh is small; the paper stops at 8x
  opt.error_bound = cli.get_double("eb", 1e-4);
  opt.threads = bench::threads_flag(cli);
  bench::session_flags(cli, opt);
  bench::io_flags(cli, opt);
  bench::observability_flags(cli);

  const auto ds = sim::make_cfd_dataset({});
  std::cout << "workload: cfd jet pressure, " << ds.values.size()
            << " values (" << ds.values.size() * sizeof(double) / 1024
            << " KiB raw)\n\n";

  std::vector<bench::PipelineCase> full;
  const auto cases = bench::run_pipeline(ds, opt, &full);
  bench::print_pipeline_table("Fig. 11a time usage of Canopus phases", cases,
                              false, std::cout);
  std::cout << '\n';
  bench::print_pipeline_table(
      "Fig. 11b restoring full accuracy from base + deltas", full, false,
      std::cout);
  std::cout << '\n';
  bench::flush_observability(std::cout);
  return 0;
}
