// Closed-loop workload-adaptive tiering run (PR 10 acceptance bench).
//
// The paper's placement argument — refactored products should live in the
// storage hierarchy "according to access patterns" — only pays off if the
// loop actually closes: reads feed heat, heat drives placement, placement
// changes the cost of the next read. This bench drives that loop end to end
// and gates on it:
//
//   setup    two containers (a.bp, b.bp) are refactored into a two-tier
//            hierarchy — tmpfs on top, a contended Lustre OST below — and
//            every delta block is pushed down to the slow tier, the
//            pessimal static placement a write-once policy can leave behind;
//   static   a closed loop of full-accuracy ProgressiveReader queries runs
//            against that placement with NO advisor: every delta fetch pays
//            the contended tier, every query, forever;
//   adaptive the same query stream runs with a TierAdvisor watching the
//            hierarchy: the reads themselves heat the delta groups through
//            the storage access listener (no manual heat injection), the
//            advisor ticks between queries, and after the hysteresis band
//            is crossed the hot levels live on tmpfs;
//   shift    halfway through, the workload skews from a.bp to b.bp — the
//            advisor must chase the shift and promote b's deltas too.
//
// Exit is non-zero unless every acceptance criterion holds:
//   * aggregate simulated throughput (queries per simulated I/O second,
//     both phases combined) improves on the static run by at least
//     --min-speedup (default 1.5x, per the roadmap acceptance bar);
//   * every restored field is bitwise-identical between the two runs —
//     placement moved bytes around, never changed them;
//   * the advisor actually promoted something (report().promotions >= 1).
//
// Demotions and per-phase throughput are reported but not gated (decay is
// wall-clock driven, so whether a.bp cools enough to demote mid-run is
// host-speed dependent).
//
// Flags: --queries=12 (per phase) --min-speedup=1.5 [--obs] [--trace-out=f]

#include <cmath>
#include <cstddef>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "mesh/generators.hpp"
#include "tiering/tier_advisor.hpp"

using namespace canopus;

namespace {

constexpr std::size_t kSlowTier = 1;

mesh::Field smooth_field(const mesh::TriMesh& mesh, double phase) {
  mesh::Field f(mesh.vertex_count());
  for (mesh::VertexId v = 0; v < mesh.vertex_count(); ++v) {
    const auto p = mesh.vertex(v);
    f[v] = std::sin(p.x * 2.0 + phase) * std::cos(p.y * 3.0) + 0.2 * p.y;
  }
  return f;
}

/// Fast tmpfs over a contended Lustre OST — the slow tier costs ~2 ms per
/// round trip and 2 MB/s, so a delta level stranded there dominates a
/// query's simulated clock.
storage::StorageHierarchy make_tiers() {
  return storage::StorageHierarchy(
      {storage::tmpfs_spec(64ull << 20),
       bench::contended_lustre_spec(1ull << 30)});
}

/// The pessimal static placement the advisor is meant to fix: every delta
/// block of `var` down on the contended tier. Everything else (base,
/// geometry, index blocks — the kinds the advisor's policy groups exclude)
/// is pinned to the fast tier, so in both runs the slow tier holds exactly
/// the blocks that auto-tiering is allowed to move.
void strand_deltas(storage::StorageHierarchy& tiers, const std::string& path,
                   const std::string& var) {
  const adios::BpReader reader(tiers, path);
  for (const auto& b : reader.inq_var(var).blocks) {
    const std::size_t target =
        b.kind == adios::BlockKind::kDelta ? kSlowTier : 0;
    tiers.migrate(b.object_key, target);
  }
}

/// Advisor policy for the bench: effectively no decay (the clock that
/// matters is query count, not wall time), a low promote bar so the loop
/// converges within a few queries, and no cooldown.
tiering::TieringConfig bench_policy() {
  tiering::TieringConfig c;
  c.half_life_seconds = 1e6;
  c.promote_threshold = 2.0;
  c.demote_threshold = 0.5;
  c.cooldown_ticks = 0;
  c.max_moves_per_tick = 100;
  return c;
}

struct PassResult {
  double io_seconds = 0.0;                // simulated tier I/O, both phases
  std::vector<mesh::Field> fields;        // one restored field per query
  tiering::TieringReport report;
};

/// One closed-loop pass: `queries` full-accuracy reads of a.bp, then the
/// workload shifts and `queries` reads of b.bp. With `adaptive` set a
/// TierAdvisor watches the hierarchy and ticks between queries; the reads
/// themselves are the only heat source.
PassResult run_pass(const mesh::TriMesh& mesh, const mesh::Field& va,
                    const mesh::Field& vb, std::int64_t queries, bool adaptive,
                    bool verbose) {
  auto tiers = make_tiers();
  core::RefactorConfig config;
  config.levels = 3;
  config.codec = "zfp";
  config.error_bound = 1e-6;
  config.delta_chunks = 8;
  core::refactor_and_write(tiers, "a.bp", "v", mesh, va, config);
  core::refactor_and_write(tiers, "b.bp", "v", mesh, vb, config);
  strand_deltas(tiers, "a.bp", "v");
  strand_deltas(tiers, "b.bp", "v");

  std::unique_ptr<tiering::TierAdvisor> advisor;
  if (adaptive) {
    advisor = std::make_unique<tiering::TierAdvisor>(bench_policy());
    advisor->watch(tiers);
    advisor->register_container("a.bp");
    advisor->register_container("b.bp");
  }

  PassResult result;
  for (const char* path : {"a.bp", "b.bp"}) {
    for (std::int64_t q = 0; q < queries; ++q) {
      core::ProgressiveReader reader(tiers, path, "v");
      reader.refine_to(0);
      result.io_seconds += reader.cumulative().io_seconds;
      result.fields.push_back(reader.values());
      const std::size_t moves = advisor ? advisor->tick() : 0;
      if (verbose) {
        std::cout << "    " << path << " q" << q << ": "
                  << reader.cumulative().io_seconds << " sim-s io, " << moves
                  << " moves\n";
      }
    }
  }
  if (advisor) result.report = advisor->report();
  if (verbose) {
    for (const auto& key : tiers.keys_on_tier(kSlowTier)) {
      util::Bytes bytes;
      tiers.read(key, bytes);
      std::cout << "    slow tier holds " << key << " (" << bytes.size()
                << " bytes)\n";
    }
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const std::int64_t queries = cli.get_int("queries", 12);
  const double min_speedup = cli.get_double("min-speedup", 1.5);
  const bool verbose = cli.has("verbose");
  bench::observability_flags(cli);

  const auto mesh = mesh::make_annulus_mesh(16, 100, 0.5, 1.0, 0.1, 7);
  const auto va = smooth_field(mesh, 0.0);
  const auto vb = smooth_field(mesh, 1.3);

  std::cout << "adaptive tiering closed loop: " << queries
            << " queries/phase, 2 phases (a.bp then b.bp), slow tier = "
            << "contended lustre\n\n";

  const PassResult stat =
      run_pass(mesh, va, vb, queries, /*adaptive=*/false, verbose);
  const PassResult adap =
      run_pass(mesh, va, vb, queries, /*adaptive=*/true, verbose);

  const double total_queries = static_cast<double>(2 * queries);
  const double static_tput =
      stat.io_seconds > 0.0 ? total_queries / stat.io_seconds : 0.0;
  const double adaptive_tput =
      adap.io_seconds > 0.0 ? total_queries / adap.io_seconds : 0.0;
  const double speedup =
      adap.io_seconds > 0.0 ? stat.io_seconds / adap.io_seconds : 0.0;

  std::cout << "static:   " << stat.io_seconds << " sim-s total io, "
            << static_tput << " q/sim-s\n";
  std::cout << "adaptive: " << adap.io_seconds << " sim-s total io, "
            << adaptive_tput << " q/sim-s\n";
  std::cout << "speedup:  " << speedup << "x (gate: >= " << min_speedup
            << "x)\n";
  std::cout << "advisor:  " << adap.report.ticks << " ticks, "
            << adap.report.promotions << " promotions, "
            << adap.report.demotions << " demotions, " << adap.report.groups
            << " groups (" << adap.report.hot_groups << " hot)\n\n";

  bool ok = true;
  auto check = [&](bool condition, const std::string& what) {
    std::cout << (condition ? "  ok: " : "  FAIL: ") << what << "\n";
    ok = ok && condition;
  };

  check(speedup >= min_speedup,
        "adaptive placement beats static by the acceptance bar");
  check(adap.report.promotions >= 1, "the advisor promoted at least once");

  bool identical = stat.fields.size() == adap.fields.size();
  for (std::size_t q = 0; identical && q < stat.fields.size(); ++q) {
    identical = stat.fields[q].size() == adap.fields[q].size();
    for (std::size_t i = 0; identical && i < stat.fields[q].size(); ++i) {
      // Bitwise: placement must never change restored values.
      identical = stat.fields[q][i] == adap.fields[q][i];
    }
  }
  check(identical, "every restored field bitwise-identical across runs");

  bench::flush_observability(std::cout);
  if (!ok) {
    std::cout << "\nFAIL: adaptive tiering acceptance criteria not met\n";
    return 1;
  }
  std::cout << "\nall adaptive tiering acceptance criteria hold\n";
  return 0;
}
