// google-benchmark microbenchmarks of the kernels underneath every figure:
// codec encode/decode throughput, edge-collapse decimation, point location,
// delta calculation/restoration, and blob detection.
//
// `--compare` switches to the scalar-vs-SIMD harness instead (no
// google-benchmark): each vectorized hot kernel (crc32 slice-by-8, zfp
// forward/inverse block transform, sz dequantization, delta estimate /
// restore) runs both with util::simd forced scalar and with the runtime
// dispatch active, verifies the outputs are bitwise-identical, and reports
// best-of-N throughput. `--json` emits the table as JSON; `--min-speedup=R`
// fails (nonzero exit) if any vectorized kernel falls below R, and — when a
// vector ISA is active — at least two kernels must clear 2x.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "analytics/blob.hpp"
#include "analytics/raster.hpp"
#include "compress/codec.hpp"
#include "compress/sz_like.hpp"
#include "compress/zfp_like.hpp"
#include "core/delta.hpp"
#include "mesh/cascade.hpp"
#include "mesh/decimate.hpp"
#include "mesh/generators.hpp"
#include "mesh/point_locator.hpp"
#include "grid/structured.hpp"
#include "sim/datasets.hpp"
#include "util/crc32.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace canopus;

namespace {

std::vector<double> bench_signal(std::size_t n) {
  std::vector<double> xs(n);
  util::Rng rng(12);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = std::sin(static_cast<double>(i) * 0.003) * 40.0 +
            rng.normal(0.0, 0.5);
  }
  return xs;
}

const sim::Dataset& xgc_small() {
  static const sim::Dataset ds = [] {
    sim::XgcOptions opt;
    opt.rings = 40;
    opt.sectors = 200;
    return sim::make_xgc_dataset(opt);
  }();
  return ds;
}

}  // namespace

static void BM_CodecEncode(benchmark::State& state, const std::string& name) {
  const auto codec = compress::make_codec(name);
  const auto xs = bench_signal(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec->encode(xs, 1e-4));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(xs.size() * sizeof(double)));
}

static void BM_CodecDecode(benchmark::State& state, const std::string& name) {
  const auto codec = compress::make_codec(name);
  const auto xs = bench_signal(static_cast<std::size_t>(state.range(0)));
  const auto enc = codec->encode(xs, 1e-4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec->decode(enc));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(xs.size() * sizeof(double)));
}

BENCHMARK_CAPTURE(BM_CodecEncode, zfp, std::string("zfp"))->Arg(1 << 16);
BENCHMARK_CAPTURE(BM_CodecEncode, sz, std::string("sz"))->Arg(1 << 16);
BENCHMARK_CAPTURE(BM_CodecEncode, fpc, std::string("fpc"))->Arg(1 << 16);
BENCHMARK_CAPTURE(BM_CodecEncode, lzss, std::string("lzss"))->Arg(1 << 16);
BENCHMARK_CAPTURE(BM_CodecDecode, zfp, std::string("zfp"))->Arg(1 << 16);
BENCHMARK_CAPTURE(BM_CodecDecode, sz, std::string("sz"))->Arg(1 << 16);
BENCHMARK_CAPTURE(BM_CodecDecode, fpc, std::string("fpc"))->Arg(1 << 16);

static void BM_Decimate2x(benchmark::State& state) {
  const auto& ds = xgc_small();
  mesh::DecimateOptions opt;
  opt.ratio = 2.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mesh::decimate(ds.mesh, ds.values, opt));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ds.mesh.vertex_count()));
}
BENCHMARK(BM_Decimate2x)->Unit(benchmark::kMillisecond);

static void BM_PointLocation(benchmark::State& state) {
  const auto& ds = xgc_small();
  const mesh::PointLocator locator(ds.mesh);
  util::Rng rng(3);
  // Sample inside the annulus body so we measure the grid path, not the
  // outside-point fallback.
  for (auto _ : state) {
    const double r = rng.uniform(0.35, 0.95);
    const double theta = rng.uniform(0.0, 6.28);
    benchmark::DoNotOptimize(
        locator.try_locate({r * std::cos(theta), r * std::sin(theta)}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PointLocation);

static void BM_DeltaAndRestore(benchmark::State& state) {
  const auto& ds = xgc_small();
  mesh::DecimateOptions opt;
  opt.ratio = 2.0;
  const auto coarse = mesh::decimate(ds.mesh, ds.values, opt);
  const auto mapping = core::build_mapping(ds.mesh, coarse.mesh);
  for (auto _ : state) {
    const auto delta =
        core::compute_delta(coarse.mesh, coarse.values, ds.values, mapping,
                            core::EstimateMode::kUniformThirds);
    benchmark::DoNotOptimize(
        core::restore_level(coarse.mesh, coarse.values, delta, mapping,
                            core::EstimateMode::kUniformThirds));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ds.mesh.vertex_count()));
}
BENCHMARK(BM_DeltaAndRestore)->Unit(benchmark::kMillisecond);

static void BM_BlobDetection(benchmark::State& state) {
  const auto& ds = xgc_small();
  const auto bounds = ds.mesh.bounds();
  const auto raster = analytics::rasterize(ds.mesh, ds.values, 300, 300, bounds);
  const auto [lo, hi] =
      std::minmax_element(ds.values.begin(), ds.values.end());
  const auto img = analytics::to_gray8(raster, *lo, *hi);
  analytics::BlobParams params;
  params.min_threshold = 10;
  params.max_threshold = 200;
  params.min_area = 100;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analytics::detect_blobs(img, 300, 300, params));
  }
}
BENCHMARK(BM_BlobDetection)->Unit(benchmark::kMillisecond);

static void BM_Rasterize(benchmark::State& state) {
  const auto& ds = xgc_small();
  const auto bounds = ds.mesh.bounds();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analytics::rasterize(ds.mesh, ds.values, 300, 300, bounds));
  }
}
BENCHMARK(BM_Rasterize)->Unit(benchmark::kMillisecond);

static void BM_SpatialOrder(benchmark::State& state) {
  const auto& ds = xgc_small();
  for (auto _ : state) {
    benchmark::DoNotOptimize(mesh::spatial_order(ds.mesh));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ds.mesh.vertex_count()));
}
BENCHMARK(BM_SpatialOrder)->Unit(benchmark::kMillisecond);

static void BM_GridCoarsenDelta(benchmark::State& state) {
  grid::GridShape shape;
  shape.nx = 512;
  shape.ny = 512;
  grid::GridField f(shape.point_count());
  for (std::size_t i = 0; i < f.size(); ++i) {
    f[i] = std::sin(static_cast<double>(i) * 1e-3);
  }
  for (auto _ : state) {
    const auto coarse = grid::coarsen(shape, f);
    benchmark::DoNotOptimize(
        grid::compute_grid_delta(shape, f, shape.coarsened(), coarse));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(shape.point_count()));
}
BENCHMARK(BM_GridCoarsenDelta)->Unit(benchmark::kMillisecond);

namespace {

/// One scalar-vs-SIMD comparison row. `bytes` is the data volume one run of
/// `fn` touches; throughput = bytes / best-of-N seconds.
struct CompareResult {
  std::string op;
  std::size_t bytes = 0;
  double scalar_bps = 0.0;
  double simd_bps = 0.0;
  bool identical = false;
  double speedup() const {
    return scalar_bps > 0.0 ? simd_bps / scalar_bps : 0.0;
  }
};

template <typename F>
double timed_seconds(F&& fn) {
  util::WallTimer t;
  fn();
  return t.seconds();
}

/// Runs `fn` (which overwrites an output buffer) under both dispatch states,
/// checks the outputs bitwise via `digest` (raw output bytes), then times.
/// Scalar and SIMD reps are interleaved so a load spike on a shared host
/// hits both paths equally — timing them in two separate phases makes the
/// speedup ratio swing wildly when the machine slows mid-measurement.
template <typename Fn, typename Digest>
CompareResult compare_kernel(const std::string& op, std::size_t bytes, Fn&& fn,
                             Digest&& digest, int reps = 5) {
  CompareResult r;
  r.op = op;
  r.bytes = bytes;
  std::vector<std::uint8_t> scalar_digest, simd_digest;
  {
    util::simd::ScopedForceScalar scalar;
    fn();
    scalar_digest = digest();
  }
  fn();
  simd_digest = digest();
  r.identical = scalar_digest == simd_digest;

  double best_scalar = 1e30, best_simd = 1e30;
  for (int rep = 0; rep < reps; ++rep) {
    {
      util::simd::ScopedForceScalar scalar;
      best_scalar = std::min(best_scalar, timed_seconds(fn));
    }
    best_simd = std::min(best_simd, timed_seconds(fn));
  }
  r.scalar_bps = static_cast<double>(bytes) / best_scalar;
  r.simd_bps = static_cast<double>(bytes) / best_simd;
  return r;
}

std::vector<std::uint8_t> bytes_of(const void* p, std::size_t n) {
  std::vector<std::uint8_t> out(n);
  std::memcpy(out.data(), p, n);
  return out;
}

int run_compare(bool json, double min_speedup) {
  util::Rng rng(42);
  std::vector<CompareResult> rows;

  {  // CRC-32: bytewise table walk vs slice-by-8.
    std::vector<std::uint8_t> buf(16u << 20);
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next_u64());
    std::uint32_t crc = 0;
    auto fn = [&] {
      util::Crc32 c;
      c.update(buf.data(), buf.size());
      crc = c.value();
    };
    rows.push_back(compare_kernel("crc32", buf.size(), fn, [&] {
      return bytes_of(&crc, sizeof(crc));
    }));
  }

  // The transform/dequant kernels use L2-resident working sets with an inner
  // repeat loop: the compare measures the kernels themselves, not DRAM
  // bandwidth (which caps both paths at the same number).
  {  // zfp-like forward Haar lifting over 64-sample blocks.
    const std::size_t n = (1u << 15);  // 512 blocks, 256 KiB
    const int iters = 32;
    std::vector<std::int64_t> base(n), work(n);
    for (auto& v : base) {
      v = static_cast<std::int64_t>(rng.next_u64() >> 20) - (1ll << 43);
    }
    auto fwd = [&] {
      for (int it = 0; it < iters; ++it) {
        work = base;
        for (std::size_t b = 0; b < n; b += compress::detail::kZfpBlock) {
          compress::detail::forward_transform64(work.data() + b);
        }
      }
    };
    rows.push_back(compare_kernel("zfp_fwd_transform",
                                  iters * n * sizeof(std::int64_t), fwd, [&] {
                                    return bytes_of(work.data(),
                                                    n * sizeof(std::int64_t));
                                  }, 15));
    // Inverse over the transformed blocks (round-trips back to `base`).
    const std::vector<std::int64_t> coeffs = [&] {
      util::simd::ScopedForceScalar scalar;
      fwd();
      return work;
    }();
    auto inv = [&] {
      for (int it = 0; it < iters; ++it) {
        work = coeffs;
        for (std::size_t b = 0; b < n; b += compress::detail::kZfpBlock) {
          compress::detail::inverse_transform64(work.data() + b);
        }
      }
    };
    rows.push_back(compare_kernel("zfp_inv_transform",
                                  iters * n * sizeof(std::int64_t), inv, [&] {
                                    return bytes_of(work.data(),
                                                    n * sizeof(std::int64_t));
                                  }, 15));
  }

  {  // sz-like dequantization: zigzag decode + int->double scale.
    const std::size_t n = (1u << 14);  // 256 KiB codes + out
    const int iters = 256;
    std::vector<std::uint64_t> codes(n);
    for (auto& c : codes) c = rng.next_u64() % (1u << 21);
    std::vector<double> out(n);
    auto fn = [&] {
      for (int it = 0; it < iters; ++it) {
        compress::detail::dequant_codes(codes.data(), n, 1e-4, out.data());
      }
    };
    rows.push_back(compare_kernel("sz_dequant", iters * n * sizeof(double), fn,
                                  [&] {
                                    return bytes_of(out.data(),
                                                    n * sizeof(double));
                                  }, 15));
  }

  {  // Delta estimate loops (Algorithms 2+3) on the XGC mesh, barycentric
     // interpolation (the arithmetic-heavy estimate mode).
    const auto& ds = xgc_small();
    mesh::DecimateOptions opt;
    opt.ratio = 2.0;
    const auto coarse = mesh::decimate(ds.mesh, ds.values, opt);
    const auto mapping = core::build_mapping(ds.mesh, coarse.mesh);
    const std::size_t bytes = ds.values.size() * sizeof(double);
    mesh::Field delta, restored;
    auto fn_delta = [&] {
      delta = core::compute_delta(coarse.mesh, coarse.values, ds.values,
                                  mapping, core::EstimateMode::kBarycentric);
    };
    rows.push_back(compare_kernel("delta_estimate", bytes, fn_delta, [&] {
      return bytes_of(delta.data(), delta.size() * sizeof(double));
    }, 15));
    fn_delta();
    auto fn_restore = [&] {
      restored = core::restore_level(coarse.mesh, coarse.values, delta, mapping,
                                     core::EstimateMode::kBarycentric);
    };
    rows.push_back(compare_kernel("delta_restore", bytes, fn_restore, [&] {
      return bytes_of(restored.data(), restored.size() * sizeof(double));
    }, 15));
  }

  const bool vector_isa =
      util::simd::hardware_isa() != util::simd::Isa::kScalar;
  bool all_identical = true;
  bool above_min = true;
  std::size_t two_x = 0;
  for (const auto& r : rows) {
    all_identical = all_identical && r.identical;
    above_min = above_min && r.speedup() >= min_speedup;
    if (r.speedup() >= 2.0) ++two_x;
  }
  // Without a vector ISA both runs execute the same scalar code; the gates
  // would only measure timer noise, so they pass vacuously.
  const bool pass = all_identical &&
                    (!vector_isa || (above_min && two_x >= 2));

  if (json) {
    std::cout << "{\n  \"isa\": \"" << util::simd::to_string(util::simd::active_isa())
              << "\",\n  \"min_speedup\": " << min_speedup
              << ",\n  \"kernels\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto& r = rows[i];
      std::cout << "    {\"op\": \"" << r.op << "\", \"bytes\": " << r.bytes
                << ", \"scalar_bytes_per_s\": " << static_cast<std::uint64_t>(r.scalar_bps)
                << ", \"simd_bytes_per_s\": " << static_cast<std::uint64_t>(r.simd_bps)
                << ", \"speedup\": " << util::Table::num(r.speedup(), 2)
                << ", \"bitwise_identical\": " << (r.identical ? "true" : "false")
                << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    std::cout << "  ],\n  \"pass\": " << (pass ? "true" : "false") << "\n}\n";
  } else {
    util::Table t({"op", "scalar MB/s", "simd MB/s", "speedup", "bitwise"});
    for (const auto& r : rows) {
      t.add_row({r.op, util::Table::num(r.scalar_bps / 1e6, 1),
                 util::Table::num(r.simd_bps / 1e6, 1),
                 util::Table::num(r.speedup(), 2) + "x",
                 r.identical ? "identical" : "DIFFERS"});
    }
    t.print(std::cout, "scalar vs SIMD kernels (isa " +
                           std::string(util::simd::to_string(
                               util::simd::active_isa())) +
                           ", best-of-N wall time)");
    if (!pass) {
      std::cout << "\nFAIL: " << (all_identical ? "" : "outputs differ; ")
                << (above_min ? "" : "a kernel fell below the speedup floor; ")
                << (two_x >= 2 || !vector_isa ? "" : "fewer than 2 kernels at >=2x")
                << "\n";
    }
  }
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool compare = false;
  bool json = false;
  // The floor tolerates ~10% wall-clock jitter: near-parity kernels (the
  // gather-bound delta loops) would otherwise flake on shared hosts.
  double min_speedup = 0.9;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--compare") compare = true;
    if (arg == "--json") json = true;
    if (arg.rfind("--min-speedup=", 0) == 0) {
      min_speedup = std::stod(arg.substr(std::strlen("--min-speedup=")));
    }
  }
  if (compare) return run_compare(json, min_speedup);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
