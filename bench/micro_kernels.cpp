// google-benchmark microbenchmarks of the kernels underneath every figure:
// codec encode/decode throughput, edge-collapse decimation, point location,
// delta calculation/restoration, and blob detection.

#include <benchmark/benchmark.h>

#include <cmath>

#include "analytics/blob.hpp"
#include "analytics/raster.hpp"
#include "compress/codec.hpp"
#include "core/delta.hpp"
#include "mesh/cascade.hpp"
#include "mesh/decimate.hpp"
#include "mesh/generators.hpp"
#include "mesh/point_locator.hpp"
#include "grid/structured.hpp"
#include "sim/datasets.hpp"
#include "util/rng.hpp"

using namespace canopus;

namespace {

std::vector<double> bench_signal(std::size_t n) {
  std::vector<double> xs(n);
  util::Rng rng(12);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = std::sin(static_cast<double>(i) * 0.003) * 40.0 +
            rng.normal(0.0, 0.5);
  }
  return xs;
}

const sim::Dataset& xgc_small() {
  static const sim::Dataset ds = [] {
    sim::XgcOptions opt;
    opt.rings = 40;
    opt.sectors = 200;
    return sim::make_xgc_dataset(opt);
  }();
  return ds;
}

}  // namespace

static void BM_CodecEncode(benchmark::State& state, const std::string& name) {
  const auto codec = compress::make_codec(name);
  const auto xs = bench_signal(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec->encode(xs, 1e-4));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(xs.size() * sizeof(double)));
}

static void BM_CodecDecode(benchmark::State& state, const std::string& name) {
  const auto codec = compress::make_codec(name);
  const auto xs = bench_signal(static_cast<std::size_t>(state.range(0)));
  const auto enc = codec->encode(xs, 1e-4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec->decode(enc));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(xs.size() * sizeof(double)));
}

BENCHMARK_CAPTURE(BM_CodecEncode, zfp, std::string("zfp"))->Arg(1 << 16);
BENCHMARK_CAPTURE(BM_CodecEncode, sz, std::string("sz"))->Arg(1 << 16);
BENCHMARK_CAPTURE(BM_CodecEncode, fpc, std::string("fpc"))->Arg(1 << 16);
BENCHMARK_CAPTURE(BM_CodecEncode, lzss, std::string("lzss"))->Arg(1 << 16);
BENCHMARK_CAPTURE(BM_CodecDecode, zfp, std::string("zfp"))->Arg(1 << 16);
BENCHMARK_CAPTURE(BM_CodecDecode, sz, std::string("sz"))->Arg(1 << 16);
BENCHMARK_CAPTURE(BM_CodecDecode, fpc, std::string("fpc"))->Arg(1 << 16);

static void BM_Decimate2x(benchmark::State& state) {
  const auto& ds = xgc_small();
  mesh::DecimateOptions opt;
  opt.ratio = 2.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mesh::decimate(ds.mesh, ds.values, opt));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ds.mesh.vertex_count()));
}
BENCHMARK(BM_Decimate2x)->Unit(benchmark::kMillisecond);

static void BM_PointLocation(benchmark::State& state) {
  const auto& ds = xgc_small();
  const mesh::PointLocator locator(ds.mesh);
  util::Rng rng(3);
  // Sample inside the annulus body so we measure the grid path, not the
  // outside-point fallback.
  for (auto _ : state) {
    const double r = rng.uniform(0.35, 0.95);
    const double theta = rng.uniform(0.0, 6.28);
    benchmark::DoNotOptimize(
        locator.try_locate({r * std::cos(theta), r * std::sin(theta)}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PointLocation);

static void BM_DeltaAndRestore(benchmark::State& state) {
  const auto& ds = xgc_small();
  mesh::DecimateOptions opt;
  opt.ratio = 2.0;
  const auto coarse = mesh::decimate(ds.mesh, ds.values, opt);
  const auto mapping = core::build_mapping(ds.mesh, coarse.mesh);
  for (auto _ : state) {
    const auto delta =
        core::compute_delta(coarse.mesh, coarse.values, ds.values, mapping,
                            core::EstimateMode::kUniformThirds);
    benchmark::DoNotOptimize(
        core::restore_level(coarse.mesh, coarse.values, delta, mapping,
                            core::EstimateMode::kUniformThirds));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ds.mesh.vertex_count()));
}
BENCHMARK(BM_DeltaAndRestore)->Unit(benchmark::kMillisecond);

static void BM_BlobDetection(benchmark::State& state) {
  const auto& ds = xgc_small();
  const auto bounds = ds.mesh.bounds();
  const auto raster = analytics::rasterize(ds.mesh, ds.values, 300, 300, bounds);
  const auto [lo, hi] =
      std::minmax_element(ds.values.begin(), ds.values.end());
  const auto img = analytics::to_gray8(raster, *lo, *hi);
  analytics::BlobParams params;
  params.min_threshold = 10;
  params.max_threshold = 200;
  params.min_area = 100;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analytics::detect_blobs(img, 300, 300, params));
  }
}
BENCHMARK(BM_BlobDetection)->Unit(benchmark::kMillisecond);

static void BM_Rasterize(benchmark::State& state) {
  const auto& ds = xgc_small();
  const auto bounds = ds.mesh.bounds();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analytics::rasterize(ds.mesh, ds.values, 300, 300, bounds));
  }
}
BENCHMARK(BM_Rasterize)->Unit(benchmark::kMillisecond);

static void BM_SpatialOrder(benchmark::State& state) {
  const auto& ds = xgc_small();
  for (auto _ : state) {
    benchmark::DoNotOptimize(mesh::spatial_order(ds.mesh));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ds.mesh.vertex_count()));
}
BENCHMARK(BM_SpatialOrder)->Unit(benchmark::kMillisecond);

static void BM_GridCoarsenDelta(benchmark::State& state) {
  grid::GridShape shape;
  shape.nx = 512;
  shape.ny = 512;
  grid::GridField f(shape.point_count());
  for (std::size_t i = 0; i < f.size(); ++i) {
    f[i] = std::sin(static_cast<double>(i) * 1e-3);
  }
  for (auto _ : state) {
    const auto coarse = grid::coarsen(shape, f);
    benchmark::DoNotOptimize(
        grid::compute_grid_delta(shape, f, shape.coarsened(), coarse));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(shape.point_count()));
}
BENCHMARK(BM_GridCoarsenDelta)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
