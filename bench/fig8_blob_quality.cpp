// Figures 7 and 8: impact of decimation on blob detection quality.
//
// A 6-level Canopus refactoring of the XGC1 dpot plane yields accuracy levels
// at decimation ratios None(1), 2, 4, 8, 16, 32. For each level and each of
// the paper's three detector configs <minThreshold, maxThreshold, minArea>,
// we report: number of blobs (8a), average blob diameter in pixels (8b),
// aggregate blob area in square pixels (8c), and the overlap ratio against
// the full-accuracy blobs (8d). The macroscopic panels of Fig. 7 are dumped
// as PGM images per level.

#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "mesh/mesh_io.hpp"

using namespace canopus;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto raster_px = static_cast<std::size_t>(cli.get_int("raster", 360));
  const auto out_dir = cli.get("out", "/tmp");
  const std::size_t levels = 6;  // ratios 1 .. 32

  const auto ds = sim::make_xgc_dataset({});
  std::cout << "workload: xgc1 dpot plane, " << ds.mesh.vertex_count()
            << " vertices / " << ds.mesh.triangle_count() << " triangles; "
            << levels - 1 << " decimation passes\n\n";

  // Build the level stack once via the refactor+read path so what we analyze
  // is exactly what an analytics consumer would see.
  auto tiers = bench::make_two_tier(1 << 20);
  core::RefactorConfig config;
  config.levels = levels;
  config.codec = "zfp";
  config.error_bound = 1e-4;
  core::refactor_and_write(tiers, "fig8.bp", "dpot", ds.mesh, ds.values, config);

  const auto bounds = ds.mesh.bounds();
  // Clamp intensities at zero: blobs are positive over-densities and the
  // detector's thresholds sweep their amplitude range (see bench_common).
  const double lo = 0.0;
  const double hi = *std::max_element(ds.values.begin(), ds.values.end());

  // Collect the per-level images, deepest (base) first then refined.
  struct LevelImage {
    std::string label;  // decimation ratio
    std::uint32_t level;
    std::vector<std::uint8_t> gray;
  };
  std::vector<LevelImage> images;
  {
    core::ProgressiveReader reader(tiers, "fig8.bp", "dpot");
    for (;;) {
      const auto raster = analytics::rasterize(reader.current_mesh(),
                                               reader.values(), raster_px,
                                               raster_px, bounds, lo);
      const double ratio = reader.decimation_ratio();
      LevelImage img;
      img.level = reader.current_level();
      img.label = reader.at_full_accuracy()
                      ? "None"
                      : std::to_string(static_cast<int>(std::round(ratio)));
      img.gray = analytics::to_gray8(raster, lo, hi);
      images.push_back(std::move(img));
      if (reader.at_full_accuracy()) break;
      reader.refine();
    }
  }
  std::reverse(images.begin(), images.end());  // None first, then 2, 4, ...

  // Fig. 7 panels, with the detected blobs explicitly circled as in the
  // paper (Config1 detection).
  for (const auto& img : images) {
    auto annotated = img.gray;
    const auto blobs = analytics::detect_blobs(img.gray, raster_px, raster_px,
                                               bench::blob_config(1));
    analytics::annotate_blobs(annotated, raster_px, raster_px, blobs);
    mesh::save_pgm(annotated, raster_px, raster_px,
                   out_dir + "/fig7_L" + std::to_string(img.level) + ".pgm");
  }
  std::cout << "Fig. 7 panels (blobs circled) written to " << out_dir
            << "/fig7_L*.pgm\n\n";

  // Fig. 8 sweeps.
  for (int cfg = 1; cfg <= 3; ++cfg) {
    const auto params = bench::blob_config(cfg);
    std::vector<analytics::Blob> reference;
    util::Table t({"decimation", "blobs(8a)", "avg-diam-px(8b)",
                   "aggr-area-px2(8c)", "overlap(8d)"});
    for (const auto& img : images) {
      const auto blobs =
          analytics::detect_blobs(img.gray, raster_px, raster_px, params);
      if (img.label == "None") reference = blobs;
      const auto s = analytics::summarize(blobs);
      t.add_row({img.label, std::to_string(s.count),
                 util::Table::num(s.mean_diameter, 1),
                 util::Table::num(s.aggregate_area, 0),
                 util::Table::num(analytics::overlap_ratio(blobs, reference), 3)});
    }
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "Fig. 8 Config%d <min=%g, max=%g, minArea=%g>", cfg,
                  params.min_threshold, params.max_threshold, params.min_area);
    t.print(std::cout, buf);
    if (cli.has("csv")) {
      t.save_csv(cli.get("csv", ".") + "/fig8_config" + std::to_string(cfg) +
                 ".csv");
    }
    std::cout << '\n';
  }
  std::cout << "Observation: decimation erodes faint blobs, inflates surviving\n"
               "ones (edge-collapse averaging), yet the overlap with the\n"
               "full-accuracy blobs stays high -- Section IV-D.\n";
  return 0;
}
