// Campaign-scale write path: many timesteps of one variable over a static
// mesh, refactored in parallel.
//
// Backs two claims from the paper: refactoring is embarrassingly parallel
// (Section III-C1 — the collapse sequence is local and, with shortest-first
// priority, field-independent, so timesteps fan out across cores), and the
// one-time write cost is amortized over many analyses (Section III-A). The
// sweep reports wall-clock refactoring time vs worker count and the
// geometry-vs-data byte split.

#include <iostream>
#include <thread>

#include "bench_common.hpp"
#include "core/campaign.hpp"

using namespace canopus;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto steps = static_cast<std::size_t>(cli.get_int("timesteps", 16));

  sim::XgcOptions opt;
  opt.rings = 40;
  opt.sectors = 200;
  const auto ds = sim::make_xgc_dataset(opt);
  const mesh::TriMesh& mesh = ds.mesh;
  // Evolve the plane over timesteps: amplitude drift plus a traveling wave,
  // all sampled on the campaign's one static mesh.
  std::vector<mesh::Field> timesteps;
  for (std::size_t t = 0; t < steps; ++t) {
    mesh::Field f(mesh.vertex_count());
    const double phase = 0.35 * static_cast<double>(t);
    for (mesh::VertexId v = 0; v < mesh.vertex_count(); ++v) {
      const auto p = mesh.vertex(v);
      f[v] = ds.values[v] * (1.0 + 0.04 * std::sin(phase)) +
             0.03 * std::sin(6.0 * std::atan2(p.y, p.x) + phase);
    }
    timesteps.push_back(std::move(f));
  }
  std::cout << "workload: " << steps << " timesteps x " << mesh.vertex_count()
            << " vertices\n\n";

  util::Table t({"threads", "geometry(s)", "refactor-wall(s)", "speedup",
                 "stored-KiB", "geometry-KiB"});
  double base_wall = 0.0;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<std::size_t> sweep{1, 2, 4, hw};
  std::sort(sweep.begin(), sweep.end());
  sweep.erase(std::unique(sweep.begin(), sweep.end()), sweep.end());
  for (std::size_t threads : sweep) {
    auto tiers = bench::make_two_tier(64 << 20);
    core::CampaignConfig config;
    config.refactor.levels = 3;
    config.refactor.codec = "zfp";
    config.refactor.error_bound = 1e-4;
    config.threads = threads;
    const auto report = core::write_campaign(tiers, "camp.bp", "dpot", mesh,
                                             timesteps, config);
    if (base_wall == 0.0) base_wall = report.refactor_wall_seconds;
    t.add_row({std::to_string(threads),
               util::Table::num(report.geometry_seconds, 3),
               util::Table::num(report.refactor_wall_seconds, 3),
               util::Table::num(base_wall / report.refactor_wall_seconds, 2),
               util::Table::num(static_cast<double>(report.stored_bytes) / 1024.0, 0),
               util::Table::num(static_cast<double>(report.geometry_bytes) / 1024.0, 0)});
  }
  t.print(std::cout, "Campaign refactoring scalability (single-node worker sweep)");
  std::cout << "\nNote: geometry (meshes + mappings) is written once per\n"
               "campaign; per-timestep products amortize it.\n";
  return 0;
}
