// Figure 9: XGC1 end-to-end analytics pipeline under progressive retrieval.
//
// 9a: time breakdown (I/O, decompression, restoration, blob detection) of
//     constructing the next accuracy level at each decimation ratio, vs the
//     "None" baseline that reads the raw full-accuracy data from the PFS.
// 9b: time to restore the *full* accuracy data from the base dataset and all
//     deltas, per decimation ratio — the I/O savings from the fast tier and
//     the delta pre-conditioning make this beat the raw read.

#include <iostream>

#include "bench_common.hpp"

using namespace canopus;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  bench::PipelineOptions opt;
  opt.detect_blobs = true;
  opt.raster_px = static_cast<std::size_t>(cli.get_int("raster", 360));
  opt.error_bound = cli.get_double("eb", 1e-4);
  // --fault-rate p injects read failures (and p/10 bit-flip corruption) on
  // the contended PFS tier; reads retry, fall back to replicas, or degrade.
  opt.fault_rate = cli.get_double("fault-rate", 0.0);
  opt.fault_seed = static_cast<std::uint64_t>(cli.get_int("fault-seed", 7));
  opt.threads = bench::threads_flag(cli);
  // --cache-mb=N attaches a shared block cache per case; --sessions=K runs
  // the next-level retrieval as K concurrent ReadSessions (mean per-session
  // cost reported). See bench/concurrent_readers for the dedicated study.
  bench::session_flags(cli, opt);
  // --trace-out=trace.json records spans + metrics and exports a Chrome trace.
  bench::observability_flags(cli);

  const auto ds = sim::make_xgc_dataset({});
  std::cout << "workload: xgc1 dpot plane, " << ds.values.size()
            << " values (" << ds.values.size() * sizeof(double) / 1024
            << " KiB raw), contended-PFS + tmpfs hierarchy\n\n";

  std::vector<bench::PipelineCase> full;
  const auto cases = bench::run_pipeline(ds, opt, &full);
  bench::print_pipeline_table(
      "Fig. 9a end-to-end analysis time (construct next level + blob detect)",
      cases, true, std::cout);
  std::cout << '\n';
  bench::print_pipeline_table(
      "Fig. 9b restoring full accuracy from base + deltas", full, false,
      std::cout);

  if (opt.fault_rate > 0.0) {
    std::cout << '\n';
    bench::print_fault_summary(
        "fault model (rate " + util::Table::num(opt.fault_rate, 3) +
            ", seed " + std::to_string(opt.fault_seed) +
            "): full-restoration fault counters",
        full, std::cout);
  }

  const double none_total = full.front().total();
  double best = none_total;
  for (const auto& c : full) best = std::min(best, c.total());
  std::cout << "\nfull-accuracy restoration vs raw read: best "
            << util::Table::pct(1.0 - best / none_total)
            << " faster (paper reports up to ~50%)\n";

  std::cout << '\n';
  bench::flush_observability(std::cout);
  return 0;
}
