// Figure 9: XGC1 end-to-end analytics pipeline under progressive retrieval.
//
// 9a: time breakdown (I/O, decompression, restoration, blob detection) of
//     constructing the next accuracy level at each decimation ratio, vs the
//     "None" baseline that reads the raw full-accuracy data from the PFS.
// 9b: time to restore the *full* accuracy data from the base dataset and all
//     deltas, per decimation ratio — the I/O savings from the fast tier and
//     the delta pre-conditioning make this beat the raw read.

#include <iostream>

#include "bench_common.hpp"

using namespace canopus;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  bench::PipelineOptions opt;
  opt.detect_blobs = true;
  opt.raster_px = static_cast<std::size_t>(cli.get_int("raster", 360));
  opt.error_bound = cli.get_double("eb", 1e-4);
  // --fault-rate p injects read failures (and p/10 bit-flip corruption) on
  // the contended PFS tier; reads retry, fall back to replicas, or degrade.
  opt.fault_rate = cli.get_double("fault-rate", 0.0);
  opt.fault_seed = static_cast<std::uint64_t>(cli.get_int("fault-seed", 7));
  opt.threads = bench::threads_flag(cli);
  // --cache-mb=N attaches a shared block cache per case; --sessions=K runs
  // the next-level retrieval as K concurrent ReadSessions (mean per-session
  // cost reported). See bench/concurrent_readers for the dedicated study.
  bench::session_flags(cli, opt);
  // --io-depth=D routes delta fetches through the async engine (D reads in
  // flight, completion-driven decode); --delta-chunks sets the write-side
  // chunking that gives it parallelism. --io-ab runs the acceptance A/B.
  bench::io_flags(cli, opt);
  // --trace-out=trace.json records spans + metrics and exports a Chrome trace.
  bench::observability_flags(cli);

  const auto ds = sim::make_xgc_dataset({});

  if (cli.has("io-ab")) {
    // Acceptance A/B: identical container (delta_chunks >= 8 so the ring has
    // parallelism), full restoration read twice — blocking (depth 1) vs
    // async (depth >= 8). The restored field must be bitwise-identical and
    // the async simulated I/O strictly lower; exit nonzero otherwise.
    const std::uint32_t depth = std::max<std::uint32_t>(8, opt.io_depth);
    const std::uint32_t chunks = std::max<std::uint32_t>(8, opt.delta_chunks);
    auto tiers = bench::make_two_tier(ds.values.size() * sizeof(double));
    canopus::PipelineOptions popt;
    popt.parallel.threads = opt.threads;
    Pipeline write_pipe(tiers, popt);
    WriteRequest wreq;
    wreq.path = "ab.bp";
    wreq.var = ds.variable;
    wreq.mesh = &ds.mesh;
    wreq.values = &ds.values;
    wreq.config.levels = 4;
    wreq.config.codec = opt.codec;
    wreq.config.error_bound = opt.error_bound;
    wreq.config.delta_chunks = chunks;
    const auto ws = write_pipe.write(wreq);
    if (!ws.ok()) throw Error("refactor failed: " + ws.to_string());
    const auto geometry = core::GeometryCache::load(tiers, "ab.bp", ds.variable);

    ReadRequest rreq;
    rreq.path = "ab.bp";
    rreq.var = ds.variable;
    rreq.geometry = &geometry;
    rreq.target_level = 0;

    auto run_side = [&](std::uint32_t io_depth) {
      canopus::PipelineOptions side = popt;
      side.io.depth = io_depth;
      side.io.batch = opt.io_batch;
      Pipeline p(tiers, side);
      ReadResult r;
      const auto st = p.read(rreq, &r);
      if (!st.usable()) throw Error("A/B read failed: " + st.to_string());
      return r;
    };
    const auto blocking = run_side(1);
    const auto async = run_side(depth);

    util::Table t({"path", "io(s)", "decompress(s)", "restore(s)"});
    t.add_row({"blocking depth=1", util::Table::num(blocking.timings.io_seconds, 5),
               util::Table::num(blocking.timings.decompress_seconds, 4),
               util::Table::num(blocking.timings.restore_seconds, 4)});
    t.add_row({"async depth=" + std::to_string(depth),
               util::Table::num(async.timings.io_seconds, 5),
               util::Table::num(async.timings.decompress_seconds, 4),
               util::Table::num(async.timings.restore_seconds, 4)});
    t.print(std::cout, "Fig. 9 async I/O A/B (full restoration, " +
                           std::to_string(chunks) + " delta chunks)");

    if (blocking.values != async.values) {
      std::cerr << "FAIL: async restoration is not bitwise-identical to the "
                   "blocking path\n";
      return 1;
    }
    if (!(async.timings.io_seconds < blocking.timings.io_seconds)) {
      std::cerr << "FAIL: async io_seconds (" << async.timings.io_seconds
                << ") not below blocking (" << blocking.timings.io_seconds
                << ")\n";
      return 1;
    }
    std::cout << "\nasync vs blocking simulated I/O: "
              << util::Table::pct(1.0 - async.timings.io_seconds /
                                            blocking.timings.io_seconds)
              << " lower, restored field bitwise-identical\n";
    return 0;
  }
  std::cout << "workload: xgc1 dpot plane, " << ds.values.size()
            << " values (" << ds.values.size() * sizeof(double) / 1024
            << " KiB raw), contended-PFS + tmpfs hierarchy\n\n";

  std::vector<bench::PipelineCase> full;
  const auto cases = bench::run_pipeline(ds, opt, &full);
  bench::print_pipeline_table(
      "Fig. 9a end-to-end analysis time (construct next level + blob detect)",
      cases, true, std::cout);
  std::cout << '\n';
  bench::print_pipeline_table(
      "Fig. 9b restoring full accuracy from base + deltas", full, false,
      std::cout);

  if (opt.fault_rate > 0.0) {
    std::cout << '\n';
    bench::print_fault_summary(
        "fault model (rate " + util::Table::num(opt.fault_rate, 3) +
            ", seed " + std::to_string(opt.fault_seed) +
            "): full-restoration fault counters",
        full, std::cout);
  }

  const double none_total = full.front().total();
  double best = none_total;
  for (const auto& c : full) best = std::min(best, c.total());
  std::cout << "\nfull-accuracy restoration vs raw read: best "
            << util::Table::pct(1.0 - best / none_total)
            << " faster (paper reports up to ~50%)\n";

  std::cout << '\n';
  bench::flush_observability(std::cout);
  return 0;
}
