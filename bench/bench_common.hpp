#pragma once
// Shared scenario plumbing for the figure-reproduction benches.
//
// Storage envelope: the paper emulates a two-tier hierarchy (DRAM tmpfs +
// Lustre) on Titan during a period when the PFS was the bottleneck of the
// whole campaign (Section I). We therefore model the Lustre tier as a
// *contended* per-reader stream — high latency, low effective bandwidth —
// which is exactly the regime Canopus targets; the tmpfs tier keeps its
// DRAM-class envelope. Absolute seconds differ from the paper's testbed, but
// the relative shape (I/O-dominated pipelines, fast-tier wins) is preserved.
// See EXPERIMENTS.md for the calibration notes.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "adios/bp.hpp"
#include "analytics/blob.hpp"
#include "cache/block_cache.hpp"
#include "analytics/raster.hpp"
#include "core/canopus.hpp"
#include "obs/observability.hpp"
#include "sim/datasets.hpp"
#include "storage/hierarchy.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace canopus::bench {

/// Contended production-PFS envelope (per-reader effective stream).
inline storage::TierSpec contended_lustre_spec(std::size_t capacity) {
  auto spec = storage::lustre_spec(capacity);
  spec.read_bandwidth = 2e6;    // 2 MB/s effective under contention
  spec.write_bandwidth = 4e6;
  spec.read_latency = 2e-3;
  spec.write_latency = 2e-3;
  return spec;
}

/// Two-tier hierarchy sized so that refactored bases fit the fast tier and
/// everything else (deltas, raw baselines) spills to the contended PFS.
inline storage::StorageHierarchy make_two_tier(std::size_t fast_capacity) {
  return storage::StorageHierarchy(
      {storage::tmpfs_spec(fast_capacity), contended_lustre_spec(8ull << 30)});
}

/// The paper's three blob-detection configs <minThreshold, maxThreshold,
/// minArea> (Section IV-D).
inline analytics::BlobParams blob_config(int which) {
  analytics::BlobParams p;
  p.threshold_step = 10;
  switch (which) {
    case 1: p.min_threshold = 10;  p.max_threshold = 200; p.min_area = 100; break;
    case 2: p.min_threshold = 150; p.max_threshold = 200; p.min_area = 100; break;
    case 3: p.min_threshold = 10;  p.max_threshold = 200; p.min_area = 200; break;
    default: throw Error("blob config must be 1, 2 or 3");
  }
  return p;
}

/// Result of one end-to-end analytics pipeline case (Figs. 9-11).
struct PipelineCase {
  std::string label;        // "None", "2", "4", ...
  double io = 0.0;          // simulated tier I/O seconds
  double decompress = 0.0;  // wall
  double restore = 0.0;     // wall
  double analysis = 0.0;    // wall (blob detection; 0 when not run)
  std::size_t retries = 0;          // faulted reads that were retried
  std::size_t corruptions = 0;      // CRC failures among those
  std::size_t replica_reads = 0;    // reads served by a replica copy
  double total() const { return io + decompress + restore + analysis; }
};

/// Runs the Figs. 9-11 protocol for one dataset.
///
/// "None": read the raw full-accuracy variable straight from the contended
/// PFS and (optionally) run blob detection — no decompression, no restore.
/// Ratio r: refactor with base at decimation ratio r (levels = log2(r) + 1),
/// retrieve the compressed base from the fast tier plus the first delta,
/// restore the next level, and analyze it — the paper's per-case protocol
/// ("each measures the time spent constructing the next level of accuracy").
///
/// `full_restoration` receives the Fig. 9b/10b/11b series: the time to
/// restore the *full* accuracy L0 from the base and every delta at each
/// ratio (the "None" entry is the raw read).
struct PipelineOptions {
  std::vector<int> ratios{2, 4, 8, 16, 32};
  bool detect_blobs = false;
  std::size_t raster_px = 360;
  int blob_config = 1;
  std::string codec = "zfp";
  double error_bound = 1e-4;
  // Fault injection on the slow tier (--fault-rate): probability of an
  // injected read failure; a tenth of it additionally bit-flips payloads.
  // Zero disables injection entirely (byte-identical to the fault-free path).
  double fault_rate = 0.0;
  std::uint64_t fault_seed = 7;
  // Worker count for the refactor/restore pipelines (--threads): 0 = the
  // process-global pool sized to hardware concurrency. Results are
  // bitwise-identical for any value; only wall-clock changes.
  std::size_t threads = 0;
  // Shared block cache budget in MiB (--cache-mb): 0 keeps the uncached
  // per-reader behavior; any positive value attaches a cache::BlockCache to
  // each per-case hierarchy, so repeat reads of the same tier blobs (and
  // their decoded chunk arrays) are served from memory with single-flight
  // loading. Results stay bitwise-identical; only the cost moves.
  std::size_t cache_mb = 0;
  // Concurrent read sessions for the next-level case (--sessions): N > 1
  // opens N Pipeline::open_session() clients that refine in parallel on
  // their own threads; the reported row is the mean per-session cost (and
  // the counter columns the totals). 1 keeps the single-reader protocol.
  std::size_t sessions = 1;
  // Async I/O engine (--io-depth / --io-batch): depth > 1 routes each
  // reader's delta fetches through an io::IoRing that keeps `io_depth` tier
  // reads in flight (submitted to the hierarchy in batches of `io_batch`)
  // and decodes each chunk as its completion lands. Results stay
  // bitwise-identical to the blocking path; the io(s) column then reports
  // the overlapped makespan instead of the serial sum. Needs delta_chunks
  // > 1 to have anything to overlap.
  std::uint32_t io_depth = 1;
  std::uint32_t io_batch = 4;
  // Independently decodable chunks per delta (--delta-chunks): the write-side
  // knob that gives the ring (and the parallel decode) its parallelism.
  std::uint32_t delta_chunks = 1;
};

/// Shared --threads flag (see PipelineOptions::threads).
inline std::size_t threads_flag(const util::Cli& cli) {
  return static_cast<std::size_t>(cli.get_int("threads", 0));
}

/// Shared --cache-mb / --sessions flags (see PipelineOptions::cache_mb and
/// PipelineOptions::sessions).
inline void session_flags(const util::Cli& cli, PipelineOptions& opt) {
  opt.cache_mb = static_cast<std::size_t>(cli.get_int("cache-mb", 0));
  opt.sessions = static_cast<std::size_t>(
      std::max<std::int64_t>(1, cli.get_int("sessions", 1)));
}

/// Shared --io-depth / --io-batch / --delta-chunks flags (see
/// PipelineOptions::io_depth, io_batch, delta_chunks).
inline void io_flags(const util::Cli& cli, PipelineOptions& opt) {
  opt.io_depth = static_cast<std::uint32_t>(
      std::max<std::int64_t>(1, cli.get_int("io-depth", 1)));
  opt.io_batch = static_cast<std::uint32_t>(
      std::max<std::int64_t>(1, cli.get_int("io-batch", 4)));
  opt.delta_chunks = static_cast<std::uint32_t>(std::max<std::int64_t>(
      1, cli.get_int("delta-chunks", opt.io_depth > 1 ? 8 : 1)));
}

/// Shared --trace-out flag: `--trace-out=trace.json` enables the
/// observability layer (metrics + tracing, src/obs) with that Chrome-trace
/// sink. Call once at startup, before any pipeline work.
inline void observability_flags(const util::Cli& cli) {
  if (!cli.has("trace-out")) return;
  obs::ObservabilityOptions options;
  options.enabled = true;
  options.trace_path = cli.get("trace-out", "trace.json");
  obs::install(options);
}

/// End-of-run companion of observability_flags(): prints the span/metric
/// summary tables and writes the Chrome trace. No-op when disabled.
inline void flush_observability(std::ostream& os) {
  if (!obs::enabled()) return;
  obs::write_summary(os);
  const auto path = obs::flush();
  if (!path.empty()) os << "chrome trace written to " << path << "\n";
}

/// Wires a seeded FaultInjector into the slow tier of `tiers` per the
/// options; no-op when fault_rate is zero. `stream` decorrelates the decision
/// sequences of the independent per-case hierarchies — with one shared seed
/// every case would replay the same fault prefix.
inline void apply_fault_model(storage::StorageHierarchy& tiers,
                              const PipelineOptions& opt,
                              std::uint64_t stream = 0) {
  if (opt.fault_rate <= 0.0) return;
  auto injector = std::make_shared<storage::FaultInjector>(
      opt.fault_seed + stream * 0x9e3779b97f4a7c15ull);
  storage::FaultProfile profile;
  profile.read_error = opt.fault_rate;
  profile.corrupt = opt.fault_rate * 0.1;
  injector->set_profile(tiers.tier_count() - 1, profile);
  tiers.attach_fault_injector(std::move(injector));
  storage::RetryPolicy retry;
  // Size the retry budget to the configured rate so even extreme --fault-rate
  // values leave ~1e-6 odds of exhausting a read (min 6, capped at 40).
  const double p = std::min(profile.read_error + profile.corrupt, 0.99);
  retry.max_attempts = static_cast<std::uint32_t>(std::clamp(
      std::ceil(std::log(1e-6) / std::log(p)), 6.0, 40.0));
  tiers.set_retry_policy(retry);
}

inline std::vector<PipelineCase> run_pipeline(
    const sim::Dataset& ds, const PipelineOptions& opt,
    std::vector<PipelineCase>* full_restoration = nullptr) {
  const std::size_t raw_bytes = ds.values.size() * sizeof(double);
  const auto bounds = ds.mesh.bounds();
  // Blob detection looks for positive over-densities: clamp the intensity
  // scale at zero so the background maps to black and thresholds sweep the
  // blob amplitudes (under-densities clip to zero).
  const double lo = 0.0;
  const double hi = *std::max_element(ds.values.begin(), ds.values.end());
  const auto params = blob_config(opt.blob_config);

  auto analyze = [&](const mesh::TriMesh& mesh, const mesh::Field& values) {
    util::WallTimer t;
    const auto raster = analytics::rasterize(mesh, values, opt.raster_px,
                                             opt.raster_px, bounds, lo);
    const auto img = analytics::to_gray8(raster, lo, hi);
    analytics::detect_blobs(img, opt.raster_px, opt.raster_px, params);
    return t.seconds();
  };

  std::vector<PipelineCase> cases;
  std::vector<PipelineCase> full_cases;

  // "None": raw full-accuracy data read from the PFS.
  {
    auto tiers = make_two_tier(1 << 20);
    adios::BpWriter w(tiers, "raw.bp");
    w.write_doubles(ds.variable, adios::BlockKind::kData, 0, ds.values, "raw",
                    0.0, 1u);  // pinned to the slow tier
    w.close();
    apply_fault_model(tiers, opt, 0);  // after the write: faults hit reads only
    adios::BpReader r(tiers, "raw.bp");
    adios::ReadTiming t;
    const auto values = r.read_doubles(ds.variable, adios::BlockKind::kData, 0, &t);
    PipelineCase c;
    c.label = "None";
    c.io = t.io_sim_seconds;
    c.decompress = 0.0;
    c.restore = 0.0;
    c.retries = t.retries;
    c.corruptions = t.corruptions;
    c.replica_reads = t.from_replica ? 1 : 0;
    if (opt.detect_blobs) c.analysis = analyze(ds.mesh, values);
    cases.push_back(c);
    PipelineCase fc = c;
    fc.analysis = 0.0;
    full_cases.push_back(fc);
  }

  std::uint64_t fault_stream = 0;
  for (int ratio : opt.ratios) {
    const auto n_levels =
        static_cast<std::size_t>(std::lround(std::log2(ratio))) + 1;
    auto tiers = make_two_tier(raw_bytes);  // base always fits the fast tier
    // The facade: one Pipeline per case carries the concurrency knobs;
    // requests carry the per-call parameters.
    canopus::PipelineOptions popt;
    popt.parallel.threads = opt.threads;
    // Fault-injected cases keep the serial read path: read-ahead would issue
    // speculative reads and shift the injector's seeded decision stream.
    popt.parallel.read_ahead = opt.fault_rate <= 0.0;
    if (opt.cache_mb > 0) {
      cache::CacheConfig cc;
      cc.budget_bytes = opt.cache_mb << 20;
      popt.cache = cc;
    }
    popt.io.depth = opt.io_depth;
    popt.io.batch = opt.io_batch;
    Pipeline pipeline(tiers, popt);

    WriteRequest wreq;
    wreq.path = "run.bp";
    wreq.var = ds.variable;
    wreq.mesh = &ds.mesh;
    wreq.values = &ds.values;
    wreq.config.levels = n_levels;
    wreq.config.codec = opt.codec;
    wreq.config.error_bound = opt.error_bound;
    wreq.config.delta_chunks = opt.delta_chunks;
    const auto ws = pipeline.write(wreq);
    if (!ws.ok()) throw Error("refactor failed: " + ws.to_string());

    // Meshes are static across a simulation campaign; analytics load the
    // geometry once and reuse it for every timestep, so the per-read cases
    // below exclude that one-time cost — and, like the write, that campaign-
    // lifetime preload runs before the per-timestep fault window opens.
    const auto geometry = core::GeometryCache::load(tiers, "run.bp", ds.variable);
    apply_fault_model(tiers, opt, ++fault_stream);

    ReadRequest rreq;
    rreq.path = "run.bp";
    rreq.var = ds.variable;
    rreq.geometry = &geometry;

    // (a) construct the next level of accuracy, then analyze it. With
    // --sessions N > 1 this becomes N concurrent ReadSessions sharing the
    // pipeline's pool (and its cache, when --cache-mb is set); the row then
    // reports the mean per-session cost and the summed fault counters.
    if (opt.sessions > 1) {
      std::vector<std::unique_ptr<ReadSession>> sessions(opt.sessions);
      std::vector<Status> statuses(opt.sessions);
      std::vector<std::thread> clients;
      clients.reserve(opt.sessions);
      for (std::size_t s = 0; s < opt.sessions; ++s) {
        clients.emplace_back([&, s] {
          auto st = pipeline.open_session(rreq, &sessions[s]);
          if (st.ok() && n_levels >= 2) st = sessions[s]->refine();
          statuses[s] = st;
        });
      }
      for (auto& client : clients) client.join();
      PipelineCase c;
      c.label = std::to_string(ratio);
      for (std::size_t s = 0; s < opt.sessions; ++s) {
        if (!statuses[s].usable()) {
          throw Error("session failed: " + statuses[s].to_string());
        }
        const auto& t = sessions[s]->timings();
        c.io += t.io_seconds;
        c.decompress += t.decompress_seconds;
        c.restore += t.restore_seconds;
        c.retries += t.retries;
        c.corruptions += t.corruptions_detected;
        c.replica_reads += t.replica_reads;
      }
      const auto n = static_cast<double>(opt.sessions);
      c.io /= n;
      c.decompress /= n;
      c.restore /= n;
      if (opt.detect_blobs) {
        c.analysis = analyze(sessions.front()->mesh(), sessions.front()->values());
      }
      cases.push_back(c);
    } else {
      std::unique_ptr<core::ProgressiveReader> reader;
      const auto rs = pipeline.open(rreq, &reader);
      if (!rs.ok()) throw Error("open failed: " + rs.to_string());
      auto t = reader->cumulative();
      if (n_levels >= 2) {
        const auto step = reader->refine();
        t += step;
      }
      PipelineCase c;
      c.label = std::to_string(ratio);
      c.io = t.io_seconds;
      c.decompress = t.decompress_seconds;
      c.restore = t.restore_seconds;
      c.retries = t.retries;
      c.corruptions = t.corruptions_detected;
      c.replica_reads = t.replica_reads;
      if (opt.detect_blobs) {
        c.analysis = analyze(reader->current_mesh(), reader->values());
      }
      cases.push_back(c);
    }

    // (b) restore full accuracy from base + all deltas.
    if (full_restoration) {
      ReadResult full;
      rreq.target_level = 0;
      const auto rs = pipeline.read(rreq, &full);
      if (!rs.usable()) throw Error("full restore failed: " + rs.to_string());
      const auto& t = full.timings;
      PipelineCase c;
      c.label = std::to_string(ratio);
      c.io = t.io_seconds;
      c.decompress = t.decompress_seconds;
      c.restore = t.restore_seconds;
      c.retries = t.retries;
      c.corruptions = t.corruptions_detected;
      c.replica_reads = t.replica_reads;
      full_cases.push_back(c);
    }
  }
  if (full_restoration) *full_restoration = std::move(full_cases);
  return cases;
}

inline void print_pipeline_table(const std::string& title,
                                 const std::vector<PipelineCase>& cases,
                                 bool with_analysis, std::ostream& os) {
  std::vector<std::string> header{"decimation", "io(s)", "decompress(s)",
                                  "restore(s)"};
  if (with_analysis) header.push_back("analysis(s)");
  header.push_back("total(s)");
  util::Table t(header);
  for (const auto& c : cases) {
    std::vector<std::string> row{c.label, util::Table::num(c.io, 4),
                                 util::Table::num(c.decompress, 4),
                                 util::Table::num(c.restore, 4)};
    if (with_analysis) row.push_back(util::Table::num(c.analysis, 4));
    row.push_back(util::Table::num(c.total(), 4));
    t.add_row(std::move(row));
  }
  t.print(os, title);
}

/// Fault-path counters for a --fault-rate run: how often each case retried,
/// caught corruption, or fell back to a replica copy.
inline void print_fault_summary(const std::string& title,
                                const std::vector<PipelineCase>& cases,
                                std::ostream& os) {
  util::Table t({"decimation", "retries", "corruptions", "replica-reads"});
  for (const auto& c : cases) {
    t.add_row({c.label, std::to_string(c.retries), std::to_string(c.corruptions),
               std::to_string(c.replica_reads)});
  }
  t.print(os, title);
}

}  // namespace canopus::bench
