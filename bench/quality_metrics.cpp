// Restoration-quality sweep: the quantitative accuracy story behind the
// paper's "lower accuracy may suffice on case-by-case bases" (Section I) and
// the Fig. 8 feature study. For every dataset and decimation level we report
// NRMSE and PSNR of the level against the full-accuracy field (compared on a
// common raster grid, since vertex sets differ across levels), plus the
// decimated meshes' element quality.

#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "mesh/quality.hpp"
#include "util/stats.hpp"

using namespace canopus;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 0.5);
  const auto raster_px = static_cast<std::size_t>(cli.get_int("raster", 256));

  for (const auto& ds : sim::all_datasets(scale)) {
    auto tiers = bench::make_two_tier(8 << 20);
    core::RefactorConfig config;
    config.levels = 6;
    config.codec = "zfp";
    config.error_bound = 1e-6;
    core::refactor_and_write(tiers, "q.bp", ds.variable, ds.mesh, ds.values,
                             config);

    const auto bounds = ds.mesh.bounds();
    const auto reference = analytics::rasterize(ds.mesh, ds.values, raster_px,
                                                raster_px, bounds, 0.0);

    util::Table t({"decimation", "vertices", "nrmse", "psnr-dB",
                   "min-angle", "mean-min-angle", "slivers"});
    core::ProgressiveReader reader(tiers, "q.bp", ds.variable);
    std::vector<std::vector<std::string>> rows;
    for (;;) {
      const auto raster =
          analytics::rasterize(reader.current_mesh(), reader.values(),
                               raster_px, raster_px, bounds, 0.0);
      // Compare only pixels covered by both meshes (decimation shrinks rims).
      std::vector<double> ref, got;
      for (std::size_t i = 0; i < raster.pixels.size(); ++i) {
        if (raster.inside[i] && reference.inside[i]) {
          ref.push_back(reference.pixels[i]);
          got.push_back(raster.pixels[i]);
        }
      }
      const auto quality = mesh::quality_stats(reader.current_mesh());
      rows.push_back({util::Table::num(reader.decimation_ratio(), 1),
                      std::to_string(reader.values().size()),
                      util::Table::num(util::nrmse(ref, got), 5),
                      util::Table::num(util::psnr(ref, got), 1),
                      util::Table::num(quality.min_angle_deg, 1),
                      util::Table::num(quality.mean_min_angle_deg, 1),
                      std::to_string(quality.sliver_count)});
      if (reader.at_full_accuracy()) break;
      reader.refine();
    }
    std::reverse(rows.begin(), rows.end());  // full accuracy first
    for (auto& row : rows) t.add_row(std::move(row));
    t.print(std::cout,
            "Restoration quality vs decimation: " + ds.name + " (" +
                ds.variable + ")");
    std::cout << '\n';
  }
  std::cout << "NRMSE grows smoothly with decimation and PSNR stays high at\n"
               "moderate ratios -- the accuracy/speed trade-off the paper's\n"
               "elastic analytics exploit. Element quality (min angles) stays\n"
               "bounded through the edge-collapse cascade.\n";
  return 0;
}
