// Refactor/restore wall-clock vs worker count on a >=100k-vertex mesh.
//
// Runs the campaign-regime pipeline (cascade prebuilt, so decimation — an
// inherently serial mesh-lifetime cost — is amortized away) at a sweep of
// thread counts and reports per-count refactor, restore, and end-to-end
// seconds as machine-readable JSON, plus the speedup over the 1-thread run
// and whether the restored field stayed bitwise-identical to it.
//
//   parallel_scaling [--threads=N] [--nx=360] [--levels=4] [--chunks=8]
//                    [--reps=3] [--eb=1e-6]
//
// --threads=N restricts the sweep to {1, N}; by default it covers powers of
// two up to the hardware concurrency.

#include <cmath>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/canopus.hpp"
#include "mesh/cascade.hpp"
#include "mesh/generators.hpp"
#include "storage/hierarchy.hpp"
#include "util/timer.hpp"

namespace cb = canopus::bench;
namespace cc = canopus::core;
namespace cm = canopus::mesh;
namespace cs = canopus::storage;
namespace cu = canopus::util;

namespace {

cm::Field wavy_field(const cm::TriMesh& mesh) {
  cm::Field f(mesh.vertex_count());
  for (cm::VertexId v = 0; v < mesh.vertex_count(); ++v) {
    const auto p = mesh.vertex(v);
    f[v] = std::sin(p.x * 6.0) * std::cos(p.y * 5.0) + 0.3 * p.x * p.y;
  }
  return f;
}

cs::StorageHierarchy roomy_tiers() {
  return cs::StorageHierarchy(
      {cs::tmpfs_spec(1ull << 30), cs::lustre_spec(4ull << 30)});
}

struct Sample {
  double refactor_s = 0.0;
  double restore_s = 0.0;
  bool identical = true;
};

}  // namespace

int main(int argc, char** argv) {
  const cu::Cli cli(argc, argv);
  const auto nx = static_cast<std::size_t>(cli.get_int("nx", 360));
  const auto reps = static_cast<std::size_t>(cli.get_int("reps", 3));
  // --trace-out=trace.json: the JSON output stays on stdout; the summary
  // tables would corrupt it, so only the Chrome trace file is written.
  cb::observability_flags(cli);

  cc::RefactorConfig config;
  config.levels = static_cast<std::size_t>(cli.get_int("levels", 4));
  config.delta_chunks = static_cast<std::uint32_t>(cli.get_int("chunks", 8));
  config.codec = "zfp";
  config.error_bound = cli.get_double("eb", 1e-6);

  const auto mesh = cm::make_rect_mesh(nx, nx, 1.0, 1.0, 0.1, 42);
  const auto values = wavy_field(mesh);

  // Campaign regime: the cascade is built once per mesh and shared by every
  // timestep, so the sweep times only the per-variable pipeline.
  cm::CascadeOptions copt;
  copt.levels = config.levels;
  copt.step = config.step;
  copt.decimate = config.decimate;
  const auto cascade = cm::build_cascade(mesh, values, copt);

  std::vector<std::size_t> sweep;
  const std::size_t hw = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  if (cli.has("threads")) {
    const auto t = cb::threads_flag(cli);
    sweep = {1, t == 0 ? hw : t};
  } else {
    for (std::size_t t = 1; t <= hw; t *= 2) sweep.push_back(t);
    if (sweep.back() != hw) sweep.push_back(hw);
  }

  // Warm the process-wide spatial-order memo so the first timed run does not
  // pay the one-off Morton sorts the later ones would get from cache.
  for (const auto& level : cascade.levels) cc::cached_spatial_order(level.mesh);

  cm::Field reference;  // restored field of the 1-thread run
  std::printf("{\n  \"bench\": \"parallel_scaling\",\n");
  std::printf("  \"vertices\": %zu,\n  \"levels\": %zu,\n  \"chunks\": %u,\n",
              mesh.vertex_count(), config.levels, config.delta_chunks);
  std::printf("  \"reps\": %zu,\n  \"results\": [", reps);

  double e2e_1 = 0.0;
  bool first_row = true;
  for (const std::size_t threads : sweep) {
    config.parallel.threads = threads;
    cc::ReaderOptions ropt;
    ropt.parallel.threads = threads;
    ropt.parallel.read_ahead = threads > 1;

    Sample best;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      Sample s;
      auto tiers = roomy_tiers();
      {
        cu::WallTimer t;
        cc::refactor_and_write(tiers, "scale.bp", "v", cascade, config);
        s.refactor_s = t.seconds();
      }
      const auto geometry = cc::GeometryCache::load(tiers, "scale.bp", "v");
      cm::Field restored;
      {
        cu::WallTimer t;
        cc::ProgressiveReader reader(tiers, "scale.bp", "v", &geometry, ropt);
        reader.refine_to(0);
        s.restore_s = t.seconds();
        restored = reader.values();
      }
      if (reference.empty()) {
        reference = restored;  // first rep of the first (1-thread) entry
      }
      s.identical = restored == reference;
      if (rep == 0 || s.refactor_s + s.restore_s < best.refactor_s + best.restore_s) {
        const bool id = best.identical && s.identical;
        best = s;
        best.identical = id;
      } else {
        best.identical = best.identical && s.identical;
      }
    }

    const double e2e = best.refactor_s + best.restore_s;
    if (threads == sweep.front()) e2e_1 = e2e;
    std::printf("%s\n    {\"threads\": %zu, \"refactor_s\": %.6f, "
                "\"restore_s\": %.6f, \"end_to_end_s\": %.6f, "
                "\"speedup\": %.3f, \"bitwise_identical\": %s}",
                first_row ? "" : ",", threads, best.refactor_s, best.restore_s,
                e2e, e2e_1 / e2e, best.identical ? "true" : "false");
    first_row = false;
  }
  std::printf("\n  ]\n}\n");
  canopus::obs::flush();
  return 0;
}
