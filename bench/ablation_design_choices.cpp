// Ablations over the design choices DESIGN.md section 6 calls out:
//   1. Estimate(.) weighting (Eq. 2): uniform 1/3 vs barycentric vs nearest.
//   2. Edge-collapse priority: shortest-first vs random vs gradient-weighted.
//   3. Delta codec: zfp vs sz vs fpc vs lzss.
//   4. Placement: fastest-fit hierarchy vs everything-on-PFS.

#include <iostream>

#include "bench_common.hpp"
#include "compress/codec.hpp"
#include "core/delta.hpp"
#include "mesh/cascade.hpp"
#include "util/stats.hpp"

using namespace canopus;

namespace {

/// Total compressed size of base + deltas for a config variation.
std::size_t stored_size(const sim::Dataset& ds, const core::RefactorConfig& cfg) {
  auto tiers = bench::make_two_tier(8 << 20);
  const auto report = core::refactor_and_write(tiers, "a.bp", ds.variable,
                                               ds.mesh, ds.values, cfg);
  return report.total_stored_bytes();
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const double eb = cli.get_double("eb", 1e-4);
  const auto ds = sim::make_xgc_dataset({});
  const std::size_t raw = ds.values.size() * sizeof(double);
  std::cout << "workload: xgc1 dpot plane, " << ds.values.size()
            << " values, 3 levels, abs error bound " << eb << "\n\n";

  core::RefactorConfig base_cfg;
  base_cfg.levels = 3;
  base_cfg.codec = "zfp";
  base_cfg.error_bound = eb;

  // ---- 1. Estimate(.) weighting. -----------------------------------------
  {
    util::Table t({"estimate", "stored-bytes", "normalized", "delta-stddev"});
    for (auto mode : {core::EstimateMode::kUniformThirds,
                      core::EstimateMode::kBarycentric,
                      core::EstimateMode::kNearestVertex}) {
      auto cfg = base_cfg;
      cfg.estimate = mode;
      const auto stored = stored_size(ds, cfg);
      // Delta smoothness for this mode, measured on the first delta.
      mesh::CascadeOptions copt;
      copt.levels = 2;
      const auto cascade = mesh::build_cascade(ds.mesh, ds.values, copt);
      const auto mapping =
          core::build_mapping(cascade.levels[0].mesh, cascade.levels[1].mesh);
      const auto delta =
          core::compute_delta(cascade.levels[1].mesh, cascade.levels[1].values,
                              cascade.levels[0].values, mapping, mode);
      util::RunningStats rs;
      rs.add(delta);
      t.add_row({core::to_string(mode), std::to_string(stored),
                 util::Table::num(static_cast<double>(stored) / raw, 4),
                 util::Table::num(rs.stddev(), 5)});
    }
    t.print(std::cout, "Ablation 1: Estimate(.) weighting");
    std::cout << '\n';
  }

  // ---- 2. Edge-collapse priority. ----------------------------------------
  {
    util::Table t({"priority", "stored-bytes", "normalized"});
    const std::pair<mesh::EdgePriority, const char*> prios[] = {
        {mesh::EdgePriority::kShortestFirst, "shortest-first (paper)"},
        {mesh::EdgePriority::kRandom, "random"},
        {mesh::EdgePriority::kGradientWeighted, "gradient-weighted"}};
    for (const auto& [prio, name] : prios) {
      auto cfg = base_cfg;
      cfg.decimate.priority = prio;
      const auto stored = stored_size(ds, cfg);
      t.add_row({name, std::to_string(stored),
                 util::Table::num(static_cast<double>(stored) / raw, 4)});
    }
    t.print(std::cout, "Ablation 2: edge-collapse priority");
    std::cout << '\n';
  }

  // ---- 3. Delta codec. ----------------------------------------------------
  {
    util::Table t({"codec", "lossless", "stored-bytes", "normalized"});
    for (const char* codec : {"zfp", "sz", "fpc", "lzss"}) {
      auto cfg = base_cfg;
      cfg.codec = codec;
      const auto stored = stored_size(ds, cfg);
      t.add_row({codec, compress::make_codec(codec)->lossless() ? "yes" : "no",
                 std::to_string(stored),
                 util::Table::num(static_cast<double>(stored) / raw, 4)});
    }
    t.print(std::cout, "Ablation 3: codec for base + deltas");
    std::cout << '\n';
  }

  // ---- 4. Placement policy. -----------------------------------------------
  {
    util::Table t({"placement", "base-read-io(s)", "full-restore-io(s)"});
    for (const bool tiered : {true, false}) {
      storage::StorageHierarchy tiers =
          tiered ? bench::make_two_tier(8 << 20)
                 : storage::StorageHierarchy(
                       {bench::contended_lustre_spec(8ull << 30)});
      auto cfg = base_cfg;
      cfg.tiered_placement = tiered;
      core::refactor_and_write(tiers, "p.bp", ds.variable, ds.mesh, ds.values,
                               cfg);
      core::ProgressiveReader quick(tiers, "p.bp", ds.variable);
      const double base_io = quick.cumulative().io_seconds;
      core::ProgressiveReader full(tiers, "p.bp", ds.variable);
      full.refine_to(0);
      t.add_row({tiered ? "tiered (paper)" : "pfs-only",
                 util::Table::num(base_io, 4),
                 util::Table::num(full.cumulative().io_seconds, 4)});
    }
    t.print(std::cout, "Ablation 4: placement policy (simulated I/O)");
    std::cout << '\n';
  }

  // ---- 5. Delta chunking granularity (focused-retrieval tradeoff). --------
  {
    util::Table t({"delta-chunks", "stored-bytes", "roi-step-bytes",
                   "roi-step-io(s)", "full-step-io(s)"});
    // ROI around one blob-sized neighborhood on the outer edge.
    const mesh::Aabb roi{{0.55, -0.25}, {0.95, 0.15}};
    for (std::uint32_t chunks : {1u, 8u, 64u, 256u}) {
      auto tiers = bench::make_two_tier(8 << 20);
      auto cfg = base_cfg;
      cfg.levels = 2;
      cfg.delta_chunks = chunks;
      const auto report = core::refactor_and_write(tiers, "c.bp", ds.variable,
                                                   ds.mesh, ds.values, cfg);
      const auto geometry =
          core::GeometryCache::load(tiers, "c.bp", ds.variable);
      core::ProgressiveReader focused(tiers, "c.bp", ds.variable, &geometry);
      const auto roi_step = focused.refine_region(roi);
      core::ProgressiveReader full(tiers, "c.bp", ds.variable, &geometry);
      const auto full_step = full.refine();
      t.add_row({std::to_string(chunks),
                 std::to_string(report.total_stored_bytes()),
                 std::to_string(roi_step.bytes_read),
                 util::Table::num(roi_step.io_seconds, 4),
                 util::Table::num(full_step.io_seconds, 4)});
    }
    t.print(std::cout,
            "Ablation 5: delta chunk granularity (ROI selectivity vs per-chunk "
            "overhead)");
  }
  return 0;
}
