// Closed-loop elastic topology run (PR 8 acceptance bench).
//
// The paradigm the paper argues for: analytics capacity is *elastic* — the
// cluster grows and shrinks mid-campaign without stopping the query stream.
// This bench drives exactly that loop against the serving fabric:
//
//   phase 1  `--clients` closed-loop clients stream full-accuracy queries
//            through Pipeline::submit_query against a `--start-nodes` fabric;
//   phase 2  mid-stream, the control plane attaches TWO nodes
//            (Pipeline::attach_node + wait_for_rebalance): only the chunks
//            whose directory owner changed migrate, in the background, while
//            the clients keep querying;
//   phase 3  still mid-stream, ONE of the new nodes is detached
//            (Pipeline::detach_node): its primaries drain to the ring
//            successors, and every query planned after the detach must route
//            somewhere else.
//
// Clients never stop: a kOverloaded admission verdict backs off 1 ms and
// resubmits, so overload converts into sheds, never into lost queries.
//
// Exit is non-zero unless every acceptance criterion holds:
//   * zero lost queries — every submission completed or degraded, scheduler
//     accounting closed (failed == 0) across all three topology phases;
//   * every served field bitwise-identical to an unscheduled read of the
//     same variable at the same achieved level;
//   * no query planned after the detach routed to the removed node
//     (QueryResult::shard), and the drained node owns zero bytes;
//   * the attach actually rebalanced: the surviving new node owns chunks,
//     fabric migrations > 0, and the topology epoch advanced on every
//     change.
//
// Throughput per phase and per-node occupancy are reported for the growth
// curve; they depend on host parallelism and are not gated.
//
// Flags: --clients=6 --queries=8 --start-nodes=2 --workers=3
//        --queue-limit=32 --deadline-ms=0 (0 = auto: 4x the single-node
//        cost envelope) --threads=0 [--trace-out=f]

#include <atomic>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/topology.hpp"
#include "fabric/fabric.hpp"
#include "serve/cost_model.hpp"
#include "serve/query_scheduler.hpp"

using namespace canopus;

namespace {

struct QueryRecord {
  Status status;
  std::int32_t shard = -1;
  std::uint32_t achieved_level = 0;
  bool planned_after_detach = false;
  bool identical = true;  // vs. the unscheduled reference at achieved_level
  double cost = 0.0;      // retrieval cost + queue wait
};

struct PhaseMark {
  std::string label;
  double wall = 0.0;
  std::uint64_t completed = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto clients = static_cast<std::size_t>(
      std::max<std::int64_t>(2, cli.get_int("clients", 6)));
  const auto queries = static_cast<std::size_t>(
      std::max<std::int64_t>(4, cli.get_int("queries", 8)));
  const auto start_nodes = static_cast<std::size_t>(
      std::max<std::int64_t>(1, cli.get_int("start-nodes", 2)));
  serve::ServeConfig serve_config;
  serve_config.workers = static_cast<std::size_t>(
      std::max<std::int64_t>(1, cli.get_int("workers", 3)));
  serve_config.queue_limit = static_cast<std::size_t>(
      std::max<std::int64_t>(1, cli.get_int("queue-limit", 32)));
  const double deadline_ms = cli.get_double("deadline-ms", 0.0);
  bench::observability_flags(cli);

  // --- Stage the dataset and the bitwise reference. -------------------------
  const auto ds = sim::make_xgc_dataset({});
  const std::size_t raw_bytes = ds.values.size() * sizeof(double);
  storage::StorageHierarchy staging({storage::tmpfs_spec(1u << 30)});
  canopus::Options staging_options;
  staging_options.parallel.threads = bench::threads_flag(cli);
  Pipeline staging_pipeline(staging, staging_options);

  WriteRequest wreq;
  wreq.path = "run.bp";
  wreq.var = ds.variable;
  wreq.mesh = &ds.mesh;
  wreq.values = &ds.values;
  wreq.config.levels = 4;
  wreq.config.delta_chunks = 8;  // Morton ranges split across up to 8 nodes
  wreq.config.codec = "zfp";
  wreq.config.error_bound = 1e-4;
  const auto ws = staging_pipeline.write(wreq);
  if (!ws.ok()) throw Error("refactor failed: " + ws.to_string());
  const auto geometry = core::GeometryCache::load(staging, "run.bp", ds.variable);

  // Unscheduled reference per achieved level, filled lazily under a lock —
  // the identity oracle every served field is compared against.
  std::mutex reference_mu;
  std::map<std::uint32_t, mesh::Field> reference;
  auto reference_at = [&](std::uint32_t level) -> const mesh::Field& {
    std::scoped_lock lock(reference_mu);
    auto it = reference.find(level);
    if (it == reference.end()) {
      ReadRequest ref;
      ref.path = "run.bp";
      ref.var = ds.variable;
      ref.target_level = level;
      ref.geometry = &geometry;
      ReadResult out;
      const auto st = staging_pipeline.read(ref, &out);
      if (!st.ok() || out.level != level) {
        throw Error("reference read failed: " + st.to_string());
      }
      it = reference.emplace(level, std::move(out.values)).first;
    }
    return it->second;
  };

  // --- The elastic fabric and the serving pipeline. -------------------------
  fabric::FabricOptions fo;
  fo.nodes = start_nodes;
  fabric::Fabric fabric(
      fo, {storage::tmpfs_spec(raw_bytes), storage::lustre_spec(8ull << 30)});
  const auto import = fabric.import_container(staging, "run.bp");

  canopus::Options options;
  options.parallel.threads = bench::threads_flag(cli);
  options.serve = serve_config;
  Pipeline pipeline(fabric.node(0), options);
  {
    const auto st = pipeline.attach_fabric(&fabric);
    if (!st.ok()) throw Error("attach_fabric failed: " + st.to_string());
  }

  // Generous auto deadline (4x the single-node base + full-refine envelope):
  // the bench measures elasticity, not degradation, so queries should reach
  // full accuracy; remote-read envelopes after the attach stay well inside.
  double deadline = deadline_ms * 1e-3;
  if (deadline <= 0.0) {
    ReadRequest probe_request;
    probe_request.path = "run.bp";
    probe_request.var = ds.variable;
    probe_request.geometry = &geometry;
    std::unique_ptr<core::ProgressiveReader> probe;
    const auto st = pipeline.open(probe_request, &probe);
    if (!st.ok()) throw Error("probe open failed: " + st.to_string());
    const auto model = serve::CostModel::build(fabric.node(0), *probe);
    // 4x the retrieval envelope, widened by the client/worker ratio so queue
    // wait under the closed load does not force blanket degradation.
    const double queueing =
        1.0 + static_cast<double>(clients) / serve_config.workers;
    deadline = 4.0 * queueing *
               (probe->cumulative().total() +
                model.cost_between(probe->current_level(), 0));
  }

  std::cout << "workload: xgc1 dpot plane, " << ds.values.size() << " values ("
            << raw_bytes / 1024 << " KiB raw), " << clients << " clients x "
            << queries << " queries, " << start_nodes << " start nodes, "
            << serve_config.workers << " workers, deadline "
            << util::Table::num(deadline, 4) << " s\n";
  std::cout << "import: " << import.sharded << " sharded blocks ("
            << import.sharded_bytes / 1024 << " KiB), " << import.replicated
            << " replicated metadata copies\n\n";

  // --- The closed loop: clients stream, the control plane reshapes. ---------
  // Each client holds back its last `post_quota` queries until the detach has
  // landed, so the post-detach routing gate is exercised by construction even
  // on hosts fast enough to drain the free portion of the stream before the
  // control plane finishes reshaping.
  const std::uint64_t total = clients * queries;
  const std::size_t post_quota = std::max<std::size_t>(2, queries / 4);
  const std::uint64_t free_total = clients * (queries - post_quota);
  std::atomic<std::uint64_t> completed{0};
  std::atomic<bool> detach_done{false};
  std::atomic<std::uint32_t> detached_id{0};
  std::vector<std::vector<QueryRecord>> per_client(clients);
  std::vector<std::string> client_errors(clients);
  std::atomic<std::uint64_t> sheds{0};

  serve::QueryRequest base_query;
  base_query.path = "run.bp";
  base_query.var = ds.variable;
  base_query.target_level = 0;
  base_query.deadline_seconds = deadline;
  base_query.geometry = &geometry;

  std::vector<PhaseMark> marks;
  std::string control_error;
  Topology topo_grown;
  std::uint64_t epoch_before_detach = 0;
  std::uint64_t epoch_after_detach = 0;
  std::uint32_t kept_id = 0;
  util::WallTimer wall;
  marks.push_back({"start (" + std::to_string(start_nodes) + " nodes)", 0.0, 0});

  std::thread control([&] {
    try {
      auto wait_until = [&](std::uint64_t target) {
        while (completed.load(std::memory_order_relaxed) < target) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
      };
      auto must = [&](const Status& st, const std::string& what) {
        if (!st.ok()) throw Error(what + ": " + st.to_string());
      };

      // Grow by two nodes while roughly a third of the free stream is done.
      wait_until(free_total / 3);
      std::uint32_t id1 = 0;
      std::uint32_t id2 = 0;
      must(pipeline.attach_node(&id1), "attach_node #1");
      must(pipeline.wait_for_rebalance(), "rebalance after attach #1");
      must(pipeline.attach_node(&id2), "attach_node #2");
      must(pipeline.wait_for_rebalance(), "rebalance after attach #2");
      topo_grown = pipeline.topology();
      marks.push_back({"grown (+" + std::to_string(id1) + ",+" +
                           std::to_string(id2) + ")",
                       wall.seconds(),
                       completed.load(std::memory_order_relaxed)});

      // Shrink by one of them while the stream keeps flowing.
      wait_until((free_total * 2) / 3);
      epoch_before_detach = pipeline.topology().epoch;
      must(pipeline.detach_node(id1), "detach_node");
      epoch_after_detach = pipeline.topology().epoch;
      detached_id.store(id1, std::memory_order_relaxed);
      kept_id = id2;
      detach_done.store(true, std::memory_order_release);
      marks.push_back({"shrunk (-" + std::to_string(id1) + ")", wall.seconds(),
                       completed.load(std::memory_order_relaxed)});
    } catch (const std::exception& e) {
      control_error = e.what();
      detach_done.store(true, std::memory_order_release);  // unblock gating
    }
  });

  {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        auto& mine = per_client[c];
        mine.reserve(queries);
        for (std::size_t q = 0; q < queries; ++q) {
          if (q == queries - post_quota) {
            while (!detach_done.load(std::memory_order_acquire)) {
              std::this_thread::sleep_for(std::chrono::microseconds(200));
            }
          }
          for (;;) {
            // Snapshot the topology gate BEFORE submitting: a query planned
            // after the detach must never land on the removed node.
            const bool after_detach =
                detach_done.load(std::memory_order_acquire);
            serve::QueryResult result;
            const Status st = pipeline.submit_query(base_query, &result);
            if (st.code == StatusCode::kOverloaded) {
              sheds.fetch_add(1, std::memory_order_relaxed);
              std::this_thread::sleep_for(std::chrono::milliseconds(1));
              continue;
            }
            if (!st.usable()) {
              client_errors[c] = st.to_string();
              return;
            }
            QueryRecord record;
            record.status = st;
            record.shard = result.shard;
            record.achieved_level = result.achieved_level;
            record.planned_after_detach = after_detach;
            record.cost = result.queue_seconds + result.timings.total();
            const auto& expected = reference_at(result.achieved_level);
            record.identical =
                expected.size() == result.values.size() &&
                std::memcmp(expected.data(), result.values.data(),
                            expected.size() * sizeof(double)) == 0;
            mine.push_back(std::move(record));
            completed.fetch_add(1, std::memory_order_relaxed);
            break;
          }
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  control.join();
  marks.push_back(
      {"end", wall.seconds(), completed.load(std::memory_order_relaxed)});

  // --- Report. --------------------------------------------------------------
  const auto stats = pipeline.query_scheduler().stats();
  const Topology topo = pipeline.topology();
  const std::uint32_t victim = detached_id.load(std::memory_order_relaxed);

  util::Table phases({"phase", "completed", "throughput(q/s)"});
  for (std::size_t i = 1; i < marks.size(); ++i) {
    const double span = marks[i].wall - marks[i - 1].wall;
    const auto done = marks[i].completed - marks[i - 1].completed;
    phases.add_row({marks[i - 1].label, std::to_string(done),
                    span > 0.0 ? util::Table::num(done / span, 1) : "-"});
  }
  phases.print(std::cout, "closed-loop phases (topology changes mid-stream)");

  util::Table occupancy({"node", "active", "alive", "owned(KiB)"});
  for (const auto& node : topo.nodes) {
    occupancy.add_row({std::to_string(node.id), node.active ? "yes" : "no",
                       node.alive ? "yes" : "no",
                       std::to_string(node.owned_bytes / 1024)});
  }
  occupancy.print(std::cout, "final topology (epoch " +
                                 std::to_string(topo.epoch) + ", " +
                                 std::to_string(topo.migrations) +
                                 " migrations)");

  std::cout << "scheduler: submitted " << stats.submitted << ", completed "
            << stats.completed << ", degraded " << stats.degraded << ", shed "
            << stats.shed << ", failed " << stats.failed << "\n";

  // --- Acceptance. ----------------------------------------------------------
  bool ok = true;
  auto check = [&](bool condition, const std::string& what) {
    std::cout << (condition ? "  ok: " : "  FAIL: ") << what << "\n";
    ok = ok && condition;
  };

  std::uint64_t served = 0;
  std::uint64_t lost = 0;
  std::uint64_t not_identical = 0;
  std::uint64_t routed_to_removed = 0;
  std::uint64_t planned_after = 0;
  for (std::size_t c = 0; c < clients; ++c) {
    if (!client_errors[c].empty()) ++lost;
    for (const auto& record : per_client[c]) {
      ++served;
      if (!record.status.usable()) ++lost;
      if (!record.identical) ++not_identical;
      if (record.planned_after_detach) {
        ++planned_after;
        if (record.shard >= 0 &&
            static_cast<std::uint32_t>(record.shard) == victim) {
          ++routed_to_removed;
        }
      }
    }
  }

  std::cout << "\nacceptance:\n";
  check(control_error.empty(), "control plane succeeded" +
                                   (control_error.empty()
                                        ? std::string()
                                        : " (error: " + control_error + ")"));
  check(served == total && lost == 0 && stats.failed == 0,
        "zero lost queries across grow and shrink (" + std::to_string(served) +
            "/" + std::to_string(total) + " served, " + std::to_string(lost) +
            " lost)");
  check(not_identical == 0,
        "every served field bitwise-identical to the unscheduled reference (" +
            std::to_string(not_identical) + " mismatches)");
  check(planned_after >= clients * post_quota,
        "the post-detach routing gate was exercised (" +
            std::to_string(planned_after) + " queries planned after detach)");
  check(routed_to_removed == 0,
        "no query planned after the detach routed to the removed node (" +
            std::to_string(routed_to_removed) + " violations)");
  if (control_error.empty()) {
    check(topo.nodes.size() == start_nodes + 2 &&
              topo.active_nodes() == start_nodes + 1,
          "topology settled at " + std::to_string(start_nodes + 1) +
              " active of " + std::to_string(start_nodes + 2) + " slots");
    check(victim < topo.nodes.size() && !topo.nodes[victim].active &&
              topo.nodes[victim].owned_bytes == 0,
          "the detached node is inactive and owns nothing");
    check(kept_id < topo.nodes.size() && topo.nodes[kept_id].active &&
              topo.nodes[kept_id].owned_bytes > 0,
          "the surviving attached node owns rebalanced chunks");
    check(topo_grown.epoch > 0 && epoch_after_detach > epoch_before_detach,
          "the topology epoch advanced on every change");
    check(topo.migrations > 0,
          "migrations moved only owner-changed chunks in the background (" +
              std::to_string(topo.migrations) + " moves)");
  }

  std::cout << '\n';
  bench::flush_observability(std::cout);

  if (!ok) {
    std::cout << "\nFAIL: elastic acceptance criteria not met\n";
    return 1;
  }
  return 0;
}
