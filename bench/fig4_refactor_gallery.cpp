// Figure 4: the refactoring gallery — per dataset, the full-accuracy field
// L0, the 4x-decimated L2, and the two deltas used to restore the original.
//
// Prints the smoothness statistics that make the paper's visual point
// quantitative (deltas are flatter than the levels) and writes one PGM panel
// per item, matching the six-panel layout of Figs. 4a-4c.

#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "core/delta.hpp"
#include "mesh/cascade.hpp"
#include "mesh/mesh_io.hpp"
#include "util/stats.hpp"

using namespace canopus;

namespace {

void dump_panel(const mesh::TriMesh& mesh, const mesh::Field& values,
                const mesh::Aabb& bounds, const std::string& path) {
  const auto raster = analytics::rasterize(mesh, values, 240, 240, bounds, 0.0);
  const auto [lo, hi] = std::minmax_element(values.begin(), values.end());
  const double span = (*hi > *lo) ? 0.0 : 1.0;  // guard constant fields
  mesh::save_pgm(analytics::to_gray8(raster, *lo, *hi + span), 240, 240, path);
}

struct RowStats {
  double stddev, tv;
};

RowStats stats_of(const mesh::Field& f) {
  util::RunningStats rs;
  rs.add(f);
  return {rs.stddev(), util::total_variation(f)};
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0);
  const auto out_dir = cli.get("out", "/tmp");

  for (const auto& ds : sim::all_datasets(scale)) {
    mesh::CascadeOptions copt;
    copt.levels = 3;  // L0, L1, L2 -> 4x decimation at the base
    const auto cascade = mesh::build_cascade(ds.mesh, ds.values, copt);

    const auto map01 =
        core::build_mapping(cascade.levels[0].mesh, cascade.levels[1].mesh);
    const auto map12 =
        core::build_mapping(cascade.levels[1].mesh, cascade.levels[2].mesh);
    const auto delta01 = core::compute_delta(
        cascade.levels[1].mesh, cascade.levels[1].values,
        cascade.levels[0].values, map01, core::EstimateMode::kUniformThirds);
    const auto delta12 = core::compute_delta(
        cascade.levels[2].mesh, cascade.levels[2].values,
        cascade.levels[1].values, map12, core::EstimateMode::kUniformThirds);

    util::Table t({"product", "vertices", "stddev", "total-variation"});
    const auto add = [&](const std::string& name, const mesh::Field& f) {
      const auto s = stats_of(f);
      t.add_row({name, std::to_string(f.size()), util::Table::num(s.stddev, 5),
                 util::Table::num(s.tv, 5)});
    };
    add("L0", cascade.levels[0].values);
    add("L2 (4x)", cascade.levels[2].values);
    add("delta1-2", delta12);
    add("delta0-1", delta01);
    t.print(std::cout, "Fig. 4 " + ds.name + " (" + ds.variable +
                           ") refactoring products");

    const auto bounds = ds.mesh.bounds();
    dump_panel(cascade.levels[0].mesh, cascade.levels[0].values, bounds,
               out_dir + "/fig4_" + ds.name + "_L0.pgm");
    dump_panel(cascade.levels[2].mesh, cascade.levels[2].values, bounds,
               out_dir + "/fig4_" + ds.name + "_L2.pgm");
    dump_panel(cascade.levels[1].mesh, delta12, bounds,
               out_dir + "/fig4_" + ds.name + "_delta12.pgm");
    dump_panel(cascade.levels[0].mesh, delta01, bounds,
               out_dir + "/fig4_" + ds.name + "_delta01.pgm");
    std::cout << '\n';
  }
  std::cout << "panels written to " << cli.get("out", "/tmp")
            << "/fig4_*.pgm\nObservation: every delta has lower variability "
               "than the levels it\nreconstructs -- the pre-conditioning that "
               "drives Fig. 5.\n";
  return 0;
}
