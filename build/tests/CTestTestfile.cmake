# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/compress_test[1]_include.cmake")
include("/root/repo/build/tests/mesh_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/fault_test[1]_include.cmake")
include("/root/repo/build/tests/adios_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/analytics_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/config_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/roi_test[1]_include.cmake")
include("/root/repo/build/tests/transport_test[1]_include.cmake")
include("/root/repo/build/tests/grid_test[1]_include.cmake")
