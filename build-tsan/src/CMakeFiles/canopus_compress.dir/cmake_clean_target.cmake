file(REMOVE_RECURSE
  "libcanopus_compress.a"
)
