file(REMOVE_RECURSE
  "CMakeFiles/canopus_compress.dir/compress/fpc.cpp.o"
  "CMakeFiles/canopus_compress.dir/compress/fpc.cpp.o.d"
  "CMakeFiles/canopus_compress.dir/compress/huffman.cpp.o"
  "CMakeFiles/canopus_compress.dir/compress/huffman.cpp.o.d"
  "CMakeFiles/canopus_compress.dir/compress/lzss.cpp.o"
  "CMakeFiles/canopus_compress.dir/compress/lzss.cpp.o.d"
  "CMakeFiles/canopus_compress.dir/compress/registry.cpp.o"
  "CMakeFiles/canopus_compress.dir/compress/registry.cpp.o.d"
  "CMakeFiles/canopus_compress.dir/compress/rle.cpp.o"
  "CMakeFiles/canopus_compress.dir/compress/rle.cpp.o.d"
  "CMakeFiles/canopus_compress.dir/compress/sz_like.cpp.o"
  "CMakeFiles/canopus_compress.dir/compress/sz_like.cpp.o.d"
  "CMakeFiles/canopus_compress.dir/compress/zfp_like.cpp.o"
  "CMakeFiles/canopus_compress.dir/compress/zfp_like.cpp.o.d"
  "libcanopus_compress.a"
  "libcanopus_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canopus_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
