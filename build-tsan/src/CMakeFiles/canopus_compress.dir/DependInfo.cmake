
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/fpc.cpp" "src/CMakeFiles/canopus_compress.dir/compress/fpc.cpp.o" "gcc" "src/CMakeFiles/canopus_compress.dir/compress/fpc.cpp.o.d"
  "/root/repo/src/compress/huffman.cpp" "src/CMakeFiles/canopus_compress.dir/compress/huffman.cpp.o" "gcc" "src/CMakeFiles/canopus_compress.dir/compress/huffman.cpp.o.d"
  "/root/repo/src/compress/lzss.cpp" "src/CMakeFiles/canopus_compress.dir/compress/lzss.cpp.o" "gcc" "src/CMakeFiles/canopus_compress.dir/compress/lzss.cpp.o.d"
  "/root/repo/src/compress/registry.cpp" "src/CMakeFiles/canopus_compress.dir/compress/registry.cpp.o" "gcc" "src/CMakeFiles/canopus_compress.dir/compress/registry.cpp.o.d"
  "/root/repo/src/compress/rle.cpp" "src/CMakeFiles/canopus_compress.dir/compress/rle.cpp.o" "gcc" "src/CMakeFiles/canopus_compress.dir/compress/rle.cpp.o.d"
  "/root/repo/src/compress/sz_like.cpp" "src/CMakeFiles/canopus_compress.dir/compress/sz_like.cpp.o" "gcc" "src/CMakeFiles/canopus_compress.dir/compress/sz_like.cpp.o.d"
  "/root/repo/src/compress/zfp_like.cpp" "src/CMakeFiles/canopus_compress.dir/compress/zfp_like.cpp.o" "gcc" "src/CMakeFiles/canopus_compress.dir/compress/zfp_like.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/canopus_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
