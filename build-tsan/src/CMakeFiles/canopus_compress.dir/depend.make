# Empty dependencies file for canopus_compress.
# This may be replaced when dependencies are built.
