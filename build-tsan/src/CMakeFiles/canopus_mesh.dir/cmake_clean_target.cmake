file(REMOVE_RECURSE
  "libcanopus_mesh.a"
)
