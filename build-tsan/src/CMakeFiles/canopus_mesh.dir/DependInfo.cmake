
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mesh/cascade.cpp" "src/CMakeFiles/canopus_mesh.dir/mesh/cascade.cpp.o" "gcc" "src/CMakeFiles/canopus_mesh.dir/mesh/cascade.cpp.o.d"
  "/root/repo/src/mesh/decimate.cpp" "src/CMakeFiles/canopus_mesh.dir/mesh/decimate.cpp.o" "gcc" "src/CMakeFiles/canopus_mesh.dir/mesh/decimate.cpp.o.d"
  "/root/repo/src/mesh/generators.cpp" "src/CMakeFiles/canopus_mesh.dir/mesh/generators.cpp.o" "gcc" "src/CMakeFiles/canopus_mesh.dir/mesh/generators.cpp.o.d"
  "/root/repo/src/mesh/mesh_io.cpp" "src/CMakeFiles/canopus_mesh.dir/mesh/mesh_io.cpp.o" "gcc" "src/CMakeFiles/canopus_mesh.dir/mesh/mesh_io.cpp.o.d"
  "/root/repo/src/mesh/point_locator.cpp" "src/CMakeFiles/canopus_mesh.dir/mesh/point_locator.cpp.o" "gcc" "src/CMakeFiles/canopus_mesh.dir/mesh/point_locator.cpp.o.d"
  "/root/repo/src/mesh/quality.cpp" "src/CMakeFiles/canopus_mesh.dir/mesh/quality.cpp.o" "gcc" "src/CMakeFiles/canopus_mesh.dir/mesh/quality.cpp.o.d"
  "/root/repo/src/mesh/tri_mesh.cpp" "src/CMakeFiles/canopus_mesh.dir/mesh/tri_mesh.cpp.o" "gcc" "src/CMakeFiles/canopus_mesh.dir/mesh/tri_mesh.cpp.o.d"
  "/root/repo/src/mesh/validate.cpp" "src/CMakeFiles/canopus_mesh.dir/mesh/validate.cpp.o" "gcc" "src/CMakeFiles/canopus_mesh.dir/mesh/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/canopus_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
