file(REMOVE_RECURSE
  "CMakeFiles/canopus_mesh.dir/mesh/cascade.cpp.o"
  "CMakeFiles/canopus_mesh.dir/mesh/cascade.cpp.o.d"
  "CMakeFiles/canopus_mesh.dir/mesh/decimate.cpp.o"
  "CMakeFiles/canopus_mesh.dir/mesh/decimate.cpp.o.d"
  "CMakeFiles/canopus_mesh.dir/mesh/generators.cpp.o"
  "CMakeFiles/canopus_mesh.dir/mesh/generators.cpp.o.d"
  "CMakeFiles/canopus_mesh.dir/mesh/mesh_io.cpp.o"
  "CMakeFiles/canopus_mesh.dir/mesh/mesh_io.cpp.o.d"
  "CMakeFiles/canopus_mesh.dir/mesh/point_locator.cpp.o"
  "CMakeFiles/canopus_mesh.dir/mesh/point_locator.cpp.o.d"
  "CMakeFiles/canopus_mesh.dir/mesh/quality.cpp.o"
  "CMakeFiles/canopus_mesh.dir/mesh/quality.cpp.o.d"
  "CMakeFiles/canopus_mesh.dir/mesh/tri_mesh.cpp.o"
  "CMakeFiles/canopus_mesh.dir/mesh/tri_mesh.cpp.o.d"
  "CMakeFiles/canopus_mesh.dir/mesh/validate.cpp.o"
  "CMakeFiles/canopus_mesh.dir/mesh/validate.cpp.o.d"
  "libcanopus_mesh.a"
  "libcanopus_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canopus_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
