# Empty dependencies file for canopus_mesh.
# This may be replaced when dependencies are built.
