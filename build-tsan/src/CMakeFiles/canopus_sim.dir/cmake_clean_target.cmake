file(REMOVE_RECURSE
  "libcanopus_sim.a"
)
