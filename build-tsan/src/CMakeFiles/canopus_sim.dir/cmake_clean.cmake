file(REMOVE_RECURSE
  "CMakeFiles/canopus_sim.dir/sim/datasets.cpp.o"
  "CMakeFiles/canopus_sim.dir/sim/datasets.cpp.o.d"
  "libcanopus_sim.a"
  "libcanopus_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canopus_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
