# Empty dependencies file for canopus_sim.
# This may be replaced when dependencies are built.
