file(REMOVE_RECURSE
  "libcanopus_util.a"
)
