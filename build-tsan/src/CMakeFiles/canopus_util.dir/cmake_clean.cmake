file(REMOVE_RECURSE
  "CMakeFiles/canopus_util.dir/util/cli.cpp.o"
  "CMakeFiles/canopus_util.dir/util/cli.cpp.o.d"
  "CMakeFiles/canopus_util.dir/util/crc32.cpp.o"
  "CMakeFiles/canopus_util.dir/util/crc32.cpp.o.d"
  "CMakeFiles/canopus_util.dir/util/rng.cpp.o"
  "CMakeFiles/canopus_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/canopus_util.dir/util/stats.cpp.o"
  "CMakeFiles/canopus_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/canopus_util.dir/util/table.cpp.o"
  "CMakeFiles/canopus_util.dir/util/table.cpp.o.d"
  "CMakeFiles/canopus_util.dir/util/thread_pool.cpp.o"
  "CMakeFiles/canopus_util.dir/util/thread_pool.cpp.o.d"
  "CMakeFiles/canopus_util.dir/util/timer.cpp.o"
  "CMakeFiles/canopus_util.dir/util/timer.cpp.o.d"
  "CMakeFiles/canopus_util.dir/util/xml.cpp.o"
  "CMakeFiles/canopus_util.dir/util/xml.cpp.o.d"
  "libcanopus_util.a"
  "libcanopus_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canopus_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
