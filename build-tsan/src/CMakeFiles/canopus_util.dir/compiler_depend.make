# Empty compiler generated dependencies file for canopus_util.
# This may be replaced when dependencies are built.
