file(REMOVE_RECURSE
  "libcanopus_core.a"
)
