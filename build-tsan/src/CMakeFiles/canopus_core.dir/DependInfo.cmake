
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/byte_split.cpp" "src/CMakeFiles/canopus_core.dir/core/byte_split.cpp.o" "gcc" "src/CMakeFiles/canopus_core.dir/core/byte_split.cpp.o.d"
  "/root/repo/src/core/campaign.cpp" "src/CMakeFiles/canopus_core.dir/core/campaign.cpp.o" "gcc" "src/CMakeFiles/canopus_core.dir/core/campaign.cpp.o.d"
  "/root/repo/src/core/config.cpp" "src/CMakeFiles/canopus_core.dir/core/config.cpp.o" "gcc" "src/CMakeFiles/canopus_core.dir/core/config.cpp.o.d"
  "/root/repo/src/core/delta.cpp" "src/CMakeFiles/canopus_core.dir/core/delta.cpp.o" "gcc" "src/CMakeFiles/canopus_core.dir/core/delta.cpp.o.d"
  "/root/repo/src/core/geometry_cache.cpp" "src/CMakeFiles/canopus_core.dir/core/geometry_cache.cpp.o" "gcc" "src/CMakeFiles/canopus_core.dir/core/geometry_cache.cpp.o.d"
  "/root/repo/src/core/progressive_reader.cpp" "src/CMakeFiles/canopus_core.dir/core/progressive_reader.cpp.o" "gcc" "src/CMakeFiles/canopus_core.dir/core/progressive_reader.cpp.o.d"
  "/root/repo/src/core/refactorer.cpp" "src/CMakeFiles/canopus_core.dir/core/refactorer.cpp.o" "gcc" "src/CMakeFiles/canopus_core.dir/core/refactorer.cpp.o.d"
  "/root/repo/src/core/transport.cpp" "src/CMakeFiles/canopus_core.dir/core/transport.cpp.o" "gcc" "src/CMakeFiles/canopus_core.dir/core/transport.cpp.o.d"
  "/root/repo/src/core/types.cpp" "src/CMakeFiles/canopus_core.dir/core/types.cpp.o" "gcc" "src/CMakeFiles/canopus_core.dir/core/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/canopus_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/canopus_mesh.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/canopus_compress.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/canopus_storage.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/canopus_adios.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
