# Empty dependencies file for canopus_core.
# This may be replaced when dependencies are built.
