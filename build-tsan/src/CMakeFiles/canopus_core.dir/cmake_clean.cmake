file(REMOVE_RECURSE
  "CMakeFiles/canopus_core.dir/core/byte_split.cpp.o"
  "CMakeFiles/canopus_core.dir/core/byte_split.cpp.o.d"
  "CMakeFiles/canopus_core.dir/core/campaign.cpp.o"
  "CMakeFiles/canopus_core.dir/core/campaign.cpp.o.d"
  "CMakeFiles/canopus_core.dir/core/config.cpp.o"
  "CMakeFiles/canopus_core.dir/core/config.cpp.o.d"
  "CMakeFiles/canopus_core.dir/core/delta.cpp.o"
  "CMakeFiles/canopus_core.dir/core/delta.cpp.o.d"
  "CMakeFiles/canopus_core.dir/core/geometry_cache.cpp.o"
  "CMakeFiles/canopus_core.dir/core/geometry_cache.cpp.o.d"
  "CMakeFiles/canopus_core.dir/core/progressive_reader.cpp.o"
  "CMakeFiles/canopus_core.dir/core/progressive_reader.cpp.o.d"
  "CMakeFiles/canopus_core.dir/core/refactorer.cpp.o"
  "CMakeFiles/canopus_core.dir/core/refactorer.cpp.o.d"
  "CMakeFiles/canopus_core.dir/core/transport.cpp.o"
  "CMakeFiles/canopus_core.dir/core/transport.cpp.o.d"
  "CMakeFiles/canopus_core.dir/core/types.cpp.o"
  "CMakeFiles/canopus_core.dir/core/types.cpp.o.d"
  "libcanopus_core.a"
  "libcanopus_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canopus_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
