file(REMOVE_RECURSE
  "libcanopus_storage.a"
)
