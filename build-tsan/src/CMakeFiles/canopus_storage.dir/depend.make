# Empty dependencies file for canopus_storage.
# This may be replaced when dependencies are built.
