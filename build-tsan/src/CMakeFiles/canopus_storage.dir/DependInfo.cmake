
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/aggregation.cpp" "src/CMakeFiles/canopus_storage.dir/storage/aggregation.cpp.o" "gcc" "src/CMakeFiles/canopus_storage.dir/storage/aggregation.cpp.o.d"
  "/root/repo/src/storage/blob_frame.cpp" "src/CMakeFiles/canopus_storage.dir/storage/blob_frame.cpp.o" "gcc" "src/CMakeFiles/canopus_storage.dir/storage/blob_frame.cpp.o.d"
  "/root/repo/src/storage/fault.cpp" "src/CMakeFiles/canopus_storage.dir/storage/fault.cpp.o" "gcc" "src/CMakeFiles/canopus_storage.dir/storage/fault.cpp.o.d"
  "/root/repo/src/storage/hierarchy.cpp" "src/CMakeFiles/canopus_storage.dir/storage/hierarchy.cpp.o" "gcc" "src/CMakeFiles/canopus_storage.dir/storage/hierarchy.cpp.o.d"
  "/root/repo/src/storage/tier.cpp" "src/CMakeFiles/canopus_storage.dir/storage/tier.cpp.o" "gcc" "src/CMakeFiles/canopus_storage.dir/storage/tier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/canopus_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
