file(REMOVE_RECURSE
  "CMakeFiles/canopus_storage.dir/storage/aggregation.cpp.o"
  "CMakeFiles/canopus_storage.dir/storage/aggregation.cpp.o.d"
  "CMakeFiles/canopus_storage.dir/storage/blob_frame.cpp.o"
  "CMakeFiles/canopus_storage.dir/storage/blob_frame.cpp.o.d"
  "CMakeFiles/canopus_storage.dir/storage/fault.cpp.o"
  "CMakeFiles/canopus_storage.dir/storage/fault.cpp.o.d"
  "CMakeFiles/canopus_storage.dir/storage/hierarchy.cpp.o"
  "CMakeFiles/canopus_storage.dir/storage/hierarchy.cpp.o.d"
  "CMakeFiles/canopus_storage.dir/storage/tier.cpp.o"
  "CMakeFiles/canopus_storage.dir/storage/tier.cpp.o.d"
  "libcanopus_storage.a"
  "libcanopus_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canopus_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
