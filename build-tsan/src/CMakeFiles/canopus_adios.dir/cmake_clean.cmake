file(REMOVE_RECURSE
  "CMakeFiles/canopus_adios.dir/adios/bp.cpp.o"
  "CMakeFiles/canopus_adios.dir/adios/bp.cpp.o.d"
  "libcanopus_adios.a"
  "libcanopus_adios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canopus_adios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
