file(REMOVE_RECURSE
  "libcanopus_adios.a"
)
