# Empty compiler generated dependencies file for canopus_adios.
# This may be replaced when dependencies are built.
