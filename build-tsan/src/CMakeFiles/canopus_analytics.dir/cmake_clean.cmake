file(REMOVE_RECURSE
  "CMakeFiles/canopus_analytics.dir/analytics/blob.cpp.o"
  "CMakeFiles/canopus_analytics.dir/analytics/blob.cpp.o.d"
  "CMakeFiles/canopus_analytics.dir/analytics/raster.cpp.o"
  "CMakeFiles/canopus_analytics.dir/analytics/raster.cpp.o.d"
  "libcanopus_analytics.a"
  "libcanopus_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canopus_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
