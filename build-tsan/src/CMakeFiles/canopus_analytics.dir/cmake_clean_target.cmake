file(REMOVE_RECURSE
  "libcanopus_analytics.a"
)
