# Empty dependencies file for canopus_analytics.
# This may be replaced when dependencies are built.
