
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/grid/refactor.cpp" "src/CMakeFiles/canopus_grid.dir/grid/refactor.cpp.o" "gcc" "src/CMakeFiles/canopus_grid.dir/grid/refactor.cpp.o.d"
  "/root/repo/src/grid/structured.cpp" "src/CMakeFiles/canopus_grid.dir/grid/structured.cpp.o" "gcc" "src/CMakeFiles/canopus_grid.dir/grid/structured.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/canopus_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/canopus_storage.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/canopus_adios.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/canopus_compress.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/canopus_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/canopus_mesh.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
