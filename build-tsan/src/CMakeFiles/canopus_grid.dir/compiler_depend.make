# Empty compiler generated dependencies file for canopus_grid.
# This may be replaced when dependencies are built.
