file(REMOVE_RECURSE
  "libcanopus_grid.a"
)
