file(REMOVE_RECURSE
  "CMakeFiles/canopus_grid.dir/grid/refactor.cpp.o"
  "CMakeFiles/canopus_grid.dir/grid/refactor.cpp.o.d"
  "CMakeFiles/canopus_grid.dir/grid/structured.cpp.o"
  "CMakeFiles/canopus_grid.dir/grid/structured.cpp.o.d"
  "libcanopus_grid.a"
  "libcanopus_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canopus_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
