# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build-tsan/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build-tsan/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;8;canopus_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fusion_blob_exploration "/root/repo/build-tsan/examples/fusion_blob_exploration" "--levels=4" "--raster=200")
set_tests_properties(example_fusion_blob_exploration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;9;canopus_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_tiered_storage_pipeline "/root/repo/build-tsan/examples/tiered_storage_pipeline" "--scale=0.2")
set_tests_properties(example_tiered_storage_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;10;canopus_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_accuracy_driven_query "/root/repo/build-tsan/examples/accuracy_driven_query")
set_tests_properties(example_accuracy_driven_query PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;11;canopus_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_xml_configured_run "/root/repo/build-tsan/examples/xml_configured_run")
set_tests_properties(example_xml_configured_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;12;canopus_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_roi_zoom "/root/repo/build-tsan/examples/roi_zoom" "--chunks=32" "--raster=200")
set_tests_properties(example_roi_zoom PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;13;canopus_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_structured_grid_demo "/root/repo/build-tsan/examples/structured_grid_demo" "--nx=128" "--ny=96")
set_tests_properties(example_structured_grid_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;14;canopus_example;/root/repo/examples/CMakeLists.txt;0;")
