# Empty compiler generated dependencies file for tiered_storage_pipeline.
# This may be replaced when dependencies are built.
