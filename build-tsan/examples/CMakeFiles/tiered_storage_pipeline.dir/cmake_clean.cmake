file(REMOVE_RECURSE
  "CMakeFiles/tiered_storage_pipeline.dir/tiered_storage_pipeline.cpp.o"
  "CMakeFiles/tiered_storage_pipeline.dir/tiered_storage_pipeline.cpp.o.d"
  "tiered_storage_pipeline"
  "tiered_storage_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiered_storage_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
