file(REMOVE_RECURSE
  "CMakeFiles/roi_zoom.dir/roi_zoom.cpp.o"
  "CMakeFiles/roi_zoom.dir/roi_zoom.cpp.o.d"
  "roi_zoom"
  "roi_zoom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roi_zoom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
