# Empty dependencies file for roi_zoom.
# This may be replaced when dependencies are built.
