# Empty compiler generated dependencies file for structured_grid_demo.
# This may be replaced when dependencies are built.
