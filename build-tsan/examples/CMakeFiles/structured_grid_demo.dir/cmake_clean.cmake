file(REMOVE_RECURSE
  "CMakeFiles/structured_grid_demo.dir/structured_grid_demo.cpp.o"
  "CMakeFiles/structured_grid_demo.dir/structured_grid_demo.cpp.o.d"
  "structured_grid_demo"
  "structured_grid_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/structured_grid_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
