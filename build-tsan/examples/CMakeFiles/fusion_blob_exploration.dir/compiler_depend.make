# Empty compiler generated dependencies file for fusion_blob_exploration.
# This may be replaced when dependencies are built.
