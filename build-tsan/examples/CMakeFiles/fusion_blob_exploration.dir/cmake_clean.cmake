file(REMOVE_RECURSE
  "CMakeFiles/fusion_blob_exploration.dir/fusion_blob_exploration.cpp.o"
  "CMakeFiles/fusion_blob_exploration.dir/fusion_blob_exploration.cpp.o.d"
  "fusion_blob_exploration"
  "fusion_blob_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusion_blob_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
