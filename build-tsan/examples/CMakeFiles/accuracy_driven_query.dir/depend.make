# Empty dependencies file for accuracy_driven_query.
# This may be replaced when dependencies are built.
