file(REMOVE_RECURSE
  "CMakeFiles/accuracy_driven_query.dir/accuracy_driven_query.cpp.o"
  "CMakeFiles/accuracy_driven_query.dir/accuracy_driven_query.cpp.o.d"
  "accuracy_driven_query"
  "accuracy_driven_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accuracy_driven_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
