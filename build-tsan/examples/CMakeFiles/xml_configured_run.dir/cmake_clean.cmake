file(REMOVE_RECURSE
  "CMakeFiles/xml_configured_run.dir/xml_configured_run.cpp.o"
  "CMakeFiles/xml_configured_run.dir/xml_configured_run.cpp.o.d"
  "xml_configured_run"
  "xml_configured_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xml_configured_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
