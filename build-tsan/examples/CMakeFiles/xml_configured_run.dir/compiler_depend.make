# Empty compiler generated dependencies file for xml_configured_run.
# This may be replaced when dependencies are built.
