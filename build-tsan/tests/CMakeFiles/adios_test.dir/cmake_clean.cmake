file(REMOVE_RECURSE
  "CMakeFiles/adios_test.dir/adios_test.cpp.o"
  "CMakeFiles/adios_test.dir/adios_test.cpp.o.d"
  "adios_test"
  "adios_test.pdb"
  "adios_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adios_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
