# Empty compiler generated dependencies file for adios_test.
# This may be replaced when dependencies are built.
