# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/util_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/compress_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/mesh_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/storage_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/fault_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/adios_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/core_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/analytics_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/sim_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/extensions_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/integration_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/config_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/parallel_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/property_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/roi_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/transport_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/grid_test[1]_include.cmake")
