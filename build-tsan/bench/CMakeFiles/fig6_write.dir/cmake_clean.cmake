file(REMOVE_RECURSE
  "CMakeFiles/fig6_write.dir/fig6_write.cpp.o"
  "CMakeFiles/fig6_write.dir/fig6_write.cpp.o.d"
  "fig6_write"
  "fig6_write.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_write.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
