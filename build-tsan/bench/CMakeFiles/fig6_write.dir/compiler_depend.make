# Empty compiler generated dependencies file for fig6_write.
# This may be replaced when dependencies are built.
