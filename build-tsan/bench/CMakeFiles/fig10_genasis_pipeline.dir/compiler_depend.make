# Empty compiler generated dependencies file for fig10_genasis_pipeline.
# This may be replaced when dependencies are built.
