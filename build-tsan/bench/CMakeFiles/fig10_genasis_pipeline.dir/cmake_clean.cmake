file(REMOVE_RECURSE
  "CMakeFiles/fig10_genasis_pipeline.dir/fig10_genasis_pipeline.cpp.o"
  "CMakeFiles/fig10_genasis_pipeline.dir/fig10_genasis_pipeline.cpp.o.d"
  "fig10_genasis_pipeline"
  "fig10_genasis_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_genasis_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
