# Empty dependencies file for quality_metrics.
# This may be replaced when dependencies are built.
