file(REMOVE_RECURSE
  "CMakeFiles/quality_metrics.dir/quality_metrics.cpp.o"
  "CMakeFiles/quality_metrics.dir/quality_metrics.cpp.o.d"
  "quality_metrics"
  "quality_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quality_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
