file(REMOVE_RECURSE
  "CMakeFiles/fig9_xgc_pipeline.dir/fig9_xgc_pipeline.cpp.o"
  "CMakeFiles/fig9_xgc_pipeline.dir/fig9_xgc_pipeline.cpp.o.d"
  "fig9_xgc_pipeline"
  "fig9_xgc_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_xgc_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
