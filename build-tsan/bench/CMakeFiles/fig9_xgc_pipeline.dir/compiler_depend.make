# Empty compiler generated dependencies file for fig9_xgc_pipeline.
# This may be replaced when dependencies are built.
