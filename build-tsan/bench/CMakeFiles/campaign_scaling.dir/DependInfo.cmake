
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/campaign_scaling.cpp" "bench/CMakeFiles/campaign_scaling.dir/campaign_scaling.cpp.o" "gcc" "bench/CMakeFiles/campaign_scaling.dir/campaign_scaling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/canopus_analytics.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/canopus_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/canopus_grid.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/canopus_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/canopus_mesh.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/canopus_adios.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/canopus_compress.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/canopus_storage.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/canopus_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
