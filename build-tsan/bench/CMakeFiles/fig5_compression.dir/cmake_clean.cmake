file(REMOVE_RECURSE
  "CMakeFiles/fig5_compression.dir/fig5_compression.cpp.o"
  "CMakeFiles/fig5_compression.dir/fig5_compression.cpp.o.d"
  "fig5_compression"
  "fig5_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
