# Empty compiler generated dependencies file for fig5_compression.
# This may be replaced when dependencies are built.
