# Empty compiler generated dependencies file for fig8_blob_quality.
# This may be replaced when dependencies are built.
