file(REMOVE_RECURSE
  "CMakeFiles/fig8_blob_quality.dir/fig8_blob_quality.cpp.o"
  "CMakeFiles/fig8_blob_quality.dir/fig8_blob_quality.cpp.o.d"
  "fig8_blob_quality"
  "fig8_blob_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_blob_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
