file(REMOVE_RECURSE
  "CMakeFiles/fig4_refactor_gallery.dir/fig4_refactor_gallery.cpp.o"
  "CMakeFiles/fig4_refactor_gallery.dir/fig4_refactor_gallery.cpp.o.d"
  "fig4_refactor_gallery"
  "fig4_refactor_gallery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_refactor_gallery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
