# Empty dependencies file for fig4_refactor_gallery.
# This may be replaced when dependencies are built.
