# Empty dependencies file for fig11_cfd_pipeline.
# This may be replaced when dependencies are built.
