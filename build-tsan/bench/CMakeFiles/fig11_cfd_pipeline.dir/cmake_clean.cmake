file(REMOVE_RECURSE
  "CMakeFiles/fig11_cfd_pipeline.dir/fig11_cfd_pipeline.cpp.o"
  "CMakeFiles/fig11_cfd_pipeline.dir/fig11_cfd_pipeline.cpp.o.d"
  "fig11_cfd_pipeline"
  "fig11_cfd_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_cfd_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
