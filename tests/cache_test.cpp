// Property and stress suite for the shared block cache (src/cache).
//
// The invariants the randomized sweeps enforce are the ones the concurrent
// read path leans on:
//   - occupancy never exceeds the byte budget, under any op interleaving
//   - a hit returns bytes bitwise-equal to what the loader produced
//   - no entry is ever served after its invalidation
//   - single-flight: N concurrent readers of a key run its loader once
//   - a throwing loader admits nothing (corruption cannot poison the cache)

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstring>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "cache/block_cache.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace cc = canopus::cache;
namespace cu = canopus::util;

namespace {

/// Deterministic payload for a key: content is a pure function of (key,
/// salt), so any two loads of the same key produce bitwise-equal bytes and a
/// served value can be checked against regeneration.
cu::Bytes payload_for(const std::string& key, std::uint64_t salt,
                      std::size_t size) {
  cu::Rng rng(std::hash<std::string>{}(key) ^ salt);
  cu::Bytes bytes(size);
  for (auto& b : bytes) b = static_cast<std::byte>(rng.uniform_index(256));
  return bytes;
}

std::string key_name(std::size_t i) { return "obj/" + std::to_string(i); }

}  // namespace

// Randomized get/invalidate/clear interleavings across seeds. A shadow model
// tracks which keys were invalidated since their last load; the cache must
// never serve a value admitted before that invalidation.
TEST(CacheProperty, RandomizedWorkloadInvariants) {
  const std::uint64_t base = canopus::test::test_seed();
  std::uint64_t total_evictions = 0;  // across rounds; a clear()-heavy round
                                      // can legitimately never evict
  for (std::uint64_t round = 0; round < 20; ++round) {
    const std::uint64_t seed = base + round;
    cu::Rng rng(seed * 131 + 7);

    cc::CacheConfig config;
    config.budget_bytes = 16 << 10;  // tiny: forces constant eviction
    config.shards = 1 + rng.uniform_index(4);
    config.verify_hits = true;  // re-CRC every hit while we are at it
    cc::BlockCache cache(config);

    const std::size_t keys = 24;
    // Generation counter per key: bumped on invalidate, salted into the
    // payload, so serving a stale (pre-invalidation) entry is detectable as
    // a byte mismatch.
    std::map<std::string, std::uint64_t> generation;

    for (std::size_t op = 0; op < 400; ++op) {
      const std::string key = key_name(rng.uniform_index(keys));
      const std::size_t roll = rng.uniform_index(100);
      if (roll < 70) {
        const std::uint64_t gen = generation[key];
        const std::size_t size = 64 + rng.uniform_index(2048);
        const auto result = cache.get_or_load_blob(
            key, [&] { return payload_for(key, gen, size); });
        ASSERT_NE(result.blob, nullptr);
        if (result.source == cc::BlockCache::Source::kLoaded) {
          EXPECT_EQ(*result.blob, payload_for(key, gen, size))
              << "seed " << seed << " op " << op;
        } else {
          // A hit may be any size from an earlier load of this generation,
          // but its content must regenerate bitwise from (key, gen).
          EXPECT_EQ(*result.blob,
                    payload_for(key, gen, result.blob->size()))
              << "stale or corrupt hit, seed " << seed << " op " << op;
        }
      } else if (roll < 90) {
        cache.invalidate(key);
        ++generation[key];
        EXPECT_FALSE(cache.contains(key))
            << "served after invalidate, seed " << seed << " op " << op;
        EXPECT_EQ(cache.lookup_blob(key), nullptr) << "seed " << seed;
      } else if (roll < 95) {
        cache.clear();
        for (auto& [k, gen] : generation) ++gen;
        EXPECT_EQ(cache.occupancy_bytes(), 0u) << "seed " << seed;
      } else {
        cache.lookup_blob(key);  // stat-only probe
      }
      ASSERT_LE(cache.occupancy_bytes(), config.budget_bytes)
          << "budget exceeded, seed " << seed << " op " << op;
    }

    const auto stats = cache.stats();
    EXPECT_GT(stats.misses, 0u) << "seed " << seed;
    total_evictions += stats.evictions;
  }
  EXPECT_GT(total_evictions, 0u)
      << "budget too generous for the whole sweep, base seed " << base;
}

// The strong single-flight guarantee: with no eviction pressure and no
// invalidation, T threads x R rounds over K keys run each key's loader
// exactly once — every other call is a hit or piggybacks on the in-flight
// load. Run under TSan (label `cache`) this doubles as the data-race stress.
TEST(CacheStress, SingleFlightLoadsEachKeyExactlyOnce) {
  const std::uint64_t base = canopus::test::test_seed();
  cc::CacheConfig config;
  config.budget_bytes = 64 << 20;  // never evicts in this test
  config.shards = 4;
  cc::BlockCache cache(config);

  const std::size_t kThreads = 16;
  const std::size_t kKeys = 8;
  const std::size_t kRounds = 50;
  std::atomic<std::uint64_t> loader_runs{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      cu::Rng rng(base * 31 + t);
      for (std::size_t r = 0; r < kRounds; ++r) {
        const std::string key = key_name(rng.uniform_index(kKeys));
        const auto result = cache.get_or_load_blob(key, [&] {
          loader_runs.fetch_add(1);
          return payload_for(key, base, 512);
        });
        ASSERT_NE(result.blob, nullptr);
        EXPECT_EQ(*result.blob, payload_for(key, base, 512));
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(loader_runs.load(), kKeys);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, kKeys);
  EXPECT_EQ(stats.hits + stats.single_flight_waits,
            kThreads * kRounds - kKeys);
  EXPECT_EQ(stats.evictions, 0u);
}

// Concurrent get/invalidate churn under TSan: correctness here is "no data
// race, budget respected, and every served value regenerates from some
// generation the key actually had" (invalidation makes exact generations
// racy by design).
TEST(CacheStress, ConcurrentInvalidateChurn) {
  const std::uint64_t base = canopus::test::test_seed();
  cc::CacheConfig config;
  config.budget_bytes = 32 << 10;
  config.shards = 2;
  cc::BlockCache cache(config);

  const std::size_t kThreads = 8;
  const std::size_t kKeys = 6;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      cu::Rng rng(base * 77 + t);
      for (std::size_t r = 0; r < 120; ++r) {
        const std::string key = key_name(rng.uniform_index(kKeys));
        if (rng.uniform_index(5) == 0) {
          cache.invalidate(key);
        } else {
          const auto result = cache.get_or_load_blob(
              key, [&] { return payload_for(key, base, 256); });
          ASSERT_NE(result.blob, nullptr);
          EXPECT_EQ(*result.blob, payload_for(key, base, 256));
        }
        EXPECT_LE(cache.occupancy_bytes(), config.budget_bytes);
      }
    });
  }
  for (auto& th : threads) th.join();
}

// A throwing loader must admit nothing — and every concurrent waiter of that
// flight sees the exception. The next attempt with a healthy loader succeeds
// and is cached normally.
TEST(CacheFaultPaths, ThrowingLoaderAdmitsNothingAndPropagates) {
  cc::BlockCache cache({.budget_bytes = 1 << 20, .shards = 1});
  std::atomic<int> failures{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      try {
        cache.get_or_load_blob("bad", []() -> cu::Bytes {
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
          throw std::runtime_error("tier read failed");
        });
      } catch (const std::runtime_error&) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(failures.load(), 8);
  EXPECT_FALSE(cache.contains("bad"));
  EXPECT_EQ(cache.occupancy_bytes(), 0u);

  const auto good = cache.get_or_load_blob(
      "bad", [] { return payload_for("bad", 1, 128); });
  EXPECT_EQ(good.source, cc::BlockCache::Source::kLoaded);
  EXPECT_TRUE(cache.contains("bad"));
}

// invalidate() racing an in-flight load: the waiters still receive the value
// they asked for, but the cache must forget it (the cancelled flight is not
// admitted).
TEST(CacheFaultPaths, InvalidateCancelsInFlightAdmission) {
  cc::BlockCache cache({.budget_bytes = 1 << 20, .shards = 1});
  std::atomic<bool> loader_entered{false};
  std::atomic<bool> invalidated{false};

  std::thread leader([&] {
    const auto result = cache.get_or_load_blob("racy", [&] {
      loader_entered.store(true);
      while (!invalidated.load()) std::this_thread::yield();
      return payload_for("racy", 0, 64);
    });
    EXPECT_EQ(*result.blob, payload_for("racy", 0, 64));
  });

  while (!loader_entered.load()) std::this_thread::yield();
  cache.invalidate("racy");
  invalidated.store(true);
  leader.join();

  EXPECT_FALSE(cache.contains("racy"));
  EXPECT_EQ(cache.occupancy_bytes(), 0u);
}

// LRU order with a single shard: touching an entry protects it from the next
// eviction; the least-recently-used entry goes first, and the occupancy
// gauge follows the drops exactly.
TEST(CacheEviction, LruVictimSelection) {
  cc::CacheConfig config;
  config.budget_bytes = 3 * 1024;  // room for three 1 KiB entries
  config.shards = 1;
  cc::BlockCache cache(config);

  auto load = [&](const std::string& key) {
    cache.get_or_load_blob(key, [&] { return payload_for(key, 0, 1024); });
  };
  load("a");
  load("b");
  load("c");
  EXPECT_EQ(cache.occupancy_bytes(), 3u * 1024);

  // Touch "a" so "b" is now the LRU tail; the fourth entry must evict "b".
  EXPECT_NE(cache.lookup_blob("a"), nullptr);
  load("d");
  EXPECT_TRUE(cache.contains("a"));
  EXPECT_FALSE(cache.contains("b"));
  EXPECT_TRUE(cache.contains("c"));
  EXPECT_TRUE(cache.contains("d"));
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_LE(cache.occupancy_bytes(), config.budget_bytes);
}

// Entries larger than a shard's slice of the budget are served but never
// admitted: one huge object must not wipe the whole working set.
TEST(CacheEviction, OversizedEntriesAreServedButRejected) {
  cc::CacheConfig config;
  config.budget_bytes = 8 << 10;
  config.shards = 4;  // slice = 2 KiB
  cc::BlockCache cache(config);

  const auto result = cache.get_or_load_blob(
      "huge", [] { return payload_for("huge", 0, 4096); });
  ASSERT_NE(result.blob, nullptr);
  EXPECT_EQ(result.blob->size(), 4096u);
  EXPECT_FALSE(cache.contains("huge"));
  EXPECT_EQ(cache.stats().rejected, 1u);
  EXPECT_EQ(cache.occupancy_bytes(), 0u);
}

// The decoded-array level: bitwise round trip, byte-accurate charging, and
// independence from a blob entry of a different key.
TEST(CacheArrays, DecodedArraysRoundTripAndCharge) {
  cc::BlockCache cache({.budget_bytes = 1 << 20, .shards = 2});

  std::vector<double> values(257);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = std::sin(static_cast<double>(i) * 0.37) * 1e6;
  }

  const auto loaded =
      cache.get_or_load_array("chunk#decoded", [&] { return values; });
  EXPECT_EQ(loaded.source, cc::BlockCache::Source::kLoaded);
  EXPECT_EQ(cache.occupancy_bytes(), values.size() * sizeof(double));

  const auto hit =
      cache.get_or_load_array("chunk#decoded", [&]() -> std::vector<double> {
        ADD_FAILURE() << "loader must not run on a hit";
        return {};
      });
  EXPECT_EQ(hit.source, cc::BlockCache::Source::kHit);
  ASSERT_EQ(hit.array->size(), values.size());
  EXPECT_EQ(std::memcmp(hit.array->data(), values.data(),
                        values.size() * sizeof(double)),
            0);

  // prefix invalidation drops the decoded alias along with everything else
  // under the container prefix.
  EXPECT_EQ(cache.invalidate_prefix("chunk"), 1u);
  EXPECT_FALSE(cache.contains("chunk#decoded"));
}
