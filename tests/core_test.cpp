// Tests for the Canopus core: delta calculation / restoration (Algorithms 2
// and 3), the refactor-and-write pipeline, tiered placement, and the
// progressive reader.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "core/canopus.hpp"
#include "mesh/cascade.hpp"
#include "mesh/generators.hpp"
#include "mesh/validate.hpp"
#include "storage/hierarchy.hpp"
#include "util/simd.hpp"
#include "util/stats.hpp"

namespace cc = canopus::core;
namespace cm = canopus::mesh;
namespace cs = canopus::storage;
namespace ca = canopus::adios;
namespace cu = canopus::util;

namespace {

cm::Field smooth_field(const cm::TriMesh& mesh) {
  cm::Field f(mesh.vertex_count());
  for (cm::VertexId v = 0; v < mesh.vertex_count(); ++v) {
    const auto p = mesh.vertex(v);
    f[v] = std::sin(p.x * 2.0) * std::cos(p.y * 3.0) + 0.2 * p.y;
  }
  return f;
}

cs::StorageHierarchy big_two_tiers() {
  return cs::StorageHierarchy(
      {cs::tmpfs_spec(256 << 20), cs::lustre_spec(1 << 30)});
}

}  // namespace

// ------------------------------------------------------- delta / restore --

class DeltaRestore : public ::testing::TestWithParam<cc::EstimateMode> {};

TEST_P(DeltaRestore, ExactInverseWithLosslessDeltas) {
  // restore(compute_delta(...)) must reproduce the fine level bit-exactly
  // when deltas are not further compressed — the core Canopus invariant.
  const auto fine_mesh = cm::make_annulus_mesh(10, 60, 0.5, 1.0, 0.15, 3);
  const auto fine_values = smooth_field(fine_mesh);
  cm::DecimateOptions opt;
  opt.ratio = 2.0;
  const auto coarse = cm::decimate(fine_mesh, fine_values, opt);

  const auto mapping = cc::build_mapping(fine_mesh, coarse.mesh);
  const auto delta = cc::compute_delta(coarse.mesh, coarse.values, fine_values,
                                       mapping, GetParam());
  const auto restored = cc::restore_level(coarse.mesh, coarse.values, delta,
                                          mapping, GetParam());
  ASSERT_EQ(restored.size(), fine_values.size());
  for (std::size_t i = 0; i < restored.size(); ++i) {
    EXPECT_DOUBLE_EQ(restored[i], fine_values[i]) << "vertex " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllEstimateModes, DeltaRestore,
                         ::testing::Values(cc::EstimateMode::kUniformThirds,
                                           cc::EstimateMode::kBarycentric,
                                           cc::EstimateMode::kNearestVertex),
                         [](const auto& p) { return cc::to_string(p.param); });

TEST(Delta, DeltasAreSmootherThanLevels) {
  // The Fig. 4/5 premise: the delta stream is less variable than the level
  // data it reconstructs, so it compresses better.
  const auto mesh = cm::make_annulus_mesh(16, 100, 0.5, 1.0, 0.1, 7);
  const auto values = smooth_field(mesh);
  cm::DecimateOptions opt;
  opt.ratio = 2.0;
  const auto coarse = cm::decimate(mesh, values, opt);
  const auto mapping = cc::build_mapping(mesh, coarse.mesh);
  const auto delta = cc::compute_delta(coarse.mesh, coarse.values, values,
                                       mapping, cc::EstimateMode::kBarycentric);
  cu::RunningStats level_stats, delta_stats;
  level_stats.add(values);
  delta_stats.add(delta);
  EXPECT_LT(delta_stats.stddev(), level_stats.stddev());
}

TEST(Delta, BarycentricBeatsUniformOnLinearField) {
  // A linear field is predicted exactly by barycentric interpolation, so its
  // deltas vanish; uniform 1/3 weights leave residuals.
  const auto mesh = cm::make_rect_mesh(20, 20, 1.0, 1.0, 0.2, 5);
  cm::Field f(mesh.vertex_count());
  for (cm::VertexId v = 0; v < mesh.vertex_count(); ++v) {
    const auto p = mesh.vertex(v);
    f[v] = 4.0 * p.x - 7.0 * p.y;
  }
  cm::DecimateOptions opt;
  opt.ratio = 2.0;
  const auto coarse = cm::decimate(mesh, f, opt);
  const auto mapping = cc::build_mapping(mesh, coarse.mesh);
  const auto d_bary = cc::compute_delta(coarse.mesh, coarse.values, f, mapping,
                                        cc::EstimateMode::kBarycentric);
  const auto d_unif = cc::compute_delta(coarse.mesh, coarse.values, f, mapping,
                                        cc::EstimateMode::kUniformThirds);
  cu::RunningStats bary, unif;
  for (double x : d_bary) bary.add(std::abs(x));
  for (double x : d_unif) unif.add(std::abs(x));
  EXPECT_LT(bary.mean(), unif.mean());
}

TEST(Delta, MappingSerializationRoundTrip) {
  const auto mesh = cm::make_disk_mesh(8, 40, 1.0, 0.1, 11);
  cm::DecimateOptions opt;
  opt.ratio = 2.0;
  const auto coarse = cm::decimate(mesh, smooth_field(mesh), opt);
  const auto mapping = cc::build_mapping(mesh, coarse.mesh);
  cu::ByteWriter w;
  mapping.serialize(w);
  cu::ByteReader r(w.view());
  const auto copy = cc::VertexMapping::deserialize(r);
  ASSERT_EQ(copy.size(), mapping.size());
  for (std::size_t i = 0; i < mapping.size(); ++i) {
    EXPECT_EQ(copy.triangle[i], mapping.triangle[i]);
    for (int k = 0; k < 3; ++k) {
      EXPECT_NEAR(copy.weights[i][k], mapping.weights[i][k], 1e-12);
    }
  }
}

TEST(Delta, EstimateModeStringsRoundTrip) {
  for (auto mode : {cc::EstimateMode::kUniformThirds,
                    cc::EstimateMode::kBarycentric,
                    cc::EstimateMode::kNearestVertex}) {
    EXPECT_EQ(cc::estimate_mode_from_string(cc::to_string(mode)), mode);
  }
  EXPECT_THROW(cc::estimate_mode_from_string("cubic"), canopus::Error);
}

// ------------------------------------------------------------- refactorer --

TEST(Refactorer, WritesAllProductsAndLevels) {
  auto tiers = big_two_tiers();
  const auto mesh = cm::make_annulus_mesh(12, 72, 0.5, 1.0, 0.1, 9);
  cc::RefactorConfig config;
  config.levels = 3;
  config.codec = "zfp";
  config.error_bound = 1e-6;
  const auto report = cc::refactor_and_write(tiers, "xgc.bp", "dpot", mesh,
                                             smooth_field(mesh), config);
  // base + 2 deltas.
  ASSERT_EQ(report.products.size(), 3u);
  EXPECT_EQ(report.products[0].name, "base");
  EXPECT_EQ(report.level_vertices.size(), 3u);
  EXPECT_GT(report.phases.get("decimation"), 0.0);
  EXPECT_GT(report.phases.get("io"), 0.0);
  EXPECT_LT(report.total_stored_bytes(), report.total_raw_bytes());

  ca::BpReader reader(tiers, "xgc.bp");
  const auto info = reader.inq_var("dpot");
  EXPECT_NE(info.block(ca::BlockKind::kBase, 2), nullptr);
  EXPECT_NE(info.block(ca::BlockKind::kDelta, 0), nullptr);
  EXPECT_NE(info.block(ca::BlockKind::kDelta, 1), nullptr);
  EXPECT_NE(info.block(ca::BlockKind::kMesh, 0), nullptr);
  EXPECT_NE(info.block(ca::BlockKind::kMapping, 1), nullptr);
  EXPECT_EQ(reader.attribute("codec"), std::optional<std::string>("zfp"));
}

TEST(Refactorer, TieredPlacementFollowsFig1) {
  // 3 levels over 3 tiers: base -> tier 0, delta1 -> tier 1, delta0 -> tier 2.
  cs::StorageHierarchy tiers({cs::tmpfs_spec(64 << 20),
                              cs::ssd_spec(128 << 20),
                              cs::lustre_spec(1 << 30)});
  const auto mesh = cm::make_rect_mesh(40, 40, 1.0, 1.0, 0.1, 13);
  cc::RefactorConfig config;
  config.levels = 3;
  const auto report = cc::refactor_and_write(tiers, "r.bp", "v", mesh,
                                             smooth_field(mesh), config);
  for (const auto& p : report.products) {
    if (p.name == "base") {
      EXPECT_EQ(p.tier, 0u);
    } else if (p.name == "delta1") {
      EXPECT_EQ(p.tier, 1u);
    } else if (p.name == "delta0") {
      EXPECT_EQ(p.tier, 2u);
    }
  }
}

TEST(Refactorer, ChunkTiersReportEveryChunkAndSlowestTier) {
  // Round-robin placement scatters a chunked delta across tiers; the product
  // must list every chunk's tier (matching the container index) and report
  // the slowest of them — not whichever tier the last chunk happened to get.
  cs::StorageHierarchy tiers({cs::tmpfs_spec(64 << 20), cs::ssd_spec(64 << 20),
                              cs::lustre_spec(1 << 30)},
                             cs::PlacementPolicy::kRoundRobin);
  const auto mesh = cm::make_rect_mesh(40, 40, 1.0, 1.0, 0.1, 13);
  cc::RefactorConfig config;
  config.levels = 2;
  config.delta_chunks = 4;
  config.tiered_placement = false;  // let the round-robin policy place
  const auto report = cc::refactor_and_write(tiers, "rr.bp", "v", mesh,
                                             smooth_field(mesh), config);

  ca::BpReader reader(tiers, "rr.bp");
  const auto info = reader.inq_var("v");
  for (const auto& p : report.products) {
    ASSERT_FALSE(p.chunk_tiers.empty()) << p.name;
    std::uint32_t slowest = 0;
    for (std::uint32_t t : p.chunk_tiers) slowest = std::max(slowest, t);
    EXPECT_EQ(p.tier, slowest) << p.name;
    if (p.name != "base") {
      ASSERT_EQ(p.chunk_tiers.size(), 4u);
      // Ground truth: the per-chunk tiers recorded in the container index.
      for (const auto& b : info.blocks) {
        if (b.kind == ca::BlockKind::kDelta && b.level == p.level) {
          EXPECT_EQ(p.chunk_tiers[b.chunk], b.tier)
              << p.name << " chunk " << b.chunk;
        }
      }
      // Round-robin over 3 tiers with 4 chunks must actually scatter.
      const std::set<std::uint32_t> distinct(p.chunk_tiers.begin(),
                                             p.chunk_tiers.end());
      EXPECT_GE(distinct.size(), 2u) << p.name;
    }
  }
}

TEST(Refactorer, PrebuiltCascadeMatchesFromScratchRefactor) {
  // The campaign-style overload must write the exact same container as the
  // mesh+values entry point, minus the decimation phase.
  const auto mesh = cm::make_annulus_mesh(12, 72, 0.5, 1.0, 0.1, 9);
  const auto values = smooth_field(mesh);
  cc::RefactorConfig config;
  config.levels = 3;

  auto tiers_a = big_two_tiers();
  const auto from_scratch =
      cc::refactor_and_write(tiers_a, "a.bp", "v", mesh, values, config);

  cm::CascadeOptions copt;
  copt.levels = config.levels;
  copt.step = config.step;
  copt.decimate = config.decimate;
  const auto cascade = cm::build_cascade(mesh, values, copt);
  auto tiers_b = big_two_tiers();
  const auto prebuilt =
      cc::refactor_and_write(tiers_b, "a.bp", "v", cascade, config);

  EXPECT_GT(from_scratch.phases.get("decimation"), 0.0);
  EXPECT_EQ(prebuilt.phases.get("decimation"), 0.0);
  ASSERT_EQ(prebuilt.products.size(), from_scratch.products.size());
  for (std::size_t i = 0; i < prebuilt.products.size(); ++i) {
    EXPECT_EQ(prebuilt.products[i].name, from_scratch.products[i].name);
    EXPECT_EQ(prebuilt.products[i].stored_bytes,
              from_scratch.products[i].stored_bytes);
    EXPECT_EQ(prebuilt.products[i].tier, from_scratch.products[i].tier);
  }
  EXPECT_EQ(prebuilt.level_vertices, from_scratch.level_vertices);
}

TEST(Refactorer, BypassesFullFastTier) {
  // Tiny fast tier: nothing fits there, everything lands on the slow tier.
  cs::StorageHierarchy tiers({cs::tmpfs_spec(64), cs::lustre_spec(1 << 30)});
  const auto mesh = cm::make_rect_mesh(30, 30, 1.0, 1.0);
  cc::RefactorConfig config;
  config.levels = 2;
  const auto report = cc::refactor_and_write(tiers, "r.bp", "v", mesh,
                                             smooth_field(mesh), config);
  for (const auto& p : report.products) EXPECT_EQ(p.tier, 1u);
}

TEST(Refactorer, CanopusBeatsDirectMultilevelStorage) {
  // Motivation 2 / Fig. 5: storing base + deltas is smaller than storing all
  // decimated levels directly at the same codec accuracy.
  auto tiers = big_two_tiers();
  const auto mesh = cm::make_annulus_mesh(20, 120, 0.5, 1.0, 0.1, 21);
  const auto values = smooth_field(mesh);
  cc::RefactorConfig config;
  config.levels = 3;
  config.codec = "zfp";
  config.error_bound = 1e-5;
  const auto canopus = cc::refactor_and_write(tiers, "c.bp", "v", mesh, values,
                                              config);
  const auto direct = cc::direct_multilevel_sizes(mesh, values, config);
  EXPECT_LT(canopus.total_stored_bytes(), direct.total_stored_bytes());
}

TEST(Refactorer, SingleLevelDegeneratesToBaseOnly) {
  auto tiers = big_two_tiers();
  const auto mesh = cm::make_rect_mesh(10, 10, 1.0, 1.0);
  cc::RefactorConfig config;
  config.levels = 1;
  const auto report = cc::refactor_and_write(tiers, "one.bp", "v", mesh,
                                             smooth_field(mesh), config);
  ASSERT_EQ(report.products.size(), 1u);
  EXPECT_EQ(report.products[0].name, "base");
  EXPECT_EQ(report.products[0].level, 0u);
}

// ----------------------------------------------------- progressive reader --

TEST(ProgressiveReader, BaseThenRefineToFull) {
  auto tiers = big_two_tiers();
  const auto mesh = cm::make_annulus_mesh(12, 80, 0.5, 1.0, 0.1, 33);
  const auto values = smooth_field(mesh);
  cc::RefactorConfig config;
  config.levels = 3;
  config.codec = "zfp";
  config.error_bound = 1e-7;
  cc::refactor_and_write(tiers, "p.bp", "dpot", mesh, values, config);

  cc::ProgressiveReader reader(tiers, "p.bp", "dpot");
  EXPECT_EQ(reader.level_count(), 3u);
  EXPECT_EQ(reader.current_level(), 2u);
  EXPECT_GT(reader.decimation_ratio(), 3.0);
  const auto base_vertices = reader.values().size();
  EXPECT_LT(base_vertices, mesh.vertex_count());
  EXPECT_EQ(reader.values().size(), reader.current_mesh().vertex_count());

  const auto step = reader.refine();
  EXPECT_EQ(reader.current_level(), 1u);
  EXPECT_GT(reader.values().size(), base_vertices);
  EXPECT_GT(step.io_seconds, 0.0);
  EXPECT_GT(step.restore_seconds, 0.0);

  reader.refine();
  EXPECT_TRUE(reader.at_full_accuracy());
  ASSERT_EQ(reader.values().size(), values.size());
  // Error budget: one codec bound per product applied along the chain
  // (base + 2 deltas), so <= 3 * eb.
  EXPECT_LE(cu::max_abs_error(values, reader.values()),
            3.0 * config.error_bound);
  EXPECT_THROW(reader.refine(), canopus::Error);
}

TEST(ProgressiveReader, RefineToSkipsLevels) {
  auto tiers = big_two_tiers();
  const auto mesh = cm::make_annulus_mesh(16, 90, 0.5, 1.0, 0.1, 41);
  const auto values = smooth_field(mesh);
  cc::RefactorConfig config;
  config.levels = 4;
  config.error_bound = 1e-6;
  cc::refactor_and_write(tiers, "p4.bp", "v", mesh, values, config);

  cc::ProgressiveReader reader(tiers, "p4.bp", "v");
  EXPECT_EQ(reader.current_level(), 3u);
  const auto t = reader.refine_to(0);
  EXPECT_TRUE(reader.at_full_accuracy());
  EXPECT_GT(t.io_seconds, 0.0);
  EXPECT_LE(cu::max_abs_error(values, reader.values()),
            4.0 * config.error_bound);
}

TEST(ProgressiveReader, LosslessChainIsExactToRounding) {
  // With a lossless codec the only reconstruction error left is the
  // floating-point rounding of fl((x - est) + est): at most a few ulps.
  auto tiers = big_two_tiers();
  const auto mesh = cm::make_rect_mesh(30, 30, 1.0, 1.0, 0.2, 43);
  const auto values = smooth_field(mesh);
  cc::RefactorConfig config;
  config.levels = 3;
  config.codec = "fpc";
  cc::refactor_and_write(tiers, "exact.bp", "v", mesh, values, config);

  cc::ProgressiveReader reader(tiers, "exact.bp", "v");
  reader.refine_to(0);
  ASSERT_EQ(reader.values().size(), values.size());
  EXPECT_LE(cu::max_abs_error(values, reader.values()), 1e-14);
}

TEST(ProgressiveReader, EachRefinementImprovesAccuracy) {
  auto tiers = big_two_tiers();
  const auto mesh = cm::make_annulus_mesh(16, 100, 0.5, 1.0, 0.1, 47);
  const auto values = smooth_field(mesh);
  cc::RefactorConfig config;
  config.levels = 4;
  config.codec = "zfp";
  config.error_bound = 1e-8;
  cc::refactor_and_write(tiers, "imp.bp", "v", mesh, values, config);

  // Reference restoration chain evaluated against rasterized comparisons is
  // heavy; instead compare RMS error of the *restored full level* as we start
  // from deeper bases. Here: verify the restored L0 from all levels matches,
  // and that intermediate levels have monotonically growing vertex counts.
  cc::ProgressiveReader reader(tiers, "imp.bp", "v");
  std::size_t prev = reader.values().size();
  while (!reader.at_full_accuracy()) {
    reader.refine();
    EXPECT_GT(reader.values().size(), prev);
    prev = reader.values().size();
  }
  EXPECT_LE(cu::max_abs_error(values, reader.values()), 4 * config.error_bound);
}

TEST(ProgressiveReader, RefineUntilStopsEarlyOnSmoothData) {
  auto tiers = big_two_tiers();
  const auto mesh = cm::make_annulus_mesh(16, 100, 0.5, 1.0, 0.1, 53);
  // Nearly constant field: refinements contribute almost nothing, so a loose
  // threshold stops at the first refinement.
  cm::Field values(mesh.vertex_count(), 5.0);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] += 1e-6 * std::sin(static_cast<double>(i));
  }
  cc::RefactorConfig config;
  config.levels = 4;
  config.codec = "fpc";
  cc::refactor_and_write(tiers, "ru.bp", "v", mesh, values, config);

  cc::ProgressiveReader reader(tiers, "ru.bp", "v");
  reader.refine_until(1e-3);
  EXPECT_GT(reader.current_level(), 0u);  // stopped before full accuracy

  cc::ProgressiveReader reader2(tiers, "ru.bp", "v");
  reader2.refine_until(0.0);  // impossible threshold -> full accuracy
  EXPECT_TRUE(reader2.at_full_accuracy());
}

TEST(ProgressiveReader, CumulativeTimingsAccumulate) {
  auto tiers = big_two_tiers();
  const auto mesh = cm::make_rect_mesh(25, 25, 1.0, 1.0);
  cc::RefactorConfig config;
  config.levels = 3;
  cc::refactor_and_write(tiers, "t.bp", "v", mesh, smooth_field(mesh), config);

  cc::ProgressiveReader reader(tiers, "t.bp", "v");
  const double after_open = reader.cumulative().io_seconds;
  EXPECT_GT(after_open, 0.0);
  reader.refine();
  EXPECT_GT(reader.cumulative().io_seconds, after_open);
  EXPECT_GT(reader.cumulative().bytes_read, 0u);
}

TEST(ProgressiveReader, RestoredMeshesAreValid) {
  auto tiers = big_two_tiers();
  const auto mesh = cm::make_disk_mesh(12, 64, 1.0, 0.1, 59);
  cc::RefactorConfig config;
  config.levels = 3;
  cc::refactor_and_write(tiers, "m.bp", "v", mesh, smooth_field(mesh), config);
  cc::ProgressiveReader reader(tiers, "m.bp", "v");
  while (true) {
    const auto report = cm::validate(reader.current_mesh());
    EXPECT_TRUE(report.ok) << "level " << reader.current_level();
    if (reader.at_full_accuracy()) break;
    reader.refine();
  }
}

// ----------------------------------------------------------- error budget --

TEST(ErrorBudget, TotalBudgetHeldEndToEnd) {
  auto tiers = big_two_tiers();
  const auto mesh = cm::make_annulus_mesh(12, 72, 0.5, 1.0, 0.1, 61);
  const auto values = smooth_field(mesh);
  cc::RefactorConfig config;
  config.levels = 4;
  config.codec = "zfp";
  config.set_total_error_budget(1e-4);
  EXPECT_DOUBLE_EQ(config.error_bound, 2.5e-5);
  cc::refactor_and_write(tiers, "budget.bp", "v", mesh, values, config);
  cc::ProgressiveReader reader(tiers, "budget.bp", "v");
  reader.refine_to(0);
  EXPECT_LE(cu::max_abs_error(values, reader.values()), 1e-4);
}

TEST(ProgressiveReader, RefineUntilValidatesThreshold) {
  auto tiers = big_two_tiers();
  const auto mesh = cm::make_rect_mesh(20, 20, 1.0, 1.0);
  cc::RefactorConfig config;
  config.levels = 3;
  config.codec = "fpc";
  cc::refactor_and_write(tiers, "rv.bp", "v", mesh, smooth_field(mesh), config);

  cc::ProgressiveReader reader(tiers, "rv.bp", "v");
  const auto before = reader.current_level();
  // A NaN/inf threshold is a caller bug, rejected before any I/O...
  EXPECT_THROW(reader.refine_until(std::nan("")), canopus::Error);
  EXPECT_THROW(
      reader.refine_until(std::numeric_limits<double>::infinity()),
      canopus::Error);
  EXPECT_EQ(reader.current_level(), before);
  // ...while any threshold <= 0 is legal and means "never stop early":
  // refine all the way to full accuracy.
  reader.refine_until(-1.0);
  EXPECT_TRUE(reader.at_full_accuracy());
}

// ----------------------------------------------------- simd equivalence --

// The vectorized estimate/residual loops (including the in-register
// transpose of the barycentric weights) are speed-only: every estimate mode
// must produce the exact bytes of the scalar loop, delta and restore alike.
TEST(Delta, SimdMatchesScalarBitwiseAllModes) {
  const auto fine_mesh = cm::make_annulus_mesh(12, 80, 0.5, 1.0, 0.15, 3);
  const auto fine_values = smooth_field(fine_mesh);
  cm::DecimateOptions opt;
  opt.ratio = 2.0;
  const auto coarse = cm::decimate(fine_mesh, fine_values, opt);
  const auto mapping = cc::build_mapping(fine_mesh, coarse.mesh);

  for (const auto mode :
       {cc::EstimateMode::kUniformThirds, cc::EstimateMode::kBarycentric,
        cc::EstimateMode::kNearestVertex}) {
    cm::Field scalar_delta, scalar_restored;
    {
      cu::simd::ScopedForceScalar force;
      scalar_delta = cc::compute_delta(coarse.mesh, coarse.values, fine_values,
                                       mapping, mode);
      scalar_restored = cc::restore_level(coarse.mesh, coarse.values,
                                          scalar_delta, mapping, mode);
    }
    const auto simd_delta = cc::compute_delta(coarse.mesh, coarse.values,
                                              fine_values, mapping, mode);
    const auto simd_restored = cc::restore_level(
        coarse.mesh, coarse.values, simd_delta, mapping, mode);

    ASSERT_EQ(scalar_delta.size(), simd_delta.size());
    for (std::size_t i = 0; i < simd_delta.size(); ++i) {
      ASSERT_EQ(scalar_delta[i], simd_delta[i])
          << "mode " << static_cast<int>(mode) << " vertex " << i;
      ASSERT_EQ(scalar_restored[i], simd_restored[i])
          << "mode " << static_cast<int>(mode) << " vertex " << i;
    }
  }
}
