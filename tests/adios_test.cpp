// Tests for the BP-like container: write/inq/read workflow, multi-tier block
// placement, attributes, opaque blobs, corrupt metadata handling.

#include <gtest/gtest.h>

#include <cmath>

#include "adios/bp.hpp"
#include "mesh/generators.hpp"
#include "storage/hierarchy.hpp"
#include "util/stats.hpp"

namespace ca = canopus::adios;
namespace cs = canopus::storage;
namespace cm = canopus::mesh;
namespace cu = canopus::util;

namespace {

cs::StorageHierarchy two_tiers(std::size_t fast = 1 << 20,
                               std::size_t slow = 64 << 20) {
  return cs::StorageHierarchy({cs::tmpfs_spec(fast), cs::lustre_spec(slow)});
}

std::vector<double> wave(std::size_t n) {
  std::vector<double> xs(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = std::sin(static_cast<double>(i) * 0.01) * 7.0;
  }
  return xs;
}

}  // namespace

TEST(Bp, WriteReadRoundTripLossless) {
  auto h = two_tiers();
  const auto xs = wave(5000);
  {
    ca::BpWriter w(h, "run1.bp");
    w.write_doubles("dpot", ca::BlockKind::kData, 0, xs, "fpc", 0.0);
    w.close();
  }
  ca::BpReader r(h, "run1.bp");
  ca::ReadTiming timing;
  const auto back = r.read_doubles("dpot", ca::BlockKind::kData, 0, &timing);
  EXPECT_EQ(back, xs);
  EXPECT_GT(timing.io_sim_seconds, 0.0);
  EXPECT_GT(timing.bytes_read, 0u);
}

TEST(Bp, LossyBlockHonorsBound) {
  auto h = two_tiers();
  const auto xs = wave(5000);
  const double eb = 1e-4;
  {
    ca::BpWriter w(h, "run.bp");
    w.write_doubles("dpot", ca::BlockKind::kBase, 2, xs, "zfp", eb);
    w.close();
  }
  ca::BpReader r(h, "run.bp");
  const auto back = r.read_doubles("dpot", ca::BlockKind::kBase, 2);
  EXPECT_LE(cu::max_abs_error(xs, back), eb);
}

TEST(Bp, UnclosedWriterIsUnreadable) {
  auto h = two_tiers();
  ca::BpWriter w(h, "never_closed.bp");
  w.write_doubles("v", ca::BlockKind::kData, 0, wave(10), "raw", 0.0);
  EXPECT_THROW(ca::BpReader(h, "never_closed.bp"), canopus::Error);
}

TEST(Bp, InqVarReportsLevelsAndSizes) {
  auto h = two_tiers();
  {
    ca::BpWriter w(h, "multi.bp");
    w.write_doubles("dpot", ca::BlockKind::kBase, 2, wave(1000), "zfp", 1e-3);
    w.write_doubles("dpot", ca::BlockKind::kDelta, 1, wave(2000), "zfp", 1e-3);
    w.write_doubles("dpot", ca::BlockKind::kDelta, 0, wave(4000), "zfp", 1e-3);
    w.write_doubles("temp", ca::BlockKind::kData, 0, wave(100), "raw", 0.0);
    w.close();
  }
  ca::BpReader r(h, "multi.bp");
  EXPECT_EQ(r.variables(), (std::vector<std::string>{"dpot", "temp"}));
  const auto info = r.inq_var("dpot");
  EXPECT_EQ(info.blocks.size(), 3u);
  EXPECT_EQ(info.levels(ca::BlockKind::kDelta),
            (std::vector<std::uint32_t>{0, 1}));
  const auto* base = info.block(ca::BlockKind::kBase, 2);
  ASSERT_NE(base, nullptr);
  EXPECT_EQ(base->value_count, 1000u);
  EXPECT_EQ(base->raw_bytes, 8000u);
  EXPECT_GT(base->stored_bytes, 0u);
  EXPECT_THROW(r.inq_var("nope"), canopus::Error);
}

TEST(Bp, BaseGoesToFastTierDeltasSpill) {
  // Fast tier sized to hold only the base: deltas bypass to the slow tier.
  auto h = two_tiers(3000, 64 << 20);
  {
    ca::BpWriter w(h, "placed.bp");
    w.write_doubles("dpot", ca::BlockKind::kBase, 2, wave(300), "raw", 0.0);
    w.write_doubles("dpot", ca::BlockKind::kDelta, 1, wave(3000), "raw", 0.0);
    w.close();
  }
  ca::BpReader r(h, "placed.bp");
  const auto info = r.inq_var("dpot");
  EXPECT_EQ(info.block(ca::BlockKind::kBase, 2)->tier, 0u);
  EXPECT_EQ(info.block(ca::BlockKind::kDelta, 1)->tier, 1u);
}

TEST(Bp, TierHintPinsBlock) {
  auto h = two_tiers();
  {
    ca::BpWriter w(h, "hint.bp");
    w.write_doubles("v", ca::BlockKind::kData, 0, wave(100), "raw", 0.0, 1u);
    w.close();
  }
  ca::BpReader r(h, "hint.bp");
  EXPECT_EQ(r.inq_var("v").blocks[0].tier, 1u);
}

TEST(Bp, OpaqueMeshBlockRoundTrip) {
  auto h = two_tiers();
  const auto mesh = cm::make_annulus_mesh(4, 24, 0.5, 1.0, 0.1, 2);
  cu::ByteWriter mesh_bytes;
  mesh.serialize(mesh_bytes);
  {
    ca::BpWriter w(h, "meshy.bp");
    w.write_opaque("dpot", ca::BlockKind::kMesh, 1, mesh_bytes.view());
    w.close();
  }
  ca::BpReader r(h, "meshy.bp");
  const auto raw = r.read_opaque("dpot", ca::BlockKind::kMesh, 1);
  cu::ByteReader br(raw);
  EXPECT_TRUE(cm::TriMesh::deserialize(br) == mesh);
  // Opaque blocks refuse the double-read path.
  EXPECT_THROW(r.read_doubles("dpot", ca::BlockKind::kMesh, 1), canopus::Error);
}

TEST(Bp, AttributesRoundTrip) {
  auto h = two_tiers();
  {
    ca::BpWriter w(h, "attr.bp");
    w.write_doubles("v", ca::BlockKind::kData, 0, wave(10), "raw", 0.0);
    w.set_attribute("levels", "3");
    w.set_attribute("app", "xgc1");
    w.close();
  }
  ca::BpReader r(h, "attr.bp");
  EXPECT_EQ(r.attribute("levels"), std::optional<std::string>("3"));
  EXPECT_EQ(r.attribute("app"), std::optional<std::string>("xgc1"));
  EXPECT_EQ(r.attribute("missing"), std::nullopt);
}

TEST(Bp, RewriteReplacesBlock) {
  auto h = two_tiers();
  {
    ca::BpWriter w(h, "rw.bp");
    w.write_doubles("v", ca::BlockKind::kData, 0, wave(100), "raw", 0.0);
    w.write_doubles("v", ca::BlockKind::kData, 0, wave(50), "raw", 0.0);
    w.close();
  }
  ca::BpReader r(h, "rw.bp");
  EXPECT_EQ(r.inq_var("v").blocks.size(), 1u);
  EXPECT_EQ(r.read_doubles("v", ca::BlockKind::kData, 0).size(), 50u);
}

TEST(Bp, ClosedWriterRejectsWrites) {
  auto h = two_tiers();
  ca::BpWriter w(h, "closed.bp");
  w.close();
  EXPECT_THROW(
      w.write_doubles("v", ca::BlockKind::kData, 0, wave(5), "raw", 0.0),
      canopus::Error);
  EXPECT_THROW(w.close(), canopus::Error);
}

TEST(Bp, MissingBlockThrows) {
  auto h = two_tiers();
  {
    ca::BpWriter w(h, "sparse.bp");
    w.write_doubles("v", ca::BlockKind::kData, 0, wave(5), "raw", 0.0);
    w.close();
  }
  ca::BpReader r(h, "sparse.bp");
  EXPECT_THROW(r.read_doubles("v", ca::BlockKind::kData, 3), canopus::Error);
  EXPECT_THROW(r.read_doubles("w", ca::BlockKind::kData, 0), canopus::Error);
}

TEST(Bp, CorruptMetadataRejected) {
  auto h = two_tiers();
  // Plant garbage where the metadata object would live.
  h.place(ca::metadata_key("evil.bp"), cu::Bytes(64, std::byte{0x5A}));
  EXPECT_THROW(ca::BpReader(h, "evil.bp"), canopus::Error);
}

TEST(Bp, TwoContainersCoexist) {
  auto h = two_tiers();
  {
    ca::BpWriter w1(h, "a.bp");
    w1.write_doubles("v", ca::BlockKind::kData, 0, wave(10), "raw", 0.0);
    w1.close();
    ca::BpWriter w2(h, "b.bp");
    w2.write_doubles("v", ca::BlockKind::kData, 0, wave(20), "raw", 0.0);
    w2.close();
  }
  ca::BpReader ra(h, "a.bp");
  ca::BpReader rb(h, "b.bp");
  EXPECT_EQ(ra.read_doubles("v", ca::BlockKind::kData, 0).size(), 10u);
  EXPECT_EQ(rb.read_doubles("v", ca::BlockKind::kData, 0).size(), 20u);
}
