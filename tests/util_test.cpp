// Unit tests for the util substrate: byte/bit streams, RNG, stats, thread
// pool, tables, CLI parsing.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <sstream>

#include "util/bitstream.hpp"
#include "util/byte_buffer.hpp"
#include "util/cli.hpp"
#include "util/crc32.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace cu = canopus::util;

TEST(ByteBuffer, PrimitiveRoundTrip) {
  cu::ByteWriter w;
  w.put<std::uint32_t>(0xDEADBEEF);
  w.put<double>(3.25);
  w.put<std::int8_t>(-5);
  cu::ByteReader r(w.view());
  EXPECT_EQ(r.get<std::uint32_t>(), 0xDEADBEEFu);
  EXPECT_EQ(r.get<double>(), 3.25);
  EXPECT_EQ(r.get<std::int8_t>(), -5);
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteBuffer, VarintRoundTrip) {
  cu::ByteWriter w;
  const std::uint64_t cases[] = {0, 1, 127, 128, 300, 1ull << 32, ~0ull};
  for (auto v : cases) w.put_varint(v);
  cu::ByteReader r(w.view());
  for (auto v : cases) EXPECT_EQ(r.get_varint(), v);
}

TEST(ByteBuffer, VarintCompactness) {
  cu::ByteWriter w;
  w.put_varint(5);
  EXPECT_EQ(w.size(), 1u);
  w.put_varint(300);
  EXPECT_EQ(w.size(), 3u);
}

TEST(ByteBuffer, StringAndVectorRoundTrip) {
  cu::ByteWriter w;
  w.put_string("dpot");
  w.put_vector(std::vector<double>{1.0, 2.0, 3.0});
  w.put_string("");
  cu::ByteReader r(w.view());
  EXPECT_EQ(r.get_string(), "dpot");
  EXPECT_EQ(r.get_vector<double>(), (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_EQ(r.get_string(), "");
}

TEST(ByteBuffer, TruncationThrows) {
  cu::ByteWriter w;
  w.put<std::uint16_t>(7);
  cu::ByteReader r(w.view());
  EXPECT_THROW(r.get<std::uint64_t>(), canopus::Error);
}

TEST(ByteBuffer, CorruptVectorLengthThrows) {
  cu::ByteWriter w;
  w.put_varint(1'000'000);  // claims a million doubles, provides none
  cu::ByteReader r(w.view());
  EXPECT_THROW(r.get_vector<double>(), canopus::Error);
}

TEST(ByteBuffer, PatchOverwritesInPlace) {
  cu::ByteWriter w;
  w.put<std::uint64_t>(0);
  w.put<std::uint8_t>(9);
  w.patch<std::uint64_t>(0, 42);
  cu::ByteReader r(w.view());
  EXPECT_EQ(r.get<std::uint64_t>(), 42u);
}

TEST(BitStream, SingleBits) {
  cu::BitWriter w;
  const bool pattern[] = {true, false, true, true, false, false, true};
  for (bool b : pattern) w.write_bit(b);
  const auto bytes = w.finish();
  cu::BitReader r(bytes);
  for (bool b : pattern) EXPECT_EQ(r.read_bit(), b);
}

TEST(BitStream, MultiBitFields) {
  cu::BitWriter w;
  w.write_bits(0x3, 2);
  w.write_bits(0x1FF, 9);
  w.write_bits(0xFFFFFFFFFFFFFFFFull, 64);
  w.write_bits(0, 5);
  w.write_bits(0x15, 5);
  const auto bytes = w.finish();
  cu::BitReader r(bytes);
  EXPECT_EQ(r.read_bits(2), 0x3u);
  EXPECT_EQ(r.read_bits(9), 0x1FFu);
  EXPECT_EQ(r.read_bits(64), 0xFFFFFFFFFFFFFFFFull);
  EXPECT_EQ(r.read_bits(5), 0u);
  EXPECT_EQ(r.read_bits(5), 0x15u);
}

TEST(BitStream, CrossWordBoundary) {
  cu::BitWriter w;
  for (int i = 0; i < 10; ++i) w.write_bits(static_cast<std::uint64_t>(i), 13);
  const auto bytes = w.finish();
  cu::BitReader r(bytes);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(r.read_bits(13), static_cast<std::uint64_t>(i));
  }
}

TEST(BitStream, UnaryCodes) {
  cu::BitWriter w;
  for (std::uint32_t n : {0u, 1u, 5u, 40u, 100u}) w.write_unary(n);
  const auto bytes = w.finish();
  cu::BitReader r(bytes);
  for (std::uint32_t n : {0u, 1u, 5u, 40u, 100u}) EXPECT_EQ(r.read_unary(), n);
}

TEST(Rng, DeterministicAcrossInstances) {
  cu::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  cu::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformRange) {
  cu::Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIndexUnbiasedEnough) {
  cu::Rng rng(9);
  std::vector<int> counts(5, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_index(5)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 5.0, n * 0.02);
  }
}

TEST(Rng, NormalMoments) {
  cu::Rng rng(11);
  cu::RunningStats st;
  for (int i = 0; i < 100000; ++i) st.add(rng.normal(3.0, 2.0));
  EXPECT_NEAR(st.mean(), 3.0, 0.05);
  EXPECT_NEAR(st.stddev(), 2.0, 0.05);
}

TEST(Stats, RunningStatsBasics) {
  cu::RunningStats st;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) st.add(x);
  EXPECT_EQ(st.count(), 8u);
  EXPECT_DOUBLE_EQ(st.mean(), 5.0);
  EXPECT_NEAR(st.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(st.min(), 2.0);
  EXPECT_EQ(st.max(), 9.0);
}

TEST(Stats, RmseAndMaxError) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{1.0, 2.5, 2.0};
  EXPECT_NEAR(cu::rmse(a, b), std::sqrt((0.25 + 1.0) / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(cu::max_abs_error(a, b), 1.0);
  EXPECT_DOUBLE_EQ(cu::rmse(a, a), 0.0);
}

TEST(Stats, PsnrIdenticalIsInfinite) {
  const std::vector<double> a{0.0, 1.0, 2.0};
  EXPECT_TRUE(std::isinf(cu::psnr(a, a)));
}

TEST(Stats, SmoothSignalHasLowerTotalVariation) {
  std::vector<double> smooth(256), rough(256);
  cu::Rng rng(13);
  for (std::size_t i = 0; i < smooth.size(); ++i) {
    smooth[i] = std::sin(static_cast<double>(i) * 0.05);
    rough[i] = rng.uniform(-1.0, 1.0);
  }
  EXPECT_LT(cu::total_variation(smooth), cu::total_variation(rough));
  EXPECT_GT(cu::lag1_autocorrelation(smooth), 0.9);
  EXPECT_LT(std::abs(cu::lag1_autocorrelation(rough)), 0.2);
}

TEST(Stats, HistogramCoversRange) {
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) xs.push_back(static_cast<double>(i));
  const auto h = cu::histogram(xs, 10);
  EXPECT_EQ(h.bins.size(), 10u);
  std::size_t total = 0;
  for (auto b : h.bins) total += b;
  EXPECT_EQ(total, xs.size());
  EXPECT_DOUBLE_EQ(h.lo, 0.0);
  EXPECT_DOUBLE_EQ(h.hi, 99.0);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  cu::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesWorkerException) {
  cu::ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [](std::size_t lo, std::size_t) {
                          if (lo == 0) throw canopus::Error("boom");
                        }),
      canopus::Error);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  cu::ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(PhaseTimer, AccumulatesAndOrders) {
  cu::PhaseTimer t;
  t.add("io", 1.0);
  t.add("decompress", 0.5);
  t.add("io", 0.25);
  EXPECT_DOUBLE_EQ(t.get("io"), 1.25);
  EXPECT_DOUBLE_EQ(t.get("decompress"), 0.5);
  EXPECT_DOUBLE_EQ(t.get("missing"), 0.0);
  EXPECT_DOUBLE_EQ(t.total(), 1.75);
  ASSERT_EQ(t.phases().size(), 2u);
  EXPECT_EQ(t.phases()[0], "io");
}

TEST(Table, PrintAndCsv) {
  cu::Table t({"ratio", "time"});
  t.add_row({"2", cu::Table::num(1.5, 2)});
  t.add_row({"4", cu::Table::num(0.75, 2)});
  std::ostringstream pretty, csv;
  t.print(pretty, "demo");
  t.write_csv(csv);
  EXPECT_NE(pretty.str().find("demo"), std::string::npos);
  EXPECT_NE(pretty.str().find("1.50"), std::string::npos);
  EXPECT_EQ(csv.str(), "ratio,time\n2,1.50\n4,0.75\n");
}

TEST(Cli, ParsesFlagsAndPositionals) {
  const char* argv[] = {"prog", "--levels=4", "--verbose", "input.bp",
                        "--eps=0.5"};
  cu::Cli cli(5, argv);
  EXPECT_EQ(cli.get_int("levels", 0), 4);
  EXPECT_TRUE(cli.get_bool("verbose", false));
  EXPECT_DOUBLE_EQ(cli.get_double("eps", 0.0), 0.5);
  EXPECT_EQ(cli.get("missing", "dflt"), "dflt");
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "input.bp");
}

// ----------------------------------------------------- simd dispatch --

TEST(Simd, ForceScalarScopesNestAndRestore) {
  const bool was = cu::simd::enabled();
  {
    cu::simd::ScopedForceScalar outer;
    EXPECT_FALSE(cu::simd::enabled());
    EXPECT_EQ(cu::simd::active_isa(), cu::simd::Isa::kScalar);
    {
      cu::simd::ScopedForceScalar inner;
      EXPECT_FALSE(cu::simd::enabled());
    }
    EXPECT_FALSE(cu::simd::enabled());  // still inside the outer scope
  }
  EXPECT_EQ(cu::simd::enabled(), was);
}

TEST(Simd, Crc32MatchesScalarAcrossSizesAndSplits) {
  // The slice-by-8 path kicks in at 8-byte granularity; every length and
  // split point must agree with the bytewise table walk exactly.
  cu::Rng rng(7);
  std::vector<std::byte> buf(4096 + 7);
  for (auto& b : buf) b = static_cast<std::byte>(rng.uniform_index(256));
  for (std::size_t len : {0u, 1u, 7u, 8u, 9u, 63u, 512u, 4096u, 4103u}) {
    std::uint32_t scalar_crc = 0;
    {
      cu::simd::ScopedForceScalar force;
      cu::Crc32 c;
      c.update(buf.data(), len);
      scalar_crc = c.value();
    }
    cu::Crc32 fast;
    fast.update(buf.data(), len);
    EXPECT_EQ(fast.value(), scalar_crc) << "len " << len;

    // Incremental updates with a misaligned split agree too.
    if (len > 3) {
      cu::Crc32 split;
      split.update(buf.data(), 3);
      split.update(buf.data() + 3, len - 3);
      EXPECT_EQ(split.value(), scalar_crc) << "len " << len;
    }
  }
}
