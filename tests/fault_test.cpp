// Robustness-layer tests: CRC32 + framed blobs, the deterministic fault
// injector, hierarchy retry/replica fallback, graceful degradation in the
// progressive reader, and the XML wiring of all of the above.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/canopus.hpp"
#include "core/config.hpp"
#include "io/io_ring.hpp"
#include "sim/datasets.hpp"
#include "storage/blob_frame.hpp"
#include "storage/fault.hpp"
#include "storage/hierarchy.hpp"
#include "util/crc32.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

#include "test_support.hpp"

namespace cc = canopus::core;
namespace cs = canopus::storage;
namespace cu = canopus::util;
namespace si = canopus::sim;

namespace {

cu::Bytes make_blob(std::size_t n, std::uint64_t seed = 1) {
  cu::Rng rng(seed);
  cu::Bytes b(n);
  for (auto& x : b) x = static_cast<std::byte>(rng.uniform_index(256));
  return b;
}

}  // namespace

// -------------------------------------------------------------------- crc32 --

TEST(Crc32, KnownAnswer) {
  // The canonical IEEE 802.3 check value: CRC32("123456789") = 0xCBF43926.
  const char* digits = "123456789";
  cu::Crc32 crc;
  crc.update(digits, 9);
  EXPECT_EQ(crc.value(), 0xCBF43926u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const auto blob = make_blob(1000, 3);
  cu::Crc32 crc;
  crc.update(cu::BytesView(blob).subspan(0, 123));
  crc.update(cu::BytesView(blob).subspan(123, 456));
  crc.update(cu::BytesView(blob).subspan(579));
  EXPECT_EQ(crc.value(), cu::Crc32::compute(blob));
}

TEST(Crc32, ResetStartsFresh) {
  cu::Crc32 crc;
  crc.update("junk", 4);
  crc.reset();
  crc.update("123456789", 9);
  EXPECT_EQ(crc.value(), 0xCBF43926u);
}

TEST(Crc32, EmptyInput) {
  EXPECT_EQ(cu::Crc32::compute(cu::BytesView{}), 0x00000000u);
}

// --------------------------------------------------------------- blob frame --

TEST(BlobFrame, RoundTrip) {
  const auto payload = make_blob(777, 5);
  const auto frame = cs::frame_blob(payload);
  EXPECT_EQ(frame.size(), cs::framed_size(payload.size()));
  EXPECT_EQ(cs::unframe_blob(frame), payload);
}

TEST(BlobFrame, EmptyPayloadRoundTrip) {
  const auto frame = cs::frame_blob(cu::BytesView{});
  EXPECT_EQ(frame.size(), cs::kFrameOverhead);
  EXPECT_TRUE(cs::unframe_blob(frame).empty());
}

TEST(BlobFrame, EverySingleBitFlipIsDetected) {
  // CRC-32 detects all single-bit errors; header flips hit magic/length/crc
  // checks. Exhaustive over a small frame.
  const auto payload = make_blob(64, 7);
  const auto frame = cs::frame_blob(payload);
  for (std::size_t bit = 0; bit < frame.size() * 8; ++bit) {
    auto corrupted = frame;
    corrupted[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
    EXPECT_THROW(cs::unframe_blob(corrupted), cs::IntegrityError)
        << "undetected flip at bit " << bit;
  }
}

TEST(BlobFrame, TruncationIsDetected) {
  const auto frame = cs::frame_blob(make_blob(100));
  for (const std::size_t keep : {std::size_t{0}, std::size_t{8},
                                 cs::kFrameOverhead, frame.size() - 1}) {
    EXPECT_THROW(cs::unframe_blob(cu::BytesView(frame).subspan(0, keep)),
                 cs::IntegrityError)
        << "kept " << keep;
  }
}

// ----------------------------------------------------------- fault injector --

TEST(FaultInjector, SameSeedSameDecisions) {
  cs::FaultProfile p;
  p.read_error = 0.3;
  p.corrupt = 0.2;
  p.latency_spike = 0.1;
  p.spike_seconds = 2.0;
  cs::FaultInjector a(42), b(42);
  a.set_profile(1, p);
  b.set_profile(1, p);
  for (int i = 0; i < 200; ++i) {
    const auto da = a.on_read(1);
    const auto db = b.on_read(1);
    EXPECT_EQ(da.fail, db.fail) << i;
    EXPECT_EQ(da.corrupt, db.corrupt) << i;
    EXPECT_EQ(da.extra_seconds, db.extra_seconds) << i;
    EXPECT_EQ(da.corrupt_bit, db.corrupt_bit) << i;
  }
  EXPECT_EQ(a.counters().read_errors, b.counters().read_errors);
  EXPECT_EQ(a.counters().corruptions, b.counters().corruptions);
  EXPECT_EQ(a.counters().latency_spikes, b.counters().latency_spikes);
  EXPECT_GT(a.counters().total_faults(), 0u);  // the profile actually fires
}

TEST(FaultInjector, DifferentSeedsDiverge) {
  cs::FaultProfile p;
  p.read_error = 0.5;
  cs::FaultInjector a(1), b(2);
  a.set_profile(0, p);
  b.set_profile(0, p);
  bool diverged = false;
  for (int i = 0; i < 64 && !diverged; ++i) {
    diverged = a.on_read(0).fail != b.on_read(0).fail;
  }
  EXPECT_TRUE(diverged);
}

TEST(FaultInjector, InactiveTiersNeverFault) {
  cs::FaultInjector inj(9);
  cs::FaultProfile p;
  p.read_error = 1.0;
  inj.set_profile(2, p);  // only tier 2 faults
  for (int i = 0; i < 50; ++i) {
    const auto d = inj.on_read(0);
    EXPECT_FALSE(d.fail);
    EXPECT_FALSE(d.corrupt);
    EXPECT_EQ(d.extra_seconds, 0.0);
  }
  EXPECT_EQ(inj.counters().total_faults(), 0u);
}

TEST(FaultInjector, ProbabilitiesValidated) {
  cs::FaultInjector inj(0);
  cs::FaultProfile p;
  p.read_error = 1.5;
  EXPECT_THROW(inj.set_profile(0, p), canopus::Error);
  p.read_error = 0.0;
  p.corrupt = -0.1;
  EXPECT_THROW(inj.set_profile(0, p), canopus::Error);
}

// --------------------------------------------------------------- tier faults --

namespace {

/// One-tier hierarchy-free setup: a tier with an attached injector.
struct FaultedTier {
  cs::FaultInjector injector;
  cs::StorageTier tier;

  FaultedTier(const cs::FaultProfile& profile, std::uint64_t seed = 11)
      : injector(seed), tier(cs::tmpfs_spec(1 << 20)) {
    injector.set_profile(0, profile);
    tier.set_fault_injector(&injector, 0);
  }
};

}  // namespace

TEST(TierFaults, ReadErrorThrowsTierIoError) {
  cs::FaultProfile p;
  p.read_error = 1.0;
  FaultedTier ft(p);
  ft.tier.write("a", make_blob(100));
  cu::Bytes out;
  EXPECT_THROW(ft.tier.read("a", out), cs::TierIoError);
  EXPECT_EQ(ft.injector.counters().read_errors, 1u);
}

TEST(TierFaults, WriteErrorThrowsAndStoresNothing) {
  cs::FaultProfile p;
  p.write_error = 1.0;
  FaultedTier ft(p);
  EXPECT_THROW(ft.tier.write("a", make_blob(100)), cs::TierIoError);
  EXPECT_FALSE(ft.tier.contains("a"));
  EXPECT_EQ(ft.tier.used_bytes(), 0u);
  EXPECT_EQ(ft.injector.counters().write_errors, 1u);
}

TEST(TierFaults, CorruptionCaughtByCrc) {
  cs::FaultProfile p;
  p.corrupt = 1.0;
  FaultedTier ft(p);
  ft.tier.write("a", make_blob(100));
  cu::Bytes out;
  EXPECT_THROW(ft.tier.read("a", out), cs::IntegrityError);
  EXPECT_EQ(ft.injector.counters().corruptions, 1u);
  // The stored copy itself is untouched: detaching the injector reads fine.
  ft.tier.set_fault_injector(nullptr, 0);
  ft.tier.read("a", out);
  EXPECT_EQ(out, make_blob(100));
}

TEST(TierFaults, LatencySpikeChargesSimClock) {
  cs::FaultProfile p;
  p.latency_spike = 1.0;
  p.spike_seconds = 5.0;
  FaultedTier ft(p);
  const auto blob = make_blob(100);
  cs::StorageTier plain(cs::tmpfs_spec(1 << 20));
  plain.write("a", blob);
  const auto w = ft.tier.write("a", blob);
  cu::Bytes out;
  const auto r = ft.tier.read("a", out);
  cu::Bytes plain_out;
  const auto pr = plain.read("a", plain_out);
  EXPECT_NEAR(w.sim_seconds, plain.write_cost(blob.size()) + 5.0, 1e-12);
  EXPECT_NEAR(r.sim_seconds, pr.sim_seconds + 5.0, 1e-12);
  EXPECT_EQ(out, blob);  // spikes slow reads down but never damage them
  EXPECT_EQ(ft.injector.counters().latency_spikes, 2u);
}

// ------------------------------------------------------- retries & replicas --

TEST(HierarchyFaults, TransientFaultsAreRetriedAndCounted) {
  cs::StorageHierarchy h({cs::tmpfs_spec(1 << 20), cs::lustre_spec(1 << 20)});
  const auto blob = make_blob(500, 21);
  h.write_to(1, "x", blob);
  auto inj = std::make_shared<cs::FaultInjector>(5);
  cs::FaultProfile p;
  p.read_error = 0.5;
  p.corrupt = 0.2;
  inj->set_profile(1, p);
  h.attach_fault_injector(inj);
  cs::RetryPolicy retry;
  retry.max_attempts = 32;  // transient regime: some attempt succeeds
  h.set_retry_policy(retry);

  std::size_t total_retries = 0, total_corruptions = 0;
  for (int i = 0; i < 20; ++i) {
    cu::Bytes out;
    const auto io = h.read("x", out);
    EXPECT_EQ(out, blob);
    total_retries += io.retries;
    total_corruptions += io.corruptions;
  }
  // Every injected fault shows up as exactly one retry, corruption subset.
  const auto& c = inj->counters();
  EXPECT_EQ(total_retries, c.read_errors + c.corruptions);
  EXPECT_EQ(total_corruptions, c.corruptions);
  EXPECT_GT(total_retries, 0u);
}

TEST(HierarchyFaults, BackoffChargesSimulatedSeconds) {
  cs::StorageHierarchy h({cs::tmpfs_spec(1 << 20)});
  const auto blob = make_blob(100);
  h.place("x", blob);
  cu::Bytes out;
  const double clean = h.read("x", out).sim_seconds;

  auto inj = std::make_shared<cs::FaultInjector>(3);
  cs::FaultProfile p;
  p.read_error = 0.5;
  inj->set_profile(0, p);
  h.attach_fault_injector(inj);
  cs::RetryPolicy retry;
  retry.max_attempts = 64;
  h.set_retry_policy(retry);
  cs::IoResult io;
  for (int i = 0; i < 50 && io.retries == 0; ++i) io = h.read("x", out);
  ASSERT_GT(io.retries, 0u);  // a 50% fault rate fires within 50 reads
  EXPECT_GT(io.sim_seconds, clean);  // failed attempts + backoff cost time
}

TEST(HierarchyFaults, ExhaustedPrimaryFallsBackToReplica) {
  cs::StorageHierarchy h({cs::tmpfs_spec(1 << 20), cs::lustre_spec(1 << 20)});
  const auto blob = make_blob(400, 8);
  const auto [primary, io] = h.place_with_replica("x", blob);
  EXPECT_EQ(primary, 0u);
  ASSERT_EQ(h.replica_tier("x"), std::optional<std::size_t>(1));

  auto inj = std::make_shared<cs::FaultInjector>(1);
  cs::FaultProfile p;
  p.read_error = 1.0;  // the primary copy is gone for good
  inj->set_profile(0, p);
  h.attach_fault_injector(inj);

  cu::Bytes out;
  const auto r = h.read("x", out);
  EXPECT_EQ(out, blob);
  EXPECT_TRUE(r.from_replica);
  EXPECT_EQ(r.retries, h.retry_policy().max_attempts);  // all primary attempts
}

TEST(HierarchyFaults, ExhaustedWithoutReplicaThrows) {
  cs::StorageHierarchy h({cs::tmpfs_spec(1 << 20)});
  h.place("x", make_blob(100));
  auto inj = std::make_shared<cs::FaultInjector>(1);
  cs::FaultProfile p;
  p.read_error = 1.0;
  inj->set_profile(0, p);
  h.attach_fault_injector(inj);
  cu::Bytes out;
  EXPECT_THROW(h.read("x", out), cs::TierIoError);
  EXPECT_EQ(inj->counters().read_errors, h.retry_policy().max_attempts);
}

TEST(HierarchyFaults, PersistentCorruptionSurfacesIntegrityError) {
  cs::StorageHierarchy h({cs::tmpfs_spec(1 << 20)});
  h.place("x", make_blob(100));
  auto inj = std::make_shared<cs::FaultInjector>(1);
  cs::FaultProfile p;
  p.corrupt = 1.0;
  inj->set_profile(0, p);
  h.attach_fault_injector(inj);
  cu::Bytes out;
  EXPECT_THROW(h.read("x", out), cs::IntegrityError);
}

TEST(HierarchyFaults, ReplicaSkippedWhenNoLowerTierFits) {
  cs::StorageHierarchy h({cs::tmpfs_spec(1 << 20), cs::lustre_spec(50)});
  const auto [tier, io] = h.place_with_replica("x", make_blob(400));
  EXPECT_EQ(tier, 0u);
  EXPECT_EQ(h.replica_tier("x"), std::nullopt);  // best effort: none fits
  cu::Bytes out;
  h.read("x", out);  // still readable from the primary
  EXPECT_EQ(out.size(), 400u);
}

// --------------------------------------------------- reader degradation ----

namespace {

si::Dataset tiny_xgc() {
  si::XgcOptions o;
  o.rings = 24;
  o.sectors = 120;
  return si::make_xgc_dataset(o);
}

}  // namespace

TEST(ReaderDegradation, DeadSlowTierDegradesInsteadOfThrowing) {
  const auto ds = tiny_xgc();
  cs::StorageHierarchy tiers(
      {cs::tmpfs_spec(8 << 20), cs::lustre_spec(1 << 30)});
  cc::RefactorConfig config;
  config.levels = 3;
  config.codec = "zfp";
  config.error_bound = 1e-5;
  cc::refactor_and_write(tiers, "deg.bp", ds.variable, ds.mesh, ds.values,
                         config);

  // Open first (base + metadata live on the fast tier), then kill the slow
  // tier that holds every delta.
  cc::ProgressiveReader reader(tiers, "deg.bp", ds.variable);
  const auto base_values = reader.values();
  auto inj = std::make_shared<cs::FaultInjector>(2);
  cs::FaultProfile p;
  p.read_error = 1.0;
  inj->set_profile(1, p);
  tiers.attach_fault_injector(inj);

  reader.refine();  // must NOT throw
  EXPECT_EQ(reader.last_status(), cc::RefineStatus::kDegraded);
  EXPECT_EQ(reader.current_level(), 2u);        // still at the base level
  EXPECT_EQ(reader.values(), base_values);      // state untouched
  EXPECT_EQ(reader.cumulative().degraded_steps, 1u);
  // It did exhaust the full retry budget before giving up.
  EXPECT_EQ(inj->counters().read_errors, tiers.retry_policy().max_attempts);

  // refine_to stops at the first degraded step instead of spinning.
  reader.refine_to(0);
  EXPECT_EQ(reader.last_status(), cc::RefineStatus::kDegraded);
  EXPECT_EQ(reader.current_level(), 2u);

  // Tier recovers: refinement picks up where it left off.
  tiers.attach_fault_injector(nullptr);
  reader.refine_to(0);
  EXPECT_EQ(reader.last_status(), cc::RefineStatus::kOk);
  EXPECT_TRUE(reader.at_full_accuracy());
  EXPECT_LE(cu::max_abs_error(ds.values, reader.values()),
            3.0 * config.error_bound);
}

TEST(ReaderDegradation, CountersMatchInjectedFaults) {
  // The acceptance scenario: 10% read faults + 1% corruption on the slow
  // tier; the full refine loop completes without throwing and the reader's
  // counters agree exactly with what the injector says it did.
  const auto ds = tiny_xgc();
  const std::size_t raw = ds.values.size() * sizeof(double);
  cs::StorageHierarchy tiers({cs::tmpfs_spec(raw), cs::lustre_spec(1 << 30)});
  cc::RefactorConfig config;
  config.levels = 5;
  config.codec = "zfp";
  config.error_bound = 1e-5;
  cc::refactor_and_write(tiers, "acc.bp", ds.variable, ds.mesh, ds.values,
                         config);
  // Geometry preloaded (and replicas written) before faults start, so the
  // per-timestep loop below reads only deltas from the faulted tier.
  const auto geometry = cc::GeometryCache::load(tiers, "acc.bp", ds.variable);

  auto inj = std::make_shared<cs::FaultInjector>(42);
  cs::FaultProfile p;
  p.read_error = 0.10;
  p.corrupt = 0.01;
  inj->set_profile(1, p);
  tiers.attach_fault_injector(inj);
  cs::RetryPolicy retry;
  retry.max_attempts = 8;  // deep retries: the loop must not degrade
  tiers.set_retry_policy(retry);

  std::size_t retries = 0, corruptions = 0;
  for (int pass = 0; pass < 5; ++pass) {
    cc::ProgressiveReader reader(tiers, "acc.bp", ds.variable, &geometry);
    reader.refine_to(0);  // must not throw
    ASSERT_NE(reader.last_status(), cc::RefineStatus::kDegraded)
        << "pass " << pass;
    ASSERT_TRUE(reader.at_full_accuracy()) << "pass " << pass;
    EXPECT_LE(cu::max_abs_error(ds.values, reader.values()),
              5.0 * config.error_bound)
        << "pass " << pass;
    retries += reader.cumulative().retries;
    corruptions += reader.cumulative().corruptions_detected;
  }
  const auto& c = inj->counters();
  EXPECT_EQ(retries, c.read_errors + c.corruptions);
  EXPECT_EQ(corruptions, c.corruptions);
  EXPECT_GT(retries, 0u);       // at ~10% over dozens of reads, faults fired
  EXPECT_GT(c.read_errors, 0u);
}

TEST(ReaderDegradation, RefineStatusRetriedOnRecoveredFault) {
  const auto ds = tiny_xgc();
  cs::StorageHierarchy tiers(
      {cs::tmpfs_spec(8 << 20), cs::lustre_spec(1 << 30)});
  cc::RefactorConfig config;
  config.levels = 3;
  config.codec = "zfp";
  config.error_bound = 1e-5;
  cc::refactor_and_write(tiers, "ret.bp", ds.variable, ds.mesh, ds.values,
                         config);
  cc::ProgressiveReader reader(tiers, "ret.bp", ds.variable);

  auto inj = std::make_shared<cs::FaultInjector>(17);
  cs::FaultProfile p;
  p.read_error = 0.4;  // transient: retries recover within the policy budget
  inj->set_profile(1, p);
  tiers.attach_fault_injector(inj);
  cs::RetryPolicy retry;
  retry.max_attempts = 32;
  tiers.set_retry_policy(retry);

  std::size_t retried_steps = 0;
  while (!reader.at_full_accuracy()) {
    reader.refine();
    ASSERT_NE(reader.last_status(), cc::RefineStatus::kDegraded);
    if (reader.last_status() == cc::RefineStatus::kRetried) ++retried_steps;
  }
  EXPECT_GT(retried_steps, 0u);  // seed 17 faults at least one step
  EXPECT_EQ(reader.cumulative().retries,
            inj->counters().read_errors + inj->counters().corruptions);
}

TEST(ReaderDegradation, StatusToString) {
  EXPECT_EQ(cc::to_string(cc::RefineStatus::kOk), "ok");
  EXPECT_EQ(cc::to_string(cc::RefineStatus::kRetried), "retried");
  EXPECT_EQ(cc::to_string(cc::RefineStatus::kDegraded), "degraded");
}

// -------------------------------------------------------------- xml wiring --

TEST(FaultConfig, XmlBuildsFaultedHierarchy) {
  const std::string xml = R"(
    <canopus-config>
      <storage policy="fastest-fit">
        <tier preset="tmpfs"  capacity="4MiB"/>
        <tier preset="lustre" capacity="1GiB"/>
      </storage>
      <faults seed="42">
        <tier name="lustre" read-error="0.1" corrupt="0.01"
              latency-spike="0.05" spike-duration="20ms"/>
      </faults>
      <retry max-attempts="6" backoff="2ms" multiplier="3"/>
    </canopus-config>)";
  const auto config = cc::load_config(xml);
  EXPECT_EQ(config.fault_seed, 42u);
  ASSERT_EQ(config.faults.size(), 1u);
  EXPECT_EQ(config.faults[0].tier_name, "lustre");
  EXPECT_DOUBLE_EQ(config.faults[0].profile.read_error, 0.1);
  EXPECT_DOUBLE_EQ(config.faults[0].profile.corrupt, 0.01);
  EXPECT_DOUBLE_EQ(config.faults[0].profile.latency_spike, 0.05);
  EXPECT_DOUBLE_EQ(config.faults[0].profile.spike_seconds, 0.02);
  ASSERT_TRUE(config.retry.has_value());
  EXPECT_EQ(config.retry->max_attempts, 6u);
  EXPECT_DOUBLE_EQ(config.retry->backoff_seconds, 2e-3);
  EXPECT_DOUBLE_EQ(config.retry->backoff_multiplier, 3.0);

  auto tiers = config.make_hierarchy();
  ASSERT_NE(tiers.fault_injector(), nullptr);
  EXPECT_DOUBLE_EQ(tiers.fault_injector()->profile(1).read_error, 0.1);
  EXPECT_DOUBLE_EQ(tiers.fault_injector()->profile(0).read_error, 0.0);
  EXPECT_EQ(tiers.retry_policy().max_attempts, 6u);
}

TEST(FaultConfig, UnknownTierNameRejected) {
  const std::string xml = R"(
    <canopus-config>
      <storage><tier preset="tmpfs" capacity="4MiB"/></storage>
      <faults><tier name="nope" read-error="0.1"/></faults>
    </canopus-config>)";
  EXPECT_THROW(cc::load_config(xml), canopus::Error);
}

TEST(FaultConfig, OutOfRangeProbabilityRejected) {
  const std::string xml = R"(
    <canopus-config>
      <storage><tier preset="tmpfs" capacity="4MiB"/></storage>
      <faults><tier name="tmpfs" read-error="1.5"/></faults>
    </canopus-config>)";
  EXPECT_THROW(cc::load_config(xml), canopus::Error);
}

// ------------------------------------------------------ cache fault paths --

// The cache must only ever hold bytes that passed the tier boundary's frame
// verification: injected read errors and bit flips admit nothing, so a
// corrupt blob can never poison later readers through the cache.
TEST(CacheFaults, InjectedReadErrorsAreNeverCached) {
  const auto ds = tiny_xgc();
  cs::StorageHierarchy tiers(
      {cs::tmpfs_spec(8 << 20), cs::lustre_spec(1 << 30)});
  canopus::cache::CacheConfig cache_config;
  cache_config.budget_bytes = 32ull << 20;
  cache_config.verify_hits = true;  // re-CRC every hit while faults fly
  auto cache = std::make_shared<canopus::cache::BlockCache>(cache_config);
  tiers.attach_block_cache(cache);

  cc::RefactorConfig config;
  config.levels = 3;
  config.codec = "zfp";
  config.error_bound = 1e-5;
  cc::refactor_and_write(tiers, "cf.bp", ds.variable, ds.mesh, ds.values,
                         config);

  cc::ProgressiveReader reader(tiers, "cf.bp", ds.variable);
  const std::size_t occupancy_after_open = cache->occupancy_bytes();

  // Kill the slow tier holding every delta: the refine degrades, and the
  // failed fetch must leave the cache exactly as it was.
  auto inj = std::make_shared<cs::FaultInjector>(2);
  cs::FaultProfile p;
  p.read_error = 1.0;
  inj->set_profile(1, p);
  tiers.attach_fault_injector(inj);

  reader.refine();  // must not throw
  EXPECT_EQ(reader.last_status(), cc::RefineStatus::kDegraded);
  EXPECT_EQ(cache->occupancy_bytes(), occupancy_after_open);
  canopus::adios::BpReader meta(tiers, "cf.bp");
  for (const auto& b : meta.inq_var(ds.variable).blocks) {
    if (b.kind != canopus::adios::BlockKind::kDelta) continue;
    EXPECT_FALSE(cache->contains(b.object_key))
        << "failed read cached: " << b.object_key;
    EXPECT_FALSE(
        cache->contains(cs::StorageHierarchy::decoded_alias(b.object_key)))
        << "decoded form of a failed read cached: " << b.object_key;
  }

  // Tier recovers: the degraded reader finishes within the accuracy bound,
  // and only now do the (verified) delta blobs enter the cache.
  tiers.attach_fault_injector(nullptr);
  reader.refine_to(0);
  EXPECT_EQ(reader.last_status(), cc::RefineStatus::kOk);
  EXPECT_TRUE(reader.at_full_accuracy());
  EXPECT_LE(cu::max_abs_error(ds.values, reader.values()),
            3.0 * config.error_bound);
  EXPECT_GT(cache->occupancy_bytes(), occupancy_after_open);
}

// Bit flips: a corrupting tier admits nothing (every read fails its frame
// CRC), and once the cache holds clean verified bytes, later readers are
// served correct data even while the tier is still flipping bits.
TEST(CacheFaults, CorruptBlobsNeverPoisonLaterReaders) {
  const auto ds = tiny_xgc();
  cs::StorageHierarchy tiers(
      {cs::tmpfs_spec(8 << 20), cs::lustre_spec(1 << 30)});
  canopus::cache::CacheConfig cache_config;
  cache_config.budget_bytes = 32ull << 20;
  cache_config.verify_hits = true;
  auto cache = std::make_shared<canopus::cache::BlockCache>(cache_config);
  tiers.attach_block_cache(cache);

  cc::RefactorConfig config;
  config.levels = 3;
  config.codec = "zfp";
  config.error_bound = 1e-5;
  cc::refactor_and_write(tiers, "cp.bp", ds.variable, ds.mesh, ds.values,
                         config);

  // Phase 1: every slow-tier read returns flipped bits. The reader degrades
  // (IntegrityError after retries), and the corrupt bytes stay out of the
  // cache.
  cc::ProgressiveReader first(tiers, "cp.bp", ds.variable);
  const std::size_t occupancy_clean = cache->occupancy_bytes();
  auto corruptor = std::make_shared<cs::FaultInjector>(7);
  cs::FaultProfile flip;
  flip.corrupt = 1.0;
  corruptor->set_profile(1, flip);
  tiers.attach_fault_injector(corruptor);

  first.refine();
  EXPECT_EQ(first.last_status(), cc::RefineStatus::kDegraded);
  EXPECT_GT(corruptor->counters().corruptions, 0u);
  EXPECT_EQ(cache->occupancy_bytes(), occupancy_clean);

  // Phase 2: tier heals; the same reader completes and fills the cache with
  // verified bytes.
  tiers.attach_fault_injector(nullptr);
  first.refine_to(0);
  ASSERT_TRUE(first.at_full_accuracy());
  ASSERT_LE(cu::max_abs_error(ds.values, first.values()),
            3.0 * config.error_bound);

  // Phase 3: bits flip again — on EVERY tier. A fresh reader must still
  // reach full accuracy entirely from the cache, detecting zero corruption
  // because it never touches the tiers for data it can get from the cache.
  auto corrupt_all = std::make_shared<cs::FaultInjector>(9);
  corruptor = nullptr;
  cs::FaultProfile flip_all;
  flip_all.corrupt = 1.0;
  corrupt_all->set_profile(0, flip_all);
  corrupt_all->set_profile(1, flip_all);
  tiers.attach_fault_injector(corrupt_all);

  cc::ProgressiveReader second(tiers, "cp.bp", ds.variable);
  second.refine_to(0);
  EXPECT_EQ(second.last_status(), cc::RefineStatus::kOk);
  EXPECT_TRUE(second.at_full_accuracy());
  EXPECT_EQ(second.cumulative().corruptions_detected, 0u);
  EXPECT_EQ(corrupt_all->counters().corruptions, 0u)
      << "a cached read still reached the corrupting tiers";
  EXPECT_LE(cu::max_abs_error(ds.values, second.values()),
            3.0 * config.error_bound);
  // And the cached-read accounting says so: zero simulated I/O for deltas.
  EXPECT_GT(cache->stats().hits, 0u);
}

// ------------------------------------------------- batched submission ----

// Batched submission changes when I/O happens, never what happens to each
// op: every fault-handling behavior of read() — retry accounting, replica
// fallback, terminal errors — must survive the ring's read_batch path.
TEST(BatchedFaults, RingPreservesRetryAndReplicaSemantics) {
  cs::StorageHierarchy h({cs::tmpfs_spec(1 << 20), cs::lustre_spec(1 << 20)});
  const auto ok_blob = make_blob(300, 4);
  const auto rep_blob = make_blob(400, 8);
  h.place("ok", ok_blob);
  h.place_with_replica("rep", rep_blob);
  ASSERT_EQ(h.replica_tier("rep"), std::optional<std::size_t>(1));

  auto inj = std::make_shared<cs::FaultInjector>(1);
  cs::FaultProfile p;
  p.read_error = 1.0;  // every primary (tier 0) copy is gone for good
  inj->set_profile(0, p);
  h.attach_fault_injector(inj);

  canopus::io::IoConfig cfg;
  cfg.depth = 4;
  cfg.batch = 4;  // all three ops ride a single read_batch submission
  canopus::io::IoRing ring(h, cfg);
  ring.submit("ok");
  ring.submit("rep");
  ring.submit("missing");

  // "ok" has no replica: batched submission exhausts the same retry budget
  // and surfaces the same terminal error as a serial read.
  const auto a = ring.wait_next();
  ASSERT_TRUE(a.error);
  EXPECT_THROW(std::rethrow_exception(a.error), cs::TierIoError);

  // "rep" falls back to its replica copy with full retry accounting.
  const auto b = ring.wait_next();
  ASSERT_FALSE(b.error);
  EXPECT_EQ(b.payload, rep_blob);
  EXPECT_TRUE(b.io.from_replica);
  EXPECT_EQ(b.io.retries, h.retry_policy().max_attempts);

  // A key that never existed fails cleanly alongside the faulted ops.
  const auto c = ring.wait_next();
  ASSERT_TRUE(c.error);
  EXPECT_THROW(std::rethrow_exception(c.error), canopus::Error);
}

// Seeded sweep: an async reader (depth-4 ring, chunked deltas) pointed at a
// flaky tier must always terminate cleanly — refined to full accuracy within
// the error bound, or degraded without corrupting reader state. The seed is
// part of every failure message so CI reds replay locally.
TEST(ReaderDegradation, AsyncSweepSurvivesFaultInjection) {
  const auto ds = tiny_xgc();
  const std::uint64_t base_seed = canopus::test::test_seed();
  for (std::uint64_t case_id = 0; case_id < 4; ++case_id) {
    const std::uint64_t seed = base_seed * 1000 + 37 * case_id + 5;
    SCOPED_TRACE("fault seed " + std::to_string(seed) +
                 " (CANOPUS_TEST_SEED=" + std::to_string(base_seed) + ")");

    cs::StorageHierarchy tiers(
        {cs::tmpfs_spec(8 << 20), cs::lustre_spec(1 << 30)});
    cc::RefactorConfig config;
    config.levels = 4;
    config.codec = "zfp";
    config.error_bound = 1e-5;
    config.delta_chunks = 8;
    cc::refactor_and_write(tiers, "sweep.bp", ds.variable, ds.mesh, ds.values,
                           config);

    auto inj = std::make_shared<cs::FaultInjector>(seed);
    cs::FaultProfile p;
    p.read_error = 0.15;
    p.corrupt = 0.01;
    inj->set_profile(1, p);
    tiers.attach_fault_injector(inj);
    cs::RetryPolicy retry;
    retry.max_attempts = 8;
    tiers.set_retry_policy(retry);

    cc::ReaderOptions opts;
    opts.parallel.threads = 4;
    opts.io.depth = 4;
    opts.io.batch = 2;
    cc::ProgressiveReader reader(tiers, "sweep.bp", ds.variable, nullptr,
                                 opts);
    ASSERT_NO_THROW(reader.refine_to(0));
    if (reader.at_full_accuracy()) {
      EXPECT_LE(cu::max_abs_error(ds.values, reader.values()),
                5.0 * config.error_bound);
    } else {
      // Degraded, never thrown: the reader holds its last good level.
      EXPECT_EQ(reader.last_status(), cc::RefineStatus::kDegraded);
      EXPECT_GT(reader.cumulative().degraded_steps, 0u);
    }
    // The reader's fault ledger never undercounts: every injected read error
    // and corruption was either retried or ended a degraded step.
    EXPECT_GT(inj->counters().read_errors + inj->counters().corruptions, 0u);
  }
}

// A fully dead delta tier degrades the async reader exactly like the
// blocking one — and recovery resumes completion-driven refinement.
TEST(ReaderDegradation, AsyncReaderDegradesAndRecovers) {
  const auto ds = tiny_xgc();
  cs::StorageHierarchy tiers(
      {cs::tmpfs_spec(8 << 20), cs::lustre_spec(1 << 30)});
  cc::RefactorConfig config;
  config.levels = 3;
  config.codec = "zfp";
  config.error_bound = 1e-5;
  config.delta_chunks = 8;
  cc::refactor_and_write(tiers, "deg2.bp", ds.variable, ds.mesh, ds.values,
                         config);

  cc::ReaderOptions opts;
  opts.parallel.threads = 4;
  opts.parallel.read_ahead = false;
  opts.io.depth = 4;
  cc::ProgressiveReader reader(tiers, "deg2.bp", ds.variable, nullptr, opts);
  const auto base_values = reader.values();

  auto inj = std::make_shared<cs::FaultInjector>(2);
  cs::FaultProfile p;
  p.read_error = 1.0;
  inj->set_profile(1, p);
  tiers.attach_fault_injector(inj);

  reader.refine();  // must NOT throw
  EXPECT_EQ(reader.last_status(), cc::RefineStatus::kDegraded);
  EXPECT_EQ(reader.values(), base_values);

  tiers.attach_fault_injector(nullptr);
  reader.refine_to(0);
  EXPECT_EQ(reader.last_status(), cc::RefineStatus::kOk);
  EXPECT_TRUE(reader.at_full_accuracy());
  EXPECT_LE(cu::max_abs_error(ds.values, reader.values()),
            3.0 * config.error_bound);
}
