// Unit and property tests for the compression library: round-trips, error
// bounds, compression-ratio behavior on smooth vs rough signals, corrupt
// stream handling, and the codec registry.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "compress/codec.hpp"
#include "compress/fpc.hpp"
#include "compress/huffman.hpp"
#include "compress/lzss.hpp"
#include "compress/rle.hpp"
#include "compress/sz_like.hpp"
#include "compress/zfp_like.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/stats.hpp"

namespace cc = canopus::compress;
namespace cu = canopus::util;

namespace {

cu::Bytes to_bytes(const std::string& s) {
  cu::Bytes b(s.size());
  std::memcpy(b.data(), s.data(), s.size());
  return b;
}

std::vector<double> smooth_signal(std::size_t n, std::uint64_t seed = 3) {
  cu::Rng rng(seed);
  std::vector<double> xs(n);
  const double phase = rng.uniform(0.0, 6.28);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) * 0.01;
    xs[i] = 10.0 * std::sin(t + phase) + 2.0 * std::sin(5.0 * t) + 100.0;
  }
  return xs;
}

std::vector<double> rough_signal(std::size_t n, std::uint64_t seed = 5) {
  cu::Rng rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.uniform(-50.0, 50.0);
  return xs;
}

}  // namespace

// ---------------------------------------------------------------- Huffman --

TEST(Huffman, RoundTripText) {
  const auto input = to_bytes(
      "the quick brown fox jumps over the lazy dog -- the the the the");
  const auto enc = cc::huffman_encode(input);
  EXPECT_EQ(cc::huffman_decode(enc), input);
}

TEST(Huffman, RoundTripEmpty) {
  const cu::Bytes empty;
  EXPECT_EQ(cc::huffman_decode(cc::huffman_encode(empty)), empty);
}

TEST(Huffman, RoundTripSingleSymbolRun) {
  const cu::Bytes input(1000, std::byte{0x41});
  const auto enc = cc::huffman_encode(input);
  EXPECT_EQ(cc::huffman_decode(enc), input);
  EXPECT_LT(enc.size(), 200u);  // 1 bit per symbol plus table
}

TEST(Huffman, RoundTripAllByteValues) {
  cu::Bytes input;
  for (int rep = 0; rep < 3; ++rep) {
    for (int b = 0; b < 256; ++b) input.push_back(static_cast<std::byte>(b));
  }
  EXPECT_EQ(cc::huffman_decode(cc::huffman_encode(input)), input);
}

TEST(Huffman, SkewedDistributionCompresses) {
  cu::Rng rng(17);
  cu::Bytes input(20000);
  for (auto& b : input) {
    // ~90% zeros.
    b = rng.uniform() < 0.9 ? std::byte{0}
                            : static_cast<std::byte>(rng.uniform_index(256));
  }
  const auto enc = cc::huffman_encode(input);
  EXPECT_LT(enc.size(), input.size() / 2);
}

TEST(Huffman, RandomRoundTripSweep) {
  cu::Rng rng(23);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = rng.uniform_index(5000);
    cu::Bytes input(n);
    for (auto& b : input) b = static_cast<std::byte>(rng.uniform_index(256));
    EXPECT_EQ(cc::huffman_decode(cc::huffman_encode(input)), input)
        << "trial " << trial;
  }
}

// ------------------------------------------------------------------- LZSS --

TEST(Lzss, RoundTripText) {
  const auto input =
      to_bytes("abcabcabcabcabc-hello-hello-hello-world-world-world");
  EXPECT_EQ(cc::lzss_decode(cc::lzss_encode(input)), input);
}

TEST(Lzss, RoundTripEmptyAndTiny) {
  for (std::size_t n : {0u, 1u, 2u, 3u}) {
    cu::Bytes input(n, std::byte{0x7});
    EXPECT_EQ(cc::lzss_decode(cc::lzss_encode(input)), input);
  }
}

TEST(Lzss, RepetitiveInputCompressesHard) {
  cu::Bytes input;
  for (int i = 0; i < 1000; ++i) {
    for (char ch : {'p', 'a', 't', 't', 'e', 'r', 'n'}) {
      input.push_back(static_cast<std::byte>(ch));
    }
  }
  const auto enc = cc::lzss_encode(input);
  EXPECT_LT(enc.size(), input.size() / 10);
  EXPECT_EQ(cc::lzss_decode(enc), input);
}

TEST(Lzss, IncompressibleInputRoundTrips) {
  cu::Rng rng(29);
  cu::Bytes input(10000);
  for (auto& b : input) b = static_cast<std::byte>(rng.uniform_index(256));
  const auto enc = cc::lzss_encode(input);
  EXPECT_EQ(cc::lzss_decode(enc), input);
  // Flag overhead only: ~12.5% expansion worst case.
  EXPECT_LT(enc.size(), input.size() * 9 / 8 + 64);
}

TEST(Lzss, OverlappingMatchReplay) {
  // 'aaaa...' forces matches whose source overlaps the output cursor.
  const cu::Bytes input(500, std::byte{'a'});
  EXPECT_EQ(cc::lzss_decode(cc::lzss_encode(input)), input);
}

// -------------------------------------------------------------------- RLE --

TEST(Rle, RoundTripRuns) {
  cu::Bytes input;
  input.insert(input.end(), 100, std::byte{1});
  input.insert(input.end(), 1, std::byte{2});
  input.insert(input.end(), 50, std::byte{3});
  const auto enc = cc::rle_encode(input);
  EXPECT_LT(enc.size(), 16u);
  EXPECT_EQ(cc::rle_decode(enc), input);
}

TEST(Rle, RoundTripEmpty) {
  const cu::Bytes empty;
  EXPECT_EQ(cc::rle_decode(cc::rle_encode(empty)), empty);
}

TEST(Rle, CorruptStreamThrows) {
  cu::ByteWriter w;
  w.put_varint(10);   // claims 10 bytes
  w.put_varint(100);  // run longer than total
  w.put(std::byte{1});
  EXPECT_THROW(cc::rle_decode(w.view()), canopus::Error);
}

// -------------------------------------------------------------------- FPC --

TEST(Fpc, LosslessRoundTripSmooth) {
  const auto xs = smooth_signal(10000);
  const auto dec = cc::fpc_decode(cc::fpc_encode(xs));
  ASSERT_EQ(dec.size(), xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) EXPECT_EQ(dec[i], xs[i]);
}

TEST(Fpc, LosslessRoundTripRandom) {
  const auto xs = rough_signal(5000);
  EXPECT_EQ(cc::fpc_decode(cc::fpc_encode(xs)), xs);
}

TEST(Fpc, PreservesSpecialValues) {
  const std::vector<double> xs{0.0, -0.0, 1e-308, -1e308,
                               std::numeric_limits<double>::infinity(),
                               -std::numeric_limits<double>::infinity(),
                               5.0, 5.0, 5.0};
  const auto dec = cc::fpc_decode(cc::fpc_encode(xs));
  ASSERT_EQ(dec.size(), xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_EQ(std::memcmp(&dec[i], &xs[i], sizeof(double)), 0) << "index " << i;
  }
}

TEST(Fpc, PreservesNanBitPattern) {
  const std::vector<double> xs{std::nan(""), 1.0, std::nan("")};
  const auto dec = cc::fpc_decode(cc::fpc_encode(xs));
  ASSERT_EQ(dec.size(), xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_EQ(std::memcmp(&dec[i], &xs[i], sizeof(double)), 0);
  }
}

TEST(Fpc, ConstantSeriesCompressesWell) {
  const std::vector<double> xs(8192, 42.5);
  const auto enc = cc::fpc_encode(xs);
  EXPECT_LT(enc.size(), xs.size());  // > 8x ratio
}

TEST(Fpc, EmptyInput) {
  EXPECT_TRUE(cc::fpc_decode(cc::fpc_encode(std::vector<double>{})).empty());
}

// ---------------------------------------------------------------- SZ-like --

TEST(Sz, ErrorBoundHonoredSmooth) {
  const auto xs = smooth_signal(20000);
  for (double eb : {1e-1, 1e-3, 1e-6}) {
    const auto dec = cc::sz_decode(cc::sz_encode(xs, eb));
    ASSERT_EQ(dec.size(), xs.size());
    EXPECT_LE(cu::max_abs_error(xs, dec), eb) << "eb=" << eb;
  }
}

TEST(Sz, ErrorBoundHonoredRough) {
  const auto xs = rough_signal(5000);
  const double eb = 0.5;
  const auto dec = cc::sz_decode(cc::sz_encode(xs, eb));
  EXPECT_LE(cu::max_abs_error(xs, dec), eb);
}

TEST(Sz, TighterBoundCostsMoreBytes) {
  const auto xs = smooth_signal(20000);
  const auto loose = cc::sz_encode(xs, 1e-2);
  const auto tight = cc::sz_encode(xs, 1e-8);
  EXPECT_LT(loose.size(), tight.size());
}

TEST(Sz, ZeroBoundIsLossless) {
  const auto xs = rough_signal(1000);
  EXPECT_EQ(cc::sz_decode(cc::sz_encode(xs, 0.0)), xs);
}

TEST(Sz, HandlesNonFiniteViaEscape) {
  std::vector<double> xs = smooth_signal(100);
  xs[10] = std::numeric_limits<double>::infinity();
  xs[20] = -std::numeric_limits<double>::infinity();
  const auto dec = cc::sz_decode(cc::sz_encode(xs, 1e-3));
  EXPECT_EQ(dec[10], xs[10]);
  EXPECT_EQ(dec[20], xs[20]);
}

TEST(Sz, SmoothBeatsRoughRatio) {
  const auto smooth = smooth_signal(20000);
  const auto rough = rough_signal(20000);
  const double eb = 1e-4;
  EXPECT_LT(cc::sz_encode(smooth, eb).size(), cc::sz_encode(rough, eb).size());
}

// --------------------------------------------------------------- ZFP-like --

TEST(Zfp, ErrorBoundHonoredSmooth) {
  const auto xs = smooth_signal(20000);
  for (double eb : {1.0, 1e-2, 1e-5, 1e-9}) {
    const auto dec = cc::zfp_decode(cc::zfp_encode(xs, eb));
    ASSERT_EQ(dec.size(), xs.size());
    EXPECT_LE(cu::max_abs_error(xs, dec), eb) << "eb=" << eb;
  }
}

TEST(Zfp, ErrorBoundHonoredRough) {
  const auto xs = rough_signal(10000);
  for (double eb : {5.0, 0.1, 1e-6}) {
    const auto dec = cc::zfp_decode(cc::zfp_encode(xs, eb));
    EXPECT_LE(cu::max_abs_error(xs, dec), eb) << "eb=" << eb;
  }
}

TEST(Zfp, NearLosslessAtZeroBound) {
  const auto xs = smooth_signal(5000);
  const auto dec = cc::zfp_decode(cc::zfp_encode(xs, 0.0));
  // Fixed-point quantization leaves ~1e-16 relative error.
  EXPECT_LE(cu::max_abs_error(xs, dec), 1e-12);
}

TEST(Zfp, SmoothCompressesBetterThanRough) {
  const auto smooth = smooth_signal(20000);
  auto rough = rough_signal(20000);
  // Match the dynamic range so the comparison is about smoothness only.
  for (auto& x : rough) x += 100.0;
  const double eb = 1e-4;
  const auto s = cc::zfp_encode(smooth, eb);
  const auto r = cc::zfp_encode(rough, eb);
  EXPECT_LT(s.size(), r.size());
}

TEST(Zfp, LooserBoundSmallerStream) {
  const auto xs = smooth_signal(20000);
  EXPECT_LT(cc::zfp_encode(xs, 1e-1).size(), cc::zfp_encode(xs, 1e-6).size());
}

TEST(Zfp, AllZerosIsTiny) {
  const std::vector<double> xs(4096, 0.0);
  const auto enc = cc::zfp_encode(xs, 1e-6);
  EXPECT_LT(enc.size(), 256u);
  const auto dec = cc::zfp_decode(enc);
  for (double v : dec) EXPECT_EQ(v, 0.0);
}

TEST(Zfp, ConstantBlock) {
  const std::vector<double> xs(100, 7.25);
  const auto dec = cc::zfp_decode(cc::zfp_encode(xs, 1e-9));
  for (double v : dec) EXPECT_NEAR(v, 7.25, 1e-9);
}

TEST(Zfp, TailBlockShorterThan64) {
  for (std::size_t n : {1u, 7u, 63u, 64u, 65u, 127u, 130u}) {
    const auto xs = smooth_signal(n, n);
    const auto dec = cc::zfp_decode(cc::zfp_encode(xs, 1e-8));
    ASSERT_EQ(dec.size(), n);
    EXPECT_LE(cu::max_abs_error(xs, dec), 1e-8) << "n=" << n;
  }
}

TEST(Zfp, NonFiniteBlockStoredRaw) {
  std::vector<double> xs = smooth_signal(200);
  xs[70] = std::numeric_limits<double>::quiet_NaN();
  const auto dec = cc::zfp_decode(cc::zfp_encode(xs, 1e-6));
  ASSERT_EQ(dec.size(), xs.size());
  EXPECT_TRUE(std::isnan(dec[70]));
  // The NaN block (values 64..127) is verbatim; others stay bounded.
  EXPECT_EQ(dec[65], xs[65]);
  EXPECT_NEAR(dec[10], xs[10], 1e-6);
}

TEST(Zfp, HugeDynamicRange) {
  std::vector<double> xs;
  for (int i = 0; i < 256; ++i) {
    xs.push_back(std::ldexp(1.0, (i % 60) - 30));  // 2^-30 .. 2^29
  }
  const double eb = 1e-3;
  const auto dec = cc::zfp_decode(cc::zfp_encode(xs, eb));
  EXPECT_LE(cu::max_abs_error(xs, dec), eb);
}

TEST(Zfp, NegativeValuesRoundTrip) {
  auto xs = smooth_signal(1000);
  for (auto& x : xs) x -= 100.0;  // center near zero, mixed signs
  const auto dec = cc::zfp_decode(cc::zfp_encode(xs, 1e-7));
  EXPECT_LE(cu::max_abs_error(xs, dec), 1e-7);
}

// --------------------------------------------------------------- Registry --

TEST(Registry, AllNamesConstruct) {
  for (const auto& name : cc::codec_names()) {
    auto codec = cc::make_codec(name);
    ASSERT_NE(codec, nullptr);
    EXPECT_EQ(codec->name(), name);
  }
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(cc::make_codec("gzip"), canopus::Error);
}

TEST(Registry, ExpectedCodecsPresent) {
  const auto names = cc::codec_names();
  for (const char* expected : {"zfp", "sz", "fpc", "lzss", "huffman", "rle", "raw"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

// Parameterized property sweep: every codec round-trips within its contract
// on a variety of signals.
class CodecProperty
    : public ::testing::TestWithParam<std::tuple<std::string, std::size_t>> {};

TEST_P(CodecProperty, RoundTripWithinBound) {
  const auto& [name, n] = GetParam();
  auto codec = cc::make_codec(name);
  const double eb = 1e-5;
  const auto xs = smooth_signal(n, n + 17);
  const auto enc = codec->encode(xs, eb);
  const auto dec = codec->decode(enc);
  ASSERT_EQ(dec.size(), xs.size());
  if (codec->lossless()) {
    EXPECT_EQ(dec, xs);
  } else {
    EXPECT_LE(cu::max_abs_error(xs, dec), eb);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecsVariousSizes, CodecProperty,
    ::testing::Combine(::testing::Values("zfp", "sz", "fpc", "lzss", "huffman",
                                         "rle", "raw"),
                       ::testing::Values(std::size_t{0}, std::size_t{1},
                                         std::size_t{64}, std::size_t{1000},
                                         std::size_t{4097})),
    [](const auto& param_info) {
      return std::get<0>(param_info.param) + "_" +
             std::to_string(std::get<1>(param_info.param));
    });

// ------------------------------------------------------------ garbage fuzz --

// Deterministic fuzz: every decoder must reject or survive arbitrary bytes
// without crashing or allocating absurd amounts (regression for the
// header-trusting allocations found during development).
TEST(Fuzz, DecodersSurviveGarbage) {
  cu::Rng rng(0xFADE);
  for (int trial = 0; trial < 300; ++trial) {
    cu::Bytes garbage(100 + rng.uniform_index(4000));
    for (auto& b : garbage) b = static_cast<std::byte>(rng.uniform_index(256));
    for (const char* name : {"zfp", "sz", "fpc", "lzss", "huffman", "rle"}) {
      const auto codec = cc::make_codec(name);
      try {
        const auto out = codec->decode(garbage);
        // Decoding garbage "successfully" is fine, but the output must be
        // structurally bounded by the input.
        EXPECT_LT(out.size(), (garbage.size() + 64) * 600) << name;
      } catch (const canopus::Error&) {
        // expected for most inputs
      }
    }
  }
}

TEST(Fuzz, TruncatedValidStreamsThrowNotCrash) {
  const auto xs = smooth_signal(3000);
  for (const char* name : {"zfp", "sz", "fpc", "lzss", "huffman", "rle"}) {
    const auto codec = cc::make_codec(name);
    const auto enc = codec->encode(xs, 1e-4);
    for (std::size_t cut : {std::size_t{1}, enc.size() / 4, enc.size() / 2,
                            enc.size() - 1}) {
      cu::Bytes truncated(enc.begin(), enc.begin() + static_cast<long>(cut));
      try {
        const auto out = codec->decode(truncated);
        EXPECT_LE(out.size(), xs.size() + 64) << name << " cut=" << cut;
      } catch (const canopus::Error&) {
        // expected
      }
    }
  }
}

TEST(Fuzz, BitFlippedStreamsThrowOrStayBounded) {
  const auto xs = smooth_signal(2000);
  cu::Rng rng(0xBEEF);
  for (const char* name : {"zfp", "sz", "fpc"}) {
    const auto codec = cc::make_codec(name);
    auto enc = codec->encode(xs, 1e-5);
    for (int flip = 0; flip < 50; ++flip) {
      auto corrupted = enc;
      const auto pos = rng.uniform_index(corrupted.size());
      corrupted[pos] ^= static_cast<std::byte>(1u << rng.uniform_index(8));
      try {
        const auto out = codec->decode(corrupted);
        EXPECT_LE(out.size(), xs.size() * 2 + 64) << name;
      } catch (const canopus::Error&) {
        // expected
      }
    }
  }
}

// ----------------------------------------------------- simd equivalence --

// The vectorized block transforms and the dequantization pass are speed-only:
// forced-scalar and runtime-dispatched runs must agree bit for bit, and the
// transforms must stay exactly invertible either way.
TEST(Simd, ZfpTransformsMatchScalarBitwise) {
  cu::Rng rng(91);
  for (int trial = 0; trial < 50; ++trial) {
    std::array<std::int64_t, cc::detail::kZfpBlock> block;
    for (auto& v : block) {
      // Quantized significands: well inside the lifting's headroom.
      v = static_cast<std::int64_t>(rng.next_u64() >> 20) - (1ll << 43);
    }
    auto scalar_fwd = block;
    auto simd_fwd = block;
    {
      cu::simd::ScopedForceScalar force;
      cc::detail::forward_transform64(scalar_fwd.data());
    }
    cc::detail::forward_transform64(simd_fwd.data());
    EXPECT_EQ(scalar_fwd, simd_fwd) << "trial " << trial;

    auto scalar_inv = scalar_fwd;
    auto simd_inv = simd_fwd;
    {
      cu::simd::ScopedForceScalar force;
      cc::detail::inverse_transform64(scalar_inv.data());
    }
    cc::detail::inverse_transform64(simd_inv.data());
    EXPECT_EQ(scalar_inv, simd_inv) << "trial " << trial;
    EXPECT_EQ(simd_inv, block) << "trial " << trial;  // exact round-trip
  }
}

TEST(Simd, SzDequantMatchesScalarBitwise) {
  cu::Rng rng(92);
  // Odd length exercises the vector tail; codes span the full emitted range
  // (|q| <= 2^20 zigzagged).
  const std::size_t n = 1013;
  std::vector<std::uint64_t> codes(n);
  for (auto& c : codes) c = rng.next_u64() % ((1u << 21) + 1);
  std::vector<double> scalar_out(n), simd_out(n);
  {
    cu::simd::ScopedForceScalar force;
    cc::detail::dequant_codes(codes.data(), n, 1e-4, scalar_out.data());
  }
  cc::detail::dequant_codes(codes.data(), n, 1e-4, simd_out.data());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(scalar_out[i], simd_out[i]) << "code " << codes[i];
  }
}

TEST(Simd, SzCodecRoundTripMatchesScalarBitwise) {
  cu::Rng rng(93);
  std::vector<double> values(4096);
  double acc = 0.0;
  for (auto& v : values) {
    acc += rng.uniform(-1.0, 1.0);
    v = acc;  // random walk: mostly predictable, occasional big steps
  }
  const double eb = 1e-6;
  cu::Bytes scalar_stream;
  std::vector<double> scalar_decoded;
  {
    cu::simd::ScopedForceScalar force;
    scalar_stream = cc::sz_encode(values, eb);
    scalar_decoded = cc::sz_decode(scalar_stream);
  }
  const auto simd_stream = cc::sz_encode(values, eb);
  EXPECT_EQ(scalar_stream, simd_stream);
  const auto simd_decoded = cc::sz_decode(simd_stream);
  ASSERT_EQ(scalar_decoded.size(), simd_decoded.size());
  for (std::size_t i = 0; i < simd_decoded.size(); ++i) {
    EXPECT_EQ(scalar_decoded[i], simd_decoded[i]) << "value " << i;
  }
}
