// Tests for the asynchronous submission/completion engine (src/io): the
// overlap-makespan accounting, FIFO completion order, serial-equivalent
// per-op results, batching behavior, deadlines, per-op error isolation, and
// both execution paths (inline pump and background pool driver).

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include "io/io_ring.hpp"
#include "storage/hierarchy.hpp"
#include "storage/tier.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace cio = canopus::io;
namespace cs = canopus::storage;
namespace cu = canopus::util;

namespace {

cu::Bytes blob(std::size_t n, std::uint64_t seed) {
  cu::Rng rng(seed);
  cu::Bytes b(n);
  for (auto& x : b) x = static_cast<std::byte>(rng.uniform_index(256));
  return b;
}

cs::StorageHierarchy two_tiers() {
  return cs::StorageHierarchy(
      {cs::tmpfs_spec(8 << 20), cs::lustre_spec(1 << 30)});
}

/// Writes `n` distinct objects and returns their keys in write order.
std::vector<std::string> seed_objects(cs::StorageHierarchy& tiers,
                                      std::size_t n) {
  std::vector<std::string> keys;
  for (std::size_t i = 0; i < n; ++i) {
    keys.push_back("obj/" + std::to_string(i));
    tiers.place(keys.back(), blob(512 + 37 * i, i + 1));
  }
  return keys;
}

}  // namespace

// --------------------------------------------------------------- makespan --

TEST(OverlapMakespan, DepthOneIsTheOrderedSum) {
  const std::vector<double> costs{0.1, 0.25, 0.3, 0.01};
  // Bit-identical to the historical left-to-right fold, not merely close:
  // async-off accounting must not move by an ulp.
  double sum = 0.0;
  for (double c : costs) sum += c;
  EXPECT_EQ(cio::overlap_makespan(costs, 1), sum);
  EXPECT_EQ(cio::overlap_makespan(costs, 0), sum);
  EXPECT_EQ(cio::overlap_makespan({}, 1), 0.0);
  EXPECT_EQ(cio::overlap_makespan({}, 8), 0.0);
}

TEST(OverlapMakespan, OverlapIsBoundedByMaxAndSum) {
  cu::Rng rng(11);
  std::vector<double> costs(40);
  for (auto& c : costs) c = rng.uniform(1e-4, 1e-2);
  const double sum = std::accumulate(costs.begin(), costs.end(), 0.0);
  const double maxc = *std::max_element(costs.begin(), costs.end());
  double prev = sum;
  for (std::uint32_t depth : {2u, 3u, 8u, 64u}) {
    const double m = cio::overlap_makespan(costs, depth);
    EXPECT_GE(m, maxc);            // the longest op can never be hidden
    EXPECT_GE(m, sum / depth);     // depth lanes can't beat perfect packing
    EXPECT_LE(m, sum + 1e-12);     // overlap never makes things slower
    EXPECT_LE(m, prev + 1e-12);    // deeper rings never hurt
    prev = m;
  }
  // With more lanes than ops, every op runs concurrently from t=0.
  EXPECT_DOUBLE_EQ(cio::overlap_makespan(costs, 64), maxc);
}

TEST(OverlapMakespan, EqualCostsPackPerfectly) {
  const std::vector<double> costs(6, 0.5);
  EXPECT_DOUBLE_EQ(cio::overlap_makespan(costs, 2), 1.5);
  EXPECT_DOUBLE_EQ(cio::overlap_makespan(costs, 3), 1.0);
  EXPECT_DOUBLE_EQ(cio::overlap_makespan(costs, 6), 0.5);
}

// ------------------------------------------------------------------- ring --

TEST(IoRing, CompletionsArriveInSubmissionOrderWithPayloads) {
  auto tiers = two_tiers();
  const auto keys = seed_objects(tiers, 10);

  cio::IoConfig cfg;
  cfg.depth = 4;
  cfg.batch = 2;
  cio::IoRing ring(tiers, cfg);
  for (const auto& k : keys) ring.submit(k);
  EXPECT_EQ(ring.in_flight(), keys.size());

  for (std::size_t i = 0; i < keys.size(); ++i) {
    const auto c = ring.wait_next();
    EXPECT_EQ(c.id, i);
    EXPECT_EQ(c.key, keys[i]);
    EXPECT_FALSE(c.error);
    EXPECT_EQ(c.payload, blob(512 + 37 * i, i + 1));
  }
  EXPECT_EQ(ring.in_flight(), 0u);

  const auto s = ring.stats();
  EXPECT_EQ(s.submitted, keys.size());
  EXPECT_EQ(s.completed, keys.size());
  // Batching actually batched: fewer read_batch calls than ops, but at least
  // ceil(n / batch) of them.
  EXPECT_GE(s.batches, (keys.size() + cfg.batch - 1) / cfg.batch);
  EXPECT_LT(s.batches, keys.size());
  EXPECT_EQ(s.deadline_misses, 0u);
}

TEST(IoRing, PerOpResultsMatchSerialReads) {
  auto serial_tiers = two_tiers();
  auto ring_tiers = two_tiers();
  const auto keys = seed_objects(serial_tiers, 8);
  seed_objects(ring_tiers, 8);

  std::vector<cs::IoResult> serial;
  for (const auto& k : keys) {
    cu::Bytes out;
    serial.push_back(serial_tiers.read(k, out));
  }

  cio::IoConfig cfg;
  cfg.depth = 4;
  cfg.batch = 3;
  cio::IoRing ring(ring_tiers, cfg);
  for (const auto& k : keys) ring.submit(k);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const auto c = ring.wait_next();
    EXPECT_EQ(c.io.bytes, serial[i].bytes) << keys[i];
    EXPECT_EQ(c.io.retries, serial[i].retries) << keys[i];
    // Batched submission amortizes same-tier round trips, so each op's sim
    // cost can only shrink, never grow, relative to its serial read.
    EXPECT_LE(c.io.sim_seconds, serial[i].sim_seconds + 1e-12) << keys[i];
    EXPECT_GT(c.io.sim_seconds, 0.0) << keys[i];
  }
}

TEST(IoRing, ErrorsSurfacePerOpWithoutPoisoningOthers) {
  auto tiers = two_tiers();
  const auto keys = seed_objects(tiers, 3);

  cio::IoConfig cfg;
  cfg.depth = 2;
  cio::IoRing ring(tiers, cfg);
  ring.submit(keys[0]);
  ring.submit("does/not/exist");
  ring.submit(keys[2]);

  const auto a = ring.wait_next();
  EXPECT_FALSE(a.error);
  EXPECT_FALSE(a.payload.empty());

  const auto b = ring.wait_next();
  ASSERT_TRUE(b.error);
  EXPECT_TRUE(b.payload.empty());
  EXPECT_THROW(std::rethrow_exception(b.error), canopus::Error);

  const auto c = ring.wait_next();
  EXPECT_FALSE(c.error);
  EXPECT_EQ(c.payload, blob(512 + 37 * 2, 3));
}

TEST(IoRing, DeadlineMissesAreRecordedNotEnforced) {
  auto tiers = two_tiers();
  const auto keys = seed_objects(tiers, 4);

  cio::IoConfig strict;
  strict.depth = 2;
  strict.deadline_seconds = 1e-15;  // below any tier's read latency
  cio::IoRing ring(tiers, strict);
  for (const auto& k : keys) ring.submit(k);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const auto c = ring.wait_next();
    EXPECT_TRUE(c.deadline_missed) << i;
    EXPECT_FALSE(c.error) << i;  // record-only: the op still succeeds
    EXPECT_FALSE(c.payload.empty()) << i;
  }
  EXPECT_EQ(ring.stats().deadline_misses, keys.size());

  // deadline 0 disables the check entirely.
  cio::IoConfig lax;
  lax.depth = 2;
  cio::IoRing ring2(tiers, lax);
  for (const auto& k : keys) ring2.submit(k);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_FALSE(ring2.wait_next().deadline_missed);
  }
  EXPECT_EQ(ring2.stats().deadline_misses, 0u);
}

TEST(IoRing, BackgroundDriverOnPoolDrainsTheQueue) {
  auto tiers = two_tiers();
  const auto keys = seed_objects(tiers, 16);
  cu::ThreadPool pool(2);

  cio::IoConfig cfg;
  cfg.depth = 8;
  cfg.batch = 4;
  cio::IoRing ring(tiers, cfg, &pool);
  for (const auto& k : keys) ring.submit(k);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const auto c = ring.wait_next();
    EXPECT_EQ(c.id, i);
    EXPECT_FALSE(c.error);
  }
  const auto s = ring.stats();
  EXPECT_EQ(s.submitted, 16u);
  EXPECT_EQ(s.completed, 16u);
}

TEST(IoRing, DestructorDrainsUnconsumedOps) {
  auto tiers = two_tiers();
  const auto keys = seed_objects(tiers, 6);
  cu::ThreadPool pool(2);
  {
    cio::IoConfig cfg;
    cfg.depth = 2;
    cio::IoRing ring(tiers, cfg, &pool);
    for (const auto& k : keys) ring.submit(k);
    // Consume one completion, abandon the rest: teardown must not hang or
    // leave a driver task referencing a dead ring.
    EXPECT_EQ(ring.wait_next().id, 0u);
  }
  // The hierarchy is still fully usable afterwards.
  cu::Bytes out;
  EXPECT_NO_THROW(tiers.read(keys[3], out));
}
