#pragma once
// Shared helpers for the randomized test suites.
//
// CANOPUS_TEST_SEED makes CI failures reproducible: every randomized sweep
// derives its per-case RNG seeds from this base (default 0, the historical
// value, so unset keeps the exact seeds the suites always ran). A red run
// prints the offending seed; replay it locally with
//
//   CANOPUS_TEST_SEED=<base> ctest --test-dir build -R <suite>
//
// ctest inherits the variable from the calling environment, so exporting it
// before `ctest` (as CI does) reaches every test process.

#include <cstdint>
#include <cstdlib>

namespace canopus::test {

/// Base seed for randomized sweeps: $CANOPUS_TEST_SEED, or 0 when unset.
inline std::uint64_t test_seed() {
  static const std::uint64_t seed = [] {
    const char* env = std::getenv("CANOPUS_TEST_SEED");
    return env != nullptr ? std::strtoull(env, nullptr, 10)
                          : std::uint64_t{0};
  }();
  return seed;
}

}  // namespace canopus::test
