// Tests for the structured-grid data model: coarsening, bilinear estimate,
// delta/restore exactness, shape serialization, and the grid refactor/read
// pipeline.

#include <gtest/gtest.h>

#include <cmath>

#include "grid/refactor.hpp"
#include "grid/structured.hpp"
#include "storage/hierarchy.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace cg = canopus::grid;
namespace cs = canopus::storage;
namespace cu = canopus::util;
namespace cc = canopus::core;

namespace {

cg::GridShape shape(std::size_t nx, std::size_t ny) {
  cg::GridShape s;
  s.nx = nx;
  s.ny = ny;
  s.dx = 1.0 / static_cast<double>(nx);
  s.dy = 1.0 / static_cast<double>(ny);
  return s;
}

cg::GridField smooth(const cg::GridShape& s) {
  cg::GridField f(s.point_count());
  for (std::size_t y = 0; y < s.ny; ++y) {
    for (std::size_t x = 0; x < s.nx; ++x) {
      const double px = s.x0 + static_cast<double>(x) * s.dx;
      const double py = s.y0 + static_cast<double>(y) * s.dy;
      f[y * s.nx + x] = std::sin(4.0 * px) * std::cos(5.0 * py) + 2.0 * px;
    }
  }
  return f;
}

}  // namespace

TEST(GridShape, CoarsenedHalvesCeil) {
  const auto s = shape(9, 6);
  const auto c = s.coarsened();
  EXPECT_EQ(c.nx, 5u);
  EXPECT_EQ(c.ny, 3u);
  EXPECT_DOUBLE_EQ(c.dx, s.dx * 2.0);
  const auto cc2 = c.coarsened();
  EXPECT_EQ(cc2.nx, 3u);
  EXPECT_EQ(cc2.ny, 2u);
}

TEST(GridShape, SerializeRoundTrip) {
  const auto s = shape(40, 30);
  cu::ByteWriter w;
  s.serialize(w);
  cu::ByteReader r(w.view());
  EXPECT_EQ(cg::GridShape::deserialize(r), s);
}

TEST(Grid, CoarsenAveragesBlocks) {
  // 4x2 grid with known values: coarse point (0,0) averages the 2x2 block.
  const auto s = shape(4, 2);
  const cg::GridField f{1.0, 3.0, 5.0, 7.0,   // row 0
                        2.0, 4.0, 6.0, 8.0};  // row 1
  const auto c = cg::coarsen(s, f);
  ASSERT_EQ(c.size(), 2u);           // 2x1 coarse grid
  EXPECT_DOUBLE_EQ(c[0], 2.5);        // mean(1,3,2,4)
  EXPECT_DOUBLE_EQ(c[1], 6.5);        // mean(5,7,6,8)
}

TEST(Grid, CoarsenHandlesOddEdges) {
  const auto s = shape(3, 3);
  const cg::GridField f{1, 2, 3, 4, 5, 6, 7, 8, 9};
  const auto c = cg::coarsen(s, f);
  ASSERT_EQ(c.size(), 4u);  // 2x2
  EXPECT_DOUBLE_EQ(c[0], (1 + 2 + 4 + 5) / 4.0);
  EXPECT_DOUBLE_EQ(c[1], (3 + 6) / 2.0);   // right edge: 1x2 block
  EXPECT_DOUBLE_EQ(c[3], 9.0);             // corner: single point
}

TEST(Grid, DeltaRestoreExactInverse) {
  const auto s = shape(37, 23);  // odd sizes stress the edge handling
  const auto fine = smooth(s);
  const auto c = s.coarsened();
  const auto coarse = cg::coarsen(s, fine);
  const auto delta = cg::compute_grid_delta(s, fine, c, coarse);
  const auto restored = cg::restore_grid_level(s, delta, c, coarse);
  ASSERT_EQ(restored.size(), fine.size());
  EXPECT_LE(cu::max_abs_error(fine, restored), 1e-13);
}

TEST(Grid, DeltasAreSmallForSmoothFields) {
  const auto s = shape(64, 64);
  const auto fine = smooth(s);
  const auto coarse = cg::coarsen(s, fine);
  const auto delta = cg::compute_grid_delta(s, fine, s.coarsened(), coarse);
  cu::RunningStats level, d;
  level.add(fine);
  d.add(delta);
  EXPECT_LT(d.stddev(), level.stddev() / 10.0);
}

TEST(Grid, RefactorReadRoundTripWithinBudget) {
  cs::StorageHierarchy tiers(
      {cs::tmpfs_spec(8 << 20), cs::lustre_spec(1 << 30)});
  const auto s = shape(100, 80);
  const auto values = smooth(s);
  cc::RefactorConfig config;
  config.levels = 4;
  config.codec = "zfp";
  config.error_bound = 1e-6;
  const auto report =
      cg::refactor_and_write_grid(tiers, "g.bp", "pressure", s, values, config);
  EXPECT_EQ(report.level_points.size(), 4u);
  EXPECT_LT(report.stored_bytes, report.raw_bytes);

  cg::GridProgressiveReader reader(tiers, "g.bp", "pressure");
  EXPECT_EQ(reader.level_count(), 4u);
  EXPECT_GT(reader.decimation_ratio(), 30.0);  // ~2^(2*3) = 64x points
  EXPECT_EQ(reader.values().size(), reader.current_shape().point_count());
  reader.refine_to(0);
  ASSERT_EQ(reader.values().size(), values.size());
  EXPECT_LE(cu::max_abs_error(values, reader.values()),
            4.0 * config.error_bound);
  EXPECT_THROW(reader.refine(), canopus::Error);
}

TEST(Grid, ProgressiveShapesShrinkThenGrow) {
  cs::StorageHierarchy tiers(
      {cs::tmpfs_spec(8 << 20), cs::lustre_spec(1 << 30)});
  const auto s = shape(65, 33);  // odd dims exercise ceil halving end-to-end
  cc::RefactorConfig config;
  config.levels = 3;
  config.codec = "fpc";
  cg::refactor_and_write_grid(tiers, "o.bp", "v", s, smooth(s), config);
  cg::GridProgressiveReader reader(tiers, "o.bp", "v");
  EXPECT_EQ(reader.current_shape().nx, 17u);
  reader.refine();
  EXPECT_EQ(reader.current_shape().nx, 33u);
  reader.refine();
  EXPECT_EQ(reader.current_shape().nx, 65u);
  EXPECT_LE(cu::max_abs_error(smooth(s), reader.values()), 1e-12);
}

TEST(Grid, NonGridContainerRejected) {
  cs::StorageHierarchy tiers(
      {cs::tmpfs_spec(8 << 20), cs::lustre_spec(1 << 30)});
  canopus::adios::BpWriter w(tiers, "plain.bp");
  w.write_doubles("v", canopus::adios::BlockKind::kData, 0,
                  std::vector<double>{1.0}, "raw", 0.0);
  w.close();
  EXPECT_THROW(cg::GridProgressiveReader(tiers, "plain.bp", "v"),
               canopus::Error);
}

TEST(Grid, TooManyLevelsThrow) {
  cs::StorageHierarchy tiers({cs::tmpfs_spec(8 << 20)});
  const auto s = shape(4, 4);
  cc::RefactorConfig config;
  config.levels = 6;  // 4 -> 2 -> 1: exhausted before 6 levels
  EXPECT_THROW(
      cg::refactor_and_write_grid(tiers, "x.bp", "v", s, smooth(s), config),
      canopus::Error);
}
