// Tests for the workload-adaptive auto-tiering loop (src/tiering): the
// decayed HeatTracker, the TierAdvisor's hysteresis/cooldown policy, the
// typed capacity errors of StorageHierarchy::make_room, predicted-residency
// re-stamping (planned cost == achieved cost), heat-aware coldest-first
// demotion, the <tiering> config block, and heat survival across fabric
// topology changes.
//
// Randomized sweeps derive their seeds from CANOPUS_TEST_SEED (see
// tests/test_support.hpp) and print the seed on failure.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "adios/bp.hpp"
#include "core/canopus.hpp"
#include "core/config.hpp"
#include "core/options.hpp"
#include "core/pipeline.hpp"
#include "fabric/fabric.hpp"
#include "mesh/generators.hpp"
#include "serve/cost_model.hpp"
#include "storage/hierarchy.hpp"
#include "test_support.hpp"
#include "tiering/heat_tracker.hpp"
#include "tiering/tier_advisor.hpp"

namespace ca = canopus::adios;
namespace cc = canopus::core;
namespace cf = canopus::fabric;
namespace cm = canopus::mesh;
namespace cs = canopus::storage;
namespace ct = canopus::tiering;
namespace cv = canopus::serve;
using canopus::Status;
using canopus::StatusCode;
using canopus::util::Bytes;

namespace {

cm::Field smooth_field(const cm::TriMesh& mesh) {
  cm::Field f(mesh.vertex_count());
  for (cm::VertexId v = 0; v < mesh.vertex_count(); ++v) {
    const auto p = mesh.vertex(v);
    f[v] = std::sin(p.x * 2.0) * std::cos(p.y * 3.0) + 0.2 * p.y;
  }
  return f;
}

cs::StorageHierarchy three_tiers() {
  return cs::StorageHierarchy({cs::tmpfs_spec(64 << 20),
                               cs::ssd_spec(128 << 20),
                               cs::lustre_spec(1 << 30)});
}

cc::RefactorConfig chunked_config() {
  cc::RefactorConfig config;
  config.levels = 3;
  config.codec = "zfp";
  config.error_bound = 1e-6;
  config.delta_chunks = 8;
  return config;
}

/// Advisor knobs with a huge half-life (no meaningful decay inside a test)
/// and no cooldown, so policy outcomes are functions of recorded heat alone.
ct::TieringConfig test_policy() {
  ct::TieringConfig c;
  c.half_life_seconds = 1e6;
  c.promote_threshold = 4.0;
  c.demote_threshold = 1.0;
  c.cooldown_ticks = 0;
  c.max_moves_per_tick = 100;
  return c;
}

/// Object keys of every kDelta block of `level` in `path`/`var`.
std::vector<std::string> delta_keys(cs::StorageHierarchy& tiers,
                                    const std::string& path,
                                    const std::string& var,
                                    std::uint32_t level) {
  std::vector<std::string> keys;
  const ca::BpReader reader(tiers, path);
  for (const auto& b : reader.inq_var(var).blocks) {
    if (b.kind == ca::BlockKind::kDelta && b.level == level) {
      keys.push_back(b.object_key);
    }
  }
  return keys;
}

std::map<std::string, Bytes> stored_objects(cs::StorageHierarchy& tiers,
                                            const std::string& path,
                                            const std::string& var) {
  const ca::BpReader reader(tiers, path);
  std::map<std::string, Bytes> objects;
  for (const auto& record : reader.inq_var(var).blocks) {
    Bytes bytes;
    tiers.read(record.object_key, bytes);
    objects[record.object_key] = std::move(bytes);
  }
  return objects;
}

}  // namespace

// ------------------------------------------------------------ heat tracker --

TEST(HeatTracker, DecayHalvesAtHalfLifeAndIsMonotone) {
  // Recording at t=0 keeps the elapsed-time arithmetic exact (dt/half_life
  // is exactly 1 and 2), so the half-life property is bit-exact:
  // exp2(-1) == 0.5 and exp2(-2) == 0.25.
  {
    ct::HeatTracker tracker(0.25);
    tracker.record("k", 8.0, 0.0);
    EXPECT_DOUBLE_EQ(tracker.heat("k", 0.0), 8.0);
    EXPECT_DOUBLE_EQ(tracker.heat("k", 0.25), 4.0);
    EXPECT_DOUBLE_EQ(tracker.heat("k", 0.5), 2.0);
  }
  // Property sweep over random half-lives, weights, and record times:
  // half-life decay to relative precision (the time subtraction rounds),
  // strict monotonicity in elapsed time, and stamps that never run backwards.
  const std::uint64_t seed = canopus::test::test_seed() ^ 0x7ea7u;
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> half_life_dist(0.01, 10.0);
  std::uniform_real_distribution<double> weight_dist(0.1, 100.0);
  std::uniform_real_distribution<double> time_dist(0.0, 100.0);
  for (int c = 0; c < 64; ++c) {
    const double half_life = half_life_dist(rng);
    const double w = weight_dist(rng);
    const double t0 = time_dist(rng);
    ct::HeatTracker tracker(half_life);
    tracker.record("k", w, t0);
    EXPECT_DOUBLE_EQ(tracker.heat("k", t0), w) << "seed=" << seed;
    EXPECT_NEAR(tracker.heat("k", t0 + half_life), w * 0.5, 1e-9 * w)
        << "seed=" << seed;
    EXPECT_NEAR(tracker.heat("k", t0 + 2.0 * half_life), w * 0.25, 1e-9 * w)
        << "seed=" << seed;
    // Strictly decreasing along any increasing time ladder.
    double prev = tracker.heat("k", t0);
    for (int step = 1; step <= 8; ++step) {
      const double now = t0 + step * 0.37 * half_life;
      const double h = tracker.heat("k", now);
      EXPECT_LT(h, prev) << "seed=" << seed << " step=" << step;
      EXPECT_GT(h, 0.0) << "seed=" << seed;
      prev = h;
    }
    // Stamps never go backwards: an earlier query decays by factor 1.
    EXPECT_DOUBLE_EQ(tracker.heat("k", t0 - 1.0), w) << "seed=" << seed;
    // Accumulation folds decay before adding the new weight.
    tracker.record("k", w, t0 + half_life);
    EXPECT_NEAR(tracker.heat("k", t0 + half_life), w * 0.5 + w, 1e-9 * w)
        << "seed=" << seed;
  }
}

TEST(HeatTracker, UnknownKeysAreColdAndTrackedCounts) {
  ct::HeatTracker tracker(1.0);
  EXPECT_DOUBLE_EQ(tracker.heat("nope", 5.0), 0.0);
  EXPECT_EQ(tracker.tracked(), 0u);
  tracker.record("a", 1.0, 0.0);
  tracker.record("b", 2.0, 0.0);
  tracker.record("a", 1.0, 1.0);
  EXPECT_EQ(tracker.tracked(), 2u);
}

// ------------------------------------------- make_room error typing (fix) --

TEST(MakeRoom, BothCapacityPathsThrowTypedCapacityError) {
  // Path 1: nothing on the tier can be evicted at all (request exceeds what
  // eviction could ever free).
  {
    cs::StorageHierarchy h({cs::tmpfs_spec(64 << 10)});
    EXPECT_THROW(h.make_room(0, 128 << 10), cs::CapacityError);
    Status status = Status::success();
    try {
      h.make_room(0, 128 << 10);
    } catch (...) {
      status = canopus::status_from_current_exception();
    }
    EXPECT_EQ(status.code, StatusCode::kCapacity) << status.to_string();
  }
  // Path 2: a victim exists but no lower tier can absorb it. This used to be
  // a CANOPUS_CHECK (generic Error -> kInternal) while path 1 already threw
  // CapacityError -> kCapacity; identical capacity exhaustion must map to
  // one status code.
  {
    cs::StorageHierarchy h({cs::tmpfs_spec(16 << 10), cs::ssd_spec(8 << 10)});
    const Bytes block(12 << 10, std::byte{0x5a});
    h.write_to(0, "victim", block);
    EXPECT_THROW(h.make_room(0, 8 << 10), cs::CapacityError);
    Status status = Status::success();
    try {
      h.make_room(0, 8 << 10);
    } catch (...) {
      status = canopus::status_from_current_exception();
    }
    EXPECT_EQ(status.code, StatusCode::kCapacity) << status.to_string();
    // The failed eviction never destroys data.
    EXPECT_TRUE(h.find("victim").has_value());
  }
}

// ------------------------------------------------------------ policy loop --

TEST(TierAdvisor, PromotesHotDeltaLevelThenStabilizes) {
  auto tiers = three_tiers();
  const auto mesh = cm::make_annulus_mesh(16, 100, 0.5, 1.0, 0.1, 7);
  cc::refactor_and_write(tiers, "d.bp", "v", mesh, smooth_field(mesh),
                         chunked_config());

  ct::TierAdvisor advisor(test_policy());
  advisor.watch(tiers);
  ASSERT_TRUE(advisor.register_container("d.bp"));
  ASSERT_GT(advisor.report().groups, 0u);

  // Start the finest delta level cold, at the bottom of the stack.
  const auto keys = delta_keys(tiers, "d.bp", "v", 0);
  ASSERT_FALSE(keys.empty());
  for (const auto& key : keys) tiers.migrate(key, 2);

  // A hot workload on that level: mean heat far above the promote band.
  for (const auto& key : keys) advisor.heat().record(key, 10.0);

  // Each tick promotes the group one tier; two ticks reach the top.
  EXPECT_GE(advisor.tick(), 1u);
  for (const auto& key : keys) {
    EXPECT_EQ(tiers.find(key), std::optional<std::size_t>(1)) << key;
  }
  EXPECT_GE(advisor.tick(), 1u);
  for (const auto& key : keys) {
    EXPECT_EQ(tiers.find(key), std::optional<std::size_t>(0)) << key;
    // The plan was re-stamped as each migration landed.
    EXPECT_EQ(advisor.predicted_tier(key), std::optional<std::size_t>(0));
  }
  const auto after_rise = advisor.report();
  EXPECT_GE(after_rise.promotions, 2u);

  // Still hot, already on the fastest tier: placement is stable from here.
  for (int i = 0; i < 3; ++i) EXPECT_EQ(advisor.tick(), 0u);
  EXPECT_EQ(advisor.report().promotions, after_rise.promotions);
}

TEST(TierAdvisor, HysteresisBandNeverThrashes) {
  auto tiers = three_tiers();
  const auto mesh = cm::make_annulus_mesh(16, 100, 0.5, 1.0, 0.1, 7);
  cc::refactor_and_write(tiers, "d.bp", "v", mesh, smooth_field(mesh),
                         chunked_config());

  ct::TierAdvisor advisor(test_policy());
  advisor.watch(tiers);
  ASSERT_TRUE(advisor.register_container("d.bp"));

  // Every tracked block sits inside the band (demote 1 < heat 2 < promote 4):
  // an oscillating workload there must never move anything.
  const ca::BpReader reader(tiers, "d.bp");
  for (const auto& var : reader.variables()) {
    for (const auto& b : reader.inq_var(var).blocks) {
      advisor.heat().record(b.object_key, 2.0);
    }
  }
  const auto before = stored_objects(tiers, "d.bp", "v");
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(advisor.tick(), 0u) << "tick " << i;
    // Wiggle the heat without leaving the band.
    const ca::BpReader r(tiers, "d.bp");
    for (const auto& var : r.variables()) {
      for (const auto& b : r.inq_var(var).blocks) {
        advisor.heat().record(b.object_key, (i % 2 == 0) ? 0.5 : -0.5);
      }
    }
  }
  const auto report = advisor.report();
  EXPECT_EQ(report.promotions, 0u);
  EXPECT_EQ(report.demotions, 0u);
  // Placement (and bytes) untouched.
  const auto after = stored_objects(tiers, "d.bp", "v");
  EXPECT_EQ(before.size(), after.size());
  for (const auto& [key, bytes] : before) {
    const auto it = after.find(key);
    ASSERT_NE(it, after.end()) << key;
    EXPECT_EQ(bytes, it->second) << key;
  }
}

TEST(TierAdvisor, CooldownSuppressesImmediateReversal) {
  auto tiers = three_tiers();
  const auto mesh = cm::make_annulus_mesh(16, 100, 0.5, 1.0, 0.1, 7);
  cc::refactor_and_write(tiers, "d.bp", "v", mesh, smooth_field(mesh),
                         chunked_config());

  auto config = test_policy();
  config.cooldown_ticks = 2;
  ct::TierAdvisor advisor(config);
  advisor.watch(tiers);
  ASSERT_TRUE(advisor.register_container("d.bp"));

  const auto keys = delta_keys(tiers, "d.bp", "v", 0);
  ASSERT_FALSE(keys.empty());
  for (const auto& key : keys) tiers.migrate(key, 1);
  for (const auto& key : keys) advisor.heat().record(key, 10.0);
  EXPECT_GE(advisor.tick(), 1u);  // promoted to tier 0
  for (const auto& key : keys) {
    ASSERT_EQ(tiers.find(key), std::optional<std::size_t>(0)) << key;
  }

  // Collapse the heat below the demote band: the group now *wants* down, but
  // it just moved — cooldown holds it for cooldown_ticks ticks.
  for (const auto& key : keys) advisor.heat().record(key, -10.0);
  const auto before = advisor.report();
  EXPECT_EQ(advisor.tick(), 0u);
  EXPECT_EQ(advisor.tick(), 0u);
  EXPECT_GT(advisor.report().skipped_cooldown, before.skipped_cooldown);
  for (const auto& key : keys) {
    EXPECT_EQ(tiers.find(key), std::optional<std::size_t>(0)) << key;
  }
  // Cooldown over: the demotion goes through.
  EXPECT_GE(advisor.tick(), 1u);
  for (const auto& key : keys) {
    EXPECT_EQ(tiers.find(key), std::optional<std::size_t>(1)) << key;
  }
  EXPECT_GT(advisor.report().demotions, before.demotions);
}

TEST(TierAdvisor, DemoteColdestPicksColdestFirstDeterministically) {
  cs::StorageHierarchy h({cs::tmpfs_spec(64 << 10), cs::lustre_spec(1 << 30)});
  const Bytes block(8 << 10, std::byte{0x11});
  h.write_to(0, "hot", block);
  h.write_to(0, "warm", block);
  h.write_to(0, "cold", block);

  ct::TierAdvisor advisor(test_policy());
  advisor.watch(h);
  advisor.heat().record("hot", 5.0);
  advisor.heat().record("warm", 3.0);
  advisor.heat().record("cold", 1.0);

  // Free space is 40 KiB; asking for 48 KiB demotes exactly one object —
  // and it must be the coldest.
  EXPECT_EQ(advisor.demote_coldest(h, 0, 48 << 10), 1u);
  EXPECT_EQ(h.find("cold"), std::optional<std::size_t>(1));
  EXPECT_EQ(h.find("warm"), std::optional<std::size_t>(0));
  EXPECT_EQ(h.find("hot"), std::optional<std::size_t>(0));

  // The next request takes the next-coldest.
  EXPECT_EQ(advisor.demote_coldest(h, 0, 56 << 10), 1u);
  EXPECT_EQ(h.find("warm"), std::optional<std::size_t>(1));
  EXPECT_EQ(h.find("hot"), std::optional<std::size_t>(0));
  EXPECT_EQ(advisor.report().delegated_evictions, 2u);
}

// ----------------------------------------- stale residency (planned cost) --

TEST(StaleResidency, RefineEstimateTracksLiveTierAfterBackgroundDemotion) {
  auto tiers = three_tiers();
  const auto mesh = cm::make_annulus_mesh(16, 100, 0.5, 1.0, 0.1, 7);
  cc::refactor_and_write(tiers, "d.bp", "v", mesh, smooth_field(mesh),
                         chunked_config());

  cc::ProgressiveReader reader(tiers, "d.bp", "v");
  const double before = reader.estimated_refine_cost(0);

  // A background demotion (eviction pressure, advisor policy) moves the
  // level's chunks while the reader stays open. The estimate must price the
  // tier that now holds the blocks, not the tier the writer recorded.
  const auto keys = delta_keys(tiers, "d.bp", "v", 0);
  ASSERT_FALSE(keys.empty());
  const std::size_t origin = *tiers.find(keys.front());
  const std::size_t target = origin == 2 ? 0 : 2;
  for (const auto& key : keys) tiers.migrate(key, target);

  const double after = reader.estimated_refine_cost(0);
  EXPECT_NE(after, before);
  if (target > origin) {
    EXPECT_GT(after, before);  // demoted to a slower tier: pricier
  } else {
    EXPECT_LT(after, before);
  }
  // Planned == achieved: a reader opened fresh (which can only see live
  // residency) prices the step identically.
  cc::ProgressiveReader fresh(tiers, "d.bp", "v");
  EXPECT_DOUBLE_EQ(after, fresh.estimated_refine_cost(0));
}

TEST(StaleResidency, PredictedTierRestampsOnObservedMigration) {
  auto tiers = three_tiers();
  const auto mesh = cm::make_annulus_mesh(16, 100, 0.5, 1.0, 0.1, 7);
  cc::refactor_and_write(tiers, "d.bp", "v", mesh, smooth_field(mesh),
                         chunked_config());

  ct::TierAdvisor advisor(test_policy());
  advisor.watch(tiers);

  const auto keys = delta_keys(tiers, "d.bp", "v", 1);
  ASSERT_FALSE(keys.empty());
  EXPECT_EQ(advisor.predicted_tier(keys.front()), std::nullopt);

  // Any observed migration — advisor move, make_room demotion, eviction —
  // re-stamps the prediction to the achieved placement.
  tiers.migrate(keys.front(), 2);
  EXPECT_EQ(advisor.predicted_tier(keys.front()),
            std::optional<std::size_t>(2));
  tiers.migrate(keys.front(), 0);
  EXPECT_EQ(advisor.predicted_tier(keys.front()),
            std::optional<std::size_t>(0));

  // With predictions in line with live residency, an advisor-aware cost
  // model and a plain one agree exactly: planned cost is achieved cost.
  cc::ProgressiveReader reader(tiers, "d.bp", "v");
  const auto with = cv::CostModel::build(tiers, reader, nullptr, &advisor);
  const auto without = cv::CostModel::build(tiers, reader, nullptr, nullptr);
  ASSERT_EQ(with.steps().size(), without.steps().size());
  for (std::size_t i = 0; i < with.steps().size(); ++i) {
    EXPECT_DOUBLE_EQ(with.steps()[i].io_seconds, without.steps()[i].io_seconds)
        << "level " << i;
  }
}

// -------------------------------------------------- bitwise invisibility --

TEST(TierAdvisor, AdvisorMovesAreBitwiseInvisibleToRestoredFields) {
  const auto mesh = cm::make_annulus_mesh(16, 100, 0.5, 1.0, 0.1, 7);
  const auto values = smooth_field(mesh);

  auto tiers_static = three_tiers();
  cc::refactor_and_write(tiers_static, "d.bp", "v", mesh, values,
                         chunked_config());
  cm::Field baseline;
  {
    cc::ProgressiveReader reader(tiers_static, "d.bp", "v");
    reader.refine_to(0);
    baseline = reader.values();
  }

  auto tiers_adaptive = three_tiers();
  cc::refactor_and_write(tiers_adaptive, "d.bp", "v", mesh, values,
                         chunked_config());
  ct::TierAdvisor advisor(test_policy());
  advisor.watch(tiers_adaptive);
  ASSERT_TRUE(advisor.register_container("d.bp"));

  // Heat the fine levels hard and let the advisor shuffle placement between
  // refinement steps — exactly the background interleaving production sees.
  std::size_t moves = 0;
  for (std::uint32_t level : {0u, 1u}) {
    for (const auto& key : delta_keys(tiers_adaptive, "d.bp", "v", level)) {
      tiers_adaptive.migrate(key, 2);
      advisor.heat().record(key, 10.0);
    }
  }
  cc::ProgressiveReader reader(tiers_adaptive, "d.bp", "v");
  reader.refine_to(1);
  moves += advisor.tick();
  reader.refine_to(0);
  moves += advisor.tick();
  ASSERT_GT(moves, 0u);  // the advisor really did re-place data mid-read

  ASSERT_EQ(baseline.size(), reader.values().size());
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    ASSERT_EQ(baseline[i], reader.values()[i]) << "vertex " << i;
  }
  // The stored products are byte-identical too, wherever they now live.
  const auto a = stored_objects(tiers_static, "d.bp", "v");
  const auto b = stored_objects(tiers_adaptive, "d.bp", "v");
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [key, bytes] : a) {
    const auto it = b.find(key);
    ASSERT_NE(it, b.end()) << key;
    EXPECT_EQ(bytes, it->second) << key;
  }
}

// ------------------------------------------------------- fabric topology --

TEST(TierAdvisor, HeatSurvivesAttachNodeAndRebalance) {
  cs::StorageHierarchy staging({cs::tmpfs_spec(256 << 20)});
  const auto mesh = cm::make_annulus_mesh(16, 100, 0.5, 1.0, 0.1, 7);
  cc::refactor_and_write(staging, "d.bp", "v", mesh, smooth_field(mesh),
                         chunked_config());

  cf::FabricOptions fo;
  fo.nodes = 2;
  cf::Fabric fabric(fo, {cs::tmpfs_spec(64 << 20), cs::lustre_spec(1 << 30)});
  fabric.import_container(staging, "d.bp");

  ct::TierAdvisor advisor(test_policy());
  advisor.attach_fabric(&fabric);

  // Reads served anywhere in the fabric feed the tracker through the
  // per-node access listeners.
  const auto keys = delta_keys(staging, "d.bp", "v", 0);
  ASSERT_FALSE(keys.empty());
  const std::string probe = keys.front();
  const auto loc = fabric.directory().lookup(probe);
  ASSERT_TRUE(loc.has_value());
  Bytes payload;
  fabric.node(loc->owner).read(probe, payload);
  const double heat_before = advisor.heat().heat(probe);
  EXPECT_GT(heat_before, 0.0);

  // Grow the cluster and rebalance mid-run. Heat is keyed by global object
  // names, so a chunk handed to the new owner keeps its history.
  const std::uint32_t added = fabric.attach_node(/*background=*/false);
  fabric.rebalance();
  EXPECT_GE(advisor.heat().heat(probe), heat_before * 0.99);

  // The listener reached the node attached after attach_fabric(): reads on
  // it keep feeding the same tracker.
  const auto moved = fabric.directory().lookup(probe);
  ASSERT_TRUE(moved.has_value());
  Bytes again;
  fabric.node(moved->owner).read(probe, again);
  EXPECT_EQ(again, payload);
  EXPECT_GT(advisor.heat().heat(probe), heat_before);
  (void)added;
}

// ------------------------------------------------------ config + options --

TEST(TieringConfig, ParsesTieringBlock) {
  const auto config = cc::load_config(R"(<canopus-config>
    <storage><tier preset="tmpfs" capacity="4MiB"/></storage>
    <tiering enabled="true" half-life="500ms" promote-above="4"
             demote-below="1" interval="10ms" max-moves="8"
             cooldown-ticks="3" reserve="0.1"/>
  </canopus-config>)");
  ASSERT_TRUE(config.tiering.has_value());
  EXPECT_TRUE(config.tiering->enabled);
  EXPECT_DOUBLE_EQ(config.tiering->half_life_seconds, 0.5);
  EXPECT_DOUBLE_EQ(config.tiering->promote_threshold, 4.0);
  EXPECT_DOUBLE_EQ(config.tiering->demote_threshold, 1.0);
  EXPECT_DOUBLE_EQ(config.tiering->interval_seconds, 0.01);
  EXPECT_EQ(config.tiering->max_moves_per_tick, 8u);
  EXPECT_EQ(config.tiering->cooldown_ticks, 3u);
  EXPECT_DOUBLE_EQ(config.tiering->reserve, 0.1);
  // The block flows through to the consolidated Options surface.
  ASSERT_TRUE(config.options().tiering.has_value());
  EXPECT_TRUE(config.options().tiering->enabled);
}

TEST(TieringConfig, RejectsInvertedHysteresisBandNamingTheAttributes) {
  try {
    cc::load_config(R"(<canopus-config>
      <storage><tier preset="tmpfs" capacity="4MiB"/></storage>
      <tiering promote-above="1" demote-below="4"/>
    </canopus-config>)");
    FAIL() << "inverted band accepted";
  } catch (const canopus::Error& e) {
    // The message must name the element and both attributes, mirroring the
    // <fabric> eviction-low/eviction-high diagnostic.
    const std::string what = e.what();
    EXPECT_NE(what.find("<tiering>"), std::string::npos) << what;
    EXPECT_NE(what.find("demote-below"), std::string::npos) << what;
    EXPECT_NE(what.find("promote-above"), std::string::npos) << what;
  }
}

TEST(TieringConfig, RejectsOutOfRangeReserve) {
  EXPECT_THROW(cc::load_config(R"(<canopus-config>
    <storage><tier preset="tmpfs" capacity="4MiB"/></storage>
    <tiering reserve="1.5"/>
  </canopus-config>)"),
               canopus::Error);
}

TEST(TieringConfig, OptionsValidateRejectsInvertedBand) {
  canopus::Options options;
  ct::TieringConfig tc;
  tc.promote_threshold = 1.0;
  tc.demote_threshold = 4.0;
  options.tiering = tc;
  const Status status = options.check();
  EXPECT_EQ(status.code, StatusCode::kInvalidArgument);
  EXPECT_NE(status.to_string().find("demote_threshold"), std::string::npos)
      << status.to_string();
}

TEST(TieringConfig, PipelineFacadeExposesAdvisorAndReport) {
  auto tiers = three_tiers();
  const auto mesh = cm::make_annulus_mesh(16, 100, 0.5, 1.0, 0.1, 7);
  cc::refactor_and_write(tiers, "d.bp", "v", mesh, smooth_field(mesh),
                         chunked_config());

  canopus::Options options;
  options.tiering = test_policy();  // enabled=false: ticks stay manual
  canopus::Pipeline pipeline(tiers, options);
  ct::TierAdvisor& advisor = pipeline.tier_advisor();
  EXPECT_EQ(&advisor, &pipeline.tier_advisor());  // one advisor per pipeline
  EXPECT_DOUBLE_EQ(advisor.config().half_life_seconds, 1e6);
  ASSERT_TRUE(advisor.register_container("d.bp"));
  advisor.tick();
  const auto report = pipeline.tiering_report();
  EXPECT_EQ(report.ticks, 1u);
  EXPECT_GT(report.groups, 0u);
}
