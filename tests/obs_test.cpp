// Tests for the observability layer (obs/) and the canopus::Pipeline facade:
// histogram bucket math, concurrent metric updates, span nesting and thread
// attribution, Chrome trace_event JSON well-formedness, Status semantics,
// request validation, and the bitwise facade-vs-legacy round-trip identity.

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstddef>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/canopus.hpp"
#include "core/config.hpp"
#include "mesh/generators.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "storage/hierarchy.hpp"

namespace cc = canopus::core;
namespace cm = canopus::mesh;
namespace cs = canopus::storage;
namespace ca = canopus::adios;
namespace cu = canopus::util;
namespace obs = canopus::obs;

using canopus::Pipeline;
using canopus::PipelineOptions;
using canopus::ReadRequest;
using canopus::ReadResult;
using canopus::Status;
using canopus::StatusCode;
using canopus::WriteRequest;
using canopus::WriteResult;

namespace {

/// Scoped enable: turns recording on with a clean slate and restores the
/// disabled default on exit, so tests cannot leak state into each other.
class ObsScope {
 public:
  ObsScope() {
    obs::ObservabilityOptions options;
    options.enabled = true;
    obs::install(options);  // clears prior metrics and spans
  }
  ~ObsScope() { obs::set_enabled(false); }
};

cm::Field smooth_field(const cm::TriMesh& mesh) {
  cm::Field f(mesh.vertex_count());
  for (cm::VertexId v = 0; v < mesh.vertex_count(); ++v) {
    const auto p = mesh.vertex(v);
    f[v] = std::sin(p.x * 2.0) * std::cos(p.y * 3.0) + 0.2 * p.y;
  }
  return f;
}

cs::StorageHierarchy two_tiers() {
  return cs::StorageHierarchy(
      {cs::tmpfs_spec(64 << 20), cs::lustre_spec(1 << 30)});
}

/// Every stored object of `var`, read back raw (still compressed).
std::map<std::string, cu::Bytes> stored_objects(cs::StorageHierarchy& tiers,
                                                const std::string& path,
                                                const std::string& var) {
  ca::BpReader reader(tiers, path);
  std::map<std::string, cu::Bytes> objects;
  for (const auto& record : reader.inq_var(var).blocks) {
    cu::Bytes bytes;
    tiers.read(record.object_key, bytes);
    objects[record.object_key] = std::move(bytes);
  }
  return objects;
}

// ------------------------------------------------- minimal JSON validator --
// Recursive-descent structural check: objects, arrays, strings with escapes,
// numbers, true/false/null. Good enough to prove the exporter emits JSON a
// real parser would accept, without pulling in a JSON dependency.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // bare control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(static_cast<unsigned char>(s_[pos_])))
              return false;
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* word) {
    const std::string w(word);
    if (s_.compare(pos_, w.size(), w) != 0) return false;
    pos_ += w.size();
    return true;
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

// ------------------------------------------------------------- histograms --

TEST(Histogram, BucketIndexIsLog2) {
  const std::size_t n = 64;
  // Bucket 0: anything below 1 — including negatives and non-finite values.
  EXPECT_EQ(obs::Histogram::bucket_index(0.0, n), 0u);
  EXPECT_EQ(obs::Histogram::bucket_index(0.5, n), 0u);
  EXPECT_EQ(obs::Histogram::bucket_index(-7.0, n), 0u);
  EXPECT_EQ(obs::Histogram::bucket_index(std::nan(""), n), 0u);
  // Bucket i >= 1 covers [2^(i-1), 2^i).
  EXPECT_EQ(obs::Histogram::bucket_index(1.0, n), 1u);
  EXPECT_EQ(obs::Histogram::bucket_index(1.999, n), 1u);
  EXPECT_EQ(obs::Histogram::bucket_index(2.0, n), 2u);
  EXPECT_EQ(obs::Histogram::bucket_index(3.0, n), 2u);
  EXPECT_EQ(obs::Histogram::bucket_index(4.0, n), 3u);
  EXPECT_EQ(obs::Histogram::bucket_index(1024.0, n), 11u);
  // The last bucket is unbounded above.
  EXPECT_EQ(obs::Histogram::bucket_index(1e300, 8), 7u);
  EXPECT_EQ(obs::Histogram::bucket_index(1e300, n), n - 1);
}

TEST(Histogram, BucketLowerBoundsArePowersOfTwo) {
  EXPECT_EQ(obs::Histogram::bucket_lower_bound(0), 0.0);
  EXPECT_EQ(obs::Histogram::bucket_lower_bound(1), 1.0);
  EXPECT_EQ(obs::Histogram::bucket_lower_bound(2), 2.0);
  EXPECT_EQ(obs::Histogram::bucket_lower_bound(3), 4.0);
  EXPECT_EQ(obs::Histogram::bucket_lower_bound(11), 1024.0);
  // Bounds and indices agree: every lower bound lands in its own bucket.
  for (std::size_t i = 1; i < 32; ++i) {
    EXPECT_EQ(obs::Histogram::bucket_index(obs::Histogram::bucket_lower_bound(i), 64), i);
  }
}

TEST(Histogram, ObserveAggregatesAndQuantiles) {
  ObsScope on;
  obs::Histogram h(64);
  // 90 samples in [8, 16), 10 samples in [1024, 2048).
  for (int i = 0; i < 90; ++i) h.observe(10.0);
  for (int i = 0; i < 10; ++i) h.observe(1500.0);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.sum(), 90 * 10.0 + 10 * 1500.0, 1e-9);
  const auto buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 64u);
  EXPECT_EQ(buckets[obs::Histogram::bucket_index(10.0, 64)], 90u);
  EXPECT_EQ(buckets[obs::Histogram::bucket_index(1500.0, 64)], 10u);
  // Quantiles report the lower bound of the holding bucket.
  EXPECT_EQ(h.quantile(0.5), 8.0);
  EXPECT_EQ(h.quantile(0.99), 1024.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

// ---------------------------------------------------- counters and gauges --

TEST(Metrics, CounterSumsConcurrentAdds) {
  ObsScope on;
  obs::Counter c;
  constexpr int kThreads = 8;
  constexpr int kAdds = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) c.add(1);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST(Metrics, UpdatesAreNoOpsWhileDisabled) {
  obs::set_enabled(false);
  obs::Counter c;
  c.add(5);
  EXPECT_EQ(c.value(), 0u);
  obs::Gauge g;
  g.set(9);
  EXPECT_EQ(g.value(), 0);
  obs::Histogram h(16);
  h.observe(3.0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(Metrics, GaugeKeepsLastValueAndMax) {
  ObsScope on;
  obs::Gauge g;
  g.set(5);
  g.set(3);
  EXPECT_EQ(g.value(), 3);
  EXPECT_EQ(g.max_value(), 5);
}

TEST(Metrics, RegistryHandlesSurviveReset) {
  ObsScope on;
  auto& registry = obs::MetricsRegistry::global();
  auto& c = registry.counter("obs_test.stable");
  c.add(7);
  EXPECT_EQ(c.value(), 7u);
  registry.reset();
  // Same object, zeroed — call sites may cache references across resets.
  EXPECT_EQ(&registry.counter("obs_test.stable"), &c);
  EXPECT_EQ(c.value(), 0u);
}

TEST(Metrics, SnapshotListsEveryKind) {
  ObsScope on;
  auto& registry = obs::MetricsRegistry::global();
  registry.counter("obs_test.c").add(2);
  registry.gauge("obs_test.g").set(4);
  registry.histogram("obs_test.h").observe(100.0);
  const auto snap = registry.snapshot();
  const auto* c = snap.find("obs_test.c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->kind, obs::MetricsSnapshot::Entry::Kind::kCounter);
  EXPECT_EQ(c->count, 2u);
  const auto* g = snap.find("obs_test.g");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->gauge, 4);
  const auto* h = snap.find("obs_test.h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 1u);
  EXPECT_NEAR(h->sum, 100.0, 1e-9);
}

// ------------------------------------------------------------------ spans --

TEST(Trace, SpansNestAndAttributeThreads) {
  ObsScope on;
  auto& recorder = obs::TraceRecorder::global();
  {
    CANOPUS_SPAN("outer", {{"level", 1}});
    { CANOPUS_SPAN("inner"); }
  }
  std::thread([] { CANOPUS_SPAN("worker_span"); }).join();

  const auto events = recorder.events();
  ASSERT_EQ(events.size(), 3u);
  const obs::TraceEvent* outer = nullptr;
  const obs::TraceEvent* inner = nullptr;
  const obs::TraceEvent* worker = nullptr;
  for (const auto& e : events) {
    if (e.name == "outer") outer = &e;
    if (e.name == "inner") inner = &e;
    if (e.name == "worker_span") worker = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(worker, nullptr);
  // Nesting depth reflects enclosure; the inner span lies within the outer.
  EXPECT_EQ(outer->depth, 0u);
  EXPECT_EQ(inner->depth, 1u);
  EXPECT_LE(outer->ts_us, inner->ts_us);
  EXPECT_GE(outer->ts_us + outer->dur_us, inner->ts_us + inner->dur_us);
  // Same thread for the nest; a different tid for the worker.
  EXPECT_EQ(outer->tid, inner->tid);
  EXPECT_NE(worker->tid, outer->tid);
  EXPECT_EQ(worker->depth, 0u);
  // The span argument came through.
  ASSERT_EQ(outer->args.size(), 1u);
  EXPECT_EQ(outer->args[0].key, "level");
  EXPECT_EQ(outer->args[0].value, "1");
  EXPECT_GE(recorder.thread_count(), 2u);
}

TEST(Trace, SpansAreNotRecordedWhileDisabled) {
  obs::set_enabled(false);
  obs::TraceRecorder::global().clear();
  { CANOPUS_SPAN("ghost"); }
  EXPECT_TRUE(obs::TraceRecorder::global().events().empty());
}

TEST(Trace, ChromeTraceJsonIsWellFormed) {
  ObsScope on;
  {
    // Name and value with characters the exporter must escape.
    CANOPUS_SPAN("tricky \"name\"\\path", {{"note", "tab\there \"quoted\""}});
    CANOPUS_SPAN("plain", {{"chunk", 3}});
  }
  std::thread([] { CANOPUS_SPAN("worker"); }).join();

  const std::string json = obs::TraceRecorder::global().chrome_trace_json();
  JsonChecker checker(json);
  EXPECT_TRUE(checker.valid()) << json;
  // The trace_event essentials are present.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\""), std::string::npos);
}

TEST(Trace, SummaryTableAggregatesPerName) {
  ObsScope on;
  { CANOPUS_SPAN("repeat"); }
  { CANOPUS_SPAN("repeat"); }
  obs::MetricsRegistry::global().counter("obs_test.summary").add(3);
  std::ostringstream os;
  obs::write_summary(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("repeat"), std::string::npos);
  EXPECT_NE(out.find("obs_test.summary"), std::string::npos);
}

// ----------------------------------------------------------------- status --

TEST(Status, CodesAndPredicates) {
  EXPECT_TRUE(Status::success().ok());
  EXPECT_TRUE(Status::success().usable());

  const Status failed = Status::failure(StatusCode::kNotFound, "missing");
  EXPECT_FALSE(failed.ok());
  EXPECT_FALSE(failed.usable());
  EXPECT_EQ(failed.to_string(), "not-found: missing");

  Status degraded;
  degraded.code = StatusCode::kDegraded;
  degraded.degraded = true;
  EXPECT_FALSE(degraded.ok());   // not the accuracy that was asked for...
  EXPECT_TRUE(degraded.usable());  // ...but a usable field nonetheless

  Status retried;
  retried.code = StatusCode::kRetried;
  EXPECT_TRUE(retried.ok());
}

// ----------------------------------------------------------------- facade --

TEST(Pipeline, RejectsMalformedRequests) {
  auto tiers = two_tiers();
  Pipeline pipeline(tiers);

  WriteRequest w;  // no path/var
  EXPECT_EQ(pipeline.write(w).code, StatusCode::kInvalidArgument);

  const auto mesh = cm::make_annulus_mesh(6, 24, 0.5, 1.0, 0.1, 3);
  w.path = "p.bp";
  w.var = "v";
  EXPECT_EQ(pipeline.write(w).code, StatusCode::kInvalidArgument);  // no data
  cm::Field wrong_size(mesh.vertex_count() + 1, 0.0);
  w.mesh = &mesh;
  w.values = &wrong_size;
  EXPECT_EQ(pipeline.write(w).code, StatusCode::kInvalidArgument);

  ReadRequest r;
  r.path = "p.bp";
  r.var = "v";
  EXPECT_EQ(pipeline.read(r, nullptr).code, StatusCode::kInvalidArgument);
  ReadResult result;
  // Nothing has been written: surfaced as a status, not an exception.
  EXPECT_EQ(pipeline.read(r, &result).code, StatusCode::kNotFound);
}

TEST(Pipeline, RoundTripMatchesLegacyApiBitwise) {
  const auto mesh = cm::make_annulus_mesh(12, 80, 0.5, 1.0, 0.1, 7);
  const auto values = smooth_field(mesh);
  cc::RefactorConfig config;
  config.levels = 3;
  config.codec = "zfp";
  config.error_bound = 1e-6;
  config.delta_chunks = 4;

  // Legacy free-function path.
  auto legacy_tiers = two_tiers();
  const auto legacy_report = cc::refactor_and_write(legacy_tiers, "d.bp", "v",
                                                    mesh, values, config);
  cc::ProgressiveReader legacy_reader(legacy_tiers, "d.bp", "v");
  legacy_reader.refine_to(0);

  // Facade path.
  auto tiers = two_tiers();
  Pipeline pipeline(tiers);
  WriteRequest wreq;
  wreq.path = "d.bp";
  wreq.var = "v";
  wreq.mesh = &mesh;
  wreq.values = &values;
  wreq.config = config;
  WriteResult wres;
  ASSERT_TRUE(pipeline.write(wreq, &wres).ok());
  ReadRequest rreq;
  rreq.path = "d.bp";
  rreq.var = "v";
  rreq.target_level = 0;
  ReadResult rres;
  ASSERT_TRUE(pipeline.read(rreq, &rres).ok());

  // Same products, same placement.
  ASSERT_EQ(wres.report.products.size(), legacy_report.products.size());
  for (std::size_t i = 0; i < wres.report.products.size(); ++i) {
    EXPECT_EQ(wres.report.products[i].name, legacy_report.products[i].name);
    EXPECT_EQ(wres.report.products[i].stored_bytes,
              legacy_report.products[i].stored_bytes);
    EXPECT_EQ(wres.report.products[i].tier, legacy_report.products[i].tier);
  }
  // Same bytes in the container, object by object.
  const auto legacy_objects = stored_objects(legacy_tiers, "d.bp", "v");
  const auto facade_objects = stored_objects(tiers, "d.bp", "v");
  ASSERT_EQ(facade_objects.size(), legacy_objects.size());
  ASSERT_GT(facade_objects.size(), 0u);
  for (const auto& [key, bytes] : legacy_objects) {
    const auto it = facade_objects.find(key);
    ASSERT_NE(it, facade_objects.end()) << key;
    EXPECT_EQ(bytes, it->second) << key;
  }
  // Same restored field, bitwise.
  EXPECT_EQ(rres.level, 0u);
  ASSERT_EQ(rres.values.size(), legacy_reader.values().size());
  for (std::size_t i = 0; i < rres.values.size(); ++i) {
    EXPECT_EQ(rres.values[i], legacy_reader.values()[i]) << "vertex " << i;
  }
}

TEST(Pipeline, AccuracyTargetedReadStopsEarly) {
  const auto mesh = cm::make_annulus_mesh(12, 80, 0.5, 1.0, 0.1, 7);
  const auto values = smooth_field(mesh);
  auto tiers = two_tiers();
  Pipeline pipeline(tiers);
  WriteRequest wreq;
  wreq.path = "d.bp";
  wreq.var = "v";
  wreq.mesh = &mesh;
  wreq.values = &values;
  wreq.config.levels = 4;
  wreq.config.codec = "zfp";
  wreq.config.error_bound = 1e-6;
  ASSERT_TRUE(pipeline.write(wreq).ok());

  ReadRequest rreq;
  rreq.path = "d.bp";
  rreq.var = "v";
  rreq.rmse_threshold = 1e3;  // hopelessly loose: the base already satisfies it
  ReadResult rres;
  ASSERT_TRUE(pipeline.read(rreq, &rres).usable());
  EXPECT_GT(rres.level, 0u);  // stopped before full accuracy
  // An over-deep target level clamps to the coarsest stored level.
  rreq.rmse_threshold.reset();
  rreq.target_level = 99;
  ASSERT_TRUE(pipeline.read(rreq, &rres).usable());
  EXPECT_EQ(rres.level, 3u);
}

TEST(Pipeline, ConfigObservabilityBlockInstallsOptions) {
  const char* xml = R"(<canopus-config>
    <storage><tier preset="tmpfs" capacity="64MiB"/></storage>
    <refactor levels="3" codec="zfp" error-bound="1e-6"/>
    <observability enabled="true" histogram-buckets="16"/>
  </canopus-config>)";
  const auto config = cc::load_config(xml);
  ASSERT_TRUE(config.observability.has_value());
  EXPECT_TRUE(config.observability->enabled);
  EXPECT_EQ(config.observability->histogram_buckets, 16u);
  EXPECT_TRUE(config.observability->trace_path.empty());

  auto pipeline = Pipeline::from_config(config);
  EXPECT_TRUE(obs::enabled());
  EXPECT_EQ(obs::MetricsRegistry::global().default_histogram_buckets(), 16u);
  obs::set_enabled(false);
}

TEST(Pipeline, InstrumentedRoundTripRecordsStagesAndMetrics) {
  ObsScope on;
  const auto mesh = cm::make_annulus_mesh(12, 80, 0.5, 1.0, 0.1, 7);
  const auto values = smooth_field(mesh);
  auto tiers = two_tiers();
  Pipeline pipeline(tiers);
  WriteRequest wreq;
  wreq.path = "d.bp";
  wreq.var = "v";
  wreq.mesh = &mesh;
  wreq.values = &values;
  wreq.config.levels = 3;
  wreq.config.codec = "zfp";
  wreq.config.error_bound = 1e-6;
  ASSERT_TRUE(pipeline.write(wreq).ok());
  ReadRequest rreq;
  rreq.path = "d.bp";
  rreq.var = "v";
  rreq.target_level = 0;
  ReadResult rres;
  ASSERT_TRUE(pipeline.read(rreq, &rres).ok());

  // The hot-path stages all left spans behind...
  std::map<std::string, int> seen;
  for (const auto& e : obs::TraceRecorder::global().events()) ++seen[e.name];
  for (const char* name :
       {"pipeline.write", "refactor.decimate", "refactor.delta",
        "refactor.compress", "refactor.commit", "pipeline.read",
        "read.open_base", "read.fetch", "read.decompress", "read.restore"}) {
    EXPECT_GT(seen[name], 0) << name;
  }
  // ...and the storage tiers counted their traffic.
  const auto snap = obs::MetricsRegistry::global().snapshot();
  const auto* writes = snap.find("storage.tmpfs.writes");
  ASSERT_NE(writes, nullptr);
  EXPECT_GT(writes->count, 0u);
  const auto* read_bytes = snap.find("storage.tmpfs.read_bytes");
  ASSERT_NE(read_bytes, nullptr);
  EXPECT_GT(read_bytes->count, 0u);
}
