// Tests for the XML parser and the ADIOS-style runtime configuration loader.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/config.hpp"
#include "util/xml.hpp"

namespace cu = canopus::util;
namespace cc = canopus::core;
namespace cs = canopus::storage;

// -------------------------------------------------------------------- XML --

TEST(Xml, ParsesElementsAttributesText) {
  const auto root = cu::parse_xml(
      "<?xml version='1.0'?>\n"
      "<!-- a comment -->\n"
      "<config mode=\"fast\">\n"
      "  <tier name='tmpfs' capacity=\"4MiB\"/>\n"
      "  <note>hello &amp; goodbye</note>\n"
      "</config>");
  EXPECT_EQ(root->name, "config");
  EXPECT_EQ(root->attr("mode"), "fast");
  const auto* tier = root->child("tier");
  ASSERT_NE(tier, nullptr);
  EXPECT_EQ(tier->attr("name"), "tmpfs");
  EXPECT_EQ(tier->attr("capacity"), "4MiB");
  const auto* note = root->child("note");
  ASSERT_NE(note, nullptr);
  EXPECT_EQ(note->text, "hello & goodbye");
  EXPECT_EQ(root->child("missing"), nullptr);
  EXPECT_EQ(root->attr("missing", "dflt"), "dflt");
}

TEST(Xml, NestedAndRepeatedElements) {
  const auto root = cu::parse_xml(
      "<a><b i='1'><c/></b><b i='2'/><d/></a>");
  const auto bs = root->children_named("b");
  ASSERT_EQ(bs.size(), 2u);
  EXPECT_EQ(bs[0]->attr("i"), "1");
  EXPECT_EQ(bs[1]->attr("i"), "2");
  EXPECT_NE(bs[0]->child("c"), nullptr);
}

TEST(Xml, EntitiesDecoded) {
  const auto root = cu::parse_xml("<x v='&lt;&gt;&quot;&apos;&amp;'/>");
  EXPECT_EQ(root->attr("v"), "<>\"'&");
}

TEST(Xml, MalformedInputsThrow) {
  EXPECT_THROW(cu::parse_xml(""), canopus::Error);
  EXPECT_THROW(cu::parse_xml("<a>"), canopus::Error);
  EXPECT_THROW(cu::parse_xml("<a></b>"), canopus::Error);
  EXPECT_THROW(cu::parse_xml("<a x=unquoted/>"), canopus::Error);
  EXPECT_THROW(cu::parse_xml("<a/><b/>"), canopus::Error);
  EXPECT_THROW(cu::parse_xml("<a>&unknown;</a>"), canopus::Error);
  EXPECT_THROW(cu::parse_xml("<a><!-- unterminated </a>"), canopus::Error);
}

// ------------------------------------------------------------------ units --

TEST(Units, Sizes) {
  EXPECT_EQ(cc::parse_size("0"), 0u);
  EXPECT_EQ(cc::parse_size("512B"), 512u);
  EXPECT_EQ(cc::parse_size("4KiB"), 4096u);
  EXPECT_EQ(cc::parse_size("2MiB"), 2u << 20);
  EXPECT_EQ(cc::parse_size("1GiB"), 1u << 30);
  EXPECT_EQ(cc::parse_size("3KB"), 3000u);
  EXPECT_EQ(cc::parse_size("1.5KiB"), 1536u);
  EXPECT_THROW(cc::parse_size("10parsecs"), canopus::Error);
  EXPECT_THROW(cc::parse_size("lots"), canopus::Error);
}

TEST(Units, RatesAndDurations) {
  EXPECT_DOUBLE_EQ(cc::parse_rate("250MB/s"), 250e6);
  EXPECT_DOUBLE_EQ(cc::parse_rate("8GiB/s"), 8.0 * (1 << 30));
  EXPECT_THROW(cc::parse_rate("250MB"), canopus::Error);
  EXPECT_THROW(cc::parse_rate("0MB/s"), canopus::Error);
  EXPECT_DOUBLE_EQ(cc::parse_duration("5ms"), 5e-3);
  EXPECT_DOUBLE_EQ(cc::parse_duration("2us"), 2e-6);
  EXPECT_DOUBLE_EQ(cc::parse_duration("1.5s"), 1.5);
  EXPECT_THROW(cc::parse_duration("5min"), canopus::Error);
}

// ----------------------------------------------------------------- config --

namespace {
const char* kSample = R"(<canopus-config>
  <storage policy="fastest-fit">
    <tier preset="tmpfs" capacity="4MiB"/>
    <tier preset="lustre" capacity="1GiB" read-bw="100MB/s" read-latency="8ms"/>
  </storage>
  <refactor levels="4" step="2" codec="sz" error-bound="1e-5"
            estimate="barycentric" priority="gradient" tiered-placement="false"/>
</canopus-config>)";
}

TEST(Config, LoadsTiersAndRefactor) {
  const auto config = cc::load_config(kSample);
  ASSERT_EQ(config.tiers.size(), 2u);
  EXPECT_EQ(config.tiers[0].name, "tmpfs");
  EXPECT_EQ(config.tiers[0].capacity_bytes, 4u << 20);
  EXPECT_EQ(config.tiers[1].name, "lustre");
  // Explicit attributes override the preset envelope...
  EXPECT_DOUBLE_EQ(config.tiers[1].read_bandwidth, 100e6);
  EXPECT_DOUBLE_EQ(config.tiers[1].read_latency, 8e-3);
  // ...while untouched preset fields survive.
  EXPECT_DOUBLE_EQ(config.tiers[1].write_bandwidth,
                   cs::lustre_spec(1).write_bandwidth);

  EXPECT_EQ(config.refactor.levels, 4u);
  EXPECT_EQ(config.refactor.codec, "sz");
  EXPECT_DOUBLE_EQ(config.refactor.error_bound, 1e-5);
  EXPECT_EQ(config.refactor.estimate, cc::EstimateMode::kBarycentric);
  EXPECT_EQ(config.refactor.decimate.priority,
            canopus::mesh::EdgePriority::kGradientWeighted);
  EXPECT_FALSE(config.refactor.tiered_placement);

  auto hierarchy = config.make_hierarchy();
  EXPECT_EQ(hierarchy.tier_count(), 2u);
}

TEST(Config, ParsesParallelKnobs) {
  const auto config = cc::load_config(R"(<canopus-config>
    <storage><tier preset="tmpfs" capacity="4MiB"/></storage>
    <threads> 4 </threads>
    <pipeline overlap="false" read-ahead="false"/>
  </canopus-config>)");
  EXPECT_EQ(config.refactor.parallel.threads, 4u);
  EXPECT_FALSE(config.refactor.parallel.pipeline);
  EXPECT_FALSE(config.refactor.parallel.read_ahead);
}

TEST(Config, ParallelKnobsDefaultToConcurrent) {
  const auto config = cc::load_config(kSample);
  EXPECT_EQ(config.refactor.parallel.threads, 0u);  // 0 = global pool
  EXPECT_TRUE(config.refactor.parallel.pipeline);
  EXPECT_TRUE(config.refactor.parallel.read_ahead);
}

TEST(Config, ParsesCacheBlock) {
  const auto config = cc::load_config(R"(<canopus-config>
    <storage><tier preset="tmpfs" capacity="4MiB"/></storage>
    <cache budget="8MiB" shards="2" verify-hits="true"/>
  </canopus-config>)");
  ASSERT_TRUE(config.cache.has_value());
  EXPECT_EQ(config.cache->budget_bytes, 8u << 20);
  EXPECT_EQ(config.cache->shards, 2u);
  EXPECT_TRUE(config.cache->verify_hits);
  auto hierarchy = config.make_hierarchy();
  ASSERT_NE(hierarchy.block_cache(), nullptr);
  EXPECT_EQ(hierarchy.block_cache()->budget_bytes(), 8u << 20);
}

TEST(Config, CacheDefaultsOffAndAcceptsBudgetMb) {
  // No <cache> element: uncached hierarchy, optional stays empty.
  EXPECT_FALSE(cc::load_config(kSample).cache.has_value());
  EXPECT_EQ(cc::load_config(kSample).make_hierarchy().block_cache(), nullptr);
  const auto config = cc::load_config(R"(<canopus-config>
    <storage><tier preset="tmpfs" capacity="4MiB"/></storage>
    <cache budget-mb="16"/>
  </canopus-config>)");
  ASSERT_TRUE(config.cache.has_value());
  EXPECT_EQ(config.cache->budget_bytes, 16u << 20);
  EXPECT_FALSE(config.cache->verify_hits);
}

TEST(Config, InvalidCacheBlockThrows) {
  // Zero shards.
  EXPECT_THROW(cc::load_config(R"(<canopus-config>
    <storage><tier preset="tmpfs" capacity="4MiB"/></storage>
    <cache budget="1MiB" shards="0"/>
  </canopus-config>)"),
               canopus::Error);
  // Explicit zero budget.
  EXPECT_THROW(cc::load_config(R"(<canopus-config>
    <storage><tier preset="tmpfs" capacity="4MiB"/></storage>
    <cache budget="0"/>
  </canopus-config>)"),
               canopus::Error);
  // Bare <cache/> keeps the CacheConfig defaults (64 MiB) rather than throw.
  const auto bare = cc::load_config(R"(<canopus-config>
    <storage><tier preset="tmpfs" capacity="4MiB"/></storage>
    <cache/>
  </canopus-config>)");
  ASSERT_TRUE(bare.cache.has_value());
  EXPECT_EQ(bare.cache->budget_bytes,
            canopus::cache::CacheConfig{}.budget_bytes);
}

TEST(Config, EmptyThreadsElementThrows) {
  EXPECT_THROW(cc::load_config(R"(<canopus-config>
    <storage><tier preset="tmpfs" capacity="4MiB"/></storage>
    <threads></threads>
  </canopus-config>)"),
               canopus::Error);
}

TEST(Config, CustomTierWithoutPreset) {
  const auto config = cc::load_config(R"(<canopus-config>
    <storage>
      <tier name="archive" capacity="8GiB" read-bw="40MB/s" write-bw="40MB/s"
            read-latency="50ms" write-latency="50ms"/>
    </storage>
  </canopus-config>)");
  ASSERT_EQ(config.tiers.size(), 1u);
  EXPECT_EQ(config.tiers[0].name, "archive");
  EXPECT_DOUBLE_EQ(config.tiers[0].read_bandwidth, 40e6);
  // Refactor section absent: defaults apply.
  EXPECT_EQ(config.refactor.levels, 3u);
  EXPECT_EQ(config.refactor.codec, "zfp");
}

TEST(Config, FileBackendRequiresRoot) {
  EXPECT_THROW(cc::load_config(R"(<canopus-config>
    <storage><tier name="x" capacity="1MiB" backend="file"/></storage>
  </canopus-config>)"),
               canopus::Error);
}

TEST(Config, InvalidInputsThrow) {
  EXPECT_THROW(cc::load_config("<wrong-root/>"), canopus::Error);
  EXPECT_THROW(cc::load_config("<canopus-config/>"), canopus::Error);
  EXPECT_THROW(cc::load_config(R"(<canopus-config>
    <storage><tier preset="floppy" capacity="1MiB"/></storage>
  </canopus-config>)"),
               canopus::Error);
  EXPECT_THROW(cc::load_config(R"(<canopus-config>
    <storage policy="best-effort"><tier preset="tmpfs" capacity="1MiB"/></storage>
  </canopus-config>)"),
               canopus::Error);
  EXPECT_THROW(cc::load_config(R"(<canopus-config>
    <storage><tier capacity="1MiB"/></storage>
  </canopus-config>)"),
               canopus::Error);
}

TEST(Config, LoadFromFile) {
  namespace fs = std::filesystem;
  const auto path = (fs::temp_directory_path() / "canopus_config_test.xml").string();
  {
    std::ofstream f(path);
    f << kSample;
  }
  const auto config = cc::load_config_file(path);
  EXPECT_EQ(config.tiers.size(), 2u);
  std::remove(path.c_str());
  EXPECT_THROW(cc::load_config_file("/does/not/exist.xml"), canopus::Error);
}

// -------------------------------------------------- numeric error context --

namespace {
/// The message load_config throws for `xml`, "" when it does not throw.
std::string config_error(const std::string& xml) {
  try {
    cc::load_config(xml);
  } catch (const canopus::Error& e) {
    return e.what();
  }
  return {};
}

std::string wrap(const std::string& body) {
  return "<canopus-config>\n"
         "  <storage><tier preset=\"tmpfs\" capacity=\"4MiB\"/></storage>\n" +
         body + "\n</canopus-config>";
}
}  // namespace

TEST(Config, MalformedNumericsNameTheirLocation) {
  // Regression: these used to surface as bare std::invalid_argument /
  // std::out_of_range from std::stoul with no hint of which attribute was
  // wrong. Each diagnostic must name the element/attribute and the offense.
  const std::string not_int = config_error(wrap("<refactor levels=\"abc\"/>"));
  EXPECT_NE(not_int.find("levels"), std::string::npos) << not_int;
  EXPECT_NE(not_int.find("not an integer"), std::string::npos) << not_int;

  const std::string junk = config_error(wrap("<refactor levels=\"3abc\"/>"));
  EXPECT_NE(junk.find("levels"), std::string::npos) << junk;
  EXPECT_NE(junk.find("not an integer"), std::string::npos) << junk;

  const std::string negative = config_error(wrap("<faults seed=\"-7\"/>"));
  EXPECT_NE(negative.find("seed"), std::string::npos) << negative;
  EXPECT_NE(negative.find("non-negative"), std::string::npos) << negative;

  const std::string overflow =
      config_error(wrap("<faults seed=\"99999999999999999999999999\"/>"));
  EXPECT_NE(overflow.find("seed"), std::string::npos) << overflow;
  EXPECT_NE(overflow.find("overflow"), std::string::npos) << overflow;

  const std::string bad_double =
      config_error(wrap("<retry multiplier=\"fast\"/>"));
  EXPECT_NE(bad_double.find("multiplier"), std::string::npos) << bad_double;

  const std::string bad_threads = config_error(wrap("<threads>4x</threads>"));
  EXPECT_NE(bad_threads.find("threads"), std::string::npos) << bad_threads;

  const std::string attempts_overflow =
      config_error(wrap("<retry max-attempts=\"4294967296\"/>"));
  EXPECT_NE(attempts_overflow.find("max-attempts"), std::string::npos)
      << attempts_overflow;

  const std::string bad_buckets =
      config_error(wrap("<observability histogram-buckets=\"many\"/>"));
  EXPECT_NE(bad_buckets.find("histogram-buckets"), std::string::npos)
      << bad_buckets;

  const std::string neg_bound =
      config_error(wrap("<refactor error-bound=\"-1e-4\"/>"));
  EXPECT_NE(neg_bound.find("error-bound"), std::string::npos) << neg_bound;
}

// ------------------------------------------------------------------ serve --

TEST(Config, ParsesServeBlock) {
  const auto config = cc::load_config(wrap(
      "<serve workers=\"4\" queue-limit=\"64\" deadline-default=\"250ms\""
      " age-boost=\"2.5\"/>"));
  ASSERT_TRUE(config.serve.has_value());
  EXPECT_EQ(config.serve->workers, 4u);
  EXPECT_EQ(config.serve->queue_limit, 64u);
  EXPECT_DOUBLE_EQ(config.serve->default_deadline_seconds, 0.25);
  EXPECT_DOUBLE_EQ(config.serve->age_boost, 2.5);
}

TEST(Config, ServeDefaultsAndValidation) {
  // No <serve> element: the optional stays empty (scheduler defaults apply
  // lazily at first use).
  EXPECT_FALSE(cc::load_config(kSample).serve.has_value());
  // Bare <serve/> opts in with the ServeConfig defaults.
  const auto bare = cc::load_config(wrap("<serve/>"));
  ASSERT_TRUE(bare.serve.has_value());
  EXPECT_EQ(bare.serve->workers, canopus::serve::ServeConfig{}.workers);

  EXPECT_THROW(cc::load_config(wrap("<serve workers=\"0\"/>")),
               canopus::Error);
  EXPECT_THROW(cc::load_config(wrap("<serve queue-limit=\"0\"/>")),
               canopus::Error);
  EXPECT_THROW(cc::load_config(wrap("<serve deadline-default=\"0ms\"/>")),
               canopus::Error);
  EXPECT_THROW(cc::load_config(wrap("<serve age-boost=\"-1\"/>")),
               canopus::Error);
  const std::string bad_workers =
      config_error(wrap("<serve workers=\"two\"/>"));
  EXPECT_NE(bad_workers.find("workers"), std::string::npos) << bad_workers;
}

// ----------------------------------------------------------------- fabric --

TEST(Config, ParsesFabricBlock) {
  const auto config = cc::load_config(wrap(
      "<fabric nodes=\"4\" partition=\"hash\" remote-us=\"250\""
      " remote-bw=\"2GB/s\" eviction-high=\"0.9\" eviction-low=\"0.7\""
      " eviction-interval=\"20ms\"/>"));
  ASSERT_TRUE(config.fabric.has_value());
  EXPECT_EQ(config.fabric->nodes, 4u);
  EXPECT_EQ(config.fabric->partition, canopus::fabric::Partition::kHash);
  EXPECT_DOUBLE_EQ(config.fabric->remote_latency_seconds, 250e-6);
  EXPECT_DOUBLE_EQ(config.fabric->remote_bandwidth, 2e9);
  EXPECT_DOUBLE_EQ(config.fabric->eviction_high, 0.9);
  EXPECT_DOUBLE_EQ(config.fabric->eviction_low, 0.7);
  EXPECT_DOUBLE_EQ(config.fabric->eviction_interval_seconds, 0.02);
}

TEST(Config, FabricDefaultsAndValidation) {
  // No <fabric> element: single-node serving, the optional stays empty.
  EXPECT_FALSE(cc::load_config(kSample).fabric.has_value());
  // Bare <fabric/> opts in with the defaults (range partition, 1 node).
  const auto bare = cc::load_config(wrap("<fabric/>"));
  ASSERT_TRUE(bare.fabric.has_value());
  EXPECT_EQ(bare.fabric->nodes, 1u);
  EXPECT_EQ(bare.fabric->partition, canopus::fabric::Partition::kMortonRange);
  // "range" and "morton-range" are synonyms.
  EXPECT_EQ(cc::load_config(wrap("<fabric partition=\"range\"/>"))
                .fabric->partition,
            canopus::fabric::Partition::kMortonRange);
  EXPECT_EQ(cc::load_config(wrap("<fabric partition=\"morton-range\"/>"))
                .fabric->partition,
            canopus::fabric::Partition::kMortonRange);

  EXPECT_THROW(cc::load_config(wrap("<fabric nodes=\"0\"/>")), canopus::Error);
  EXPECT_THROW(cc::load_config(wrap("<fabric partition=\"round-robin\"/>")),
               canopus::Error);
  EXPECT_THROW(cc::load_config(wrap("<fabric remote-us=\"-5\"/>")),
               canopus::Error);
  EXPECT_THROW(cc::load_config(wrap("<fabric remote-bw=\"0MB/s\"/>")),
               canopus::Error);
  EXPECT_THROW(cc::load_config(wrap("<fabric eviction-high=\"1.5\"/>")),
               canopus::Error);
  EXPECT_THROW(cc::load_config(
                   wrap("<fabric eviction-high=\"0.5\" eviction-low=\"0.8\"/>")),
               canopus::Error);
  EXPECT_THROW(cc::load_config(wrap("<fabric eviction-interval=\"0ms\"/>")),
               canopus::Error);
  const std::string bad_nodes = config_error(wrap("<fabric nodes=\"many\"/>"));
  EXPECT_NE(bad_nodes.find("nodes"), std::string::npos) << bad_nodes;
}

// --------------------------------------------------------------------- io --

TEST(Config, ParsesIoBlock) {
  const auto config = cc::load_config(
      wrap("<io depth=\"8\" batch=\"4\" deadline=\"5ms\"/>"));
  ASSERT_TRUE(config.io.has_value());
  EXPECT_EQ(config.io->depth, 8u);
  EXPECT_EQ(config.io->batch, 4u);
  EXPECT_DOUBLE_EQ(config.io->deadline_seconds, 5e-3);
  EXPECT_TRUE(config.io->enabled());
}

TEST(Config, IoDefaultsAndValidation) {
  // No <io> element: the optional stays empty and readers stay blocking.
  EXPECT_FALSE(cc::load_config(kSample).io.has_value());
  // Bare <io/> opts in with the defaults — depth 1 keeps the engine off.
  const auto bare = cc::load_config(wrap("<io/>"));
  ASSERT_TRUE(bare.io.has_value());
  EXPECT_EQ(bare.io->depth, 1u);
  EXPECT_FALSE(bare.io->enabled());
  EXPECT_DOUBLE_EQ(bare.io->deadline_seconds, 0.0);

  EXPECT_THROW(cc::load_config(wrap("<io depth=\"0\"/>")), canopus::Error);
  EXPECT_THROW(cc::load_config(wrap("<io batch=\"0\"/>")), canopus::Error);
  EXPECT_THROW(cc::load_config(wrap("<io deadline=\"-5ms\"/>")),
               canopus::Error);
  const std::string bad_depth = config_error(wrap("<io depth=\"eight\"/>"));
  EXPECT_NE(bad_depth.find("depth"), std::string::npos) << bad_depth;
}
