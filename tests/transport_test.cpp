// Tests for write-path transport modes (in situ vs in transit) and the
// chunked BP container API they build on.

#include <gtest/gtest.h>

#include <cmath>

#include "adios/bp.hpp"
#include "core/canopus.hpp"
#include "mesh/generators.hpp"
#include "storage/hierarchy.hpp"
#include "util/stats.hpp"

namespace cc = canopus::core;
namespace cm = canopus::mesh;
namespace cs = canopus::storage;
namespace ca = canopus::adios;
namespace cu = canopus::util;

namespace {

cm::Field wavy(const cm::TriMesh& mesh) {
  cm::Field f(mesh.vertex_count());
  for (cm::VertexId v = 0; v < mesh.vertex_count(); ++v) {
    const auto p = mesh.vertex(v);
    f[v] = std::sin(2.0 * p.x) + std::cos(3.0 * p.y);
  }
  return f;
}

/// Fast staging (DRAM) over a slow PFS, as in a burst-buffer deployment.
cs::StorageHierarchy staged_tiers() {
  return cs::StorageHierarchy(
      {cs::tmpfs_spec(32 << 20), cs::lustre_spec(1 << 30)});
}

}  // namespace

TEST(Transport, ModeStringsRoundTrip) {
  for (auto mode : {cc::TransportMode::kInSitu, cc::TransportMode::kInTransit}) {
    EXPECT_EQ(cc::transport_mode_from_string(cc::to_string(mode)), mode);
  }
  EXPECT_THROW(cc::transport_mode_from_string("rpc"), canopus::Error);
}

TEST(Transport, InTransitBlocksSimulationLess) {
  const auto mesh = cm::make_annulus_mesh(12, 72, 0.5, 1.0, 0.1, 3);
  const auto values = wavy(mesh);
  cc::RefactorConfig config;
  config.levels = 3;
  config.codec = "zfp";
  config.error_bound = 1e-6;

  auto t1 = staged_tiers();
  const auto in_situ = cc::write_with_transport(
      t1, "a.bp", "v", mesh, values, config, cc::TransportMode::kInSitu);
  auto t2 = staged_tiers();
  const auto in_transit = cc::write_with_transport(
      t2, "b.bp", "v", mesh, values, config, cc::TransportMode::kInTransit, 0);

  // Staging a raw burst to DRAM blocks the simulation far less than the
  // full refactor+place path.
  EXPECT_LT(in_transit.simulation_blocked_seconds,
            in_situ.simulation_blocked_seconds / 2);
  EXPECT_GT(in_transit.drain_seconds, 0.0);
  EXPECT_EQ(in_situ.drain_seconds, 0.0);
}

TEST(Transport, BothModesProduceIdenticalContainers) {
  const auto mesh = cm::make_rect_mesh(25, 25, 1.0, 1.0, 0.1, 5);
  const auto values = wavy(mesh);
  cc::RefactorConfig config;
  config.levels = 2;
  config.codec = "fpc";  // lossless: restored values must match bit-for-bit

  auto t1 = staged_tiers();
  auto t2 = staged_tiers();
  cc::write_with_transport(t1, "a.bp", "v", mesh, values, config,
                           cc::TransportMode::kInSitu);
  cc::write_with_transport(t2, "b.bp", "v", mesh, values, config,
                           cc::TransportMode::kInTransit, 0);
  cc::ProgressiveReader ra(t1, "a.bp", "v");
  cc::ProgressiveReader rb(t2, "b.bp", "v");
  ra.refine_to(0);
  rb.refine_to(0);
  EXPECT_EQ(ra.values(), rb.values());
}

TEST(Transport, StagedCopyIsReleasedAfterDrain) {
  const auto mesh = cm::make_rect_mesh(20, 20, 1.0, 1.0);
  const auto values = wavy(mesh);
  auto tiers = staged_tiers();
  const std::size_t before = tiers.tier(0).used_bytes();
  cc::RefactorConfig config;
  config.levels = 2;
  cc::write_with_transport(tiers, "c.bp", "v", mesh, values, config,
                           cc::TransportMode::kInTransit, 0);
  // The staging slot is empty again; only refactored products remain.
  EXPECT_EQ(tiers.find("c.bp/v/.staged"), std::nullopt);
  EXPECT_GE(tiers.tier(0).used_bytes(), before);
}

TEST(Transport, StagingTierTooSmallThrows) {
  const auto mesh = cm::make_rect_mesh(30, 30, 1.0, 1.0);
  const auto values = wavy(mesh);
  cs::StorageHierarchy tiers({cs::tmpfs_spec(64), cs::lustre_spec(1 << 30)});
  cc::RefactorConfig config;
  config.levels = 2;
  EXPECT_THROW(cc::write_with_transport(tiers, "x.bp", "v", mesh, values,
                                        config, cc::TransportMode::kInTransit, 0),
               canopus::Error);
}

// ------------------------------------------------------- chunked BP blocks --

TEST(BpChunks, ChunkedWriteReadRoundTrip) {
  auto tiers = staged_tiers();
  std::vector<double> part0{1.0, 2.0, 3.0};
  std::vector<double> part1{4.0, 5.0};
  {
    ca::BpWriter w(tiers, "ch.bp");
    w.write_doubles_chunk("v", ca::BlockKind::kData, 0, 0, 2, part0, "raw", 0.0);
    w.write_doubles_chunk("v", ca::BlockKind::kData, 0, 1, 2, part1, "raw", 0.0);
    w.close();
  }
  ca::BpReader r(tiers, "ch.bp");
  EXPECT_EQ(r.read_doubles_chunk("v", ca::BlockKind::kData, 0, 0), part0);
  EXPECT_EQ(r.read_doubles_chunk("v", ca::BlockKind::kData, 0, 1), part1);
  EXPECT_THROW(r.read_doubles_chunk("v", ca::BlockKind::kData, 0, 2),
               canopus::Error);
  const auto info = r.inq_var("v");
  EXPECT_EQ(info.blocks.size(), 2u);
  EXPECT_EQ(info.blocks[0].chunk_count, 2u);
}

TEST(BpChunks, ChunkIndexOutOfRangeRejectedAtWrite) {
  auto tiers = staged_tiers();
  ca::BpWriter w(tiers, "bad.bp");
  std::vector<double> xs{1.0};
  EXPECT_THROW(
      w.write_doubles_chunk("v", ca::BlockKind::kData, 0, 2, 2, xs, "raw", 0.0),
      canopus::Error);
}

TEST(BpChunks, RewriteReplacesOnlyMatchingChunk) {
  auto tiers = staged_tiers();
  {
    ca::BpWriter w(tiers, "rw.bp");
    w.write_doubles_chunk("v", ca::BlockKind::kData, 0, 0, 2,
                          std::vector<double>{1.0}, "raw", 0.0);
    w.write_doubles_chunk("v", ca::BlockKind::kData, 0, 1, 2,
                          std::vector<double>{2.0}, "raw", 0.0);
    w.write_doubles_chunk("v", ca::BlockKind::kData, 0, 1, 2,
                          std::vector<double>{9.0, 9.5}, "raw", 0.0);
    w.close();
  }
  ca::BpReader r(tiers, "rw.bp");
  EXPECT_EQ(r.inq_var("v").blocks.size(), 2u);
  EXPECT_EQ(r.read_doubles_chunk("v", ca::BlockKind::kData, 0, 0),
            (std::vector<double>{1.0}));
  EXPECT_EQ(r.read_doubles_chunk("v", ca::BlockKind::kData, 0, 1),
            (std::vector<double>{9.0, 9.5}));
}
