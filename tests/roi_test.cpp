// Tests for focused (region-of-interest) retrieval: spatial ordering, chunk
// indexing, chunked round trips, and ROI refinement accuracy/IO semantics.

#include <gtest/gtest.h>

#include <cmath>

#include "core/canopus.hpp"
#include "mesh/generators.hpp"
#include "sim/datasets.hpp"
#include "storage/hierarchy.hpp"
#include "util/stats.hpp"

namespace cc = canopus::core;
namespace cm = canopus::mesh;
namespace cs = canopus::storage;
namespace cu = canopus::util;

namespace {

cm::Field bump_field(const cm::TriMesh& mesh, cm::Vec2 center, double sigma) {
  cm::Field f(mesh.vertex_count());
  for (cm::VertexId v = 0; v < mesh.vertex_count(); ++v) {
    const auto p = mesh.vertex(v);
    const double d2 = (p - center).norm2();
    f[v] = std::exp(-d2 / (2 * sigma * sigma)) +
           0.05 * std::sin(9.0 * p.x) * std::cos(7.0 * p.y);
  }
  return f;
}

cs::StorageHierarchy tiers() {
  return cs::StorageHierarchy(
      {cs::tmpfs_spec(16 << 20), cs::lustre_spec(1 << 30)});
}

}  // namespace

TEST(SpatialOrder, IsAPermutation) {
  const auto mesh = cm::shuffle_vertices(
      cm::make_rect_mesh(20, 20, 1.0, 1.0, 0.2, 3), 7);
  const auto order = cm::spatial_order(mesh);
  ASSERT_EQ(order.size(), mesh.vertex_count());
  std::vector<bool> seen(order.size(), false);
  for (auto v : order) {
    ASSERT_LT(v, seen.size());
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(SpatialOrder, ConsecutivePositionsAreSpatiallyClose) {
  const auto mesh = cm::shuffle_vertices(
      cm::make_rect_mesh(30, 30, 1.0, 1.0, 0.1, 3), 7);
  const auto order = cm::spatial_order(mesh);
  // Mean hop distance along the curve should be far below the domain size.
  double acc = 0.0;
  for (std::size_t i = 1; i < order.size(); ++i) {
    acc += cm::distance(mesh.vertex(order[i - 1]), mesh.vertex(order[i]));
  }
  EXPECT_LT(acc / static_cast<double>(order.size() - 1), 0.15);
}

TEST(SpatialOrder, DeterministicAcrossCalls) {
  const auto mesh = cm::make_disk_mesh(8, 40, 1.0, 0.1, 5);
  EXPECT_EQ(cm::spatial_order(mesh), cm::spatial_order(mesh));
}

TEST(ChunkIndex, SerializeRoundTripAndIntersection) {
  cc::ChunkIndex idx;
  idx.chunks.push_back({0, 10, {{0, 0}, {1, 1}}});
  idx.chunks.push_back({10, 10, {{2, 2}, {3, 3}}});
  cu::ByteWriter w;
  idx.serialize(w);
  cu::ByteReader r(w.view());
  const auto copy = cc::ChunkIndex::deserialize(r);
  ASSERT_EQ(copy.chunks.size(), 2u);
  EXPECT_EQ(copy.chunks[1].start, 10u);
  EXPECT_EQ(copy.chunks[1].bbox.hi.x, 3.0);

  EXPECT_EQ(idx.intersecting({{0.5, 0.5}, {0.6, 0.6}}),
            (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(idx.intersecting({{2.5, 2.5}, {2.6, 2.6}}),
            (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(idx.intersecting({{0.5, 0.5}, {2.5, 2.5}}),
            (std::vector<std::uint32_t>{0, 1}));
  EXPECT_TRUE(idx.intersecting({{10, 10}, {11, 11}}).empty());
}

TEST(ChunkedDeltas, FullRefineMatchesUnchunked) {
  // Chunked storage is an encoding detail: a full refine must restore the
  // same values as the monolithic layout.
  const auto mesh = cm::shuffle_vertices(
      cm::make_annulus_mesh(12, 72, 0.5, 1.0, 0.1, 9), 4);
  const auto values = bump_field(mesh, {0.0, 0.8}, 0.08);
  auto t1 = tiers();
  auto t2 = tiers();
  cc::RefactorConfig mono, chunked;
  mono.levels = chunked.levels = 3;
  mono.codec = chunked.codec = "fpc";  // lossless: outputs comparable exactly
  chunked.delta_chunks = 16;
  cc::refactor_and_write(t1, "m.bp", "v", mesh, values, mono);
  cc::refactor_and_write(t2, "c.bp", "v", mesh, values, chunked);
  cc::ProgressiveReader rm(t1, "m.bp", "v");
  cc::ProgressiveReader rc(t2, "c.bp", "v");
  rm.refine_to(0);
  rc.refine_to(0);
  ASSERT_EQ(rm.values().size(), rc.values().size());
  for (std::size_t i = 0; i < rm.values().size(); ++i) {
    EXPECT_EQ(rm.values()[i], rc.values()[i]) << i;
  }
  EXPECT_FALSE(rc.partially_refined());
}

TEST(RoiRefine, AccurateInsideEstimateOutside) {
  const auto mesh = cm::shuffle_vertices(
      cm::make_rect_mesh(50, 50, 2.0, 2.0, 0.1, 13), 8);
  const cm::Vec2 feature{1.5, 1.5};
  const auto values = bump_field(mesh, feature, 0.12);
  auto h = tiers();
  cc::RefactorConfig config;
  config.levels = 2;
  config.codec = "zfp";
  config.error_bound = 1e-7;
  config.delta_chunks = 32;
  cc::refactor_and_write(h, "roi.bp", "v", mesh, values, config);

  const cm::Aabb roi{{1.2, 1.2}, {1.8, 1.8}};
  cc::ProgressiveReader reader(h, "roi.bp", "v");
  reader.refine_region(roi);
  EXPECT_TRUE(reader.partially_refined());
  EXPECT_TRUE(reader.at_full_accuracy());
  ASSERT_EQ(reader.values().size(), values.size());

  double inside_err = 0.0, outside_err = 0.0;
  std::size_t inside_n = 0;
  for (cm::VertexId v = 0; v < mesh.vertex_count(); ++v) {
    const auto p = mesh.vertex(v);
    const double err = std::abs(reader.values()[v] - values[v]);
    const bool inside = p.x >= roi.lo.x && p.x <= roi.hi.x &&
                        p.y >= roi.lo.y && p.y <= roi.hi.y;
    if (inside) {
      inside_err = std::max(inside_err, err);
      ++inside_n;
    } else {
      outside_err = std::max(outside_err, err);
    }
  }
  ASSERT_GT(inside_n, 20u);
  // Inside the ROI the restoration is delta-exact (codec bound only)...
  EXPECT_LE(inside_err, 2e-7);
  // ...outside it is estimate-only, so visibly less accurate near structure.
  EXPECT_GT(outside_err, 1e-3);
}

TEST(RoiRefine, ReadsFewerBytesThanFullRefine) {
  const auto mesh = cm::shuffle_vertices(
      cm::make_rect_mesh(60, 60, 2.0, 2.0, 0.1, 17), 8);
  const auto values = bump_field(mesh, {0.4, 0.4}, 0.15);
  auto h = tiers();
  cc::RefactorConfig config;
  config.levels = 2;
  config.codec = "zfp";
  config.error_bound = 1e-6;
  config.delta_chunks = 64;
  cc::refactor_and_write(h, "roi.bp", "v", mesh, values, config);

  // Shared geometry cache: only data (delta) bytes differ between the modes.
  const auto geometry = cc::GeometryCache::load(h, "roi.bp", "v");
  cc::ProgressiveReader full(h, "roi.bp", "v", &geometry);
  const auto full_step = full.refine();
  cc::ProgressiveReader focused(h, "roi.bp", "v", &geometry);
  const auto roi_step = focused.refine_region({{0.2, 0.2}, {0.6, 0.6}});
  // Compare the refinement step itself (both readers paid the same base
  // read): the ROI fetches a handful of chunks instead of the whole delta.
  EXPECT_LT(roi_step.bytes_read, full_step.bytes_read / 2);
  EXPECT_LT(focused.cumulative().io_seconds, full.cumulative().io_seconds);
}

TEST(RoiRefine, UnchunkedVariableFallsBackToFullRefine) {
  const auto mesh = cm::make_rect_mesh(20, 20, 1.0, 1.0, 0.1, 19);
  const auto values = bump_field(mesh, {0.5, 0.5}, 0.2);
  auto h = tiers();
  cc::RefactorConfig config;
  config.levels = 2;
  config.codec = "fpc";
  cc::refactor_and_write(h, "mono.bp", "v", mesh, values, config);
  cc::ProgressiveReader reader(h, "mono.bp", "v");
  reader.refine_region({{0.4, 0.4}, {0.6, 0.6}});
  EXPECT_TRUE(reader.at_full_accuracy());
  EXPECT_FALSE(reader.partially_refined());  // full fallback applied all data
  EXPECT_LE(cu::max_abs_error(values, reader.values()), 1e-13);
}

TEST(RoiRefine, WorksWithGeometryCache) {
  const auto mesh = cm::shuffle_vertices(
      cm::make_annulus_mesh(14, 84, 0.5, 1.0, 0.1, 23), 6);
  const auto values = bump_field(mesh, {0.8, 0.0}, 0.1);
  auto h = tiers();
  cc::RefactorConfig config;
  config.levels = 3;
  config.codec = "zfp";
  config.error_bound = 1e-7;
  config.delta_chunks = 24;
  cc::refactor_and_write(h, "gc.bp", "v", mesh, values, config);
  const auto geometry = cc::GeometryCache::load(h, "gc.bp", "v");
  cc::ProgressiveReader reader(h, "gc.bp", "v", &geometry);
  reader.refine_region({{0.6, -0.2}, {1.0, 0.2}});
  reader.refine_region({{0.6, -0.2}, {1.0, 0.2}});
  EXPECT_TRUE(reader.at_full_accuracy());
  // The feature region restored accurately through both regional steps.
  double feature_err = 0.0;
  for (cm::VertexId v = 0; v < mesh.vertex_count(); ++v) {
    const auto p = mesh.vertex(v);
    if (p.x >= 0.65 && p.x <= 0.95 && std::abs(p.y) <= 0.15) {
      feature_err = std::max(feature_err,
                             std::abs(reader.values()[v] - values[v]));
    }
  }
  EXPECT_LE(feature_err, 5e-7);
}

// ------------------------------------------- partial-flag lifecycle (fix) --

TEST(RoiRefine, FullRefineAfterRegionalBackfillsAndClearsFlag) {
  // Regression: partially_refined() used to latch forever. A full refine()
  // after a regional step must first backfill the delta chunks the ROI
  // skipped (making that level exact again) and then clear the flag.
  const auto mesh = cm::shuffle_vertices(
      cm::make_rect_mesh(40, 40, 2.0, 2.0, 0.1, 29), 8);
  const auto values = bump_field(mesh, {1.6, 1.6}, 0.12);
  auto h = tiers();
  cc::RefactorConfig config;
  config.levels = 3;
  config.codec = "fpc";  // lossless: restored values comparable bitwise
  config.delta_chunks = 16;
  cc::refactor_and_write(h, "bf.bp", "v", mesh, values, config);

  cc::ProgressiveReader reader(h, "bf.bp", "v");
  reader.refine_region({{1.3, 1.3}, {1.9, 1.9}});  // partial coverage
  ASSERT_TRUE(reader.partially_refined());
  const std::uint32_t after_roi = reader.current_level();

  const auto backfill_step = reader.refine();  // backfill + next level
  EXPECT_FALSE(reader.partially_refined());
  EXPECT_EQ(reader.current_level(), after_roi - 1);
  EXPECT_GT(backfill_step.bytes_read, 0u);

  // The backfilled state is bitwise the state of a reader that never took
  // the regional detour.
  auto h2 = tiers();
  cc::refactor_and_write(h2, "bf.bp", "v", mesh, values, config);
  cc::ProgressiveReader straight(h2, "bf.bp", "v");
  straight.refine_to(reader.current_level());
  ASSERT_EQ(reader.values().size(), straight.values().size());
  for (std::size_t i = 0; i < reader.values().size(); ++i) {
    ASSERT_EQ(reader.values()[i], straight.values()[i]) << "vertex " << i;
  }
}

TEST(RoiRefine, FullCoverageRoiLeavesPartialFlagClear) {
  // An ROI covering every chunk skips nothing: no flag, nothing to backfill.
  const auto mesh = cm::shuffle_vertices(
      cm::make_rect_mesh(30, 30, 1.0, 1.0, 0.1, 31), 8);
  const auto values = bump_field(mesh, {0.5, 0.5}, 0.2);
  auto h = tiers();
  cc::RefactorConfig config;
  config.levels = 2;
  config.codec = "fpc";
  config.delta_chunks = 8;
  cc::refactor_and_write(h, "fc.bp", "v", mesh, values, config);

  cc::ProgressiveReader reader(h, "fc.bp", "v");
  reader.refine_region({{-10.0, -10.0}, {10.0, 10.0}});
  EXPECT_FALSE(reader.partially_refined());
  EXPECT_TRUE(reader.at_full_accuracy());
  EXPECT_LE(cu::max_abs_error(values, reader.values()), 1e-13);
}

TEST(RoiRefine, StackedPartialRegionsStaySticky) {
  // Two partial regional steps stack estimate-only regions from different
  // levels; no single backfill can reconcile that, so the flag stays set.
  const auto mesh = cm::shuffle_vertices(
      cm::make_rect_mesh(40, 40, 2.0, 2.0, 0.1, 37), 8);
  const auto values = bump_field(mesh, {0.5, 0.5}, 0.15);
  auto h = tiers();
  cc::RefactorConfig config;
  config.levels = 3;
  config.codec = "zfp";
  config.error_bound = 1e-7;
  config.delta_chunks = 16;
  cc::refactor_and_write(h, "st.bp", "v", mesh, values, config);

  cc::ProgressiveReader reader(h, "st.bp", "v");
  reader.refine_region({{0.2, 0.2}, {0.8, 0.8}});
  ASSERT_TRUE(reader.partially_refined());
  reader.refine_region({{0.3, 0.3}, {0.7, 0.7}});
  EXPECT_TRUE(reader.at_full_accuracy());
  EXPECT_TRUE(reader.partially_refined());  // sticky by design once stacked
}
