// Elastic-topology suite (PR 8): runtime attach/detach of fabric nodes and
// storage tiers, incremental directory rebalancing with background
// migration, residency sets, the canopus::Options consolidation, and the
// Pipeline control plane (attach_node/drain/detach/rebalance/topology).
//
// The two regression pins ISSUE.md asks for live here:
//   * a query planned after detach_node never routes to the removed node
//     (Serve.QueryAfterDetachNeverRoutesToRemovedNode);
//   * a post-rebalance read cannot be served from a stale owner's retired
//     copy (Fabric.AttachNodeMigratesExactlyOwnerChangedChunks asserts the
//     losing node's copy is gone after cutover and reads stay bitwise-
//     identical).
//
// Randomized cases derive their seeds from CANOPUS_TEST_SEED (see
// tests/test_support.hpp) and print the seed on failure.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "core/canopus.hpp"
#include "core/geometry_cache.hpp"
#include "core/options.hpp"
#include "core/pipeline.hpp"
#include "core/topology.hpp"
#include "fabric/chunk_directory.hpp"
#include "fabric/fabric.hpp"
#include "mesh/generators.hpp"
#include "serve/query_scheduler.hpp"
#include "storage/fault.hpp"
#include "storage/hierarchy.hpp"
#include "test_support.hpp"

namespace cc = canopus::core;
namespace cf = canopus::fabric;
namespace cm = canopus::mesh;
namespace cs = canopus::storage;
namespace cv = canopus::serve;

using canopus::Status;
using canopus::StatusCode;
using canopus::util::Bytes;

namespace {

cm::Field smooth_field(const cm::TriMesh& mesh) {
  cm::Field f(mesh.vertex_count());
  for (cm::VertexId v = 0; v < mesh.vertex_count(); ++v) {
    const auto p = mesh.vertex(v);
    f[v] = std::sin(p.x * 2.0) * std::cos(p.y * 3.0) + 0.2 * p.y;
  }
  return f;
}

cc::RefactorConfig refactor_config() {
  cc::RefactorConfig config;
  config.levels = 3;
  config.codec = "zfp";
  config.error_bound = 1e-6;
  config.delta_chunks = 8;
  return config;
}

/// A refactored dataset staged in an unconstrained hierarchy, ready to be
/// imported into fabrics.
struct Staged {
  cs::StorageHierarchy staging{{cs::tmpfs_spec(256 << 20)}};
  cm::TriMesh mesh = cm::make_annulus_mesh(16, 100, 0.5, 1.0, 0.1, 7);

  Staged() {
    cc::refactor_and_write(staging, "d.bp", "v", mesh, smooth_field(mesh),
                           refactor_config());
  }
};

std::vector<cs::TierSpec> roomy_node_tiers() {
  return {cs::tmpfs_spec(64 << 20), cs::lustre_spec(1 << 30)};
}

bool holds(const cs::StorageHierarchy& h, const std::string& key) {
  for (std::size_t t = 0; t < h.tier_count(); ++t) {
    if (h.tier(t).contains(key)) return true;
  }
  return false;
}

Bytes bytes_of(const std::string& text) {
  Bytes out(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    out[i] = static_cast<std::byte>(text[i]);
  }
  return out;
}

std::map<std::string, std::uint32_t> owners_of(const cf::ChunkDirectory& dir) {
  std::map<std::string, std::uint32_t> out;
  for (const auto& e : dir.snapshot()) out[e.key] = e.owner;
  return out;
}

}  // namespace

// --------------------------------------------- directory: incremental plans

TEST(ElasticDirectory, AttachPlanIsExactlyTheOwnerChangedEntries) {
  cf::ChunkDirectory dir(2, cf::Partition::kMortonRange);
  std::map<std::string, std::uint32_t> chunk_of;
  for (std::uint32_t c = 0; c < 16; ++c) {
    const std::string key = "d.bp/v/delta/1/" + std::to_string(c);
    chunk_of[key] = c;
    dir.assign(key, c, 16, 100 + c);
  }
  const auto before = owners_of(dir);
  const auto epoch_before = dir.epoch();

  const cf::RebalancePlan plan = dir.attach_node(2);
  EXPECT_EQ(plan.epoch, dir.epoch());
  EXPECT_GT(dir.epoch(), epoch_before);
  ASSERT_FALSE(plan.moves.empty());

  // Exactly the entries whose recomputed owner differs — and nothing else.
  std::set<std::string> planned;
  for (const auto& mv : plan.moves) {
    planned.insert(mv.key);
    EXPECT_EQ(mv.from, before.at(mv.key));
    EXPECT_NE(mv.to, mv.from);
    EXPECT_EQ(mv.to, dir.owner_for(mv.key, chunk_of.at(mv.key), 16))
        << "plan target must match the live partition for " << mv.key;
  }
  for (const auto& [key, owner] : before) {
    const bool changed = dir.owner_for(key, chunk_of.at(key), 16) != owner;
    EXPECT_EQ(planned.count(key) > 0, changed) << key;
    // Owners are not flipped by planning: reads keep resolving to the old
    // owner until the fabric commits each copy.
    EXPECT_EQ(dir.lookup(key)->owner, owner) << key;
  }

  // Cutover is per-key and immediate.
  const auto& mv = plan.moves.front();
  dir.commit_move(mv.key, mv.to);
  EXPECT_EQ(dir.lookup(mv.key)->owner, mv.to);
}

TEST(ElasticDirectory, DetachStopsNewPlacementButKeepsOldResolvable) {
  cf::ChunkDirectory dir(3, cf::Partition::kMortonRange);
  std::map<std::string, std::uint32_t> chunk_of;
  for (std::uint32_t c = 0; c < 12; ++c) {
    const std::string key = "d.bp/v/delta/1/" + std::to_string(c);
    chunk_of[key] = c;
    dir.assign(key, c, 12, 64);
  }
  const auto before = owners_of(dir);

  const cf::RebalancePlan plan = dir.detach_node(1);
  EXPECT_FALSE(dir.is_active(1));
  EXPECT_EQ(dir.active_nodes(), (std::vector<std::uint32_t>{0, 2}));

  // Every entry node 1 owned is planned off it; until commit, lookups still
  // find the old copy, but the replica never points at the detached node.
  for (const auto& [key, owner] : before) {
    const auto loc = dir.lookup(key);
    ASSERT_TRUE(loc.has_value());
    EXPECT_EQ(loc->owner, owner);
    if (loc->replica.has_value()) {
      EXPECT_NE(*loc->replica, 1u);
    }
    EXPECT_NE(dir.owner_for(key, chunk_of.at(key), 12), 1u);
  }
  std::size_t owned_by_victim = 0;
  for (const auto& [key, owner] : before) {
    if (owner == 1) ++owned_by_victim;
  }
  ASSERT_GT(owned_by_victim, 0u);
  std::size_t planned_off_victim = 0;
  for (const auto& mv : plan.moves) {
    if (mv.from == 1) ++planned_off_victim;
  }
  EXPECT_EQ(planned_off_victim, owned_by_victim);

  // The last active node cannot be detached.
  dir.detach_node(2);
  EXPECT_THROW(dir.detach_node(0), canopus::Error);
}

TEST(ElasticDirectory, ResidencyRestrictsOwnersWithActiveFallback) {
  cf::ChunkDirectory dir(4, cf::Partition::kMortonRange);
  dir.set_residency("d.bp/v/", {1, 3});
  for (std::uint32_t c = 0; c < 16; ++c) {
    const auto owner = dir.assign("d.bp/v/delta/1/" + std::to_string(c), c, 16, 8);
    EXPECT_TRUE(owner == 1 || owner == 3) << owner;
  }
  // Unmatched prefixes stay unrestricted.
  EXPECT_TRUE(dir.residency_for("other.bp/x").empty());
  EXPECT_EQ(dir.residency_for("d.bp/v/base"),
            (std::vector<std::uint32_t>{1, 3}));

  // A residency set whose nodes all left the active set falls back to the
  // full active set — keys never become unownable.
  dir.detach_node(1);
  dir.detach_node(3);
  const auto fallback = dir.owner_for("d.bp/v/base", 0, 1);
  EXPECT_TRUE(fallback == 0 || fallback == 2) << fallback;
  EXPECT_TRUE(dir.residency_for("d.bp/v/base").empty());

  // Epoch moves on residency edits too (cost models must re-plan), but
  // commit_move never bumps it.
  const auto e = dir.epoch();
  dir.set_residency("d.bp/v/", {});
  EXPECT_GT(dir.epoch(), e);
  dir.assign("k", 0, 1, 1);
  const auto e2 = dir.epoch();
  dir.commit_move("k", dir.active_nodes().front());
  EXPECT_EQ(dir.epoch(), e2);
}

// ------------------------------------------------ hierarchy: elastic tiers

TEST(ElasticTiers, DetachTierDrainsEveryObjectBitwise) {
  cs::StorageHierarchy h({cs::tmpfs_spec(1 << 20), cs::lustre_spec(8 << 20)});
  std::map<std::string, Bytes> expected;
  for (int i = 0; i < 8; ++i) {
    const std::string key = "obj/" + std::to_string(i);
    expected[key] = bytes_of(std::string(1000 + i, static_cast<char>('a' + i)));
    h.place(key, expected[key]);
  }
  ASSERT_GT(h.tier(0).used_bytes(), 0u);

  const auto drained = h.detach_tier(0);
  EXPECT_FALSE(drained.empty());
  EXPECT_EQ(h.tier_count(), 1u);
  EXPECT_EQ(h.tier(0).spec().name, "lustre");
  for (const auto& [key, payload] : expected) {
    Bytes got;
    h.read(key, got);
    EXPECT_EQ(got, payload) << key;
  }

  // The only remaining tier cannot be detached.
  EXPECT_THROW(h.detach_tier(0), canopus::Error);

  // Re-attaching a fast tier at the front makes it the placement target
  // again.
  const auto idx = h.attach_tier(cs::tmpfs_spec(1 << 20), 0);
  EXPECT_EQ(idx, 0u);
  EXPECT_EQ(h.tier(0).spec().name, "tmpfs");
  h.place("obj/new", bytes_of("fresh"));
  EXPECT_TRUE(h.tier(0).contains("obj/new"));
}

TEST(ElasticTiers, DetachRefusesWhenRemainingTiersCannotAbsorb) {
  cs::StorageHierarchy h({cs::tmpfs_spec(1 << 20), cs::tmpfs_spec(2 << 10)});
  h.place("big", Bytes(512 << 10));  // fits tier 0 only
  EXPECT_THROW(h.detach_tier(0), cs::CapacityError);
  // The object is still readable somewhere after the refused drain.
  Bytes got;
  h.read("big", got);
  EXPECT_EQ(got.size(), 512u << 10);
}

TEST(ElasticTiers, TierResidencyPinsPlacementByName) {
  cs::StorageHierarchy h({cs::tmpfs_spec(4 << 20), cs::lustre_spec(16 << 20)});
  h.set_tier_residency("cold/", {"lustre"});

  const auto [cold_tier, cold_io] = h.place("cold/a", bytes_of("cold bytes"));
  EXPECT_EQ(h.tier(cold_tier).spec().name, "lustre");
  const auto [hot_tier, hot_io] = h.place("hot/a", bytes_of("hot bytes"));
  EXPECT_EQ(h.tier(hot_tier).spec().name, "tmpfs");
  (void)cold_io;
  (void)hot_io;

  EXPECT_EQ(h.resident_tiers("cold/a"), (std::vector<std::size_t>{1}));
  EXPECT_TRUE(h.resident_tiers("hot/a").empty());  // unrestricted

  // Naming only tiers that are gone degrades to unrestricted placement
  // instead of wedging writes.
  h.set_tier_residency("ghost/", {"nvram"});
  const auto [ghost_tier, ghost_io] = h.place("ghost/a", bytes_of("x"));
  EXPECT_EQ(h.tier(ghost_tier).spec().name, "tmpfs");
  (void)ghost_io;
}

// ------------------------------------------------- fabric: live attach/drain

TEST(ElasticFabric, AttachNodeMigratesExactlyOwnerChangedChunks) {
  Staged data;
  cf::FabricOptions fo;
  fo.nodes = 2;
  cf::Fabric fabric(fo, roomy_node_tiers());
  fabric.import_container(data.staging, "d.bp");

  canopus::Options popt;
  popt.parallel.threads = 1;
  popt.parallel.read_ahead = false;
  canopus::ReadRequest rreq;
  rreq.path = "d.bp";
  rreq.var = "v";

  cm::Field reference;
  {
    canopus::Pipeline pipeline(fabric.node(0), popt);
    std::unique_ptr<canopus::ReadSession> session;
    auto st = pipeline.open_session(rreq, &session);
    if (st.ok()) st = session->refine_to(0);
    ASSERT_TRUE(st.ok()) << st.to_string();
    reference = session->values();
  }

  const auto before = owners_of(fabric.directory());
  const auto stats_before = fabric.stats();
  const auto epoch_before = fabric.topology_epoch();

  const std::uint32_t id = fabric.attach_node(/*background=*/true);
  EXPECT_EQ(id, 2u);
  const cf::MigrationReport report = fabric.wait_for_migration();
  EXPECT_FALSE(report.superseded);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_GT(fabric.topology_epoch(), epoch_before);

  // fabric.migrations == exactly the chunks whose owner changed.
  const auto after = owners_of(fabric.directory());
  std::size_t changed = 0;
  for (const auto& [key, owner] : before) {
    if (after.at(key) != owner) ++changed;
  }
  ASSERT_GT(changed, 0u);
  EXPECT_EQ(report.chunks_moved, changed);
  EXPECT_EQ(fabric.stats().migrations - stats_before.migrations, changed);

  // Stale-owner regression: after cutover the losing node's primary copy is
  // retired (its cache entries with it), and the new owner holds the chunk —
  // a post-rebalance read can only be served from the current owner or its
  // replica, never the stale copy.
  for (const auto& [key, owner] : before) {
    if (after.at(key) == owner) continue;
    EXPECT_TRUE(holds(fabric.node(after.at(key)), key)) << key;
    EXPECT_FALSE(holds(fabric.node(owner), key))
        << "stale copy survived migration: " << key;
  }

  // Reads after the topology change are bitwise-identical.
  for (std::size_t n = 0; n < fabric.node_count(); ++n) {
    canopus::Pipeline pipeline(fabric.node(n), popt);
    std::unique_ptr<canopus::ReadSession> session;
    auto st = pipeline.open_session(rreq, &session);
    if (st.ok()) st = session->refine_to(0);
    ASSERT_TRUE(st.usable()) << "node " << n << ": " << st.to_string();
    ASSERT_TRUE(st.ok()) << "node " << n << ": " << st.to_string();
    const auto& values = session->values();
    ASSERT_EQ(values.size(), reference.size());
    for (std::size_t i = 0; i < values.size(); ++i) {
      ASSERT_EQ(values[i], reference[i]) << "node " << n << " i=" << i;
    }
  }
}

TEST(ElasticFabric, DetachUnderRacingReadsAndCorruptionLosesNothing) {
  // The ISSUE.md sweep: a node is detached while sessions race full-accuracy
  // reads, and a seeded fault injector corrupts reads on the leaving node —
  // including migration copy reads. Zero failed queries, fields bitwise-
  // identical to a healthy reference, and the drained node owns nothing.
  const std::uint64_t seed = canopus::test::test_seed();
  std::mt19937_64 rng(seed ^ 0xe1a5ull);
  constexpr std::size_t kNodes = 3;
  constexpr std::size_t kSessions = 4;

  Staged data;
  cf::FabricOptions fo;
  fo.nodes = kNodes;

  canopus::Options popt;
  popt.parallel.threads = 1;
  popt.parallel.read_ahead = false;
  canopus::ReadRequest rreq;
  rreq.path = "d.bp";
  rreq.var = "v";

  cm::Field reference;
  {
    cf::Fabric fabric(fo, roomy_node_tiers());
    fabric.import_container(data.staging, "d.bp");
    const auto geometry = cc::GeometryCache::load(fabric.node(0), "d.bp", "v");
    rreq.geometry = &geometry;
    canopus::Pipeline pipeline(fabric.node(0), popt);
    std::unique_ptr<canopus::ReadSession> session;
    auto st = pipeline.open_session(rreq, &session);
    if (st.ok()) st = session->refine_to(0);
    ASSERT_TRUE(st.ok()) << st.to_string() << " seed=" << seed;
    reference = session->values();
    rreq.geometry = nullptr;
  }

  cf::Fabric fabric(fo, roomy_node_tiers());
  fabric.import_container(data.staging, "d.bp");
  const auto geometry = cc::GeometryCache::load(fabric.node(0), "d.bp", "v");
  rreq.geometry = &geometry;

  const auto victim = static_cast<std::uint32_t>(rng() % kNodes);
  // Corrupt a fraction of the victim's reads: racing sessions and the
  // migration's copy reads both hit the CRC check and retry (or fall back
  // to the replica). The stream is seeded, so the sweep is reproducible.
  {
    auto injector = std::make_shared<cs::FaultInjector>(seed ^ 0xc0de);
    cs::FaultProfile profile;
    profile.corrupt = 0.2;
    injector->set_profile(0, profile);
    injector->set_profile(1, profile);
    fabric.node(victim).attach_fault_injector(std::move(injector));
  }

  std::vector<std::unique_ptr<canopus::Pipeline>> pipelines;
  for (std::size_t i = 0; i < kNodes; ++i) {
    if (i == victim) continue;
    pipelines.push_back(
        std::make_unique<canopus::Pipeline>(fabric.node(i), popt));
  }

  std::vector<std::unique_ptr<canopus::ReadSession>> sessions(kSessions);
  std::vector<Status> statuses(kSessions);
  cf::MigrationReport report;
  {
    std::vector<std::thread> clients;
    clients.reserve(kSessions + 1);
    for (std::size_t s = 0; s < kSessions; ++s) {
      clients.emplace_back([&, s] {
        auto& pipeline = *pipelines[s % pipelines.size()];
        auto st = pipeline.open_session(rreq, &sessions[s]);
        if (st.ok()) st = sessions[s]->refine_to(0);
        statuses[s] = st;
      });
    }
    clients.emplace_back([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      report = fabric.detach_node(victim);
    });
    for (auto& client : clients) client.join();
  }

  // Zero failed queries: every racing session completed at full accuracy,
  // bitwise-identical to the healthy reference.
  for (std::size_t s = 0; s < kSessions; ++s) {
    ASSERT_TRUE(statuses[s].ok())
        << "session " << s << ": " << statuses[s].to_string()
        << " seed=" << seed;
    const auto& values = sessions[s]->values();
    ASSERT_EQ(values.size(), reference.size());
    for (std::size_t i = 0; i < values.size(); ++i) {
      ASSERT_EQ(values[i], reference[i])
          << "session " << s << " i=" << i << " seed=" << seed;
    }
  }

  // The drain completed: nothing is owned by or resident on the victim,
  // and it is out of the active set for good.
  EXPECT_EQ(report.failed, 0u) << "seed=" << seed;
  EXPECT_FALSE(fabric.attached(victim));
  EXPECT_FALSE(fabric.directory().is_active(victim));
  // owned_bytes() is sized by the highest id that is active or still owns
  // entries — a fully drained top id is past the end, which is the answer.
  const auto owned = fabric.directory().owned_bytes();
  EXPECT_EQ(victim < owned.size() ? owned[victim] : 0u, 0u);
  for (const auto& e : fabric.directory().snapshot()) {
    EXPECT_NE(e.owner, victim) << e.key;
  }

  // And reads after the detach still serve, bitwise-identical.
  {
    canopus::Pipeline pipeline(fabric.node(victim == 0 ? 1 : 0), popt);
    std::unique_ptr<canopus::ReadSession> session;
    auto st = pipeline.open_session(rreq, &session);
    if (st.ok()) st = session->refine_to(0);
    ASSERT_TRUE(st.ok()) << st.to_string() << " seed=" << seed;
    const auto& values = session->values();
    for (std::size_t i = 0; i < values.size(); ++i) {
      ASSERT_EQ(values[i], reference[i]) << "i=" << i << " seed=" << seed;
    }
  }
}

// ------------------------------------------- serve: routing after topology

TEST(ElasticServe, QueryAfterDetachNeverRoutesToRemovedNode) {
  Staged data;
  cf::FabricOptions fo;
  fo.nodes = 3;
  cf::Fabric fabric(fo, roomy_node_tiers());
  fabric.import_container(data.staging, "d.bp");

  auto options = canopus::Options{}.with_threads(1).with_serve(
      cv::ServeConfig{.workers = 2, .queue_limit = 16});
  canopus::Pipeline pipeline(fabric.node(0), options);
  ASSERT_TRUE(pipeline.attach_fabric(&fabric).ok());
  ASSERT_EQ(pipeline.serving_fabric(), &fabric);

  cv::QueryRequest query;
  query.path = "d.bp";
  query.var = "v";
  query.target_level = 0;
  query.deadline_seconds = 1e6;  // no budget pressure; routing is the test

  cv::QueryResult warm;
  ASSERT_TRUE(pipeline.submit_query(query, &warm).usable());
  ASSERT_GE(warm.shard, 0);

  // Detach the node the router favored; after the control-plane detach no
  // query may route there, ever.
  const auto victim = static_cast<std::uint32_t>(warm.shard);
  const auto epoch_before = pipeline.topology().epoch;
  ASSERT_TRUE(pipeline.detach_node(victim).ok());

  const canopus::Topology topo = pipeline.topology();
  EXPECT_GT(topo.epoch, epoch_before);
  ASSERT_EQ(topo.nodes.size(), 3u);
  EXPECT_FALSE(topo.nodes[victim].active);
  EXPECT_EQ(topo.nodes[victim].owned_bytes, 0u);
  EXPECT_EQ(topo.active_nodes(), 2u);
  EXPECT_EQ(topo.migrations, fabric.stats().migrations);
  EXPECT_GT(topo.chunk_groups, 0u);

  for (int i = 0; i < 8; ++i) {
    cv::QueryResult result;
    const Status st = pipeline.submit_query(query, &result);
    ASSERT_TRUE(st.usable()) << st.to_string();
    ASSERT_GE(result.shard, 0);
    EXPECT_NE(static_cast<std::uint32_t>(result.shard), victim)
        << "query " << i << " routed to the detached node";
    EXPECT_EQ(result.topology_epoch, topo.epoch);
  }
}

// ------------------------------------------ facade: Options + control plane

TEST(ElasticOptions, BuilderChainsAndAliasIsSameType) {
  static_assert(std::is_same_v<canopus::PipelineOptions, canopus::Options>,
                "PipelineOptions must remain an alias of Options");
  const auto options = canopus::Options{}
                           .with_threads(3)
                           .with_cache({.budget_bytes = 1 << 20, .shards = 2})
                           .with_serve({.workers = 1})
                           .with_io({.depth = 4, .batch = 2})
                           .with_fabric({.nodes = 2})
                           .with_retry({.max_attempts = 2})
                           .with_trace("t.json");
  EXPECT_EQ(options.parallel.threads, 3u);
  ASSERT_TRUE(options.cache.has_value());
  EXPECT_EQ(options.cache->budget_bytes, 1u << 20);
  ASSERT_TRUE(options.serve.has_value());
  EXPECT_EQ(options.serve->workers, 1u);
  EXPECT_EQ(options.io.depth, 4u);
  ASSERT_TRUE(options.fabric.has_value());
  EXPECT_EQ(options.fabric->nodes, 2u);
  ASSERT_TRUE(options.retry.has_value());
  EXPECT_EQ(options.retry->max_attempts, 2u);
  ASSERT_TRUE(options.observability.has_value());
  EXPECT_TRUE(options.observability->enabled);
  EXPECT_EQ(options.observability->trace_path, "t.json");
  EXPECT_TRUE(options.check().ok());
}

TEST(ElasticOptions, ValidationNamesTheOffendingKnob) {
  {
    auto options = canopus::Options{}.with_serve({.workers = 0});
    const Status st = options.check();
    EXPECT_EQ(st.code, StatusCode::kInvalidArgument);
    EXPECT_NE(st.detail.find("serve.workers"), std::string::npos) << st.detail;
    EXPECT_THROW(options.validate(), canopus::Error);
  }
  {
    auto options = canopus::Options{}.with_fabric({.nodes = 0});
    const Status st = options.check();
    EXPECT_EQ(st.code, StatusCode::kInvalidArgument);
    EXPECT_NE(st.detail.find("fabric.nodes"), std::string::npos) << st.detail;
  }
  {
    auto options = canopus::Options{}.with_cache({.budget_bytes = 0});
    EXPECT_EQ(options.check().code, StatusCode::kInvalidArgument);
  }
  {
    canopus::Options options;
    options.io.batch = 0;
    EXPECT_EQ(options.check().code, StatusCode::kInvalidArgument);
  }
  // A bad option surfaces at Pipeline construction (throwing ctor) and as
  // kInvalidArgument through the Status-returning load().
  cs::StorageHierarchy h({cs::tmpfs_spec(1 << 20)});
  EXPECT_THROW(
      canopus::Pipeline(h, canopus::Options{}.with_serve({.workers = 0})),
      canopus::Error);
}

TEST(ElasticFacade, LoadReturnsStatusInsteadOfThrowing) {
  std::unique_ptr<canopus::Pipeline> pipeline;
  EXPECT_EQ(canopus::Pipeline::load("does/not/exist.xml", &pipeline).code,
            StatusCode::kNotFound);
  EXPECT_EQ(canopus::Pipeline::load("x.xml", nullptr).code,
            StatusCode::kInvalidArgument);

  const char* path = "elastic_facade_config.xml";
  {
    std::FILE* f = std::fopen(path, "w");
    ASSERT_NE(f, nullptr);
    std::fputs(
        "<canopus-config>"
        "<storage><tier preset=\"tmpfs\" capacity=\"4MiB\"/></storage>"
        "<threads>1</threads>"
        "</canopus-config>",
        f);
    std::fclose(f);
  }
  const Status st = canopus::Pipeline::load(path, &pipeline);
  ASSERT_TRUE(st.ok()) << st.to_string();
  ASSERT_NE(pipeline, nullptr);
  EXPECT_EQ(pipeline->options().parallel.threads, 1u);

  // flush_trace is the Status spelling of flush_observability; with no sink
  // configured there is nothing to flush and that is kOk.
  std::string trace_path = "unset";
  EXPECT_TRUE(pipeline->flush_trace(&trace_path).ok());
  EXPECT_TRUE(trace_path.empty());
  std::remove(path);
}

TEST(ElasticFacade, ControlPlaneWithoutFabricReportsInvalidArgument) {
  cs::StorageHierarchy h({cs::tmpfs_spec(4 << 20), cs::lustre_spec(8 << 20)});
  canopus::Pipeline pipeline(h);
  EXPECT_EQ(pipeline.serving_fabric(), nullptr);
  EXPECT_EQ(pipeline.attach_node().code, StatusCode::kInvalidArgument);
  EXPECT_EQ(pipeline.drain_node(0).code, StatusCode::kInvalidArgument);
  EXPECT_EQ(pipeline.detach_node(0).code, StatusCode::kInvalidArgument);
  EXPECT_EQ(pipeline.rebalance().code, StatusCode::kInvalidArgument);
  EXPECT_EQ(pipeline.wait_for_rebalance().code, StatusCode::kInvalidArgument);

  // The single-node topology snapshot still describes the local hierarchy.
  const canopus::Topology topo = pipeline.topology();
  EXPECT_EQ(topo.epoch, 0u);
  ASSERT_EQ(topo.nodes.size(), 1u);
  EXPECT_EQ(topo.nodes[0].tiers,
            (std::vector<std::string>{"tmpfs", "lustre"}));
  EXPECT_EQ(topo.active_nodes(), 1u);
}

TEST(ElasticFacade, AttachDrainDetachRoundTripThroughPipeline) {
  Staged data;
  cf::FabricOptions fo;
  fo.nodes = 2;
  cf::Fabric fabric(fo, roomy_node_tiers());
  fabric.import_container(data.staging, "d.bp");

  canopus::Pipeline pipeline(fabric.node(0),
                             canopus::Options{}.with_threads(1));
  ASSERT_TRUE(pipeline.attach_fabric(&fabric).ok());

  std::uint32_t id = 0;
  ASSERT_TRUE(pipeline.attach_node(&id).ok());
  EXPECT_EQ(id, 2u);
  const Status migrated = pipeline.wait_for_rebalance();
  ASSERT_TRUE(migrated.ok()) << migrated.to_string();
  EXPECT_EQ(pipeline.topology().nodes.size(), 3u);
  EXPECT_EQ(pipeline.topology().active_nodes(), 3u);

  ASSERT_TRUE(pipeline.drain_node(id).ok());
  EXPECT_EQ(pipeline.topology().nodes[id].owned_bytes, 0u);
  ASSERT_TRUE(pipeline.detach_node(id).ok());
  EXPECT_EQ(pipeline.topology().active_nodes(), 2u);

  // Unknown / already-detached ids are caller bugs, not aborts.
  EXPECT_EQ(pipeline.detach_node(99).code, StatusCode::kInvalidArgument);
  EXPECT_EQ(pipeline.drain_node(id).code, StatusCode::kInvalidArgument);

  // rebalance() with nothing to do is kOk.
  const Status st = pipeline.rebalance();
  EXPECT_TRUE(st.ok()) << st.to_string();
}
