// Tests for the mesh substrate: geometry primitives, TriMesh invariants,
// generators, point location, edge-collapse decimation (Algorithm 1), and the
// multi-level cascade.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <numeric>

#include "mesh/cascade.hpp"
#include "mesh/decimate.hpp"
#include "mesh/generators.hpp"
#include "mesh/geometry.hpp"
#include "mesh/mesh_io.hpp"
#include "mesh/point_locator.hpp"
#include "mesh/tri_mesh.hpp"
#include "mesh/validate.hpp"
#include "util/rng.hpp"

namespace cm = canopus::mesh;
namespace cu = canopus::util;

namespace {

/// Smooth analytic test field evaluated at mesh vertices.
cm::Field make_field(const cm::TriMesh& mesh) {
  cm::Field f(mesh.vertex_count());
  for (cm::VertexId v = 0; v < mesh.vertex_count(); ++v) {
    const auto p = mesh.vertex(v);
    f[v] = std::sin(p.x * 1.7) * std::cos(p.y * 2.3) + 0.1 * p.x;
  }
  return f;
}

void expect_valid(const cm::TriMesh& mesh, const std::string& context) {
  const auto report = cm::validate(mesh);
  EXPECT_TRUE(report.ok) << context << ": "
                         << (report.problems.empty() ? "?" : report.problems[0]);
}

}  // namespace

// --------------------------------------------------------------- geometry --

TEST(Geometry, SignedAreaOrientation) {
  const cm::Vec2 a{0, 0}, b{1, 0}, c{0, 1};
  EXPECT_GT(cm::signed_area2(a, b, c), 0.0);  // CCW
  EXPECT_LT(cm::signed_area2(a, c, b), 0.0);  // CW
  EXPECT_DOUBLE_EQ(cm::triangle_area(a, b, c), 0.5);
}

TEST(Geometry, BarycentricAtVerticesAndCentroid) {
  const cm::Vec2 a{0, 0}, b{2, 0}, c{0, 2};
  auto w = cm::barycentric(a, a, b, c);
  EXPECT_NEAR(w[0], 1.0, 1e-12);
  w = cm::barycentric(c, a, b, c);
  EXPECT_NEAR(w[2], 1.0, 1e-12);
  const cm::Vec2 centroid = (a + b + c) / 3.0;
  w = cm::barycentric(centroid, a, b, c);
  for (double wi : w) EXPECT_NEAR(wi, 1.0 / 3.0, 1e-12);
}

TEST(Geometry, BarycentricWeightsSumToOne) {
  cu::Rng rng(3);
  const cm::Vec2 a{0.3, 0.1}, b{2.5, 0.4}, c{1.1, 3.3};
  for (int i = 0; i < 100; ++i) {
    const cm::Vec2 p{rng.uniform(-5, 5), rng.uniform(-5, 5)};
    const auto w = cm::barycentric(p, a, b, c);
    EXPECT_NEAR(w[0] + w[1] + w[2], 1.0, 1e-9);
    // Reconstruction property: p == wa*a + wb*b + wc*c.
    const cm::Vec2 q = a * w[0] + b * w[1] + c * w[2];
    EXPECT_NEAR(q.x, p.x, 1e-9);
    EXPECT_NEAR(q.y, p.y, 1e-9);
  }
}

TEST(Geometry, PointInTriangle) {
  const cm::Vec2 a{0, 0}, b{1, 0}, c{0, 1};
  EXPECT_TRUE(cm::point_in_triangle({0.25, 0.25}, a, b, c));
  EXPECT_TRUE(cm::point_in_triangle({0.5, 0.5}, a, b, c));  // on edge
  EXPECT_FALSE(cm::point_in_triangle({0.6, 0.6}, a, b, c));
  EXPECT_FALSE(cm::point_in_triangle({-0.1, 0.5}, a, b, c));
}

// ---------------------------------------------------------------- TriMesh --

TEST(TriMesh, BasicCountsAndEdges) {
  // Two triangles sharing an edge: 4 vertices, 5 edges, 2 faces.
  const std::vector<cm::Vec2> verts{{0, 0}, {1, 0}, {1, 1}, {0, 1}};
  const std::vector<cm::Triangle> tris{{{0, 1, 2}}, {{0, 2, 3}}};
  const cm::TriMesh mesh(verts, tris);
  EXPECT_EQ(mesh.vertex_count(), 4u);
  EXPECT_EQ(mesh.triangle_count(), 2u);
  EXPECT_EQ(mesh.edges().size(), 5u);
  EXPECT_EQ(mesh.boundary_edges().size(), 4u);
  EXPECT_DOUBLE_EQ(mesh.total_area(), 1.0);
}

TEST(TriMesh, NeighborsAndIncidence) {
  const std::vector<cm::Vec2> verts{{0, 0}, {1, 0}, {1, 1}, {0, 1}};
  const std::vector<cm::Triangle> tris{{{0, 1, 2}}, {{0, 2, 3}}};
  const cm::TriMesh mesh(verts, tris);
  EXPECT_EQ(mesh.vertex_neighbors()[0].size(), 3u);  // 1, 2, 3
  EXPECT_EQ(mesh.vertex_neighbors()[1].size(), 2u);  // 0, 2
  EXPECT_EQ(mesh.vertex_triangles()[0].size(), 2u);
  EXPECT_EQ(mesh.vertex_triangles()[1].size(), 1u);
}

TEST(TriMesh, RejectsBadTriangles) {
  const std::vector<cm::Vec2> verts{{0, 0}, {1, 0}, {1, 1}};
  EXPECT_THROW(cm::TriMesh(verts, {{{0, 1, 5}}}), canopus::Error);
  EXPECT_THROW(cm::TriMesh(verts, {{{0, 1, 1}}}), canopus::Error);
}

TEST(TriMesh, SerializeRoundTrip) {
  const auto mesh = cm::make_rect_mesh(7, 5, 2.0, 1.0, 0.2, 99);
  cu::ByteWriter w;
  mesh.serialize(w);
  cu::ByteReader r(w.view());
  const auto copy = cm::TriMesh::deserialize(r);
  EXPECT_TRUE(copy == mesh);
}

// ------------------------------------------------------------- generators --

TEST(Generators, RectMeshStructure) {
  const auto mesh = cm::make_rect_mesh(10, 8, 1.0, 1.0);
  EXPECT_EQ(mesh.vertex_count(), 11u * 9u);
  EXPECT_EQ(mesh.triangle_count(), 10u * 8u * 2u);
  expect_valid(mesh, "rect");
  EXPECT_NEAR(mesh.total_area(), 1.0, 1e-9);
  const auto report = cm::validate(mesh);
  EXPECT_EQ(report.euler_characteristic, 1);  // disk topology
}

TEST(Generators, RectMeshJitterStaysValid) {
  const auto mesh = cm::make_rect_mesh(20, 20, 1.0, 1.0, 0.3, 5);
  expect_valid(mesh, "jittered rect");
}

TEST(Generators, AnnulusTopology) {
  const auto mesh = cm::make_annulus_mesh(8, 64, 0.5, 1.0);
  expect_valid(mesh, "annulus");
  const auto report = cm::validate(mesh);
  EXPECT_EQ(report.euler_characteristic, 0);  // one hole
  EXPECT_EQ(mesh.vertex_count(), 9u * 64u);
}

TEST(Generators, DiskTopology) {
  const auto mesh = cm::make_disk_mesh(6, 32, 1.0);
  expect_valid(mesh, "disk");
  EXPECT_EQ(cm::validate(mesh).euler_characteristic, 1);
  // Area approaches pi for fine meshes; coarse polygon is smaller.
  EXPECT_NEAR(mesh.total_area(), M_PI, 0.1);
}

TEST(Generators, AirfoilHasHole) {
  const auto mesh =
      cm::make_airfoil_mesh(40, 24, 10.0, 6.0, 4.0, 3.0, 3.0, 1.2);
  expect_valid(mesh, "airfoil");
  EXPECT_EQ(cm::validate(mesh).euler_characteristic, 0);  // body hole
}

TEST(Generators, JitterIsDeterministicPerSeed) {
  const auto a = cm::make_rect_mesh(10, 10, 1.0, 1.0, 0.2, 42);
  const auto b = cm::make_rect_mesh(10, 10, 1.0, 1.0, 0.2, 42);
  const auto c = cm::make_rect_mesh(10, 10, 1.0, 1.0, 0.2, 43);
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

// ---------------------------------------------------------- point locator --

TEST(PointLocator, FindsContainingTriangleExactly) {
  const auto mesh = cm::make_rect_mesh(12, 12, 1.0, 1.0, 0.25, 3);
  const cm::PointLocator locator(mesh);
  cu::Rng rng(8);
  for (int i = 0; i < 500; ++i) {
    // Sample random points strictly inside the domain bulk.
    const cm::Vec2 p{rng.uniform(0.1, 0.9), rng.uniform(0.1, 0.9)};
    const auto loc = locator.locate(p);
    ASSERT_TRUE(loc.exact);
    const auto& tri = mesh.triangle(loc.triangle);
    EXPECT_TRUE(cm::point_in_triangle(p, mesh.vertex(tri.v[0]),
                                      mesh.vertex(tri.v[1]),
                                      mesh.vertex(tri.v[2]), 1e-9));
    // Weights reconstruct the point.
    const cm::Vec2 q = mesh.vertex(tri.v[0]) * loc.weights[0] +
                       mesh.vertex(tri.v[1]) * loc.weights[1] +
                       mesh.vertex(tri.v[2]) * loc.weights[2];
    EXPECT_NEAR(q.x, p.x, 1e-9);
    EXPECT_NEAR(q.y, p.y, 1e-9);
  }
}

TEST(PointLocator, MeshVerticesLocateToIncidentTriangle) {
  const auto mesh = cm::make_annulus_mesh(6, 48, 0.5, 1.0, 0.2, 4);
  const cm::PointLocator locator(mesh);
  for (cm::VertexId v = 0; v < mesh.vertex_count(); ++v) {
    const auto loc = locator.locate(mesh.vertex(v));
    const auto& tri = mesh.triangle(loc.triangle);
    const bool incident = tri.v[0] == v || tri.v[1] == v || tri.v[2] == v;
    EXPECT_TRUE(incident || loc.exact);
  }
}

TEST(PointLocator, OutsidePointFallsBackToNearest) {
  const auto mesh = cm::make_rect_mesh(4, 4, 1.0, 1.0);
  const cm::PointLocator locator(mesh);
  const auto loc = locator.locate({2.0, 2.0});
  EXPECT_FALSE(loc.exact);
  // Clamped weights still form a convex combination.
  EXPECT_NEAR(loc.weights[0] + loc.weights[1] + loc.weights[2], 1.0, 1e-12);
  for (double w : loc.weights) EXPECT_GE(w, 0.0);
}

TEST(PointLocator, InterpolationReproducesLinearField) {
  // A linear field interpolated with barycentric weights is exact.
  const auto mesh = cm::make_rect_mesh(9, 9, 1.0, 1.0, 0.2, 11);
  cm::Field f(mesh.vertex_count());
  for (cm::VertexId v = 0; v < mesh.vertex_count(); ++v) {
    const auto p = mesh.vertex(v);
    f[v] = 3.0 * p.x - 2.0 * p.y + 0.5;
  }
  const cm::PointLocator locator(mesh);
  cu::Rng rng(21);
  for (int i = 0; i < 200; ++i) {
    const cm::Vec2 p{rng.uniform(0.05, 0.95), rng.uniform(0.05, 0.95)};
    const auto loc = locator.locate(p);
    const auto& tri = mesh.triangle(loc.triangle);
    const double interp = f[tri.v[0]] * loc.weights[0] +
                          f[tri.v[1]] * loc.weights[1] +
                          f[tri.v[2]] * loc.weights[2];
    EXPECT_NEAR(interp, 3.0 * p.x - 2.0 * p.y + 0.5, 1e-9);
  }
}

// --------------------------------------------------------------- decimate --

TEST(Decimate, ReachesRequestedRatio) {
  const auto mesh = cm::make_rect_mesh(40, 40, 1.0, 1.0, 0.2, 6);
  const auto field = make_field(mesh);
  cm::DecimateOptions opt;
  opt.ratio = 2.0;
  const auto result = cm::decimate(mesh, field, opt);
  EXPECT_NEAR(result.achieved_ratio, 2.0, 0.1);
  EXPECT_EQ(result.values.size(), result.mesh.vertex_count());
  expect_valid(result.mesh, "decimated rect");
}

TEST(Decimate, AggressiveRatioStaysValid) {
  const auto mesh = cm::make_annulus_mesh(16, 96, 0.5, 1.0, 0.15, 2);
  const auto field = make_field(mesh);
  cm::DecimateOptions opt;
  opt.ratio = 16.0;
  const auto result = cm::decimate(mesh, field, opt);
  EXPECT_GT(result.achieved_ratio, 8.0);
  expect_valid(result.mesh, "16x annulus");
}

TEST(Decimate, PreservesValueRangeApproximately) {
  // Averaging can only contract the value range, never expand it.
  const auto mesh = cm::make_rect_mesh(30, 30, 1.0, 1.0);
  const auto field = make_field(mesh);
  const auto [lo0, hi0] = std::minmax_element(field.begin(), field.end());
  cm::DecimateOptions opt;
  opt.ratio = 4.0;
  const auto result = cm::decimate(mesh, field, opt);
  const auto [lo1, hi1] =
      std::minmax_element(result.values.begin(), result.values.end());
  EXPECT_GE(*lo1, *lo0 - 1e-12);
  EXPECT_LE(*hi1, *hi0 + 1e-12);
}

TEST(Decimate, ShortestFirstCollapsesShortEdges) {
  // After shortest-first decimation the minimum edge length should grow.
  const auto mesh = cm::make_rect_mesh(30, 30, 1.0, 1.0, 0.3, 17);
  auto min_edge = [](const cm::TriMesh& m) {
    double best = 1e300;
    for (const auto& e : m.edges()) {
      best = std::min(best, cm::distance(m.vertex(e.a), m.vertex(e.b)));
    }
    return best;
  };
  const double before = min_edge(mesh);
  cm::DecimateOptions opt;
  opt.ratio = 4.0;
  const auto result = cm::decimate(mesh, make_field(mesh), opt);
  EXPECT_GT(min_edge(result.mesh), before);
}

TEST(Decimate, RatioOneIsIdentityLike) {
  const auto mesh = cm::make_rect_mesh(10, 10, 1.0, 1.0);
  cm::DecimateOptions opt;
  opt.ratio = 1.0;
  const auto result = cm::decimate(mesh, make_field(mesh), opt);
  EXPECT_EQ(result.mesh.vertex_count(), mesh.vertex_count());
  EXPECT_EQ(result.collapses, 0u);
}

TEST(Decimate, FieldSizeMismatchThrows) {
  const auto mesh = cm::make_rect_mesh(4, 4, 1.0, 1.0);
  cm::Field wrong(3, 0.0);
  EXPECT_THROW(cm::decimate(mesh, wrong, {}), canopus::Error);
}

TEST(Decimate, RandomPriorityStillValid) {
  const auto mesh = cm::make_rect_mesh(25, 25, 1.0, 1.0, 0.2, 31);
  cm::DecimateOptions opt;
  opt.ratio = 4.0;
  opt.priority = cm::EdgePriority::kRandom;
  opt.seed = 77;
  const auto result = cm::decimate(mesh, make_field(mesh), opt);
  expect_valid(result.mesh, "random priority");
  EXPECT_GT(result.achieved_ratio, 3.0);
}

TEST(Decimate, GradientPriorityKeepsHighGradientRegions) {
  // Field with a sharp bump at the center: gradient-aware decimation should
  // keep more vertices near the bump than plain shortest-edge decimation.
  const auto mesh = cm::make_rect_mesh(40, 40, 1.0, 1.0);
  cm::Field f(mesh.vertex_count());
  for (cm::VertexId v = 0; v < mesh.vertex_count(); ++v) {
    const auto p = mesh.vertex(v);
    const double r2 = (p.x - 0.5) * (p.x - 0.5) + (p.y - 0.5) * (p.y - 0.5);
    f[v] = std::exp(-r2 / 0.002);
  }
  auto near_bump_count = [](const cm::TriMesh& m) {
    std::size_t n = 0;
    for (cm::VertexId v = 0; v < m.vertex_count(); ++v) {
      const auto p = m.vertex(v);
      if (std::abs(p.x - 0.5) < 0.12 && std::abs(p.y - 0.5) < 0.12) ++n;
    }
    return n;
  };
  cm::DecimateOptions plain;
  plain.ratio = 6.0;
  cm::DecimateOptions grad = plain;
  grad.priority = cm::EdgePriority::kGradientWeighted;
  grad.gradient_weight = 40.0;
  const auto rp = cm::decimate(mesh, f, plain);
  const auto rg = cm::decimate(mesh, f, grad);
  EXPECT_GE(near_bump_count(rg.mesh), near_bump_count(rp.mesh));
}

// ---------------------------------------------------------------- cascade --

TEST(Cascade, BuildsRequestedLevels) {
  const auto mesh = cm::make_annulus_mesh(12, 72, 0.5, 1.0, 0.1, 9);
  cm::CascadeOptions opt;
  opt.levels = 4;
  const auto cascade = cm::build_cascade(mesh, make_field(mesh), opt);
  ASSERT_EQ(cascade.level_count(), 4u);
  EXPECT_EQ(cascade.levels[0].mesh.vertex_count(), mesh.vertex_count());
  for (std::size_t l = 1; l < 4; ++l) {
    expect_valid(cascade.levels[l].mesh, "cascade level " + std::to_string(l));
    // Each level roughly halves the previous.
    const double step = static_cast<double>(cascade.levels[l - 1].mesh.vertex_count()) /
                        static_cast<double>(cascade.levels[l].mesh.vertex_count());
    EXPECT_NEAR(step, 2.0, 0.25) << "level " << l;
  }
  EXPECT_NEAR(cascade.decimation_ratio(3), 8.0, 1.5);
}

TEST(Cascade, PassStatsReported) {
  const auto mesh = cm::make_rect_mesh(20, 20, 1.0, 1.0);
  std::vector<cm::DecimateResult> stats;
  cm::CascadeOptions opt;
  opt.levels = 3;
  cm::build_cascade(mesh, make_field(mesh), opt, &stats);
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_GT(stats[0].collapses, 0u);
}

TEST(Cascade, SingleLevelIsOriginal) {
  const auto mesh = cm::make_rect_mesh(5, 5, 1.0, 1.0);
  cm::CascadeOptions opt;
  opt.levels = 1;
  const auto cascade = cm::build_cascade(mesh, make_field(mesh), opt);
  EXPECT_EQ(cascade.level_count(), 1u);
  EXPECT_TRUE(cascade.base().mesh == mesh);
}

// ---------------------------------------------------------------- mesh IO --

TEST(MeshIo, OffRoundTrip) {
  namespace fs = std::filesystem;
  const auto path = (fs::temp_directory_path() / "canopus_mesh_test.off").string();
  const auto mesh = cm::make_disk_mesh(4, 16, 2.0, 0.1, 12);
  cm::save_off(mesh, path);
  const auto loaded = cm::load_off(path);
  EXPECT_EQ(loaded.vertex_count(), mesh.vertex_count());
  EXPECT_EQ(loaded.triangle_count(), mesh.triangle_count());
  for (cm::VertexId v = 0; v < mesh.vertex_count(); ++v) {
    EXPECT_NEAR(loaded.vertex(v).x, mesh.vertex(v).x, 1e-12);
  }
  std::remove(path.c_str());
}

TEST(MeshIo, LoadMissingFileThrows) {
  EXPECT_THROW(cm::load_off("/nonexistent/path.off"), canopus::Error);
}

// ---------------------------------------------------------------- quality --

#include "mesh/quality.hpp"

TEST(Quality, RightIsoscelesGridAngles) {
  // A structured rect mesh splits squares into right isosceles triangles:
  // every min angle is exactly 45 degrees, aspect ratio sqrt(2)/... bounded.
  const auto mesh = cm::make_rect_mesh(8, 8, 1.0, 1.0);
  const auto q = cm::quality_stats(mesh);
  EXPECT_NEAR(q.min_angle_deg, 45.0, 1e-9);
  EXPECT_NEAR(q.mean_min_angle_deg, 45.0, 1e-9);
  EXPECT_EQ(q.sliver_count, 0u);
  EXPECT_LT(q.max_aspect_ratio, 2.01);
}

TEST(Quality, DetectsSlivers) {
  // One nearly-degenerate triangle.
  const std::vector<cm::Vec2> verts{{0, 0}, {1, 0}, {0.5, 0.001}};
  const cm::TriMesh mesh(verts, {{{0, 1, 2}}});
  const auto q = cm::quality_stats(mesh);
  EXPECT_LT(q.min_angle_deg, 1.0);
  EXPECT_EQ(q.sliver_count, 1u);
  EXPECT_GT(q.max_aspect_ratio, 100.0);
}

TEST(Quality, DecimationKeepsAnglesBounded) {
  // The link-condition + orientation guards must prevent decimation from
  // collapsing a healthy mesh into slivers, even at a deep ratio.
  const auto mesh = cm::make_annulus_mesh(16, 96, 0.5, 1.0, 0.15, 2);
  cm::DecimateOptions opt;
  opt.ratio = 16.0;
  const auto result = cm::decimate(mesh, make_field(mesh), opt);
  const auto q = cm::quality_stats(result.mesh);
  EXPECT_GT(q.min_angle_deg, 2.0);
  EXPECT_GT(q.mean_min_angle_deg, 25.0);
  EXPECT_EQ(q.sliver_count, 0u);
}

TEST(Quality, EmptyMeshThrows) {
  const cm::TriMesh empty;
  EXPECT_THROW(cm::quality_stats(empty), canopus::Error);
}
