// Parameterized property sweeps over the core invariants:
//   - decimation keeps meshes valid across mesh families, ratios, priorities
//   - lossy codecs honor every error bound on every signal family
//   - delta/restore is an exact inverse for every estimate mode and level
//   - refactor -> read round trips stay within the accumulated budget
//     across datasets, estimate modes and placement layouts

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "compress/codec.hpp"
#include "core/canopus.hpp"
#include "mesh/cascade.hpp"
#include "mesh/generators.hpp"
#include "mesh/validate.hpp"
#include "storage/blob_frame.hpp"
#include "storage/hierarchy.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace cc = canopus::core;
namespace cm = canopus::mesh;
namespace cp = canopus::compress;
namespace cs = canopus::storage;
namespace cu = canopus::util;

namespace {

cm::TriMesh make_mesh(const std::string& family) {
  if (family == "rect") return cm::make_rect_mesh(28, 28, 1.0, 1.0, 0.2, 11);
  if (family == "annulus") {
    return cm::make_annulus_mesh(12, 64, 0.5, 1.0, 0.15, 11);
  }
  if (family == "disk") return cm::make_disk_mesh(12, 56, 1.0, 0.15, 11);
  if (family == "airfoil") {
    return cm::make_airfoil_mesh(36, 24, 10.0, 6.0, 3.5, 3.0, 2.2, 0.8, 0.1, 11);
  }
  if (family == "shuffled") {
    return cm::shuffle_vertices(cm::make_rect_mesh(28, 28, 1.0, 1.0, 0.2, 11), 5);
  }
  throw canopus::Error("unknown mesh family " + family);
}

cm::Field analytic_field(const cm::TriMesh& mesh) {
  cm::Field f(mesh.vertex_count());
  for (cm::VertexId v = 0; v < mesh.vertex_count(); ++v) {
    const auto p = mesh.vertex(v);
    f[v] = std::sin(1.3 * p.x) * std::cos(2.1 * p.y) +
           0.5 * std::exp(-((p.x - 0.4) * (p.x - 0.4) + p.y * p.y) / 0.05);
  }
  return f;
}

std::vector<double> make_signal(const std::string& family, std::size_t n) {
  cu::Rng rng(n + 13);
  std::vector<double> xs(n);
  if (family == "smooth") {
    for (std::size_t i = 0; i < n; ++i) {
      xs[i] = 25.0 * std::sin(static_cast<double>(i) * 0.004);
    }
  } else if (family == "noisy") {
    for (auto& x : xs) x = rng.normal(0.0, 10.0);
  } else if (family == "spiky") {
    for (std::size_t i = 0; i < n; ++i) {
      xs[i] = (i % 97 == 0) ? rng.uniform(-1e6, 1e6) : rng.normal(0.0, 0.01);
    }
  } else if (family == "steps") {
    double level = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (i % 500 == 0) level = rng.uniform(-100.0, 100.0);
      xs[i] = level;
    }
  } else if (family == "tiny") {
    for (auto& x : xs) x = rng.normal(0.0, 1e-12);
  }
  return xs;
}

}  // namespace

// -------------------------------------------------------------- decimation --

class DecimationSweep
    : public ::testing::TestWithParam<
          std::tuple<std::string, double, cm::EdgePriority>> {};

TEST_P(DecimationSweep, MeshStaysValidAndRatioApproached) {
  const auto& [family, ratio, priority] = GetParam();
  const auto mesh = make_mesh(family);
  const auto field = analytic_field(mesh);
  cm::DecimateOptions opt;
  opt.ratio = ratio;
  opt.priority = priority;
  const auto result = cm::decimate(mesh, field, opt);

  const auto report = cm::validate(result.mesh);
  EXPECT_TRUE(report.ok) << family << " r=" << ratio << ": "
                         << (report.problems.empty() ? "" : report.problems[0]);
  EXPECT_EQ(result.values.size(), result.mesh.vertex_count());
  // Within 25% of the requested ratio (rejections may leave slack at deep
  // ratios on small meshes) and never overshooting into a degenerate mesh.
  EXPECT_GE(result.achieved_ratio, ratio * 0.75);
  EXPECT_GE(result.mesh.vertex_count(), 3u);
  // Averaging never expands the value range.
  const auto [lo0, hi0] = std::minmax_element(field.begin(), field.end());
  const auto [lo1, hi1] =
      std::minmax_element(result.values.begin(), result.values.end());
  EXPECT_GE(*lo1, *lo0 - 1e-12);
  EXPECT_LE(*hi1, *hi0 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesRatiosPriorities, DecimationSweep,
    ::testing::Combine(
        ::testing::Values("rect", "annulus", "disk", "airfoil", "shuffled"),
        ::testing::Values(2.0, 4.0, 8.0),
        ::testing::Values(cm::EdgePriority::kShortestFirst,
                          cm::EdgePriority::kRandom)),
    [](const auto& param_info) {
      return std::get<0>(param_info.param) + "_r" +
             std::to_string(static_cast<int>(std::get<1>(param_info.param))) +
             (std::get<2>(param_info.param) == cm::EdgePriority::kShortestFirst
                  ? "_short"
                  : "_rand");
    });

// ------------------------------------------------------------ codec bounds --

class CodecBoundSweep
    : public ::testing::TestWithParam<
          std::tuple<std::string, std::string, double>> {};

TEST_P(CodecBoundSweep, ErrorBoundHeld) {
  const auto& [codec_name, signal, eb] = GetParam();
  const auto codec = cp::make_codec(codec_name);
  const auto xs = make_signal(signal, 6000);
  const auto dec = codec->decode(codec->encode(xs, eb));
  ASSERT_EQ(dec.size(), xs.size());
  EXPECT_LE(cu::max_abs_error(xs, dec), eb)
      << codec_name << " on " << signal << " eb=" << eb;
}

INSTANTIATE_TEST_SUITE_P(
    CodecsSignalsBounds, CodecBoundSweep,
    ::testing::Combine(::testing::Values("zfp", "sz", "zfp+lzss", "sz+huffman"),
                       ::testing::Values("smooth", "noisy", "spiky", "steps",
                                         "tiny"),
                       ::testing::Values(1e-1, 1e-4, 1e-8)),
    [](const auto& param_info) {
      std::string c = std::get<0>(param_info.param);
      std::replace(c.begin(), c.end(), '+', '_');
      return c + "_" + std::get<1>(param_info.param) + "_e" +
             std::to_string(
                 static_cast<int>(-std::log10(std::get<2>(param_info.param))));
    });

// ----------------------------------------------------------- delta inverse --

class DeltaInverseSweep
    : public ::testing::TestWithParam<std::tuple<std::string, cc::EstimateMode>> {
};

TEST_P(DeltaInverseSweep, RestoreInvertsDeltaAcrossTwoLevels) {
  const auto& [family, mode] = GetParam();
  const auto mesh = make_mesh(family);
  const auto field = analytic_field(mesh);
  cm::CascadeOptions copt;
  copt.levels = 3;
  const auto cascade = cm::build_cascade(mesh, field, copt);
  for (std::size_t l = 0; l + 1 < 3; ++l) {
    const auto& fine = cascade.levels[l];
    const auto& coarse = cascade.levels[l + 1];
    const auto mapping = cc::build_mapping(fine.mesh, coarse.mesh);
    const auto delta =
        cc::compute_delta(coarse.mesh, coarse.values, fine.values, mapping, mode);
    const auto restored =
        cc::restore_level(coarse.mesh, coarse.values, delta, mapping, mode);
    ASSERT_EQ(restored.size(), fine.values.size());
    EXPECT_LE(cu::max_abs_error(fine.values, restored), 1e-13)
        << family << " level " << l;
  }
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesModes, DeltaInverseSweep,
    ::testing::Combine(::testing::Values("rect", "annulus", "disk", "airfoil"),
                       ::testing::Values(cc::EstimateMode::kUniformThirds,
                                         cc::EstimateMode::kBarycentric,
                                         cc::EstimateMode::kNearestVertex)),
    [](const auto& param_info) {
      return std::get<0>(param_info.param) + "_" +
             cc::to_string(std::get<1>(param_info.param));
    });

// ------------------------------------------------------ end-to-end budgets --

class RoundTripSweep
    : public ::testing::TestWithParam<std::tuple<cc::EstimateMode, bool>> {};

TEST_P(RoundTripSweep, BudgetHeldUnderEstimateAndPlacementVariants) {
  const auto& [mode, tiered] = GetParam();
  const auto mesh = make_mesh("annulus");
  const auto field = analytic_field(mesh);
  cs::StorageHierarchy tiers(
      {cs::tmpfs_spec(8 << 20), cs::lustre_spec(1 << 30)});
  cc::RefactorConfig config;
  config.levels = 3;
  config.codec = "zfp";
  config.error_bound = 1e-6;
  config.estimate = mode;
  config.tiered_placement = tiered;
  cc::refactor_and_write(tiers, "rt.bp", "v", mesh, field, config);
  cc::ProgressiveReader reader(tiers, "rt.bp", "v");
  reader.refine_to(0);
  EXPECT_LE(cu::max_abs_error(field, reader.values()), 3e-6);
}

INSTANTIATE_TEST_SUITE_P(
    EstimatePlacement, RoundTripSweep,
    ::testing::Combine(::testing::Values(cc::EstimateMode::kUniformThirds,
                                         cc::EstimateMode::kBarycentric,
                                         cc::EstimateMode::kNearestVertex),
                       ::testing::Bool()),
    [](const auto& param_info) {
      return cc::to_string(std::get<0>(param_info.param)) +
             (std::get<1>(param_info.param) ? "_tiered" : "_flat");
    });

// --------------------------------------------------------- frame integrity --

// The integrity contract of the framed-blob format: whatever corruption hits
// the stored bytes, a read either fails verification or returns exactly the
// payload that was written — it never silently yields different data.
TEST(FrameIntegritySweep, CorruptedFramesNeverYieldWrongBytes) {
  const std::uint64_t base = canopus::test::test_seed();
  for (std::uint64_t round = 0; round < 100; ++round) {
    const std::uint64_t seed = base + round;
    cu::Rng rng(seed * 977 + 1);
    cu::Bytes payload(1 + rng.uniform_index(2048));
    for (auto& b : payload) b = static_cast<std::byte>(rng.uniform_index(256));
    const auto frame = canopus::storage::frame_blob(payload);

    auto corrupted = frame;
    const std::size_t flips = 1 + rng.uniform_index(8);
    for (std::size_t i = 0; i < flips; ++i) {
      const auto pos = rng.uniform_index(corrupted.size());
      const auto mask = static_cast<std::byte>(1 + rng.uniform_index(255));
      corrupted[pos] ^= mask;  // nonzero mask: the byte definitely changes
    }

    try {
      const auto out = canopus::storage::unframe_blob(corrupted);
      // Corruption slipped past the CRC (possible in principle for multi-bit
      // patterns): the payload must still be byte-identical to count as ok.
      EXPECT_EQ(out, payload)
          << "replay with CANOPUS_TEST_SEED=" << seed << " (base " << base
          << ")";
    } catch (const canopus::storage::IntegrityError&) {
      // Detected — the expected outcome.
    }
  }
}

// Regression guard for the Fig. 5 mechanism itself.
TEST(Fig5Mechanism, CanopusWinsOnShuffledMeshesLosesNothingOnOrdered) {
  for (const bool shuffled : {false, true}) {
    auto mesh = cm::make_annulus_mesh(16, 96, 0.5, 1.0, 0.1, 21);
    if (shuffled) mesh = cm::shuffle_vertices(mesh, 9);
    const auto field = analytic_field(mesh);
    cc::RefactorConfig config;
    config.levels = 3;
    config.codec = "zfp";
    config.error_bound = 1e-4;
    cs::StorageHierarchy tiers(
        {cs::tmpfs_spec(8 << 20), cs::lustre_spec(1 << 30)});
    const auto canopus = cc::refactor_and_write(tiers, "f.bp", "v", mesh,
                                                field, config);
    const auto direct = cc::direct_multilevel_sizes(mesh, field, config);
    if (shuffled) {
      // Realistic (incoherent) numbering: the mesh-aware deltas must win.
      EXPECT_LT(canopus.total_stored_bytes() * 100,
                direct.total_stored_bytes() * 98);
    } else {
      // Even with raster numbering Canopus should not lose badly.
      EXPECT_LT(canopus.total_stored_bytes(),
                direct.total_stored_bytes() * 11 / 10);
    }
  }
}
