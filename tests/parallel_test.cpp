// Tests for the task engine (util::ThreadPool) and for the concurrency
// contract of the refactor/restore pipeline: stress, exception propagation,
// ordered-reduce sequencing, and the bitwise 1-thread-vs-N-thread identity of
// both the stored refactor products and the restored fields.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <map>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "core/canopus.hpp"
#include "core/geometry_cache.hpp"
#include "fabric/fabric.hpp"
#include "mesh/generators.hpp"
#include "obs/observability.hpp"
#include "obs/trace.hpp"
#include "serve/query_scheduler.hpp"
#include "storage/hierarchy.hpp"
#include "tiering/tier_advisor.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"

namespace cc = canopus::core;
namespace cm = canopus::mesh;
namespace cs = canopus::storage;
namespace ca = canopus::adios;
namespace cu = canopus::util;

namespace {

cm::Field smooth_field(const cm::TriMesh& mesh) {
  cm::Field f(mesh.vertex_count());
  for (cm::VertexId v = 0; v < mesh.vertex_count(); ++v) {
    const auto p = mesh.vertex(v);
    f[v] = std::sin(p.x * 2.0) * std::cos(p.y * 3.0) + 0.2 * p.y;
  }
  return f;
}

cs::StorageHierarchy three_tiers() {
  return cs::StorageHierarchy({cs::tmpfs_spec(64 << 20), cs::ssd_spec(128 << 20),
                               cs::lustre_spec(1 << 30)});
}

}  // namespace

// -------------------------------------------------------------- task pool --

TEST(ThreadPool, SubmitReturnsTypedResults) {
  cu::ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  futures.reserve(2000);
  for (int i = 0; i < 2000; ++i) {
    futures.push_back(pool.submit([i] { return i * 2; }));
  }
  long total = 0;
  for (auto& f : futures) total += f.get();
  EXPECT_EQ(total, 2L * 2000 * 1999 / 2);
}

TEST(ThreadPool, StressSubmitFromManyThreads) {
  // The queue is shared: hammer it from several producer threads at once.
  cu::ThreadPool pool(4);
  std::atomic<long> sum{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&pool, &sum] {
      std::vector<std::future<void>> futures;
      for (int i = 0; i < 500; ++i) {
        futures.push_back(pool.submit([&sum] { sum.fetch_add(1); }));
      }
      for (auto& f : futures) f.get();
    });
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(sum.load(), 4 * 500);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  cu::ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The pool survives a throwing task.
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  cu::ThreadPool pool(4);
  std::vector<int> hits(10'000, 0);
  pool.parallel_for(
      0, hits.size(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) ++hits[i];
      },
      /*grain=*/64);
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
            static_cast<int>(hits.size()));
}

TEST(ThreadPool, ParallelForHonorsGrain) {
  cu::ThreadPool pool(8);
  std::atomic<int> chunks{0};
  pool.parallel_for(
      0, 1000, [&](std::size_t, std::size_t) { chunks.fetch_add(1); },
      /*grain=*/400);
  // 1000 iterations at >= 400 per chunk cannot split more than 2 ways.
  EXPECT_LE(chunks.load(), 2);
  EXPECT_GE(chunks.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  cu::ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 1000,
                                 [](std::size_t lo, std::size_t) {
                                   if (lo > 0) throw std::runtime_error("mid");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  // A worker blocking on its own pool would deadlock a 1-worker pool; the
  // re-entrancy guard must run the nested loop inline instead.
  cu::ThreadPool pool(1);
  std::vector<int> hits(100, 0);
  auto f = pool.submit([&] {
    pool.parallel_for(0, hits.size(), [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) ++hits[i];
    });
  });
  f.get();
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST(ThreadPool, OrderedReduceFeedsAscendingIndices) {
  cu::ThreadPool pool(4);
  std::vector<std::size_t> seen;
  pool.ordered_reduce(
      500,
      [](std::size_t i) {
        // Stagger completion so out-of-order finishes are the common case.
        if (i % 7 == 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        return i * 3;
      },
      [&](std::size_t i, std::size_t result) {
        EXPECT_EQ(result, i * 3);
        seen.push_back(i);
      });
  ASSERT_EQ(seen.size(), 500u);
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i);
}

TEST(ThreadPool, OrderedReduceBoundsInflightWindow) {
  cu::ThreadPool pool(2);
  std::atomic<int> inflight{0};
  std::atomic<int> peak{0};
  pool.ordered_reduce(
      64,
      [&](std::size_t i) {
        const int now = inflight.fetch_add(1) + 1;
        int prev = peak.load();
        while (now > prev && !peak.compare_exchange_weak(prev, now)) {
        }
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        inflight.fetch_sub(1);
        return i;
      },
      [](std::size_t, std::size_t) {}, /*window=*/3);
  // No more than `window` maps may ever run or wait enqueued at once.
  EXPECT_LE(peak.load(), 3);
}

TEST(ThreadPool, OrderedReduceMapExceptionSurfacesAtItsIndex) {
  cu::ThreadPool pool(4);
  std::vector<std::size_t> reduced;
  EXPECT_THROW(pool.ordered_reduce(
                   200,
                   [](std::size_t i) -> std::size_t {
                     if (i == 123) throw std::runtime_error("map died");
                     return i;
                   },
                   [&](std::size_t i, std::size_t) { reduced.push_back(i); }),
               std::runtime_error);
  // Everything before the failing index was reduced, in order; nothing after.
  ASSERT_EQ(reduced.size(), 123u);
  for (std::size_t i = 0; i < reduced.size(); ++i) EXPECT_EQ(reduced[i], i);
  // The pool is still usable afterwards (all inflight maps were drained).
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

// ----------------------------------------------------------- determinism --

namespace {

cc::RefactorConfig parallel_config(std::size_t threads) {
  cc::RefactorConfig config;
  config.levels = 3;
  config.codec = "zfp";
  config.error_bound = 1e-6;
  config.delta_chunks = 4;
  config.parallel.threads = threads;
  return config;
}

/// Every stored object of `var`, keyed by its container index entry, read
/// back raw (still compressed) from the hierarchy.
std::map<std::string, cu::Bytes> stored_objects(cs::StorageHierarchy& tiers,
                                                const std::string& path,
                                                const std::string& var) {
  ca::BpReader reader(tiers, path);
  std::map<std::string, cu::Bytes> objects;
  for (const auto& record : reader.inq_var(var).blocks) {
    cu::Bytes bytes;
    tiers.read(record.object_key, bytes);
    objects[record.object_key] = std::move(bytes);
  }
  return objects;
}

}  // namespace

TEST(ParallelDeterminism, RefactorProductsBitwiseIdentical1VsN) {
  const auto mesh = cm::make_annulus_mesh(16, 100, 0.5, 1.0, 0.1, 7);
  const auto values = smooth_field(mesh);

  auto tiers1 = three_tiers();
  const auto report1 =
      cc::refactor_and_write(tiers1, "d.bp", "v", mesh, values,
                             parallel_config(1));
  auto tiersN = three_tiers();
  const auto reportN =
      cc::refactor_and_write(tiersN, "d.bp", "v", mesh, values,
                             parallel_config(4));

  // Same products, same sizes, same placement — chunk by chunk.
  ASSERT_EQ(report1.products.size(), reportN.products.size());
  for (std::size_t i = 0; i < report1.products.size(); ++i) {
    const auto& a = report1.products[i];
    const auto& b = reportN.products[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.raw_bytes, b.raw_bytes);
    EXPECT_EQ(a.stored_bytes, b.stored_bytes);
    EXPECT_EQ(a.tier, b.tier);
    EXPECT_EQ(a.chunk_tiers, b.chunk_tiers);
  }

  // Same bytes in the container, object by object.
  const auto objects1 = stored_objects(tiers1, "d.bp", "v");
  const auto objectsN = stored_objects(tiersN, "d.bp", "v");
  ASSERT_EQ(objects1.size(), objectsN.size());
  ASSERT_GT(objects1.size(), 0u);
  for (const auto& [key, bytes] : objects1) {
    const auto it = objectsN.find(key);
    ASSERT_NE(it, objectsN.end()) << key;
    EXPECT_EQ(bytes, it->second) << key;
  }
}

TEST(ParallelDeterminism, RestoredFieldsBitwiseIdentical1VsN) {
  const auto mesh = cm::make_annulus_mesh(16, 100, 0.5, 1.0, 0.1, 7);
  auto tiers = three_tiers();
  cc::refactor_and_write(tiers, "d.bp", "v", mesh, smooth_field(mesh),
                         parallel_config(4));

  cc::ReaderOptions serial;
  serial.parallel.threads = 1;
  serial.parallel.read_ahead = false;
  cc::ProgressiveReader reader1(tiers, "d.bp", "v", nullptr, serial);
  reader1.refine_to(0);

  cc::ReaderOptions parallel;
  parallel.parallel.threads = 4;
  cc::ProgressiveReader readerN(tiers, "d.bp", "v", nullptr, parallel);
  readerN.refine_to(0);

  ASSERT_EQ(reader1.values().size(), readerN.values().size());
  for (std::size_t i = 0; i < reader1.values().size(); ++i) {
    // Bitwise: the parallel restore must not even reassociate an addition.
    EXPECT_EQ(reader1.values()[i], readerN.values()[i]) << "vertex " << i;
  }
}

TEST(ParallelDeterminism, RestoredFieldsBitwiseIdenticalWithTracingOn) {
  // Observability must be a pure observer: spans and metrics read wall clocks
  // but never touch task ordering or the fault RNG, so the 1-vs-N bitwise
  // identity has to survive with recording enabled.
  canopus::obs::ObservabilityOptions oopt;
  oopt.enabled = true;
  canopus::obs::install(oopt);

  const auto mesh = cm::make_annulus_mesh(16, 100, 0.5, 1.0, 0.1, 7);
  auto tiers1 = three_tiers();
  cc::refactor_and_write(tiers1, "d.bp", "v", mesh, smooth_field(mesh),
                         parallel_config(1));
  auto tiersN = three_tiers();
  cc::refactor_and_write(tiersN, "d.bp", "v", mesh, smooth_field(mesh),
                         parallel_config(4));
  const auto objects1 = stored_objects(tiers1, "d.bp", "v");
  const auto objectsN = stored_objects(tiersN, "d.bp", "v");
  ASSERT_EQ(objects1.size(), objectsN.size());
  for (const auto& [key, bytes] : objects1) {
    const auto it = objectsN.find(key);
    ASSERT_NE(it, objectsN.end()) << key;
    EXPECT_EQ(bytes, it->second) << key;
  }

  cc::ReaderOptions serial;
  serial.parallel.threads = 1;
  serial.parallel.read_ahead = false;
  cc::ProgressiveReader reader1(tiers1, "d.bp", "v", nullptr, serial);
  reader1.refine_to(0);
  cc::ReaderOptions parallel;
  parallel.parallel.threads = 4;
  cc::ProgressiveReader readerN(tiersN, "d.bp", "v", nullptr, parallel);
  readerN.refine_to(0);
  ASSERT_EQ(reader1.values().size(), readerN.values().size());
  for (std::size_t i = 0; i < reader1.values().size(); ++i) {
    EXPECT_EQ(reader1.values()[i], readerN.values()[i]) << "vertex " << i;
  }

  // And the run actually recorded: the stages left spans behind.
  EXPECT_FALSE(canopus::obs::TraceRecorder::global().events().empty());
  canopus::obs::set_enabled(false);
}

TEST(ParallelDeterminism, ReadAheadKeepsSimulatedClock) {
  // Prefetched I/O is charged to the step that consumes it, so the simulated
  // retrieval clock must not notice the read-ahead at all.
  const auto mesh = cm::make_annulus_mesh(14, 90, 0.5, 1.0, 0.1, 5);
  auto tiers = three_tiers();
  cc::refactor_and_write(tiers, "d.bp", "v", mesh, smooth_field(mesh),
                         parallel_config(0));
  double io_serial = 0.0;
  std::size_t bytes_serial = 0;
  {
    auto fresh = three_tiers();
    cc::refactor_and_write(fresh, "d.bp", "v", mesh, smooth_field(mesh),
                           parallel_config(0));
    cc::ReaderOptions serial;
    serial.parallel.threads = 1;
    serial.parallel.read_ahead = false;
    cc::ProgressiveReader reader(fresh, "d.bp", "v", nullptr, serial);
    reader.refine_to(0);
    io_serial = reader.cumulative().io_seconds;
    bytes_serial = reader.cumulative().bytes_read;
  }
  cc::ReaderOptions ahead;  // read_ahead defaults on
  ahead.parallel.threads = 4;
  cc::ProgressiveReader reader(tiers, "d.bp", "v", nullptr, ahead);
  reader.refine_to(0);
  EXPECT_DOUBLE_EQ(reader.cumulative().io_seconds, io_serial);
  EXPECT_EQ(reader.cumulative().bytes_read, bytes_serial);
}

TEST(ParallelDeterminism, GeometryCachePathMatchesOnDemandPath) {
  // The cached spatial orders and mappings must restore the exact same field
  // as the read-on-demand path.
  const auto mesh = cm::make_rect_mesh(40, 40, 1.0, 1.0, 0.1, 13);
  auto tiers = three_tiers();
  cc::refactor_and_write(tiers, "d.bp", "v", mesh, smooth_field(mesh),
                         parallel_config(0));
  const auto cache = cc::GeometryCache::load(tiers, "d.bp", "v");

  cc::ProgressiveReader plain(tiers, "d.bp", "v");
  plain.refine_to(0);
  cc::ReaderOptions opts;
  opts.parallel.threads = 4;
  cc::ProgressiveReader cached(tiers, "d.bp", "v", &cache, opts);
  cached.refine_to(0);

  ASSERT_EQ(plain.values().size(), cached.values().size());
  for (std::size_t i = 0; i < plain.values().size(); ++i) {
    EXPECT_EQ(plain.values()[i], cached.values()[i]) << "vertex " << i;
  }
}

// ------------------------------------------- concurrent read sessions --

// K concurrent sessions x N shared pool threads, with the block cache off
// and then on, all restore the exact bytes of the serial uncached reader.
// This extends the 1-vs-N contract to many clients: the cache and its
// single-flight sharing may change who fetches and decodes, never what any
// session sees.
TEST(ParallelDeterminism, ConcurrentSessionsBitwiseIdenticalCacheOnOff) {
  const auto mesh = cm::make_annulus_mesh(16, 100, 0.5, 1.0, 0.1, 7);
  auto tiers = three_tiers();
  cc::refactor_and_write(tiers, "d.bp", "v", mesh, smooth_field(mesh),
                         parallel_config(4));

  cc::ReaderOptions serial;
  serial.parallel.threads = 1;
  serial.parallel.read_ahead = false;
  cc::ProgressiveReader reference(tiers, "d.bp", "v", nullptr, serial);
  reference.refine_to(0);

  // Cache-off first: attaching the cache (second pass) is sticky on `tiers`.
  for (const bool cached : {false, true}) {
    canopus::PipelineOptions options;
    options.parallel.threads = 4;
    if (cached) {
      canopus::cache::CacheConfig cache_config;
      cache_config.budget_bytes = 32ull << 20;
      cache_config.shards = 4;
      options.cache = cache_config;
    }
    canopus::Pipeline pipeline(tiers, options);

    const std::size_t kSessions = 6;
    std::vector<cm::Field> fields(kSessions);
    std::vector<canopus::Status> statuses(kSessions);
    std::vector<std::thread> clients;
    clients.reserve(kSessions);
    for (std::size_t s = 0; s < kSessions; ++s) {
      clients.emplace_back([&, s] {
        canopus::ReadRequest request;
        request.path = "d.bp";
        request.var = "v";
        std::unique_ptr<canopus::ReadSession> session;
        canopus::Status status = pipeline.open_session(request, &session);
        if (status.ok()) status = session->refine_to(0);
        statuses[s] = status;
        if (session) fields[s] = session->values();
      });
    }
    for (auto& c : clients) c.join();

    for (std::size_t s = 0; s < kSessions; ++s) {
      ASSERT_TRUE(statuses[s].ok())
          << "session " << s << " (cache " << (cached ? "on" : "off")
          << "): " << statuses[s].to_string();
      ASSERT_EQ(fields[s].size(), reference.values().size());
      for (std::size_t i = 0; i < fields[s].size(); ++i) {
        ASSERT_EQ(fields[s][i], reference.values()[i])
            << "session " << s << " vertex " << i << " cache "
            << (cached ? "on" : "off");
      }
    }

    if (cached) {
      // Sharing must actually have happened: the sessions together fetched
      // each block far fewer times than 6 sessions x blocks.
      ASSERT_NE(pipeline.block_cache(), nullptr);
      const auto stats = pipeline.block_cache()->stats();
      EXPECT_GT(stats.hits + stats.single_flight_waits, 0u);
    } else {
      EXPECT_EQ(pipeline.block_cache(), nullptr);
    }
  }
}

// ---------------------------------------------- scheduler determinism --

// Serving through the deadline scheduler must be invisible in the bytes: a
// query with an ample budget restores the exact field of a direct read. The
// scheduler decides how far to refine, never how.
TEST(ParallelDeterminism, ScheduledQueryBitwiseMatchesDirectRead) {
  const auto mesh = cm::make_annulus_mesh(16, 100, 0.5, 1.0, 0.1, 7);
  auto tiers = three_tiers();
  cc::refactor_and_write(tiers, "d.bp", "v", mesh, smooth_field(mesh),
                         parallel_config(4));

  cc::ReaderOptions serial;
  serial.parallel.threads = 1;
  serial.parallel.read_ahead = false;
  cc::ProgressiveReader direct(tiers, "d.bp", "v", nullptr, serial);
  direct.refine_to(0);

  canopus::PipelineOptions options;
  options.parallel.threads = 4;
  canopus::serve::ServeConfig serve;
  serve.workers = 2;
  serve.default_deadline_seconds = 1e9;
  options.serve = serve;
  canopus::Pipeline pipeline(tiers, options);

  canopus::serve::QueryRequest request;
  request.path = "d.bp";
  request.var = "v";
  request.target_level = 0;
  canopus::serve::QueryResult result;
  const canopus::Status status = pipeline.submit_query(request, &result);
  ASSERT_TRUE(status.ok()) << status.to_string();
  ASSERT_EQ(result.achieved_level, 0u);
  ASSERT_EQ(result.values.size(), direct.values().size());
  for (std::size_t i = 0; i < result.values.size(); ++i) {
    ASSERT_EQ(result.values[i], direct.values()[i]) << "vertex " << i;
  }
}

// ------------------------------------------------ fabric determinism --

// Sharding the products across a simulated cluster must be invisible in the
// bytes: a full-accuracy read against any node of an N-node fabric (remote
// chunks resolved through the directory) restores the exact field of the
// 1-node fabric, which in turn matches a plain single-hierarchy read.
TEST(ParallelDeterminism, OneNodeVsFourNodeFabricBitwiseIdentical) {
  namespace cf = canopus::fabric;
  const auto mesh = cm::make_annulus_mesh(16, 100, 0.5, 1.0, 0.1, 7);
  cs::StorageHierarchy staging({cs::tmpfs_spec(256 << 20)});
  auto config = parallel_config(4);
  config.delta_chunks = 8;
  cc::refactor_and_write(staging, "d.bp", "v", mesh, smooth_field(mesh), config);

  cc::ReaderOptions serial;
  serial.parallel.threads = 1;
  serial.parallel.read_ahead = false;
  cc::ProgressiveReader reference(staging, "d.bp", "v", nullptr, serial);
  reference.refine_to(0);

  for (const std::size_t nodes : {std::size_t{1}, std::size_t{4}}) {
    cf::FabricOptions fo;
    fo.nodes = nodes;
    cf::Fabric fabric(fo, {cs::tmpfs_spec(64 << 20), cs::lustre_spec(1 << 30)});
    fabric.import_container(staging, "d.bp");
    for (std::size_t home = 0; home < nodes; ++home) {
      cc::ReaderOptions opts;
      opts.parallel.threads = 4;
      cc::ProgressiveReader reader(fabric.node(home), "d.bp", "v", nullptr,
                                   opts);
      reader.refine_to(0);
      ASSERT_EQ(reader.values().size(), reference.values().size());
      for (std::size_t i = 0; i < reader.values().size(); ++i) {
        ASSERT_EQ(reader.values()[i], reference.values()[i])
            << "nodes=" << nodes << " home=" << home << " vertex " << i;
      }
    }
    if (nodes > 1) {
      // The identity was not vacuous: some chunks really crossed the wire.
      EXPECT_GT(fabric.stats().remote_reads, 0u);
    }
  }
}

// Scheduler-routed fabric dispatch is equally invisible: a query submitted
// to a scheduler with an attached fabric (shard picked by directory
// affinity, remote chunks through the envelope) returns the same bytes as
// the same scheduler without the fabric, and as a direct read.
TEST(ParallelDeterminism, SchedulerFabricOnOffBitwiseIdentical) {
  namespace cf = canopus::fabric;
  const auto mesh = cm::make_annulus_mesh(16, 100, 0.5, 1.0, 0.1, 7);
  cs::StorageHierarchy staging({cs::tmpfs_spec(256 << 20)});
  auto config = parallel_config(4);
  config.delta_chunks = 8;
  cc::refactor_and_write(staging, "d.bp", "v", mesh, smooth_field(mesh), config);

  cf::FabricOptions fo;
  fo.nodes = 4;
  cf::Fabric fabric(fo, {cs::tmpfs_spec(64 << 20), cs::lustre_spec(1 << 30)});
  fabric.import_container(staging, "d.bp");

  canopus::serve::ServeConfig serve;
  serve.default_deadline_seconds = 1e9;
  canopus::serve::QueryScheduler scheduler(staging, serve, {});

  canopus::serve::QueryRequest request;
  request.path = "d.bp";
  request.var = "v";
  request.target_level = 0;

  canopus::serve::QueryResult off;
  ASSERT_TRUE(scheduler.execute(request, &off).ok());

  scheduler.attach_fabric(&fabric);
  canopus::serve::QueryResult on;
  const canopus::Status status = scheduler.execute(request, &on);
  ASSERT_TRUE(status.ok()) << status.to_string();
  EXPECT_GT(fabric.stats().local_hits, 0u);

  ASSERT_EQ(on.achieved_level, off.achieved_level);
  ASSERT_EQ(on.values.size(), off.values.size());
  for (std::size_t i = 0; i < on.values.size(); ++i) {
    ASSERT_EQ(on.values[i], off.values[i]) << "vertex " << i;
  }

  // Detach restores the constructor hierarchy for subsequent queries.
  scheduler.attach_fabric(nullptr);
  canopus::serve::QueryResult again;
  ASSERT_TRUE(scheduler.execute(request, &again).ok());
  ASSERT_EQ(again.values.size(), off.values.size());
  for (std::size_t i = 0; i < again.values.size(); ++i) {
    ASSERT_EQ(again.values[i], off.values[i]) << "vertex " << i;
  }
}

// ------------------------------------------------- async I/O determinism --

namespace {

/// Refactor config with enough delta chunks per level that the async ring
/// actually has parallelism to exploit.
cc::RefactorConfig chunked_config(std::size_t threads) {
  auto config = parallel_config(threads);
  config.delta_chunks = 8;
  return config;
}

}  // namespace

// The async engine may reorder *when* chunk reads and decodes happen, never
// what they produce: a ring-backed reader (with and without read-ahead) must
// restore the exact bytes of the blocking depth-1 reader.
TEST(ParallelDeterminism, AsyncRingRestoreBitwiseIdenticalToBlocking) {
  const auto mesh = cm::make_annulus_mesh(16, 100, 0.5, 1.0, 0.1, 7);
  auto tiers = three_tiers();
  cc::refactor_and_write(tiers, "d.bp", "v", mesh, smooth_field(mesh),
                         chunked_config(0));

  cc::ReaderOptions blocking;
  blocking.parallel.threads = 1;
  blocking.parallel.read_ahead = false;
  cc::ProgressiveReader serial(tiers, "d.bp", "v", nullptr, blocking);
  serial.refine_to(0);

  cc::ReaderOptions async_sync;  // completion-driven decode, no prefetch
  async_sync.parallel.threads = 4;
  async_sync.parallel.read_ahead = false;
  async_sync.io.depth = 8;
  cc::ProgressiveReader ring(tiers, "d.bp", "v", nullptr, async_sync);
  ring.refine_to(0);

  cc::ReaderOptions async_ahead;  // ring-backed read-ahead path
  async_ahead.parallel.threads = 4;
  async_ahead.io.depth = 4;
  async_ahead.io.batch = 2;
  cc::ProgressiveReader ahead(tiers, "d.bp", "v", nullptr, async_ahead);
  ahead.refine_to(0);

  ASSERT_EQ(serial.values().size(), ring.values().size());
  ASSERT_EQ(serial.values().size(), ahead.values().size());
  for (std::size_t i = 0; i < serial.values().size(); ++i) {
    ASSERT_EQ(serial.values()[i], ring.values()[i]) << "vertex " << i;
    ASSERT_EQ(serial.values()[i], ahead.values()[i]) << "vertex " << i;
  }
  EXPECT_EQ(serial.cumulative().bytes_read, ring.cumulative().bytes_read);
}

// SIMD dispatch is a pure speed knob: forcing every vectorized kernel down
// its scalar path must reproduce the stored refactor products and the
// restored field bit for bit.
TEST(ParallelDeterminism, SimdOnOffBitwiseIdentical) {
  const auto mesh = cm::make_annulus_mesh(16, 100, 0.5, 1.0, 0.1, 7);
  const auto values = smooth_field(mesh);

  auto tiers_scalar = three_tiers();
  cm::Field scalar_restored;
  {
    cu::simd::ScopedForceScalar force_scalar;
    cc::refactor_and_write(tiers_scalar, "d.bp", "v", mesh, values,
                           chunked_config(4));
    cc::ProgressiveReader reader(tiers_scalar, "d.bp", "v");
    reader.refine_to(0);
    scalar_restored = reader.values();
  }

  auto tiers_simd = three_tiers();
  cc::refactor_and_write(tiers_simd, "d.bp", "v", mesh, values,
                         chunked_config(4));
  const auto objects_scalar = stored_objects(tiers_scalar, "d.bp", "v");
  const auto objects_simd = stored_objects(tiers_simd, "d.bp", "v");
  ASSERT_EQ(objects_scalar.size(), objects_simd.size());
  for (const auto& [key, bytes] : objects_scalar) {
    const auto it = objects_simd.find(key);
    ASSERT_NE(it, objects_simd.end()) << key;
    EXPECT_EQ(bytes, it->second) << key;
  }

  cc::ReaderOptions async_opts;
  async_opts.parallel.threads = 4;
  async_opts.io.depth = 8;
  cc::ProgressiveReader reader(tiers_simd, "d.bp", "v", nullptr, async_opts);
  reader.refine_to(0);
  ASSERT_EQ(scalar_restored.size(), reader.values().size());
  for (std::size_t i = 0; i < scalar_restored.size(); ++i) {
    ASSERT_EQ(scalar_restored[i], reader.values()[i]) << "vertex " << i;
  }
}

// The tier advisor only moves bytes between tiers; with it ticking between
// refinement steps (and the async engine reading from the shuffled
// placement), the restored field must stay bit-identical to a static,
// advisor-less run.
TEST(ParallelDeterminism, TierAdvisorOnOffBitwiseIdentical) {
  const auto mesh = cm::make_annulus_mesh(16, 100, 0.5, 1.0, 0.1, 7);
  const auto values = smooth_field(mesh);

  auto tiers_static = three_tiers();
  cm::Field baseline;
  {
    cc::refactor_and_write(tiers_static, "d.bp", "v", mesh, values,
                           chunked_config(0));
    cc::ProgressiveReader reader(tiers_static, "d.bp", "v");
    reader.refine_to(0);
    baseline = reader.values();
  }

  auto tiers_adaptive = three_tiers();
  cc::refactor_and_write(tiers_adaptive, "d.bp", "v", mesh, values,
                         chunked_config(0));
  canopus::tiering::TierAdvisor advisor([] {
    canopus::tiering::TieringConfig config;
    config.half_life_seconds = 1e6;
    config.cooldown_ticks = 0;
    config.max_moves_per_tick = 100;
    return config;
  }());
  advisor.watch(tiers_adaptive);
  ASSERT_TRUE(advisor.register_container("d.bp"));
  {
    ca::BpReader meta(tiers_adaptive, "d.bp");
    for (const auto& b : meta.inq_var("v").blocks) {
      if (b.kind == ca::BlockKind::kDelta) {
        advisor.heat().record(b.object_key, 10.0);
      }
    }
  }

  cc::ReaderOptions opts;
  opts.parallel.threads = 4;
  opts.io.depth = 8;
  cc::ProgressiveReader reader(tiers_adaptive, "d.bp", "v", nullptr, opts);
  std::size_t moves = 0;
  moves += advisor.tick();
  reader.refine_to(1);
  moves += advisor.tick();
  reader.refine_to(0);
  ASSERT_GT(moves, 0u);  // placement really changed mid-read

  ASSERT_EQ(baseline.size(), reader.values().size());
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    ASSERT_EQ(baseline[i], reader.values()[i]) << "vertex " << i;
  }
}

// Satellite accounting fix: with the ring active, a step charges the
// simulated wall-clock of the overlapped reads (the makespan), not the sum
// of per-op costs; the blocking reader keeps the exact historical sum.
TEST(ParallelDeterminism, AsyncAccountingChargesMakespanNotSum) {
  const auto mesh = cm::make_annulus_mesh(16, 100, 0.5, 1.0, 0.1, 7);
  const std::uint32_t depth = 8;

  auto run = [&](std::uint32_t io_depth) {
    auto tiers = three_tiers();
    cc::refactor_and_write(tiers, "d.bp", "v", mesh, smooth_field(mesh),
                           chunked_config(0));
    cc::ReaderOptions opts;
    opts.parallel.threads = 4;
    opts.parallel.read_ahead = false;
    opts.io.depth = io_depth;
    cc::ProgressiveReader reader(tiers, "d.bp", "v", nullptr, opts);
    reader.refine_to(0);
    return reader.cumulative();
  };

  const auto blocking = run(1);
  const auto async = run(depth);
  const auto async_again = run(depth);

  // Same data volume either way; only the clock model changes.
  EXPECT_EQ(blocking.bytes_read, async.bytes_read);
  // Overlap strictly helps on multi-chunk levels and can never hurt...
  EXPECT_LT(async.io_seconds, blocking.io_seconds);
  // ...but cannot beat perfect depth-way packing of the same ops.
  EXPECT_GE(async.io_seconds, blocking.io_seconds / depth - 1e-12);
  // And the simulated clock is deterministic run to run.
  EXPECT_DOUBLE_EQ(async.io_seconds, async_again.io_seconds);
}
