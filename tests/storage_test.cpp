// Tests for the storage hierarchy simulator: tier cost model, capacity
// accounting, file backend, and the paper's bypass-when-full placement.

#include <gtest/gtest.h>

#include <filesystem>

#include "storage/hierarchy.hpp"
#include "storage/tier.hpp"
#include "util/rng.hpp"

namespace cs = canopus::storage;
namespace cu = canopus::util;

namespace {
cu::Bytes make_blob(std::size_t n, std::uint64_t seed = 1) {
  cu::Rng rng(seed);
  cu::Bytes b(n);
  for (auto& x : b) x = static_cast<std::byte>(rng.uniform_index(256));
  return b;
}
}  // namespace

TEST(Tier, MemoryWriteReadRoundTrip) {
  cs::StorageTier tier(cs::tmpfs_spec(1 << 20));
  const auto blob = make_blob(1000);
  tier.write("a", blob);
  cu::Bytes out;
  tier.read("a", out);
  EXPECT_EQ(out, blob);
  EXPECT_EQ(tier.used_bytes(), 1000u);
}

TEST(Tier, CostModelIsLinear) {
  const auto spec = cs::lustre_spec(1 << 30);
  cs::StorageTier tier(spec);
  const double small = tier.read_cost(1000);
  const double large = tier.read_cost(1'000'000);
  EXPECT_NEAR(large - small,
              999'000.0 / spec.read_bandwidth, 1e-12);
  EXPECT_GE(small, spec.read_latency);
}

TEST(Tier, FasterTierHasLowerCost) {
  cs::StorageTier fast(cs::tmpfs_spec(1 << 20));
  cs::StorageTier slow(cs::lustre_spec(1 << 20));
  const std::size_t n = 1 << 18;
  EXPECT_LT(fast.read_cost(n), slow.read_cost(n));
  EXPECT_LT(fast.write_cost(n), slow.write_cost(n));
}

TEST(Tier, CapacityEnforced) {
  cs::StorageTier tier(cs::tmpfs_spec(100));
  tier.write("a", make_blob(60));
  EXPECT_FALSE(tier.fits(50));
  EXPECT_THROW(tier.write("b", make_blob(50)), canopus::Error);
  tier.write("c", make_blob(40));  // exactly fills
  EXPECT_EQ(tier.free_bytes(), 0u);
}

TEST(Tier, RewriteReplacesNotAccumulates) {
  cs::StorageTier tier(cs::tmpfs_spec(100));
  tier.write("a", make_blob(80, 1));
  tier.write("a", make_blob(90, 2));  // would not fit if the 80 lingered
  EXPECT_EQ(tier.used_bytes(), 90u);
  cu::Bytes out;
  tier.read("a", out);
  EXPECT_EQ(out, make_blob(90, 2));
}

TEST(Tier, EraseFreesCapacity) {
  cs::StorageTier tier(cs::tmpfs_spec(100));
  tier.write("a", make_blob(80));
  tier.erase("a");
  EXPECT_EQ(tier.used_bytes(), 0u);
  tier.erase("a");  // idempotent
  cu::Bytes out;
  EXPECT_THROW(tier.read("a", out), canopus::Error);
}

TEST(Tier, FileBackendRoundTrip) {
  namespace fs = std::filesystem;
  const auto dir = fs::temp_directory_path() / "canopus_tier_test";
  fs::remove_all(dir);
  cs::TierSpec spec = cs::ssd_spec(1 << 20);
  spec.backend = cs::Backend::kFile;
  spec.root_dir = dir.string();
  {
    cs::StorageTier tier(spec);
    const auto blob = make_blob(4096, 9);
    tier.write("chunk/with/slashes", blob);
    cu::Bytes out;
    tier.read("chunk/with/slashes", out);
    EXPECT_EQ(out, blob);
    EXPECT_TRUE(tier.contains("chunk/with/slashes"));
    tier.erase("chunk/with/slashes");
    EXPECT_FALSE(tier.contains("chunk/with/slashes"));
  }
  fs::remove_all(dir);
}

TEST(Tier, PresetsAreOrderedBySpeed) {
  // Fig. 2's pyramid: each preset tier down the stack is slower to read.
  const std::size_t n = 1 << 20;
  const std::vector<cs::TierSpec> specs{
      cs::tmpfs_spec(n), cs::nvram_spec(n),        cs::ssd_spec(n),
      cs::burst_buffer_spec(n), cs::lustre_spec(n), cs::campaign_spec(n)};
  for (std::size_t i = 1; i < specs.size(); ++i) {
    cs::StorageTier upper(specs[i - 1]);
    cs::StorageTier lower(specs[i]);
    EXPECT_LT(upper.read_cost(n), lower.read_cost(n))
        << specs[i - 1].name << " vs " << specs[i].name;
  }
}

TEST(Hierarchy, FastestFitPlacesTopDown) {
  cs::StorageHierarchy h({cs::tmpfs_spec(100), cs::lustre_spec(1000)});
  const auto [tier_a, io_a] = h.place("a", make_blob(60));
  EXPECT_EQ(tier_a, 0u);
  // Does not fit on tmpfs (40 free), bypassed to lustre — the paper's rule.
  const auto [tier_b, io_b] = h.place("b", make_blob(60, 2));
  EXPECT_EQ(tier_b, 1u);
  EXPECT_GT(io_b.sim_seconds, io_a.sim_seconds);
}

TEST(Hierarchy, ReadFindsObjectAcrossTiers) {
  cs::StorageHierarchy h({cs::tmpfs_spec(100), cs::lustre_spec(1000)});
  h.place("x", make_blob(200, 3));  // only fits on lustre
  EXPECT_EQ(h.find("x"), std::optional<std::size_t>(1));
  cu::Bytes out;
  const auto io = h.read("x", out);
  EXPECT_EQ(out, make_blob(200, 3));
  EXPECT_GT(io.sim_seconds, 0.0);
  EXPECT_EQ(h.find("missing"), std::nullopt);
}

TEST(Hierarchy, NothingFitsThrows) {
  cs::StorageHierarchy h({cs::tmpfs_spec(10), cs::lustre_spec(10)});
  EXPECT_THROW(h.place("big", make_blob(100)), canopus::Error);
}

TEST(Hierarchy, ReplaceMovesBetweenTiers) {
  cs::StorageHierarchy h({cs::tmpfs_spec(100), cs::lustre_spec(1000)});
  h.place("obj", make_blob(90));
  EXPECT_EQ(h.find("obj"), std::optional<std::size_t>(0));
  // Bigger rewrite no longer fits on tier 0; must not leak the old copy.
  h.place("obj", make_blob(500, 2));
  EXPECT_EQ(h.find("obj"), std::optional<std::size_t>(1));
  EXPECT_EQ(h.tier(0).used_bytes(), 0u);
}

TEST(Hierarchy, SlowestOnlyPolicy) {
  cs::StorageHierarchy h({cs::tmpfs_spec(1000), cs::lustre_spec(1000)},
                         cs::PlacementPolicy::kSlowestOnly);
  const auto [tier, io] = h.place("a", make_blob(10));
  EXPECT_EQ(tier, 1u);
}

TEST(Hierarchy, RoundRobinPolicy) {
  cs::StorageHierarchy h({cs::tmpfs_spec(1000), cs::lustre_spec(1000)},
                         cs::PlacementPolicy::kRoundRobin);
  const auto [t0, io0] = h.place("a", make_blob(10, 1));
  const auto [t1, io1] = h.place("b", make_blob(10, 2));
  EXPECT_NE(t0, t1);
}

TEST(Hierarchy, WriteToExplicitTier) {
  cs::StorageHierarchy h({cs::tmpfs_spec(1000), cs::lustre_spec(1000)});
  h.write_to(1, "pinned", make_blob(10));
  EXPECT_EQ(h.find("pinned"), std::optional<std::size_t>(1));
}

TEST(Hierarchy, ReadReturnsFullRecordedSize) {
  // Regression: callers used to trust `out` blindly; the hierarchy now
  // asserts the bytes returned match the recorded object size, so a partial
  // read can never silently truncate a variable.
  cs::StorageHierarchy h({cs::tmpfs_spec(1 << 20), cs::lustre_spec(1 << 30)});
  for (const std::size_t n : {std::size_t{1}, std::size_t{4096},
                              std::size_t{100'000}}) {
    const auto key = "obj" + std::to_string(n);
    h.place(key, make_blob(n, n));
    const auto tier = h.find(key);
    ASSERT_TRUE(tier.has_value());
    EXPECT_EQ(h.tier(*tier).object_size(key), n);
    cu::Bytes out;
    const auto io = h.read(key, out);
    EXPECT_EQ(out.size(), n);
    EXPECT_EQ(io.bytes, n);
    EXPECT_EQ(out, make_blob(n, n));
  }
}

TEST(Hierarchy, PlaceWithReplicaKeepsSecondCopyBelow) {
  cs::StorageHierarchy h({cs::tmpfs_spec(1000), cs::lustre_spec(1000)});
  const auto blob = make_blob(100, 4);
  const auto [tier, io] = h.place_with_replica("r", blob);
  EXPECT_EQ(tier, 0u);
  EXPECT_EQ(h.replica_tier("r"), std::optional<std::size_t>(1));
  // The replica costs extra I/O, and lives under its own key on the tier.
  EXPECT_TRUE(h.tier(1).contains(cs::StorageHierarchy::replica_key("r")));
  // Erasing the object cleans up the replica too — no capacity leak.
  h.erase("r");
  EXPECT_EQ(h.replica_tier("r"), std::nullopt);
  EXPECT_EQ(h.tier(0).used_bytes(), 0u);
  EXPECT_EQ(h.tier(1).used_bytes(), 0u);
}

TEST(Hierarchy, ReplicaOnLastTierHasNowhereToGo) {
  cs::StorageHierarchy h({cs::tmpfs_spec(50), cs::lustre_spec(1000)});
  const auto [tier, io] = h.place_with_replica("big", make_blob(500));
  EXPECT_EQ(tier, 1u);  // bypassed the full fast tier
  EXPECT_EQ(h.replica_tier("big"), std::nullopt);  // no tier below the last
}

// ------------------------------------------------------------ aggregation --

#include "storage/aggregation.hpp"

TEST(Aggregation, MoreTargetsFasterFlush) {
  cs::AggregationModel model;
  model.writers = 512;
  model.aggregators = 16;
  const auto tier = cs::lustre_spec(1 << 30);
  model.storage_targets = 4;
  const double few = cs::aggregate_write_seconds(model, tier, 1 << 28);
  model.storage_targets = 16;
  const double many = cs::aggregate_write_seconds(model, tier, 1 << 28);
  EXPECT_LT(many, few);
}

TEST(Aggregation, TooManyAggregatorsContend) {
  cs::AggregationModel model;
  model.writers = 512;
  model.storage_targets = 4;
  const auto tier = cs::lustre_spec(1 << 30);
  model.aggregators = 4;  // matched to targets
  const double matched = cs::aggregate_write_seconds(model, tier, 1 << 28);
  model.aggregators = 512;  // every writer hits the targets
  const double flood = cs::aggregate_write_seconds(model, tier, 1 << 28);
  EXPECT_LT(matched, flood);
}

TEST(Aggregation, TooFewAggregatorsWasteTargets) {
  cs::AggregationModel model;
  model.writers = 512;
  model.storage_targets = 16;
  const auto tier = cs::lustre_spec(1 << 30);
  model.aggregators = 1;
  const double one = cs::aggregate_write_seconds(model, tier, 1 << 28);
  model.aggregators = 16;
  const double matched = cs::aggregate_write_seconds(model, tier, 1 << 28);
  EXPECT_LT(matched, one);
}

TEST(Aggregation, BestCountSitsBetweenExtremes) {
  cs::AggregationModel model;
  model.writers = 1024;
  model.storage_targets = 8;
  const auto tier = cs::lustre_spec(1 << 30);
  const auto best = cs::best_aggregator_count(model, tier, 1 << 28);
  EXPECT_GE(best, 4u);
  EXPECT_LE(best, 128u);
}

TEST(Aggregation, InvalidCountsThrow) {
  cs::AggregationModel model;
  model.writers = 4;
  model.aggregators = 8;  // more aggregators than writers
  EXPECT_THROW(
      cs::aggregate_write_seconds(model, cs::lustre_spec(1 << 20), 100),
      canopus::Error);
}
