// Tests for the deadline-aware query scheduler (src/serve): admission
// control and bounded queuing, cost-model planning, elastic degradation
// under tight deadlines, priority aging, and the bitwise identity between a
// served field and an unscheduled read at the same achieved level.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <future>
#include <limits>
#include <thread>
#include <vector>

#include "core/canopus.hpp"
#include "core/geometry_cache.hpp"
#include "core/pipeline.hpp"
#include "mesh/generators.hpp"
#include "serve/cost_model.hpp"
#include "serve/query_scheduler.hpp"
#include "storage/hierarchy.hpp"

namespace cc = canopus::core;
namespace cm = canopus::mesh;
namespace cs = canopus::storage;
namespace cv = canopus::serve;

using canopus::Status;
using canopus::StatusCode;

namespace {

cm::Field smooth_field(const cm::TriMesh& mesh) {
  cm::Field f(mesh.vertex_count());
  for (cm::VertexId v = 0; v < mesh.vertex_count(); ++v) {
    const auto p = mesh.vertex(v);
    f[v] = std::sin(p.x * 2.0) * std::cos(p.y * 3.0) + 0.2 * p.y;
  }
  return f;
}

cs::StorageHierarchy three_tiers() {
  return cs::StorageHierarchy({cs::tmpfs_spec(64 << 20), cs::ssd_spec(128 << 20),
                               cs::lustre_spec(1 << 30)});
}

cc::RefactorConfig refactor_config() {
  cc::RefactorConfig config;
  config.levels = 3;
  config.codec = "zfp";
  config.error_bound = 1e-6;
  config.delta_chunks = 4;
  return config;
}

/// A written dataset plus the hierarchy it lives in.
struct Dataset {
  cs::StorageHierarchy tiers = three_tiers();
  cm::TriMesh mesh = cm::make_annulus_mesh(16, 100, 0.5, 1.0, 0.1, 7);

  Dataset() {
    cc::refactor_and_write(tiers, "d.bp", "v", mesh, smooth_field(mesh),
                           refactor_config());
  }
};

cv::QueryRequest query(const char* var = "v") {
  cv::QueryRequest request;
  request.path = "d.bp";
  request.var = var;
  return request;
}

}  // namespace

// ---------------------------------------------------------- basic serving --

TEST(QueryScheduler, GenerousDeadlineReachesTargetBitwise) {
  Dataset data;
  cv::QueryScheduler scheduler(data.tiers, {}, {});

  cv::QueryRequest request = query();
  request.target_level = 0;
  request.deadline_seconds = 1e9;  // effectively unbounded
  cv::QueryResult result;
  const Status status = scheduler.execute(request, &result);
  ASSERT_TRUE(status.ok()) << status.to_string();
  EXPECT_EQ(result.achieved_level, 0u);
  EXPECT_EQ(result.planned_level, 0u);
  EXPECT_EQ(result.target_level, 0u);
  EXPECT_GT(result.timings.bytes_read, 0u);
  EXPECT_GT(result.dispatch_order, 0u);

  // The scheduler decides how far to refine, never how: the served field is
  // bitwise-identical to an unscheduled facade read at the same level.
  canopus::Pipeline pipeline(data.tiers);
  canopus::ReadRequest rreq;
  rreq.path = "d.bp";
  rreq.var = "v";
  rreq.target_level = 0;
  canopus::ReadResult reference;
  ASSERT_TRUE(pipeline.read(rreq, &reference).ok());
  ASSERT_EQ(result.values.size(), reference.values.size());
  for (std::size_t i = 0; i < result.values.size(); ++i) {
    ASSERT_EQ(result.values[i], reference.values[i]) << "vertex " << i;
  }

  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.degraded, 0u);
  EXPECT_EQ(stats.failed, 0u);
}

TEST(QueryScheduler, TightDeadlineDegradesToCoarserLevelBitwise) {
  Dataset data;

  // Probe the deterministic base cost and the first step's simulated I/O.
  double base_total = 0.0;
  double first_step_io = 0.0;
  std::uint32_t coarsest = 0;
  {
    cc::ProgressiveReader probe(data.tiers, "d.bp", "v");
    base_total = probe.cumulative().total();
    coarsest = probe.current_level();
    const auto model = cv::CostModel::build(data.tiers, probe);
    first_step_io = model.step(coarsest - 1).io_seconds;
  }
  ASSERT_GT(first_step_io, 0.0);

  // A budget that covers the base but only a sliver of the first refinement
  // step: the query must answer with the coarser field, degraded.
  cv::QueryScheduler scheduler(data.tiers, {}, {});
  cv::QueryRequest request = query();
  request.target_level = 0;
  request.deadline_seconds = base_total + 0.25 * first_step_io;
  cv::QueryResult result;
  const Status status = scheduler.execute(request, &result);

  EXPECT_EQ(status.code, StatusCode::kDegraded);
  EXPECT_TRUE(status.degraded);
  EXPECT_TRUE(status.usable());
  EXPECT_FALSE(status.ok());
  EXPECT_FALSE(status.detail.empty());
  EXPECT_GT(result.achieved_level, 0u);
  EXPECT_EQ(result.achieved_level, result.planned_level);
  EXPECT_LE(result.timings.total(), *request.deadline_seconds);

  // Elastic degradation serves the exact field of that coarser level.
  canopus::Pipeline pipeline(data.tiers);
  canopus::ReadRequest rreq;
  rreq.path = "d.bp";
  rreq.var = "v";
  rreq.target_level = result.achieved_level;
  canopus::ReadResult reference;
  ASSERT_TRUE(pipeline.read(rreq, &reference).ok());
  ASSERT_EQ(reference.level, result.achieved_level);
  ASSERT_EQ(result.values.size(), reference.values.size());
  for (std::size_t i = 0; i < result.values.size(); ++i) {
    ASSERT_EQ(result.values[i], reference.values[i]) << "vertex " << i;
  }

  EXPECT_EQ(scheduler.stats().degraded, 1u);
  EXPECT_EQ(scheduler.stats().completed, 1u);
}

TEST(QueryScheduler, RmseThresholdStopsEarly) {
  Dataset data;
  cv::QueryScheduler scheduler(data.tiers, {}, {});

  cv::QueryRequest request = query();
  request.rmse_threshold = 1e9;  // any refinement satisfies it
  request.deadline_seconds = 1e9;
  cv::QueryResult result;
  const Status status = scheduler.execute(request, &result);
  ASSERT_TRUE(status.ok()) << status.to_string();
  // One step ran (the stop criterion needs an observed delta), then the RMS
  // beat the threshold well above full accuracy.
  EXPECT_EQ(result.achieved_level, 1u);
  EXPECT_GT(result.delta_rms, 0.0);
  EXPECT_LT(result.delta_rms, 1e9);
}

// ------------------------------------------------------ admission control --

TEST(QueryScheduler, BoundedQueueShedsWithOverloaded) {
  Dataset data;
  cv::ServeConfig config;
  config.workers = 1;
  config.queue_limit = 2;
  config.default_deadline_seconds = 1e9;
  cv::QueryScheduler scheduler(data.tiers, config, {});

  // Deterministic overload: gate dispatch, fill the queue past its bound.
  scheduler.pause();
  std::vector<std::future<cv::QueryOutcome>> futures;
  for (int i = 0; i < 5; ++i) futures.push_back(scheduler.submit(query()));

  EXPECT_EQ(scheduler.queue_depth(), 2u);
  int shed = 0;
  for (auto& f : futures) {
    if (f.wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
      const cv::QueryOutcome outcome = f.get();
      EXPECT_EQ(outcome.status.code, StatusCode::kOverloaded);
      EXPECT_FALSE(outcome.status.ok());
      EXPECT_FALSE(outcome.status.usable());
      EXPECT_FALSE(outcome.status.detail.empty());
      ++shed;
      f = {};
    }
  }
  EXPECT_EQ(shed, 3);  // everything past queue_limit bounced immediately

  scheduler.resume();
  int completed = 0;
  for (auto& f : futures) {
    if (!f.valid()) continue;
    const cv::QueryOutcome outcome = f.get();
    EXPECT_TRUE(outcome.status.ok()) << outcome.status.to_string();
    ++completed;
  }
  EXPECT_EQ(completed, 2);

  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, 5u);
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.shed, 3u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.max_queue_depth, 2u);
}

TEST(QueryScheduler, ShutdownShedsQueuedQueries) {
  Dataset data;
  std::future<cv::QueryOutcome> pending;
  {
    cv::ServeConfig config;
    config.workers = 1;
    cv::QueryScheduler scheduler(data.tiers, config, {});
    scheduler.pause();
    pending = scheduler.submit(query());
    EXPECT_EQ(scheduler.queue_depth(), 1u);
  }  // destructor: still-paused queue is shed, not silently dropped
  const cv::QueryOutcome outcome = pending.get();
  EXPECT_EQ(outcome.status.code, StatusCode::kOverloaded);
}

TEST(QueryScheduler, HigherPriorityJumpsTheQueue) {
  Dataset data;
  cv::ServeConfig config;
  config.workers = 1;
  config.queue_limit = 8;
  config.default_deadline_seconds = 1e9;
  config.age_boost = 0.0;  // pure priority order, no aging noise
  cv::QueryScheduler scheduler(data.tiers, config, {});

  scheduler.pause();
  cv::QueryRequest low = query();
  low.priority = 0;
  cv::QueryRequest high = query();
  high.priority = 10;
  auto low_future = scheduler.submit(low);    // enqueued first...
  auto high_future = scheduler.submit(high);  // ...but less urgent
  scheduler.resume();

  const cv::QueryOutcome low_outcome = low_future.get();
  const cv::QueryOutcome high_outcome = high_future.get();
  ASSERT_TRUE(low_outcome.status.usable());
  ASSERT_TRUE(high_outcome.status.usable());
  EXPECT_LT(high_outcome.result.dispatch_order,
            low_outcome.result.dispatch_order);
}

TEST(QueryScheduler, EffectivePriorityAges) {
  // Aging closes any fixed priority gap: a patient low-priority query
  // eventually outranks a fresh high-priority one.
  EXPECT_LT(cv::QueryScheduler::effective_priority(0, 0.0, 4.0),
            cv::QueryScheduler::effective_priority(10, 0.0, 4.0));
  EXPECT_GT(cv::QueryScheduler::effective_priority(0, 3.0, 4.0),
            cv::QueryScheduler::effective_priority(10, 0.0, 4.0));
  // age_boost 0 disables aging entirely.
  EXPECT_EQ(cv::QueryScheduler::effective_priority(5, 100.0, 0.0), 5.0);
}

// ------------------------------------------------------------- validation --

TEST(QueryScheduler, MalformedRequestsAreRejectedUpFront) {
  Dataset data;
  cv::QueryScheduler scheduler(data.tiers, {}, {});

  cv::QueryRequest no_var = query("");
  EXPECT_EQ(scheduler.execute(no_var, nullptr).code,
            StatusCode::kInvalidArgument);

  cv::QueryRequest nan_rmse = query();
  nan_rmse.rmse_threshold = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(scheduler.execute(nan_rmse, nullptr).code,
            StatusCode::kInvalidArgument);

  cv::QueryRequest bad_deadline = query();
  bad_deadline.deadline_seconds = -1.0;
  EXPECT_EQ(scheduler.execute(bad_deadline, nullptr).code,
            StatusCode::kInvalidArgument);

  // A rejected request never consumed queue capacity.
  EXPECT_EQ(scheduler.stats().admitted, 0u);
  EXPECT_EQ(scheduler.stats().submitted, 0u);
}

TEST(QueryScheduler, MissingVariableFailsAsNotFound) {
  Dataset data;
  cv::QueryScheduler scheduler(data.tiers, {}, {});
  cv::QueryResult result;
  const Status status = scheduler.execute(query("nope"), &result);
  EXPECT_EQ(status.code, StatusCode::kNotFound);
  EXPECT_FALSE(status.usable());
  EXPECT_EQ(scheduler.stats().failed, 1u);
}

// -------------------------------------------------------------- cost model --

TEST(CostModel, StepsCoverEveryRefinableLevel) {
  Dataset data;
  cc::ProgressiveReader reader(data.tiers, "d.bp", "v");
  const auto model = cv::CostModel::build(data.tiers, reader);

  ASSERT_EQ(model.steps().size(), reader.level_count() - 1);
  for (const auto& step : model.steps()) {
    EXPECT_GT(step.io_seconds, 0.0) << "level " << step.level;
    EXPECT_GT(step.compute_seconds, 0.0) << "level " << step.level;
    EXPECT_GT(step.bytes, 0u) << "level " << step.level;
    EXPECT_EQ(step.cached_blocks, 0u) << "level " << step.level;
  }

  const auto coarsest = static_cast<std::uint32_t>(reader.level_count() - 1);
  EXPECT_GT(model.cost_between(coarsest, 0), 0.0);
  EXPECT_GE(model.cost_between(coarsest, 0), model.cost_between(coarsest, 1));
  EXPECT_EQ(model.cost_between(0, coarsest), 0.0);  // already finer

  // Budget bounds: zero budget refines nothing; an unbounded budget reaches
  // the floor, never beyond it.
  EXPECT_EQ(model.reachable_level(coarsest, 0.0, 0), coarsest);
  EXPECT_EQ(model.reachable_level(coarsest, 1e9, 0), 0u);
  EXPECT_EQ(model.reachable_level(coarsest, 1e9, 1), 1u);
  // Exactly one step's budget buys exactly one level.
  const double one_step = model.step(coarsest - 1).total();
  EXPECT_EQ(model.reachable_level(coarsest, one_step, 0), coarsest - 1);
}

TEST(CostModel, CacheResidencyWaivesEstimatedIo) {
  Dataset data;
  canopus::PipelineOptions options;
  canopus::cache::CacheConfig cache_config;
  cache_config.budget_bytes = 32ull << 20;
  options.cache = cache_config;
  canopus::Pipeline pipeline(data.tiers, options);

  const auto geometry = cc::GeometryCache::load(data.tiers, "d.bp", "v");
  cc::ProgressiveReader cold(data.tiers, "d.bp", "v", &geometry);
  const auto before = cv::CostModel::build(data.tiers, cold);

  // Warm every delta block through the facade, then re-plan.
  canopus::ReadRequest rreq;
  rreq.path = "d.bp";
  rreq.var = "v";
  rreq.target_level = 0;
  canopus::ReadResult full;
  ASSERT_TRUE(pipeline.read(rreq, &full).ok());

  cc::ProgressiveReader warm(data.tiers, "d.bp", "v", &geometry);
  const auto after = cv::CostModel::build(data.tiers, warm);
  ASSERT_EQ(before.steps().size(), after.steps().size());
  for (std::size_t l = 0; l < after.steps().size(); ++l) {
    EXPECT_GT(before.steps()[l].io_seconds, 0.0) << "level " << l;
    EXPECT_EQ(after.steps()[l].io_seconds, 0.0) << "level " << l;
    EXPECT_GT(after.steps()[l].cached_blocks, 0u) << "level " << l;
  }
}

TEST(CostModel, CalibrationEwmaTracksObservedThroughput) {
  cv::Calibration calibration;
  EXPECT_DOUBLE_EQ(calibration.compute_seconds_per_byte(),
                   cv::Calibration::kPriorSecondsPerByte);
  // Feed a consistently slower signal; the EWMA must move toward it and the
  // degenerate samples must be ignored.
  calibration.observe_compute(0, 1.0);
  calibration.observe_compute(1000, 0.0);
  EXPECT_DOUBLE_EQ(calibration.compute_seconds_per_byte(),
                   cv::Calibration::kPriorSecondsPerByte);
  const double slow = 1e-6;  // 1 MB/s
  for (int i = 0; i < 64; ++i) {
    calibration.observe_compute(1 << 20, slow * (1 << 20));
  }
  EXPECT_GT(calibration.compute_seconds_per_byte(),
            100 * cv::Calibration::kPriorSecondsPerByte);
  EXPECT_LE(calibration.compute_seconds_per_byte(), slow * 1.01);
}

// ------------------------------------------------------------ concurrency --

TEST(QueryScheduler, ConcurrentClientsAllResolve) {
  Dataset data;
  cv::ServeConfig config;
  config.workers = 2;
  config.queue_limit = 4;
  config.default_deadline_seconds = 1e9;
  cv::QueryScheduler scheduler(data.tiers, config, {});

  const int kClients = 6;
  const int kQueriesEach = 4;
  std::vector<std::thread> clients;
  std::atomic<int> usable{0};
  std::atomic<int> overloaded{0};
  std::atomic<int> unexpected{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (int q = 0; q < kQueriesEach; ++q) {
        const cv::QueryOutcome outcome = scheduler.submit(query()).get();
        if (outcome.status.usable()) {
          usable.fetch_add(1);
        } else if (outcome.status.code == StatusCode::kOverloaded) {
          overloaded.fetch_add(1);
        } else {
          unexpected.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(unexpected.load(), 0);
  EXPECT_EQ(usable.load() + overloaded.load(), kClients * kQueriesEach);
  EXPECT_GT(usable.load(), 0);

  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, static_cast<std::uint64_t>(kClients * kQueriesEach));
  EXPECT_EQ(stats.admitted + stats.shed, stats.submitted);
  EXPECT_EQ(stats.completed + stats.failed, stats.admitted);
  EXPECT_LE(stats.max_queue_depth, config.queue_limit);
  EXPECT_EQ(stats.failed, 0u);
}

// ----------------------------------------------------------------- facade --

TEST(PipelineServe, SubmitQueryRoundTrip) {
  Dataset data;
  canopus::PipelineOptions options;
  cv::ServeConfig serve;
  serve.workers = 2;
  serve.queue_limit = 16;
  serve.default_deadline_seconds = 1e9;
  options.serve = serve;
  canopus::Pipeline pipeline(data.tiers, options);

  cv::QueryRequest request = query();
  request.target_level = 1;
  cv::QueryResult result;
  const Status status = pipeline.submit_query(request, &result);
  ASSERT_TRUE(status.ok()) << status.to_string();
  EXPECT_EQ(result.achieved_level, 1u);
  EXPECT_EQ(pipeline.query_scheduler().config().queue_limit, 16u);
  EXPECT_EQ(pipeline.query_scheduler().stats().completed, 1u);

  EXPECT_EQ(pipeline.submit_query(request, nullptr).code,
            StatusCode::kInvalidArgument);
}

TEST(PipelineServe, OverloadedStatusStringAndNonFiniteReadThreshold) {
  EXPECT_EQ(canopus::to_string(StatusCode::kOverloaded), "overloaded");

  Dataset data;
  canopus::Pipeline pipeline(data.tiers);
  canopus::ReadRequest rreq;
  rreq.path = "d.bp";
  rreq.var = "v";
  rreq.rmse_threshold = std::numeric_limits<double>::infinity();
  canopus::ReadResult result;
  EXPECT_EQ(pipeline.read(rreq, &result).code, StatusCode::kInvalidArgument);
}
