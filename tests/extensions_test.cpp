// Tests for the extension features: storage migration/eviction, byte-split
// refactoring, decimation replay, campaign writing, the geometry cache, and
// composed codec pipelines.

#include <gtest/gtest.h>

#include <cmath>

#include "compress/codec.hpp"
#include "compress/huffman.hpp"
#include "core/canopus.hpp"
#include "mesh/generators.hpp"
#include "sim/datasets.hpp"
#include "storage/hierarchy.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace cc = canopus::core;
namespace cm = canopus::mesh;
namespace cs = canopus::storage;
namespace cp = canopus::compress;
namespace cu = canopus::util;
namespace si = canopus::sim;

namespace {

cu::Bytes blob(std::size_t n, std::uint64_t seed = 1) {
  cu::Rng rng(seed);
  cu::Bytes b(n);
  for (auto& x : b) x = static_cast<std::byte>(rng.uniform_index(256));
  return b;
}

cm::Field wave_field(const cm::TriMesh& mesh, double phase = 0.0) {
  cm::Field f(mesh.vertex_count());
  for (cm::VertexId v = 0; v < mesh.vertex_count(); ++v) {
    const auto p = mesh.vertex(v);
    f[v] = std::sin(3.0 * p.x + phase) * std::cos(2.0 * p.y) + 0.1 * phase;
  }
  return f;
}

}  // namespace

// -------------------------------------------------- migration & eviction --

TEST(Migration, MoveBetweenTiers) {
  cs::StorageHierarchy h({cs::tmpfs_spec(1000), cs::lustre_spec(10000)});
  h.place("a", blob(100));
  ASSERT_EQ(h.find("a"), std::optional<std::size_t>(0));
  const auto io = h.migrate("a", 1);
  EXPECT_EQ(h.find("a"), std::optional<std::size_t>(1));
  EXPECT_GT(io.sim_seconds, 0.0);
  EXPECT_EQ(io.bytes, 100u);
  cu::Bytes out;
  h.read("a", out);
  EXPECT_EQ(out, blob(100));
  EXPECT_EQ(h.tier(0).used_bytes(), 0u);
}

TEST(Migration, SameTierIsNoop) {
  cs::StorageHierarchy h({cs::tmpfs_spec(1000), cs::lustre_spec(10000)});
  h.place("a", blob(100));
  const auto io = h.migrate("a", 0);
  EXPECT_EQ(io.sim_seconds, 0.0);
  EXPECT_EQ(h.find("a"), std::optional<std::size_t>(0));
}

TEST(Migration, MissingObjectThrows) {
  cs::StorageHierarchy h({cs::tmpfs_spec(1000)});
  EXPECT_THROW(h.migrate("ghost", 0), canopus::Error);
}

TEST(Migration, OverCapacityTargetThrows) {
  cs::StorageHierarchy h({cs::tmpfs_spec(1000), cs::lustre_spec(50)});
  h.place("a", blob(100));
  EXPECT_THROW(h.migrate("a", 1), canopus::Error);
  // Object must still be readable from its original tier.
  EXPECT_EQ(h.find("a"), std::optional<std::size_t>(0));
}

TEST(Eviction, LruVictimDemotedFirst) {
  cs::StorageHierarchy h({cs::tmpfs_spec(300), cs::lustre_spec(10000)});
  h.place("old", blob(100, 1));
  h.place("mid", blob(100, 2));
  h.place("hot", blob(100, 3));
  // Touch "old" so "mid" becomes the LRU.
  cu::Bytes tmp;
  h.read("old", tmp);
  const auto evicted = h.make_room(0, 100);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], "mid");
  EXPECT_EQ(h.find("mid"), std::optional<std::size_t>(1));
  EXPECT_EQ(h.find("old"), std::optional<std::size_t>(0));
}

TEST(Eviction, MakesEnoughRoomForLargeRequest) {
  cs::StorageHierarchy h({cs::tmpfs_spec(300), cs::lustre_spec(10000)});
  h.place("a", blob(100, 1));
  h.place("b", blob(100, 2));
  h.place("c", blob(100, 3));
  const auto evicted = h.make_room(0, 150);
  EXPECT_EQ(evicted.size(), 2u);  // one demotion frees 100, so two needed
  EXPECT_GE(h.tier(0).free_bytes(), 150u);
}

TEST(Eviction, NoopWhenAlreadyFree) {
  cs::StorageHierarchy h({cs::tmpfs_spec(300), cs::lustre_spec(10000)});
  h.place("a", blob(50));
  EXPECT_TRUE(h.make_room(0, 100).empty());
}

TEST(Eviction, ThrowsWhenLowerTiersFull) {
  cs::StorageHierarchy h({cs::tmpfs_spec(300), cs::lustre_spec(80)});
  h.place("a", blob(100, 1));
  h.place("b", blob(100, 2));
  EXPECT_THROW(h.make_room(0, 250), canopus::Error);
}

// --------------------------------------------------------------- byte-split --

TEST(ByteSplit, FullMergeIsBitExact) {
  const auto mesh = cm::make_rect_mesh(20, 20, 1.0, 1.0, 0.1, 3);
  const auto values = wave_field(mesh);
  const std::uint8_t groups[] = {2, 2, 4};
  const auto split = cc::byte_split(values, groups);
  EXPECT_EQ(split.group_count(), 3u);
  const auto merged = cc::byte_merge(split, 3);
  ASSERT_EQ(merged.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(merged[i], values[i]);
  }
}

TEST(ByteSplit, PrefixMergeWithinRelativeError) {
  const auto mesh = cm::make_rect_mesh(25, 25, 1.0, 1.0, 0.1, 5);
  auto values = wave_field(mesh);
  for (auto& v : values) v += 2.0;  // keep away from zero for relative error
  const std::uint8_t groups[] = {3, 2, 3};
  const auto split = cc::byte_split(values, groups);
  std::size_t prefix = 0;
  for (std::size_t g = 1; g <= 3; ++g) {
    prefix += groups[g - 1];
    const auto merged = cc::byte_merge(split, g);
    const double rel = cc::byte_split_relative_error(prefix);
    for (std::size_t i = 0; i < values.size(); ++i) {
      EXPECT_LE(std::abs(merged[i] - values[i]),
                rel * std::abs(values[i]) + 1e-300)
          << "groups=" << g << " i=" << i;
    }
  }
}

TEST(ByteSplit, MorePrefixBytesMoreAccuracy) {
  const auto mesh = cm::make_rect_mesh(15, 15, 1.0, 1.0);
  const auto values = wave_field(mesh, 1.0);
  const std::uint8_t groups[] = {2, 2, 2, 2};
  const auto split = cc::byte_split(values, groups);
  double prev_err = 1e300;
  for (std::size_t g = 1; g <= 4; ++g) {
    const auto merged = cc::byte_merge(split, g);
    const double err = cu::max_abs_error(values, merged);
    EXPECT_LE(err, prev_err);
    prev_err = err;
  }
  EXPECT_EQ(prev_err, 0.0);
}

TEST(ByteSplit, TopPlanesCompressBetterThanTail) {
  // The point of the scheme: exponent/sign bytes are redundant across smooth
  // data, low mantissa bytes are noise.
  const auto mesh = cm::make_rect_mesh(40, 40, 1.0, 1.0, 0.1, 9);
  const auto values = wave_field(mesh);
  const std::uint8_t groups[] = {2, 6};
  const auto split = cc::byte_split(values, groups);
  const auto top = cp::huffman_encode(split.planes[0]);
  const auto tail = cp::huffman_encode(split.planes[1]);
  const double top_ratio =
      static_cast<double>(split.planes[0].size()) / static_cast<double>(top.size());
  const double tail_ratio =
      static_cast<double>(split.planes[1].size()) / static_cast<double>(tail.size());
  EXPECT_GT(top_ratio, 1.3);   // sign/exponent bytes are highly redundant
  EXPECT_LT(tail_ratio, 1.1);  // low mantissa bytes are noise-like
}

TEST(ByteSplit, BadGroupWidthsThrow) {
  const std::vector<double> xs{1.0, 2.0};
  const std::uint8_t not_eight[] = {2, 2};
  EXPECT_THROW(cc::byte_split(xs, not_eight), canopus::Error);
  const std::uint8_t ok[] = {4, 4};
  const auto split = cc::byte_split(xs, ok);
  EXPECT_THROW(cc::byte_merge(split, 0), canopus::Error);
  EXPECT_THROW(cc::byte_merge(split, 3), canopus::Error);
}

// ------------------------------------------------------- decimation replay --

TEST(Replay, ReproducesDirectDecimationExactly) {
  const auto mesh = cm::make_annulus_mesh(10, 60, 0.5, 1.0, 0.1, 7);
  const auto f0 = wave_field(mesh, 0.0);
  cm::DecimateOptions opt;
  opt.ratio = 2.0;
  const auto direct = cm::decimate(mesh, f0, opt);
  const auto replayed = cm::replay_decimation(direct, f0);
  ASSERT_EQ(replayed.size(), direct.values.size());
  for (std::size_t i = 0; i < replayed.size(); ++i) {
    EXPECT_EQ(replayed[i], direct.values[i]);
  }
}

TEST(Replay, OtherTimestepMatchesItsOwnDecimation) {
  // Shortest-first decimation is geometry-driven, so decimating timestep B
  // directly must equal replaying A's recipe on B's field.
  const auto mesh = cm::make_annulus_mesh(10, 60, 0.5, 1.0, 0.1, 7);
  const auto fa = wave_field(mesh, 0.0);
  const auto fb = wave_field(mesh, 2.5);
  cm::DecimateOptions opt;
  opt.ratio = 2.0;
  const auto recipe = cm::decimate(mesh, fa, opt);
  const auto direct_b = cm::decimate(mesh, fb, opt);
  const auto replay_b = cm::replay_decimation(recipe, fb);
  ASSERT_EQ(replay_b.size(), direct_b.values.size());
  for (std::size_t i = 0; i < replay_b.size(); ++i) {
    EXPECT_EQ(replay_b[i], direct_b.values[i]);
  }
}

TEST(Replay, SizeMismatchThrows) {
  const auto mesh = cm::make_rect_mesh(6, 6, 1.0, 1.0);
  cm::DecimateOptions opt;
  opt.ratio = 2.0;
  const auto recipe = cm::decimate(mesh, wave_field(mesh), opt);
  cm::Field wrong(3, 0.0);
  EXPECT_THROW(cm::replay_decimation(recipe, wrong), canopus::Error);
}

// ---------------------------------------------------------------- campaign --

TEST(Campaign, WritesAndReadsBackAllTimesteps) {
  cs::StorageHierarchy tiers(
      {cs::tmpfs_spec(64 << 20), cs::lustre_spec(1 << 30)});
  const auto mesh = cm::make_annulus_mesh(12, 72, 0.5, 1.0, 0.1, 13);
  std::vector<cm::Field> steps;
  for (int t = 0; t < 5; ++t) {
    steps.push_back(wave_field(mesh, 0.3 * t));
  }
  cc::CampaignConfig config;
  config.refactor.levels = 3;
  config.refactor.codec = "zfp";
  config.refactor.error_bound = 1e-7;
  config.threads = 2;
  const auto report =
      cc::write_campaign(tiers, "camp.bp", "dpot", mesh, steps, config);
  EXPECT_EQ(report.timesteps, 5u);
  EXPECT_GT(report.stored_bytes, 0u);
  EXPECT_LT(report.stored_bytes, report.raw_bytes);
  EXPECT_GT(report.geometry_bytes, 0u);

  const auto geometry = cc::GeometryCache::load(tiers, "camp.bp", "dpot");
  EXPECT_EQ(geometry.level_count(), 3u);
  for (int t = 0; t < 5; ++t) {
    cc::ProgressiveReader reader(tiers, "camp.bp", cc::timestep_var("dpot", t),
                                 &geometry);
    reader.refine_to(0);
    ASSERT_EQ(reader.values().size(), steps[t].size()) << "t=" << t;
    EXPECT_LE(cu::max_abs_error(steps[t], reader.values()),
              3.0 * config.refactor.error_bound)
        << "t=" << t;
  }
}

TEST(Campaign, GeometryStoredOncePerCampaign) {
  cs::StorageHierarchy tiers(
      {cs::tmpfs_spec(64 << 20), cs::lustre_spec(1 << 30)});
  const auto mesh = cm::make_rect_mesh(25, 25, 1.0, 1.0, 0.1, 17);
  std::vector<cm::Field> steps(8, wave_field(mesh));
  cc::CampaignConfig config;
  config.refactor.levels = 3;
  const auto report =
      cc::write_campaign(tiers, "g.bp", "v", mesh, steps, config);
  // Geometry cost must not scale with timestep count: 8 timesteps of data
  // but a single mesh+mapping set.
  canopus::adios::BpReader reader(tiers, "g.bp");
  const auto info = reader.inq_var("v");
  std::size_t meshes = 0, mappings = 0;
  for (const auto& b : info.blocks) {
    if (b.kind == canopus::adios::BlockKind::kMesh) ++meshes;
    if (b.kind == canopus::adios::BlockKind::kMapping) ++mappings;
  }
  EXPECT_EQ(meshes, 3u);
  EXPECT_EQ(mappings, 2u);
  EXPECT_EQ(reader.attribute("group_size"), std::optional<std::string>("8"));
  EXPECT_GT(report.raw_bytes, 8u * report.geometry_bytes / 10u);
}

TEST(Campaign, RequiresShortestFirstPriority) {
  cs::StorageHierarchy tiers({cs::tmpfs_spec(64 << 20)});
  const auto mesh = cm::make_rect_mesh(6, 6, 1.0, 1.0);
  std::vector<cm::Field> steps(1, wave_field(mesh));
  cc::CampaignConfig config;
  config.refactor.decimate.priority = cm::EdgePriority::kRandom;
  EXPECT_THROW(cc::write_campaign(tiers, "x.bp", "v", mesh, steps, config),
               canopus::Error);
}

TEST(Campaign, EmptyTimestepsThrow) {
  cs::StorageHierarchy tiers({cs::tmpfs_spec(1 << 20)});
  const auto mesh = cm::make_rect_mesh(4, 4, 1.0, 1.0);
  EXPECT_THROW(cc::write_campaign(tiers, "x.bp", "v", mesh, {}, {}),
               canopus::Error);
}

// ---------------------------------------------------------- geometry cache --

TEST(GeometryCache, MatchesOnDemandReads) {
  cs::StorageHierarchy tiers(
      {cs::tmpfs_spec(64 << 20), cs::lustre_spec(1 << 30)});
  const auto mesh = cm::make_disk_mesh(10, 48, 1.0, 0.1, 23);
  const auto values = wave_field(mesh);
  cc::RefactorConfig config;
  config.levels = 3;
  config.codec = "fpc";
  cc::refactor_and_write(tiers, "gc.bp", "v", mesh, values, config);

  double one_time_io = 0.0;
  const auto geometry = cc::GeometryCache::load(tiers, "gc.bp", "v", &one_time_io);
  EXPECT_GT(one_time_io, 0.0);
  ASSERT_EQ(geometry.level_count(), 3u);
  ASSERT_EQ(geometry.mappings.size(), 2u);

  cc::ProgressiveReader cached(tiers, "gc.bp", "v", &geometry);
  cc::ProgressiveReader plain(tiers, "gc.bp", "v");
  cached.refine_to(0);
  plain.refine_to(0);
  ASSERT_EQ(cached.values().size(), plain.values().size());
  for (std::size_t i = 0; i < cached.values().size(); ++i) {
    EXPECT_EQ(cached.values()[i], plain.values()[i]);
  }
  // The cached reader moves strictly fewer bytes per read.
  EXPECT_LT(cached.cumulative().bytes_read, plain.cumulative().bytes_read);
  EXPECT_TRUE(cached.current_mesh() == plain.current_mesh());
}

TEST(GeometryCache, MismatchedCacheRejected) {
  cs::StorageHierarchy tiers(
      {cs::tmpfs_spec(64 << 20), cs::lustre_spec(1 << 30)});
  const auto mesh = cm::make_rect_mesh(12, 12, 1.0, 1.0);
  cc::RefactorConfig two_levels, three_levels;
  two_levels.levels = 2;
  three_levels.levels = 3;
  cc::refactor_and_write(tiers, "a.bp", "v", mesh, wave_field(mesh), two_levels);
  cc::refactor_and_write(tiers, "b.bp", "v", mesh, wave_field(mesh), three_levels);
  const auto geometry = cc::GeometryCache::load(tiers, "a.bp", "v");
  EXPECT_THROW(cc::ProgressiveReader(tiers, "b.bp", "v", &geometry),
               canopus::Error);
}

// ----------------------------------------------------------- codec pipelines --

TEST(Pipelines, ComposedRoundTripWithinBound) {
  const auto mesh = cm::make_rect_mesh(30, 30, 1.0, 1.0, 0.1, 29);
  const auto values = wave_field(mesh);
  for (const char* name : {"zfp+lzss", "sz+lzss", "fpc+huffman",
                           "fpc+rle+huffman", "raw+lzss"}) {
    const auto codec = cp::make_codec(name);
    EXPECT_EQ(codec->name(), name);
    const double eb = 1e-5;
    const auto dec = codec->decode(codec->encode(values, eb));
    ASSERT_EQ(dec.size(), values.size()) << name;
    if (codec->lossless()) {
      EXPECT_EQ(dec, values) << name;
    } else {
      EXPECT_LE(cu::max_abs_error(values, dec), eb) << name;
    }
  }
}

TEST(Pipelines, StageCanShrinkHeadOutput) {
  // Raw doubles of a smooth field carry redundant exponent bytes that an
  // entropy stage removes.
  const auto mesh = cm::make_rect_mesh(50, 50, 1.0, 1.0);
  const auto values = wave_field(mesh);
  const auto plain = cp::make_codec("raw")->encode(values, 0.0);
  const auto staged = cp::make_codec("raw+huffman")->encode(values, 0.0);
  EXPECT_LT(staged.size(), plain.size());
}

TEST(Pipelines, BadStageNameThrows) {
  EXPECT_THROW(cp::make_codec("zfp+gzip"), canopus::Error);
  EXPECT_THROW(cp::make_codec("zfp+"), canopus::Error);
  EXPECT_THROW(cp::make_codec("nope+lzss"), canopus::Error);
}

TEST(Pipelines, UsableInsideRefactorer) {
  cs::StorageHierarchy tiers(
      {cs::tmpfs_spec(64 << 20), cs::lustre_spec(1 << 30)});
  const auto mesh = cm::make_annulus_mesh(8, 48, 0.5, 1.0, 0.1, 31);
  const auto values = wave_field(mesh);
  cc::RefactorConfig config;
  config.levels = 3;
  config.codec = "zfp+lzss";
  config.error_bound = 1e-6;
  cc::refactor_and_write(tiers, "pipe.bp", "v", mesh, values, config);
  cc::ProgressiveReader reader(tiers, "pipe.bp", "v");
  reader.refine_to(0);
  EXPECT_LE(cu::max_abs_error(values, reader.values()), 3e-6);
}

// ------------------------------------------------------- failure injection --

TEST(FailureInjection, CorruptDeltaPayloadSurfacesAsError) {
  cs::StorageHierarchy tiers(
      {cs::tmpfs_spec(64 << 20), cs::lustre_spec(1 << 30)});
  const auto mesh = cm::make_rect_mesh(20, 20, 1.0, 1.0, 0.1, 37);
  cc::RefactorConfig config;
  config.levels = 2;
  config.codec = "sz";
  config.error_bound = 1e-4;
  cc::refactor_and_write(tiers, "corrupt.bp", "v", mesh, wave_field(mesh),
                         config);
  // Overwrite the delta block's object with garbage, keeping metadata intact.
  canopus::adios::BpReader meta(tiers, "corrupt.bp");
  const auto info = meta.inq_var("v");
  const auto* rec = info.block(canopus::adios::BlockKind::kDelta, 0);
  ASSERT_NE(rec, nullptr);
  tiers.write_to(rec->tier, rec->object_key, blob(rec->stored_bytes, 99));
  cc::ProgressiveReader reader(tiers, "corrupt.bp", "v");
  EXPECT_THROW(reader.refine(), canopus::Error);
}

TEST(FailureInjection, TruncatedMetadataSurfacesAsError) {
  cs::StorageHierarchy tiers({cs::tmpfs_spec(64 << 20)});
  const auto mesh = cm::make_rect_mesh(8, 8, 1.0, 1.0);
  cc::RefactorConfig config;
  config.levels = 2;
  cc::refactor_and_write(tiers, "trunc.bp", "v", mesh, wave_field(mesh), config);
  cu::Bytes meta_bytes;
  tiers.read(canopus::adios::metadata_key("trunc.bp"), meta_bytes);
  meta_bytes.resize(meta_bytes.size() / 2);
  tiers.write_to(0, canopus::adios::metadata_key("trunc.bp"), meta_bytes);
  EXPECT_THROW(canopus::adios::BpReader(tiers, "trunc.bp"), canopus::Error);
}

TEST(VariableGroup, MultipleVariablesShareOneGeometry) {
  // XGC writes dpot, density and temperature over the same mesh; the group
  // writer stores one mesh/mapping set for all of them.
  cs::StorageHierarchy tiers(
      {cs::tmpfs_spec(64 << 20), cs::lustre_spec(1 << 30)});
  const auto mesh = cm::make_annulus_mesh(10, 60, 0.5, 1.0, 0.1, 71);
  std::vector<std::pair<std::string, cm::Field>> group;
  group.emplace_back("dpot", wave_field(mesh, 0.0));
  group.emplace_back("density", wave_field(mesh, 1.0));
  group.emplace_back("temperature", wave_field(mesh, 2.0));
  cc::CampaignConfig config;
  config.refactor.levels = 3;
  config.refactor.codec = "zfp";
  config.refactor.error_bound = 1e-7;
  const auto report = cc::write_variable_group(tiers, "grp.bp", "geometry",
                                               mesh, group, config);
  EXPECT_EQ(report.timesteps, 3u);

  const auto geometry = cc::GeometryCache::load(tiers, "grp.bp", "geometry");
  for (const auto& [name, truth] : group) {
    cc::ProgressiveReader reader(tiers, "grp.bp", name, &geometry);
    reader.refine_to(0);
    EXPECT_LE(cu::max_abs_error(truth, reader.values()), 3e-7) << name;
  }
  // Exactly one mesh block per level in the whole container.
  canopus::adios::BpReader raw(tiers, "grp.bp");
  std::size_t mesh_blocks = 0;
  for (const auto& var : raw.variables()) {
    for (const auto& b : raw.inq_var(var).blocks) {
      if (b.kind == canopus::adios::BlockKind::kMesh) ++mesh_blocks;
    }
  }
  EXPECT_EQ(mesh_blocks, 3u);
}
