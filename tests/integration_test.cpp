// Cross-module integration tests: the full write -> place -> read -> restore
// -> analyze pipeline on all three evaluation datasets, with both memory- and
// file-backed tiers, parameterized over codecs and level counts.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <memory>

#include "analytics/blob.hpp"
#include "analytics/raster.hpp"
#include "core/canopus.hpp"
#include "mesh/validate.hpp"
#include "sim/datasets.hpp"
#include "storage/hierarchy.hpp"
#include "util/stats.hpp"

namespace cc = canopus::core;
namespace cm = canopus::mesh;
namespace cs = canopus::storage;
namespace cu = canopus::util;
namespace si = canopus::sim;
namespace an = canopus::analytics;

namespace {

si::Dataset small_dataset(const std::string& name) {
  if (name == "xgc1") {
    si::XgcOptions o;
    o.rings = 24;
    o.sectors = 120;
    return si::make_xgc_dataset(o);
  }
  if (name == "genasis") {
    si::GenasisOptions o;
    o.rings = 32;
    o.sectors = 128;
    return si::make_genasis_dataset(o);
  }
  si::CfdOptions o;
  o.nx = 48;
  o.ny = 32;
  return si::make_cfd_dataset(o);
}

}  // namespace

// Sweep: every dataset x codec x level count survives the full round trip
// within the accumulated error budget.
class FullPipeline
    : public ::testing::TestWithParam<
          std::tuple<std::string, std::string, std::size_t>> {};

TEST_P(FullPipeline, WriteReadRestoreWithinBudget) {
  const auto& [dataset_name, codec, levels] = GetParam();
  const auto ds = small_dataset(dataset_name);
  cs::StorageHierarchy tiers(
      {cs::tmpfs_spec(8 << 20), cs::lustre_spec(1 << 30)});
  cc::RefactorConfig config;
  config.levels = levels;
  config.codec = codec;
  config.error_bound = 1e-5;
  const auto report = cc::refactor_and_write(tiers, "it.bp", ds.variable,
                                             ds.mesh, ds.values, config);
  EXPECT_EQ(report.products.size(), levels);
  EXPECT_EQ(report.level_vertices.size(), levels);

  cc::ProgressiveReader reader(tiers, "it.bp", ds.variable);
  EXPECT_EQ(reader.level_count(), levels);
  while (!reader.at_full_accuracy()) {
    EXPECT_TRUE(cm::validate(reader.current_mesh()).ok);
    reader.refine();
  }
  ASSERT_EQ(reader.values().size(), ds.values.size());
  const double budget = static_cast<double>(levels) * config.error_bound + 1e-12;
  EXPECT_LE(cu::max_abs_error(ds.values, reader.values()), budget);
}

INSTANTIATE_TEST_SUITE_P(
    DatasetsCodecsLevels, FullPipeline,
    ::testing::Combine(::testing::Values("xgc1", "genasis", "cfd"),
                       ::testing::Values("zfp", "sz", "fpc", "zfp+lzss"),
                       ::testing::Values(std::size_t{2}, std::size_t{4})),
    [](const auto& info) {
      std::string codec = std::get<1>(info.param);
      std::replace(codec.begin(), codec.end(), '+', '_');
      return std::get<0>(info.param) + "_" + codec + "_" +
             std::to_string(std::get<2>(info.param));
    });

TEST(Integration, FileBackedTiersEndToEnd) {
  namespace fs = std::filesystem;
  const auto root = fs::temp_directory_path() / "canopus_it_tiers";
  fs::remove_all(root);
  cs::TierSpec fast = cs::tmpfs_spec(8 << 20);
  cs::TierSpec slow = cs::lustre_spec(1 << 30);
  slow.backend = cs::Backend::kFile;
  slow.root_dir = (root / "lustre").string();
  cs::StorageHierarchy tiers({fast, slow});

  const auto ds = small_dataset("xgc1");
  cc::RefactorConfig config;
  config.levels = 3;
  config.codec = "zfp";
  config.error_bound = 1e-6;
  cc::refactor_and_write(tiers, "file.bp", ds.variable, ds.mesh, ds.values,
                         config);
  // Deltas must actually be on disk.
  EXPECT_FALSE(fs::is_empty(root / "lustre"));

  cc::ProgressiveReader reader(tiers, "file.bp", ds.variable);
  reader.refine_to(0);
  EXPECT_LE(cu::max_abs_error(ds.values, reader.values()),
            3.0 * config.error_bound);
  fs::remove_all(root);
}

TEST(Integration, TwoVariablesInOneContainerViaSeparatePaths) {
  cs::StorageHierarchy tiers(
      {cs::tmpfs_spec(16 << 20), cs::lustre_spec(1 << 30)});
  const auto xgc = small_dataset("xgc1");
  const auto cfd = small_dataset("cfd");
  cc::RefactorConfig config;
  config.levels = 2;
  cc::refactor_and_write(tiers, "a.bp", xgc.variable, xgc.mesh, xgc.values,
                         config);
  cc::refactor_and_write(tiers, "b.bp", cfd.variable, cfd.mesh, cfd.values,
                         config);
  cc::ProgressiveReader ra(tiers, "a.bp", xgc.variable);
  cc::ProgressiveReader rb(tiers, "b.bp", cfd.variable);
  ra.refine_to(0);
  rb.refine_to(0);
  EXPECT_EQ(ra.values().size(), xgc.values.size());
  EXPECT_EQ(rb.values().size(), cfd.values.size());
}

TEST(Integration, BlobAnalysisDegradesGracefullyWithDecimation) {
  // The Fig. 8 story as a regression test: blob counts are non-increasing
  // (within one blob of slack) and overlap with full accuracy stays high.
  si::XgcOptions opt;
  opt.rings = 48;
  opt.sectors = 240;
  const auto ds = si::make_xgc_dataset(opt);
  cs::StorageHierarchy tiers(
      {cs::tmpfs_spec(16 << 20), cs::lustre_spec(1 << 30)});
  cc::RefactorConfig config;
  config.levels = 5;
  config.codec = "zfp";
  config.error_bound = 1e-4;
  cc::refactor_and_write(tiers, "blob.bp", "dpot", ds.mesh, ds.values, config);

  const auto bounds = ds.mesh.bounds();
  const double hi = *std::max_element(ds.values.begin(), ds.values.end());
  an::BlobParams params;
  params.min_threshold = 10;
  params.max_threshold = 200;
  params.min_area = 60;

  auto blobs_at = [&](const cm::TriMesh& mesh, const cm::Field& values) {
    const auto raster = an::rasterize(mesh, values, 240, 240, bounds, 0.0);
    return an::detect_blobs(an::to_gray8(raster, 0.0, hi), 240, 240, params);
  };

  cc::ProgressiveReader reader(tiers, "blob.bp", "dpot");
  std::vector<std::vector<an::Blob>> per_level;
  for (;;) {
    per_level.push_back(blobs_at(reader.current_mesh(), reader.values()));
    if (reader.at_full_accuracy()) break;
    reader.refine();
  }
  const auto& reference = per_level.back();  // L0
  ASSERT_GE(reference.size(), 3u);
  for (std::size_t i = 0; i + 1 < per_level.size(); ++i) {
    // Coarser levels (earlier entries) never invent many blobs...
    EXPECT_LE(per_level[i].size(), reference.size() + 1) << "level entry " << i;
    // ...and what they find overlaps the truth.
    EXPECT_GE(an::overlap_ratio(per_level[i], reference), 0.7)
        << "level entry " << i;
  }
}

TEST(Integration, ProportionalTierAllocationBypassWorks) {
  // Section IV-B's proportional-allocation assumption: fast tier sized at a
  // fraction of the output; oversized products overflow downward and the
  // container remains fully readable.
  const auto ds = small_dataset("genasis");
  const std::size_t raw = ds.values.size() * sizeof(double);
  cs::StorageHierarchy tiers(
      {cs::tmpfs_spec(raw / 8), cs::lustre_spec(1 << 30)});
  cc::RefactorConfig config;
  config.levels = 4;
  config.codec = "zfp";
  config.error_bound = 1e-5;
  const auto report = cc::refactor_and_write(tiers, "p.bp", ds.variable,
                                             ds.mesh, ds.values, config);
  bool spilled = false;
  for (const auto& p : report.products) {
    if (p.tier == 1) spilled = true;
  }
  EXPECT_TRUE(spilled);
  cc::ProgressiveReader reader(tiers, "p.bp", ds.variable);
  reader.refine_to(0);
  EXPECT_EQ(reader.values().size(), ds.values.size());
}

TEST(Integration, DegradedPipelineStillRefinesUnderSlowTierFaults) {
  // End-to-end robustness: refactor with replicas, then run the progressive
  // read with 10% injected read faults on the slow tier. The pipeline must
  // reach at least one level beyond the base without throwing, and the
  // retry counters must show the fault path actually ran.
  const auto ds = small_dataset("xgc1");
  const std::size_t raw = ds.values.size() * sizeof(double);
  cs::StorageHierarchy tiers({cs::tmpfs_spec(raw), cs::lustre_spec(1 << 30)});
  cc::RefactorConfig config;
  config.levels = 4;
  config.codec = "zfp";
  config.error_bound = 1e-5;
  cc::refactor_and_write(tiers, "degraded.bp", ds.variable, ds.mesh,
                         ds.values, config);

  auto injector = std::make_shared<cs::FaultInjector>(42);
  cs::FaultProfile profile;
  profile.read_error = 0.10;
  injector->set_profile(1, profile);
  tiers.attach_fault_injector(injector);
  cs::RetryPolicy retry;
  retry.max_attempts = 8;
  tiers.set_retry_policy(retry);

  // No geometry cache: meshes and mappings are fetched from the faulted
  // tier on the per-step path, exercising retries on every block kind.
  cc::ProgressiveReader reader(tiers, "degraded.bp", ds.variable);
  const auto base_level = reader.current_level();
  while (!reader.at_full_accuracy() &&
         reader.last_status() != cc::RefineStatus::kDegraded) {
    reader.refine();  // must never throw, whatever the tier does
  }
  EXPECT_LT(reader.current_level(), base_level);  // >= base+1 accuracy
  EXPECT_GT(reader.cumulative().retries, 0u);     // the faults actually fired
  EXPECT_EQ(reader.cumulative().retries, injector->counters().read_errors +
                                             injector->counters().corruptions);
  if (reader.at_full_accuracy()) {
    EXPECT_LE(cu::max_abs_error(ds.values, reader.values()),
              4.0 * config.error_bound);
  }
}

TEST(Integration, CampaignPlusGeometryCachePlusAnalysis) {
  // Campaign write, shared geometry, per-timestep progressive analysis.
  si::XgcOptions opt;
  opt.rings = 24;
  opt.sectors = 120;
  const auto ds = si::make_xgc_dataset(opt);
  std::vector<cm::Field> steps;
  for (int t = 0; t < 3; ++t) {
    cm::Field f = ds.values;
    for (auto& x : f) x *= 1.0 + 0.1 * t;
    steps.push_back(std::move(f));
  }
  cs::StorageHierarchy tiers(
      {cs::tmpfs_spec(32 << 20), cs::lustre_spec(1 << 30)});
  cc::CampaignConfig config;
  config.refactor.levels = 3;
  config.refactor.error_bound = 1e-6;
  config.threads = 2;
  cc::write_campaign(tiers, "camp.bp", "dpot", ds.mesh, steps, config);
  const auto geometry = cc::GeometryCache::load(tiers, "camp.bp", "dpot");
  for (int t = 0; t < 3; ++t) {
    cc::ProgressiveReader reader(tiers, "camp.bp", cc::timestep_var("dpot", t),
                                 &geometry);
    // Base-level analysis is enough to see the amplitude trend across steps.
    cu::RunningStats st;
    st.add(reader.values());
    EXPECT_GT(st.max(), 0.0) << "t=" << t;
    reader.refine_to(0);
    EXPECT_LE(cu::max_abs_error(steps[t], reader.values()), 3e-6) << "t=" << t;
  }
}
