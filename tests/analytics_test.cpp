// Tests for the analytics module: rasterization, 8-bit quantization, blob
// detection (synthetic images with known blobs), and blob overlap metrics.

#include <gtest/gtest.h>

#include <cmath>

#include "analytics/blob.hpp"
#include "analytics/raster.hpp"
#include "mesh/generators.hpp"
#include "util/rng.hpp"

namespace an = canopus::analytics;
namespace cm = canopus::mesh;
namespace cu = canopus::util;

namespace {

/// Paints gaussian bright spots onto a dark byte image.
std::vector<std::uint8_t> synthetic_image(
    std::size_t w, std::size_t h,
    const std::vector<std::tuple<double, double, double>>& spots,  // x, y, sigma
    double amplitude = 220.0, double background = 0.0) {
  std::vector<std::uint8_t> img(w * h);
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      double v = background;
      for (const auto& [cx, cy, sigma] : spots) {
        const double dx = static_cast<double>(x) - cx;
        const double dy = static_cast<double>(y) - cy;
        v += amplitude * std::exp(-(dx * dx + dy * dy) / (2 * sigma * sigma));
      }
      img[y * w + x] = static_cast<std::uint8_t>(std::min(v, 255.0));
    }
  }
  return img;
}

an::BlobParams default_params() {
  an::BlobParams p;
  p.min_threshold = 10;
  p.max_threshold = 200;
  p.min_area = 20;
  return p;
}

}  // namespace

// --------------------------------------------------------------- raster --

TEST(Raster, LinearFieldSampledExactly) {
  const auto mesh = cm::make_rect_mesh(16, 16, 1.0, 1.0, 0.2, 4);
  cm::Field f(mesh.vertex_count());
  for (cm::VertexId v = 0; v < mesh.vertex_count(); ++v) {
    const auto p = mesh.vertex(v);
    f[v] = 2.0 * p.x + 3.0 * p.y;
  }
  const auto raster = an::rasterize(mesh, f, 32, 32, mesh.bounds());
  for (std::size_t y = 4; y < 28; ++y) {
    for (std::size_t x = 4; x < 28; ++x) {
      if (!raster.inside[y * 32 + x]) continue;
      const double px = (static_cast<double>(x) + 0.5) / 32.0;
      const double py = (static_cast<double>(y) + 0.5) / 32.0;
      EXPECT_NEAR(raster.at(x, y), 2.0 * px + 3.0 * py, 1e-9);
    }
  }
}

TEST(Raster, OutsidePixelsCarryBackground) {
  // Annulus: the central hole must stay at the background value.
  const auto mesh = cm::make_annulus_mesh(6, 48, 0.5, 1.0);
  const cm::Field f(mesh.vertex_count(), 7.0);
  const auto raster = an::rasterize(mesh, f, 64, 64, mesh.bounds(), -1.0);
  // Center pixel is inside the hole.
  EXPECT_FALSE(raster.inside[32 * 64 + 32]);
  EXPECT_EQ(raster.at(32, 32), -1.0);
  // Some pixel over the annulus body is inside.
  EXPECT_TRUE(raster.inside[32 * 64 + 2]);
  EXPECT_NEAR(raster.at(2, 32), 7.0, 1e-9);
}

TEST(Raster, Gray8QuantizationClampsAndScales) {
  an::RasterField f;
  f.width = 3;
  f.height = 1;
  f.pixels = {-5.0, 0.5, 99.0};
  f.inside = {true, true, true};
  const auto g = an::to_gray8(f, 0.0, 1.0);
  EXPECT_EQ(g[0], 0);
  EXPECT_EQ(g[1], 128);
  EXPECT_EQ(g[2], 255);
}

TEST(Raster, SizeMismatchThrows) {
  const auto mesh = cm::make_rect_mesh(4, 4, 1.0, 1.0);
  cm::Field wrong(3, 0.0);
  EXPECT_THROW(an::rasterize(mesh, wrong, 8, 8, mesh.bounds()), canopus::Error);
}

// ----------------------------------------------------------------- blobs --

TEST(Blob, FindsIsolatedSpots) {
  const auto img = synthetic_image(200, 200,
                                   {{50, 50, 8}, {150, 60, 10}, {100, 150, 7}});
  const auto blobs = an::detect_blobs(img, 200, 200, default_params());
  EXPECT_EQ(blobs.size(), 3u);
}

TEST(Blob, CentersAreAccurate) {
  const auto img = synthetic_image(120, 120, {{40.0, 70.0, 6.0}});
  const auto blobs = an::detect_blobs(img, 120, 120, default_params());
  ASSERT_EQ(blobs.size(), 1u);
  EXPECT_NEAR(blobs[0].center.x, 40.0, 1.5);
  EXPECT_NEAR(blobs[0].center.y, 70.0, 1.5);
  EXPECT_GT(blobs[0].diameter, 5.0);
  EXPECT_GT(blobs[0].area, default_params().min_area);
}

TEST(Blob, EmptyImageHasNoBlobs) {
  const std::vector<std::uint8_t> img(100 * 100, 0);
  EXPECT_TRUE(an::detect_blobs(img, 100, 100, default_params()).empty());
}

TEST(Blob, MinAreaFiltersSmallSpots) {
  // sigma 1.5 spot: even at the lowest threshold its bright area stays
  // below ~45 px^2, so min_area = 60 must reject it at every slice.
  const auto img = synthetic_image(200, 200, {{60, 60, 12}, {150, 150, 1.5}});
  auto params = default_params();
  params.min_area = 60;
  const auto blobs = an::detect_blobs(img, 200, 200, params);
  ASSERT_EQ(blobs.size(), 1u);
  EXPECT_NEAR(blobs[0].center.x, 60.0, 2.0);
}

TEST(Blob, HigherMinThresholdDropsFaintBlobs) {
  // One bright and one faint spot; Config2's high minThreshold (150) must
  // drop the faint one while Config1 (10) keeps both.
  auto img = synthetic_image(200, 200, {{60, 60, 9}});
  const auto faint = synthetic_image(200, 200, {{150, 150, 9}}, 100.0);
  for (std::size_t i = 0; i < img.size(); ++i) {
    img[i] = static_cast<std::uint8_t>(
        std::min<int>(255, img[i] + faint[i]));
  }
  auto config1 = default_params();
  config1.min_threshold = 10;
  auto config2 = default_params();
  config2.min_threshold = 150;
  EXPECT_EQ(an::detect_blobs(img, 200, 200, config1).size(), 2u);
  EXPECT_EQ(an::detect_blobs(img, 200, 200, config2).size(), 1u);
}

TEST(Blob, TouchingBlobsMergeWhenClose) {
  // Two overlapping gaussians closer than minDistBetweenBlobs act as one.
  const auto img = synthetic_image(200, 200, {{100, 100, 8}, {106, 100, 8}});
  auto params = default_params();
  params.min_dist_between_blobs = 15.0;
  const auto blobs = an::detect_blobs(img, 200, 200, params);
  EXPECT_EQ(blobs.size(), 1u);
}

TEST(Blob, DiagonalConnectivityIsOneComponent) {
  // A diagonal line of bright pixels: 8-connectivity -> one component.
  std::vector<std::uint8_t> img(64 * 64, 0);
  for (std::size_t i = 10; i < 40; ++i) img[i * 64 + i] = 255;
  an::BlobParams p;
  p.min_threshold = 10;
  p.max_threshold = 200;
  p.min_area = 5;
  p.min_repeatability = 2;
  const auto blobs = an::detect_blobs(img, 64, 64, p);
  EXPECT_EQ(blobs.size(), 1u);
}

TEST(Blob, SummarizeAggregates) {
  std::vector<an::Blob> blobs(3);
  blobs[0].diameter = 10;
  blobs[0].area = 100;
  blobs[1].diameter = 20;
  blobs[1].area = 300;
  blobs[2].diameter = 30;
  blobs[2].area = 500;
  const auto s = an::summarize(blobs);
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.mean_diameter, 20.0);
  EXPECT_DOUBLE_EQ(s.aggregate_area, 900.0);
  const auto empty = an::summarize({});
  EXPECT_EQ(empty.count, 0u);
  EXPECT_EQ(empty.mean_diameter, 0.0);
}

TEST(Blob, OverlapRatioDefinition) {
  an::Blob a;  // at origin, radius 5
  a.center = {0, 0};
  a.diameter = 10;
  an::Blob b = a;  // 8 px away: 8 < 5 + 5 -> overlaps
  b.center = {8, 0};
  an::Blob c = a;  // 20 px away: no overlap
  c.center = {20, 0};
  EXPECT_DOUBLE_EQ(an::overlap_ratio({b}, {a}), 1.0);
  EXPECT_DOUBLE_EQ(an::overlap_ratio({c}, {a}), 0.0);
  EXPECT_DOUBLE_EQ(an::overlap_ratio({b, c}, {a}), 0.5);
  EXPECT_DOUBLE_EQ(an::overlap_ratio({}, {a}), 1.0);
}

TEST(Blob, DetectionIsDeterministic) {
  cu::Rng rng(5);
  std::vector<std::tuple<double, double, double>> spots;
  for (int i = 0; i < 5; ++i) {
    spots.emplace_back(rng.uniform(20, 180), rng.uniform(20, 180),
                       rng.uniform(5, 10));
  }
  const auto img = synthetic_image(200, 200, spots);
  const auto a = an::detect_blobs(img, 200, 200, default_params());
  const auto b = an::detect_blobs(img, 200, 200, default_params());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].center.x, b[i].center.x);
    EXPECT_EQ(a[i].area, b[i].area);
  }
}

// -------------------------------------------------- parameterized configs --

// Sweep the paper's three configs over a fixed synthetic scene and verify
// the monotone relationships between their parameters and the results.
class BlobConfigSweep : public ::testing::TestWithParam<int> {};

TEST_P(BlobConfigSweep, DetectsConsistently) {
  const auto img = synthetic_image(
      240, 240, {{60, 60, 10}, {180, 60, 7}, {60, 180, 5}, {180, 180, 12}});
  an::BlobParams p;
  p.threshold_step = 10;
  switch (GetParam()) {
    case 1: p.min_threshold = 10;  p.max_threshold = 200; p.min_area = 100; break;
    case 2: p.min_threshold = 150; p.max_threshold = 200; p.min_area = 100; break;
    case 3: p.min_threshold = 10;  p.max_threshold = 200; p.min_area = 200; break;
  }
  const auto blobs = an::detect_blobs(img, 240, 240, p);
  // Config1 is the most permissive: it must find at least as many blobs as
  // the stricter variants.
  an::BlobParams base;
  base.min_threshold = 10;
  base.max_threshold = 200;
  base.min_area = 100;
  const auto baseline = an::detect_blobs(img, 240, 240, base);
  EXPECT_LE(blobs.size(), baseline.size());
  // Everything any config finds overlaps the permissive set.
  EXPECT_DOUBLE_EQ(an::overlap_ratio(blobs, baseline), 1.0);
}

INSTANTIATE_TEST_SUITE_P(PaperConfigs, BlobConfigSweep,
                         ::testing::Values(1, 2, 3),
                         [](const auto& param_info) {
                           return "Config" + std::to_string(param_info.param);
                         });

TEST(Blob, ThresholdStepGranularityTradesRepeatability) {
  const auto img = synthetic_image(200, 200, {{100, 100, 9}});
  an::BlobParams coarse = default_params();
  coarse.threshold_step = 60;  // few slices
  an::BlobParams fine = default_params();
  fine.threshold_step = 5;  // many slices
  const auto cb = an::detect_blobs(img, 200, 200, coarse);
  const auto fb = an::detect_blobs(img, 200, 200, fine);
  // Both find the blob; the fine sweep averages over more slices.
  ASSERT_EQ(cb.size(), 1u);
  ASSERT_EQ(fb.size(), 1u);
  EXPECT_NEAR(cb[0].center.x, fb[0].center.x, 3.0);
}

TEST(Blob, MaxAreaFilterDropsGiants) {
  const auto img = synthetic_image(200, 200, {{100, 100, 25}, {30, 30, 4}});
  auto p = default_params();
  p.max_area = 400;  // the sigma-25 blob covers thousands of px
  const auto blobs = an::detect_blobs(img, 200, 200, p);
  ASSERT_EQ(blobs.size(), 1u);
  EXPECT_NEAR(blobs[0].center.x, 30.0, 3.0);
}

TEST(Blob, AnnotationDrawsRingAroundBlob) {
  std::vector<std::uint8_t> img(100 * 100, 0);
  an::Blob b;
  b.center = {50, 50};
  b.diameter = 20;
  an::annotate_blobs(img, 100, 100, {b}, 255, 2.0);
  // Pixels on the ring (radius 12) are lit; center and far corner are not.
  EXPECT_EQ(img[50 * 100 + 62], 255);  // (62, 50): center + r on the x axis
  EXPECT_EQ(img[50 * 100 + 50], 0);
  EXPECT_EQ(img[0], 0);
  // Ring partially off-image must not crash or wrap.
  an::Blob edge;
  edge.center = {1, 1};
  edge.diameter = 30;
  an::annotate_blobs(img, 100, 100, {edge});
  EXPECT_EQ(img.size(), 100u * 100u);
}
