// Cluster-grade suite for the sharded serving fabric (src/fabric):
// partition totality/disjointness/coverage properties, directory rebalance
// correctness, remote-vs-local bitwise identity, import/replica placement,
// the anticipatory-eviction provider, the cost model's remote-residency
// accounting, and a seeded node-kill stress run with exact serve accounting
// (no lost or duplicated chunk reads).
//
// Randomized cases derive their seeds from CANOPUS_TEST_SEED (see
// tests/test_support.hpp) and print the seed on failure.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "adios/bp.hpp"
#include "core/canopus.hpp"
#include "core/geometry_cache.hpp"
#include "core/pipeline.hpp"
#include "fabric/chunk_directory.hpp"
#include "fabric/fabric.hpp"
#include "mesh/generators.hpp"
#include "serve/cost_model.hpp"
#include "serve/query_scheduler.hpp"
#include "storage/hierarchy.hpp"
#include "test_support.hpp"

namespace ca = canopus::adios;
namespace cc = canopus::core;
namespace cf = canopus::fabric;
namespace cm = canopus::mesh;
namespace cs = canopus::storage;
namespace cv = canopus::serve;

using canopus::Status;
using canopus::util::Bytes;

namespace {

cm::Field smooth_field(const cm::TriMesh& mesh) {
  cm::Field f(mesh.vertex_count());
  for (cm::VertexId v = 0; v < mesh.vertex_count(); ++v) {
    const auto p = mesh.vertex(v);
    f[v] = std::sin(p.x * 2.0) * std::cos(p.y * 3.0) + 0.2 * p.y;
  }
  return f;
}

cc::RefactorConfig refactor_config() {
  cc::RefactorConfig config;
  config.levels = 3;
  config.codec = "zfp";
  config.error_bound = 1e-6;
  config.delta_chunks = 8;  // Morton ranges split across up to 8 nodes
  return config;
}

/// A refactored dataset staged in an unconstrained hierarchy, ready to be
/// imported into fabrics.
struct Staged {
  cs::StorageHierarchy staging{{cs::tmpfs_spec(256 << 20)}};
  cm::TriMesh mesh = cm::make_annulus_mesh(16, 100, 0.5, 1.0, 0.1, 7);

  Staged() {
    cc::refactor_and_write(staging, "d.bp", "v", mesh, smooth_field(mesh),
                           refactor_config());
  }

  /// Every sharded (base/delta/data) block record in the container.
  std::vector<ca::BlockRecord> sharded_records() {
    std::vector<ca::BlockRecord> out;
    const ca::BpReader reader(staging, "d.bp");
    for (const auto& var : reader.variables()) {
      for (const auto& b : reader.inq_var(var).blocks) {
        if (b.kind == ca::BlockKind::kBase || b.kind == ca::BlockKind::kDelta ||
            b.kind == ca::BlockKind::kData) {
          out.push_back(b);
        }
      }
    }
    return out;
  }
};

std::vector<cs::TierSpec> roomy_node_tiers() {
  return {cs::tmpfs_spec(64 << 20), cs::lustre_spec(1 << 30)};
}

}  // namespace

// ------------------------------------------------------ partition properties

TEST(ChunkDirectory, RangePartitionIsTotalDisjointAndCovering) {
  // For every fabric size up to 8 and a sweep of chunk counts: each chunk
  // maps to exactly one node (< nodes), ranges are contiguous (owners
  // non-decreasing in Morton order, which with totality implies
  // disjointness), and with nodes <= chunk_count every node owns something.
  for (std::size_t nodes = 1; nodes <= 8; ++nodes) {
    for (std::uint32_t chunk_count :
         {static_cast<std::uint32_t>(nodes), static_cast<std::uint32_t>(nodes + 3),
          static_cast<std::uint32_t>(4 * nodes), 64u}) {
      std::vector<bool> owned(nodes, false);
      std::uint32_t prev = 0;
      for (std::uint32_t c = 0; c < chunk_count; ++c) {
        const auto owner = cf::ChunkDirectory::range_owner(c, chunk_count, nodes);
        ASSERT_LT(owner, nodes) << "nodes=" << nodes << " chunks=" << chunk_count;
        ASSERT_GE(owner, prev) << "ranges must be contiguous; nodes=" << nodes
                               << " chunks=" << chunk_count << " chunk=" << c;
        prev = owner;
        owned[owner] = true;
      }
      if (nodes <= chunk_count) {
        for (std::size_t n = 0; n < nodes; ++n) {
          EXPECT_TRUE(owned[n]) << "node " << n << " owns no chunk; nodes="
                                << nodes << " chunks=" << chunk_count;
        }
      }
    }
  }
}

TEST(ChunkDirectory, HashPartitionIsTotalDeterministicAndSpread) {
  const std::uint64_t seed = canopus::test::test_seed();
  std::mt19937_64 rng(seed ^ 0x9e3779b97f4a7c15ull);
  std::vector<std::string> keys;
  keys.reserve(512);
  for (int i = 0; i < 512; ++i) {
    keys.push_back("d.bp/v/" + std::to_string(rng()) + "/" + std::to_string(i));
  }
  for (std::size_t nodes = 1; nodes <= 8; ++nodes) {
    std::vector<std::size_t> per_node(nodes, 0);
    for (const auto& key : keys) {
      const auto owner = cf::ChunkDirectory::hash_owner(key, nodes);
      ASSERT_LT(owner, nodes) << "seed=" << seed;
      EXPECT_EQ(owner, cf::ChunkDirectory::hash_owner(key, nodes))
          << "hash_owner must be deterministic; seed=" << seed;
      ++per_node[owner];
    }
    // 512 keys over <= 8 nodes: a starved node means the hash is broken,
    // not unlucky (P < 1e-28 for a uniform hash).
    for (std::size_t n = 0; n < nodes; ++n) {
      EXPECT_GT(per_node[n], 0u)
          << "node " << n << "/" << nodes << " starved; seed=" << seed;
    }
  }
}

TEST(ChunkDirectory, SingleChunkGroupsSpreadUnderRangePartition) {
  // kMortonRange would map every chunk_count==1 group (bases, plain data)
  // to node 0; the directory falls back to the hash for those so bases
  // spread across the fabric too.
  cf::ChunkDirectory dir(4, cf::Partition::kMortonRange);
  std::set<std::uint32_t> owners;
  for (int i = 0; i < 64; ++i) {
    owners.insert(dir.owner_for("d.bp/v" + std::to_string(i) + "/base", 0, 1));
  }
  EXPECT_GT(owners.size(), 1u);
}

TEST(ChunkDirectory, RebalanceRecomputesEveryOwnerAndReplica) {
  const std::uint64_t seed = canopus::test::test_seed();
  std::mt19937_64 rng(seed ^ 0xfab21cull);
  for (const auto partition :
       {cf::Partition::kMortonRange, cf::Partition::kHash}) {
    cf::ChunkDirectory dir(4, partition);
    struct Key {
      std::string key;
      std::uint32_t chunk;
      std::uint32_t chunk_count;
    };
    std::vector<Key> keys;
    for (int i = 0; i < 128; ++i) {
      const std::uint32_t chunk_count = (i % 3 == 0) ? 1u : 16u;
      const std::uint32_t chunk =
          static_cast<std::uint32_t>(rng() % chunk_count);
      Key k{"d.bp/v/" + std::to_string(i), chunk, chunk_count};
      const auto owner = dir.assign(k.key, k.chunk, k.chunk_count, 100 + i);
      EXPECT_EQ(owner, dir.owner_for(k.key, k.chunk, k.chunk_count))
          << "seed=" << seed;
      keys.push_back(std::move(k));
    }
    ASSERT_EQ(dir.size(), keys.size());

    for (const std::size_t new_nodes : {6u, 2u, 1u}) {
      dir.rebalance(new_nodes);
      EXPECT_EQ(dir.node_count(), new_nodes);
      for (const auto& k : keys) {
        const auto loc = dir.lookup(k.key);
        ASSERT_TRUE(loc.has_value()) << k.key << " seed=" << seed;
        EXPECT_EQ(loc->owner, dir.owner_for(k.key, k.chunk, k.chunk_count))
            << k.key << " after rebalance to " << new_nodes
            << " nodes; seed=" << seed;
        if (new_nodes > 1) {
          ASSERT_TRUE(loc->replica.has_value()) << "seed=" << seed;
          EXPECT_EQ(*loc->replica, (loc->owner + 1) % new_nodes)
              << "seed=" << seed;
        } else {
          EXPECT_FALSE(loc->replica.has_value()) << "seed=" << seed;
        }
      }
    }
    EXPECT_FALSE(dir.lookup("never-assigned").has_value());
  }
}

// --------------------------------------------------------- import/placement

TEST(Fabric, ImportShardsPrimariesAndReplicatesMetadata) {
  Staged data;
  cf::FabricOptions fo;
  fo.nodes = 4;
  cf::Fabric fabric(fo, roomy_node_tiers());
  const auto report = fabric.import_container(data.staging, "d.bp");

  const auto records = data.sharded_records();
  ASSERT_FALSE(records.empty());
  EXPECT_EQ(report.sharded, records.size());
  EXPECT_GT(report.sharded_bytes, 0u);
  // Capacity is generous, so every sharded block got its cross-node replica.
  EXPECT_EQ(report.replicas, records.size());

  // Metadata lives on every node (each node can open the container).
  const auto meta_key = ca::metadata_key("d.bp");
  for (std::size_t i = 0; i < fabric.node_count(); ++i) {
    EXPECT_TRUE(fabric.node(i).find(meta_key).has_value()) << "node " << i;
  }

  // Each sharded primary sits on its directory owner, its replica copy on
  // the ring successor — and nowhere else.
  for (const auto& r : records) {
    const auto loc = fabric.directory().lookup(r.object_key);
    ASSERT_TRUE(loc.has_value()) << r.object_key;
    ASSERT_TRUE(loc->replica.has_value());
    const auto rkey = cs::StorageHierarchy::replica_key(r.object_key);
    for (std::size_t i = 0; i < fabric.node_count(); ++i) {
      EXPECT_EQ(fabric.node(i).find(r.object_key).has_value(), i == loc->owner)
          << r.object_key << " on node " << i;
      EXPECT_EQ(fabric.node(i).find(rkey).has_value(), i == *loc->replica)
          << rkey << " on node " << i;
    }
  }

  // With 8 Morton-range chunks per delta level over 4 nodes, every node
  // owns a share of the payload.
  for (const auto owned : fabric.directory().owned_bytes()) {
    EXPECT_GT(owned, 0u);
  }
}

TEST(Fabric, RemoteReadsAreBitwiseIdenticalToStaging) {
  Staged data;
  cf::FabricOptions fo;
  fo.nodes = 4;
  cf::Fabric fabric(fo, roomy_node_tiers());
  fabric.import_container(data.staging, "d.bp");

  const auto records = data.sharded_records();
  std::uint64_t expected_remote = 0;
  for (const auto& r : records) {
    const auto loc = fabric.directory().lookup(r.object_key);
    ASSERT_TRUE(loc.has_value());
    const std::size_t reader_node = (loc->owner + 1) % fabric.node_count();

    Bytes want, got;
    data.staging.read(r.object_key, want);
    const auto io = fabric.node(reader_node).read(r.object_key, got);
    ++expected_remote;

    ASSERT_EQ(got.size(), want.size()) << r.object_key;
    EXPECT_TRUE(std::equal(got.begin(), got.end(), want.begin()))
        << "remote read of " << r.object_key << " differs from staging";
    EXPECT_FALSE(io.from_replica);
    // The network envelope is on the simulated clock.
    EXPECT_GE(io.sim_seconds, fo.remote_latency_seconds);
  }
  const auto stats = fabric.stats();
  EXPECT_EQ(stats.remote_reads, expected_remote);
  EXPECT_EQ(stats.failed_remote_reads, 0u);
  // Every remote read was served locally at the owner: exactly one local
  // hit per resolution.
  EXPECT_EQ(stats.local_hits, expected_remote);
}

TEST(Fabric, RouteQueryPrefersOwningAliveNode) {
  Staged data;
  cf::FabricOptions fo;
  fo.nodes = 3;
  cf::Fabric fabric(fo, roomy_node_tiers());
  fabric.import_container(data.staging, "d.bp");

  const auto per_node = fabric.directory().owned_bytes_for_prefix("d.bp/v/");
  const auto routed = fabric.route_query("d.bp", "v");
  ASSERT_LT(routed, fo.nodes);
  for (std::size_t i = 0; i < per_node.size(); ++i) {
    EXPECT_GE(per_node[routed], per_node[i]) << "node " << i;
  }

  fabric.kill_node(routed);
  const auto rerouted = fabric.route_query("d.bp", "v");
  EXPECT_NE(rerouted, routed);
  EXPECT_TRUE(fabric.alive(rerouted));
  fabric.revive_node(routed);
  EXPECT_EQ(fabric.route_query("d.bp", "v"), routed);
}

// ------------------------------------------------------- eviction provider

TEST(Fabric, EvictionProviderDemotesColdBlocksDownTier) {
  cf::FabricOptions fo;
  fo.nodes = 1;
  fo.eviction_high = 0.5;
  fo.eviction_low = 0.25;
  fo.eviction_interval_seconds = 0.001;
  cf::Fabric fabric(fo, {cs::tmpfs_spec(64 << 10), cs::lustre_spec(1 << 30)});

  // Fill the fast tier past the high watermark: 6 x 8 KiB = 48 KiB > 32 KiB.
  std::vector<std::string> keys;
  for (int i = 0; i < 6; ++i) {
    Bytes block(8 << 10, std::byte{static_cast<unsigned char>(i)});
    keys.push_back("blk" + std::to_string(i));
    fabric.node(0).place(keys.back(), block);
  }

  // The provider must notice within a few ticks and demote until the fast
  // tier is back under the high watermark.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  for (;;) {
    const auto [used, capacity] = fabric.node(0).tier_usage(0);
    if (static_cast<double>(used) <= fo.eviction_high * capacity) break;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "eviction provider never relieved the fast tier (used=" << used
        << "/" << capacity << ")";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(fabric.stats().evictions, 0u);

  // Demotion moves blocks, never loses them: every key still reads back
  // byte-identical from some tier.
  for (int i = 0; i < 6; ++i) {
    Bytes got;
    fabric.node(0).read(keys[static_cast<std::size_t>(i)], got);
    ASSERT_EQ(got.size(), 8u << 10);
    EXPECT_TRUE(std::all_of(got.begin(), got.end(), [&](std::byte b) {
      return b == std::byte{static_cast<unsigned char>(i)};
    })) << keys[static_cast<std::size_t>(i)];
  }
}

// --------------------------------------------- cost model remote residency

TEST(Fabric, CostModelChargesRemoteEnvelopeForNonResidentChunks) {
  // Regression for the single-cache-residency assumption: planning used to
  // charge a remote-resident chunk its *record* tier cost (as if it were
  // local), overplanning the reachable level. With a deliberately huge
  // network latency the plan must refuse to schedule refinement a 1-second
  // budget cannot buy.
  Staged data;
  cf::FabricOptions fo;
  fo.nodes = 4;
  fo.remote_latency_seconds = 5.0;  // absurd on purpose: 5 s per message
  cf::Fabric fabric(fo, roomy_node_tiers());
  fabric.import_container(data.staging, "d.bp");

  auto& home = fabric.node(0);
  std::uint32_t coarsest = 0;
  double base_total = 0.0;
  {
    cc::ProgressiveReader probe(home, "d.bp", "v");
    coarsest = probe.current_level();
    base_total = probe.cumulative().total();
    const auto model = cv::CostModel::build(home, probe);
    // Every refinement step has 8 Morton-range chunks, at most 2 of them on
    // node 0: its planned I/O must include at least one 5 s network hop.
    for (std::uint32_t l = 0; l < coarsest; ++l) {
      EXPECT_GE(model.step(l).io_seconds, fo.remote_latency_seconds)
          << "level " << l;
    }
    // And the budget arithmetic: 1 s above the base cost cannot reach any
    // finer level.
    EXPECT_EQ(model.reachable_level(coarsest, 1.0, 0), coarsest);
  }

  // End to end through the scheduler: the plan pins the coarsest level and
  // the query degrades instead of blowing its deadline on remote chunks.
  cv::QueryScheduler scheduler(home, {}, {});
  cv::QueryRequest request;
  request.path = "d.bp";
  request.var = "v";
  request.target_level = 0;
  request.deadline_seconds = base_total + 1.0;
  cv::QueryResult result;
  const Status status = scheduler.execute(request, &result);
  ASSERT_TRUE(status.usable()) << status.to_string();
  EXPECT_TRUE(status.degraded);
  EXPECT_EQ(result.planned_level, coarsest);
  EXPECT_EQ(result.achieved_level, coarsest);

  // Control: the same data in a single-node fabric is all local, so the
  // same plan reaches full accuracy within an ordinary budget.
  cf::FabricOptions single;
  single.nodes = 1;
  cf::Fabric local(single, roomy_node_tiers());
  local.import_container(data.staging, "d.bp");
  cc::ProgressiveReader probe(local.node(0), "d.bp", "v");
  const auto model = cv::CostModel::build(local.node(0), probe);
  for (std::uint32_t l = 0; l < coarsest; ++l) {
    EXPECT_LT(model.step(l).io_seconds, 1.0) << "level " << l;
  }
  EXPECT_EQ(model.reachable_level(coarsest, 1.0, 0), 0u);
}

// ------------------------------------------------------- node-kill stress

TEST(Fabric, NodeKillMidRunDegradesToReplicasWithoutLostReads) {
  // K sessions spread over the surviving nodes of a 4-node fabric while a
  // seeded victim dies mid-run. Every query must complete non-degraded from
  // replica owners, bitwise-identical to a healthy reference run — and the
  // fabric-wide serve accounting must balance exactly: one local hit per
  // chunk fetch, K times the reference count, so no read was lost or
  // duplicated in the failover.
  const std::uint64_t seed = canopus::test::test_seed();
  std::mt19937_64 rng(seed ^ 0x57e55ull);
  constexpr std::size_t kNodes = 4;
  constexpr std::size_t kSessions = 6;

  Staged data;
  cf::FabricOptions fo;
  fo.nodes = kNodes;

  canopus::PipelineOptions popt;
  popt.parallel.threads = 1;  // serial, on-demand reads: exact fetch counts
  popt.parallel.read_ahead = false;

  canopus::ReadRequest rreq;
  rreq.path = "d.bp";
  rreq.var = "v";

  // Reference: one session on a healthy identical fabric. R1 is the exact
  // number of serves a full-accuracy session costs (node-independent: every
  // fetch resolves to exactly one successful serve somewhere).
  std::uint64_t reference_serves = 0;
  cm::Field reference_field;
  {
    cf::Fabric fabric(fo, roomy_node_tiers());
    fabric.import_container(data.staging, "d.bp");
    const auto geometry = cc::GeometryCache::load(fabric.node(0), "d.bp", "v");
    rreq.geometry = &geometry;
    const auto before = fabric.stats().local_hits;
    canopus::Pipeline pipeline(fabric.node(0), popt);
    std::unique_ptr<canopus::ReadSession> session;
    auto st = pipeline.open_session(rreq, &session);
    if (st.ok()) st = session->refine_to(0);
    ASSERT_TRUE(st.ok()) << st.to_string() << " seed=" << seed;
    reference_serves = fabric.stats().local_hits - before;
    reference_field = session->values();
  }
  ASSERT_GT(reference_serves, 0u);

  cf::Fabric fabric(fo, roomy_node_tiers());
  fabric.import_container(data.staging, "d.bp");
  const auto geometry = cc::GeometryCache::load(fabric.node(0), "d.bp", "v");
  rreq.geometry = &geometry;

  const std::size_t victim = rng() % kNodes;
  std::vector<std::size_t> survivors;
  for (std::size_t i = 0; i < kNodes; ++i) {
    if (i != victim) survivors.push_back(i);
  }
  std::vector<std::unique_ptr<canopus::Pipeline>> pipelines;
  for (const auto i : survivors) {
    pipelines.push_back(std::make_unique<canopus::Pipeline>(fabric.node(i), popt));
  }

  const auto before = fabric.stats();
  std::vector<std::unique_ptr<canopus::ReadSession>> sessions(kSessions);
  std::vector<Status> statuses(kSessions);
  {
    std::vector<std::thread> clients;
    clients.reserve(kSessions + 1);
    for (std::size_t s = 0; s < kSessions; ++s) {
      clients.emplace_back([&, s] {
        auto& pipeline = *pipelines[s % pipelines.size()];
        auto st = pipeline.open_session(rreq, &sessions[s]);
        if (st.ok()) st = sessions[s]->refine_to(0);
        statuses[s] = st;
      });
    }
    clients.emplace_back([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      fabric.kill_node(victim);
    });
    for (auto& client : clients) client.join();
  }

  for (std::size_t s = 0; s < kSessions; ++s) {
    ASSERT_TRUE(statuses[s].usable())
        << "session " << s << ": " << statuses[s].to_string()
        << " victim=" << victim << " seed=" << seed;
    EXPECT_FALSE(statuses[s].degraded)
        << "session " << s << " degraded; victim=" << victim
        << " seed=" << seed;
    const auto& got = sessions[s]->values();
    ASSERT_EQ(got.size(), reference_field.size()) << "seed=" << seed;
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], reference_field[i])
          << "session " << s << " vertex " << i << " victim=" << victim
          << " seed=" << seed;
    }
  }

  const auto after = fabric.stats();
  // Exact accounting: every chunk fetch of every session was served exactly
  // once (locally, remotely, or by a replica owner) — K x the reference run.
  EXPECT_EQ(after.local_hits - before.local_hits, kSessions * reference_serves)
      << "victim=" << victim << " seed=" << seed;
  EXPECT_EQ(after.failed_remote_reads, 0u)
      << "victim=" << victim << " seed=" << seed;
}
