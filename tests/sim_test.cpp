// Tests for the synthetic dataset generators: mesh validity, field structure
// (blobs near the edge, shock front, stagnation pressure), determinism, and
// end-to-end compatibility with the blob detector.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "analytics/blob.hpp"
#include "analytics/raster.hpp"
#include "mesh/validate.hpp"
#include "sim/datasets.hpp"

namespace si = canopus::sim;
namespace an = canopus::analytics;
namespace cm = canopus::mesh;

namespace {
si::XgcOptions small_xgc() {
  si::XgcOptions opt;
  opt.rings = 32;
  opt.sectors = 160;
  return opt;
}
}  // namespace

TEST(Xgc, MeshValidAndSized) {
  const auto ds = si::make_xgc_dataset(small_xgc());
  EXPECT_EQ(ds.name, "xgc1");
  EXPECT_EQ(ds.variable, "dpot");
  EXPECT_TRUE(cm::validate(ds.mesh).ok);
  EXPECT_EQ(ds.values.size(), ds.mesh.vertex_count());
  EXPECT_EQ(ds.mesh.vertex_count(), 33u * 160u);
}

TEST(Xgc, PaperSizedMeshMatchesDpotPlane) {
  // Defaults target the paper's plane: 20,694 dpot values / ~41k triangles.
  const si::XgcOptions opt;
  const auto ds = si::make_xgc_dataset(opt);
  EXPECT_NEAR(static_cast<double>(ds.mesh.vertex_count()), 20694.0, 500.0);
  EXPECT_NEAR(static_cast<double>(ds.mesh.triangle_count()), 41087.0, 1500.0);
}

TEST(Xgc, BlobsLiveNearTheEdge) {
  std::vector<si::BlobSpec> truth;
  const auto ds = si::make_xgc_dataset(small_xgc(), &truth);
  ASSERT_EQ(truth.size(), small_xgc().blob_count);
  for (const auto& b : truth) {
    const double r = b.center.norm();
    EXPECT_GT(r, 0.7);
    EXPECT_LT(r, 1.0);
  }
  // Field max should be near a positive blob center, well above background.
  const double peak = *std::max_element(ds.values.begin(), ds.values.end());
  EXPECT_GT(peak, 0.8);
}

TEST(Xgc, DetectorFindsInjectedBlobs) {
  // End-to-end: rasterize the synthetic dpot plane and check the detector
  // recovers a majority of the injected positive blobs.
  si::XgcOptions opt = small_xgc();
  opt.blob_count = 6;
  opt.turbulence_amplitude = 0.02;
  std::vector<si::BlobSpec> truth;
  const auto ds = si::make_xgc_dataset(opt, &truth);
  const auto bounds = ds.mesh.bounds();
  const auto raster = an::rasterize(ds.mesh, ds.values, 300, 300, bounds);
  const auto [lo, hi] =
      std::minmax_element(ds.values.begin(), ds.values.end());
  const auto img = an::to_gray8(raster, *lo, *hi);
  an::BlobParams params;
  params.min_threshold = 10;
  params.max_threshold = 200;
  params.min_area = 40;
  const auto blobs = an::detect_blobs(img, 300, 300, params);
  ASSERT_FALSE(blobs.empty());
  // Count injected positive blobs matched by a detection within 2 sigma.
  std::size_t matched = 0;
  for (const auto& t : truth) {
    if (t.amplitude <= 0) continue;
    const double px = (t.center.x - bounds.lo.x) / bounds.width() * 300.0;
    const double py = (t.center.y - bounds.lo.y) / bounds.height() * 300.0;
    for (const auto& b : blobs) {
      const double d = std::hypot(b.center.x - px, b.center.y - py);
      if (d < 25.0) {
        ++matched;
        break;
      }
    }
  }
  std::size_t positive = 0;
  for (const auto& t : truth) {
    if (t.amplitude > 0) ++positive;
  }
  EXPECT_GE(matched * 2, positive);  // at least half found
}

TEST(Xgc, Deterministic) {
  const auto a = si::make_xgc_dataset(small_xgc());
  const auto b = si::make_xgc_dataset(small_xgc());
  EXPECT_TRUE(a.mesh == b.mesh);
  EXPECT_EQ(a.values, b.values);
  si::XgcOptions other = small_xgc();
  other.seed = 99;
  const auto c = si::make_xgc_dataset(other);
  EXPECT_NE(a.values, c.values);
}

TEST(Genasis, MeshValidAndFieldHasShockFront) {
  si::GenasisOptions opt;
  opt.rings = 48;
  opt.sectors = 180;
  const auto ds = si::make_genasis_dataset(opt);
  EXPECT_TRUE(cm::validate(ds.mesh).ok);
  EXPECT_EQ(ds.variable, "normVec");
  // Inside the shock the field is strong; far outside it decays to ~0.
  double inner_mean = 0.0, outer_mean = 0.0;
  std::size_t inner_n = 0, outer_n = 0;
  for (cm::VertexId v = 0; v < ds.mesh.vertex_count(); ++v) {
    const double r = ds.mesh.vertex(v).norm();
    if (r < opt.shock_radius * 0.7) {
      inner_mean += ds.values[v];
      ++inner_n;
    } else if (r > opt.shock_radius * 1.8) {
      outer_mean += ds.values[v];
      ++outer_n;
    }
  }
  inner_mean /= static_cast<double>(inner_n);
  outer_mean /= static_cast<double>(outer_n);
  EXPECT_GT(inner_mean, 5.0 * std::abs(outer_mean));
}

TEST(Genasis, PaperSizedMeshMatchesTriangleCount) {
  const si::GenasisOptions opt;
  const auto ds = si::make_genasis_dataset(opt);
  EXPECT_NEAR(static_cast<double>(ds.mesh.triangle_count()), 130050.0, 4000.0);
}

TEST(Cfd, MeshValidWithBodyCutout) {
  si::CfdOptions opt;
  const auto ds = si::make_cfd_dataset(opt);
  EXPECT_TRUE(cm::validate(ds.mesh).ok);
  EXPECT_EQ(cm::validate(ds.mesh).euler_characteristic, 0);  // hole
  EXPECT_NEAR(static_cast<double>(ds.mesh.triangle_count()), 12577.0, 800.0);
}

TEST(Cfd, StagnationPressureAtLeadingEdge) {
  si::CfdOptions opt;
  const auto ds = si::make_cfd_dataset(opt);
  // Pressure peaks near the body's leading edge (stagnation point) and is
  // close to free-stream far upstream.
  double best_p = -1e300;
  cm::Vec2 best{};
  for (cm::VertexId v = 0; v < ds.mesh.vertex_count(); ++v) {
    if (ds.values[v] > best_p) {
      best_p = ds.values[v];
      best = ds.mesh.vertex(v);
    }
  }
  // The stagnation value is p_inf + q = 1.5 at the exact body surface; the
  // nearest mesh vertex sits a cell away, so accept a band below that.
  EXPECT_GT(best_p, 1.2);
  EXPECT_LE(best_p, 1.5 + 1e-9);
  const double body_dist = std::hypot(best.x - opt.body_x, best.y - opt.body_y);
  EXPECT_LT(body_dist, opt.chord);
}

TEST(AllDatasets, ScaleControlsSize) {
  const auto small = si::all_datasets(0.05);
  const auto large = si::all_datasets(0.2);
  ASSERT_EQ(small.size(), 3u);
  ASSERT_EQ(large.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(cm::validate(small[i].mesh).ok) << small[i].name;
    EXPECT_LT(small[i].mesh.vertex_count(), large[i].mesh.vertex_count());
  }
}
