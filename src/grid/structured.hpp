#pragma once
// Structured-grid data model: the second mesh class Section III-C covers
// ("mesh decimation for both structured and unstructured meshes").
//
// A StructuredGrid is a uniform nx x ny point lattice. Decimation is 2x2 box
// averaging per level (the structured analogue of edge collapse to
// midpoints), and Estimate(.) is bilinear interpolation of the coarse level
// at the fine lattice positions — the structured analogue of the barycentric
// triangle estimate. delta = fine - upsample(coarse) makes restoration exact
// by construction, mirroring Algorithms 2/3.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/byte_buffer.hpp"

namespace canopus::grid {

struct GridShape {
  std::size_t nx = 0;  // points per row
  std::size_t ny = 0;  // rows
  double x0 = 0.0, y0 = 0.0;  // position of point (0, 0)
  double dx = 1.0, dy = 1.0;  // point spacing

  std::size_t point_count() const { return nx * ny; }
  bool operator==(const GridShape&) const = default;

  /// Shape after one 2x coarsening step (ceil halving, spacing doubles).
  GridShape coarsened() const;

  void serialize(util::ByteWriter& out) const;
  static GridShape deserialize(util::ByteReader& in);
};

/// Row-major nx*ny samples.
using GridField = std::vector<double>;

/// One 2x decimation step: each coarse point averages its (up to) 2x2 fine
/// block. The structured NewData.
GridField coarsen(const GridShape& shape, const GridField& values);

/// Bilinear evaluation of the coarse level at every fine lattice point — the
/// structured Estimate(.) of Eq. 2 (edges clamp).
GridField upsample_bilinear(const GridShape& coarse_shape, const GridField& coarse,
                            const GridShape& fine_shape);

/// Algorithm 2, structured: delta = fine - Estimate(coarse).
GridField compute_grid_delta(const GridShape& fine_shape, const GridField& fine,
                             const GridShape& coarse_shape,
                             const GridField& coarse);

/// Algorithm 3, structured: fine = delta + Estimate(coarse). Exact inverse
/// of compute_grid_delta up to floating-point rounding.
GridField restore_grid_level(const GridShape& fine_shape, const GridField& delta,
                             const GridShape& coarse_shape,
                             const GridField& coarse);

}  // namespace canopus::grid
