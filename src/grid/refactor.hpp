#pragma once
// Canopus write/read pipeline over the structured-grid data model: the same
// base-plus-deltas refactoring, compression and tiered placement as the
// unstructured path, with grid shapes instead of meshes/mappings in the
// metadata (shapes are tiny and fully determine the geometry, so there is no
// mapping product at all).

#include <string>
#include <vector>

#include "adios/bp.hpp"
#include "core/progressive_reader.hpp"  // core::RetrievalTimings
#include "core/types.hpp"
#include "grid/structured.hpp"
#include "storage/hierarchy.hpp"
#include "util/timer.hpp"

namespace canopus::grid {

struct GridRefactorReport {
  util::PhaseTimer phases;  // "decimation", "delta+compress", "io"
  std::vector<std::size_t> level_points;  // per level, finest first
  std::size_t raw_bytes = 0;
  std::size_t stored_bytes = 0;
};

/// Refactors a structured field into `config.levels` accuracy levels
/// (config.step is fixed at 2 for grids) and writes base + deltas + shapes.
GridRefactorReport refactor_and_write_grid(storage::StorageHierarchy& hierarchy,
                                           const std::string& path,
                                           const std::string& var,
                                           const GridShape& shape,
                                           const GridField& values,
                                           const core::RefactorConfig& config);

/// Progressive reader for grid variables; mirrors core::ProgressiveReader.
class GridProgressiveReader {
 public:
  GridProgressiveReader(storage::StorageHierarchy& hierarchy,
                        const std::string& path, std::string var);

  std::size_t level_count() const { return shapes_.size(); }
  std::uint32_t current_level() const { return current_level_; }
  bool at_full_accuracy() const { return current_level_ == 0; }

  const GridField& values() const { return values_; }
  const GridShape& current_shape() const { return shapes_[current_level_]; }
  double decimation_ratio() const;

  core::RetrievalTimings refine();
  core::RetrievalTimings refine_to(std::uint32_t level);
  const core::RetrievalTimings& cumulative() const { return cumulative_; }

 private:
  storage::StorageHierarchy& hierarchy_;
  adios::BpReader reader_;
  std::string var_;
  std::vector<GridShape> shapes_;  // shapes_[l] = level l, finest first
  std::uint32_t current_level_ = 0;
  GridField values_;
  core::RetrievalTimings cumulative_;
};

}  // namespace canopus::grid
