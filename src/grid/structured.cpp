#include "grid/structured.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace canopus::grid {

GridShape GridShape::coarsened() const {
  GridShape c = *this;
  c.nx = (nx + 1) / 2;
  c.ny = (ny + 1) / 2;
  c.dx = dx * 2.0;
  c.dy = dy * 2.0;
  return c;
}

void GridShape::serialize(util::ByteWriter& out) const {
  out.put_varint(nx);
  out.put_varint(ny);
  out.put(x0);
  out.put(y0);
  out.put(dx);
  out.put(dy);
}

GridShape GridShape::deserialize(util::ByteReader& in) {
  GridShape s;
  s.nx = in.get_varint();
  s.ny = in.get_varint();
  s.x0 = in.get<double>();
  s.y0 = in.get<double>();
  s.dx = in.get<double>();
  s.dy = in.get<double>();
  return s;
}

GridField coarsen(const GridShape& shape, const GridField& values) {
  CANOPUS_CHECK(values.size() == shape.point_count(),
                "grid coarsen: field size mismatch");
  CANOPUS_CHECK(shape.nx >= 2 || shape.ny >= 2, "grid too small to coarsen");
  const GridShape c = shape.coarsened();
  GridField out(c.point_count());
  for (std::size_t cy = 0; cy < c.ny; ++cy) {
    for (std::size_t cx = 0; cx < c.nx; ++cx) {
      double sum = 0.0;
      int n = 0;
      for (std::size_t oy = 0; oy < 2; ++oy) {
        for (std::size_t ox = 0; ox < 2; ++ox) {
          const std::size_t fx = 2 * cx + ox;
          const std::size_t fy = 2 * cy + oy;
          if (fx < shape.nx && fy < shape.ny) {
            sum += values[fy * shape.nx + fx];
            ++n;
          }
        }
      }
      out[cy * c.nx + cx] = sum / static_cast<double>(n);
    }
  }
  return out;
}

GridField upsample_bilinear(const GridShape& coarse_shape, const GridField& coarse,
                            const GridShape& fine_shape) {
  CANOPUS_CHECK(coarse.size() == coarse_shape.point_count(),
                "grid upsample: field size mismatch");
  GridField out(fine_shape.point_count());
  for (std::size_t fy = 0; fy < fine_shape.ny; ++fy) {
    for (std::size_t fx = 0; fx < fine_shape.nx; ++fx) {
      // Physical position of the fine point in coarse index space. The
      // coarse point (cx, cy) averages the fine block anchored at
      // (2cx, 2cy); its effective center is at fine index 2cx + 0.5, so
      // subtract that half-cell offset before interpolating.
      const double u = std::clamp(
          (static_cast<double>(fx) - 0.5) / 2.0, 0.0,
          static_cast<double>(coarse_shape.nx - 1));
      const double v = std::clamp(
          (static_cast<double>(fy) - 0.5) / 2.0, 0.0,
          static_cast<double>(coarse_shape.ny - 1));
      const auto iu = static_cast<std::size_t>(u);
      const auto iv = static_cast<std::size_t>(v);
      const std::size_t iu1 = std::min(iu + 1, coarse_shape.nx - 1);
      const std::size_t iv1 = std::min(iv + 1, coarse_shape.ny - 1);
      const double au = u - static_cast<double>(iu);
      const double av = v - static_cast<double>(iv);
      const double c00 = coarse[iv * coarse_shape.nx + iu];
      const double c10 = coarse[iv * coarse_shape.nx + iu1];
      const double c01 = coarse[iv1 * coarse_shape.nx + iu];
      const double c11 = coarse[iv1 * coarse_shape.nx + iu1];
      out[fy * fine_shape.nx + fx] =
          (1 - av) * ((1 - au) * c00 + au * c10) +
          av * ((1 - au) * c01 + au * c11);
    }
  }
  return out;
}

GridField compute_grid_delta(const GridShape& fine_shape, const GridField& fine,
                             const GridShape& coarse_shape,
                             const GridField& coarse) {
  CANOPUS_CHECK(fine.size() == fine_shape.point_count(),
                "grid delta: fine field size mismatch");
  GridField delta = upsample_bilinear(coarse_shape, coarse, fine_shape);
  for (std::size_t i = 0; i < delta.size(); ++i) {
    delta[i] = fine[i] - delta[i];
  }
  return delta;
}

GridField restore_grid_level(const GridShape& fine_shape, const GridField& delta,
                             const GridShape& coarse_shape,
                             const GridField& coarse) {
  CANOPUS_CHECK(delta.size() == fine_shape.point_count(),
                "grid restore: delta size mismatch");
  GridField fine = upsample_bilinear(coarse_shape, coarse, fine_shape);
  for (std::size_t i = 0; i < fine.size(); ++i) {
    fine[i] += delta[i];
  }
  return fine;
}

}  // namespace canopus::grid
