#include "grid/refactor.hpp"

#include <optional>

#include "compress/codec.hpp"
#include "util/assert.hpp"

namespace canopus::grid {

namespace {

std::optional<std::uint32_t> tier_hint_for(const core::RefactorConfig& config,
                                           const storage::StorageHierarchy& hierarchy,
                                           std::uint32_t level, std::size_t nbytes) {
  if (!config.tiered_placement) return std::nullopt;
  const std::size_t want =
      std::min(hierarchy.tier_count() - 1,
               static_cast<std::size_t>(config.levels - 1 - level));
  if (hierarchy.tier(want).fits(nbytes)) return static_cast<std::uint32_t>(want);
  return std::nullopt;
}

}  // namespace

GridRefactorReport refactor_and_write_grid(storage::StorageHierarchy& hierarchy,
                                           const std::string& path,
                                           const std::string& var,
                                           const GridShape& shape,
                                           const GridField& values,
                                           const core::RefactorConfig& config) {
  CANOPUS_CHECK(config.levels >= 1, "grid refactor needs at least one level");
  CANOPUS_CHECK(values.size() == shape.point_count(),
                "grid refactor: field size mismatch");
  GridRefactorReport report;
  report.raw_bytes = values.size() * sizeof(double);

  // Decimation pyramid: repeated 2x box averaging.
  std::vector<GridShape> shapes{shape};
  std::vector<GridField> levels{values};
  report.phases.time("decimation", [&] {
    for (std::size_t l = 1; l < config.levels; ++l) {
      CANOPUS_CHECK(shapes.back().nx >= 2 && shapes.back().ny >= 2,
                    "grid exhausted; reduce levels");
      levels.push_back(coarsen(shapes.back(), levels.back()));
      shapes.push_back(shapes.back().coarsened());
    }
  });
  for (const auto& level : levels) report.level_points.push_back(level.size());

  adios::BpWriter writer(hierarchy, path);
  writer.set_attribute("levels", std::to_string(config.levels));
  writer.set_attribute("codec", config.codec);
  writer.set_attribute("model", "structured-grid");
  writer.set_attribute("error_bound", std::to_string(config.error_bound));

  const auto N = config.levels;
  const auto base_level = static_cast<std::uint32_t>(N - 1);
  {
    const auto& base = levels[N - 1];
    const auto t = writer.write_doubles(
        var, adios::BlockKind::kBase, base_level, base, config.codec,
        config.error_bound,
        tier_hint_for(config, hierarchy, base_level, base.size() * sizeof(double)));
    report.phases.add("delta+compress", t.compress_seconds);
    report.phases.add("io", t.io_sim_seconds);
    report.stored_bytes += t.bytes_written;
  }
  for (std::size_t l = N - 1; l-- > 0;) {
    GridField delta;
    report.phases.time("delta+compress", [&] {
      delta = compute_grid_delta(shapes[l], levels[l], shapes[l + 1], levels[l + 1]);
    });
    const auto level = static_cast<std::uint32_t>(l);
    const auto t = writer.write_doubles(
        var, adios::BlockKind::kDelta, level, delta, config.codec,
        config.error_bound,
        tier_hint_for(config, hierarchy, level, delta.size() * sizeof(double)));
    report.phases.add("delta+compress", t.compress_seconds);
    report.phases.add("io", t.io_sim_seconds);
    report.stored_bytes += t.bytes_written;
  }
  // Shapes are a few dozen bytes: one opaque block holds the whole pyramid.
  {
    util::ByteWriter bytes;
    bytes.put_varint(shapes.size());
    for (const auto& s : shapes) s.serialize(bytes);
    const auto t = writer.write_opaque(var, adios::BlockKind::kMesh, 0,
                                       bytes.view());
    report.phases.add("io", t.io_sim_seconds);
  }
  writer.close();
  return report;
}

GridProgressiveReader::GridProgressiveReader(storage::StorageHierarchy& hierarchy,
                                             const std::string& path,
                                             std::string var)
    : hierarchy_(hierarchy), reader_(hierarchy, path), var_(std::move(var)) {
  CANOPUS_CHECK(reader_.attribute("model") ==
                    std::optional<std::string>("structured-grid"),
                "container does not hold a structured-grid variable");
  adios::ReadTiming shapes_t;
  {
    const auto raw = reader_.read_opaque(var_, adios::BlockKind::kMesh, 0,
                                         &shapes_t);
    util::ByteReader br(raw);
    const auto n = br.get_varint();
    for (std::uint64_t i = 0; i < n; ++i) {
      shapes_.push_back(GridShape::deserialize(br));
    }
  }
  CANOPUS_CHECK(!shapes_.empty(), "grid container missing shape pyramid");
  current_level_ = static_cast<std::uint32_t>(shapes_.size() - 1);

  adios::ReadTiming data_t;
  values_ = reader_.read_doubles(var_, adios::BlockKind::kBase, current_level_,
                                 &data_t);
  CANOPUS_CHECK(values_.size() == current_shape().point_count(),
                "grid base inconsistent with its shape");
  cumulative_.io_seconds = shapes_t.io_sim_seconds + data_t.io_sim_seconds;
  cumulative_.decompress_seconds = data_t.decompress_seconds;
  cumulative_.bytes_read = shapes_t.bytes_read + data_t.bytes_read;
}

double GridProgressiveReader::decimation_ratio() const {
  return static_cast<double>(shapes_[0].point_count()) /
         static_cast<double>(current_shape().point_count());
}

core::RetrievalTimings GridProgressiveReader::refine() {
  CANOPUS_CHECK(current_level_ > 0, "already at full accuracy");
  const std::uint32_t next = current_level_ - 1;
  core::RetrievalTimings step;
  adios::ReadTiming delta_t;
  const auto delta =
      reader_.read_doubles(var_, adios::BlockKind::kDelta, next, &delta_t);
  step.io_seconds = delta_t.io_sim_seconds;
  step.decompress_seconds = delta_t.decompress_seconds;
  step.bytes_read = delta_t.bytes_read;

  util::WallTimer t;
  values_ = restore_grid_level(shapes_[next], delta, shapes_[current_level_],
                               values_);
  step.restore_seconds = t.seconds();
  current_level_ = next;
  cumulative_ += step;
  return step;
}

core::RetrievalTimings GridProgressiveReader::refine_to(std::uint32_t level) {
  CANOPUS_CHECK(level < shapes_.size(), "level out of range");
  core::RetrievalTimings acc;
  while (current_level_ > level) acc += refine();
  return acc;
}

}  // namespace canopus::grid
