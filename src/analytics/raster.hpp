#pragma once
// Rasterization of a mesh field onto a pixel grid.
//
// The paper's blob-detection study (Figs. 7/8) runs OpenCV's blob detector on
// 2-D images of the dpot variable and reports sizes in pixels; this module is
// the mesh -> image step. Pixels are sampled at their centers via point
// location + barycentric interpolation; pixels outside the mesh carry the
// background value. Intensity quantization to 8 bits uses a caller-supplied
// reference range so images of different accuracy levels stay comparable.

#include <cstdint>
#include <vector>

#include "mesh/point_locator.hpp"
#include "mesh/tri_mesh.hpp"

namespace canopus::analytics {

/// A W x H grid of doubles in row-major order.
struct RasterField {
  std::size_t width = 0;
  std::size_t height = 0;
  std::vector<double> pixels;
  /// False where the pixel center fell outside the mesh.
  std::vector<bool> inside;

  double& at(std::size_t x, std::size_t y) { return pixels[y * width + x]; }
  double at(std::size_t x, std::size_t y) const { return pixels[y * width + x]; }
};

/// Samples `values` over the mesh onto a width x height grid covering
/// `bounds` (use the L0 mesh bounds for every level so pixels align).
/// Outside pixels get `background`.
RasterField rasterize(const mesh::TriMesh& mesh, const mesh::Field& values,
                      std::size_t width, std::size_t height,
                      const mesh::Aabb& bounds, double background = 0.0);

/// 8-bit quantization against a fixed [lo, hi] reference range (clamped).
std::vector<std::uint8_t> to_gray8(const RasterField& field, double lo, double hi);

}  // namespace canopus::analytics
