#pragma once
// Blob detection on 8-bit images, modeled on OpenCV's SimpleBlobDetector —
// the tool the paper uses to find regions of high electrostatic potential in
// XGC1 dpot planes (Section IV-D).
//
// Pipeline (bright blobs): sweep thresholds from minThreshold to maxThreshold
// in thresholdStep increments; binarize; label 8-connected components; keep
// components with area >= minArea (and <= maxArea); merge centers closer than
// minDistBetweenBlobs across thresholds; report blobs seen in at least
// minRepeatability threshold slices with their averaged center and diameter.

#include <cstdint>
#include <vector>

#include "mesh/geometry.hpp"

namespace canopus::analytics {

/// The paper's parameter triple is <minThreshold, maxThreshold, minArea>.
struct BlobParams {
  double min_threshold = 10.0;
  double max_threshold = 200.0;
  double threshold_step = 10.0;
  double min_area = 100.0;   // square pixels
  double max_area = 1e9;
  double min_dist_between_blobs = 10.0;  // pixels
  std::size_t min_repeatability = 2;
};

struct Blob {
  mesh::Vec2 center;   // pixels
  double diameter = 0; // pixels, 2*sqrt(area/pi) averaged over slices
  double area = 0;     // square pixels, averaged over slices

  double radius() const { return diameter * 0.5; }
};

/// Detects bright blobs in a row-major width x height 8-bit image.
std::vector<Blob> detect_blobs(const std::vector<std::uint8_t>& image,
                               std::size_t width, std::size_t height,
                               const BlobParams& params);

/// Summary statistics of one detection — the quantities of Fig. 8a-c.
struct BlobStats {
  std::size_t count = 0;
  double mean_diameter = 0.0;   // pixels (Fig. 8b)
  double aggregate_area = 0.0;  // square pixels (Fig. 8c)
};
BlobStats summarize(const std::vector<Blob>& blobs);

/// Two blobs overlap when their center distance is below the sum of their
/// radii (the paper's definition). Returns the fraction of `detected` blobs
/// that overlap at least one `reference` blob (Fig. 8d); 1.0 when `detected`
/// is empty (nothing contradicts the reference).
double overlap_ratio(const std::vector<Blob>& detected,
                     const std::vector<Blob>& reference);

/// Draws circle outlines around the blobs onto a grayscale image in place
/// (Fig. 7's "blobs are explicitly circled" presentation). `intensity` is
/// the outline gray level; a small margin is added around each radius.
void annotate_blobs(std::vector<std::uint8_t>& image, std::size_t width,
                    std::size_t height, const std::vector<Blob>& blobs,
                    std::uint8_t intensity = 255, double margin = 3.0);

}  // namespace canopus::analytics
