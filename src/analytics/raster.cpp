#include "analytics/raster.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace canopus::analytics {

RasterField rasterize(const mesh::TriMesh& mesh, const mesh::Field& values,
                      std::size_t width, std::size_t height,
                      const mesh::Aabb& bounds, double background) {
  CANOPUS_CHECK(width > 0 && height > 0, "raster dimensions must be positive");
  CANOPUS_CHECK(values.size() == mesh.vertex_count(),
                "raster: field size mismatch");
  RasterField out;
  out.width = width;
  out.height = height;
  out.pixels.assign(width * height, background);
  out.inside.assign(width * height, false);

  const mesh::PointLocator locator(mesh);
  const double dx = bounds.width() / static_cast<double>(width);
  const double dy = bounds.height() / static_cast<double>(height);
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      const mesh::Vec2 p{bounds.lo.x + (static_cast<double>(x) + 0.5) * dx,
                         bounds.lo.y + (static_cast<double>(y) + 0.5) * dy};
      const auto loc = locator.try_locate(p);
      if (!loc) continue;  // outside the mesh: keep background
      const auto& tri = mesh.triangle(loc->triangle);
      out.at(x, y) = values[tri.v[0]] * loc->weights[0] +
                     values[tri.v[1]] * loc->weights[1] +
                     values[tri.v[2]] * loc->weights[2];
      out.inside[y * width + x] = true;
    }
  }
  return out;
}

std::vector<std::uint8_t> to_gray8(const RasterField& field, double lo, double hi) {
  CANOPUS_CHECK(hi > lo, "gray8: empty reference range");
  std::vector<std::uint8_t> out(field.pixels.size());
  const double scale = 255.0 / (hi - lo);
  for (std::size_t i = 0; i < field.pixels.size(); ++i) {
    const double v = std::clamp((field.pixels[i] - lo) * scale, 0.0, 255.0);
    out[i] = static_cast<std::uint8_t>(std::lround(v));
  }
  return out;
}

}  // namespace canopus::analytics
