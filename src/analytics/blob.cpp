#include "analytics/blob.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/assert.hpp"

namespace canopus::analytics {

namespace {

/// Union-find over pixel labels for two-pass connected-component labeling.
class UnionFind {
 public:
  std::uint32_t make() {
    parent_.push_back(static_cast<std::uint32_t>(parent_.size()));
    return parent_.back();
  }
  std::uint32_t find(std::uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::uint32_t a, std::uint32_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent_[std::max(a, b)] = std::min(a, b);
  }

 private:
  std::vector<std::uint32_t> parent_;
};

struct Component {
  double sum_x = 0.0;
  double sum_y = 0.0;
  std::size_t area = 0;

  mesh::Vec2 centroid() const {
    const double n = static_cast<double>(area);
    return {sum_x / n, sum_y / n};
  }
};

/// One threshold slice: binarize at `threshold` and return the centers/areas
/// of 8-connected bright components within the area filter.
std::vector<Blob> slice_blobs(const std::vector<std::uint8_t>& image,
                              std::size_t width, std::size_t height,
                              double threshold, const BlobParams& params) {
  constexpr std::uint32_t kNone = static_cast<std::uint32_t>(-1);
  std::vector<std::uint32_t> label(width * height, kNone);
  UnionFind uf;
  auto bright = [&](std::size_t x, std::size_t y) {
    return static_cast<double>(image[y * width + x]) > threshold;
  };
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      if (!bright(x, y)) continue;
      // Previously scanned 8-neighbors: W, NW, N, NE.
      std::uint32_t best = kNone;
      const auto consider = [&](std::size_t nx, std::size_t ny) {
        const auto l = label[ny * width + nx];
        if (l == kNone) return;
        if (best == kNone) {
          best = l;
        } else {
          uf.unite(best, l);
        }
      };
      if (x > 0) consider(x - 1, y);
      if (y > 0) {
        consider(x, y - 1);
        if (x > 0) consider(x - 1, y - 1);
        if (x + 1 < width) consider(x + 1, y - 1);
      }
      label[y * width + x] = best == kNone ? uf.make() : best;
    }
  }
  // Accumulate per-root statistics.
  std::vector<Component> comps;
  std::vector<std::uint32_t> root_to_comp;
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      auto l = label[y * width + x];
      if (l == kNone) continue;
      const auto root = uf.find(l);
      if (root >= root_to_comp.size()) root_to_comp.resize(root + 1, kNone);
      if (root_to_comp[root] == kNone) {
        root_to_comp[root] = static_cast<std::uint32_t>(comps.size());
        comps.emplace_back();
      }
      auto& c = comps[root_to_comp[root]];
      c.sum_x += static_cast<double>(x);
      c.sum_y += static_cast<double>(y);
      ++c.area;
    }
  }
  std::vector<Blob> out;
  for (const auto& c : comps) {
    const auto area = static_cast<double>(c.area);
    if (area < params.min_area || area > params.max_area) continue;
    Blob b;
    b.center = c.centroid();
    b.area = area;
    b.diameter = 2.0 * std::sqrt(area / std::numbers::pi);
    out.push_back(b);
  }
  return out;
}

}  // namespace

std::vector<Blob> detect_blobs(const std::vector<std::uint8_t>& image,
                               std::size_t width, std::size_t height,
                               const BlobParams& params) {
  CANOPUS_CHECK(image.size() == width * height, "blob: image size mismatch");
  CANOPUS_CHECK(params.threshold_step > 0, "blob: threshold step must be > 0");

  // Candidate blob tracks accumulated across threshold slices.
  struct Track {
    std::vector<Blob> slices;
    mesh::Vec2 last_center;
  };
  std::vector<Track> tracks;

  for (double t = params.min_threshold; t < params.max_threshold;
       t += params.threshold_step) {
    const auto slice = slice_blobs(image, width, height, t, params);
    for (const auto& b : slice) {
      Track* best = nullptr;
      double best_d = params.min_dist_between_blobs;
      for (auto& track : tracks) {
        const double d = mesh::distance(track.last_center, b.center);
        if (d < best_d) {
          best_d = d;
          best = &track;
        }
      }
      if (best) {
        best->slices.push_back(b);
        best->last_center = b.center;
      } else {
        tracks.push_back(Track{{b}, b.center});
      }
    }
  }

  std::vector<Blob> out;
  for (const auto& track : tracks) {
    if (track.slices.size() < params.min_repeatability) continue;
    Blob merged;
    for (const auto& b : track.slices) {
      merged.center += b.center;
      merged.diameter += b.diameter;
      merged.area += b.area;
    }
    const double n = static_cast<double>(track.slices.size());
    merged.center = merged.center / n;
    merged.diameter /= n;
    merged.area /= n;
    out.push_back(merged);
  }
  // Deterministic order: by descending area then x.
  std::sort(out.begin(), out.end(), [](const Blob& a, const Blob& b) {
    return a.area != b.area ? a.area > b.area : a.center.x < b.center.x;
  });
  return out;
}

BlobStats summarize(const std::vector<Blob>& blobs) {
  BlobStats s;
  s.count = blobs.size();
  for (const auto& b : blobs) {
    s.mean_diameter += b.diameter;
    s.aggregate_area += b.area;
  }
  if (!blobs.empty()) s.mean_diameter /= static_cast<double>(blobs.size());
  return s;
}

double overlap_ratio(const std::vector<Blob>& detected,
                     const std::vector<Blob>& reference) {
  if (detected.empty()) return 1.0;
  std::size_t overlapping = 0;
  for (const auto& d : detected) {
    for (const auto& r : reference) {
      if (mesh::distance(d.center, r.center) < d.radius() + r.radius()) {
        ++overlapping;
        break;
      }
    }
  }
  return static_cast<double>(overlapping) / static_cast<double>(detected.size());
}

void annotate_blobs(std::vector<std::uint8_t>& image, std::size_t width,
                    std::size_t height, const std::vector<Blob>& blobs,
                    std::uint8_t intensity, double margin) {
  CANOPUS_CHECK(image.size() == width * height, "annotate: image size mismatch");
  for (const auto& b : blobs) {
    const double r = b.radius() + margin;
    // Midpoint-style sweep: walk the angle finely enough that every ring
    // pixel gets hit at least once.
    const int steps = std::max(16, static_cast<int>(8.0 * r));
    for (int s = 0; s < steps; ++s) {
      const double theta = 2.0 * std::numbers::pi * s / steps;
      const auto x = static_cast<long>(std::lround(b.center.x + r * std::cos(theta)));
      const auto y = static_cast<long>(std::lround(b.center.y + r * std::sin(theta)));
      if (x >= 0 && y >= 0 && x < static_cast<long>(width) &&
          y < static_cast<long>(height)) {
        image[static_cast<std::size_t>(y) * width + static_cast<std::size_t>(x)] =
            intensity;
      }
    }
  }
}

}  // namespace canopus::analytics
