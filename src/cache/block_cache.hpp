#pragma once
// Shared, memory-budgeted block cache between readers and the storage
// hierarchy.
//
// Canopus' elasticity story assumes many analytics clients progressively
// pulling the same base + delta products; without a cache every reader pays
// the slow tiers again for bytes a sibling fetched moments ago. BlockCache
// is the one shared copy: a thread-safe, sharded LRU with a byte budget that
// holds two kinds of entry —
//
//   * compressed tier blobs, keyed by the hierarchy object key of the
//     product/chunk (StorageHierarchy::read fronts itself with these), and
//   * decoded level arrays (vectors of doubles), keyed by a "#decoded"
//     alias of the chunk's object key, so sibling sessions skip even the
//     decompression of a chunk another session already decoded.
//
// Loads are single-flight: when N readers miss on the same key at once,
// exactly one runs the loader (the tier fetch / the decode) and the other
// N-1 block on its result instead of issuing duplicate slow-tier I/O. A
// loader that throws admits nothing — corrupt or unreadable blobs can never
// poison the cache — and its waiters see the exception; latecomers retry
// with a fresh flight. invalidate() is immediate: it drops the resident
// entry AND cancels admission of any in-flight load of that key, so no
// entry is ever served after its invalidation.
//
// Every admitted payload is stamped with its CRC-32 on admission (the same
// checksum the storage blob frames use), which both records what was
// verified at the I/O boundary and, with Config::verify_hits, lets tests
// re-verify each hit against in-memory corruption.
//
// Concurrency: keys hash onto one of Config::shards independent shards,
// each with its own mutex, map, and LRU list; the budget is split evenly
// across shards so occupancy can never exceed the byte budget no matter the
// interleaving. Loaders always run outside every cache lock (lock order is
// caller locks -> shard lock, never the reverse), so a loader may safely
// take the storage hierarchy's lock or run on a thread-pool worker.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/byte_buffer.hpp"

namespace canopus::cache {

struct CacheConfig {
  /// Total byte budget across all entries (payload bytes; the fixed
  /// per-entry bookkeeping is not charged). Entries larger than a shard's
  /// slice of the budget are served but never admitted.
  std::size_t budget_bytes = 64ull << 20;
  /// Number of independent lock shards (clamped to >= 1).
  std::size_t shards = 8;
  /// Re-verify the stored CRC-32 on every hit (tests / paranoid deployments;
  /// the default trusts DRAM once admission verified the bytes).
  bool verify_hits = false;
};

class BlockCache {
 public:
  using BlobPtr = std::shared_ptr<const util::Bytes>;
  using ArrayPtr = std::shared_ptr<const std::vector<double>>;

  /// How a get_or_load call obtained its value.
  enum class Source : std::uint8_t {
    kHit = 0,     // already resident
    kLoaded = 1,  // this caller ran the loader (single-flight leader)
    kShared = 2,  // waited on another caller's in-flight load
  };

  struct BlobResult {
    BlobPtr blob;
    Source source = Source::kHit;
  };
  struct ArrayResult {
    ArrayPtr array;
    Source source = Source::kHit;
  };

  /// Monotonic event counters (independent of the obs layer, so tests can
  /// assert them with observability disabled).
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t single_flight_waits = 0;
    std::uint64_t rejected = 0;  // loads too large for a shard's budget slice
  };

  explicit BlockCache(CacheConfig config = {});

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  /// Returns the cached blob for `key`, or runs `loader` exactly once across
  /// all concurrent callers and admits its (CRC-stamped) result. A throwing
  /// loader admits nothing and rethrows to the leader and every waiter.
  BlobResult get_or_load_blob(const std::string& key,
                              const std::function<util::Bytes()>& loader);

  /// Decoded-array flavor of get_or_load_blob; charged at value bytes.
  ArrayResult get_or_load_array(
      const std::string& key,
      const std::function<std::vector<double>()>& loader);

  /// Resident blob or nullptr; counts a hit or a miss.
  BlobPtr lookup_blob(const std::string& key);
  /// Resident array or nullptr; counts a hit or a miss.
  ArrayPtr lookup_array(const std::string& key);

  /// True when `key` is resident (no stat side effects, no LRU touch).
  bool contains(const std::string& key) const;

  /// Planning probe for the serve-layer cost model: residency of a tier blob
  /// and its decoded alias (StorageHierarchy::decoded_alias(key)) in one
  /// call. Like contains(), stat- and LRU-neutral — estimating a query's
  /// cost must not perturb eviction order or hit rates.
  struct Residency {
    bool blob = false;     // framed tier bytes resident (I/O is free)
    bool decoded = false;  // decoded double array resident (decode is free)
  };
  Residency probe(const std::string& key,
                  const std::string& decoded_alias) const;

  /// Drops `key` immediately and cancels admission of any in-flight load of
  /// it. After this returns no caller can be served the pre-invalidation
  /// value from the cache.
  void invalidate(const std::string& key);

  /// Invalidates every resident key starting with `prefix` (O(entries);
  /// meant for container-level invalidation, not hot paths). Returns the
  /// number of entries dropped. In-flight loads are cancelled likewise.
  std::size_t invalidate_prefix(const std::string& prefix);

  /// Drops everything (counts as invalidations).
  void clear();

  std::size_t occupancy_bytes() const {
    return occupancy_.load(std::memory_order_relaxed);
  }
  std::size_t budget_bytes() const { return config_.budget_bytes; }
  const CacheConfig& config() const { return config_; }
  Stats stats() const;

 private:
  /// One resident value: exactly one of blob/array is set. The CRC-32 of the
  /// payload bytes is computed at admission (after the loader's result was
  /// already frame-verified at the tier boundary) so hits can be re-checked.
  struct Entry {
    BlobPtr blob;
    ArrayPtr array;
    std::size_t charge = 0;
    std::uint32_t crc = 0;
    std::list<std::string>::iterator lru_pos;
  };

  /// One in-flight single-flight load. `done`/`error`/value are published
  /// under `mu`; `cancelled` is written under the owning shard's lock and
  /// read by the leader at admission time (also under the shard lock).
  struct Flight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    bool cancelled = false;  // guarded by the shard mutex, not `mu`
    BlobPtr blob;
    ArrayPtr array;
    std::exception_ptr error;
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, Entry> map;
    std::list<std::string> lru;  // front = most recent
    std::size_t bytes = 0;
    std::unordered_map<std::string, std::shared_ptr<Flight>> flights;
  };

  Shard& shard_for(const std::string& key);
  const Shard& shard_for(const std::string& key) const;

  /// Drops one resident entry (shard lock held by caller).
  void drop_entry_locked(Shard& shard,
                         std::unordered_map<std::string, Entry>::iterator it);
  /// Admits an entry and evicts LRU victims until the shard fits its budget
  /// slice (shard lock held by caller). Returns false when the entry alone
  /// exceeds the slice and was rejected.
  bool admit_locked(Shard& shard, const std::string& key, Entry entry);

  /// Shared engine for the blob/array flavors: `fromEntry` projects the
  /// typed pointer out of a resident entry, `toEntry` builds an entry from
  /// a freshly loaded value.
  template <typename Value, typename Result>
  Result get_or_load(const std::string& key,
                     const std::function<Value()>& loader);

  void note_hit(const Entry& entry, const std::string& key) const;

  CacheConfig config_;
  std::size_t shard_budget_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::size_t> occupancy_{0};

  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> invalidations_{0};
  std::atomic<std::uint64_t> waits_{0};
  std::atomic<std::uint64_t> rejected_{0};
};

}  // namespace canopus::cache
