#include "cache/block_cache.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "util/assert.hpp"
#include "util/crc32.hpp"
#include "util/timer.hpp"

namespace canopus::cache {

namespace {

/// Payload bytes of a decoded array, the unit the budget is charged in.
std::size_t array_charge(const std::vector<double>& values) {
  return values.size() * sizeof(double);
}

std::uint32_t array_crc(const std::vector<double>& values) {
  return util::Crc32::compute(util::BytesView(
      reinterpret_cast<const std::byte*>(values.data()), array_charge(values)));
}

/// Obs handles, resolved once (registry lookup takes a mutex; updates through
/// the cached references are lock-free and no-ops while obs is disabled).
struct CacheMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& evictions;
  obs::Counter& invalidations;
  obs::Counter& single_flight_waits;
  obs::Gauge& occupancy;
  obs::Histogram& admission_us;

  static CacheMetrics& get() {
    static CacheMetrics m{
        obs::MetricsRegistry::global().counter("cache.hits"),
        obs::MetricsRegistry::global().counter("cache.misses"),
        obs::MetricsRegistry::global().counter("cache.evictions"),
        obs::MetricsRegistry::global().counter("cache.invalidations"),
        obs::MetricsRegistry::global().counter("cache.single_flight_waits"),
        obs::MetricsRegistry::global().gauge("cache.occupancy_bytes"),
        obs::MetricsRegistry::global().histogram("cache.admission_us")};
    return m;
  }
};

}  // namespace

BlockCache::BlockCache(CacheConfig config) : config_(config) {
  config_.shards = std::max<std::size_t>(1, config_.shards);
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  shard_budget_ = config_.budget_bytes / config_.shards;
}

BlockCache::Shard& BlockCache::shard_for(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

const BlockCache::Shard& BlockCache::shard_for(const std::string& key) const {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

void BlockCache::drop_entry_locked(
    Shard& shard, std::unordered_map<std::string, Entry>::iterator it) {
  shard.bytes -= it->second.charge;
  occupancy_.fetch_sub(it->second.charge, std::memory_order_relaxed);
  shard.lru.erase(it->second.lru_pos);
  shard.map.erase(it);
  if (obs::enabled()) {
    CacheMetrics::get().occupancy.set(
        static_cast<std::int64_t>(occupancy_bytes()));
  }
}

bool BlockCache::admit_locked(Shard& shard, const std::string& key,
                              Entry entry) {
  if (entry.charge > shard_budget_) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // Replacing a resident entry must not double-charge.
  if (auto it = shard.map.find(key); it != shard.map.end()) {
    drop_entry_locked(shard, it);
  }
  // Evict least-recently-used entries until the new one fits the shard's
  // slice of the budget; the occupancy invariant (sum of shard bytes <=
  // budget) holds at every instant because each shard stays within its slice.
  while (shard.bytes + entry.charge > shard_budget_ && !shard.lru.empty()) {
    auto victim = shard.map.find(shard.lru.back());
    CANOPUS_ASSERT(victim != shard.map.end());
    drop_entry_locked(shard, victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    if (obs::enabled()) CacheMetrics::get().evictions.add(1);
  }
  shard.lru.push_front(key);
  entry.lru_pos = shard.lru.begin();
  shard.bytes += entry.charge;
  occupancy_.fetch_add(entry.charge, std::memory_order_relaxed);
  shard.map.emplace(key, std::move(entry));
  if (obs::enabled()) {
    CacheMetrics::get().occupancy.set(
        static_cast<std::int64_t>(occupancy_bytes()));
  }
  return true;
}

void BlockCache::note_hit(const Entry& entry, const std::string& key) const {
  hits_.fetch_add(1, std::memory_order_relaxed);
  if (obs::enabled()) CacheMetrics::get().hits.add(1);
  if (config_.verify_hits) {
    const std::uint32_t crc =
        entry.blob ? util::Crc32::compute(*entry.blob) : array_crc(*entry.array);
    CANOPUS_CHECK(crc == entry.crc,
                  "cache entry '" + key + "' failed its hit-time CRC check");
  }
}

template <typename Value, typename Result>
Result BlockCache::get_or_load(const std::string& key,
                               const std::function<Value()>& loader) {
  constexpr bool is_blob = std::is_same_v<Value, util::Bytes>;
  Shard& shard = shard_for(key);
  std::shared_ptr<Flight> flight;
  bool leader = false;
  {
    std::scoped_lock lock(shard.mu);
    if (auto it = shard.map.find(key); it != shard.map.end()) {
      Entry& entry = it->second;
      const bool type_matches =
          is_blob ? entry.blob != nullptr : entry.array != nullptr;
      if (type_matches) {
        shard.lru.splice(shard.lru.begin(), shard.lru, entry.lru_pos);
        note_hit(entry, key);
        if constexpr (is_blob) {
          return {entry.blob, Source::kHit};
        } else {
          return {entry.array, Source::kHit};
        }
      }
      // A key reused across entry kinds is a caller bug in spirit, but stay
      // safe: treat it as a miss and let the reload replace the entry.
      drop_entry_locked(shard, it);
    }
    auto [fit, inserted] = shard.flights.try_emplace(key);
    if (inserted) {
      fit->second = std::make_shared<Flight>();
      leader = true;
    }
    flight = fit->second;
  }

  if (!leader) {
    waits_.fetch_add(1, std::memory_order_relaxed);
    if (obs::enabled()) CacheMetrics::get().single_flight_waits.add(1);
    std::unique_lock fl(flight->mu);
    flight->cv.wait(fl, [&] { return flight->done; });
    if (flight->error) std::rethrow_exception(flight->error);
    if constexpr (is_blob) {
      CANOPUS_CHECK(flight->blob != nullptr,
                    "single-flight result for '" + key + "' is not a blob");
      return {flight->blob, Source::kShared};
    } else {
      CANOPUS_CHECK(flight->array != nullptr,
                    "single-flight result for '" + key + "' is not an array");
      return {flight->array, Source::kShared};
    }
  }

  // Leader: run the loader outside every cache lock so it may take slower
  // locks (the storage hierarchy's) or run on pool workers freely.
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (obs::enabled()) CacheMetrics::get().misses.add(1);
  util::WallTimer admission_timer;
  std::exception_ptr error;
  std::shared_ptr<const Value> value;
  Entry entry;
  try {
    value = std::make_shared<const Value>(loader());
    if constexpr (is_blob) {
      entry.blob = value;
      entry.charge = value->size();
      entry.crc = util::Crc32::compute(*value);
    } else {
      entry.array = value;
      entry.charge = array_charge(*value);
      entry.crc = array_crc(*value);
    }
  } catch (...) {
    error = std::current_exception();
  }

  {
    std::scoped_lock lock(shard.mu);
    // Admit only verified results of still-valid flights: a loader that
    // threw caches nothing, and an invalidate() racing the load cancels
    // admission (the waiters still get the value they asked for, but the
    // cache forgets it immediately).
    if (!error && !flight->cancelled) {
      admit_locked(shard, key, std::move(entry));
    }
    auto fit = shard.flights.find(key);
    if (fit != shard.flights.end() && fit->second == flight) {
      shard.flights.erase(fit);
    }
  }
  {
    std::scoped_lock fl(flight->mu);
    if constexpr (is_blob) {
      flight->blob = error ? nullptr : value;
    } else {
      flight->array = error ? nullptr : value;
    }
    flight->error = error;
    flight->done = true;
  }
  flight->cv.notify_all();
  if (error) std::rethrow_exception(error);
  if (obs::enabled()) {
    CacheMetrics::get().admission_us.observe(admission_timer.seconds() * 1e6);
  }
  if constexpr (is_blob) {
    return {value, Source::kLoaded};
  } else {
    return {value, Source::kLoaded};
  }
}

BlockCache::BlobResult BlockCache::get_or_load_blob(
    const std::string& key, const std::function<util::Bytes()>& loader) {
  return get_or_load<util::Bytes, BlobResult>(key, loader);
}

BlockCache::ArrayResult BlockCache::get_or_load_array(
    const std::string& key, const std::function<std::vector<double>()>& loader) {
  return get_or_load<std::vector<double>, ArrayResult>(key, loader);
}

BlockCache::BlobPtr BlockCache::lookup_blob(const std::string& key) {
  Shard& shard = shard_for(key);
  std::scoped_lock lock(shard.mu);
  if (auto it = shard.map.find(key); it != shard.map.end() && it->second.blob) {
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
    note_hit(it->second, key);
    return it->second.blob;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (obs::enabled()) CacheMetrics::get().misses.add(1);
  return nullptr;
}

BlockCache::ArrayPtr BlockCache::lookup_array(const std::string& key) {
  Shard& shard = shard_for(key);
  std::scoped_lock lock(shard.mu);
  if (auto it = shard.map.find(key); it != shard.map.end() && it->second.array) {
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
    note_hit(it->second, key);
    return it->second.array;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (obs::enabled()) CacheMetrics::get().misses.add(1);
  return nullptr;
}

bool BlockCache::contains(const std::string& key) const {
  const Shard& shard = shard_for(key);
  std::scoped_lock lock(shard.mu);
  return shard.map.find(key) != shard.map.end();
}

BlockCache::Residency BlockCache::probe(const std::string& key,
                                        const std::string& decoded_alias) const {
  return Residency{contains(key), contains(decoded_alias)};
}

void BlockCache::invalidate(const std::string& key) {
  Shard& shard = shard_for(key);
  std::scoped_lock lock(shard.mu);
  if (auto it = shard.map.find(key); it != shard.map.end()) {
    drop_entry_locked(shard, it);
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    if (obs::enabled()) CacheMetrics::get().invalidations.add(1);
  }
  if (auto fit = shard.flights.find(key); fit != shard.flights.end()) {
    fit->second->cancelled = true;
  }
}

std::size_t BlockCache::invalidate_prefix(const std::string& prefix) {
  std::size_t dropped = 0;
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::scoped_lock lock(shard.mu);
    for (auto it = shard.map.begin(); it != shard.map.end();) {
      if (it->first.compare(0, prefix.size(), prefix) == 0) {
        drop_entry_locked(shard, it++);
        ++dropped;
      } else {
        ++it;
      }
    }
    for (auto& [key, flight] : shard.flights) {
      if (key.compare(0, prefix.size(), prefix) == 0) flight->cancelled = true;
    }
  }
  invalidations_.fetch_add(dropped, std::memory_order_relaxed);
  if (obs::enabled() && dropped > 0) {
    CacheMetrics::get().invalidations.add(dropped);
  }
  return dropped;
}

void BlockCache::clear() { invalidate_prefix(""); }

BlockCache::Stats BlockCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.invalidations = invalidations_.load(std::memory_order_relaxed);
  s.single_flight_waits = waits_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace canopus::cache
