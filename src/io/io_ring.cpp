#include "io/io_ring.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/observability.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace canopus::io {

double overlap_makespan(const std::vector<double>& costs, std::uint32_t depth) {
  if (depth <= 1) {
    // Ordered sum, matching the historical fold of blocking readers exactly
    // (same accumulation order, so the same floating-point bits).
    double sum = 0.0;
    for (const double c : costs) sum += c;
    return sum;
  }
  const std::size_t lanes =
      std::min<std::size_t>(depth, std::max<std::size_t>(1, costs.size()));
  std::vector<double> lane(lanes, 0.0);
  double makespan = 0.0;
  for (const double c : costs) {
    // Greedy list schedule in submission order; min_element's first-of-ties
    // rule keeps the schedule deterministic.
    auto slot = std::min_element(lane.begin(), lane.end());
    *slot += c;
    makespan = std::max(makespan, *slot);
  }
  return makespan;
}

IoRing::IoRing(const storage::StorageHierarchy& hierarchy, IoConfig config,
               util::ThreadPool* pool)
    : hierarchy_(hierarchy),
      config_(config),
      pool_(pool),
      max_batch_(std::clamp<std::uint32_t>(
          config.batch == 0 ? 1 : config.batch, 1,
          std::max<std::uint32_t>(1, config.depth))) {}

IoRing::~IoRing() {
  std::unique_lock<std::mutex> lock(mu_);
  // Unexecuted submissions are dropped, not executed: an abandoned level must
  // not advance the tiers' fault stream past what a serial reader abandoning
  // the same level would have read. In-flight execution is joined.
  queue_.clear();
  cv_.wait(lock, [&] { return !executing_ && !driver_scheduled_; });
}

std::size_t IoRing::submit(std::string key) {
  std::unique_lock<std::mutex> lock(mu_);
  const std::size_t id = next_id_++;
  // Group assignment happens here, in submission order, so batch boundaries
  // never depend on how the background driver races the submitter.
  if (group_fill_ >= max_batch_) {
    ++group_counter_;
    group_fill_ = 0;
  }
  ++group_fill_;
  queue_.push_back(Pending{id, std::move(key), group_counter_});
  ++stats_.submitted;
  if (obs::enabled()) {
    obs::MetricsRegistry::global().gauge("io.inflight").set(
        static_cast<std::int64_t>(queue_.size() + ready_.size()));
  }
  maybe_spawn_driver_locked();
  return id;
}

void IoRing::maybe_spawn_driver_locked() {
  const std::uint32_t depth = std::max<std::uint32_t>(1, config_.depth);
  if (pool_ == nullptr || driver_scheduled_ || executing_ || queue_.empty() ||
      ready_.size() >= depth) {
    return;
  }
  driver_scheduled_ = true;
  // The future is intentionally dropped; the destructor joins via the
  // driver_scheduled_/executing_ flags instead.
  (void)pool_->submit([this] {
    std::unique_lock<std::mutex> lock(mu_);
    driver_scheduled_ = false;
    const std::uint32_t d = std::max<std::uint32_t>(1, config_.depth);
    if (!executing_ && !queue_.empty() && ready_.size() < d) {
      pump(lock, /*flush_open_group=*/false);
    }
    cv_.notify_all();
  });
}

void IoRing::pump(std::unique_lock<std::mutex>& lock, bool flush_open_group) {
  CANOPUS_ASSERT(!executing_);
  executing_ = true;
  const std::uint32_t depth = std::max<std::uint32_t>(1, config_.depth);
  while (!queue_.empty()) {
    // The front run: every queued member of the front op's logical group.
    // Groups are contiguous in the queue because submit() assigns them in
    // submission order and pump() only ever takes whole runs.
    const std::size_t group = queue_.front().group;
    std::size_t run = 1;
    while (run < queue_.size() && queue_[run].group == group) ++run;
    const bool closed = group < group_counter_ || run >= max_batch_;
    // The driver leaves an open tail group for wait_next()'s inline pump:
    // issuing a partial group here would split it at a race-dependent point
    // and change the batch-amortized simulated cost run to run.
    if (!closed && !flush_open_group) break;
    // A group is issued whole or not at all; wait for ring slots.
    if (ready_.size() + run > depth) break;
    if (!closed) {
      // Flushing the open tail closes it, so later submissions start a fresh
      // group instead of retroactively extending this one.
      ++group_counter_;
      group_fill_ = 0;
    }
    std::vector<Pending> ops;
    ops.reserve(run);
    for (std::size_t i = 0; i < run; ++i) {
      ops.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    lock.unlock();
    std::vector<std::string> keys;
    keys.reserve(ops.size());
    for (const auto& op : ops) keys.push_back(op.key);
    util::WallTimer submit_timer;
    auto results = hierarchy_.read_batch(keys);
    const double submit_seconds = submit_timer.seconds();
    CANOPUS_ASSERT(results.size() == ops.size());
    std::vector<IoCompletion> done;
    done.reserve(ops.size());
    for (std::size_t i = 0; i < ops.size(); ++i) {
      IoCompletion c;
      c.id = ops[i].id;
      c.key = std::move(ops[i].key);
      c.payload = std::move(results[i].bytes);
      c.io = results[i].io;
      c.error = results[i].error;
      c.deadline_missed = config_.deadline_seconds > 0.0 &&
                          c.io.sim_seconds > config_.deadline_seconds;
      done.push_back(std::move(c));
    }
    if (obs::enabled()) {
      auto& registry = obs::MetricsRegistry::global();
      registry.histogram("io.submit_us").observe(submit_seconds * 1e6);
      for (const auto& c : done) {
        // Simulated per-op latency, same convention as storage.<tier>.read_us.
        registry.histogram("io.complete_us").observe(c.io.sim_seconds * 1e6);
      }
    }
    lock.lock();
    ++stats_.batches;
    for (auto& c : done) note_completion_locked(std::move(c));
    cv_.notify_all();
  }
  executing_ = false;
  cv_.notify_all();
}

void IoRing::note_completion_locked(IoCompletion&& c) {
  if (c.deadline_missed) {
    ++stats_.deadline_misses;
    if (obs::enabled()) {
      obs::MetricsRegistry::global().counter("io.deadline_misses").add(1);
    }
  }
  ready_.push_back(std::move(c));
}

IoCompletion IoRing::wait_next() {
  std::unique_lock<std::mutex> lock(mu_);
  CANOPUS_CHECK(!ready_.empty() || !queue_.empty() || executing_,
                "IoRing::wait_next with no operation outstanding");
  for (;;) {
    if (!ready_.empty()) {
      IoCompletion c = std::move(ready_.front());
      ready_.pop_front();
      ++stats_.completed;
      if (obs::enabled()) {
        obs::MetricsRegistry::global().gauge("io.inflight").set(
            static_cast<std::int64_t>(queue_.size() + ready_.size()));
      }
      // Consuming may have opened a ring slot: restart the driver so I/O
      // keeps running ahead while the caller processes this completion.
      maybe_spawn_driver_locked();
      cv_.notify_all();
      return c;
    }
    if (!queue_.empty() && !executing_) {
      // No background driver is making progress — pump inline, including the
      // open tail group (no further submissions can extend it while this
      // thread blocks here). This keeps the engine live on null pools,
      // saturated pools, and calls from pool workers themselves.
      pump(lock, /*flush_open_group=*/true);
      continue;
    }
    cv_.wait(lock);
  }
}

std::size_t IoRing::in_flight() const {
  std::scoped_lock lock(mu_);
  return queue_.size() + ready_.size();
}

IoRing::Stats IoRing::stats() const {
  std::scoped_lock lock(mu_);
  return stats_;
}

}  // namespace canopus::io
