#pragma once
// Knobs of the asynchronous submission/completion engine (io/io_ring.hpp),
// split into their own header so the config loader and the Pipeline facade
// can carry them without pulling in the engine.

#include <cstdint>

namespace canopus::io {

/// Shape of one IoRing. The default depth of 1 IS the blocking path: every
/// read completes before the next is submitted and the accounting degenerates
/// to the plain per-op sum, so existing callers are unchanged until they opt
/// in with depth > 1 (config `<io depth=...>` or the benches' --io-depth).
struct IoConfig {
  /// Bounded ring size: maximum tier operations in flight (submitted and not
  /// yet consumed by the completion loop). 0 and 1 both mean blocking.
  std::uint32_t depth = 1;
  /// Maximum ops per aggregated submission to the hierarchy's batched seam
  /// (StorageHierarchy::read_batch). Clamped to depth at run time.
  std::uint32_t batch = 4;
  /// Per-op simulated-clock deadline; an op whose sim cost (including retries
  /// and backoff) exceeds it completes with deadline_missed set and bumps the
  /// io.deadline_misses counter. 0 disables the check.
  double deadline_seconds = 0.0;

  bool enabled() const { return depth > 1; }
};

}  // namespace canopus::io
