#pragma once
// Asynchronous submission/completion engine: a bounded ring of in-flight tier
// operations with batched submission and completion-driven continuation.
//
// The shape follows ScaleStore's AsyncReadBuffer: a session submits the keys
// it needs, the engine keeps up to `depth` operations in flight against the
// storage hierarchy (issuing them through the batched submit seam,
// StorageHierarchy::read_batch, in groups of up to `batch`), and the session
// consumes completions in submission order, firing its continuation — for the
// progressive reader, the decode of one delta chunk — as each lands instead
// of after a level-wide barrier.
//
// Determinism: batches execute strictly in submission order by exactly one
// executor at a time, and read_batch preserves key order inside a batch, so
// the tiers (and the seeded fault injector) see the same operation sequence
// as a serial read loop — batched submission changes when I/O happens, never
// what happens to each op. Batch *boundaries* are deterministic too: every op
// is assigned to a logical group of exactly `batch` ops at submit time, and a
// group is always issued as one read_batch call. This matters because
// read_batch amortizes tier round-trip latency within a call — if the batch
// split depended on how far the submitter had raced ahead of the background
// driver, the simulated clock would differ run to run. The driver therefore
// executes only *closed* groups (a full `batch` of members); the open tail
// group is flushed solely by wait_next()'s inline pump, whose timing is fixed
// by the caller's submit/wait sequence. Execution is opportunistic: a driver
// task on the worker pool drains closed groups in the background, and
// wait_next() pumps inline whenever no driver is active (including pools with
// zero spare workers), so consuming completions can never deadlock.
//
// Accounting for overlapped I/O lives next door: overlap_makespan() converts
// a list of per-op simulated costs into the simulated wall-clock of running
// them `depth`-way overlapped, which is what RetrievalTimings charges when a
// ring is active (sum == makespan at depth 1, so blocking accounting is
// unchanged).

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "io/io_config.hpp"
#include "storage/hierarchy.hpp"
#include "util/thread_pool.hpp"

namespace canopus::io {

/// Simulated wall-clock seconds of executing ops with the given sim costs on
/// `depth` overlapped lanes, in submission order (greedy earliest-free-lane
/// list schedule — exactly the bound a ring of `depth` slots achieves).
/// Deterministic; depth <= 1 reduces to the plain ordered sum, which keeps
/// async-off step accounting bit-identical to the historical per-op fold.
double overlap_makespan(const std::vector<double>& costs, std::uint32_t depth);

/// One finished operation, handed out in submission order.
struct IoCompletion {
  std::size_t id = 0;     // submission index (0-based, monotonically rising)
  std::string key;        // the object read
  util::Bytes payload;    // empty when error is set
  storage::IoResult io;   // per-op accounting (batched amortization applied)
  std::exception_ptr error;      // the op's failure, exactly as read() throws
  bool deadline_missed = false;  // sim cost exceeded IoConfig::deadline_seconds
};

class IoRing {
 public:
  /// Rings issue reads against `hierarchy`; `pool` (optional) supplies the
  /// background driver — with a null pool, or when the submitter is itself a
  /// pool worker, execution happens inline in wait_next(). Both the hierarchy
  /// and the pool must outlive the ring.
  IoRing(const storage::StorageHierarchy& hierarchy, IoConfig config,
         util::ThreadPool* pool = nullptr);

  /// Drains every submitted op (results discarded) before tearing down.
  ~IoRing();

  IoRing(const IoRing&) = delete;
  IoRing& operator=(const IoRing&) = delete;

  const IoConfig& config() const { return config_; }

  /// Enqueues a read of `key`; returns its submission id. Never blocks — the
  /// ring bounds in-flight *execution*, not submission: batches stop being
  /// issued while `depth` completions are waiting to be consumed, which is
  /// what bounds payload memory.
  std::size_t submit(std::string key);

  /// Next completion in submission order. Blocks until ready, pumping
  /// batches inline when no background driver is making progress. Calling
  /// with nothing outstanding is a bug (asserts).
  IoCompletion wait_next();

  /// Ops submitted and not yet consumed.
  std::size_t in_flight() const;

  /// Monotonic engine counters (independent of the obs layer so tests can
  /// assert exact accounting with observability off).
  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t batches = 0;          // read_batch calls issued
    std::uint64_t deadline_misses = 0;  // ops over IoConfig::deadline_seconds
  };
  Stats stats() const;

 private:
  struct Pending {
    std::size_t id;
    std::string key;
    std::size_t group;  // logical batch assigned at submit time
  };

  /// Executes queued groups while completions stay under the depth bound.
  /// Runs with `lock` held; drops it around the actual I/O. With
  /// `flush_open_group` false (the background driver) only closed groups are
  /// issued; true (inline from wait_next) also flushes — and closes — the
  /// open tail group.
  void pump(std::unique_lock<std::mutex>& lock, bool flush_open_group);
  void note_completion_locked(IoCompletion&& c);
  void maybe_spawn_driver_locked();

  const storage::StorageHierarchy& hierarchy_;
  const IoConfig config_;
  util::ThreadPool* pool_;  // not owned; may be null
  const std::uint32_t max_batch_;  // effective group size (batch clamped)

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;        // submitted, not yet executed
  std::deque<IoCompletion> ready_;   // executed, not yet consumed (in order)
  bool executing_ = false;           // exactly one pump loop at a time
  bool driver_scheduled_ = false;    // a pool driver task is queued/running
  std::size_t next_id_ = 0;
  std::size_t group_counter_ = 0;    // id of the currently open group
  std::uint32_t group_fill_ = 0;     // members submitted to the open group
  Stats stats_;
};

}  // namespace canopus::io
