#include "tiering/heat_tracker.hpp"

#include <cmath>

#include "obs/metrics.hpp"
#include "util/assert.hpp"

namespace canopus::tiering {

namespace {

std::size_t fnv1a(const std::string& key) {
  std::size_t h = 1469598103934665603ull;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

HeatTracker::HeatTracker(double half_life_seconds)
    : half_life_(half_life_seconds),
      origin_(std::chrono::steady_clock::now()) {
  CANOPUS_CHECK(std::isfinite(half_life_) && half_life_ > 0.0,
                "heat tracker: half-life must be finite and > 0");
}

HeatTracker::Shard& HeatTracker::shard_for(const std::string& key) const {
  return shards_[fnv1a(key) % kShards];
}

double HeatTracker::decay(double dt) const {
  if (dt <= 0.0) return 1.0;
  return std::exp2(-dt / half_life_);
}

void HeatTracker::record(const std::string& key, double weight,
                         double now_seconds) {
  {
    Shard& shard = shard_for(key);
    std::scoped_lock lock(shard.mu);
    Entry& e = shard.entries[key];
    e.value = e.value * decay(now_seconds - e.stamp) + weight;
    if (now_seconds > e.stamp) e.stamp = now_seconds;
  }
  if (obs::enabled()) {
    obs::MetricsRegistry::global().counter("tiering.heat_records").add(1);
  }
}

void HeatTracker::record(const std::string& key, double weight) {
  record(key, weight, now());
}

double HeatTracker::heat(const std::string& key, double now_seconds) const {
  Shard& shard = shard_for(key);
  std::scoped_lock lock(shard.mu);
  const auto it = shard.entries.find(key);
  if (it == shard.entries.end()) return 0.0;
  return it->second.value * decay(now_seconds - it->second.stamp);
}

double HeatTracker::heat(const std::string& key) const {
  return heat(key, now());
}

double HeatTracker::now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       origin_)
      .count();
}

std::size_t HeatTracker::tracked() const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) {
    std::scoped_lock lock(shard.mu);
    n += shard.entries.size();
  }
  return n;
}

}  // namespace canopus::tiering
