#pragma once
// Exponentially decayed, sharded access-heat counters.
//
// The paper's placement story ("data placed in the storage hierarchy
// according to access patterns") needs a workload signal. HeatTracker is that
// signal: every read the storage layer serves records weight against the
// object's key, and the value decays exponentially with a configurable
// half-life, so "hot" always means *recently* hot. Keys are global object
// names (the same names the ChunkDirectory shards by), so heat survives
// topology changes: a chunk migrated to a new owner keeps its history.
//
// Sharded like obs::MetricsRegistry and cache::BlockCache: 16 shards keyed by
// FNV-1a of the key, each a small map behind its own mutex. The shard mutex
// is a leaf lock — record()/heat() never call back into storage or cache —
// so the tracker is safe to invoke from inside StorageHierarchy's read path
// (hierarchy mutex held) and from the fabric's provider threads.
//
// Time is explicit: record()/heat() take `now_seconds` on the tracker's own
// monotone axis (now() supplies a steady-clock reading). Tests pass explicit
// timestamps and get bit-exact decay arithmetic, no wall clock involved.

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace canopus::tiering {

class HeatTracker {
 public:
  /// `half_life_seconds` must be finite and > 0.
  explicit HeatTracker(double half_life_seconds);

  /// Folds `weight` into the key's heat at time `now_seconds`: the stored
  /// value first decays from its last stamp, then gains `weight`. Stamps
  /// never go backwards — a `now_seconds` earlier than the stored stamp is
  /// treated as the stamp itself (decay factor 1).
  void record(const std::string& key, double weight, double now_seconds);
  /// record() at now().
  void record(const std::string& key, double weight = 1.0);

  /// The key's heat decayed to `now_seconds` (0 for unknown keys). Pure read:
  /// the stored stamp is not advanced.
  double heat(const std::string& key, double now_seconds) const;
  /// heat() at now().
  double heat(const std::string& key) const;

  /// Seconds elapsed on the tracker's monotone axis (steady clock since
  /// construction) — the `now_seconds` the convenience overloads use.
  double now() const;

  /// Number of keys with recorded heat.
  std::size_t tracked() const;

  double half_life_seconds() const { return half_life_; }

 private:
  struct Entry {
    double value = 0.0;
    double stamp = 0.0;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, Entry> entries;
  };
  static constexpr std::size_t kShards = 16;

  Shard& shard_for(const std::string& key) const;
  /// 2^(-dt / half_life); 1 when dt <= 0.
  double decay(double dt) const;

  double half_life_;
  std::chrono::steady_clock::time_point origin_;
  mutable std::array<Shard, kShards> shards_;
};

}  // namespace canopus::tiering
