#pragma once
// Workload-adaptive tiering knobs. Dependency-free (standard library only) so
// core::RuntimeConfig and canopus::Options can embed the struct without core
// linking against the tiering module — the same pattern as
// serve/serve_config.hpp and fabric/fabric_config.hpp.

#include <cstddef>
#include <cstdint>

namespace canopus::tiering {

/// Configuration of the heat-driven TierAdvisor
/// (<tiering enabled= half-life= promote-above= demote-below= interval=
///  max-moves= cooldown-ticks= reserve=>, src/tiering).
struct TieringConfig {
  /// Starts the advisor's background policy thread when the Pipeline creates
  /// it. Disabled, the advisor still tracks heat and answers
  /// predicted_tier(); moves happen only through explicit tick() calls
  /// (deterministic benches and tests drive it that way).
  bool enabled = false;
  /// Exponential-decay half-life of access heat: a key not touched for this
  /// many seconds is worth half what it was.
  double half_life_seconds = 0.5;
  /// Hysteresis band. A (var, kind, level) group whose mean per-block heat
  /// rises above promote_threshold moves one tier up; one that falls below
  /// demote_threshold moves one tier down; in between it stays put, so an
  /// oscillating workload cannot make placement thrash. Must satisfy
  /// promote_threshold > demote_threshold.
  double promote_threshold = 4.0;
  double demote_threshold = 1.0;
  /// Wall-clock period of the background policy thread's ticks.
  double interval_seconds = 0.01;
  /// Bound on group moves per tick — caps migration churn so one tick never
  /// saturates the tiers with its own traffic.
  std::size_t max_moves_per_tick = 8;
  /// Ticks a group rests after a move before it may move again (the second
  /// half of the anti-thrash story, alongside the hysteresis band).
  std::uint32_t cooldown_ticks = 2;
  /// Fraction of the promotion target tier's capacity the advisor keeps free
  /// when promoting into it (headroom so a promotion does not immediately
  /// trip the eviction watermark). In [0, 1).
  double reserve = 0.0;
};

/// Counter snapshot of one advisor's lifetime, returned by
/// TierAdvisor::report() and Pipeline::tiering_report().
struct TieringReport {
  std::uint64_t ticks = 0;               // policy passes executed
  std::uint64_t promotions = 0;          // group moves up-tier
  std::uint64_t demotions = 0;           // group moves down-tier (cold policy)
  std::uint64_t delegated_evictions = 0; // coldest-first demotions for the
                                         // fabric's eviction providers
  std::uint64_t skipped_cooldown = 0;    // moves suppressed by cooldown_ticks
  std::uint64_t skipped_capacity = 0;    // moves abandoned for lack of room
  std::size_t groups = 0;                // registered (var, kind, level) groups
  std::size_t hot_groups = 0;            // groups above the promote band at
                                         // the last tick
};

}  // namespace canopus::tiering
