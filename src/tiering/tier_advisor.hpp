#pragma once
// Workload-adaptive auto-tiering: the policy loop that closes heat→placement.
//
// The paper argues refactored products should live where the workload needs
// them ("data placed in the storage hierarchy according to access
// patterns"), yet until this module placement was decided once, at write
// time. The TierAdvisor closes the loop, in the shape ScaleStore uses for
// its DRAM/NVMe buffer manager — a background policy thread over decayed
// access statistics:
//
//   * A HeatTracker (tiering/heat_tracker.hpp) aggregates per-chunk access
//     heat from every read the storage layer serves (ProgressiveReader
//     fetches, cache hits, fabric remote reads — all funnel through
//     StorageHierarchy's access listener) plus the QueryScheduler's intent
//     signal (recorded per admitted query, before any byte moves).
//   * register_container() groups a container's blocks by (var, kind,
//     level) — the paper's unit of progressive refinement — so policy acts
//     on whole delta levels, not individual chunks.
//   * tick() compares each group's mean per-block heat against a hysteresis
//     band: above promote_threshold the group moves one tier up (making room
//     via StorageHierarchy::make_room when needed), below demote_threshold
//     one tier down, in between it stays put. Cooldown ticks and a per-tick
//     move bound keep churn bounded; an oscillating workload inside the band
//     never moves anything (the no-thrash property tests pin).
//   * Planned moves are published to a predicted-residency map *before* they
//     execute, and every observed migration (the advisor's own, make_room
//     demotions, fabric evictions) re-stamps it — so serve::CostModel plans
//     against where blocks are going, and planned cost tracks achieved cost.
//   * attach_fabric() extends all of the above to every node of a serving
//     fabric and installs an eviction delegate: the fabric's anticipatory
//     providers then demote coldest-first instead of LRU. Heat is keyed by
//     global object names, so it survives rebalance epochs — a chunk
//     migrated to a new owner keeps its history.
//
// Every move goes through StorageHierarchy::migrate, which preserves the
// object's bytes exactly: placement changes are bitwise-invisible to query
// results, only timings move. Counters land on tiering.* (obs).
//
// Internally all mutable state lives in a shared_ptr<State> that the
// installed listeners and delegates capture, so a hook that outlives the
// advisor (e.g. one registered on a borrowed hierarchy) never dangles.

#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "storage/hierarchy.hpp"
#include "tiering/heat_tracker.hpp"
#include "tiering/tiering_config.hpp"

namespace canopus::fabric {
class Fabric;
}  // namespace canopus::fabric

namespace canopus::tiering {

class TierAdvisor {
 public:
  /// Validates `config` (promote_threshold must exceed demote_threshold,
  /// half-life and interval must be positive) and builds the tracker. The
  /// background thread is NOT started here — call start(), or let the
  /// Pipeline do it when config.enabled is set.
  explicit TierAdvisor(TieringConfig config);
  ~TierAdvisor();  // stop()s the background thread

  TierAdvisor(const TierAdvisor&) = delete;
  TierAdvisor& operator=(const TierAdvisor&) = delete;

  /// Adds a hierarchy to the advisor's purview and installs its heat/move
  /// listeners (StorageHierarchy::attach_access_listener /
  /// attach_move_listener). Idempotent per hierarchy. The hierarchy must not
  /// have other listeners attached (last attach wins), and must outlive the
  /// advisor's ticks.
  void watch(storage::StorageHierarchy& hierarchy);

  /// Extends the purview to every attached node of `fabric` (including nodes
  /// attached later), installs the per-node heat/move listeners, and
  /// replaces the fabric's LRU eviction with this advisor's coldest-first
  /// delegate. Pass nullptr to detach (clears the hooks on the previously
  /// attached fabric). The fabric must outlive the advisor's ticks.
  void attach_fabric(fabric::Fabric* fabric);

  /// Reads `path`'s metadata from the first watched hierarchy (or fabric
  /// node) that has it and registers one policy group per (var, kind, level)
  /// over the container's base/delta/data blocks. Idempotent per path.
  /// Returns false when no watched store can read the metadata.
  bool register_container(const std::string& path);

  HeatTracker& heat();
  const HeatTracker& heat() const;

  /// One policy pass over every group and every watched hierarchy; returns
  /// the number of group moves made. Deterministic drivers (benches, tests)
  /// call this directly instead of start().
  std::size_t tick();

  /// Starts/stops the background policy thread (one tick per
  /// config.interval_seconds). Idempotent.
  void start();
  void stop();

  /// The tier the advisor has planned (or last observed) for `key`, or
  /// nullopt when the key has no recorded placement decision. Published
  /// before a planned move executes, and re-stamped by every observed
  /// migration, so planners price blocks at their imminent home. The index
  /// is relative to the hierarchy that holds the key locally; callers must
  /// range-check it against their own tier stack.
  std::optional<std::size_t> predicted_tier(const std::string& key) const;

  /// Demotes the coldest objects on `tier` of `h` to lower tiers until at
  /// least `target_free_bytes` are free (or nothing more can move); returns
  /// the number of objects demoted. This is the eviction delegate
  /// attach_fabric() installs; exposed so capacity pressure anywhere can use
  /// heat-aware victim selection.
  std::size_t demote_coldest(storage::StorageHierarchy& h, std::size_t tier,
                             std::size_t target_free_bytes);

  TieringReport report() const;
  const TieringConfig& config() const;

 private:
  struct State;
  static std::size_t tick_impl(State& s);
  static std::size_t demote_coldest_impl(State& s, storage::StorageHierarchy& h,
                                         std::size_t tier,
                                         std::size_t target_free_bytes);
  static void install_listeners(const std::shared_ptr<State>& s,
                                storage::StorageHierarchy& hierarchy);
  void loop();

  std::shared_ptr<State> state_;

  // Background thread machinery (advisor-lifetime, not shared with hooks).
  std::mutex thread_mu_;
  std::condition_variable thread_cv_;
  std::thread thread_;
  bool running_ = false;
  bool stop_requested_ = false;
};

}  // namespace canopus::tiering
