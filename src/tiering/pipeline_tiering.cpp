// Pipeline facade members that touch tiering::TierAdvisor. Defined here (not
// in core) so core never references tiering symbols — the same split as
// pipeline_serve.cpp and pipeline_fabric.cpp.

#include "core/pipeline.hpp"
#include "tiering/tier_advisor.hpp"

namespace canopus {

tiering::TierAdvisor& Pipeline::tier_advisor() {
  std::call_once(advisor_once_, [this] {
    auto advisor = std::make_shared<tiering::TierAdvisor>(
        options_.tiering.value_or(tiering::TieringConfig{}));
    advisor->watch(*hierarchy_);

    std::scoped_lock lock(fabric_mu_);
    if (fabric_ != nullptr) advisor->attach_fabric(fabric_);
    tiering::TierAdvisor* raw = advisor.get();
    // Compose with (not replace) the scheduler's fabric hook so a later
    // attach_fabric() reaches both consumers.
    auto previous = std::move(on_fabric_change_);
    on_fabric_change_ = [raw, previous = std::move(previous)](
                            fabric::Fabric* fabric) {
      if (previous) previous(fabric);
      raw->attach_fabric(fabric);
    };
    advisor_raw_ = raw;
    // Tell the scheduler (if it exists already) about its new
    // predicted-residency source.
    if (on_advisor_change_) on_advisor_change_(raw);
    if (advisor->config().enabled) advisor->start();
    advisor_ = std::move(advisor);
  });
  return *advisor_;
}

tiering::TieringReport Pipeline::tiering_report() {
  return tier_advisor().report();
}

}  // namespace canopus
