#include "tiering/tier_advisor.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <map>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "adios/bp.hpp"
#include "fabric/fabric.hpp"
#include "obs/metrics.hpp"
#include "util/assert.hpp"

namespace canopus::tiering {

namespace {

void count_tiering(const char* name, std::uint64_t n) {
  if (n == 0 || !obs::enabled()) return;
  obs::MetricsRegistry::global().counter(std::string("tiering.") + name).add(n);
}

}  // namespace

// All mutable advisor state. Listeners and the fabric eviction delegate
// capture the shared_ptr, never the advisor, so a hook left on a borrowed
// hierarchy or fabric cannot dangle after the advisor is destroyed.
//
// Lock order (acyclic): mu → hierarchy mutex → {tracker shard mu, pred_mu}.
// The listeners fire under a hierarchy mutex and take only leaf locks.
struct TierAdvisor::State {
  explicit State(TieringConfig c)
      : config(c), tracker(c.half_life_seconds) {}

  const TieringConfig config;
  HeatTracker tracker;

  // One policy unit: every block of one (path, var, kind, level) — the
  // paper's unit of progressive refinement. Policy moves whole groups.
  struct Member {
    std::string key;
    std::size_t bytes = 0;
  };
  struct Group {
    std::string path;
    std::string var;
    adios::BlockKind kind = adios::BlockKind::kData;
    std::uint32_t level = 0;
    std::vector<Member> members;
    std::uint64_t last_move_tick = 0;
    bool moved_before = false;
  };

  mutable std::mutex mu;  // guards groups/watched/fabric/tick bookkeeping
  std::vector<Group> groups;
  std::unordered_set<std::string> registered_paths;
  std::vector<storage::StorageHierarchy*> watched;
  fabric::Fabric* fabric = nullptr;
  std::uint64_t tick_count = 0;
  std::size_t groups_count = 0;
  std::size_t hot_groups = 0;

  // Predicted residency: published before a planned move executes and
  // re-stamped by every observed migration (leaf lock, see header).
  mutable std::mutex pred_mu;
  std::unordered_map<std::string, std::size_t> predicted;

  std::atomic<std::uint64_t> promotions{0};
  std::atomic<std::uint64_t> demotions{0};
  std::atomic<std::uint64_t> delegated_evictions{0};
  std::atomic<std::uint64_t> skipped_cooldown{0};
  std::atomic<std::uint64_t> skipped_capacity{0};

  /// Every hierarchy currently in the purview: standalone watched ones plus
  /// the fabric's live (attached, alive) nodes. Caller holds `mu`.
  std::vector<storage::StorageHierarchy*> targets() const {
    std::vector<storage::StorageHierarchy*> out = watched;
    if (fabric != nullptr) {
      for (std::size_t i = 0; i < fabric->node_count(); ++i) {
        if (fabric->attached(i) && fabric->alive(i)) {
          out.push_back(&fabric->node(i));
        }
      }
    }
    return out;
  }
};

TierAdvisor::TierAdvisor(TieringConfig config) {
  CANOPUS_CHECK(std::isfinite(config.half_life_seconds) &&
                    config.half_life_seconds > 0.0,
                "tier advisor: half_life_seconds must be finite and > 0");
  CANOPUS_CHECK(std::isfinite(config.interval_seconds) &&
                    config.interval_seconds > 0.0,
                "tier advisor: interval_seconds must be finite and > 0");
  CANOPUS_CHECK(config.promote_threshold > config.demote_threshold,
                "tier advisor: promote_threshold must be > demote_threshold "
                "(inverted hysteresis band)");
  CANOPUS_CHECK(config.max_moves_per_tick >= 1,
                "tier advisor: max_moves_per_tick must be >= 1");
  CANOPUS_CHECK(config.reserve >= 0.0 && config.reserve < 1.0,
                "tier advisor: reserve must be in [0, 1)");
  state_ = std::make_shared<State>(config);
}

TierAdvisor::~TierAdvisor() { stop(); }

void TierAdvisor::install_listeners(const std::shared_ptr<State>& s,
                                    storage::StorageHierarchy& hierarchy) {
  hierarchy.attach_access_listener(
      [s](const std::string& key, std::size_t bytes) {
        (void)bytes;
        s->tracker.record(key, 1.0);
      });
  hierarchy.attach_move_listener(
      [s](const std::string& key, std::size_t from_tier, std::size_t to_tier) {
        (void)from_tier;
        std::scoped_lock lock(s->pred_mu);
        s->predicted[key] = to_tier;
      });
}

void TierAdvisor::watch(storage::StorageHierarchy& hierarchy) {
  {
    std::scoped_lock lock(state_->mu);
    for (storage::StorageHierarchy* h : state_->watched) {
      if (h == &hierarchy) return;
    }
    state_->watched.push_back(&hierarchy);
  }
  install_listeners(state_, hierarchy);
}

void TierAdvisor::attach_fabric(fabric::Fabric* fabric) {
  const std::shared_ptr<State> s = state_;
  fabric::Fabric* previous = nullptr;
  {
    std::scoped_lock lock(s->mu);
    previous = s->fabric;
    if (previous == fabric) return;
    s->fabric = fabric;
  }
  if (previous != nullptr) {
    previous->set_eviction_delegate({});
    previous->set_node_access_listener({});
    previous->set_node_move_listener({});
  }
  if (fabric == nullptr) return;
  // The fabric applies these to every current node and to nodes attached
  // later, so heat keeps flowing across rebalance epochs.
  fabric->set_node_access_listener(
      [s](const std::string& key, std::size_t bytes) {
        (void)bytes;
        s->tracker.record(key, 1.0);
      });
  fabric->set_node_move_listener(
      [s](const std::string& key, std::size_t from_tier, std::size_t to_tier) {
        (void)from_tier;
        std::scoped_lock lock(s->pred_mu);
        s->predicted[key] = to_tier;
      });
  fabric->set_eviction_delegate([s](std::size_t node_index,
                                    storage::StorageHierarchy& h,
                                    std::size_t target_free_bytes) {
    (void)node_index;
    const std::size_t demoted = demote_coldest_impl(*s, h, 0,
                                                    target_free_bytes);
    s->delegated_evictions.fetch_add(demoted, std::memory_order_relaxed);
    count_tiering("delegated_evictions", demoted);
    return demoted;
  });
}

bool TierAdvisor::register_container(const std::string& path) {
  State& s = *state_;
  std::scoped_lock lock(s.mu);
  if (s.registered_paths.count(path) != 0) return true;
  for (storage::StorageHierarchy* h : s.targets()) {
    std::vector<State::Group> groups;
    try {
      const adios::BpReader reader(*h, path);
      // Keyed (var, kind, level) so iteration — and therefore policy order —
      // is deterministic regardless of metadata layout.
      std::map<std::tuple<std::string, int, std::uint32_t>, State::Group>
          by_unit;
      for (const std::string& var : reader.variables()) {
        const adios::VarInfo info = reader.inq_var(var);
        for (const adios::BlockRecord& b : info.blocks) {
          if (b.kind != adios::BlockKind::kBase &&
              b.kind != adios::BlockKind::kDelta &&
              b.kind != adios::BlockKind::kData) {
            continue;  // geometry/index blocks are replicated, not tiered
          }
          State::Group& g =
              by_unit[{var, static_cast<int>(b.kind), b.level}];
          if (g.members.empty()) {
            g.path = path;
            g.var = var;
            g.kind = b.kind;
            g.level = b.level;
          }
          g.members.push_back(
              {b.object_key, static_cast<std::size_t>(b.stored_bytes)});
        }
      }
      for (auto& [unit, group] : by_unit) groups.push_back(std::move(group));
    } catch (const Error&) {
      continue;  // this store lacks the metadata; try the next one
    }
    if (groups.empty()) continue;
    for (State::Group& g : groups) s.groups.push_back(std::move(g));
    s.registered_paths.insert(path);
    s.groups_count = s.groups.size();
    return true;
  }
  return false;
}

HeatTracker& TierAdvisor::heat() { return state_->tracker; }
const HeatTracker& TierAdvisor::heat() const { return state_->tracker; }

std::optional<std::size_t> TierAdvisor::predicted_tier(
    const std::string& key) const {
  std::scoped_lock lock(state_->pred_mu);
  const auto it = state_->predicted.find(key);
  if (it == state_->predicted.end()) return std::nullopt;
  return it->second;
}

std::size_t TierAdvisor::tick() { return tick_impl(*state_); }

std::size_t TierAdvisor::tick_impl(State& s) {
  std::scoped_lock lock(s.mu);
  ++s.tick_count;
  const double now = s.tracker.now();
  const std::vector<storage::StorageHierarchy*> targets = s.targets();
  std::size_t moves = 0;
  std::size_t hot = 0;
  std::uint64_t promoted = 0;
  std::uint64_t demoted = 0;
  std::uint64_t skipped_cool = 0;
  std::uint64_t skipped_cap = 0;

  for (State::Group& g : s.groups) {
    if (g.members.empty()) continue;
    if (moves >= s.config.max_moves_per_tick) break;

    double sum = 0.0;
    for (const State::Member& m : g.members) {
      sum += s.tracker.heat(m.key, now);
    }
    const double mean = sum / static_cast<double>(g.members.size());
    const bool want_up = mean >= s.config.promote_threshold;
    const bool want_down = mean <= s.config.demote_threshold;
    if (want_up) ++hot;
    if (!want_up && !want_down) continue;  // inside the hysteresis band

    if (g.moved_before &&
        s.tick_count - g.last_move_tick <= s.config.cooldown_ticks) {
      ++skipped_cool;
      continue;
    }

    bool moved_group = false;
    for (storage::StorageHierarchy* h : targets) {
      if (moves >= s.config.max_moves_per_tick) break;
      // This hierarchy's slice of the group, at live residency.
      std::vector<std::pair<const State::Member*, std::size_t>> local;
      std::size_t cur = 0;
      for (const State::Member& m : g.members) {
        if (const std::optional<std::size_t> t = h->find(m.key)) {
          local.emplace_back(&m, *t);
          cur = std::max(cur, *t);
        }
      }
      if (local.empty()) continue;

      if (want_up) {
        if (cur == 0) continue;  // already on the fastest tier here
        const std::size_t target = cur - 1;
        std::size_t needed = 0;
        for (const auto& [m, t] : local) {
          if (t > target) needed += m->bytes;
        }
        if (needed == 0) continue;
        const auto [used, capacity] = h->tier_usage(target);
        const auto headroom =
            static_cast<std::size_t>(s.config.reserve *
                                     static_cast<double>(capacity));
        try {
          const std::size_t free = capacity > used ? capacity - used : 0;
          if (free < needed + headroom) h->make_room(target, needed + headroom);
          // Publish the plan before executing it: a planner consulting
          // predicted_tier() concurrently prices the group at its imminent
          // home, which is what makes planned cost track achieved cost.
          {
            std::scoped_lock plock(s.pred_mu);
            for (const auto& [m, t] : local) {
              if (t > target) s.predicted[m->key] = target;
            }
          }
          for (const auto& [m, t] : local) {
            if (t > target) h->migrate(m->key, target);
          }
          ++promoted;
          ++moves;
          moved_group = true;
        } catch (const storage::CapacityError&) {
          ++skipped_cap;
          // Roll the plan back to actual residency.
          std::scoped_lock plock(s.pred_mu);
          for (const auto& [m, t] : local) {
            if (const std::optional<std::size_t> a = h->find(m->key)) {
              s.predicted[m->key] = *a;
            }
          }
        }
      } else {  // want_down
        if (cur + 1 >= h->tier_count()) continue;  // already at the bottom
        const std::size_t target = cur + 1;
        bool any = false;
        for (const auto& [m, t] : local) {
          if (t >= target) continue;
          try {
            h->migrate(m->key, target);
            any = true;
          } catch (const Error&) {
            ++skipped_cap;  // no room below (or the key raced away)
          }
        }
        if (any) {
          ++demoted;
          ++moves;
          moved_group = true;
        }
      }
    }
    if (moved_group) {
      g.last_move_tick = s.tick_count;
      g.moved_before = true;
    }
  }

  s.hot_groups = hot;
  s.groups_count = s.groups.size();
  s.promotions.fetch_add(promoted, std::memory_order_relaxed);
  s.demotions.fetch_add(demoted, std::memory_order_relaxed);
  s.skipped_cooldown.fetch_add(skipped_cool, std::memory_order_relaxed);
  s.skipped_capacity.fetch_add(skipped_cap, std::memory_order_relaxed);
  count_tiering("promotions", promoted);
  count_tiering("demotions", demoted);
  count_tiering("skipped_cooldown", skipped_cool);
  count_tiering("skipped_capacity", skipped_cap);
  if (obs::enabled()) {
    auto& reg = obs::MetricsRegistry::global();
    reg.gauge("tiering.groups").set(static_cast<std::int64_t>(s.groups_count));
    reg.gauge("tiering.hot_groups").set(static_cast<std::int64_t>(hot));
  }
  return moves;
}

std::size_t TierAdvisor::demote_coldest(storage::StorageHierarchy& h,
                                        std::size_t tier,
                                        std::size_t target_free_bytes) {
  const std::size_t demoted = demote_coldest_impl(*state_, h, tier,
                                                  target_free_bytes);
  state_->delegated_evictions.fetch_add(demoted, std::memory_order_relaxed);
  count_tiering("delegated_evictions", demoted);
  return demoted;
}

std::size_t TierAdvisor::demote_coldest_impl(State& s,
                                             storage::StorageHierarchy& h,
                                             std::size_t tier,
                                             std::size_t target_free_bytes) {
  if (tier + 1 >= h.tier_count()) return 0;
  // Deliberately no s.mu here: this runs on the fabric's provider threads
  // while tick() may hold s.mu and a hierarchy mutex — taking s.mu would
  // invert the order. Everything below uses the hierarchy's own locked
  // primitives; a key that races away mid-pass just fails its migrate.
  std::vector<std::pair<double, std::string>> victims;
  {
    const double now = s.tracker.now();
    for (std::string& key : h.keys_on_tier(tier)) {
      victims.emplace_back(s.tracker.heat(key, now), std::move(key));
    }
  }
  // Coldest first; ties broken by key so victim order is deterministic.
  std::sort(victims.begin(), victims.end());
  std::size_t demoted = 0;
  for (const auto& [heat, key] : victims) {
    const auto [used, capacity] = h.tier_usage(tier);
    if (capacity - std::min(used, capacity) >= target_free_bytes) break;
    for (std::size_t lower = tier + 1; lower < h.tier_count(); ++lower) {
      try {
        h.migrate(key, lower);
        ++demoted;
        break;
      } catch (const Error&) {
        // no room on this tier / key moved or vanished — try the next one
      }
    }
  }
  return demoted;
}

void TierAdvisor::start() {
  std::scoped_lock lock(thread_mu_);
  if (running_) return;
  stop_requested_ = false;
  running_ = true;
  thread_ = std::thread([this] { loop(); });
}

void TierAdvisor::stop() {
  {
    std::scoped_lock lock(thread_mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  thread_cv_.notify_all();
  thread_.join();
  std::scoped_lock lock(thread_mu_);
  running_ = false;
}

void TierAdvisor::loop() {
  const auto interval = std::chrono::duration<double>(
      state_->config.interval_seconds);
  std::unique_lock lock(thread_mu_);
  for (;;) {
    thread_cv_.wait_for(lock, interval, [this] { return stop_requested_; });
    if (stop_requested_) return;
    lock.unlock();
    tick();
    lock.lock();
  }
}

TieringReport TierAdvisor::report() const {
  const State& s = *state_;
  TieringReport out;
  out.promotions = s.promotions.load(std::memory_order_relaxed);
  out.demotions = s.demotions.load(std::memory_order_relaxed);
  out.delegated_evictions =
      s.delegated_evictions.load(std::memory_order_relaxed);
  out.skipped_cooldown = s.skipped_cooldown.load(std::memory_order_relaxed);
  out.skipped_capacity = s.skipped_capacity.load(std::memory_order_relaxed);
  std::scoped_lock lock(s.mu);
  out.ticks = s.tick_count;
  out.groups = s.groups_count;
  out.hot_groups = s.hot_groups;
  return out;
}

const TieringConfig& TierAdvisor::config() const { return state_->config; }

}  // namespace canopus::tiering
