#include "obs/observability.hpp"

#include <mutex>
#include <ostream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace canopus::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}

namespace {
std::mutex g_options_mu;
ObservabilityOptions g_options;
}  // namespace

void install(const ObservabilityOptions& options) {
  {
    std::lock_guard lock(g_options_mu);
    g_options = options;
  }
  MetricsRegistry::global().set_default_histogram_buckets(
      options.histogram_buckets);
  if (options.enabled) {
    // Fresh run: recorded data from before this install would pollute the
    // exported trace and the summary tables.
    TraceRecorder::global().clear();
    MetricsRegistry::global().reset();
  }
  detail::g_enabled.store(options.enabled, std::memory_order_relaxed);
}

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

const ObservabilityOptions& options() {
  // Returned by reference for cheap read access; installs happen at run
  // setup, not concurrently with readers.
  return g_options;
}

std::string flush() {
  std::string path;
  {
    std::lock_guard lock(g_options_mu);
    path = g_options.trace_path;
  }
  if (path.empty()) return "";
  TraceRecorder::global().save_chrome_trace(path);
  return path;
}

void write_summary(std::ostream& os) {
  TraceRecorder::global().print_summary(os);
  MetricsRegistry::global().print_summary(os);
}

}  // namespace canopus::obs
