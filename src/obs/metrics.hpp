#pragma once
// Lock-cheap metrics: counters, gauges, and fixed-log2-bucket histograms.
//
// Every metric is sharded: a hot-path update hashes the calling thread onto
// one of kMetricShards cacheline-aligned slots and performs a relaxed atomic
// add there — no lock, no false sharing, no cross-thread contention until
// snapshot() aggregates the shards. Metric objects are created on first use
// under the registry mutex and never move or die afterwards, so call sites
// may cache the returned reference (typically in a function-local static).
//
// All updates are no-ops while obs::enabled() is false, so instrumented code
// pays one relaxed load per site in the disabled configuration.

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/observability.hpp"

namespace canopus::obs {

inline constexpr std::size_t kMetricShards = 16;
inline constexpr std::size_t kMaxHistogramBuckets = 64;

namespace detail {
/// Stable per-thread shard slot in [0, kMetricShards).
std::size_t shard_index();
}  // namespace detail

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (!enabled()) return;
    shards_[detail::shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const;
  void reset();

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Shard, kMetricShards> shards_{};
};

/// Last-writer-wins instantaneous value (queue depths, active workers).
class Gauge {
 public:
  void set(std::int64_t v) {
    if (!enabled()) return;
    v_.store(v, std::memory_order_relaxed);
    max_.fetch_max(v);
  }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  std::int64_t max_value() const { return max_.value(); }
  void reset();

 private:
  /// fetch_max via CAS (std::atomic has no fetch_max for signed types
  /// pre-C++26).
  struct AtomicMax {
    std::atomic<std::int64_t> v{0};
    void fetch_max(std::int64_t x) {
      std::int64_t cur = v.load(std::memory_order_relaxed);
      while (x > cur &&
             !v.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
      }
    }
    std::int64_t value() const { return v.load(std::memory_order_relaxed); }
  };
  std::atomic<std::int64_t> v_{0};
  AtomicMax max_;
};

/// Distribution with fixed log2 buckets: bucket 0 counts values < 1 (and
/// anything non-finite or negative), bucket i >= 1 counts [2^(i-1), 2^i),
/// the last bucket is unbounded above. The unit is the caller's choice
/// (microseconds for latencies, bytes for sizes); log2 keeps the bucket
/// count small across six decades either way.
class Histogram {
 public:
  /// `buckets` is clamped to [2, kMaxHistogramBuckets].
  explicit Histogram(std::size_t buckets);

  void observe(double value);

  /// Bucket that `value` lands in for a `buckets`-bucket histogram.
  static std::size_t bucket_index(double value, std::size_t buckets);
  /// Inclusive lower bound of bucket `index` (0, 1, 2, 4, 8, ...).
  static double bucket_lower_bound(std::size_t index);

  std::size_t bucket_count() const { return buckets_; }
  std::uint64_t count() const;
  double sum() const;
  /// Aggregated per-bucket counts (size bucket_count()).
  std::vector<std::uint64_t> bucket_counts() const;
  /// Quantile estimate (q in [0, 1]) from the aggregated buckets: the lower
  /// bound of the bucket holding the q-th sample. Returns 0 when empty.
  double quantile(double q) const;
  void reset();

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kMaxHistogramBuckets> buckets{};
    std::atomic<double> sum{0.0};
  };
  std::size_t buckets_;
  std::array<Shard, kMetricShards> shards_{};
};

/// Point-in-time aggregated view of every registered metric.
struct MetricsSnapshot {
  struct Entry {
    enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
    std::string name;
    Kind kind = Kind::kCounter;
    std::uint64_t count = 0;  // counter value / histogram sample count
    std::int64_t gauge = 0;   // gauge last value
    std::int64_t gauge_max = 0;
    double sum = 0.0;         // histogram sum of observed values
    double p50 = 0.0, p99 = 0.0;
    std::vector<std::uint64_t> buckets;
  };
  std::vector<Entry> entries;  // sorted by name

  const Entry* find(const std::string& name) const;
};

/// Process-wide named-metric registry. Lookup takes a mutex (cache the
/// returned reference at hot call sites); updates through the returned
/// handles are lock-free.
class MetricsRegistry {
 public:
  /// The shared registry. Intentionally leaked so worker threads may still
  /// record during static destruction.
  static MetricsRegistry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Bucket count for histograms created after this call (existing ones keep
  /// theirs). Clamped to [2, kMaxHistogramBuckets].
  void set_default_histogram_buckets(std::size_t buckets);
  std::size_t default_histogram_buckets() const;

  MetricsSnapshot snapshot() const;
  /// Zeroes every metric; handles stay valid.
  void reset();
  /// Aligned table of every non-zero metric.
  void print_summary(std::ostream& os) const;

 private:
  mutable std::mutex mu_;
  std::size_t default_buckets_ = kMaxHistogramBuckets;
  // node-based maps: element addresses are stable across inserts.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace canopus::obs
