#pragma once
// Tracing: nested wall-clock spans with thread attribution.
//
//   CANOPUS_SPAN("decimate.level", {{"level", l}});
//
// opens an RAII span that records name, start, duration, thread id, and
// nesting depth when it closes. Spans are buffered per thread (each thread's
// buffer has its own uncontended mutex, so recording never serializes
// threads against each other) and aggregated only on export. Two exports:
//
//   * Chrome trace_event JSON ("ph":"X" complete events with ts/dur/tid) —
//     load in about://tracing or https://ui.perfetto.dev to see the stage
//     pipeline, read-ahead overlap, and per-worker occupancy on a timeline.
//   * A plaintext summary table: per span name, call count and total/mean
//     milliseconds — the per-stage breakdown the paper's figures report.
//
// Recording is wall-clock only: it never touches the simulated storage
// clock, the fault injector's RNG, or task ordering, so enabling tracing
// preserves bitwise determinism of every data product.

#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <type_traits>
#include <vector>

#include "obs/observability.hpp"

namespace canopus::obs {

/// One span argument, stringified eagerly (span sites are per level/chunk,
/// never per element, so the cost is negligible).
struct SpanArg {
  std::string key;
  std::string value;

  SpanArg(std::string k, std::string v)
      : key(std::move(k)), value(std::move(v)) {}
  SpanArg(std::string k, const char* v) : key(std::move(k)), value(v) {}
  template <typename T,
            typename = std::enable_if_t<std::is_arithmetic_v<T>>>
  SpanArg(std::string k, T v) : key(std::move(k)), value(std::to_string(v)) {}
};

/// One closed span.
struct TraceEvent {
  std::string name;
  double ts_us = 0.0;   // start, microseconds since the recorder epoch
  double dur_us = 0.0;  // duration, microseconds
  std::uint32_t tid = 0;
  std::uint32_t depth = 0;  // nesting depth on its thread (0 = outermost)
  std::vector<SpanArg> args;
};

class TraceRecorder {
 public:
  /// The shared recorder. Intentionally leaked so pool workers may still
  /// close spans during static destruction.
  static TraceRecorder& global();

  /// RAII span; records into the global recorder iff obs::enabled() was true
  /// at open. Use the CANOPUS_SPAN macro rather than naming this directly.
  class Span {
   public:
    explicit Span(std::string name, std::initializer_list<SpanArg> args = {});
    ~Span();
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

   private:
    bool active_ = false;
    double start_us_ = 0.0;
    std::string name_;
    std::vector<SpanArg> args_;
  };

  /// Drops all recorded events and restarts the timestamp epoch. Thread
  /// buffers stay registered.
  void clear();

  /// Aggregated copy of every recorded event, sorted by start time.
  std::vector<TraceEvent> events() const;

  /// Number of threads that have recorded at least one span.
  std::size_t thread_count() const;

  /// Chrome trace_event JSON (the "traceEvents" object form).
  void write_chrome_trace(std::ostream& os) const;
  std::string chrome_trace_json() const;
  /// Writes the Chrome trace to `path`; throws std::runtime_error on I/O
  /// failure.
  void save_chrome_trace(const std::string& path) const;

  /// Per-span-name count/total/mean/max table, sorted by name.
  void print_summary(std::ostream& os) const;

 private:
  struct ThreadLog;
  TraceRecorder();
  ThreadLog& local();
  double now_us() const;
  void record(TraceEvent event);

  mutable std::mutex mu_;                         // guards logs_ and epoch_
  std::vector<std::unique_ptr<ThreadLog>> logs_;  // one per recording thread
  std::int64_t epoch_ns_ = 0;
};

}  // namespace canopus::obs

// CANOPUS_SPAN(name [, {{"key", value}, ...}]): open a span covering the rest
// of the enclosing scope. Variadic so brace-enclosed argument lists (which
// contain commas) pass through unmangled.
#define CANOPUS_SPAN_CONCAT2(a, b) a##b
#define CANOPUS_SPAN_CONCAT(a, b) CANOPUS_SPAN_CONCAT2(a, b)
#define CANOPUS_SPAN(...)                                      \
  ::canopus::obs::TraceRecorder::Span CANOPUS_SPAN_CONCAT(     \
      canopus_span_, __COUNTER__) {                            \
    __VA_ARGS__                                                \
  }
