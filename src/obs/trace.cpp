#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace canopus::obs {

namespace {

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
void append_json_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string format_number(double v) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3) << v;
  return os.str();
}

}  // namespace

/// Per-thread event buffer. The mutex is uncontended on the hot path (only
/// its owner thread records into it); exports take it briefly per log.
struct TraceRecorder::ThreadLog {
  std::uint32_t tid = 0;
  std::uint32_t depth = 0;  // only touched by the owner thread
  std::mutex mu;
  std::vector<TraceEvent> events;
};

TraceRecorder::TraceRecorder() : epoch_ns_(steady_now_ns()) {}

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder* recorder = new TraceRecorder();  // leaked: see hpp
  return *recorder;
}

TraceRecorder::ThreadLog& TraceRecorder::local() {
  // One registered log per thread, owned by the recorder so events survive
  // thread exit; the thread_local caches the lookup.
  static thread_local ThreadLog* log = [this] {
    std::lock_guard lock(mu_);
    logs_.push_back(std::make_unique<ThreadLog>());
    logs_.back()->tid = static_cast<std::uint32_t>(logs_.size());
    return logs_.back().get();
  }();
  return *log;
}

double TraceRecorder::now_us() const {
  return static_cast<double>(steady_now_ns() - epoch_ns_) * 1e-3;
}

void TraceRecorder::record(TraceEvent event) {
  auto& log = local();
  event.tid = log.tid;
  std::lock_guard lock(log.mu);
  log.events.push_back(std::move(event));
}

void TraceRecorder::clear() {
  std::lock_guard lock(mu_);
  for (auto& log : logs_) {
    std::lock_guard log_lock(log->mu);
    log->events.clear();
  }
  epoch_ns_ = steady_now_ns();
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard lock(mu_);
    for (const auto& log : logs_) {
      std::lock_guard log_lock(log->mu);
      out.insert(out.end(), log->events.begin(), log->events.end());
    }
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.ts_us < b.ts_us;
  });
  return out;
}

std::size_t TraceRecorder::thread_count() const {
  std::lock_guard lock(mu_);
  std::size_t n = 0;
  for (const auto& log : logs_) {
    std::lock_guard log_lock(log->mu);
    if (!log->events.empty()) ++n;
  }
  return n;
}

void TraceRecorder::write_chrome_trace(std::ostream& os) const {
  os << chrome_trace_json();
}

std::string TraceRecorder::chrome_trace_json() const {
  const auto evts = events();
  std::string out;
  out.reserve(evts.size() * 128 + 64);
  out += "{\"traceEvents\":[";
  bool first = true;
  for (const auto& e : evts) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\":\"";
    append_json_escaped(out, e.name);
    out += "\",\"cat\":\"canopus\",\"ph\":\"X\",\"ts\":";
    out += format_number(e.ts_us);
    out += ",\"dur\":";
    out += format_number(e.dur_us);
    out += ",\"pid\":1,\"tid\":";
    out += std::to_string(e.tid);
    out += ",\"args\":{";
    bool first_arg = true;
    for (const auto& a : e.args) {
      if (!first_arg) out += ",";
      first_arg = false;
      out += "\"";
      append_json_escaped(out, a.key);
      out += "\":\"";
      append_json_escaped(out, a.value);
      out += "\"";
    }
    out += "}}";
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

void TraceRecorder::save_chrome_trace(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f.good()) throw std::runtime_error("cannot open trace sink: " + path);
  f << chrome_trace_json();
  if (!f.good()) throw std::runtime_error("trace write failed: " + path);
}

void TraceRecorder::print_summary(std::ostream& os) const {
  struct Agg {
    std::uint64_t count = 0;
    double total_us = 0.0;
    double max_us = 0.0;
  };
  std::map<std::string, Agg> by_name;  // sorted output for free
  for (const auto& e : events()) {
    auto& a = by_name[e.name];
    ++a.count;
    a.total_us += e.dur_us;
    a.max_us = std::max(a.max_us, e.dur_us);
  }
  os << "-- trace spans " << std::string(43, '-') << '\n';
  if (by_name.empty()) {
    os << "  (no spans recorded)\n";
    return;
  }
  os << "  " << std::left << std::setw(28) << "span" << std::right
     << std::setw(8) << "count" << std::setw(12) << "total(ms)" << std::setw(11)
     << "mean(ms)" << std::setw(11) << "max(ms)" << '\n';
  for (const auto& [name, a] : by_name) {
    os << "  " << std::left << std::setw(28) << name << std::right
       << std::setw(8) << a.count << std::setw(12) << std::fixed
       << std::setprecision(3) << a.total_us * 1e-3 << std::setw(11)
       << (a.total_us * 1e-3 / static_cast<double>(a.count)) << std::setw(11)
       << a.max_us * 1e-3 << std::defaultfloat << '\n';
  }
}

// ------------------------------------------------------------------- Span --

TraceRecorder::Span::Span(std::string name,
                          std::initializer_list<SpanArg> args) {
  if (!enabled()) return;
  active_ = true;
  name_ = std::move(name);
  args_.assign(args.begin(), args.end());
  auto& recorder = global();
  ++recorder.local().depth;
  start_us_ = recorder.now_us();
}

TraceRecorder::Span::~Span() {
  if (!active_) return;
  auto& recorder = global();
  auto& log = recorder.local();
  TraceEvent e;
  e.name = std::move(name_);
  e.ts_us = start_us_;
  e.dur_us = recorder.now_us() - start_us_;
  e.depth = --log.depth;
  e.args = std::move(args_);
  recorder.record(std::move(e));
}

}  // namespace canopus::obs
