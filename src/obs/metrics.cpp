#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <iomanip>
#include <ostream>
#include <thread>

namespace canopus::obs {

namespace detail {

std::size_t shard_index() {
  // Hash of the thread id, computed once per thread. thread_local keeps it a
  // plain load on every metric update.
  static thread_local const std::size_t slot =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kMetricShards;
  return slot;
}

}  // namespace detail

// ---------------------------------------------------------------- Counter --

std::uint64_t Counter::value() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
  return total;
}

void Counter::reset() {
  for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
}

// ------------------------------------------------------------------ Gauge --

void Gauge::reset() {
  v_.store(0, std::memory_order_relaxed);
  max_.v.store(0, std::memory_order_relaxed);
}

// -------------------------------------------------------------- Histogram --

namespace {
std::size_t clamp_buckets(std::size_t buckets) {
  return std::clamp<std::size_t>(buckets, 2, kMaxHistogramBuckets);
}
}  // namespace

Histogram::Histogram(std::size_t buckets) : buckets_(clamp_buckets(buckets)) {}

std::size_t Histogram::bucket_index(double value, std::size_t buckets) {
  buckets = clamp_buckets(buckets);
  if (!(value >= 1.0)) return 0;  // also catches NaN and negatives
  // floor(log2(value)) via frexp: value in [2^(e-1), 2^e) => exponent e.
  int exp = 0;
  std::frexp(value, &exp);  // value = m * 2^exp with m in [0.5, 1)
  const std::size_t idx = static_cast<std::size_t>(exp);  // exp >= 1 here
  return std::min(idx, buckets - 1);
}

double Histogram::bucket_lower_bound(std::size_t index) {
  if (index == 0) return 0.0;
  return std::ldexp(1.0, static_cast<int>(index) - 1);  // 2^(index-1)
}

void Histogram::observe(double value) {
  if (!enabled()) return;
  auto& shard = shards_[detail::shard_index()];
  shard.buckets[bucket_index(value, buckets_)].fetch_add(
      1, std::memory_order_relaxed);
  // atomic<double> has no fetch_add pre-C++20 on all targets; CAS loop.
  double cur = shard.sum.load(std::memory_order_relaxed);
  while (!shard.sum.compare_exchange_weak(cur, cur + value,
                                          std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) {
    for (std::size_t b = 0; b < buckets_; ++b) {
      total += s.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return total;
}

double Histogram::sum() const {
  double total = 0.0;
  for (const auto& s : shards_) total += s.sum.load(std::memory_order_relaxed);
  return total;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(buckets_, 0);
  for (const auto& s : shards_) {
    for (std::size_t b = 0; b < buckets_; ++b) {
      out[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return out;
}

double Histogram::quantile(double q) const {
  const auto counts = bucket_counts();
  std::uint64_t total = 0;
  for (const auto c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(total - 1));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    seen += counts[b];
    if (seen > rank) return bucket_lower_bound(b);
  }
  return bucket_lower_bound(counts.size() - 1);
}

void Histogram::reset() {
  for (auto& s : shards_) {
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    s.sum.store(0.0, std::memory_order_relaxed);
  }
}

// ----------------------------------------------------------- Snapshot ------

const MetricsSnapshot::Entry* MetricsSnapshot::find(
    const std::string& name) const {
  for (const auto& e : entries) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

// ----------------------------------------------------------- Registry ------

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leaked: see hpp
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(default_buckets_);
  return *slot;
}

void MetricsRegistry::set_default_histogram_buckets(std::size_t buckets) {
  std::lock_guard lock(mu_);
  default_buckets_ = clamp_buckets(buckets);
}

std::size_t MetricsRegistry::default_histogram_buckets() const {
  std::lock_guard lock(mu_);
  return default_buckets_;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) {
    MetricsSnapshot::Entry e;
    e.name = name;
    e.kind = MetricsSnapshot::Entry::Kind::kCounter;
    e.count = c->value();
    snap.entries.push_back(std::move(e));
  }
  for (const auto& [name, g] : gauges_) {
    MetricsSnapshot::Entry e;
    e.name = name;
    e.kind = MetricsSnapshot::Entry::Kind::kGauge;
    e.gauge = g->value();
    e.gauge_max = g->max_value();
    snap.entries.push_back(std::move(e));
  }
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::Entry e;
    e.name = name;
    e.kind = MetricsSnapshot::Entry::Kind::kHistogram;
    e.count = h->count();
    e.sum = h->sum();
    e.p50 = h->quantile(0.5);
    e.p99 = h->quantile(0.99);
    e.buckets = h->bucket_counts();
    snap.entries.push_back(std::move(e));
  }
  std::sort(snap.entries.begin(), snap.entries.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

void MetricsRegistry::print_summary(std::ostream& os) const {
  const auto snap = snapshot();
  os << "-- metrics " << std::string(47, '-') << '\n';
  bool any = false;
  for (const auto& e : snap.entries) {
    using Kind = MetricsSnapshot::Entry::Kind;
    switch (e.kind) {
      case Kind::kCounter:
        if (e.count == 0) continue;
        os << "  " << std::left << std::setw(36) << e.name << ' ' << e.count
           << '\n';
        break;
      case Kind::kGauge:
        if (e.gauge == 0 && e.gauge_max == 0) continue;
        os << "  " << std::left << std::setw(36) << e.name << ' ' << e.gauge
           << " (max " << e.gauge_max << ")\n";
        break;
      case Kind::kHistogram:
        if (e.count == 0) continue;
        os << "  " << std::left << std::setw(36) << e.name << " n=" << e.count
           << " mean=" << std::fixed << std::setprecision(1)
           << (e.sum / static_cast<double>(e.count)) << " p50=" << e.p50
           << " p99=" << e.p99 << std::defaultfloat << '\n';
        break;
    }
    any = true;
  }
  if (!any) os << "  (no metrics recorded)\n";
}

}  // namespace canopus::obs
