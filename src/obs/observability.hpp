#pragma once
// Observability master switch and run-wide options.
//
// Canopus' core claims are cost/accuracy trade-offs (refactor overhead vs
// write speed, progressive-read latency per accuracy level); this module is
// the single place those numbers are collected. Two collectors hang off it:
//
//   * obs/metrics.hpp  — MetricsRegistry: counters, gauges, log2 histograms,
//     sharded so hot-path updates are a relaxed atomic add.
//   * obs/trace.hpp    — TraceRecorder: nested wall-clock spans with thread
//     attribution, exportable as Chrome trace_event JSON and a summary table.
//
// Both are disabled by default: every instrumentation site first checks
// obs::enabled(), a single relaxed atomic load, so the instrumented build
// costs nothing measurable until a Pipeline, an XML <observability> block, or
// a bench --trace-out flag turns it on. Recording never takes a shared lock
// on the hot path and never consumes entropy, so enabling observability
// cannot perturb task ordering or the storage fault injector's seeded
// decision stream (the 1-vs-N bitwise determinism contract holds with
// tracing on).
//
// This module is deliberately self-contained (standard library only): it
// sits below util/ in the dependency order so even the thread pool can be
// instrumented.

#include <atomic>
#include <cstddef>
#include <iosfwd>
#include <string>

namespace canopus::obs {

/// Run-wide observability configuration, settable from XML
/// (<observability enabled=".." trace=".." histogram-buckets=".."/>), from
/// bench flags (--trace-out), or programmatically via a Pipeline.
struct ObservabilityOptions {
  /// Master switch for metrics and tracing.
  bool enabled = false;
  /// When non-empty, flush() writes the Chrome trace_event JSON here
  /// (load in about://tracing or https://ui.perfetto.dev).
  std::string trace_path;
  /// Histogram resolution: number of log2 buckets per histogram (bucket 0
  /// holds values < 1, bucket i holds [2^(i-1), 2^i)). Clamped to [2, 64].
  std::size_t histogram_buckets = 64;
};

namespace detail {
extern std::atomic<bool> g_enabled;
}

/// True when observability is recording. A relaxed load: safe (and cheap)
/// to call on any hot path.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Applies `options` process-wide: sets the histogram resolution, clears any
/// previously recorded spans/metrics when (re-)enabling, and flips the
/// master switch. Call before the instrumented run starts.
void install(const ObservabilityOptions& options);

/// Flips the master switch without touching recorded data or options.
void set_enabled(bool on);

/// The currently installed options.
const ObservabilityOptions& options();

/// Writes the Chrome trace to options().trace_path when one is configured.
/// Returns the path written, or an empty string when no sink is set.
std::string flush();

/// Prints the span summary table followed by the metrics table — the
/// plaintext companion of the Chrome trace.
void write_summary(std::ostream& os);

}  // namespace canopus::obs
