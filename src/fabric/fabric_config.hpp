#pragma once
// Cluster-fabric knobs. Dependency-free (standard library only) so
// core::RuntimeConfig can embed the struct without core linking against the
// fabric module — the same pattern as serve/serve_config.hpp.

#include <cstddef>
#include <cstdint>

namespace canopus::fabric {

/// How refactored chunks are assigned to owner nodes.
enum class Partition : std::uint8_t {
  kHash = 0,         // FNV-1a of the object key, modulo node count
  kMortonRange = 1,  // contiguous chunk-index ranges; chunks are stored in
                     // Morton order, so a range is a spatially coherent tile
};

/// Configuration of a simulated N-node serving fabric
/// (<fabric nodes= partition= remote-us= remote-bw=>, src/fabric).
struct FabricOptions {
  /// Number of simulated nodes, each with its own StorageHierarchy and
  /// BlockCache slice. 1 degenerates to single-node serving (no remote
  /// reads, no replicas).
  std::size_t nodes = 1;
  Partition partition = Partition::kMortonRange;
  /// Per-message network latency charged (on the simulated clock) to every
  /// read that crosses nodes — the fabric's message-channel envelope. The
  /// XML attribute remote-us is in microseconds.
  double remote_latency_seconds = 200e-6;
  /// Remote transfer bandwidth in bytes/second (remote-bw, e.g. "1GB/s").
  double remote_bandwidth = 1e9;
  /// Anticipatory eviction: when a node's fastest tier is fuller than this
  /// fraction, the node's background provider demotes LRU blocks down-tier
  /// until occupancy falls below eviction_low. <= 0 disables the providers.
  double eviction_high = 0.0;
  double eviction_low = 0.75;
  /// Wall-clock period of the providers' occupancy checks.
  double eviction_interval_seconds = 0.01;
};

}  // namespace canopus::fabric
