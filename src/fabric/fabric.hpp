#pragma once
// Sharded multi-node serving fabric (simulated cluster).
//
// Canopus's elasticity story assumes analytics draw on the aggregate
// DRAM+SSD of many nodes, not one process's tiers. The Fabric models that:
// N nodes in one process, each owning a StorageHierarchy (its slice of the
// cluster's tiered memory) plus an optional BlockCache, with refactored
// products sharded across them by a ChunkDirectory. The shape follows
// ScaleStore's buffer manager — partitioned ownership, message-channel
// remote access, and a background page-provider per node:
//
//   * import_container() shards a written BP container: base/delta/data
//     blocks go to their directory owner (plus a replica copy on the ring
//     successor, reusing the storage layer's replica-key machinery), while
//     metadata and geometry blocks are small and read-mostly, so every node
//     keeps a full copy.
//   * Each node's hierarchy gets a RemoteStore adapter: a local miss
//     resolves through the directory to the owner node, paying a
//     configurable network envelope (remote-us latency + remote-bw
//     bandwidth) on the simulated clock. A dead or faulting owner degrades
//     to the replica owner transparently — readers just see
//     IoResult::from_replica, exactly like an intra-hierarchy fallback.
//   * An anticipatory-eviction provider per node watches the fastest tier
//     and demotes LRU blocks down-tier once occupancy crosses the high
//     watermark, so steady-state serving never stalls on a full fast tier.
//
// Elastic topology (PR 8): the node table grows and shrinks at runtime.
// attach_node() adds a node (same tier stack), seeds it with the replicated
// metadata/geometry blocks, and kicks a *background* migration of exactly
// the chunks whose directory owner changed — copy to the new owner, then
// commit_move() cutover, then retire the old copy (which also invalidates
// the old owner's cache entries). detach_node() drains: the node leaves the
// directory's active set first (no new placements or replica targets), its
// primaries are copied to their new owners and its replica copies repaired
// onto the new ring successors, and only then is it marked detached. Queries
// keep being served throughout — from the old owner until each chunk's
// cutover, and from replicas during the copy window (PR 1's fallback is the
// safety net); a resolution that races a cutover re-reads the directory and
// retries the new owner before degrading.
//
// Everything above the hierarchy — ProgressiveReader, ReadSession,
// serve::QueryScheduler — works against a node unchanged; remote resolution
// is transparent. Counters: fabric.local_hits counts every read served from
// a node's own tiers or cache (at the serving node), fabric.remote_reads /
// fabric.replica_fallbacks count fabric resolutions, so one remote read
// increments remote_reads once and local_hits once (the serve on the owner).
// fabric.migrations counts committed ownership transfers; the topology.epoch
// gauge mirrors ChunkDirectory::epoch().

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "cache/block_cache.hpp"
#include "fabric/chunk_directory.hpp"
#include "fabric/fabric_config.hpp"
#include "storage/hierarchy.hpp"

namespace canopus::fabric {

/// What import_container() distributed.
struct ImportReport {
  std::size_t blocks = 0;         // blocks in the container
  std::size_t sharded = 0;        // base/delta/data blocks sent to one owner
  std::size_t replicated = 0;     // metadata/geometry copies across nodes
  std::size_t replicas = 0;       // cross-node replica copies actually placed
  std::size_t sharded_bytes = 0;  // payload bytes of the sharded blocks
};

/// What one topology change's migration actually did.
struct MigrationReport {
  std::uint64_t epoch = 0;          // directory epoch the plan was made at
  std::size_t chunks_moved = 0;     // committed ownership transfers
  std::size_t bytes_moved = 0;      // payload bytes of those transfers
  std::size_t replicas_repaired = 0;  // ring-successor copies (re)placed
  std::size_t failed = 0;           // moves abandoned (no copy or no room)
  bool superseded = false;          // a newer topology change cut it short
};

class Fabric {
 public:
  /// Every node gets the same tier stack (`node_tiers`) and placement
  /// policy. Eviction providers start automatically when
  /// options.eviction_high > 0. The tier stack and policy are retained so
  /// attach_node() can stamp out identical nodes later.
  Fabric(FabricOptions options, std::vector<storage::TierSpec> node_tiers,
         storage::PlacementPolicy policy = storage::PlacementPolicy::kFastestFit);
  ~Fabric();

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Node-table slots, including detached ones (ids are stable; a detached
  /// node's slot is never reused).
  std::size_t node_count() const;
  storage::StorageHierarchy& node(std::size_t i);
  const FabricOptions& options() const { return options_; }
  ChunkDirectory& directory() { return directory_; }
  const ChunkDirectory& directory() const { return directory_; }

  /// Attaches an independent BlockCache with this budget/sharding to every
  /// node — each node caches its own reads, including bytes it pulled from
  /// a peer (so repeat remote reads are served locally). Nodes attached
  /// later get the same cache configuration.
  void attach_node_caches(const cache::CacheConfig& per_node);
  cache::BlockCache* node_cache(std::size_t i);

  /// Shards a container that was refactored into `staging` across the
  /// fabric. Sharded kinds (kBase, kDelta, kData) land on their directory
  /// owner's fastest fitting tier, then replica copies on the ring
  /// successor (best-effort, like replicate_below); metadata and geometry
  /// (kMesh, kMapping, kChunkIndex) are replicated to every node.
  ImportReport import_container(storage::StorageHierarchy& staging,
                                const std::string& path);

  // --- Elastic topology. ----------------------------------------------------

  /// Grows the fabric by one node (same tier stack and policy as the rest)
  /// and returns its stable id. The node is seeded with the replicated
  /// metadata/geometry blocks so it can serve immediately; the chunks whose
  /// directory owner changed migrate in the background (`background=false`
  /// migrates before returning). Queries are served throughout.
  std::uint32_t attach_node(bool background = true);

  /// Moves every primary off node `id` (directory detach: the node stops
  /// being a placement or replica target, then copy→cutover→retire per
  /// chunk, then replica repair onto the new ring successors). The node
  /// keeps serving in-flight reads throughout and remains attached — call
  /// detach_node() to also remove it from service. Throws when `id` is the
  /// last active node.
  MigrationReport drain_node(std::uint32_t id);

  /// drain_node() + removal from service: after the drain the node is
  /// marked detached and no longer routes, evicts, or serves. Its slot (and
  /// id) remain; re-attachment stamps out a fresh node with a new id.
  MigrationReport detach_node(std::uint32_t id);

  /// Re-plans against the current topology (e.g. after set_residency) and
  /// migrates synchronously.
  MigrationReport rebalance();

  /// Joins any background migration and returns the last completed report.
  MigrationReport wait_for_migration();

  /// True while node `id` is part of the fabric (attached and not yet
  /// detached). Note a draining node is still attached.
  bool attached(std::size_t i) const;

  // --- Failure simulation. --------------------------------------------------

  /// Simulated node failure: the node drops out of routing and remote
  /// resolution, and every tier read on it fails (a full-rate fault
  /// injector), so in-flight requests degrade to replica owners too.
  void kill_node(std::size_t i);
  void revive_node(std::size_t i);
  bool alive(std::size_t i) const;

  /// Affinity routing for the query scheduler: the alive *active* node
  /// owning the most bytes of (path, var), falling back to the first alive
  /// active node (or 0 when everything is down — the query then fails like
  /// any read would). Draining and detached nodes are never selected.
  std::uint32_t route_query(const std::string& path,
                            const std::string& var) const;

  void start_eviction_providers();
  void stop_eviction_providers();

  /// Monotonic fabric-wide counters, independent of the obs layer so tests
  /// can assert exact accounting with observability disabled.
  struct Stats {
    std::uint64_t local_hits = 0;          // serves from a node's own store
    std::uint64_t remote_reads = 0;        // resolved from the owner node
    std::uint64_t replica_fallbacks = 0;   // resolved from the replica owner
    std::uint64_t failed_remote_reads = 0; // no reachable copy
    std::uint64_t evictions = 0;           // provider demotions
    std::uint64_t migrations = 0;          // committed ownership transfers
    std::uint64_t migration_failures = 0;  // abandoned moves
  };
  Stats stats() const;

  /// Publishes per-node fast-tier occupancy gauges
  /// (fabric.node<i>.tier0_used_bytes) and the topology.epoch gauge; the
  /// providers and every topology change also refresh them.
  void update_occupancy_gauges() const;

  /// Planning estimate of resolving `key` from node `from_node`: the
  /// serving peer's tier cost plus the network envelope. Pessimistic
  /// (slowest-tier + envelope) for unknown keys.
  double estimated_remote_cost(std::size_t from_node, const std::string& key,
                               std::size_t bytes) const;

  /// The directory's topology epoch (also surfaced through each node's
  /// RemoteStore so planners above the hierarchy can watch it).
  std::uint64_t topology_epoch() const { return directory_.epoch(); }

  // --- Tiering hooks (src/tiering layers above fabric, so these are
  // type-erased; the TierAdvisor plugs in through Pipeline). ---------------

  /// Replaces the eviction providers' LRU make_room with a caller-supplied
  /// policy: invoked with the node index, the node's hierarchy, and the
  /// fast-tier free-byte target when occupancy crosses eviction_high.
  /// Returns the number of objects it demoted (counted as evictions). An
  /// empty function restores the LRU default.
  using EvictionDelegate = std::function<std::size_t(
      std::size_t node_index, storage::StorageHierarchy& hierarchy,
      std::size_t target_free_bytes)>;
  void set_eviction_delegate(EvictionDelegate delegate);

  /// Installs the listener on every node's hierarchy — current nodes now and
  /// future nodes at attach — so access heat and residency observations keep
  /// flowing across rebalance epochs. Empty functions detach.
  void set_node_access_listener(storage::StorageHierarchy::AccessListener l);
  void set_node_move_listener(storage::StorageHierarchy::MoveListener l);

 private:
  /// The per-node storage::RemoteStore adapter the node's hierarchy calls.
  class NodeRemoteStore : public storage::RemoteStore {
   public:
    NodeRemoteStore(Fabric& fabric, std::size_t node)
        : fabric_(fabric), node_(node) {}
    storage::IoResult remote_read(const std::string& key,
                                  util::Bytes& out) override {
      return fabric_.remote_read_from(node_, key, out);
    }
    std::vector<storage::BatchReadResult> remote_read_batch(
        const std::vector<std::string>& keys) override {
      return fabric_.remote_read_batch_from(node_, keys);
    }
    double estimated_read_cost(const std::string& key,
                               std::size_t bytes) const override {
      return fabric_.estimated_remote_cost(node_, key, bytes);
    }
    void note_local_hit(const std::string& key) override {
      fabric_.note_local_hit(node_, key);
    }
    std::uint64_t topology_epoch() const override {
      return fabric_.topology_epoch();
    }

   private:
    Fabric& fabric_;
    std::size_t node_;
  };

  struct Node {
    Node(std::vector<storage::TierSpec> specs, storage::PlacementPolicy policy)
        : hierarchy(std::move(specs), policy) {}
    storage::StorageHierarchy hierarchy;
    std::unique_ptr<NodeRemoteStore> remote;
    std::atomic<bool> alive{true};
    std::atomic<bool> detached{false};
    std::thread provider;
  };

  /// Slot pointer, or nullptr out of range. Nodes are never destroyed
  /// before the fabric, so the pointer stays valid after the shared lock is
  /// released; only the table itself needs guarding against growth.
  Node* node_ptr(std::size_t i) const;
  /// Builds a node, wires its remote store (and cache when configured), and
  /// appends it to the table; returns its id. Starts its provider when the
  /// providers are running.
  std::uint32_t append_node();

  storage::IoResult remote_read_from(std::size_t from_node,
                                     const std::string& key, util::Bytes& out);
  /// Batched form feeding the async engine's ring: per-op resolution (owner →
  /// replica fallback, counters, failures) is identical to remote_read_from,
  /// but only the first op in the batch that actually crosses the network
  /// pays the remote_latency_seconds envelope — later networked ops ride the
  /// same round trip and pay only their bytes/remote_bandwidth share.
  std::vector<storage::BatchReadResult> remote_read_batch_from(
      std::size_t from_node, const std::vector<std::string>& keys);
  storage::IoResult remote_read_one(std::size_t from_node,
                                    const std::string& key, util::Bytes& out,
                                    bool charge_latency, bool* crossed_network);
  void note_local_hit(std::size_t node, const std::string& key);
  void provider_loop(std::size_t node_index);
  void tick_eviction(std::size_t node_index);

  /// Executes one plan: per chunk, copy (primary, else replica) → place on
  /// the new owner → commit_move cutover → retire the old copy (erase also
  /// invalidates its cache entries) → repair the ring-successor replica.
  /// Stops early when the plan's epoch is superseded.
  MigrationReport run_migration(const RebalancePlan& plan);
  /// drain_node() body; caller holds topology_mu_.
  MigrationReport drain_locked(std::uint32_t id);
  /// Ensures every recorded entry's replica copy sits on its current ring
  /// successor, dropping stale copies elsewhere. `retired` (optional) also
  /// has its stale *primary* leftovers cleaned.
  std::size_t repair_replicas(std::optional<std::uint32_t> retired);
  void launch_migration(RebalancePlan plan);
  void publish_epoch_gauge() const;

  const FabricOptions options_;
  const std::vector<storage::TierSpec> node_tiers_;
  const storage::PlacementPolicy policy_;
  ChunkDirectory directory_;

  /// Guards the node table against concurrent growth (attach_node) — not
  /// the nodes themselves, which carry their own locks.
  mutable std::shared_mutex nodes_mu_;
  std::vector<std::unique_ptr<Node>> nodes_;

  /// Serializes topology changes (attach/drain/detach/rebalance).
  std::mutex topology_mu_;
  std::thread migration_thread_;
  std::mutex migration_mu_;  // guards migration_thread_ + last_migration_
  MigrationReport last_migration_;

  /// Keys replicated to every node at import (metadata/geometry); a node
  /// attached later is seeded with these so it can serve immediately.
  std::mutex replicated_mu_;
  std::vector<std::string> replicated_keys_;
  std::optional<cache::CacheConfig> per_node_cache_;

  /// Tiering hooks (see set_eviction_delegate / set_node_*_listener).
  /// hooks_mu_ is a leaf lock: holders never take another fabric mutex.
  mutable std::mutex hooks_mu_;
  EvictionDelegate eviction_delegate_;
  storage::StorageHierarchy::AccessListener node_access_listener_;
  storage::StorageHierarchy::MoveListener node_move_listener_;

  std::mutex provider_mu_;
  std::condition_variable provider_cv_;
  bool providers_running_ = false;
  bool stop_providers_ = false;

  std::atomic<std::uint64_t> local_hits_{0};
  std::atomic<std::uint64_t> remote_reads_{0};
  std::atomic<std::uint64_t> replica_fallbacks_{0};
  std::atomic<std::uint64_t> failed_remote_reads_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> migrations_{0};
  std::atomic<std::uint64_t> migration_failures_{0};
};

}  // namespace canopus::fabric
