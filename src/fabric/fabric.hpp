#pragma once
// Sharded multi-node serving fabric (simulated cluster).
//
// Canopus's elasticity story assumes analytics draw on the aggregate
// DRAM+SSD of many nodes, not one process's tiers. The Fabric models that:
// N nodes in one process, each owning a StorageHierarchy (its slice of the
// cluster's tiered memory) plus an optional BlockCache, with refactored
// products sharded across them by a ChunkDirectory. The shape follows
// ScaleStore's buffer manager — partitioned ownership, message-channel
// remote access, and a background page-provider per node:
//
//   * import_container() shards a written BP container: base/delta/data
//     blocks go to their directory owner (plus a replica copy on the ring
//     successor, reusing the storage layer's replica-key machinery), while
//     metadata and geometry blocks are small and read-mostly, so every node
//     keeps a full copy.
//   * Each node's hierarchy gets a RemoteStore adapter: a local miss
//     resolves through the directory to the owner node, paying a
//     configurable network envelope (remote-us latency + remote-bw
//     bandwidth) on the simulated clock. A dead or faulting owner degrades
//     to the replica owner transparently — readers just see
//     IoResult::from_replica, exactly like an intra-hierarchy fallback.
//   * An anticipatory-eviction provider per node watches the fastest tier
//     and demotes LRU blocks down-tier once occupancy crosses the high
//     watermark, so steady-state serving never stalls on a full fast tier.
//
// Everything above the hierarchy — ProgressiveReader, ReadSession,
// serve::QueryScheduler — works against a node unchanged; remote resolution
// is transparent. Counters: fabric.local_hits counts every read served from
// a node's own tiers or cache (at the serving node), fabric.remote_reads /
// fabric.replica_fallbacks count fabric resolutions, so one remote read
// increments remote_reads once and local_hits once (the serve on the owner).

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cache/block_cache.hpp"
#include "fabric/chunk_directory.hpp"
#include "fabric/fabric_config.hpp"
#include "storage/hierarchy.hpp"

namespace canopus::fabric {

/// What import_container() distributed.
struct ImportReport {
  std::size_t blocks = 0;         // blocks in the container
  std::size_t sharded = 0;        // base/delta/data blocks sent to one owner
  std::size_t replicated = 0;     // metadata/geometry copies across nodes
  std::size_t replicas = 0;       // cross-node replica copies actually placed
  std::size_t sharded_bytes = 0;  // payload bytes of the sharded blocks
};

class Fabric {
 public:
  /// Every node gets the same tier stack (`node_tiers`) and placement
  /// policy. Eviction providers start automatically when
  /// options.eviction_high > 0.
  Fabric(FabricOptions options, std::vector<storage::TierSpec> node_tiers,
         storage::PlacementPolicy policy = storage::PlacementPolicy::kFastestFit);
  ~Fabric();

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  std::size_t node_count() const { return nodes_.size(); }
  storage::StorageHierarchy& node(std::size_t i);
  const FabricOptions& options() const { return options_; }
  ChunkDirectory& directory() { return directory_; }
  const ChunkDirectory& directory() const { return directory_; }

  /// Attaches an independent BlockCache with this budget/sharding to every
  /// node — each node caches its own reads, including bytes it pulled from
  /// a peer (so repeat remote reads are served locally).
  void attach_node_caches(const cache::CacheConfig& per_node);
  cache::BlockCache* node_cache(std::size_t i);

  /// Shards a container that was refactored into `staging` across the
  /// fabric. Sharded kinds (kBase, kDelta, kData) land on their directory
  /// owner's fastest fitting tier, then replica copies on the ring
  /// successor (best-effort, like replicate_below); metadata and geometry
  /// (kMesh, kMapping, kChunkIndex) are replicated to every node.
  ImportReport import_container(storage::StorageHierarchy& staging,
                                const std::string& path);

  /// Simulated node failure: the node drops out of routing and remote
  /// resolution, and every tier read on it fails (a full-rate fault
  /// injector), so in-flight requests degrade to replica owners too.
  void kill_node(std::size_t i);
  void revive_node(std::size_t i);
  bool alive(std::size_t i) const;

  /// Affinity routing for the query scheduler: the alive node owning the
  /// most bytes of (path, var), falling back to the first alive node (or 0
  /// when everything is down — the query then fails like any read would).
  std::uint32_t route_query(const std::string& path,
                            const std::string& var) const;

  void start_eviction_providers();
  void stop_eviction_providers();

  /// Monotonic fabric-wide counters, independent of the obs layer so tests
  /// can assert exact accounting with observability disabled.
  struct Stats {
    std::uint64_t local_hits = 0;          // serves from a node's own store
    std::uint64_t remote_reads = 0;        // resolved from the owner node
    std::uint64_t replica_fallbacks = 0;   // resolved from the replica owner
    std::uint64_t failed_remote_reads = 0; // no reachable copy
    std::uint64_t evictions = 0;           // provider demotions
  };
  Stats stats() const;

  /// Publishes per-node fast-tier occupancy gauges
  /// (fabric.node<i>.tier0_used_bytes); the providers also refresh them.
  void update_occupancy_gauges() const;

  /// Planning estimate of resolving `key` from node `from_node`: the
  /// serving peer's tier cost plus the network envelope. Pessimistic
  /// (slowest-tier + envelope) for unknown keys.
  double estimated_remote_cost(std::size_t from_node, const std::string& key,
                               std::size_t bytes) const;

 private:
  /// The per-node storage::RemoteStore adapter the node's hierarchy calls.
  class NodeRemoteStore : public storage::RemoteStore {
   public:
    NodeRemoteStore(Fabric& fabric, std::size_t node)
        : fabric_(fabric), node_(node) {}
    storage::IoResult remote_read(const std::string& key,
                                  util::Bytes& out) override {
      return fabric_.remote_read_from(node_, key, out);
    }
    std::vector<storage::BatchReadResult> remote_read_batch(
        const std::vector<std::string>& keys) override {
      return fabric_.remote_read_batch_from(node_, keys);
    }
    double estimated_read_cost(const std::string& key,
                               std::size_t bytes) const override {
      return fabric_.estimated_remote_cost(node_, key, bytes);
    }
    void note_local_hit(const std::string& key) override {
      fabric_.note_local_hit(node_, key);
    }

   private:
    Fabric& fabric_;
    std::size_t node_;
  };

  struct Node {
    Node(std::vector<storage::TierSpec> specs, storage::PlacementPolicy policy)
        : hierarchy(std::move(specs), policy) {}
    storage::StorageHierarchy hierarchy;
    std::unique_ptr<NodeRemoteStore> remote;
    std::atomic<bool> alive{true};
    std::thread provider;
  };

  storage::IoResult remote_read_from(std::size_t from_node,
                                     const std::string& key, util::Bytes& out);
  /// Batched form feeding the async engine's ring: per-op resolution (owner →
  /// replica fallback, counters, failures) is identical to remote_read_from,
  /// but only the first op in the batch that actually crosses the network
  /// pays the remote_latency_seconds envelope — later networked ops ride the
  /// same round trip and pay only their bytes/remote_bandwidth share.
  std::vector<storage::BatchReadResult> remote_read_batch_from(
      std::size_t from_node, const std::vector<std::string>& keys);
  storage::IoResult remote_read_one(std::size_t from_node,
                                    const std::string& key, util::Bytes& out,
                                    bool charge_latency, bool* crossed_network);
  void note_local_hit(std::size_t node, const std::string& key);
  void provider_loop(std::size_t node_index);
  void tick_eviction(std::size_t node_index);

  const FabricOptions options_;
  ChunkDirectory directory_;
  std::vector<std::unique_ptr<Node>> nodes_;

  std::mutex provider_mu_;
  std::condition_variable provider_cv_;
  bool providers_running_ = false;
  bool stop_providers_ = false;

  std::atomic<std::uint64_t> local_hits_{0};
  std::atomic<std::uint64_t> remote_reads_{0};
  std::atomic<std::uint64_t> replica_fallbacks_{0};
  std::atomic<std::uint64_t> failed_remote_reads_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace canopus::fabric
