#pragma once
// Chunk -> owner-node directory of the serving fabric.
//
// Every sharded product block (base, delta chunk, plain data) has exactly
// one owner node; with more than one node it also has a replica owner — the
// next node in ring order, mirroring the intra-hierarchy replica placement
// the storage layer already uses (StorageHierarchy::replicate_below). The
// partition functions are pure and static so the property suite can assert
// totality, disjointness, and coverage without building a cluster.
//
// Elastic topology (PR 8): the directory now separates *node identity* from
// *partition slot*. Nodes carry stable ids; the active set lists the ids that
// currently participate in ownership. attach_node()/detach_node() change the
// active set, bump the topology epoch, and return an incremental
// RebalancePlan — only the entries whose target owner changed. Recorded
// owners stay put until the fabric finishes each copy and calls
// commit_move(): reads keep resolving to the old owner until cutover, so a
// migration in flight never makes a key unreachable. An optional residency
// set per key prefix restricts which active nodes may own matching chunk
// groups (Paradigm4's create_with_residency shape).
//
// Invariants (tests/fabric_test.cpp and tests/elastic_test.cpp pin them):
//   * totality — owner_for() maps every (key, chunk, chunk_count) to exactly
//     one active node;
//   * coverage — under kMortonRange with nodes <= chunk_count, every node
//     owns at least one chunk, and the per-node ranges are contiguous and
//     disjoint;
//   * rebalance — after rebalance(n'), every recorded entry's owner equals
//     owner_for() recomputed with n' nodes (the eager legacy contract);
//   * incremental plans — attach/detach plans contain exactly the entries
//     whose target owner differs from the recorded owner, and nothing else.

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "fabric/fabric_config.hpp"

namespace canopus::fabric {

/// Where a chunk lives: its owner node and (in multi-node fabrics) the node
/// holding the replica copy under StorageHierarchy::replica_key.
struct ChunkLocation {
  std::uint32_t owner = 0;
  std::optional<std::uint32_t> replica;
};

/// One pending ownership transfer of an incremental rebalance: copy `key`
/// from node `from` to node `to`, then commit_move() to cut reads over.
struct ChunkMove {
  std::string key;
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  std::size_t bytes = 0;
};

/// What one topology change asks the fabric to migrate. `epoch` is the
/// directory epoch the plan was computed at; a later topology change
/// supersedes the plan (the fabric re-plans instead of finishing it).
struct RebalancePlan {
  std::uint64_t epoch = 0;
  std::vector<ChunkMove> moves;
};

class ChunkDirectory {
 public:
  ChunkDirectory(std::size_t nodes, Partition partition);

  /// FNV-1a of `key`, modulo `nodes`.
  static std::uint32_t hash_owner(const std::string& key, std::size_t nodes);

  /// Contiguous-range assignment: chunk c of chunk_count maps to
  /// c * nodes / chunk_count. Total, disjoint, and covering for
  /// nodes <= chunk_count.
  static std::uint32_t range_owner(std::uint32_t chunk,
                                   std::uint32_t chunk_count,
                                   std::size_t nodes);

  /// Ring replica placement: the next node after `owner`, or nullopt when
  /// the fabric has a single node.
  static std::optional<std::uint32_t> replica_of(std::uint32_t owner,
                                                 std::size_t nodes);

  /// The owner this directory's partition assigns (pure; does not record).
  /// kMortonRange falls back to hash_owner for single-chunk block groups
  /// (bases, plain data) so those still spread across the fabric. The
  /// partition computes a slot among the eligible nodes (active set,
  /// intersected with the key's residency set when one matches), then maps
  /// the slot to that set's stable node id.
  std::uint32_t owner_for(const std::string& key, std::uint32_t chunk,
                          std::uint32_t chunk_count) const;

  /// Records `key` and returns its owner.
  std::uint32_t assign(const std::string& key, std::uint32_t chunk,
                       std::uint32_t chunk_count, std::size_t bytes);

  /// Location of a recorded key, or nullopt for unknown keys. The replica is
  /// the next *active* node after the owner in ring order.
  std::optional<ChunkLocation> lookup(const std::string& key) const;

  /// Recomputes every recorded entry's owner for a new node count (elastic
  /// grow/shrink). The fabric must re-shard the stored objects to match;
  /// the directory only answers "who should own this now". Resets the
  /// active set to {0..new_nodes-1} and bumps the epoch — the eager legacy
  /// path; the incremental path is attach_node()/detach_node().
  void rebalance(std::size_t new_nodes);

  // --- Elastic topology (incremental). -------------------------------------

  /// Adds node `id` to the active set and returns the incremental plan:
  /// exactly the recorded entries whose target owner changed. Owners are NOT
  /// flipped here — the fabric copies each chunk and calls commit_move().
  RebalancePlan attach_node(std::uint32_t id);

  /// Removes node `id` from the active set (it stops being a target for
  /// owner_for / new assignments / replicas) and returns the drain plan.
  /// Entries currently owned by `id` keep resolving to it until the fabric
  /// commits their moves, so in-flight reads still find the copy.
  RebalancePlan detach_node(std::uint32_t id);

  /// Recomputes targets for the current active set without changing it
  /// (e.g. after residency edits) and returns the incremental plan.
  RebalancePlan plan_rebalance();

  /// Cutover: records that `key` now lives on `new_owner`. Reads resolve to
  /// the new owner from this call on.
  void commit_move(const std::string& key, std::uint32_t new_owner);

  /// Monotone topology epoch: bumped by rebalance(), attach_node(),
  /// detach_node(), and set_residency() — any event after which cached owner
  /// resolutions or cost-model residency probes may be stale. Planners
  /// snapshot it and re-plan when it moves; a migration plan whose epoch is
  /// no longer current has been superseded. commit_move() does not bump it
  /// (cutovers execute *under* the epoch that planned them; lookup() is the
  /// live source of truth for who holds a key).
  std::uint64_t epoch() const;

  /// Stable ids of the nodes currently participating in ownership.
  std::vector<std::uint32_t> active_nodes() const;
  bool is_active(std::uint32_t id) const;

  /// Restricts ownership of keys starting with `prefix` to `nodes` (a
  /// residency set, intersected with the active set; an empty intersection
  /// falls back to the full active set so keys never become unownable).
  /// Pass an empty vector to clear. Longest matching prefix wins.
  void set_residency(const std::string& prefix,
                     std::vector<std::uint32_t> nodes);
  /// The residency set owner_for() would honor for `key` (already
  /// intersected with the active set), or empty when unrestricted.
  std::vector<std::uint32_t> residency_for(const std::string& key) const;

  std::size_t node_count() const;
  std::size_t size() const;

  /// Point-in-time view of one recorded entry (for the fabric's replica
  /// repair sweep after a topology change).
  struct EntryView {
    std::string key;
    std::uint32_t owner = 0;
    std::size_t bytes = 0;
  };
  std::vector<EntryView> snapshot() const;

  /// Bytes owned per node across all recorded entries.
  std::vector<std::size_t> owned_bytes() const;
  /// Bytes owned per node among entries whose key starts with `prefix` —
  /// the affinity signal the query router uses.
  std::vector<std::size_t> owned_bytes_for_prefix(
      const std::string& prefix) const;

 private:
  struct Entry {
    std::uint32_t chunk = 0;
    std::uint32_t chunk_count = 1;
    std::size_t bytes = 0;
    std::uint32_t owner = 0;
  };

  /// Eligible owner ids for `key`: residency ∩ active, or active. Locked by
  /// caller.
  std::vector<std::uint32_t> eligible_locked(const std::string& key) const;
  std::uint32_t owner_for_locked(const std::string& key, std::uint32_t chunk,
                                 std::uint32_t chunk_count) const;
  RebalancePlan plan_locked() const;

  mutable std::mutex mu_;
  Partition partition_;
  std::vector<std::uint32_t> active_;  // sorted stable node ids
  std::uint64_t epoch_ = 0;
  std::map<std::string, Entry> entries_;
  // prefix -> allowed node ids (sorted); longest prefix match.
  std::map<std::string, std::vector<std::uint32_t>> residency_;
};

}  // namespace canopus::fabric
