#pragma once
// Chunk -> owner-node directory of the serving fabric.
//
// Every sharded product block (base, delta chunk, plain data) has exactly
// one owner node; with more than one node it also has a replica owner — the
// next node in ring order, mirroring the intra-hierarchy replica placement
// the storage layer already uses (StorageHierarchy::replicate_below). The
// partition functions are pure and static so the property suite can assert
// totality, disjointness, and coverage without building a cluster.
//
// Invariants (tests/fabric_test.cpp pins them):
//   * totality — owner_for() maps every (key, chunk, chunk_count) to exactly
//     one node index < nodes;
//   * coverage — under kMortonRange with nodes <= chunk_count, every node
//     owns at least one chunk, and the per-node ranges are contiguous and
//     disjoint;
//   * rebalance — after rebalance(n'), every recorded entry's owner equals
//     owner_for() recomputed with n' nodes.

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "fabric/fabric_config.hpp"

namespace canopus::fabric {

/// Where a chunk lives: its owner node and (in multi-node fabrics) the node
/// holding the replica copy under StorageHierarchy::replica_key.
struct ChunkLocation {
  std::uint32_t owner = 0;
  std::optional<std::uint32_t> replica;
};

class ChunkDirectory {
 public:
  ChunkDirectory(std::size_t nodes, Partition partition);

  /// FNV-1a of `key`, modulo `nodes`.
  static std::uint32_t hash_owner(const std::string& key, std::size_t nodes);

  /// Contiguous-range assignment: chunk c of chunk_count maps to
  /// c * nodes / chunk_count. Total, disjoint, and covering for
  /// nodes <= chunk_count.
  static std::uint32_t range_owner(std::uint32_t chunk,
                                   std::uint32_t chunk_count,
                                   std::size_t nodes);

  /// Ring replica placement: the next node after `owner`, or nullopt when
  /// the fabric has a single node.
  static std::optional<std::uint32_t> replica_of(std::uint32_t owner,
                                                 std::size_t nodes);

  /// The owner this directory's partition assigns (pure; does not record).
  /// kMortonRange falls back to hash_owner for single-chunk block groups
  /// (bases, plain data) so those still spread across the fabric.
  std::uint32_t owner_for(const std::string& key, std::uint32_t chunk,
                          std::uint32_t chunk_count) const;

  /// Records `key` and returns its owner.
  std::uint32_t assign(const std::string& key, std::uint32_t chunk,
                       std::uint32_t chunk_count, std::size_t bytes);

  /// Location of a recorded key, or nullopt for unknown keys.
  std::optional<ChunkLocation> lookup(const std::string& key) const;

  /// Recomputes every recorded entry's owner for a new node count (elastic
  /// grow/shrink). The fabric must re-shard the stored objects to match;
  /// the directory only answers "who should own this now".
  void rebalance(std::size_t new_nodes);

  std::size_t node_count() const;
  std::size_t size() const;

  /// Bytes owned per node across all recorded entries.
  std::vector<std::size_t> owned_bytes() const;
  /// Bytes owned per node among entries whose key starts with `prefix` —
  /// the affinity signal the query router uses.
  std::vector<std::size_t> owned_bytes_for_prefix(
      const std::string& prefix) const;

 private:
  struct Entry {
    std::uint32_t chunk = 0;
    std::uint32_t chunk_count = 1;
    std::size_t bytes = 0;
    std::uint32_t owner = 0;
  };

  mutable std::mutex mu_;
  std::size_t nodes_;
  Partition partition_;
  std::map<std::string, Entry> entries_;
};

}  // namespace canopus::fabric
