#include "fabric/chunk_directory.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace canopus::fabric {

ChunkDirectory::ChunkDirectory(std::size_t nodes, Partition partition)
    : partition_(partition) {
  CANOPUS_CHECK(nodes >= 1, "directory needs at least one node");
  active_.resize(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    active_[i] = static_cast<std::uint32_t>(i);
  }
}

std::uint32_t ChunkDirectory::hash_owner(const std::string& key,
                                         std::size_t nodes) {
  CANOPUS_ASSERT(nodes >= 1);
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a 64
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return static_cast<std::uint32_t>(h % nodes);
}

std::uint32_t ChunkDirectory::range_owner(std::uint32_t chunk,
                                          std::uint32_t chunk_count,
                                          std::size_t nodes) {
  CANOPUS_ASSERT(nodes >= 1);
  CANOPUS_ASSERT(chunk_count >= 1 && chunk < chunk_count);
  // chunk < chunk_count gives owner <= (chunk_count-1)*nodes/chunk_count
  // < nodes: total. The preimage of each owner is a contiguous interval:
  // disjoint, and non-empty whenever nodes <= chunk_count.
  return static_cast<std::uint32_t>(
      static_cast<std::uint64_t>(chunk) * nodes / chunk_count);
}

std::optional<std::uint32_t> ChunkDirectory::replica_of(std::uint32_t owner,
                                                        std::size_t nodes) {
  if (nodes <= 1) return std::nullopt;
  return static_cast<std::uint32_t>((owner + 1) % nodes);
}

std::vector<std::uint32_t> ChunkDirectory::eligible_locked(
    const std::string& key) const {
  // Longest residency prefix that matches the key wins. residency_ is
  // ordered, so candidate prefixes of `key` sort before it; walk backwards
  // from the insertion point checking prefix-of-key.
  const std::vector<std::uint32_t>* restriction = nullptr;
  std::size_t best_len = 0;
  for (const auto& [prefix, nodes] : residency_) {
    if (prefix.size() >= best_len && key.size() >= prefix.size() &&
        key.compare(0, prefix.size(), prefix) == 0) {
      restriction = &nodes;
      best_len = prefix.size();
    }
  }
  if (restriction == nullptr) return active_;
  std::vector<std::uint32_t> allowed;
  std::set_intersection(restriction->begin(), restriction->end(),
                        active_.begin(), active_.end(),
                        std::back_inserter(allowed));
  // An empty intersection (every resident node detached) falls back to the
  // full active set: a key must never become unownable.
  if (allowed.empty()) return active_;
  return allowed;
}

std::uint32_t ChunkDirectory::owner_for_locked(
    const std::string& key, std::uint32_t chunk,
    std::uint32_t chunk_count) const {
  const auto allowed = eligible_locked(key);
  CANOPUS_ASSERT(!allowed.empty());
  const std::uint32_t slot =
      (partition_ == Partition::kMortonRange && chunk_count > 1)
          ? range_owner(chunk, chunk_count, allowed.size())
          : hash_owner(key, allowed.size());
  return allowed[slot];
}

std::uint32_t ChunkDirectory::owner_for(const std::string& key,
                                        std::uint32_t chunk,
                                        std::uint32_t chunk_count) const {
  std::scoped_lock lock(mu_);
  return owner_for_locked(key, chunk, chunk_count);
}

std::uint32_t ChunkDirectory::assign(const std::string& key,
                                     std::uint32_t chunk,
                                     std::uint32_t chunk_count,
                                     std::size_t bytes) {
  std::scoped_lock lock(mu_);
  const std::uint32_t owner = owner_for_locked(key, chunk, chunk_count);
  entries_[key] = Entry{chunk, chunk_count, bytes, owner};
  return owner;
}

std::optional<ChunkLocation> ChunkDirectory::lookup(
    const std::string& key) const {
  std::scoped_lock lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  const std::uint32_t owner = it->second.owner;
  // Replica: the next *active* node after the owner in ring order. An owner
  // mid-drain may itself no longer be active; the ring still wraps over the
  // active ids.
  std::optional<std::uint32_t> replica;
  if (active_.size() > 1 || (active_.size() == 1 && active_[0] != owner)) {
    auto next = std::upper_bound(active_.begin(), active_.end(), owner);
    if (next == active_.end()) next = active_.begin();
    if (*next != owner) replica = *next;
  }
  return ChunkLocation{owner, replica};
}

void ChunkDirectory::rebalance(std::size_t new_nodes) {
  CANOPUS_CHECK(new_nodes >= 1, "rebalance needs at least one node");
  std::scoped_lock lock(mu_);
  active_.resize(new_nodes);
  for (std::size_t i = 0; i < new_nodes; ++i) {
    active_[i] = static_cast<std::uint32_t>(i);
  }
  ++epoch_;
  for (auto& [key, entry] : entries_) {
    entry.owner = owner_for_locked(key, entry.chunk, entry.chunk_count);
  }
}

RebalancePlan ChunkDirectory::plan_locked() const {
  RebalancePlan plan;
  plan.epoch = epoch_;
  for (const auto& [key, entry] : entries_) {
    const std::uint32_t target =
        owner_for_locked(key, entry.chunk, entry.chunk_count);
    if (target != entry.owner) {
      plan.moves.push_back(ChunkMove{key, entry.owner, target, entry.bytes});
    }
  }
  return plan;
}

RebalancePlan ChunkDirectory::attach_node(std::uint32_t id) {
  std::scoped_lock lock(mu_);
  CANOPUS_CHECK(!std::binary_search(active_.begin(), active_.end(), id),
                "attach_node: node " + std::to_string(id) +
                    " is already active");
  active_.insert(std::upper_bound(active_.begin(), active_.end(), id), id);
  ++epoch_;
  return plan_locked();
}

RebalancePlan ChunkDirectory::detach_node(std::uint32_t id) {
  std::scoped_lock lock(mu_);
  const auto it = std::lower_bound(active_.begin(), active_.end(), id);
  CANOPUS_CHECK(it != active_.end() && *it == id,
                "detach_node: node " + std::to_string(id) + " is not active");
  CANOPUS_CHECK(active_.size() > 1,
                "detach_node: cannot detach the last active node");
  active_.erase(it);
  ++epoch_;
  return plan_locked();
}

RebalancePlan ChunkDirectory::plan_rebalance() {
  std::scoped_lock lock(mu_);
  return plan_locked();
}

void ChunkDirectory::commit_move(const std::string& key,
                                 std::uint32_t new_owner) {
  std::scoped_lock lock(mu_);
  const auto it = entries_.find(key);
  CANOPUS_CHECK(it != entries_.end(),
                "commit_move: no directory entry for '" + key + "'");
  it->second.owner = new_owner;
}

std::uint64_t ChunkDirectory::epoch() const {
  std::scoped_lock lock(mu_);
  return epoch_;
}

std::vector<std::uint32_t> ChunkDirectory::active_nodes() const {
  std::scoped_lock lock(mu_);
  return active_;
}

bool ChunkDirectory::is_active(std::uint32_t id) const {
  std::scoped_lock lock(mu_);
  return std::binary_search(active_.begin(), active_.end(), id);
}

void ChunkDirectory::set_residency(const std::string& prefix,
                                   std::vector<std::uint32_t> nodes) {
  std::scoped_lock lock(mu_);
  if (nodes.empty()) {
    residency_.erase(prefix);
  } else {
    std::sort(nodes.begin(), nodes.end());
    nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
    residency_[prefix] = std::move(nodes);
  }
  ++epoch_;
}

std::vector<std::uint32_t> ChunkDirectory::residency_for(
    const std::string& key) const {
  std::scoped_lock lock(mu_);
  const std::vector<std::uint32_t>* restriction = nullptr;
  std::size_t best_len = 0;
  for (const auto& [prefix, nodes] : residency_) {
    if (prefix.size() >= best_len && key.size() >= prefix.size() &&
        key.compare(0, prefix.size(), prefix) == 0) {
      restriction = &nodes;
      best_len = prefix.size();
    }
  }
  if (restriction == nullptr) return {};
  std::vector<std::uint32_t> allowed;
  std::set_intersection(restriction->begin(), restriction->end(),
                        active_.begin(), active_.end(),
                        std::back_inserter(allowed));
  return allowed;
}

std::vector<ChunkDirectory::EntryView> ChunkDirectory::snapshot() const {
  std::scoped_lock lock(mu_);
  std::vector<EntryView> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    out.push_back(EntryView{key, entry.owner, entry.bytes});
  }
  return out;
}

std::size_t ChunkDirectory::node_count() const {
  std::scoped_lock lock(mu_);
  return active_.size();
}

std::size_t ChunkDirectory::size() const {
  std::scoped_lock lock(mu_);
  return entries_.size();
}

std::vector<std::size_t> ChunkDirectory::owned_bytes() const {
  return owned_bytes_for_prefix("");
}

std::vector<std::size_t> ChunkDirectory::owned_bytes_for_prefix(
    const std::string& prefix) const {
  std::scoped_lock lock(mu_);
  // Indexed by stable node id: one past the largest id that is active or
  // still holds entries mid-drain.
  std::size_t limit = active_.empty() ? 0 : active_.back() + 1;
  for (auto it = entries_.lower_bound(prefix); it != entries_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    limit = std::max(limit, static_cast<std::size_t>(it->second.owner) + 1);
  }
  std::vector<std::size_t> per_node(limit, 0);
  // entries_ is ordered, so the matching keys form one contiguous range.
  for (auto it = entries_.lower_bound(prefix); it != entries_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    per_node[it->second.owner] += it->second.bytes;
  }
  return per_node;
}

}  // namespace canopus::fabric
