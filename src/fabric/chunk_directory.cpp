#include "fabric/chunk_directory.hpp"

#include "util/assert.hpp"

namespace canopus::fabric {

ChunkDirectory::ChunkDirectory(std::size_t nodes, Partition partition)
    : nodes_(nodes), partition_(partition) {
  CANOPUS_CHECK(nodes_ >= 1, "directory needs at least one node");
}

std::uint32_t ChunkDirectory::hash_owner(const std::string& key,
                                         std::size_t nodes) {
  CANOPUS_ASSERT(nodes >= 1);
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a 64
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return static_cast<std::uint32_t>(h % nodes);
}

std::uint32_t ChunkDirectory::range_owner(std::uint32_t chunk,
                                          std::uint32_t chunk_count,
                                          std::size_t nodes) {
  CANOPUS_ASSERT(nodes >= 1);
  CANOPUS_ASSERT(chunk_count >= 1 && chunk < chunk_count);
  // chunk < chunk_count gives owner <= (chunk_count-1)*nodes/chunk_count
  // < nodes: total. The preimage of each owner is a contiguous interval:
  // disjoint, and non-empty whenever nodes <= chunk_count.
  return static_cast<std::uint32_t>(
      static_cast<std::uint64_t>(chunk) * nodes / chunk_count);
}

std::optional<std::uint32_t> ChunkDirectory::replica_of(std::uint32_t owner,
                                                        std::size_t nodes) {
  if (nodes <= 1) return std::nullopt;
  return static_cast<std::uint32_t>((owner + 1) % nodes);
}

std::uint32_t ChunkDirectory::owner_for(const std::string& key,
                                        std::uint32_t chunk,
                                        std::uint32_t chunk_count) const {
  std::scoped_lock lock(mu_);
  if (partition_ == Partition::kMortonRange && chunk_count > 1) {
    return range_owner(chunk, chunk_count, nodes_);
  }
  return hash_owner(key, nodes_);
}

std::uint32_t ChunkDirectory::assign(const std::string& key,
                                     std::uint32_t chunk,
                                     std::uint32_t chunk_count,
                                     std::size_t bytes) {
  const std::uint32_t owner = owner_for(key, chunk, chunk_count);
  std::scoped_lock lock(mu_);
  entries_[key] = Entry{chunk, chunk_count, bytes, owner};
  return owner;
}

std::optional<ChunkLocation> ChunkDirectory::lookup(
    const std::string& key) const {
  std::scoped_lock lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return ChunkLocation{it->second.owner, replica_of(it->second.owner, nodes_)};
}

void ChunkDirectory::rebalance(std::size_t new_nodes) {
  CANOPUS_CHECK(new_nodes >= 1, "rebalance needs at least one node");
  std::scoped_lock lock(mu_);
  nodes_ = new_nodes;
  for (auto& [key, entry] : entries_) {
    entry.owner = (partition_ == Partition::kMortonRange && entry.chunk_count > 1)
                      ? range_owner(entry.chunk, entry.chunk_count, nodes_)
                      : hash_owner(key, nodes_);
  }
}

std::size_t ChunkDirectory::node_count() const {
  std::scoped_lock lock(mu_);
  return nodes_;
}

std::size_t ChunkDirectory::size() const {
  std::scoped_lock lock(mu_);
  return entries_.size();
}

std::vector<std::size_t> ChunkDirectory::owned_bytes() const {
  return owned_bytes_for_prefix("");
}

std::vector<std::size_t> ChunkDirectory::owned_bytes_for_prefix(
    const std::string& prefix) const {
  std::scoped_lock lock(mu_);
  std::vector<std::size_t> per_node(nodes_, 0);
  // entries_ is ordered, so the matching keys form one contiguous range.
  for (auto it = entries_.lower_bound(prefix); it != entries_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    per_node[it->second.owner] += it->second.bytes;
  }
  return per_node;
}

}  // namespace canopus::fabric
