#include "fabric/fabric.hpp"

#include <algorithm>
#include <chrono>

#include "adios/bp.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "storage/tier.hpp"
#include "util/assert.hpp"

namespace canopus::fabric {

namespace {

void count_fabric(const char* what, std::uint64_t n = 1) {
  if (obs::enabled()) {
    obs::MetricsRegistry::global()
        .counter(std::string("fabric.") + what)
        .add(n);
  }
}

bool sharded_kind(adios::BlockKind kind) {
  return kind == adios::BlockKind::kBase || kind == adios::BlockKind::kDelta ||
         kind == adios::BlockKind::kData;
}

}  // namespace

Fabric::Fabric(FabricOptions options, std::vector<storage::TierSpec> node_tiers,
               storage::PlacementPolicy policy)
    : options_(options),
      node_tiers_(std::move(node_tiers)),
      policy_(policy),
      directory_(options.nodes, options.partition) {
  CANOPUS_CHECK(options_.nodes >= 1, "fabric needs at least one node");
  CANOPUS_CHECK(options_.remote_latency_seconds >= 0.0 &&
                    options_.remote_bandwidth > 0.0,
                "fabric: remote envelope must be non-negative latency and "
                "positive bandwidth");
  for (std::size_t i = 0; i < options_.nodes; ++i) append_node();
  if (options_.eviction_high > 0.0) start_eviction_providers();
}

Fabric::~Fabric() {
  stop_eviction_providers();
  wait_for_migration();
}

Fabric::Node* Fabric::node_ptr(std::size_t i) const {
  std::shared_lock lock(nodes_mu_);
  return i < nodes_.size() ? nodes_[i].get() : nullptr;
}

std::uint32_t Fabric::append_node() {
  auto node = std::make_unique<Node>(node_tiers_, policy_);
  std::uint32_t id = 0;
  {
    std::unique_lock lock(nodes_mu_);
    id = static_cast<std::uint32_t>(nodes_.size());
    node->remote = std::make_unique<NodeRemoteStore>(*this, id);
    node->hierarchy.attach_remote_store(node->remote.get());
    if (per_node_cache_.has_value()) {
      node->hierarchy.attach_block_cache(
          std::make_shared<cache::BlockCache>(*per_node_cache_));
    }
    // A node attached mid-run inherits the tiering listeners, so heat keeps
    // flowing from the moment the rebalance hands it chunks.
    {
      std::scoped_lock hooks(hooks_mu_);
      if (node_access_listener_) {
        node->hierarchy.attach_access_listener(node_access_listener_);
      }
      if (node_move_listener_) {
        node->hierarchy.attach_move_listener(node_move_listener_);
      }
    }
    nodes_.push_back(std::move(node));
  }
  {
    std::scoped_lock lock(provider_mu_);
    if (providers_running_) {
      node_ptr(id)->provider = std::thread([this, id] { provider_loop(id); });
    }
  }
  return id;
}

std::size_t Fabric::node_count() const {
  std::shared_lock lock(nodes_mu_);
  return nodes_.size();
}

storage::StorageHierarchy& Fabric::node(std::size_t i) {
  Node* n = node_ptr(i);
  CANOPUS_CHECK(n != nullptr, "fabric: node index out of range");
  return n->hierarchy;
}

void Fabric::attach_node_caches(const cache::CacheConfig& per_node) {
  {
    std::unique_lock lock(nodes_mu_);
    per_node_cache_ = per_node;
  }
  for (std::size_t i = 0; i < node_count(); ++i) {
    node_ptr(i)->hierarchy.attach_block_cache(
        std::make_shared<cache::BlockCache>(per_node));
  }
}

cache::BlockCache* Fabric::node_cache(std::size_t i) {
  Node* n = node_ptr(i);
  CANOPUS_CHECK(n != nullptr, "fabric: node index out of range");
  return n->hierarchy.block_cache();
}

ImportReport Fabric::import_container(storage::StorageHierarchy& staging,
                                      const std::string& path) {
  const adios::BpReader reader(staging, path);
  std::vector<adios::BlockRecord> records;
  for (const auto& var : reader.variables()) {
    const auto info = reader.inq_var(var);
    records.insert(records.end(), info.blocks.begin(), info.blocks.end());
  }
  // Placement order decides who wins the fast tiers when a node cannot hold
  // its whole shard: primaries (bases first) beat replica copies beat
  // geometry, which is only read when no GeometryCache is provided.
  std::stable_sort(records.begin(), records.end(),
                   [](const adios::BlockRecord& a, const adios::BlockRecord& b) {
                     auto rank = [](const adios::BlockRecord& r) {
                       if (r.kind == adios::BlockKind::kBase) return 0;
                       return sharded_kind(r.kind) ? 1 : 2;
                     };
                     return rank(a) < rank(b);
                   });

  ImportReport report;
  report.blocks = records.size();
  const std::size_t slots = node_count();
  auto each_attached = [&](auto&& fn) {
    for (std::size_t i = 0; i < slots; ++i) {
      Node* n = node_ptr(i);
      if (n != nullptr && !n->detached.load(std::memory_order_relaxed)) fn(*n);
    }
  };

  // The metadata object is tiny and opens every BpReader: every node keeps it.
  const auto meta_key = adios::metadata_key(path);
  util::Bytes meta;
  staging.read(meta_key, meta);
  each_attached([&](Node& n) {
    n.hierarchy.place(meta_key, meta);
    ++report.replicated;
  });
  {
    std::scoped_lock lock(replicated_mu_);
    replicated_keys_.push_back(meta_key);
  }

  util::Bytes bytes;
  for (const auto& r : records) {
    staging.read(r.object_key, bytes);
    if (sharded_kind(r.kind)) {
      const auto owner =
          directory_.assign(r.object_key, r.chunk, r.chunk_count, bytes.size());
      node_ptr(owner)->hierarchy.place(r.object_key, bytes);
      ++report.sharded;
      report.sharded_bytes += bytes.size();
    } else {
      each_attached([&](Node& n) {
        n.hierarchy.place(r.object_key, bytes);
        ++report.replicated;
      });
      std::scoped_lock lock(replicated_mu_);
      replicated_keys_.push_back(r.object_key);
    }
  }

  // Replica pass after every primary is placed (best-effort, like
  // replicate_below: a replica that does not fit is skipped, never fatal).
  if (directory_.active_nodes().size() > 1) {
    for (const auto& r : records) {
      if (!sharded_kind(r.kind)) continue;
      const auto loc = directory_.lookup(r.object_key);
      CANOPUS_ASSERT(loc.has_value() && loc->replica.has_value());
      staging.read(r.object_key, bytes);
      try {
        node_ptr(*loc->replica)
            ->hierarchy.place(
                storage::StorageHierarchy::replica_key(r.object_key), bytes);
        ++report.replicas;
      } catch (const storage::CapacityError&) {
      }
    }
  }
  return report;
}

// --- Elastic topology. ------------------------------------------------------

std::uint32_t Fabric::attach_node(bool background) {
  std::scoped_lock tlock(topology_mu_);
  wait_for_migration();
  const std::uint32_t id = append_node();
  // Seed the read-mostly replicated blocks (metadata, geometry) from any
  // serving peer so the node can open readers before the shard migration
  // lands. Sharded blocks it does not yet own resolve remotely.
  std::vector<std::string> seeds;
  {
    std::scoped_lock lock(replicated_mu_);
    seeds = replicated_keys_;
  }
  if (!seeds.empty()) {
    util::Bytes bytes;
    for (const auto& key : seeds) {
      for (std::size_t i = 0; i < node_count(); ++i) {
        if (i == id) continue;
        Node* peer = node_ptr(i);
        if (peer == nullptr ||
            peer->detached.load(std::memory_order_relaxed) ||
            !peer->alive.load(std::memory_order_relaxed)) {
          continue;
        }
        try {
          peer->hierarchy.read(key, bytes);
          node_ptr(id)->hierarchy.place(key, bytes);
          break;
        } catch (const Error&) {
        }
      }
    }
  }
  RebalancePlan plan = directory_.attach_node(id);
  count_fabric("node_attaches");
  publish_epoch_gauge();
  update_occupancy_gauges();
  if (background) {
    launch_migration(std::move(plan));
  } else {
    MigrationReport report = run_migration(plan);
    report.replicas_repaired += repair_replicas(std::nullopt);
    std::scoped_lock lock(migration_mu_);
    last_migration_ = report;
  }
  return id;
}

MigrationReport Fabric::drain_node(std::uint32_t id) {
  std::scoped_lock tlock(topology_mu_);
  return drain_locked(id);
}

MigrationReport Fabric::drain_locked(std::uint32_t id) {
  Node* n = node_ptr(id);
  CANOPUS_CHECK(n != nullptr && !n->detached.load(std::memory_order_relaxed),
                "fabric: cannot drain node " + std::to_string(id));
  wait_for_migration();
  MigrationReport report = run_migration(directory_.detach_node(id));
  count_fabric("node_drains");
  // Anything that could not move on the first pass (a racing topology edit,
  // a transient fault on the source) gets bounded retries; the node must own
  // nothing before it may stop serving.
  auto owned_by = [&](std::uint32_t node_id) {
    const auto owned = directory_.owned_bytes();
    return node_id < owned.size() ? owned[node_id] : 0;
  };
  for (int round = 0; round < 3 && owned_by(id) > 0; ++round) {
    const MigrationReport retry = run_migration(directory_.plan_rebalance());
    report.chunks_moved += retry.chunks_moved;
    report.bytes_moved += retry.bytes_moved;
    report.failed = retry.failed;
    report.superseded = report.superseded || retry.superseded;
  }
  CANOPUS_CHECK(owned_by(id) == 0,
                "fabric: drain of node " + std::to_string(id) +
                    " left primaries behind (remaining nodes out of room?)");
  report.replicas_repaired += repair_replicas(id);
  publish_epoch_gauge();
  update_occupancy_gauges();
  return report;
}

MigrationReport Fabric::detach_node(std::uint32_t id) {
  std::scoped_lock tlock(topology_mu_);
  Node* n = node_ptr(id);
  CANOPUS_CHECK(n != nullptr && !n->detached.load(std::memory_order_relaxed),
                "fabric: cannot detach node " + std::to_string(id));
  MigrationReport report;
  if (directory_.is_active(id)) report = drain_locked(id);
  n->detached.store(true, std::memory_order_relaxed);
  count_fabric("node_detaches");
  publish_epoch_gauge();
  update_occupancy_gauges();
  return report;
}

MigrationReport Fabric::rebalance() {
  std::scoped_lock tlock(topology_mu_);
  wait_for_migration();
  MigrationReport report = run_migration(directory_.plan_rebalance());
  report.replicas_repaired += repair_replicas(std::nullopt);
  publish_epoch_gauge();
  update_occupancy_gauges();
  {
    std::scoped_lock lock(migration_mu_);
    last_migration_ = report;
  }
  return report;
}

MigrationReport Fabric::wait_for_migration() {
  // Join outside migration_mu_: the worker takes the lock to publish its
  // report, so joining while holding it would deadlock.
  std::thread worker;
  {
    std::scoped_lock lock(migration_mu_);
    worker = std::move(migration_thread_);
  }
  if (worker.joinable()) worker.join();
  std::scoped_lock lock(migration_mu_);
  return last_migration_;
}

bool Fabric::attached(std::size_t i) const {
  Node* n = node_ptr(i);
  return n != nullptr && !n->detached.load(std::memory_order_relaxed);
}

void Fabric::launch_migration(RebalancePlan plan) {
  wait_for_migration();
  std::scoped_lock lock(migration_mu_);
  migration_thread_ = std::thread([this, plan = std::move(plan)] {
    MigrationReport report = run_migration(plan);
    report.replicas_repaired += repair_replicas(std::nullopt);
    update_occupancy_gauges();
    std::scoped_lock inner(migration_mu_);
    last_migration_ = report;
  });
}

MigrationReport Fabric::run_migration(const RebalancePlan& plan) {
  MigrationReport report;
  report.epoch = plan.epoch;
  util::Bytes bytes;
  for (const auto& mv : plan.moves) {
    if (directory_.epoch() != plan.epoch) {
      // A newer topology change owns the remaining moves; its own plan
      // covers everything still mis-placed.
      report.superseded = true;
      break;
    }
    CANOPUS_SPAN("fabric.migrate", {{"from", static_cast<int>(mv.from)},
                                    {"to", static_cast<int>(mv.to)}});
    Node* dst = node_ptr(mv.to);
    CANOPUS_ASSERT(dst != nullptr);
    Node* src = node_ptr(mv.from);
    // Copy: the primary first; a faulting, corrupted, or killed source
    // degrades to the replica copy (PR 1's fallback is the safety net for
    // the copy window).
    bool copied = false;
    if (src != nullptr) {
      try {
        src->hierarchy.read(mv.key, bytes);
        copied = true;
      } catch (const Error&) {
      }
    }
    if (!copied) {
      const auto loc = directory_.lookup(mv.key);
      if (loc.has_value() && loc->replica.has_value()) {
        Node* rep = node_ptr(*loc->replica);
        if (rep != nullptr) {
          try {
            rep->hierarchy.read(
                storage::StorageHierarchy::replica_key(mv.key), bytes);
            copied = true;
          } catch (const Error&) {
          }
        }
      }
    }
    if (!copied) {
      ++report.failed;
      migration_failures_.fetch_add(1, std::memory_order_relaxed);
      count_fabric("migration_failures");
      continue;  // chunk stays with (and is served by) its current owner
    }
    try {
      dst->hierarchy.place(mv.key, bytes);
    } catch (const storage::CapacityError&) {
      ++report.failed;
      migration_failures_.fetch_add(1, std::memory_order_relaxed);
      count_fabric("migration_failures");
      continue;
    }
    // Cutover: reads resolve to the new owner from here on. Then retire the
    // old copy — erase() also invalidates the losing node's cache entries
    // (blob, replica, and decoded aliases), so a post-cutover read can never
    // be served from the stale owner's cache.
    directory_.commit_move(mv.key, mv.to);
    if (src != nullptr) src->hierarchy.erase(mv.key);
    ++report.chunks_moved;
    report.bytes_moved += bytes.size();
    migrations_.fetch_add(1, std::memory_order_relaxed);
    count_fabric("migrations");
  }
  return report;
}

std::size_t Fabric::repair_replicas(std::optional<std::uint32_t> retired) {
  if (directory_.active_nodes().size() <= 1) return 0;
  std::size_t repaired = 0;
  util::Bytes bytes;
  const std::size_t slots = node_count();
  for (const auto& entry : directory_.snapshot()) {
    const auto loc = directory_.lookup(entry.key);
    if (!loc.has_value()) continue;
    const auto rkey = storage::StorageHierarchy::replica_key(entry.key);
    // Drop stale copies first (the old ring successor, and everything a
    // retired node still holds), then make sure the current successor has
    // one. Both passes are idempotent.
    for (std::size_t i = 0; i < slots; ++i) {
      if (loc->replica.has_value() && i == *loc->replica) continue;
      if (i == loc->owner) continue;
      Node* other = node_ptr(i);
      if (other != nullptr) other->hierarchy.erase(rkey);
    }
    if (retired.has_value()) {
      Node* old = node_ptr(*retired);
      if (old != nullptr && *retired != loc->owner) old->hierarchy.erase(entry.key);
    }
    if (!loc->replica.has_value()) continue;
    Node* rep = node_ptr(*loc->replica);
    if (rep == nullptr || rep->detached.load(std::memory_order_relaxed)) {
      continue;
    }
    if (rep->hierarchy.find(rkey).has_value()) continue;
    Node* owner = node_ptr(loc->owner);
    if (owner == nullptr) continue;
    try {
      owner->hierarchy.read(entry.key, bytes);
      rep->hierarchy.place(rkey, bytes);
      ++repaired;
    } catch (const Error&) {
      // Best-effort, like replicate_below: a replica is opportunistic.
    }
  }
  if (repaired > 0) count_fabric("replicas_repaired", repaired);
  return repaired;
}

void Fabric::publish_epoch_gauge() const {
  if (!obs::enabled()) return;
  obs::MetricsRegistry::global()
      .gauge("topology.epoch")
      .set(static_cast<std::int64_t>(directory_.epoch()));
}

// --- Failure simulation. ----------------------------------------------------

void Fabric::kill_node(std::size_t i) {
  Node* n = node_ptr(i);
  CANOPUS_CHECK(n != nullptr, "fabric: node index out of range");
  n->alive.store(false, std::memory_order_relaxed);
  // Dead storage, not just dead routing: every tier read on the node now
  // fails, so a request that raced the alive check still degrades to the
  // replica owner instead of being served by a "dead" node.
  auto injector = std::make_shared<storage::FaultInjector>(
      0x6b696c6cull ^ static_cast<std::uint64_t>(i));
  storage::FaultProfile profile;
  profile.read_error = 1.0;
  for (std::size_t t = 0; t < n->hierarchy.tier_count(); ++t) {
    injector->set_profile(t, profile);
  }
  n->hierarchy.attach_fault_injector(std::move(injector));
  count_fabric("node_kills");
}

void Fabric::revive_node(std::size_t i) {
  Node* n = node_ptr(i);
  CANOPUS_CHECK(n != nullptr, "fabric: node index out of range");
  n->hierarchy.attach_fault_injector(nullptr);
  n->alive.store(true, std::memory_order_relaxed);
}

bool Fabric::alive(std::size_t i) const {
  Node* n = node_ptr(i);
  CANOPUS_CHECK(n != nullptr, "fabric: node index out of range");
  return n->alive.load(std::memory_order_relaxed);
}

std::uint32_t Fabric::route_query(const std::string& path,
                                  const std::string& var) const {
  const auto per_node = directory_.owned_bytes_for_prefix(path + "/" + var + "/");
  std::optional<std::uint32_t> best;
  std::size_t best_bytes = 0;
  const std::size_t slots = node_count();
  for (std::size_t i = 0; i < slots; ++i) {
    // Draining and detached nodes are never routing targets: planning always
    // follows the live topology (the directory's active set).
    if (!alive(i) || !directory_.is_active(static_cast<std::uint32_t>(i))) {
      continue;
    }
    const std::size_t owned = i < per_node.size() ? per_node[i] : 0;
    if (!best.has_value() || owned > best_bytes) {
      best = static_cast<std::uint32_t>(i);
      best_bytes = owned;
    }
  }
  return best.value_or(0);
}

storage::IoResult Fabric::remote_read_from(std::size_t from_node,
                                           const std::string& key,
                                           util::Bytes& out) {
  bool crossed_network = false;
  return remote_read_one(from_node, key, out, /*charge_latency=*/true,
                         &crossed_network);
}

std::vector<storage::BatchReadResult> Fabric::remote_read_batch_from(
    std::size_t from_node, const std::vector<std::string>& keys) {
  std::vector<storage::BatchReadResult> out(keys.size());
  bool latency_paid = false;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    bool crossed_network = false;
    try {
      out[i].io = remote_read_one(from_node, keys[i], out[i].bytes,
                                  /*charge_latency=*/!latency_paid,
                                  &crossed_network);
    } catch (...) {
      out[i].error = std::current_exception();
    }
    // A failed op never charged the envelope, so it doesn't count as paying.
    latency_paid = latency_paid || crossed_network;
  }
  return out;
}

storage::IoResult Fabric::remote_read_one(std::size_t from_node,
                                          const std::string& key,
                                          util::Bytes& out, bool charge_latency,
                                          bool* crossed_network) {
  CANOPUS_SPAN("fabric.remote_read", {{"node", static_cast<int>(from_node)}});
  auto loc = directory_.lookup(key);
  if (!loc.has_value()) {
    failed_remote_reads_.fetch_add(1, std::memory_order_relaxed);
    count_fabric("failed_remote_reads");
    throw storage::TierIoError("fabric: no directory entry for '" + key + "'");
  }
  const auto envelope = [&](storage::IoResult io, std::size_t bytes) {
    io.sim_seconds += (charge_latency ? options_.remote_latency_seconds : 0.0) +
                      static_cast<double>(bytes) / options_.remote_bandwidth;
    *crossed_network = true;
    return io;
  };
  // Owner resolution with one epoch-aware retry: a migration cutover can
  // retire the owner's copy between our lookup and the read. Re-resolving
  // against the live directory finds the new owner; only when the owner is
  // genuinely unreachable do we degrade to the replica.
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (loc->owner != from_node) {
      Node* owner = node_ptr(loc->owner);
      if (owner != nullptr &&
          owner->alive.load(std::memory_order_relaxed)) {
        try {
          auto io = owner->hierarchy.read(key, out);
          remote_reads_.fetch_add(1, std::memory_order_relaxed);
          count_fabric("remote_reads");
          return envelope(io, out.size());
        } catch (const Error&) {
          // Owner unreachable (killed mid-flight, or its copy faulted out
          // after retries): re-resolve, then degrade to the replica owner.
        }
      }
    }
    const auto fresh = directory_.lookup(key);
    if (!fresh.has_value() || fresh->owner == loc->owner) break;
    loc = fresh;  // ownership moved under us — retry against the new owner
  }
  if (loc->replica.has_value()) {
    Node* rep = node_ptr(*loc->replica);
    if (rep != nullptr && rep->alive.load(std::memory_order_relaxed)) {
      const std::size_t r = *loc->replica;
      try {
        auto io = rep->hierarchy.read(
            storage::StorageHierarchy::replica_key(key), out);
        io.from_replica = true;
        replica_fallbacks_.fetch_add(1, std::memory_order_relaxed);
        count_fabric("replica_fallbacks");
        return r == from_node ? io : envelope(io, out.size());
      } catch (const Error&) {
      }
    }
  }
  failed_remote_reads_.fetch_add(1, std::memory_order_relaxed);
  count_fabric("failed_remote_reads");
  throw storage::TierIoError("fabric: no reachable copy of '" + key +
                             "' (owner node " + std::to_string(loc->owner) +
                             " unavailable)");
}

void Fabric::note_local_hit(std::size_t node, const std::string& key) {
  (void)node;
  (void)key;
  local_hits_.fetch_add(1, std::memory_order_relaxed);
  count_fabric("local_hits");
}

double Fabric::estimated_remote_cost(std::size_t from_node,
                                     const std::string& key,
                                     std::size_t bytes) const {
  const double envelope =
      options_.remote_latency_seconds +
      static_cast<double>(bytes) / options_.remote_bandwidth;
  if (const auto loc = directory_.lookup(key)) {
    Node* owner = node_ptr(loc->owner);
    if (loc->owner != from_node && owner != nullptr &&
        owner->alive.load(std::memory_order_relaxed)) {
      const auto& h = owner->hierarchy;
      if (const auto t = h.find(key)) {
        return h.tier(*t).read_cost(bytes) + envelope;
      }
    }
    if (loc->replica.has_value()) {
      Node* rep = node_ptr(*loc->replica);
      if (rep != nullptr && rep->alive.load(std::memory_order_relaxed)) {
        const std::size_t r = *loc->replica;
        const auto& h = rep->hierarchy;
        const auto rkey = storage::StorageHierarchy::replica_key(key);
        if (const auto t = h.find(rkey)) {
          return h.tier(*t).read_cost(bytes) +
                 (r == from_node ? 0.0 : envelope);
        }
      }
    }
  }
  // Unknown or unreachable key: pessimistic — a slowest-tier fetch plus the
  // network hop, so planning never undercounts a degraded resolution.
  const auto& h = node_ptr(from_node)->hierarchy;
  return h.tier(h.tier_count() - 1).read_cost(bytes) + envelope;
}

Fabric::Stats Fabric::stats() const {
  Stats s;
  s.local_hits = local_hits_.load(std::memory_order_relaxed);
  s.remote_reads = remote_reads_.load(std::memory_order_relaxed);
  s.replica_fallbacks = replica_fallbacks_.load(std::memory_order_relaxed);
  s.failed_remote_reads = failed_remote_reads_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.migrations = migrations_.load(std::memory_order_relaxed);
  s.migration_failures = migration_failures_.load(std::memory_order_relaxed);
  return s;
}

void Fabric::update_occupancy_gauges() const {
  if (!obs::enabled()) return;
  auto& registry = obs::MetricsRegistry::global();
  const std::size_t slots = node_count();
  for (std::size_t i = 0; i < slots; ++i) {
    const auto& h = node_ptr(i)->hierarchy;
    for (std::size_t t = 0; t < h.tier_count(); ++t) {
      const auto [used, capacity] = h.tier_usage(t);
      (void)capacity;
      registry
          .gauge("fabric.node" + std::to_string(i) + ".tier" +
                 std::to_string(t) + "_used_bytes")
          .set(static_cast<std::int64_t>(used));
    }
  }
  publish_epoch_gauge();
}

void Fabric::start_eviction_providers() {
  {
    std::scoped_lock lock(provider_mu_);
    if (providers_running_) return;
    stop_providers_ = false;
    providers_running_ = true;
  }
  const std::size_t slots = node_count();
  for (std::size_t i = 0; i < slots; ++i) {
    node_ptr(i)->provider = std::thread([this, i] { provider_loop(i); });
  }
}

void Fabric::stop_eviction_providers() {
  {
    std::scoped_lock lock(provider_mu_);
    if (!providers_running_) return;
    stop_providers_ = true;
  }
  provider_cv_.notify_all();
  // The table only grows, so re-reading node_count() each iteration also
  // joins providers of nodes attached after the loop started.
  for (std::size_t i = 0; i < node_count(); ++i) {
    Node* n = node_ptr(i);
    if (n->provider.joinable()) n->provider.join();
  }
  std::scoped_lock lock(provider_mu_);
  providers_running_ = false;
}

void Fabric::provider_loop(std::size_t node_index) {
  std::unique_lock lock(provider_mu_);
  for (;;) {
    provider_cv_.wait_for(
        lock, std::chrono::duration<double>(options_.eviction_interval_seconds),
        [this] { return stop_providers_; });
    if (stop_providers_) return;
    lock.unlock();
    tick_eviction(node_index);
    lock.lock();
  }
}

void Fabric::tick_eviction(std::size_t node_index) {
  Node* n = node_ptr(node_index);
  if (n == nullptr || n->detached.load(std::memory_order_relaxed)) return;
  auto& h = n->hierarchy;
  update_occupancy_gauges();
  if (h.tier_count() < 2) return;
  const auto [used, capacity] = h.tier_usage(0);
  if (capacity == 0 ||
      static_cast<double>(used) <= options_.eviction_high * capacity) {
    return;
  }
  const double low =
      std::clamp(options_.eviction_low, 0.0, options_.eviction_high);
  const auto target_free =
      static_cast<std::size_t>((1.0 - low) * static_cast<double>(capacity));
  EvictionDelegate delegate;
  {
    std::scoped_lock hooks(hooks_mu_);
    delegate = eviction_delegate_;
  }
  try {
    if (delegate) {
      // Heat-aware victim selection (the tier advisor's coldest-first
      // policy) instead of the built-in LRU demotion.
      const std::size_t demoted = delegate(node_index, h, target_free);
      if (demoted > 0) {
        evictions_.fetch_add(demoted, std::memory_order_relaxed);
        count_fabric("evictions", demoted);
      }
      return;
    }
    const auto demoted = h.make_room(0, target_free);
    if (!demoted.empty()) {
      evictions_.fetch_add(demoted.size(), std::memory_order_relaxed);
      count_fabric("evictions", demoted.size());
    }
  } catch (const Error&) {
    // Lower tiers full or nothing demotable; leave it for the next tick.
  }
}

void Fabric::set_eviction_delegate(EvictionDelegate delegate) {
  std::scoped_lock lock(hooks_mu_);
  eviction_delegate_ = std::move(delegate);
}

void Fabric::set_node_access_listener(
    storage::StorageHierarchy::AccessListener l) {
  {
    std::scoped_lock lock(hooks_mu_);
    node_access_listener_ = l;
  }
  for (std::size_t i = 0; i < node_count(); ++i) {
    node_ptr(i)->hierarchy.attach_access_listener(l);
  }
}

void Fabric::set_node_move_listener(storage::StorageHierarchy::MoveListener l) {
  {
    std::scoped_lock lock(hooks_mu_);
    node_move_listener_ = l;
  }
  for (std::size_t i = 0; i < node_count(); ++i) {
    node_ptr(i)->hierarchy.attach_move_listener(l);
  }
}

}  // namespace canopus::fabric
