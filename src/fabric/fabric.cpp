#include "fabric/fabric.hpp"

#include <algorithm>
#include <chrono>

#include "adios/bp.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "storage/tier.hpp"
#include "util/assert.hpp"

namespace canopus::fabric {

namespace {

void count_fabric(const char* what, std::uint64_t n = 1) {
  if (obs::enabled()) {
    obs::MetricsRegistry::global()
        .counter(std::string("fabric.") + what)
        .add(n);
  }
}

bool sharded_kind(adios::BlockKind kind) {
  return kind == adios::BlockKind::kBase || kind == adios::BlockKind::kDelta ||
         kind == adios::BlockKind::kData;
}

}  // namespace

Fabric::Fabric(FabricOptions options, std::vector<storage::TierSpec> node_tiers,
               storage::PlacementPolicy policy)
    : options_(options), directory_(options.nodes, options.partition) {
  CANOPUS_CHECK(options_.nodes >= 1, "fabric needs at least one node");
  CANOPUS_CHECK(options_.remote_latency_seconds >= 0.0 &&
                    options_.remote_bandwidth > 0.0,
                "fabric: remote envelope must be non-negative latency and "
                "positive bandwidth");
  nodes_.reserve(options_.nodes);
  for (std::size_t i = 0; i < options_.nodes; ++i) {
    nodes_.push_back(std::make_unique<Node>(node_tiers, policy));
    nodes_[i]->remote = std::make_unique<NodeRemoteStore>(*this, i);
    nodes_[i]->hierarchy.attach_remote_store(nodes_[i]->remote.get());
  }
  if (options_.eviction_high > 0.0) start_eviction_providers();
}

Fabric::~Fabric() { stop_eviction_providers(); }

storage::StorageHierarchy& Fabric::node(std::size_t i) {
  CANOPUS_CHECK(i < nodes_.size(), "fabric: node index out of range");
  return nodes_[i]->hierarchy;
}

void Fabric::attach_node_caches(const cache::CacheConfig& per_node) {
  for (auto& n : nodes_) {
    n->hierarchy.attach_block_cache(std::make_shared<cache::BlockCache>(per_node));
  }
}

cache::BlockCache* Fabric::node_cache(std::size_t i) {
  CANOPUS_CHECK(i < nodes_.size(), "fabric: node index out of range");
  return nodes_[i]->hierarchy.block_cache();
}

ImportReport Fabric::import_container(storage::StorageHierarchy& staging,
                                      const std::string& path) {
  const adios::BpReader reader(staging, path);
  std::vector<adios::BlockRecord> records;
  for (const auto& var : reader.variables()) {
    const auto info = reader.inq_var(var);
    records.insert(records.end(), info.blocks.begin(), info.blocks.end());
  }
  // Placement order decides who wins the fast tiers when a node cannot hold
  // its whole shard: primaries (bases first) beat replica copies beat
  // geometry, which is only read when no GeometryCache is provided.
  std::stable_sort(records.begin(), records.end(),
                   [](const adios::BlockRecord& a, const adios::BlockRecord& b) {
                     auto rank = [](const adios::BlockRecord& r) {
                       if (r.kind == adios::BlockKind::kBase) return 0;
                       return sharded_kind(r.kind) ? 1 : 2;
                     };
                     return rank(a) < rank(b);
                   });

  ImportReport report;
  report.blocks = records.size();

  // The metadata object is tiny and opens every BpReader: every node keeps it.
  const auto meta_key = adios::metadata_key(path);
  util::Bytes meta;
  staging.read(meta_key, meta);
  for (auto& n : nodes_) {
    n->hierarchy.place(meta_key, meta);
    ++report.replicated;
  }

  util::Bytes bytes;
  for (const auto& r : records) {
    staging.read(r.object_key, bytes);
    if (sharded_kind(r.kind)) {
      const auto owner =
          directory_.assign(r.object_key, r.chunk, r.chunk_count, bytes.size());
      nodes_[owner]->hierarchy.place(r.object_key, bytes);
      ++report.sharded;
      report.sharded_bytes += bytes.size();
    } else {
      for (auto& n : nodes_) {
        n->hierarchy.place(r.object_key, bytes);
        ++report.replicated;
      }
    }
  }

  // Replica pass after every primary is placed (best-effort, like
  // replicate_below: a replica that does not fit is skipped, never fatal).
  if (nodes_.size() > 1) {
    for (const auto& r : records) {
      if (!sharded_kind(r.kind)) continue;
      const auto loc = directory_.lookup(r.object_key);
      CANOPUS_ASSERT(loc.has_value() && loc->replica.has_value());
      staging.read(r.object_key, bytes);
      try {
        nodes_[*loc->replica]->hierarchy.place(
            storage::StorageHierarchy::replica_key(r.object_key), bytes);
        ++report.replicas;
      } catch (const storage::CapacityError&) {
      }
    }
  }
  return report;
}

void Fabric::kill_node(std::size_t i) {
  CANOPUS_CHECK(i < nodes_.size(), "fabric: node index out of range");
  nodes_[i]->alive.store(false, std::memory_order_relaxed);
  // Dead storage, not just dead routing: every tier read on the node now
  // fails, so a request that raced the alive check still degrades to the
  // replica owner instead of being served by a "dead" node.
  auto injector = std::make_shared<storage::FaultInjector>(
      0x6b696c6cull ^ static_cast<std::uint64_t>(i));
  storage::FaultProfile profile;
  profile.read_error = 1.0;
  for (std::size_t t = 0; t < nodes_[i]->hierarchy.tier_count(); ++t) {
    injector->set_profile(t, profile);
  }
  nodes_[i]->hierarchy.attach_fault_injector(std::move(injector));
  count_fabric("node_kills");
}

void Fabric::revive_node(std::size_t i) {
  CANOPUS_CHECK(i < nodes_.size(), "fabric: node index out of range");
  nodes_[i]->hierarchy.attach_fault_injector(nullptr);
  nodes_[i]->alive.store(true, std::memory_order_relaxed);
}

bool Fabric::alive(std::size_t i) const {
  CANOPUS_CHECK(i < nodes_.size(), "fabric: node index out of range");
  return nodes_[i]->alive.load(std::memory_order_relaxed);
}

std::uint32_t Fabric::route_query(const std::string& path,
                                  const std::string& var) const {
  const auto per_node = directory_.owned_bytes_for_prefix(path + "/" + var + "/");
  std::optional<std::uint32_t> best;
  std::size_t best_bytes = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!alive(i)) continue;
    const std::size_t owned = i < per_node.size() ? per_node[i] : 0;
    if (!best.has_value() || owned > best_bytes) {
      best = static_cast<std::uint32_t>(i);
      best_bytes = owned;
    }
  }
  return best.value_or(0);
}

storage::IoResult Fabric::remote_read_from(std::size_t from_node,
                                           const std::string& key,
                                           util::Bytes& out) {
  bool crossed_network = false;
  return remote_read_one(from_node, key, out, /*charge_latency=*/true,
                         &crossed_network);
}

std::vector<storage::BatchReadResult> Fabric::remote_read_batch_from(
    std::size_t from_node, const std::vector<std::string>& keys) {
  std::vector<storage::BatchReadResult> out(keys.size());
  bool latency_paid = false;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    bool crossed_network = false;
    try {
      out[i].io = remote_read_one(from_node, keys[i], out[i].bytes,
                                  /*charge_latency=*/!latency_paid,
                                  &crossed_network);
    } catch (...) {
      out[i].error = std::current_exception();
    }
    // A failed op never charged the envelope, so it doesn't count as paying.
    latency_paid = latency_paid || crossed_network;
  }
  return out;
}

storage::IoResult Fabric::remote_read_one(std::size_t from_node,
                                          const std::string& key,
                                          util::Bytes& out, bool charge_latency,
                                          bool* crossed_network) {
  CANOPUS_SPAN("fabric.remote_read", {{"node", static_cast<int>(from_node)}});
  const auto loc = directory_.lookup(key);
  if (!loc.has_value()) {
    failed_remote_reads_.fetch_add(1, std::memory_order_relaxed);
    count_fabric("failed_remote_reads");
    throw storage::TierIoError("fabric: no directory entry for '" + key + "'");
  }
  const auto envelope = [&](storage::IoResult io, std::size_t bytes) {
    io.sim_seconds += (charge_latency ? options_.remote_latency_seconds : 0.0) +
                      static_cast<double>(bytes) / options_.remote_bandwidth;
    *crossed_network = true;
    return io;
  };
  if (loc->owner != from_node &&
      nodes_[loc->owner]->alive.load(std::memory_order_relaxed)) {
    try {
      auto io = nodes_[loc->owner]->hierarchy.read(key, out);
      remote_reads_.fetch_add(1, std::memory_order_relaxed);
      count_fabric("remote_reads");
      return envelope(io, out.size());
    } catch (const Error&) {
      // Owner unreachable (killed mid-flight, or its copy faulted out after
      // retries): degrade to the replica owner.
    }
  }
  if (loc->replica.has_value() &&
      nodes_[*loc->replica]->alive.load(std::memory_order_relaxed)) {
    const std::size_t r = *loc->replica;
    try {
      auto io = nodes_[r]->hierarchy.read(
          storage::StorageHierarchy::replica_key(key), out);
      io.from_replica = true;
      replica_fallbacks_.fetch_add(1, std::memory_order_relaxed);
      count_fabric("replica_fallbacks");
      return r == from_node ? io : envelope(io, out.size());
    } catch (const Error&) {
    }
  }
  failed_remote_reads_.fetch_add(1, std::memory_order_relaxed);
  count_fabric("failed_remote_reads");
  throw storage::TierIoError("fabric: no reachable copy of '" + key +
                             "' (owner node " + std::to_string(loc->owner) +
                             " unavailable)");
}

void Fabric::note_local_hit(std::size_t node, const std::string& key) {
  (void)node;
  (void)key;
  local_hits_.fetch_add(1, std::memory_order_relaxed);
  count_fabric("local_hits");
}

double Fabric::estimated_remote_cost(std::size_t from_node,
                                     const std::string& key,
                                     std::size_t bytes) const {
  const double envelope =
      options_.remote_latency_seconds +
      static_cast<double>(bytes) / options_.remote_bandwidth;
  if (const auto loc = directory_.lookup(key)) {
    if (loc->owner != from_node &&
        nodes_[loc->owner]->alive.load(std::memory_order_relaxed)) {
      const auto& h = nodes_[loc->owner]->hierarchy;
      if (const auto t = h.find(key)) {
        return h.tier(*t).read_cost(bytes) + envelope;
      }
    }
    if (loc->replica.has_value() &&
        nodes_[*loc->replica]->alive.load(std::memory_order_relaxed)) {
      const std::size_t r = *loc->replica;
      const auto& h = nodes_[r]->hierarchy;
      const auto rkey = storage::StorageHierarchy::replica_key(key);
      if (const auto t = h.find(rkey)) {
        return h.tier(*t).read_cost(bytes) +
               (r == from_node ? 0.0 : envelope);
      }
    }
  }
  // Unknown or unreachable key: pessimistic — a slowest-tier fetch plus the
  // network hop, so planning never undercounts a degraded resolution.
  const auto& h = nodes_[from_node]->hierarchy;
  return h.tier(h.tier_count() - 1).read_cost(bytes) + envelope;
}

Fabric::Stats Fabric::stats() const {
  Stats s;
  s.local_hits = local_hits_.load(std::memory_order_relaxed);
  s.remote_reads = remote_reads_.load(std::memory_order_relaxed);
  s.replica_fallbacks = replica_fallbacks_.load(std::memory_order_relaxed);
  s.failed_remote_reads = failed_remote_reads_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  return s;
}

void Fabric::update_occupancy_gauges() const {
  if (!obs::enabled()) return;
  auto& registry = obs::MetricsRegistry::global();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const auto& h = nodes_[i]->hierarchy;
    for (std::size_t t = 0; t < h.tier_count(); ++t) {
      const auto [used, capacity] = h.tier_usage(t);
      (void)capacity;
      registry
          .gauge("fabric.node" + std::to_string(i) + ".tier" +
                 std::to_string(t) + "_used_bytes")
          .set(static_cast<std::int64_t>(used));
    }
  }
}

void Fabric::start_eviction_providers() {
  {
    std::scoped_lock lock(provider_mu_);
    if (providers_running_) return;
    stop_providers_ = false;
    providers_running_ = true;
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i]->provider = std::thread([this, i] { provider_loop(i); });
  }
}

void Fabric::stop_eviction_providers() {
  {
    std::scoped_lock lock(provider_mu_);
    if (!providers_running_) return;
    stop_providers_ = true;
  }
  provider_cv_.notify_all();
  for (auto& n : nodes_) {
    if (n->provider.joinable()) n->provider.join();
  }
  std::scoped_lock lock(provider_mu_);
  providers_running_ = false;
}

void Fabric::provider_loop(std::size_t node_index) {
  std::unique_lock lock(provider_mu_);
  for (;;) {
    provider_cv_.wait_for(
        lock, std::chrono::duration<double>(options_.eviction_interval_seconds),
        [this] { return stop_providers_; });
    if (stop_providers_) return;
    lock.unlock();
    tick_eviction(node_index);
    lock.lock();
  }
}

void Fabric::tick_eviction(std::size_t node_index) {
  auto& h = nodes_[node_index]->hierarchy;
  update_occupancy_gauges();
  if (h.tier_count() < 2) return;
  const auto [used, capacity] = h.tier_usage(0);
  if (capacity == 0 ||
      static_cast<double>(used) <= options_.eviction_high * capacity) {
    return;
  }
  const double low =
      std::clamp(options_.eviction_low, 0.0, options_.eviction_high);
  const auto target_free =
      static_cast<std::size_t>((1.0 - low) * static_cast<double>(capacity));
  try {
    const auto demoted = h.make_room(0, target_free);
    if (!demoted.empty()) {
      evictions_.fetch_add(demoted.size(), std::memory_order_relaxed);
      count_fabric("evictions", demoted.size());
    }
  } catch (const Error&) {
    // Lower tiers full or nothing demotable; leave it for the next tick.
  }
}

}  // namespace canopus::fabric
