// Pipeline's cluster control plane. These members are declared in
// core/pipeline.hpp but defined here in the fabric module (which links
// against core) so that core itself never references fabric symbols —
// the same layering trick as serve/pipeline_serve.cpp.

#include <utility>

#include "core/pipeline.hpp"
#include "fabric/chunk_directory.hpp"
#include "fabric/fabric.hpp"

namespace canopus {

namespace {

Status no_fabric(const char* entry_point) {
  return Status::failure(
      StatusCode::kInvalidArgument,
      std::string(entry_point) +
          ": no fabric attached (call Pipeline::attach_fabric first)");
}

/// Folds a completed migration into the facade's Status vocabulary:
/// kRetried when a newer topology change superseded the plan mid-run (the
/// successor plan covers the rest), kIoError when moves were abandoned
/// (unreadable source or full destination), kOk otherwise.
Status status_from_migration(const fabric::MigrationReport& report) {
  if (report.failed > 0) {
    return Status::failure(
        StatusCode::kIoError,
        std::to_string(report.failed) + " of " +
            std::to_string(report.failed + report.chunks_moved) +
            " chunk move(s) abandoned (no readable copy or no room on the "
            "new owner)");
  }
  if (report.superseded) {
    Status s;
    s.code = StatusCode::kRetried;
    s.detail = "migration superseded by a newer topology change at epoch " +
               std::to_string(report.epoch);
    return s;
  }
  return Status::success();
}

}  // namespace

Status Pipeline::attach_fabric(fabric::Fabric* fabric) {
  std::scoped_lock lock(fabric_mu_);
  fabric_ = fabric;
  // Tell the scheduler (if it exists yet) to re-route; when it is created
  // later, query_scheduler() reads fabric_ under the same mutex instead.
  if (on_fabric_change_) on_fabric_change_(fabric);
  return Status::success();
}

fabric::Fabric* Pipeline::serving_fabric() const {
  std::scoped_lock lock(fabric_mu_);
  return fabric_;
}

Status Pipeline::attach_node(std::uint32_t* id) {
  fabric::Fabric* f = serving_fabric();
  if (f == nullptr) return no_fabric("attach_node");
  try {
    const std::uint32_t node = f->attach_node(/*background=*/true);
    if (id != nullptr) *id = node;
    return Status::success();
  } catch (...) {
    return status_from_current_exception(StatusCode::kInvalidArgument);
  }
}

Status Pipeline::drain_node(std::uint32_t id) {
  fabric::Fabric* f = serving_fabric();
  if (f == nullptr) return no_fabric("drain_node");
  try {
    return status_from_migration(f->drain_node(id));
  } catch (...) {
    // Draining the last active node (or an unknown/detached id) is a caller
    // bug, reported as such instead of aborting.
    return status_from_current_exception(StatusCode::kInvalidArgument);
  }
}

Status Pipeline::detach_node(std::uint32_t id) {
  fabric::Fabric* f = serving_fabric();
  if (f == nullptr) return no_fabric("detach_node");
  try {
    return status_from_migration(f->detach_node(id));
  } catch (...) {
    return status_from_current_exception(StatusCode::kInvalidArgument);
  }
}

Status Pipeline::rebalance() {
  fabric::Fabric* f = serving_fabric();
  if (f == nullptr) return no_fabric("rebalance");
  try {
    return status_from_migration(f->rebalance());
  } catch (...) {
    return status_from_current_exception(StatusCode::kInternal);
  }
}

Status Pipeline::wait_for_rebalance() {
  fabric::Fabric* f = serving_fabric();
  if (f == nullptr) return no_fabric("wait_for_rebalance");
  try {
    return status_from_migration(f->wait_for_migration());
  } catch (...) {
    return status_from_current_exception(StatusCode::kInternal);
  }
}

Topology Pipeline::topology() const {
  Topology topo;
  fabric::Fabric* f = serving_fabric();
  if (f == nullptr) {
    // Single-node deployment: one implicit node over the pipeline's own
    // hierarchy, epoch 0 (the topology cannot change without a fabric).
    Topology::Node n;
    for (std::size_t t = 0; t < hierarchy_->tier_count(); ++t) {
      n.tiers.push_back(hierarchy_->tier(t).spec().name);
      n.used_bytes += hierarchy_->tier(t).used_bytes();
    }
    topo.nodes.push_back(std::move(n));
    return topo;
  }

  topo.epoch = f->topology_epoch();
  topo.migrations = f->stats().migrations;
  const auto entries = f->directory().snapshot();
  topo.chunk_groups = entries.size();
  const std::size_t count = f->node_count();
  topo.nodes.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    Topology::Node& n = topo.nodes[i];
    n.id = static_cast<std::uint32_t>(i);
    n.alive = f->alive(i);
    n.active = f->attached(i) &&
               f->directory().is_active(static_cast<std::uint32_t>(i));
    const storage::StorageHierarchy& h = f->node(i);
    for (std::size_t t = 0; t < h.tier_count(); ++t) {
      n.tiers.push_back(h.tier(t).spec().name);
      n.used_bytes += h.tier(t).used_bytes();
    }
  }
  for (const auto& entry : entries) {
    if (entry.owner < topo.nodes.size()) {
      topo.nodes[entry.owner].owned_bytes += entry.bytes;
    }
  }
  return topo;
}

}  // namespace canopus
