#include "core/campaign.hpp"

#include <mutex>
#include <optional>

#include "adios/bp.hpp"
#include "compress/codec.hpp"
#include "core/delta.hpp"
#include "mesh/cascade.hpp"
#include "util/assert.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace canopus::core {

namespace {

std::optional<std::uint32_t> level_tier_hint(
    const RefactorConfig& config, const storage::StorageHierarchy& hierarchy,
    std::uint32_t level, std::size_t nbytes) {
  if (!config.tiered_placement) return std::nullopt;
  const std::size_t want =
      std::min(hierarchy.tier_count() - 1,
               static_cast<std::size_t>(config.levels - 1 - level));
  if (hierarchy.tier(want).fits(nbytes)) return static_cast<std::uint32_t>(want);
  return std::nullopt;
}

/// Everything one timestep produces, compressed off the writer thread.
struct TimestepProducts {
  util::Bytes base;
  std::vector<util::Bytes> deltas;  // index l = delta^{l-(l+1)}
};

}  // namespace

std::string timestep_var(const std::string& var, std::size_t step) {
  return var + "/t" + std::to_string(step);
}

CampaignReport write_variable_group(
    storage::StorageHierarchy& hierarchy, const std::string& path,
    const std::string& geometry_var, const mesh::TriMesh& mesh,
    const std::vector<std::pair<std::string, mesh::Field>>& variables,
    const CampaignConfig& config) {
  CANOPUS_CHECK(!variables.empty(), "variable group needs at least one member");
  CANOPUS_CHECK(config.refactor.decimate.priority ==
                    mesh::EdgePriority::kShortestFirst,
                "campaign replay requires the shortest-first edge priority");
  for (const auto& [name, f] : variables) {
    CANOPUS_CHECK(f.size() == mesh.vertex_count(),
                  "variable group: field '" + name + "' does not match the mesh");
  }
  const auto& rc = config.refactor;
  const std::size_t N = rc.levels;

  CampaignReport report;
  report.timesteps = variables.size();
  report.raw_bytes = variables.size() * mesh.vertex_count() * sizeof(double);

  // ---- One-time geometry pipeline. ---------------------------------------
  util::WallTimer geometry_timer;
  mesh::CascadeOptions copt;
  copt.levels = N;
  copt.step = rc.step;
  copt.decimate = rc.decimate;
  std::vector<mesh::DecimateResult> recipes;
  const auto cascade =
      mesh::build_cascade(mesh, variables[0].second, copt, &recipes);

  std::vector<VertexMapping> mappings;  // mappings[l]: level l from level l+1
  for (std::size_t l = 0; l + 1 < N; ++l) {
    mappings.push_back(
        build_mapping(cascade.levels[l].mesh, cascade.levels[l + 1].mesh));
  }
  report.geometry_seconds = geometry_timer.seconds();

  adios::BpWriter writer(hierarchy, path);
  writer.set_attribute("levels", std::to_string(N));
  writer.set_attribute("codec", rc.codec);
  writer.set_attribute("estimate", to_string(rc.estimate));
  writer.set_attribute("group_size", std::to_string(variables.size()));

  for (std::size_t l = 0; l < N; ++l) {
    util::ByteWriter bytes;
    cascade.levels[l].mesh.serialize(bytes);
    const auto level = static_cast<std::uint32_t>(l);
    const auto t = writer.write_opaque(
        geometry_var, adios::BlockKind::kMesh, level, bytes.view(),
        level_tier_hint(rc, hierarchy, level, bytes.size()));
    report.io_sim_seconds += t.io_sim_seconds;
    report.geometry_bytes += t.bytes_written;
  }
  for (std::size_t l = 0; l + 1 < N; ++l) {
    util::ByteWriter bytes;
    mappings[l].serialize(bytes);
    const auto level = static_cast<std::uint32_t>(l);
    const auto t = writer.write_opaque(
        geometry_var, adios::BlockKind::kMapping, level, bytes.view(),
        level_tier_hint(rc, hierarchy, level, bytes.size()));
    report.io_sim_seconds += t.io_sim_seconds;
    report.geometry_bytes += t.bytes_written;
  }

  // ---- Per-timestep refactoring, fanned out on the pool. -----------------
  util::WallTimer refactor_timer;
  std::vector<TimestepProducts> products(variables.size());
  util::ThreadPool pool(config.threads);
  pool.parallel_for(0, variables.size(), [&](std::size_t lo, std::size_t hi) {
    const auto codec = compress::make_codec(rc.codec);
    for (std::size_t t = lo; t < hi; ++t) {
      // Decimate by replaying the recorded collapse sequences.
      std::vector<mesh::Field> level_values;
      level_values.reserve(N);
      level_values.push_back(variables[t].second);
      for (std::size_t l = 1; l < N; ++l) {
        level_values.push_back(
            mesh::replay_decimation(recipes[l - 1], level_values.back()));
      }
      auto& out = products[t];
      out.base = codec->encode(level_values[N - 1], rc.error_bound);
      out.deltas.resize(N >= 1 ? N - 1 : 0);
      for (std::size_t l = 0; l + 1 < N; ++l) {
        const auto delta = compute_delta(
            cascade.levels[l + 1].mesh, level_values[l + 1], level_values[l],
            mappings[l], rc.estimate);
        out.deltas[l] = codec->encode(delta, rc.error_bound);
      }
    }
  });
  report.refactor_wall_seconds = refactor_timer.seconds();

  // ---- Placement (serial: the writer and hierarchy are single-threaded,
  // matching one I/O aggregator per storage target). ----------------------
  const auto base_level = static_cast<std::uint32_t>(N - 1);
  for (std::size_t t = 0; t < variables.size(); ++t) {
    const auto& tvar = variables[t].first;
    const auto& out = products[t];
    {
      const auto wt = writer.write_precompressed(
          tvar, adios::BlockKind::kBase, base_level, out.base, rc.codec,
          rc.error_bound, cascade.levels[N - 1].values.size(),
          level_tier_hint(rc, hierarchy, base_level, out.base.size()));
      report.io_sim_seconds += wt.io_sim_seconds;
      report.stored_bytes += wt.bytes_written;
    }
    for (std::size_t l = 0; l + 1 < N; ++l) {
      const auto level = static_cast<std::uint32_t>(l);
      const auto wt = writer.write_precompressed(
          tvar, adios::BlockKind::kDelta, level, out.deltas[l], rc.codec,
          rc.error_bound, cascade.levels[l].values.size(),
          level_tier_hint(rc, hierarchy, level, out.deltas[l].size()));
      report.io_sim_seconds += wt.io_sim_seconds;
      report.stored_bytes += wt.bytes_written;
    }
  }
  writer.close();
  return report;
}

CampaignReport write_campaign(storage::StorageHierarchy& hierarchy,
                              const std::string& path, const std::string& var,
                              const mesh::TriMesh& mesh,
                              const std::vector<mesh::Field>& timesteps,
                              const CampaignConfig& config) {
  std::vector<std::pair<std::string, mesh::Field>> members;
  members.reserve(timesteps.size());
  for (std::size_t t = 0; t < timesteps.size(); ++t) {
    members.emplace_back(timestep_var(var, t), timesteps[t]);
  }
  return write_variable_group(hierarchy, path, var, mesh, members, config);
}

}  // namespace canopus::core
