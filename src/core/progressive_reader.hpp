#pragma once
// The read side of Canopus: progressive, elastic data retrieval.
//
// A ProgressiveReader opens a refactored variable, retrieves the base dataset
// from the fast tier, and then refines level by level on demand — retrieve
// delta, decompress, restore (Algorithm 3) — letting analytics trade accuracy
// for speed on the fly (Fig. 1, right side). Every step reports the paper's
// phase breakdown (I/O, decompression, restoration).

#include <functional>
#include <future>
#include <optional>
#include <string>

#include "adios/bp.hpp"
#include "core/geometry_cache.hpp"
#include "core/types.hpp"
#include "io/io_config.hpp"
#include "mesh/tri_mesh.hpp"
#include "storage/hierarchy.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace canopus::core {

/// Cumulative phase timings of all retrieval steps so far, plus the
/// robustness counters of the degraded-path machinery (retries, detected
/// corruption, replica fallbacks, refinement steps that gave up).
struct RetrievalTimings {
  double io_seconds = 0.0;          // simulated tier I/O
  double decompress_seconds = 0.0;  // wall
  double restore_seconds = 0.0;     // wall
  std::size_t bytes_read = 0;
  std::size_t retries = 0;               // failed tier reads that were retried
  std::size_t corruptions_detected = 0;  // CRC failures among those
  std::size_t replica_reads = 0;         // reads served by a replica copy
  std::size_t degraded_steps = 0;        // refine() calls that gave up

  double total() const { return io_seconds + decompress_seconds + restore_seconds; }
  RetrievalTimings& operator+=(const RetrievalTimings& o);
};

/// Outcome of one refinement step.
enum class RefineStatus : std::uint8_t {
  kOk = 0,       // level advanced, no faults along the way
  kRetried = 1,  // level advanced after retries and/or a replica fallback
  kDegraded = 2, // delta unavailable: the reader kept the last good level
};

std::string to_string(RefineStatus status);

/// Concurrency knobs of a ProgressiveReader (see ParallelConfig): worker
/// count for chunk decoding / restoration fan-out and whether refine() may
/// read the following delta level ahead of time.
struct ReaderOptions {
  ParallelConfig parallel;
  /// Worker pool shared across concurrent read sessions (the Pipeline's
  /// session pool). When set it overrides parallel.threads — the reader
  /// spawns no pool of its own — and must outlive the reader.
  util::ThreadPool* shared_pool = nullptr;
  /// Async engine shape. With the default depth of 1 every fetch stays on
  /// the blocking path (byte-for-byte the historical behavior); depth > 1
  /// routes multi-chunk delta fetches through an io::IoRing so up to `depth`
  /// tier reads stay in flight and each chunk's decode fires as its
  /// completion lands. Restored fields are bitwise-identical either way —
  /// only when I/O happens (and thus the step's io_seconds, charged as the
  /// overlapped makespan instead of the serial sum) changes.
  io::IoConfig io;
};

class ProgressiveReader {
 public:
  /// Opens the container and retrieves the base dataset L^{N-1}.
  ///
  /// Deprecated as a public entry point: prefer canopus::Pipeline::read()
  /// for one-shot retrieval or Pipeline::open() for step-wise refinement
  /// (core/pipeline.hpp); both wrap this constructor behind a
  /// Status-returning API. Kept callable for source compatibility.
  ///
  /// `geometry`, when given, supplies the per-level meshes, restoration
  /// mappings, and spatial orders from a campaign-lifetime GeometryCache so
  /// that no geometry is read or deserialized on the per-timestep path
  /// (meshes are static across a simulation run). Without it, geometry blocks
  /// are fetched on demand and their cost is charged to the step timings. The
  /// cache must outlive the reader.
  ///
  /// Restoration is concurrent per `options.parallel`: fetched delta chunks
  /// decompress in parallel and, with read-ahead on, refine() starts pulling
  /// the following delta off the (slow) tiers while the current one is
  /// applied. Restored fields are bitwise-identical for any worker count, and
  /// every simulated I/O second of a prefetched block is charged to the step
  /// that consumes it, so RetrievalTimings still matches the simulated clock.
  ProgressiveReader(storage::StorageHierarchy& hierarchy, const std::string& path,
                    std::string var, const GeometryCache* geometry = nullptr,
                    ReaderOptions options = {});

  /// Joins any in-flight read-ahead before tearing down.
  ~ProgressiveReader();

  ProgressiveReader(const ProgressiveReader&) = delete;
  ProgressiveReader& operator=(const ProgressiveReader&) = delete;

  std::size_t level_count() const { return levels_; }
  /// Current accuracy level (N-1 = base ... 0 = full accuracy).
  std::uint32_t current_level() const { return current_level_; }
  bool at_full_accuracy() const { return current_level_ == 0; }

  /// Data and geometry at the current accuracy.
  const mesh::Field& values() const { return values_; }
  const mesh::TriMesh& current_mesh() const {
    return geometry_ ? geometry_->meshes[current_level_] : mesh_;
  }

  /// Decimation ratio of the current level relative to L^0.
  double decimation_ratio() const;

  /// One refinement step: fetch delta^{(level-1)-level}, decompress, restore.
  /// Returns the step's timings. Throws when already at full accuracy.
  ///
  /// Failure-prone tiers never surface as exceptions here: when a delta (or
  /// its mesh/mapping) stays unreadable after the hierarchy's retries and
  /// replica fallback, the step reports RefineStatus::kDegraded via
  /// last_status(), the reader keeps the last good accuracy level, and
  /// analytics continue on it (degraded_steps counts the give-ups).
  RetrievalTimings refine();

  /// Outcome of the most recent refine()/refine_region() call.
  RefineStatus last_status() const { return last_status_; }

  /// Focused refinement (Section III-E / IV-D): fetch only the delta chunks
  /// whose extent intersects `roi` and restore the next level with full
  /// accuracy inside the region and estimate-only values outside. Requires
  /// the variable to have been written with delta_chunks > 1; with a single
  /// chunk this degrades to a full refine(). After a regional refinement that
  /// skipped chunks, partially_refined() reports true until the next full
  /// refine() backfills the skipped chunks (it re-reads them and applies
  /// their deltas before descending, restoring full accuracy bitwise). Once a
  /// second regional step stacks on a partial level, the missing deltas have
  /// propagated through the finer level's estimates and the flag becomes
  /// sticky — exact re-establishment is no longer possible.
  RetrievalTimings refine_region(const mesh::Aabb& roi);

  /// True when some vertices of the current level carry estimate-only values
  /// because a region-of-interest refinement skipped their delta chunks.
  bool partially_refined() const { return partially_refined_; }

  /// Refines until `level` (inclusive) or a step degrades (check
  /// last_status()); returns accumulated step timings.
  RetrievalTimings refine_to(std::uint32_t level);

  /// Automated termination (Section III-E): refines until the RMS change
  /// between consecutive levels drops below `rmse_threshold` (computed on the
  /// refined level against its estimate), full accuracy is reached, or a
  /// step degrades. Throws Error on a non-finite threshold; a threshold <= 0
  /// can never exceed an RMS (which is >= 0), so it refines to full accuracy
  /// — the documented way to say "no early stop".
  RetrievalTimings refine_until(double rmse_threshold);

  /// Budgeted refinement for the serve-layer scheduler: before each step,
  /// `admit(next_level, estimated_step_io_seconds)` decides whether to take
  /// it. Stops when admit returns false, full accuracy is reached, or a step
  /// degrades; returns accumulated step timings. The estimate passed to
  /// admit is estimated_refine_cost(next_level).
  RetrievalTimings refine_while(
      const std::function<bool(std::uint32_t, double)>& admit);

  /// Estimated simulated-I/O seconds of refining to `level` (one step):
  /// per-block tier read costs from container metadata (delta chunks, plus
  /// mesh/mapping blocks when no geometry cache is attached), with
  /// cache-resident blocks counted as free. Pure metadata/cache probe — no
  /// tier reads, no side effects. The serve module layers compute estimates
  /// and observed-latency calibration on top (serve/cost_model.hpp).
  double estimated_refine_cost(std::uint32_t level) const;

  /// RMS of the delta applied by the most recent successful refine() /
  /// refine_region() — the achieved-accuracy proxy the scheduler reports
  /// (for a regional step it is a lower bound: skipped chunks count as
  /// zero). Empty before the first refinement.
  std::optional<double> last_delta_rms() const { return last_delta_rms_; }

  /// Container metadata of the open variable (block records with per-chunk
  /// sizes, tier placements, and object keys) — the cost model's input.
  adios::VarInfo var_info() const { return reader_.inq_var(var_); }

  /// True when a campaign GeometryCache supplies meshes/mappings (no
  /// per-step geometry I/O).
  bool has_geometry() const { return geometry_ != nullptr; }

  /// Timings accumulated since open (includes the base retrieval).
  const RetrievalTimings& cumulative() const { return cumulative_; }

 private:
  /// Raw (still compressed) blocks of one delta level, pulled off the tiers
  /// either synchronously or by the read-ahead task. On a failed fetch,
  /// `chunks` holds the successfully read prefix and `error` the failure, so
  /// the consumer can fold the partial timings and then degrade exactly like
  /// the synchronous path.
  struct PrefetchedLevel {
    std::uint32_t level = 0;
    bool chunked = false;
    std::vector<adios::BpReader::RawChunk> chunks;
    std::exception_ptr error;
    /// Set when the chunks were fetched through the async engine: the
    /// simulated seconds of the depth-way overlapped schedule
    /// (overlap_makespan), which decode_level charges to the step instead of
    /// the serial per-chunk sum. Empty on the blocking path.
    std::optional<double> overlapped_io_seconds;
  };

  /// Chunks a regional refinement skipped, remembered so the next full
  /// refine() can re-establish full accuracy exactly: restoration is
  /// fine = estimate + delta and skipped chunks were applied as delta = 0,
  /// so re-reading them and adding their (unpermuted) values is an exact
  /// additive fix-up. Only recorded while the reader was clean — once
  /// partial levels stack, the missing contribution has propagated through
  /// later estimates and partially_refined_ stays sticky.
  struct SkippedChunks {
    std::uint32_t level = 0;              // the partially refined level
    ChunkIndex index;
    std::vector<std::uint32_t> chunks;    // chunk ids not fetched
  };

  /// Re-reads the pending skipped chunks of the current level and applies
  /// their deltas additively, clearing partially_refined_. Applied chunks
  /// are popped as they land, so a tier fault mid-way (which propagates to
  /// the caller's degrade path) leaves an exactly resumable remainder.
  void backfill_skipped(RetrievalTimings& step);

  /// Records a failed step: counts it, sets kDegraded, keeps reader state.
  RetrievalTimings degrade(RetrievalTimings step);

  util::ThreadPool& pool() const;
  /// Serially fetches every delta chunk of `level`; never throws (failures
  /// are captured in the result). Safe to run off-thread: it only performs
  /// reads through the (thread-safe) hierarchy.
  PrefetchedLevel fetch_level(std::uint32_t level) const;
  /// Consumes a matching in-flight read-ahead, or fetches synchronously. A
  /// stale prefetch (different level) is discarded; its speculative reads
  /// never enter the retrieval clock.
  PrefetchedLevel take_prefetch(std::uint32_t level);
  /// Kicks off the read-ahead for `level` (no-op when disabled).
  void start_prefetch(std::uint32_t level);
  /// Folds fetch timings into `step`, rethrows a captured fetch failure, and
  /// decodes all chunks in parallel, concatenated in chunk order.
  mesh::Field decode_level(PrefetchedLevel fetched, RetrievalTimings& step,
                           bool& chunked);
  /// Dispatch for one level's delta retrieval: the completion-driven async
  /// path when the ring is enabled, the level is multi-chunk, and no matching
  /// read-ahead is pending; decode_level(take_prefetch(...)) otherwise.
  mesh::Field retrieve_level(std::uint32_t level, RetrievalTimings& step,
                             bool& chunked);
  /// Ring-backed fetch + decode: submits every delta chunk of `level`, keeps
  /// io.depth reads in flight, and spawns the decode of each chunk on the
  /// pool the moment its completion lands (no level-wide fetch barrier).
  /// Chunk order, and therefore the restored field, is bitwise-identical to
  /// the blocking path; only io_seconds (overlapped makespan) differs.
  mesh::Field decode_level_async(const adios::VarInfo& info,
                                 std::uint32_t level, RetrievalTimings& step,
                                 bool& chunked);

  storage::StorageHierarchy& hierarchy_;
  adios::BpReader reader_;
  std::string var_;
  const GeometryCache* geometry_ = nullptr;  // not owned; may be null
  std::size_t levels_ = 0;
  EstimateMode estimate_ = EstimateMode::kUniformThirds;

  std::uint32_t current_level_ = 0;
  RefineStatus last_status_ = RefineStatus::kOk;
  bool partially_refined_ = false;
  std::optional<SkippedChunks> skipped_;
  std::optional<double> last_delta_rms_;
  mesh::TriMesh mesh_;  // only populated when geometry_ is null
  mesh::Field values_;
  // Lazily resolved in decimation_ratio() const from container metadata.
  mutable std::optional<std::size_t> full_vertex_count_;
  RetrievalTimings cumulative_;

  // Worker pool: the session-shared one when given, a dedicated one when
  // options pin a thread count, the process-global pool otherwise.
  util::ThreadPool* shared_pool_ = nullptr;  // not owned; may be null
  mutable std::optional<util::ThreadPool> local_pool_;
  bool read_ahead_ = false;
  io::IoConfig io_config_;
  std::future<PrefetchedLevel> prefetch_;
  std::optional<std::uint32_t> prefetch_level_;  // level of the pending future
};

}  // namespace canopus::core
