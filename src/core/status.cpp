#include "core/status.hpp"

#include <exception>

#include "storage/blob_frame.hpp"
#include "storage/fault.hpp"
#include "storage/hierarchy.hpp"
#include "util/assert.hpp"

namespace canopus {

std::string to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kRetried: return "retried";
    case StatusCode::kDegraded: return "degraded";
    case StatusCode::kInvalidArgument: return "invalid-argument";
    case StatusCode::kNotFound: return "not-found";
    case StatusCode::kIoError: return "io-error";
    case StatusCode::kIntegrityError: return "integrity-error";
    case StatusCode::kCapacity: return "capacity";
    case StatusCode::kInternal: return "internal";
    case StatusCode::kOverloaded: return "overloaded";
  }
  return "unknown";
}

std::string Status::to_string() const {
  std::string out = canopus::to_string(code);
  if (!detail.empty()) out += ": " + detail;
  return out;
}

Status status_from_current_exception(StatusCode generic_error_code) {
  try {
    throw;
  } catch (const storage::CapacityError& e) {
    return Status::failure(StatusCode::kCapacity, e.what());
  } catch (const storage::IntegrityError& e) {
    return Status::failure(StatusCode::kIntegrityError, e.what());
  } catch (const storage::TierIoError& e) {
    return Status::failure(StatusCode::kIoError, e.what());
  } catch (const Error& e) {
    return Status::failure(generic_error_code, e.what());
  } catch (const std::exception& e) {
    return Status::failure(StatusCode::kInternal, e.what());
  } catch (...) {
    return Status::failure(StatusCode::kInternal, "unknown exception");
  }
}

}  // namespace canopus
