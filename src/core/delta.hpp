#pragma once
// Delta calculation and restoration — Algorithms 2 and 3 of the paper.
//
//   delta^{l-(l+1)}_x = L^l_x - Estimate(L^{l+1}_i, L^{l+1}_j, L^{l+1}_k)
//
// where (i, j, k) is the coarse triangle containing fine vertex x and
// Estimate is an affine combination of its corner values. Restoration is the
// exact inverse, so base + deltas reproduces the fine level up to codec loss.

#include "core/types.hpp"
#include "mesh/point_locator.hpp"
#include "mesh/tri_mesh.hpp"
#include "util/thread_pool.hpp"

namespace canopus::core {

/// Builds the fine-vertex -> coarse-triangle mapping by point location in the
/// coarse mesh (the index Canopus persists to avoid the O(n^2) brute force).
/// `pool` selects the worker pool for the per-vertex fan-out (nullptr = the
/// process-global pool); results are identical for any pool.
VertexMapping build_mapping(const mesh::TriMesh& fine, const mesh::TriMesh& coarse,
                            util::ThreadPool* pool = nullptr);

/// Estimate(.) for one fine vertex under the given mode.
double estimate_value(const mesh::TriMesh& coarse, const mesh::Field& coarse_values,
                      const VertexMapping& mapping, std::size_t fine_vertex,
                      EstimateMode mode);

/// Algorithm 2: delta between a fine level and its estimate from the coarse
/// level. `fine_values` has one entry per mapping entry. Per-vertex work fans
/// out on `pool` (nullptr = global); the output is bitwise-identical to the
/// serial loop for any worker count.
mesh::Field compute_delta(const mesh::TriMesh& coarse, const mesh::Field& coarse_values,
                          const mesh::Field& fine_values, const VertexMapping& mapping,
                          EstimateMode mode, util::ThreadPool* pool = nullptr);

/// Algorithm 3: restore the fine level from the coarse level plus a delta.
/// Parallel like compute_delta, with the same determinism guarantee.
mesh::Field restore_level(const mesh::TriMesh& coarse, const mesh::Field& coarse_values,
                          const mesh::Field& delta, const VertexMapping& mapping,
                          EstimateMode mode, util::ThreadPool* pool = nullptr);

}  // namespace canopus::core
