#include "core/progressive_reader.hpp"

#include <cmath>

#include "core/delta.hpp"
#include "storage/blob_frame.hpp"
#include "storage/fault.hpp"
#include "util/assert.hpp"

namespace canopus::core {

RetrievalTimings& RetrievalTimings::operator+=(const RetrievalTimings& o) {
  io_seconds += o.io_seconds;
  decompress_seconds += o.decompress_seconds;
  restore_seconds += o.restore_seconds;
  bytes_read += o.bytes_read;
  retries += o.retries;
  corruptions_detected += o.corruptions_detected;
  replica_reads += o.replica_reads;
  degraded_steps += o.degraded_steps;
  return *this;
}

std::string to_string(RefineStatus status) {
  switch (status) {
    case RefineStatus::kOk: return "ok";
    case RefineStatus::kRetried: return "retried";
    case RefineStatus::kDegraded: return "degraded";
  }
  CANOPUS_UNREACHABLE("unknown refine status");
}

namespace {
/// Folds one block read's timing (including the hierarchy's robustness
/// counters) into the step accumulator.
void fold(const adios::ReadTiming& t, RetrievalTimings& step) {
  step.io_seconds += t.io_sim_seconds;
  step.decompress_seconds += t.decompress_seconds;
  step.bytes_read += t.bytes_read;
  step.retries += t.retries;
  step.corruptions_detected += t.corruptions;
  if (t.from_replica) ++step.replica_reads;
}
}  // namespace

ProgressiveReader::ProgressiveReader(storage::StorageHierarchy& hierarchy,
                                     const std::string& path, std::string var,
                                     const GeometryCache* geometry)
    : hierarchy_(hierarchy),
      reader_(hierarchy, path),
      var_(std::move(var)),
      geometry_(geometry) {
  const auto levels_attr = reader_.attribute("levels");
  CANOPUS_CHECK(levels_attr.has_value(), "container missing 'levels' attribute");
  levels_ = static_cast<std::size_t>(std::stoul(*levels_attr));
  if (const auto est = reader_.attribute("estimate")) {
    estimate_ = estimate_mode_from_string(*est);
  }
  CANOPUS_CHECK(!geometry_ || geometry_->level_count() == levels_,
                "geometry cache does not match this container");

  current_level_ = static_cast<std::uint32_t>(levels_ - 1);
  // The base retrieval rides on the hierarchy's retries + replica fallback
  // (BpWriter replicates base blocks); with no copy left there is nothing to
  // degrade to, so a failure here propagates.
  adios::ReadTiming data_t;
  values_ = reader_.read_doubles(var_, adios::BlockKind::kBase, current_level_,
                                 &data_t);
  if (!geometry_) {
    adios::ReadTiming mesh_t;
    const auto raw =
        reader_.read_opaque(var_, adios::BlockKind::kMesh, current_level_, &mesh_t);
    util::ByteReader br(raw);
    util::WallTimer t;
    mesh_ = mesh::TriMesh::deserialize(br);
    cumulative_.restore_seconds += t.seconds();
    fold(mesh_t, cumulative_);
  }
  fold(data_t, cumulative_);
  CANOPUS_CHECK(values_.size() == current_mesh().vertex_count(),
                "base level inconsistent with its mesh");
}

double ProgressiveReader::decimation_ratio() const {
  if (!full_vertex_count_) {
    // Vertex count of L^0 = size of the finest delta (one delta entry per
    // fine vertex, summed across chunks), available from metadata without
    // touching the data.
    const auto info = reader_.inq_var(var_);
    std::size_t finest_count = 0;
    for (const auto& b : info.blocks) {
      if (b.kind == adios::BlockKind::kDelta && b.level == 0) {
        finest_count += static_cast<std::size_t>(b.value_count);
      }
    }
    full_vertex_count_ = finest_count > 0 ? finest_count : values_.size();
  }
  return static_cast<double>(*full_vertex_count_) /
         static_cast<double>(values_.size());
}

namespace {
/// Reads every chunk of a (possibly chunked) delta, concatenated in storage
/// order; sets `chunked` when the group was spatially permuted.
mesh::Field read_all_delta_chunks(const adios::BpReader& reader,
                                  const std::string& var, std::uint32_t level,
                                  RetrievalTimings& step, bool& chunked) {
  const auto info = reader.inq_var(var);
  const auto* first = info.block(adios::BlockKind::kDelta, level);
  CANOPUS_CHECK(first != nullptr, "delta block missing");
  chunked = first->chunk_count > 1;
  mesh::Field delta;
  for (std::uint32_t c = 0; c < first->chunk_count; ++c) {
    adios::ReadTiming t;
    const auto part =
        reader.read_doubles_chunk(var, adios::BlockKind::kDelta, level, c, &t);
    fold(t, step);
    delta.insert(delta.end(), part.begin(), part.end());
  }
  return delta;
}

/// Spatially permuted (chunked) deltas are stored in Morton order; scatter
/// them back to vertex order using the ordering recomputed from geometry.
mesh::Field unpermute_delta(const mesh::Field& stored, const mesh::TriMesh& fine) {
  const auto order = mesh::spatial_order(fine);
  CANOPUS_CHECK(stored.size() == order.size(),
                "chunked delta size inconsistent with its mesh");
  mesh::Field delta(stored.size());
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    delta[order[pos]] = stored[pos];
  }
  return delta;
}
}  // namespace

RetrievalTimings ProgressiveReader::degrade(RetrievalTimings step) {
  // The fetch failed after retries and replica fallback: keep the last good
  // level (values_/mesh_/current_level_ were not touched yet) and surface the
  // outcome as a status, not an exception — analytics continue on what they
  // have, exactly the elastic-accuracy contract.
  step.degraded_steps += 1;
  last_status_ = RefineStatus::kDegraded;
  cumulative_ += step;
  return step;
}

RetrievalTimings ProgressiveReader::refine() {
  CANOPUS_CHECK(current_level_ > 0, "already at full accuracy");
  const std::uint32_t next = current_level_ - 1;

  RetrievalTimings step;
  try {
    bool chunked = false;
    mesh::Field delta = read_all_delta_chunks(reader_, var_, next, step, chunked);
    // Note: partially_refined_ stays sticky — once a coarser level skipped
    // chunks, values outside that region remain approximate no matter how many
    // full deltas are applied on top.

    if (geometry_) {
      util::WallTimer t;
      if (chunked) delta = unpermute_delta(delta, geometry_->meshes[next]);
      values_ = restore_level(geometry_->meshes[current_level_], values_, delta,
                              geometry_->mappings[next], estimate_);
      step.restore_seconds = t.seconds();
    } else {
      adios::ReadTiming map_t, mesh_t;
      const auto map_raw =
          reader_.read_opaque(var_, adios::BlockKind::kMapping, next, &map_t);
      const auto mesh_raw =
          reader_.read_opaque(var_, adios::BlockKind::kMesh, next, &mesh_t);
      fold(map_t, step);
      fold(mesh_t, step);

      util::WallTimer t;
      util::ByteReader mesh_reader(mesh_raw);
      const auto fine_mesh = mesh::TriMesh::deserialize(mesh_reader);
      if (chunked) delta = unpermute_delta(delta, fine_mesh);
      util::ByteReader map_reader(map_raw);
      const auto mapping = VertexMapping::deserialize(map_reader);
      values_ = restore_level(mesh_, values_, delta, mapping, estimate_);
      mesh_ = fine_mesh;
      step.restore_seconds = t.seconds();
    }
  } catch (const storage::TierIoError&) {
    return degrade(std::move(step));
  } catch (const storage::IntegrityError&) {
    return degrade(std::move(step));
  }
  current_level_ = next;
  last_status_ = step.retries > 0 || step.replica_reads > 0
                     ? RefineStatus::kRetried
                     : RefineStatus::kOk;
  CANOPUS_CHECK(values_.size() == current_mesh().vertex_count(),
                "restored level inconsistent with its mesh");
  cumulative_ += step;
  return step;
}

RetrievalTimings ProgressiveReader::refine_region(const mesh::Aabb& roi) {
  CANOPUS_CHECK(current_level_ > 0, "already at full accuracy");
  const std::uint32_t next = current_level_ - 1;

  // Without a chunk index the delta is monolithic: fall back to full refine.
  // A faulted index read, by contrast, degrades like any other failed fetch.
  ChunkIndex index;
  try {
    RetrievalTimings probe;  // folded into the step below
    adios::ReadTiming t;
    const auto raw =
        reader_.read_opaque(var_, adios::BlockKind::kChunkIndex, next, &t);
    util::ByteReader br(raw);
    index = ChunkIndex::deserialize(br);
    fold(t, probe);
    cumulative_ += probe;
  } catch (const storage::TierIoError&) {
    return degrade(RetrievalTimings{});
  } catch (const storage::IntegrityError&) {
    return degrade(RetrievalTimings{});
  } catch (const Error&) {
    return refine();
  }

  RetrievalTimings step;
  try {
    std::size_t fine_count = 0;
    for (const auto& c : index.chunks) fine_count += c.count;
    // Delta in Morton storage order; unfetched chunks stay zero (estimate-only).
    mesh::Field stored(fine_count, 0.0);
    for (std::uint32_t c : index.intersecting(roi)) {
      adios::ReadTiming t;
      const auto part =
          reader_.read_doubles_chunk(var_, adios::BlockKind::kDelta, next, c, &t);
      fold(t, step);
      CANOPUS_CHECK(part.size() == index.chunks[c].count,
                    "chunk size inconsistent with its index");
      std::copy(part.begin(), part.end(),
                stored.begin() + static_cast<long>(index.chunks[c].start));
    }

    if (geometry_) {
      util::WallTimer t;
      const auto delta = unpermute_delta(stored, geometry_->meshes[next]);
      values_ = restore_level(geometry_->meshes[current_level_], values_, delta,
                              geometry_->mappings[next], estimate_);
      step.restore_seconds = t.seconds();
    } else {
      adios::ReadTiming map_t, mesh_t;
      const auto map_raw =
          reader_.read_opaque(var_, adios::BlockKind::kMapping, next, &map_t);
      const auto mesh_raw =
          reader_.read_opaque(var_, adios::BlockKind::kMesh, next, &mesh_t);
      fold(map_t, step);
      fold(mesh_t, step);
      util::WallTimer t;
      util::ByteReader mesh_reader(mesh_raw);
      const auto fine_mesh = mesh::TriMesh::deserialize(mesh_reader);
      const auto delta = unpermute_delta(stored, fine_mesh);
      util::ByteReader map_reader(map_raw);
      const auto mapping = VertexMapping::deserialize(map_reader);
      values_ = restore_level(mesh_, values_, delta, mapping, estimate_);
      mesh_ = fine_mesh;
      step.restore_seconds = t.seconds();
    }
  } catch (const storage::TierIoError&) {
    return degrade(std::move(step));
  } catch (const storage::IntegrityError&) {
    return degrade(std::move(step));
  }
  current_level_ = next;
  last_status_ = step.retries > 0 || step.replica_reads > 0
                     ? RefineStatus::kRetried
                     : RefineStatus::kOk;
  partially_refined_ = true;
  CANOPUS_CHECK(values_.size() == current_mesh().vertex_count(),
                "restored level inconsistent with its mesh");
  cumulative_ += step;
  return step;
}

RetrievalTimings ProgressiveReader::refine_to(std::uint32_t level) {
  CANOPUS_CHECK(level < levels_, "level out of range");
  RetrievalTimings acc;
  while (current_level_ > level) {
    acc += refine();
    if (last_status_ == RefineStatus::kDegraded) break;
  }
  return acc;
}

RetrievalTimings ProgressiveReader::refine_until(double rmse_threshold) {
  RetrievalTimings acc;
  while (current_level_ > 0) {
    const mesh::Field before = values_;          // values at the coarser level
    const mesh::TriMesh coarse = current_mesh(); // its mesh (for the estimate)
    acc += refine();
    if (last_status_ == RefineStatus::kDegraded) break;
    // The paper's automated criterion is the RMSE between adjacent levels;
    // that is exactly the RMS of the delta just applied (values - estimate),
    // so recompute the estimate from the coarser level and difference it.
    double sum2 = 0.0;
    VertexMapping loaded;
    const VertexMapping* mapping = nullptr;
    if (geometry_) {
      mapping = &geometry_->mappings[current_level_];
    } else {
      const util::Bytes map_raw =
          reader_.read_opaque(var_, adios::BlockKind::kMapping, current_level_);
      util::ByteReader map_reader(map_raw);
      loaded = VertexMapping::deserialize(map_reader);
      mapping = &loaded;
    }
    for (std::size_t x = 0; x < values_.size(); ++x) {
      const double est = estimate_value(coarse, before, *mapping, x, estimate_);
      const double d = values_[x] - est;
      sum2 += d * d;
    }
    const double rmse = std::sqrt(sum2 / static_cast<double>(values_.size()));
    if (rmse < rmse_threshold) break;
  }
  return acc;
}

}  // namespace canopus::core
