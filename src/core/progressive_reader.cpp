#include "core/progressive_reader.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "core/delta.hpp"
#include "io/io_ring.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "storage/blob_frame.hpp"
#include "storage/fault.hpp"
#include "util/assert.hpp"

namespace canopus::core {

RetrievalTimings& RetrievalTimings::operator+=(const RetrievalTimings& o) {
  io_seconds += o.io_seconds;
  decompress_seconds += o.decompress_seconds;
  restore_seconds += o.restore_seconds;
  bytes_read += o.bytes_read;
  retries += o.retries;
  corruptions_detected += o.corruptions_detected;
  replica_reads += o.replica_reads;
  degraded_steps += o.degraded_steps;
  return *this;
}

std::string to_string(RefineStatus status) {
  switch (status) {
    case RefineStatus::kOk: return "ok";
    case RefineStatus::kRetried: return "retried";
    case RefineStatus::kDegraded: return "degraded";
  }
  CANOPUS_UNREACHABLE("unknown refine status");
}

namespace {
/// Folds one block read's timing (including the hierarchy's robustness
/// counters) into the step accumulator.
void fold(const adios::ReadTiming& t, RetrievalTimings& step) {
  step.io_seconds += t.io_sim_seconds;
  step.decompress_seconds += t.decompress_seconds;
  step.bytes_read += t.bytes_read;
  step.retries += t.retries;
  step.corruptions_detected += t.corruptions;
  if (t.from_replica) ++step.replica_reads;
}

/// Spatially permuted (chunked) deltas are stored in Morton order; scatter
/// them back to vertex order. The scatter targets are a permutation, so the
/// pool fan-out writes disjoint entries and the result is order-independent.
/// RMS of a delta field. Permutation-invariant, so equally valid on the
/// Morton storage order and the vertex order.
double rms_of(const mesh::Field& delta) {
  if (delta.empty()) return 0.0;
  double sum2 = 0.0;
  for (const double d : delta) sum2 += d * d;
  return std::sqrt(sum2 / static_cast<double>(delta.size()));
}

mesh::Field unpermute_delta(const mesh::Field& stored,
                            const std::vector<mesh::VertexId>& order,
                            util::ThreadPool& pool) {
  CANOPUS_CHECK(stored.size() == order.size(),
                "chunked delta size inconsistent with its mesh");
  mesh::Field delta(stored.size());
  pool.parallel_for(
      0, order.size(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t pos = lo; pos < hi; ++pos) {
          delta[order[pos]] = stored[pos];
        }
      },
      /*grain=*/4096);
  return delta;
}
}  // namespace

ProgressiveReader::ProgressiveReader(storage::StorageHierarchy& hierarchy,
                                     const std::string& path, std::string var,
                                     const GeometryCache* geometry,
                                     ReaderOptions options)
    : hierarchy_(hierarchy),
      reader_(hierarchy, path),
      var_(std::move(var)),
      geometry_(geometry) {
  if (options.shared_pool != nullptr) {
    shared_pool_ = options.shared_pool;
  } else if (options.parallel.threads > 0) {
    local_pool_.emplace(options.parallel.threads);
  }
  io_config_ = options.io;
  // Read-ahead needs at least one worker besides the applying thread; with a
  // single pinned worker the reader stays fully serial, by design.
  read_ahead_ = options.parallel.read_ahead && pool().size() > 1;

  const auto levels_attr = reader_.attribute("levels");
  CANOPUS_CHECK(levels_attr.has_value(), "container missing 'levels' attribute");
  levels_ = static_cast<std::size_t>(std::stoul(*levels_attr));
  if (const auto est = reader_.attribute("estimate")) {
    estimate_ = estimate_mode_from_string(*est);
  }
  CANOPUS_CHECK(!geometry_ || geometry_->level_count() == levels_,
                "geometry cache does not match this container");

  current_level_ = static_cast<std::uint32_t>(levels_ - 1);
  // The base retrieval rides on the hierarchy's retries + replica fallback
  // (BpWriter replicates base blocks); with no copy left there is nothing to
  // degrade to, so a failure here propagates.
  CANOPUS_SPAN("read.open_base", {{"var", var_}, {"level", current_level_}});
  adios::ReadTiming data_t;
  values_ = reader_.read_doubles(var_, adios::BlockKind::kBase, current_level_,
                                 &data_t);
  if (!geometry_) {
    adios::ReadTiming mesh_t;
    const auto raw =
        reader_.read_opaque(var_, adios::BlockKind::kMesh, current_level_, &mesh_t);
    util::ByteReader br(raw);
    util::WallTimer t;
    mesh_ = mesh::TriMesh::deserialize(br);
    cumulative_.restore_seconds += t.seconds();
    fold(mesh_t, cumulative_);
  }
  fold(data_t, cumulative_);
  CANOPUS_CHECK(values_.size() == current_mesh().vertex_count(),
                "base level inconsistent with its mesh");
}

ProgressiveReader::~ProgressiveReader() {
  if (prefetch_.valid()) prefetch_.wait();
}

util::ThreadPool& ProgressiveReader::pool() const {
  if (shared_pool_ != nullptr) return *shared_pool_;
  return local_pool_ ? *local_pool_ : util::ThreadPool::global();
}

double ProgressiveReader::decimation_ratio() const {
  if (!full_vertex_count_) {
    // Vertex count of L^0 = size of the finest delta (one delta entry per
    // fine vertex, summed across chunks), available from metadata without
    // touching the data.
    const auto info = reader_.inq_var(var_);
    std::size_t finest_count = 0;
    for (const auto& b : info.blocks) {
      if (b.kind == adios::BlockKind::kDelta && b.level == 0) {
        finest_count += static_cast<std::size_t>(b.value_count);
      }
    }
    full_vertex_count_ = finest_count > 0 ? finest_count : values_.size();
  }
  return static_cast<double>(*full_vertex_count_) /
         static_cast<double>(values_.size());
}

ProgressiveReader::PrefetchedLevel ProgressiveReader::fetch_level(
    std::uint32_t level) const {
  // Chunks are issued in chunk order whether blocking or ring-backed (the
  // ring executes its FIFO strictly in submission order): the hierarchy sees
  // the same read sequence as the serial reader, which keeps tier access
  // accounting — and the fault injector's seeded decision stream —
  // reproducible.
  // The span runs on whichever thread fetches — the caller for a synchronous
  // fetch, a pool worker for the read-ahead — so the trace shows which reads
  // were overlapped.
  CANOPUS_SPAN("read.fetch", {{"level", level}});
  PrefetchedLevel out;
  out.level = level;
  try {
    const auto info = reader_.inq_var(var_);
    const auto* first = info.block(adios::BlockKind::kDelta, level);
    CANOPUS_CHECK(first != nullptr, "delta block missing");
    out.chunked = first->chunk_count > 1;
    out.chunks.reserve(first->chunk_count);
    if (io_config_.enabled() && first->chunk_count > 1) {
      // Ring-backed read-ahead: same ops in the same order, but up to
      // io.depth in flight; the overlapped makespan replaces the serial sum
      // when the consuming step charges this level's I/O.
      std::vector<const adios::BlockRecord*> recs(first->chunk_count, nullptr);
      for (const auto& b : info.blocks) {
        if (b.kind == adios::BlockKind::kDelta && b.level == level &&
            b.chunk < recs.size()) {
          recs[b.chunk] = &b;
        }
      }
      io::IoRing ring(hierarchy_, io_config_, &pool());
      for (const auto* r : recs) {
        CANOPUS_CHECK(r != nullptr, "delta chunk record missing");
        CANOPUS_CHECK(r->codec != "none", "block is opaque; use read_opaque");
        ring.submit(r->object_key);
      }
      std::vector<double> costs;
      costs.reserve(recs.size());
      for (std::size_t c = 0; c < recs.size(); ++c) {
        auto comp = ring.wait_next();
        // First failed chunk stops the fetch, like the serial loop; the
        // ring's destructor drops the not-yet-executed remainder.
        if (comp.error) std::rethrow_exception(comp.error);
        adios::BpReader::RawChunk raw;
        raw.record = *recs[c];
        raw.payload = std::move(comp.payload);
        raw.io.io_sim_seconds = comp.io.sim_seconds;
        raw.io.io_wall_seconds = comp.io.wall_seconds;
        raw.io.bytes_read = comp.io.bytes;
        raw.io.retries = comp.io.retries;
        raw.io.corruptions = comp.io.corruptions;
        raw.io.from_replica = comp.io.from_replica;
        costs.push_back(comp.io.sim_seconds);
        out.chunks.push_back(std::move(raw));
      }
      out.overlapped_io_seconds = io::overlap_makespan(costs, io_config_.depth);
    } else {
      for (std::uint32_t c = 0; c < first->chunk_count; ++c) {
        out.chunks.push_back(
            reader_.fetch_chunk(var_, adios::BlockKind::kDelta, level, c));
      }
    }
  } catch (...) {
    out.error = std::current_exception();
  }
  return out;
}

ProgressiveReader::PrefetchedLevel ProgressiveReader::take_prefetch(
    std::uint32_t level) {
  auto& registry = obs::MetricsRegistry::global();
  if (prefetch_.valid()) {
    PrefetchedLevel p = prefetch_.get();
    prefetch_level_.reset();
    if (p.level == level) {
      registry.counter("reader.prefetch_hits").add(1);
      return p;
    }
    // Stale read-ahead (a refine_region() or degraded step changed course):
    // drop it. Speculative reads never enter the retrieval clock.
    registry.counter("reader.prefetch_stale").add(1);
  } else if (read_ahead_) {
    registry.counter("reader.prefetch_misses").add(1);
  }
  return fetch_level(level);
}

void ProgressiveReader::start_prefetch(std::uint32_t level) {
  if (!read_ahead_ || prefetch_.valid()) return;
  // Cache-aware read-ahead: when every delta chunk of the level is already
  // resident in the shared block cache, the synchronous fetch will be all
  // hits at zero simulated cost — spending a pool worker on it would only
  // add task overhead and steal a thread from sibling sessions.
  if (const cache::BlockCache* cache = hierarchy_.block_cache()) {
    const auto info = reader_.inq_var(var_);
    std::size_t chunks = 0;
    bool resident = true;
    for (const auto& b : info.blocks) {
      if (b.kind != adios::BlockKind::kDelta || b.level != level) continue;
      ++chunks;
      if (!cache->contains(b.object_key)) {
        resident = false;
        break;
      }
    }
    if (chunks > 0 && resident) {
      obs::MetricsRegistry::global()
          .counter("reader.prefetch_skipped_cached")
          .add(1);
      return;
    }
  }
  prefetch_ = pool().submit([this, level] { return fetch_level(level); });
  prefetch_level_ = level;
}

mesh::Field ProgressiveReader::decode_level(PrefetchedLevel fetched,
                                            RetrievalTimings& step,
                                            bool& chunked) {
  // Fold the successfully fetched chunks first (prefetched I/O is charged to
  // the step that consumes it), then surface a fetch failure exactly as the
  // synchronous path would: partial timings kept, exception propagated.
  for (const auto& rc : fetched.chunks) fold(rc.io, step);
  if (fetched.overlapped_io_seconds) {
    // Ring-backed fetch: the chunks ran up to io.depth-way overlapped, so
    // the step is charged their makespan, not the serial sum fold() added.
    double serial_sum = 0.0;
    for (const auto& rc : fetched.chunks) serial_sum += rc.io.io_sim_seconds;
    step.io_seconds += *fetched.overlapped_io_seconds - serial_sum;
  }
  if (fetched.error) std::rethrow_exception(fetched.error);
  chunked = fetched.chunked;

  CANOPUS_SPAN("read.decompress",
               {{"level", fetched.level}, {"chunks", fetched.chunks.size()}});
  cache::BlockCache* cache = hierarchy_.block_cache();
  std::vector<cache::BlockCache::ArrayPtr> parts(fetched.chunks.size());
  std::vector<double> decode_seconds(fetched.chunks.size(), 0.0);
  pool().parallel_for(0, fetched.chunks.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t c = lo; c < hi; ++c) {
      const auto& rc = fetched.chunks[c];
      if (cache != nullptr) {
        // Second cache level: the decoded array, under the chunk's "#decoded"
        // alias, so sibling sessions skip the decompression too. Single-flight
        // means exactly one session pays the decode; only that leader's wall
        // time lands in decode_seconds (hits charge zero, like cached I/O).
        parts[c] = cache
                       ->get_or_load_array(
                           storage::StorageHierarchy::decoded_alias(
                               rc.record.object_key),
                           [&] {
                             return adios::BpReader::decode_chunk(
                                 rc.record, rc.payload, &decode_seconds[c]);
                           })
                       .array;
      } else {
        parts[c] = std::make_shared<const std::vector<double>>(
            adios::BpReader::decode_chunk(rc.record, rc.payload,
                                          &decode_seconds[c]));
      }
    }
  });
  for (const double s : decode_seconds) step.decompress_seconds += s;

  std::size_t total = 0;
  for (const auto& p : parts) total += p->size();
  mesh::Field delta;
  delta.reserve(total);
  for (const auto& p : parts) delta.insert(delta.end(), p->begin(), p->end());
  return delta;
}

mesh::Field ProgressiveReader::retrieve_level(std::uint32_t level,
                                              RetrievalTimings& step,
                                              bool& chunked) {
  if (io_config_.enabled()) {
    const bool matching_prefetch =
        prefetch_.valid() && prefetch_level_ && *prefetch_level_ == level;
    if (!matching_prefetch) {
      const auto info = reader_.inq_var(var_);
      const auto* first = info.block(adios::BlockKind::kDelta, level);
      CANOPUS_CHECK(first != nullptr, "delta block missing");
      if (first->chunk_count > 1) {
        if (prefetch_.valid()) {
          // Stale read-ahead (the reader changed course): discard it, its
          // speculative reads never enter the retrieval clock.
          prefetch_.get();
          prefetch_level_.reset();
          obs::MetricsRegistry::global().counter("reader.prefetch_stale").add(1);
        }
        return decode_level_async(info, level, step, chunked);
      }
    }
  }
  return decode_level(take_prefetch(level), step, chunked);
}

mesh::Field ProgressiveReader::decode_level_async(const adios::VarInfo& info,
                                                  std::uint32_t level,
                                                  RetrievalTimings& step,
                                                  bool& chunked) {
  const auto* first = info.block(adios::BlockKind::kDelta, level);
  CANOPUS_ASSERT(first != nullptr && first->chunk_count > 1);
  chunked = true;
  const std::size_t n = first->chunk_count;
  CANOPUS_SPAN("read.fetch_async",
               {{"level", level}, {"depth", static_cast<int>(io_config_.depth)}});
  std::vector<const adios::BlockRecord*> recs(n, nullptr);
  for (const auto& b : info.blocks) {
    if (b.kind == adios::BlockKind::kDelta && b.level == level && b.chunk < n) {
      recs[b.chunk] = &b;
    }
  }
  io::IoRing ring(hierarchy_, io_config_, &pool());
  for (const auto* r : recs) {
    CANOPUS_CHECK(r != nullptr, "delta chunk record missing");
    CANOPUS_CHECK(r->codec != "none", "block is opaque; use read_opaque");
    ring.submit(r->object_key);
  }
  cache::BlockCache* cache = hierarchy_.block_cache();
  std::vector<cache::BlockCache::ArrayPtr> parts(n);
  std::vector<double> decode_seconds(n, 0.0);
  std::vector<std::future<void>> decodes;
  decodes.reserve(n);
  std::vector<double> costs;
  costs.reserve(n);
  std::exception_ptr failure;
  for (std::size_t c = 0; c < n; ++c) {
    auto comp = ring.wait_next();
    if (comp.error) {
      // Mirror the serial reader: stop at the first failed chunk. Completed
      // chunks keep their charges; submissions the ring never executed are
      // dropped by its destructor, exactly as the serial loop never issues
      // reads past a failure.
      failure = comp.error;
      break;
    }
    step.bytes_read += comp.io.bytes;
    step.retries += comp.io.retries;
    step.corruptions_detected += comp.io.corruptions;
    if (comp.io.from_replica) ++step.replica_reads;
    costs.push_back(comp.io.sim_seconds);
    // Completion-driven continuation: this chunk's decode fires the moment
    // its read lands, while later reads are still in flight — no level-wide
    // fetch barrier. parts/decode_seconds writes are per-index disjoint.
    auto payload = std::make_shared<util::Bytes>(std::move(comp.payload));
    const adios::BlockRecord* rec = recs[c];
    decodes.push_back(
        pool().submit([cache, rec, payload, &parts, &decode_seconds, c] {
          if (cache != nullptr) {
            // Same decoded-array cache level as the blocking path: one
            // session pays the decode, siblings reuse it.
            parts[c] = cache
                           ->get_or_load_array(
                               storage::StorageHierarchy::decoded_alias(
                                   rec->object_key),
                               [&] {
                                 return adios::BpReader::decode_chunk(
                                     *rec, *payload, &decode_seconds[c]);
                               })
                           .array;
          } else {
            parts[c] = std::make_shared<const std::vector<double>>(
                adios::BpReader::decode_chunk(*rec, *payload,
                                              &decode_seconds[c]));
          }
        }));
  }
  // Join every decode before surfacing any failure — the tasks write into
  // frame-local vectors.
  std::exception_ptr decode_failure;
  for (auto& f : decodes) {
    try {
      f.get();
    } catch (...) {
      if (!decode_failure) decode_failure = std::current_exception();
    }
  }
  step.io_seconds += io::overlap_makespan(costs, io_config_.depth);
  for (const double s : decode_seconds) step.decompress_seconds += s;
  if (failure) std::rethrow_exception(failure);
  if (decode_failure) std::rethrow_exception(decode_failure);

  std::size_t total = 0;
  for (const auto& p : parts) total += p->size();
  mesh::Field delta;
  delta.reserve(total);
  for (const auto& p : parts) delta.insert(delta.end(), p->begin(), p->end());
  return delta;
}

RetrievalTimings ProgressiveReader::degrade(RetrievalTimings step) {
  // The fetch failed after retries and replica fallback: keep the last good
  // level (values_/mesh_/current_level_ were not touched yet) and surface the
  // outcome as a status, not an exception — analytics continue on what they
  // have, exactly the elastic-accuracy contract.
  step.degraded_steps += 1;
  obs::MetricsRegistry::global().counter("reader.degraded_steps").add(1);
  last_status_ = RefineStatus::kDegraded;
  cumulative_ += step;
  return step;
}

RetrievalTimings ProgressiveReader::refine() {
  CANOPUS_CHECK(current_level_ > 0, "already at full accuracy");
  const std::uint32_t next = current_level_ - 1;

  // Dynamic span name so the summary table gets one latency row per level.
  CANOPUS_SPAN("read.refine.L" + std::to_string(next), {{"var", var_}});
  RetrievalTimings step;
  double delta_rms = 0.0;
  try {
    // A prior regional step skipped chunks at the current level: re-read and
    // apply them first, so this full delta lands on a full-accuracy level and
    // partially_refined() turns false again. (Once regional steps have
    // stacked, skipped_ is empty and the flag stays sticky — the missing
    // deltas already propagated through finer estimates.)
    if (skipped_ && skipped_->level == current_level_) backfill_skipped(step);
    bool chunked = false;
    mesh::Field delta = retrieve_level(next, step, chunked);
    delta_rms = rms_of(delta);

    if (geometry_) {
      // Every read of this step is done: overlap the (pure compute) unpermute
      // and restore below with the read-ahead of the following delta. Issuing
      // it here keeps the hierarchy's global read order identical to the
      // serial reader's.
      if (next > 0) start_prefetch(next - 1);
      CANOPUS_SPAN("read.restore", {{"level", next}});
      util::WallTimer t;
      if (chunked) delta = unpermute_delta(delta, geometry_->order(next), pool());
      values_ = restore_level(geometry_->meshes[current_level_], values_, delta,
                              geometry_->mappings[next], estimate_, &pool());
      step.restore_seconds = t.seconds();
    } else {
      adios::ReadTiming map_t, mesh_t;
      const auto map_raw =
          reader_.read_opaque(var_, adios::BlockKind::kMapping, next, &map_t);
      const auto mesh_raw =
          reader_.read_opaque(var_, adios::BlockKind::kMesh, next, &mesh_t);
      fold(map_t, step);
      fold(mesh_t, step);
      if (next > 0) start_prefetch(next - 1);

      CANOPUS_SPAN("read.restore", {{"level", next}});
      util::WallTimer t;
      util::ByteReader mesh_reader(mesh_raw);
      const auto fine_mesh = mesh::TriMesh::deserialize(mesh_reader);
      if (chunked) {
        delta = unpermute_delta(delta, *cached_spatial_order(fine_mesh), pool());
      }
      util::ByteReader map_reader(map_raw);
      const auto mapping = VertexMapping::deserialize(map_reader);
      values_ = restore_level(mesh_, values_, delta, mapping, estimate_, &pool());
      mesh_ = fine_mesh;
      step.restore_seconds = t.seconds();
    }
  } catch (const storage::TierIoError&) {
    return degrade(std::move(step));
  } catch (const storage::IntegrityError&) {
    return degrade(std::move(step));
  }
  current_level_ = next;
  last_delta_rms_ = delta_rms;
  last_status_ = step.retries > 0 || step.replica_reads > 0
                     ? RefineStatus::kRetried
                     : RefineStatus::kOk;
  CANOPUS_CHECK(values_.size() == current_mesh().vertex_count(),
                "restored level inconsistent with its mesh");
  cumulative_ += step;
  return step;
}

void ProgressiveReader::backfill_skipped(RetrievalTimings& step) {
  SkippedChunks& sk = *skipped_;
  CANOPUS_SPAN("read.backfill",
               {{"level", sk.level}, {"chunks", sk.chunks.size()}});
  // Skipped chunks were applied as delta = 0 during the regional restore
  // (fine = estimate + delta), so adding the stored values back is an exact
  // fix-up: estimate + 0 + d computes the same bits as estimate + d.
  const std::vector<mesh::VertexId>* order = nullptr;
  std::shared_ptr<const std::vector<mesh::VertexId>> local_order;
  if (geometry_) {
    order = &geometry_->order(sk.level);
  } else {
    local_order = cached_spatial_order(mesh_);
    order = local_order.get();
  }
  auto& pending = sk.chunks;
  while (!pending.empty()) {
    const std::uint32_t c = pending.back();
    adios::ReadTiming t;
    const auto part =
        reader_.read_doubles_chunk(var_, adios::BlockKind::kDelta, sk.level, c, &t);
    fold(t, step);
    CANOPUS_CHECK(part.size() == sk.index.chunks[c].count,
                  "chunk size inconsistent with its index");
    util::WallTimer timer;
    const std::size_t start = static_cast<std::size_t>(sk.index.chunks[c].start);
    for (std::size_t i = 0; i < part.size(); ++i) {
      values_[(*order)[start + i]] += part[i];
    }
    step.restore_seconds += timer.seconds();
    // Pop only after the chunk landed: a fetch fault above leaves an exactly
    // resumable remainder (the caller degrades; the flag stays set).
    pending.pop_back();
  }
  partially_refined_ = false;
  skipped_.reset();
}

RetrievalTimings ProgressiveReader::refine_region(const mesh::Aabb& roi) {
  CANOPUS_CHECK(current_level_ > 0, "already at full accuracy");
  const std::uint32_t next = current_level_ - 1;
  CANOPUS_SPAN("read.refine_region", {{"level", next}});
  // A pending read-ahead holds every chunk of the level; a regional step
  // wants only a subset with different accounting, so retire it first.
  if (prefetch_.valid()) prefetch_.wait();

  // Without a chunk index the delta is monolithic: fall back to full refine.
  // A faulted index read, by contrast, degrades like any other failed fetch.
  ChunkIndex index;
  try {
    RetrievalTimings probe;  // folded into the step below
    adios::ReadTiming t;
    const auto raw =
        reader_.read_opaque(var_, adios::BlockKind::kChunkIndex, next, &t);
    util::ByteReader br(raw);
    index = ChunkIndex::deserialize(br);
    fold(t, probe);
    cumulative_ += probe;
  } catch (const storage::TierIoError&) {
    return degrade(RetrievalTimings{});
  } catch (const storage::IntegrityError&) {
    return degrade(RetrievalTimings{});
  } catch (const Error&) {
    return refine();
  }

  RetrievalTimings step;
  double delta_rms = 0.0;
  std::vector<std::uint32_t> skipped_ids;
  try {
    std::size_t fine_count = 0;
    for (const auto& c : index.chunks) fine_count += c.count;
    // Delta in Morton storage order; unfetched chunks stay zero (estimate-only).
    mesh::Field stored(fine_count, 0.0);
    const std::vector<std::uint32_t> wanted = index.intersecting(roi);
    for (std::uint32_t c : wanted) {
      adios::ReadTiming t;
      const auto part =
          reader_.read_doubles_chunk(var_, adios::BlockKind::kDelta, next, c, &t);
      fold(t, step);
      CANOPUS_CHECK(part.size() == index.chunks[c].count,
                    "chunk size inconsistent with its index");
      std::copy(part.begin(), part.end(),
                stored.begin() + static_cast<long>(index.chunks[c].start));
    }
    // `wanted` is ascending (index.intersecting scans chunks in order).
    for (std::uint32_t c = 0;
         c < static_cast<std::uint32_t>(index.chunks.size()); ++c) {
      if (!std::binary_search(wanted.begin(), wanted.end(), c)) {
        skipped_ids.push_back(c);
      }
    }
    delta_rms = rms_of(stored);  // lower bound: skipped chunks count as zero

    if (geometry_) {
      util::WallTimer t;
      const auto delta = unpermute_delta(stored, geometry_->order(next), pool());
      values_ = restore_level(geometry_->meshes[current_level_], values_, delta,
                              geometry_->mappings[next], estimate_, &pool());
      step.restore_seconds = t.seconds();
    } else {
      adios::ReadTiming map_t, mesh_t;
      const auto map_raw =
          reader_.read_opaque(var_, adios::BlockKind::kMapping, next, &map_t);
      const auto mesh_raw =
          reader_.read_opaque(var_, adios::BlockKind::kMesh, next, &mesh_t);
      fold(map_t, step);
      fold(mesh_t, step);
      util::WallTimer t;
      util::ByteReader mesh_reader(mesh_raw);
      const auto fine_mesh = mesh::TriMesh::deserialize(mesh_reader);
      const auto delta =
          unpermute_delta(stored, *cached_spatial_order(fine_mesh), pool());
      util::ByteReader map_reader(map_raw);
      const auto mapping = VertexMapping::deserialize(map_reader);
      values_ = restore_level(mesh_, values_, delta, mapping, estimate_, &pool());
      mesh_ = fine_mesh;
      step.restore_seconds = t.seconds();
    }
  } catch (const storage::TierIoError&) {
    return degrade(std::move(step));
  } catch (const storage::IntegrityError&) {
    return degrade(std::move(step));
  }
  current_level_ = next;
  last_delta_rms_ = delta_rms;
  last_status_ = step.retries > 0 || step.replica_reads > 0
                     ? RefineStatus::kRetried
                     : RefineStatus::kOk;
  // Skip-set bookkeeping for the backfill in refine(). Any previously
  // recorded set is now stale — it applied to a coarser level the reader has
  // moved past.
  const bool was_partial = partially_refined_;
  skipped_.reset();
  if (!skipped_ids.empty()) {
    if (!was_partial) {
      // Clean reader, first partial level: an exact additive backfill is
      // possible until further regional steps stack on top.
      skipped_ = SkippedChunks{next, std::move(index), std::move(skipped_ids)};
    }
    partially_refined_ = true;
  }
  // The ROI covered every chunk: a full-accuracy refine in disguise, the
  // partial flag keeps its previous value.
  CANOPUS_CHECK(values_.size() == current_mesh().vertex_count(),
                "restored level inconsistent with its mesh");
  cumulative_ += step;
  return step;
}

RetrievalTimings ProgressiveReader::refine_to(std::uint32_t level) {
  CANOPUS_CHECK(level < levels_, "level out of range");
  RetrievalTimings acc;
  while (current_level_ > level) {
    acc += refine();
    if (last_status_ == RefineStatus::kDegraded) break;
  }
  return acc;
}

RetrievalTimings ProgressiveReader::refine_until(double rmse_threshold) {
  // NaN poisons every comparison below (rmse < NaN is false, so a NaN
  // threshold would silently refine to full accuracy); reject it loudly. A
  // finite threshold <= 0 is legal and means "no early stop" — an RMS is
  // >= 0, so refinement runs to full accuracy by construction.
  CANOPUS_CHECK(std::isfinite(rmse_threshold),
                "refine_until: rmse_threshold must be finite");
  RetrievalTimings acc;
  while (current_level_ > 0) {
    const mesh::Field before = values_;          // values at the coarser level
    const mesh::TriMesh coarse = current_mesh(); // its mesh (for the estimate)
    acc += refine();
    if (last_status_ == RefineStatus::kDegraded) break;
    // The paper's automated criterion is the RMSE between adjacent levels;
    // that is exactly the RMS of the delta just applied (values - estimate),
    // so recompute the estimate from the coarser level and difference it.
    double sum2 = 0.0;
    VertexMapping loaded;
    const VertexMapping* mapping = nullptr;
    if (geometry_) {
      mapping = &geometry_->mappings[current_level_];
    } else {
      const util::Bytes map_raw =
          reader_.read_opaque(var_, adios::BlockKind::kMapping, current_level_);
      util::ByteReader map_reader(map_raw);
      loaded = VertexMapping::deserialize(map_reader);
      mapping = &loaded;
    }
    for (std::size_t x = 0; x < values_.size(); ++x) {
      const double est = estimate_value(coarse, before, *mapping, x, estimate_);
      const double d = values_[x] - est;
      sum2 += d * d;
    }
    const double rmse = std::sqrt(sum2 / static_cast<double>(values_.size()));
    if (rmse < rmse_threshold) break;
  }
  return acc;
}

RetrievalTimings ProgressiveReader::refine_while(
    const std::function<bool(std::uint32_t, double)>& admit) {
  CANOPUS_CHECK(admit != nullptr, "refine_while: admit must not be null");
  RetrievalTimings acc;
  while (current_level_ > 0) {
    const std::uint32_t next = current_level_ - 1;
    if (!admit(next, estimated_refine_cost(next))) break;
    acc += refine();
    if (last_status_ == RefineStatus::kDegraded) break;
  }
  return acc;
}

double ProgressiveReader::estimated_refine_cost(std::uint32_t level) const {
  CANOPUS_CHECK(level < levels_, "level out of range");
  const auto info = reader_.inq_var(var_);
  const cache::BlockCache* cache = hierarchy_.block_cache();
  // A block's recorded tier is its *write-time* placement; background
  // demotion (fabric eviction, make_room) and the tier advisor move objects
  // afterwards, and charging the stale tier makes planned cost diverge from
  // achieved cost. Price every block at its live residency instead; a key no
  // local tier holds is charged at the remote store's estimate.
  const storage::RemoteStore* remote = hierarchy_.remote_store();
  const auto live_tier =
      [this](const adios::BlockRecord& b) -> std::optional<std::size_t> {
    if (const auto where = hierarchy_.find(b.object_key)) return where;
    return std::nullopt;
  };
  double cost = 0.0;
  // Delta chunks in chunk order, for the ring model below: with the async
  // engine on they run depth-way overlapped (and, uncached, with per-batch
  // tier-latency amortization), so planning charges their makespan — the
  // mirror of what the step's RetrievalTimings will actually report.
  // Each entry carries the chunk's live tier so the same-tier batching test
  // below groups by where chunks are, not where they were written.
  struct DeltaOp {
    std::uint32_t chunk = 0;
    const adios::BlockRecord* block = nullptr;
    std::optional<std::size_t> tier;
  };
  std::vector<DeltaOp> deltas;
  for (const auto& b : info.blocks) {
    if (b.level != level) continue;
    const bool data = b.kind == adios::BlockKind::kDelta;
    const bool geom = geometry_ == nullptr &&
                      (b.kind == adios::BlockKind::kMesh ||
                       b.kind == adios::BlockKind::kMapping);
    if (!data && !geom) continue;
    if (cache != nullptr &&
        (cache->contains(b.object_key) ||
         cache->contains(storage::StorageHierarchy::decoded_alias(b.object_key)))) {
      continue;  // cache hits cost zero simulated seconds
    }
    const std::optional<std::size_t> where = live_tier(b);
    if (!where.has_value() && remote != nullptr) {
      cost += remote->estimated_read_cost(b.object_key, b.stored_bytes);
      continue;
    }
    const std::size_t tier = where.value_or(b.tier);
    if (data && io_config_.enabled() && b.chunk_count > 1) {
      deltas.push_back({b.chunk, &b, tier});
      continue;
    }
    cost += hierarchy_.tier(tier).read_cost(b.stored_bytes);
  }
  if (!deltas.empty()) {
    std::sort(deltas.begin(), deltas.end(),
              [](const DeltaOp& a, const DeltaOp& b) { return a.chunk < b.chunk; });
    const std::uint32_t batch = std::clamp<std::uint32_t>(
        io_config_.batch == 0 ? 1 : io_config_.batch, 1, io_config_.depth);
    std::vector<double> per_op;
    per_op.reserve(deltas.size());
    for (std::size_t i = 0; i < deltas.size(); ++i) {
      const auto& b = *deltas[i].block;
      const std::size_t tier = *deltas[i].tier;
      if (cache != nullptr) {
        // A hierarchy fronted by a block cache serves batches through the
        // single-flight cache path — no round-trip amortization there.
        per_op.push_back(hierarchy_.tier(tier).read_cost(b.stored_bytes));
        continue;
      }
      // read_batch charges one tier round trip per batch: the first op of a
      // batch that lands on a tier pays the latency, later same-tier ops pay
      // bytes only.
      bool first_on_tier = true;
      for (std::size_t j = i - i % batch; j < i; ++j) {
        if (deltas[j].tier == tier) {
          first_on_tier = false;
          break;
        }
      }
      per_op.push_back(
          hierarchy_.tier(tier).batched_read_cost(b.stored_bytes, first_on_tier));
    }
    cost += io::overlap_makespan(per_op, io_config_.depth);
  }
  return cost;
}

}  // namespace canopus::core
