#pragma once
// Byte-splitting refactoring — the second reduction scheme Section III-C
// names (citing the ExaCution work [19]) alongside mesh decimation.
//
// Each IEEE-754 double is transposed into byte planes ordered by
// significance: group 0 carries the sign/exponent/top-mantissa bytes (the
// base), later groups append mantissa bytes (the deltas). Reading the first
// k groups reconstructs every value with the remaining mantissa bytes
// zeroed, i.e. a truncation whose relative error is bounded by
// 2^-(8*bytes_read - 12) per value. Unlike mesh decimation the vertex count
// never changes — accuracy, not resolution, is progressive — and the planes
// are highly compressible because exponent bytes repeat across smooth data.

#include <cstdint>
#include <span>
#include <vector>

#include "util/byte_buffer.hpp"

namespace canopus::core {

/// The byte-plane groups of one variable.
struct ByteSplit {
  /// planes[g] holds group_bytes[g] bytes per value, value-major transposed
  /// (all values' first byte of the group, then the second byte, ...), which
  /// clusters similar bytes for the downstream lossless codec.
  std::vector<util::Bytes> planes;
  std::vector<std::uint8_t> group_bytes;  // bytes per value in each group
  std::size_t count = 0;                  // number of values

  std::size_t group_count() const { return planes.size(); }
};

/// Splits values into byte-significance groups. `group_bytes` must sum to 8;
/// e.g. {2, 2, 4} gives a 2-byte base plus two refinement groups.
ByteSplit byte_split(std::span<const double> values,
                     std::span<const std::uint8_t> group_bytes);

/// Reconstructs from the first `groups_used` groups (>= 1); missing mantissa
/// bytes read as zero.
std::vector<double> byte_merge(const ByteSplit& split, std::size_t groups_used);

/// Worst-case relative truncation error when only `prefix_bytes` of the 8
/// are kept: 2^-(8*prefix_bytes - 12) (12 = sign + exponent bits + 1).
double byte_split_relative_error(std::size_t prefix_bytes);

}  // namespace canopus::core
