#include "core/delta.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace canopus::core {

namespace {
/// Minimum per-task iteration count for the per-vertex loops below: tasks
/// cheaper than this cost more to enqueue than to run.
constexpr std::size_t kVertexGrain = 2048;

util::ThreadPool& pool_or_global(util::ThreadPool* pool) {
  return pool ? *pool : util::ThreadPool::global();
}
}  // namespace

VertexMapping build_mapping(const mesh::TriMesh& fine, const mesh::TriMesh& coarse,
                            util::ThreadPool* pool) {
  const mesh::PointLocator locator(coarse);
  VertexMapping m;
  m.triangle.resize(fine.vertex_count());
  m.weights.resize(fine.vertex_count());
  // Point location per vertex is independent; fan out on the pool (this is
  // the dominant cost of the refactoring write path).
  pool_or_global(pool).parallel_for(
      0, fine.vertex_count(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t v = lo; v < hi; ++v) {
          const auto loc = locator.locate(fine.vertex(v));
          m.triangle[v] = loc.triangle;
          m.weights[v] = loc.weights;
        }
      },
      /*grain=*/512);
  // Quantize before anyone computes deltas against these weights, so the
  // persisted mapping reproduces the in-memory one exactly.
  m.quantize_weights();
  return m;
}

double estimate_value(const mesh::TriMesh& coarse, const mesh::Field& coarse_values,
                      const VertexMapping& mapping, std::size_t fine_vertex,
                      EstimateMode mode) {
  const auto& tri = coarse.triangle(mapping.triangle[fine_vertex]);
  const double vi = coarse_values[tri.v[0]];
  const double vj = coarse_values[tri.v[1]];
  const double vk = coarse_values[tri.v[2]];
  const auto& w = mapping.weights[fine_vertex];
  switch (mode) {
    case EstimateMode::kUniformThirds:
      return (vi + vj + vk) / 3.0;
    case EstimateMode::kBarycentric:
      return w[0] * vi + w[1] * vj + w[2] * vk;
    case EstimateMode::kNearestVertex: {
      const auto best = static_cast<std::size_t>(
          std::max_element(w.begin(), w.end()) - w.begin());
      return coarse_values[tri.v[best]];
    }
  }
  CANOPUS_UNREACHABLE("unknown estimate mode");
}

mesh::Field compute_delta(const mesh::TriMesh& coarse, const mesh::Field& coarse_values,
                          const mesh::Field& fine_values, const VertexMapping& mapping,
                          EstimateMode mode, util::ThreadPool* pool) {
  CANOPUS_CHECK(fine_values.size() == mapping.size(),
                "delta: fine field / mapping size mismatch");
  CANOPUS_CHECK(coarse_values.size() == coarse.vertex_count(),
                "delta: coarse field size mismatch");
  mesh::Field delta(fine_values.size());
  // Each entry is an independent pure function of its inputs, so splitting
  // the range cannot change a single bit of the output.
  pool_or_global(pool).parallel_for(
      0, fine_values.size(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t x = lo; x < hi; ++x) {
          delta[x] =
              fine_values[x] - estimate_value(coarse, coarse_values, mapping, x, mode);
        }
      },
      kVertexGrain);
  return delta;
}

mesh::Field restore_level(const mesh::TriMesh& coarse, const mesh::Field& coarse_values,
                          const mesh::Field& delta, const VertexMapping& mapping,
                          EstimateMode mode, util::ThreadPool* pool) {
  CANOPUS_CHECK(delta.size() == mapping.size(),
                "restore: delta / mapping size mismatch");
  CANOPUS_CHECK(coarse_values.size() == coarse.vertex_count(),
                "restore: coarse field size mismatch");
  mesh::Field fine(delta.size());
  pool_or_global(pool).parallel_for(
      0, delta.size(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t x = lo; x < hi; ++x) {
          fine[x] = delta[x] + estimate_value(coarse, coarse_values, mapping, x, mode);
        }
      },
      kVertexGrain);
  return fine;
}

}  // namespace canopus::core
