#include "core/delta.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"

#if CANOPUS_SIMD_X86
#include <immintrin.h>
#endif

namespace canopus::core {

namespace {
/// Minimum per-task iteration count for the per-vertex loops below: tasks
/// cheaper than this cost more to enqueue than to run.
constexpr std::size_t kVertexGrain = 2048;

util::ThreadPool& pool_or_global(util::ThreadPool* pool) {
  return pool ? *pool : util::ThreadPool::global();
}

/// Scalar residual/restore loop over [lo, hi):
///   out[x] = in[x] - Estimate(x)   (add = false, Algorithm 2)
///   out[x] = in[x] + Estimate(x)   (add = true,  Algorithm 3)
void apply_estimate_scalar(const mesh::TriMesh& coarse,
                           const mesh::Field& coarse_values,
                           const VertexMapping& mapping, EstimateMode mode,
                           const double* in, double* out, bool add,
                           std::size_t lo, std::size_t hi) {
  for (std::size_t x = lo; x < hi; ++x) {
    const double est = estimate_value(coarse, coarse_values, mapping, x, mode);
    out[x] = add ? in[x] + est : in[x] - est;
  }
}

#if CANOPUS_SIMD_X86
// Four vertices per step: gather the triangle's corner ids, gather the corner
// values, combine them with the exact operation order of estimate_value
// (mul/add/div intrinsics — never FMA, which would contract the barycentric
// roundings the scalar path performs), and apply the residual. Bitwise
// identical to apply_estimate_scalar lane by lane; kNearestVertex keeps its
// scalar tie-breaking loop.
//
// Gathers are the whole cost of this kernel, so it uses as few as possible:
// the (i, j) corner ids ride one 64-bit gather (corner ids are adjacent in
// the triangle array), and the per-vertex barycentric weights — contiguous
// stride-3 AoS — are loaded with three plain vector loads and transposed in
// registers instead of gathered.
__attribute__((target("avx2"))) void apply_estimate_avx2(
    const std::uint32_t* tri_ids, const std::uint32_t* tri_verts,
    const double* coarse_vals, const double* weights, bool uniform,
    const double* in, double* out, bool add, std::size_t lo, std::size_t hi) {
  const __m128i three = _mm_set1_epi32(3);
  const __m128i two = _mm_set1_epi32(2);
  const __m256d third = _mm256_set1_pd(3.0);
  const __m256i even_dwords = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  const __m256i odd_dwords = _mm256_setr_epi32(1, 3, 5, 7, 0, 0, 0, 0);
  // Masked gathers with an explicit zero source + all-ones mask: identical to
  // the plain gathers, but without the undefined pass-through operand GCC's
  // unmasked wrappers carry (it trips -Wmaybe-uninitialized at -O2).
  const __m128i imask = _mm_set1_epi32(-1);
  const __m128i izero = _mm_setzero_si128();
  const __m256i qmask = _mm256_set1_epi64x(-1);
  const __m256i qzero = _mm256_setzero_si256();
  const __m256d dmask = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
  const __m256d dzero = _mm256_setzero_pd();
  std::size_t x = lo;
  for (; x + 4 <= hi; x += 4) {
    const __m128i t =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(tri_ids + x));
    const __m128i base = _mm_mullo_epi32(t, three);
    const auto* verts = reinterpret_cast<const int*>(tri_verts);
    // verts[3t] and verts[3t+1] are adjacent: one 8-byte gather fetches both,
    // then even/odd dword shuffles split them into the i and j id quadruples.
    const __m256i ij = _mm256_mask_i32gather_epi64(
        qzero, reinterpret_cast<const long long*>(verts), base, qmask, 4);
    const __m128i i0 =
        _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(ij, even_dwords));
    const __m128i i1 =
        _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(ij, odd_dwords));
    const __m128i i2 = _mm_mask_i32gather_epi32(
        izero, verts, _mm_add_epi32(base, two), imask, 4);
    const __m256d vi = _mm256_mask_i32gather_pd(dzero, coarse_vals, i0, dmask, 8);
    const __m256d vj = _mm256_mask_i32gather_pd(dzero, coarse_vals, i1, dmask, 8);
    const __m256d vk = _mm256_mask_i32gather_pd(dzero, coarse_vals, i2, dmask, 8);
    __m256d est;
    if (uniform) {
      est = _mm256_div_pd(_mm256_add_pd(_mm256_add_pd(vi, vj), vk), third);
    } else {
      // AoS->SoA transpose of 12 contiguous weights:
      //   a = [w0_0 w1_0 w2_0 w0_1]  b = [w1_1 w2_1 w0_2 w1_2]
      //   c = [w2_2 w0_3 w1_3 w2_3]
      // w0 = [a0 a3 b2 c1], w1 = [a1 b0 b3 c2], w2 = [a2 b1 c0 c3].
      const double* w = weights + 3 * x;
      const __m256d a = _mm256_loadu_pd(w);
      const __m256d b = _mm256_loadu_pd(w + 4);
      const __m256d c = _mm256_loadu_pd(w + 8);
      const __m256d w0 = _mm256_blend_pd(
          _mm256_blend_pd(_mm256_permute4x64_pd(a, 0x0C),
                          _mm256_permute4x64_pd(b, 0x20), 0b0100),
          _mm256_permute4x64_pd(c, 0x40), 0b1000);
      const __m256d w1 = _mm256_blend_pd(
          _mm256_blend_pd(_mm256_permute4x64_pd(a, 0x01),
                          _mm256_permute4x64_pd(b, 0x30), 0b0110),
          _mm256_permute4x64_pd(c, 0x80), 0b1000);
      const __m256d w2 = _mm256_blend_pd(
          _mm256_blend_pd(_mm256_permute4x64_pd(a, 0x02),
                          _mm256_permute4x64_pd(b, 0x04), 0b0010),
          _mm256_permute4x64_pd(c, 0xC0), 0b1100);
      est = _mm256_add_pd(
          _mm256_add_pd(_mm256_mul_pd(w0, vi), _mm256_mul_pd(w1, vj)),
          _mm256_mul_pd(w2, vk));
    }
    const __m256d v = _mm256_loadu_pd(in + x);
    _mm256_storeu_pd(out + x,
                     add ? _mm256_add_pd(v, est) : _mm256_sub_pd(v, est));
  }
  for (; x < hi; ++x) {
    const std::uint32_t* tri = tri_verts + 3 * tri_ids[x];
    double est;
    if (uniform) {
      est = (coarse_vals[tri[0]] + coarse_vals[tri[1]] + coarse_vals[tri[2]]) /
            3.0;
    } else {
      const double* w = weights + 3 * x;
      est = w[0] * coarse_vals[tri[0]] + w[1] * coarse_vals[tri[1]] +
            w[2] * coarse_vals[tri[2]];
    }
    out[x] = add ? in[x] + est : in[x] - est;
  }
}
#endif  // CANOPUS_SIMD_X86

/// Range dispatcher shared by compute_delta and restore_level.
void apply_estimate(const mesh::TriMesh& coarse,
                    const mesh::Field& coarse_values,
                    const VertexMapping& mapping, EstimateMode mode,
                    const double* in, double* out, bool add, std::size_t lo,
                    std::size_t hi) {
#if CANOPUS_SIMD_X86
  if (util::simd::use_avx2() && (mode == EstimateMode::kUniformThirds ||
                                 mode == EstimateMode::kBarycentric) &&
      !coarse.triangles().empty()) {
    apply_estimate_avx2(mapping.triangle.data(),
                        coarse.triangles().data()->v.data(),
                        coarse_values.data(),
                        mapping.weights.empty()
                            ? nullptr
                            : mapping.weights.data()->data(),
                        mode == EstimateMode::kUniformThirds, in, out, add, lo,
                        hi);
    return;
  }
#endif
  apply_estimate_scalar(coarse, coarse_values, mapping, mode, in, out, add, lo,
                        hi);
}
}  // namespace

VertexMapping build_mapping(const mesh::TriMesh& fine, const mesh::TriMesh& coarse,
                            util::ThreadPool* pool) {
  const mesh::PointLocator locator(coarse);
  VertexMapping m;
  m.triangle.resize(fine.vertex_count());
  m.weights.resize(fine.vertex_count());
  // Point location per vertex is independent; fan out on the pool (this is
  // the dominant cost of the refactoring write path).
  pool_or_global(pool).parallel_for(
      0, fine.vertex_count(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t v = lo; v < hi; ++v) {
          const auto loc = locator.locate(fine.vertex(v));
          m.triangle[v] = loc.triangle;
          m.weights[v] = loc.weights;
        }
      },
      /*grain=*/512);
  // Quantize before anyone computes deltas against these weights, so the
  // persisted mapping reproduces the in-memory one exactly.
  m.quantize_weights();
  return m;
}

double estimate_value(const mesh::TriMesh& coarse, const mesh::Field& coarse_values,
                      const VertexMapping& mapping, std::size_t fine_vertex,
                      EstimateMode mode) {
  const auto& tri = coarse.triangle(mapping.triangle[fine_vertex]);
  const double vi = coarse_values[tri.v[0]];
  const double vj = coarse_values[tri.v[1]];
  const double vk = coarse_values[tri.v[2]];
  const auto& w = mapping.weights[fine_vertex];
  switch (mode) {
    case EstimateMode::kUniformThirds:
      return (vi + vj + vk) / 3.0;
    case EstimateMode::kBarycentric:
      return w[0] * vi + w[1] * vj + w[2] * vk;
    case EstimateMode::kNearestVertex: {
      const auto best = static_cast<std::size_t>(
          std::max_element(w.begin(), w.end()) - w.begin());
      return coarse_values[tri.v[best]];
    }
  }
  CANOPUS_UNREACHABLE("unknown estimate mode");
}

mesh::Field compute_delta(const mesh::TriMesh& coarse, const mesh::Field& coarse_values,
                          const mesh::Field& fine_values, const VertexMapping& mapping,
                          EstimateMode mode, util::ThreadPool* pool) {
  CANOPUS_CHECK(fine_values.size() == mapping.size(),
                "delta: fine field / mapping size mismatch");
  CANOPUS_CHECK(coarse_values.size() == coarse.vertex_count(),
                "delta: coarse field size mismatch");
  mesh::Field delta(fine_values.size());
  // Each entry is an independent pure function of its inputs, so splitting
  // the range (or widening it into SIMD lanes) cannot change a single bit of
  // the output.
  pool_or_global(pool).parallel_for(
      0, fine_values.size(),
      [&](std::size_t lo, std::size_t hi) {
        apply_estimate(coarse, coarse_values, mapping, mode,
                       fine_values.data(), delta.data(), /*add=*/false, lo, hi);
      },
      kVertexGrain);
  return delta;
}

mesh::Field restore_level(const mesh::TriMesh& coarse, const mesh::Field& coarse_values,
                          const mesh::Field& delta, const VertexMapping& mapping,
                          EstimateMode mode, util::ThreadPool* pool) {
  CANOPUS_CHECK(delta.size() == mapping.size(),
                "restore: delta / mapping size mismatch");
  CANOPUS_CHECK(coarse_values.size() == coarse.vertex_count(),
                "restore: coarse field size mismatch");
  mesh::Field fine(delta.size());
  pool_or_global(pool).parallel_for(
      0, delta.size(),
      [&](std::size_t lo, std::size_t hi) {
        apply_estimate(coarse, coarse_values, mapping, mode, delta.data(),
                       fine.data(), /*add=*/true, lo, hi);
      },
      kVertexGrain);
  return fine;
}

}  // namespace canopus::core
