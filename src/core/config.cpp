#include "core/config.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>

#include "util/assert.hpp"
#include "util/xml.hpp"

namespace canopus::core {

namespace {

/// Splits "12.5MiB" into (12.5, "MiB").
std::pair<double, std::string> split_number_unit(const std::string& text) {
  CANOPUS_CHECK(!text.empty(), "empty quantity");
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  CANOPUS_CHECK(end != text.c_str(), "quantity has no number: " + text);
  std::string unit(end);
  while (!unit.empty() && std::isspace(static_cast<unsigned char>(unit.front()))) {
    unit.erase(unit.begin());
  }
  return {value, unit};
}

double size_unit_factor(const std::string& unit) {
  if (unit.empty() || unit == "B") return 1.0;
  if (unit == "KiB") return 1024.0;
  if (unit == "MiB") return 1024.0 * 1024.0;
  if (unit == "GiB") return 1024.0 * 1024.0 * 1024.0;
  if (unit == "TiB") return 1024.0 * 1024.0 * 1024.0 * 1024.0;
  if (unit == "KB") return 1e3;
  if (unit == "MB") return 1e6;
  if (unit == "GB") return 1e9;
  if (unit == "TB") return 1e12;
  throw Error("unknown size unit: " + unit);
}

storage::TierSpec preset_spec(const std::string& preset, std::size_t capacity) {
  if (preset == "tmpfs") return storage::tmpfs_spec(capacity);
  if (preset == "nvram") return storage::nvram_spec(capacity);
  if (preset == "ssd") return storage::ssd_spec(capacity);
  if (preset == "burst-buffer") return storage::burst_buffer_spec(capacity);
  if (preset == "lustre") return storage::lustre_spec(capacity);
  if (preset == "campaign") return storage::campaign_spec(capacity);
  throw Error("unknown tier preset: " + preset);
}

mesh::EdgePriority parse_priority(const std::string& name) {
  if (name == "shortest") return mesh::EdgePriority::kShortestFirst;
  if (name == "random") return mesh::EdgePriority::kRandom;
  if (name == "gradient") return mesh::EdgePriority::kGradientWeighted;
  throw Error("unknown edge priority: " + name);
}

bool parse_bool(const std::string& text) {
  if (text == "true" || text == "1" || text == "yes") return true;
  if (text == "false" || text == "0" || text == "no") return false;
  throw Error("not a boolean: " + text);
}

/// Contextual numeric parsing for XML attributes. Bare std::stoul/stod would
/// let malformed values escape as raw std::invalid_argument/out_of_range
/// with no hint of which element was wrong; these helpers throw
/// canopus::Error naming the offending element/attribute (`what`, e.g.
/// "<refactor> attribute 'levels'") and reject negative and overflowing
/// values outright.
std::string trimmed(const std::string& text) {
  auto begin = text.begin(), end = text.end();
  while (begin != end && std::isspace(static_cast<unsigned char>(*begin))) ++begin;
  while (end != begin && std::isspace(static_cast<unsigned char>(*(end - 1)))) --end;
  return std::string(begin, end);
}

std::uint64_t parse_uint(const std::string& text, const std::string& what) {
  const std::string t = trimmed(text);
  CANOPUS_CHECK(!t.empty(), what + " must not be empty");
  CANOPUS_CHECK(t[0] != '-', what + " must be non-negative: '" + text + "'");
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(t.c_str(), &end, 10);
  CANOPUS_CHECK(end != t.c_str() && *end == '\0',
                what + " is not an integer: '" + text + "'");
  CANOPUS_CHECK(errno != ERANGE &&
                    v <= std::numeric_limits<std::uint64_t>::max(),
                what + " overflows: '" + text + "'");
  return static_cast<std::uint64_t>(v);
}

double parse_double(const std::string& text, const std::string& what) {
  const std::string t = trimmed(text);
  CANOPUS_CHECK(!t.empty(), what + " must not be empty");
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(t.c_str(), &end);
  CANOPUS_CHECK(end != t.c_str() && *end == '\0',
                what + " is not a number: '" + text + "'");
  CANOPUS_CHECK(errno != ERANGE && std::isfinite(v),
                what + " overflows or is not finite: '" + text + "'");
  return v;
}

double parse_probability(const std::string& text, const std::string& what) {
  char* end = nullptr;
  const double p = std::strtod(text.c_str(), &end);
  CANOPUS_CHECK(end != text.c_str() && *end == '\0',
                what + " is not a number: " + text);
  CANOPUS_CHECK(p >= 0.0 && p <= 1.0, what + " must be in [0, 1]: " + text);
  return p;
}

}  // namespace

std::size_t parse_size(const std::string& text) {
  const auto [value, unit] = split_number_unit(text);
  CANOPUS_CHECK(value >= 0.0, "negative size: " + text);
  return static_cast<std::size_t>(value * size_unit_factor(unit));
}

double parse_rate(const std::string& text) {
  const auto [value, unit] = split_number_unit(text);
  CANOPUS_CHECK(value > 0.0, "rate must be positive: " + text);
  CANOPUS_CHECK(unit.size() > 2 && unit.substr(unit.size() - 2) == "/s",
                "rate must end in /s: " + text);
  return value * size_unit_factor(unit.substr(0, unit.size() - 2));
}

double parse_duration(const std::string& text) {
  const auto [value, unit] = split_number_unit(text);
  CANOPUS_CHECK(value >= 0.0, "negative duration: " + text);
  if (unit == "s") return value;
  if (unit == "ms") return value * 1e-3;
  if (unit == "us") return value * 1e-6;
  if (unit == "ns") return value * 1e-9;
  throw Error("unknown duration unit: " + unit);
}

RuntimeConfig load_config(const std::string& xml_text) {
  const auto root = util::parse_xml(xml_text);
  CANOPUS_CHECK(root->name == "canopus-config",
                "root element must be <canopus-config>, got <" + root->name + ">");
  RuntimeConfig config;

  const auto* storage_node = root->child("storage");
  CANOPUS_CHECK(storage_node != nullptr, "missing <storage> section");
  {
    const auto policy = storage_node->attr("policy", "fastest-fit");
    if (policy == "fastest-fit") {
      config.policy = storage::PlacementPolicy::kFastestFit;
    } else if (policy == "slowest-only") {
      config.policy = storage::PlacementPolicy::kSlowestOnly;
    } else if (policy == "round-robin") {
      config.policy = storage::PlacementPolicy::kRoundRobin;
    } else {
      throw Error("unknown placement policy: " + policy);
    }
  }
  for (const auto* tier : storage_node->children_named("tier")) {
    CANOPUS_CHECK(tier->has_attr("capacity"),
                  "<tier> needs a capacity attribute");
    const auto capacity = parse_size(tier->attr("capacity"));
    storage::TierSpec spec;
    if (tier->has_attr("preset")) {
      spec = preset_spec(tier->attr("preset"), capacity);
    } else {
      CANOPUS_CHECK(tier->has_attr("name"), "<tier> needs a preset or a name");
      spec.name = tier->attr("name");
      spec.capacity_bytes = capacity;
    }
    if (tier->has_attr("name")) spec.name = tier->attr("name");
    if (tier->has_attr("read-bw")) spec.read_bandwidth = parse_rate(tier->attr("read-bw"));
    if (tier->has_attr("write-bw")) spec.write_bandwidth = parse_rate(tier->attr("write-bw"));
    if (tier->has_attr("read-latency")) {
      spec.read_latency = parse_duration(tier->attr("read-latency"));
    }
    if (tier->has_attr("write-latency")) {
      spec.write_latency = parse_duration(tier->attr("write-latency"));
    }
    if (tier->has_attr("backend")) {
      const auto backend = tier->attr("backend");
      if (backend == "memory") {
        spec.backend = storage::Backend::kMemory;
      } else if (backend == "file") {
        spec.backend = storage::Backend::kFile;
        spec.root_dir = tier->attr("root");
        CANOPUS_CHECK(!spec.root_dir.empty(), "file tier needs root attribute");
      } else {
        throw Error("unknown tier backend: " + backend);
      }
    }
    config.tiers.push_back(std::move(spec));
  }
  CANOPUS_CHECK(!config.tiers.empty(), "<storage> lists no tiers");

  if (const auto* refactor = root->child("refactor")) {
    auto& rc = config.refactor;
    if (refactor->has_attr("levels")) {
      rc.levels = static_cast<std::size_t>(parse_uint(
          refactor->attr("levels"), "<refactor> attribute 'levels'"));
      CANOPUS_CHECK(rc.levels >= 1, "levels must be >= 1");
    }
    if (refactor->has_attr("step")) {
      rc.step = parse_double(refactor->attr("step"), "<refactor> attribute 'step'");
      CANOPUS_CHECK(rc.step >= 1.0, "step must be >= 1");
    }
    if (refactor->has_attr("codec")) rc.codec = refactor->attr("codec");
    if (refactor->has_attr("error-bound")) {
      rc.error_bound = parse_double(refactor->attr("error-bound"),
                                    "<refactor> attribute 'error-bound'");
      CANOPUS_CHECK(rc.error_bound >= 0.0,
                    "<refactor> attribute 'error-bound' must be >= 0");
    }
    if (refactor->has_attr("estimate")) {
      rc.estimate = estimate_mode_from_string(refactor->attr("estimate"));
    }
    if (refactor->has_attr("priority")) {
      rc.decimate.priority = parse_priority(refactor->attr("priority"));
    }
    if (refactor->has_attr("tiered-placement")) {
      rc.tiered_placement = parse_bool(refactor->attr("tiered-placement"));
    }
  }

  if (const auto* threads = root->child("threads")) {
    // Worker count as text content: <threads>4</threads> (0 = hardware).
    std::string text = threads->text;
    text.erase(std::remove_if(text.begin(), text.end(),
                              [](unsigned char c) { return std::isspace(c); }),
               text.end());
    CANOPUS_CHECK(!text.empty(), "<threads> needs a worker count");
    config.refactor.parallel.threads =
        static_cast<std::size_t>(parse_uint(text, "<threads> worker count"));
  }

  if (const auto* pipeline = root->child("pipeline")) {
    auto& pc = config.refactor.parallel;
    if (pipeline->has_attr("overlap")) {
      pc.pipeline = parse_bool(pipeline->attr("overlap"));
    }
    if (pipeline->has_attr("read-ahead")) {
      pc.read_ahead = parse_bool(pipeline->attr("read-ahead"));
    }
  }

  if (const auto* faults = root->child("faults")) {
    if (faults->has_attr("seed")) {
      config.fault_seed =
          parse_uint(faults->attr("seed"), "<faults> attribute 'seed'");
    }
    for (const auto* tier : faults->children_named("tier")) {
      CANOPUS_CHECK(tier->has_attr("name"),
                    "<faults><tier> needs a name attribute");
      RuntimeConfig::TierFaults tf;
      tf.tier_name = tier->attr("name");
      const bool known = std::any_of(
          config.tiers.begin(), config.tiers.end(),
          [&](const storage::TierSpec& s) { return s.name == tf.tier_name; });
      CANOPUS_CHECK(known, "<faults> names unknown tier '" + tf.tier_name + "'");
      auto& p = tf.profile;
      if (tier->has_attr("read-error")) {
        p.read_error = parse_probability(tier->attr("read-error"), "read-error");
      }
      if (tier->has_attr("write-error")) {
        p.write_error =
            parse_probability(tier->attr("write-error"), "write-error");
      }
      if (tier->has_attr("corrupt")) {
        p.corrupt = parse_probability(tier->attr("corrupt"), "corrupt");
      }
      if (tier->has_attr("latency-spike")) {
        p.latency_spike =
            parse_probability(tier->attr("latency-spike"), "latency-spike");
      }
      if (tier->has_attr("spike-duration")) {
        p.spike_seconds = parse_duration(tier->attr("spike-duration"));
      }
      config.faults.push_back(std::move(tf));
    }
  }

  if (const auto* retry = root->child("retry")) {
    storage::RetryPolicy policy;
    if (retry->has_attr("max-attempts")) {
      const std::uint64_t attempts = parse_uint(
          retry->attr("max-attempts"), "<retry> attribute 'max-attempts'");
      CANOPUS_CHECK(attempts <= std::numeric_limits<std::uint32_t>::max(),
                    "<retry> attribute 'max-attempts' overflows: '" +
                        retry->attr("max-attempts") + "'");
      policy.max_attempts = static_cast<std::uint32_t>(attempts);
      CANOPUS_CHECK(policy.max_attempts >= 1, "max-attempts must be >= 1");
    }
    if (retry->has_attr("backoff")) {
      policy.backoff_seconds = parse_duration(retry->attr("backoff"));
    }
    if (retry->has_attr("multiplier")) {
      policy.backoff_multiplier = parse_double(
          retry->attr("multiplier"), "<retry> attribute 'multiplier'");
      CANOPUS_CHECK(policy.backoff_multiplier >= 1.0,
                    "backoff multiplier must be >= 1");
    }
    config.retry = policy;
  }

  if (const auto* cache_node = root->child("cache")) {
    canopus::cache::CacheConfig cc;
    if (cache_node->has_attr("budget")) {
      cc.budget_bytes = parse_size(cache_node->attr("budget"));
    }
    if (cache_node->has_attr("budget-mb")) {
      const std::uint64_t mb = parse_uint(cache_node->attr("budget-mb"),
                                          "<cache> attribute 'budget-mb'");
      CANOPUS_CHECK(mb <= (std::numeric_limits<std::uint64_t>::max() >> 20),
                    "<cache> attribute 'budget-mb' overflows: '" +
                        cache_node->attr("budget-mb") + "'");
      cc.budget_bytes = static_cast<std::size_t>(mb << 20);
    }
    CANOPUS_CHECK(cc.budget_bytes > 0, "cache budget must be > 0");
    if (cache_node->has_attr("shards")) {
      cc.shards = static_cast<std::size_t>(
          parse_uint(cache_node->attr("shards"), "<cache> attribute 'shards'"));
      CANOPUS_CHECK(cc.shards >= 1, "cache shards must be >= 1");
    }
    if (cache_node->has_attr("verify-hits")) {
      cc.verify_hits = parse_bool(cache_node->attr("verify-hits"));
    }
    config.cache = cc;
  }

  if (const auto* observability = root->child("observability")) {
    obs::ObservabilityOptions oo;
    if (observability->has_attr("enabled")) {
      oo.enabled = parse_bool(observability->attr("enabled"));
    } else {
      // Presence of the element without the attribute means "turn it on".
      oo.enabled = true;
    }
    if (observability->has_attr("trace")) {
      oo.trace_path = observability->attr("trace");
    }
    if (observability->has_attr("histogram-buckets")) {
      oo.histogram_buckets = static_cast<std::size_t>(
          parse_uint(observability->attr("histogram-buckets"),
                     "<observability> attribute 'histogram-buckets'"));
      CANOPUS_CHECK(oo.histogram_buckets >= 2,
                    "histogram-buckets must be >= 2");
    }
    config.observability = oo;
  }

  if (const auto* io_node = root->child("io")) {
    io::IoConfig ic;
    if (io_node->has_attr("depth")) {
      ic.depth = static_cast<std::uint32_t>(
          parse_uint(io_node->attr("depth"), "<io> attribute 'depth'"));
      CANOPUS_CHECK(ic.depth >= 1, "<io> depth must be >= 1");
    }
    if (io_node->has_attr("batch")) {
      ic.batch = static_cast<std::uint32_t>(
          parse_uint(io_node->attr("batch"), "<io> attribute 'batch'"));
      CANOPUS_CHECK(ic.batch >= 1, "<io> batch must be >= 1");
    }
    if (io_node->has_attr("deadline")) {
      ic.deadline_seconds = parse_duration(io_node->attr("deadline"));
      CANOPUS_CHECK(ic.deadline_seconds >= 0.0, "<io> deadline must be >= 0");
    }
    config.io = ic;
  }

  if (const auto* serve_node = root->child("serve")) {
    serve::ServeConfig sc;
    if (serve_node->has_attr("workers")) {
      sc.workers = static_cast<std::size_t>(
          parse_uint(serve_node->attr("workers"), "<serve> attribute 'workers'"));
      CANOPUS_CHECK(sc.workers >= 1, "<serve> workers must be >= 1");
    }
    if (serve_node->has_attr("queue-limit")) {
      sc.queue_limit = static_cast<std::size_t>(parse_uint(
          serve_node->attr("queue-limit"), "<serve> attribute 'queue-limit'"));
      CANOPUS_CHECK(sc.queue_limit >= 1, "<serve> queue-limit must be >= 1");
    }
    if (serve_node->has_attr("deadline-default")) {
      sc.default_deadline_seconds =
          parse_duration(serve_node->attr("deadline-default"));
      CANOPUS_CHECK(sc.default_deadline_seconds > 0.0,
                    "<serve> deadline-default must be > 0");
    }
    if (serve_node->has_attr("age-boost")) {
      sc.age_boost = parse_double(serve_node->attr("age-boost"),
                                  "<serve> attribute 'age-boost'");
      CANOPUS_CHECK(sc.age_boost >= 0.0, "<serve> age-boost must be >= 0");
    }
    config.serve = sc;
  }

  if (const auto* fabric_node = root->child("fabric")) {
    fabric::FabricOptions fo;
    if (fabric_node->has_attr("nodes")) {
      fo.nodes = static_cast<std::size_t>(
          parse_uint(fabric_node->attr("nodes"), "<fabric> attribute 'nodes'"));
      CANOPUS_CHECK(fo.nodes >= 1, "<fabric> nodes must be >= 1");
    }
    if (fabric_node->has_attr("partition")) {
      const std::string& p = fabric_node->attr("partition");
      if (p == "hash") {
        fo.partition = fabric::Partition::kHash;
      } else if (p == "range" || p == "morton-range") {
        fo.partition = fabric::Partition::kMortonRange;
      } else {
        throw Error("<fabric> unknown partition scheme: '" + p + "'");
      }
    }
    if (fabric_node->has_attr("remote-us")) {
      const double us = parse_double(fabric_node->attr("remote-us"),
                                     "<fabric> attribute 'remote-us'");
      CANOPUS_CHECK(us >= 0.0, "<fabric> remote-us must be >= 0");
      fo.remote_latency_seconds = us / 1e6;
    }
    if (fabric_node->has_attr("remote-bw")) {
      fo.remote_bandwidth = parse_rate(fabric_node->attr("remote-bw"));
      CANOPUS_CHECK(fo.remote_bandwidth > 0.0, "<fabric> remote-bw must be > 0");
    }
    if (fabric_node->has_attr("eviction-high")) {
      fo.eviction_high = parse_probability(fabric_node->attr("eviction-high"),
                                           "eviction-high");
    }
    if (fabric_node->has_attr("eviction-low")) {
      fo.eviction_low = parse_probability(fabric_node->attr("eviction-low"),
                                          "eviction-low");
    }
    CANOPUS_CHECK(fo.eviction_high == 0.0 || fo.eviction_low <= fo.eviction_high,
                  "<fabric> eviction-low must be <= eviction-high");
    if (fabric_node->has_attr("eviction-interval")) {
      fo.eviction_interval_seconds =
          parse_duration(fabric_node->attr("eviction-interval"));
      CANOPUS_CHECK(fo.eviction_interval_seconds > 0.0,
                    "<fabric> eviction-interval must be > 0");
    }
    config.fabric = fo;
  }

  if (const auto* tiering_node = root->child("tiering")) {
    tiering::TieringConfig tc;
    if (tiering_node->has_attr("enabled")) {
      tc.enabled = parse_bool(tiering_node->attr("enabled"));
    }
    if (tiering_node->has_attr("half-life")) {
      tc.half_life_seconds = parse_duration(tiering_node->attr("half-life"));
      CANOPUS_CHECK(tc.half_life_seconds > 0.0,
                    "<tiering> half-life must be > 0");
    }
    if (tiering_node->has_attr("promote-above")) {
      tc.promote_threshold = parse_double(tiering_node->attr("promote-above"),
                                          "<tiering> attribute 'promote-above'");
      CANOPUS_CHECK(tc.promote_threshold >= 0.0,
                    "<tiering> promote-above must be >= 0");
    }
    if (tiering_node->has_attr("demote-below")) {
      tc.demote_threshold = parse_double(tiering_node->attr("demote-below"),
                                         "<tiering> attribute 'demote-below'");
      CANOPUS_CHECK(tc.demote_threshold >= 0.0,
                    "<tiering> demote-below must be >= 0");
    }
    // Mirror of the <fabric> eviction-low <= eviction-high check: an
    // inverted hysteresis band (every heat value asks for both moves at
    // once) is a config bug, rejected with the element and attributes named.
    CANOPUS_CHECK(tc.demote_threshold < tc.promote_threshold,
                  "<tiering> attribute 'demote-below' must be < attribute "
                  "'promote-above' (hysteresis band)");
    if (tiering_node->has_attr("interval")) {
      tc.interval_seconds = parse_duration(tiering_node->attr("interval"));
      CANOPUS_CHECK(tc.interval_seconds > 0.0,
                    "<tiering> interval must be > 0");
    }
    if (tiering_node->has_attr("max-moves")) {
      tc.max_moves_per_tick = static_cast<std::size_t>(parse_uint(
          tiering_node->attr("max-moves"), "<tiering> attribute 'max-moves'"));
      CANOPUS_CHECK(tc.max_moves_per_tick >= 1,
                    "<tiering> max-moves must be >= 1");
    }
    if (tiering_node->has_attr("cooldown-ticks")) {
      tc.cooldown_ticks = static_cast<std::uint32_t>(
          parse_uint(tiering_node->attr("cooldown-ticks"),
                     "<tiering> attribute 'cooldown-ticks'"));
    }
    if (tiering_node->has_attr("reserve")) {
      tc.reserve = parse_probability(tiering_node->attr("reserve"), "reserve");
      CANOPUS_CHECK(tc.reserve < 1.0, "<tiering> reserve must be < 1");
    }
    config.tiering = tc;
  }
  return config;
}

storage::StorageHierarchy RuntimeConfig::make_hierarchy() const {
  storage::StorageHierarchy hierarchy(tiers, policy);
  if (!faults.empty()) {
    auto injector = std::make_shared<storage::FaultInjector>(fault_seed);
    for (const auto& tf : faults) {
      bool matched = false;
      for (std::size_t i = 0; i < tiers.size(); ++i) {
        if (tiers[i].name == tf.tier_name) {
          injector->set_profile(i, tf.profile);
          matched = true;
          break;
        }
      }
      CANOPUS_CHECK(matched, "fault profile names unknown tier '" +
                                 tf.tier_name + "'");
    }
    hierarchy.attach_fault_injector(std::move(injector));
  }
  if (retry) hierarchy.set_retry_policy(*retry);
  if (cache) {
    hierarchy.attach_block_cache(
        std::make_shared<canopus::cache::BlockCache>(*cache));
  }
  return hierarchy;
}

canopus::Options RuntimeConfig::options() const {
  canopus::Options out;
  out.parallel = refactor.parallel;
  out.observability = observability;
  out.cache = cache;
  out.serve = serve;
  out.fabric = fabric;
  out.tiering = tiering;
  if (io.has_value()) out.io = *io;
  return out;
}

RuntimeConfig load_config_file(const std::string& path) {
  std::ifstream f(path);
  CANOPUS_CHECK(f.good(), "cannot open config file: " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  return load_config(buf.str());
}

}  // namespace canopus::core
