#include "core/types.hpp"

#include "util/assert.hpp"

namespace canopus::core {

std::string to_string(EstimateMode mode) {
  switch (mode) {
    case EstimateMode::kUniformThirds: return "uniform";
    case EstimateMode::kBarycentric: return "barycentric";
    case EstimateMode::kNearestVertex: return "nearest";
  }
  CANOPUS_UNREACHABLE("unknown estimate mode");
}

EstimateMode estimate_mode_from_string(const std::string& s) {
  if (s == "uniform") return EstimateMode::kUniformThirds;
  if (s == "barycentric") return EstimateMode::kBarycentric;
  if (s == "nearest") return EstimateMode::kNearestVertex;
  throw Error("unknown estimate mode: " + s);
}

void VertexMapping::quantize_weights() {
  for (auto& w : weights) {
    w[0] = static_cast<double>(static_cast<float>(w[0]));
    w[1] = static_cast<double>(static_cast<float>(w[1]));
    w[2] = 1.0 - w[0] - w[1];  // affine constraint (Eq. 3) kept exactly
  }
}

void VertexMapping::serialize(util::ByteWriter& out) const {
  CANOPUS_ASSERT(triangle.size() == weights.size());
  out.put_varint(triangle.size());
  for (std::size_t i = 0; i < triangle.size(); ++i) {
    out.put_varint(triangle[i]);
    // float32 weights (the mapping is quantized at build time, so this is
    // exact); the third weight is implied by the affine constraint.
    out.put(static_cast<float>(weights[i][0]));
    out.put(static_cast<float>(weights[i][1]));
  }
}

VertexMapping VertexMapping::deserialize(util::ByteReader& in) {
  VertexMapping m;
  const auto n = in.get_varint();
  m.triangle.reserve(n);
  m.weights.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    m.triangle.push_back(static_cast<std::uint32_t>(in.get_varint()));
    const double w0 = static_cast<double>(in.get<float>());
    const double w1 = static_cast<double>(in.get<float>());
    m.weights.push_back({w0, w1, 1.0 - w0 - w1});
  }
  return m;
}

std::vector<std::uint32_t> ChunkIndex::intersecting(const mesh::Aabb& roi) const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t c = 0; c < chunks.size(); ++c) {
    const auto& b = chunks[c].bbox;
    const bool disjoint = b.hi.x < roi.lo.x || b.lo.x > roi.hi.x ||
                          b.hi.y < roi.lo.y || b.lo.y > roi.hi.y;
    if (!disjoint) out.push_back(c);
  }
  return out;
}

void ChunkIndex::serialize(util::ByteWriter& out) const {
  out.put_varint(chunks.size());
  for (const auto& c : chunks) {
    out.put_varint(c.start);
    out.put_varint(c.count);
    out.put(c.bbox.lo.x);
    out.put(c.bbox.lo.y);
    out.put(c.bbox.hi.x);
    out.put(c.bbox.hi.y);
  }
}

ChunkIndex ChunkIndex::deserialize(util::ByteReader& in) {
  ChunkIndex idx;
  const auto n = in.get_varint();
  idx.chunks.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    Range r;
    r.start = in.get_varint();
    r.count = in.get_varint();
    r.bbox.lo.x = in.get<double>();
    r.bbox.lo.y = in.get<double>();
    r.bbox.hi.x = in.get<double>();
    r.bbox.hi.y = in.get<double>();
    idx.chunks.push_back(r);
  }
  return idx;
}

}  // namespace canopus::core
