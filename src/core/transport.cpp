#include "core/transport.hpp"

#include "util/assert.hpp"

namespace canopus::core {

std::string to_string(TransportMode mode) {
  switch (mode) {
    case TransportMode::kInSitu: return "in-situ";
    case TransportMode::kInTransit: return "in-transit";
  }
  CANOPUS_UNREACHABLE("unknown transport mode");
}

TransportMode transport_mode_from_string(const std::string& s) {
  if (s == "in-situ") return TransportMode::kInSitu;
  if (s == "in-transit") return TransportMode::kInTransit;
  throw Error("unknown transport mode: " + s);
}

TransportReport write_with_transport(storage::StorageHierarchy& hierarchy,
                                     const std::string& path, const std::string& var,
                                     const mesh::TriMesh& mesh,
                                     const mesh::Field& values,
                                     const RefactorConfig& config,
                                     TransportMode mode,
                                     std::size_t staging_tier) {
  TransportReport report;
  if (mode == TransportMode::kInSitu) {
    report.refactor =
        refactor_and_write(hierarchy, path, var, mesh, values, config);
    report.simulation_blocked_seconds =
        report.refactor.phases.get("decimation") +
        report.refactor.phases.get("delta+compress") +
        report.refactor.phases.get("io");
    return report;
  }

  // In transit: burst the raw bytes to the staging tier — that is all the
  // simulation waits for.
  const std::string staged_key = path + "/" + var + "/.staged";
  const auto staged_io = hierarchy.write_to(
      staging_tier, staged_key, util::as_bytes_view(values));
  report.simulation_blocked_seconds = staged_io.sim_seconds;

  // Drain (asynchronous to the simulation): read the staged copy back,
  // refactor, place the products, release the staging space.
  util::Bytes raw;
  const auto read_back = hierarchy.read(staged_key, raw);
  const auto staged_values = util::from_bytes<double>(raw);
  report.refactor =
      refactor_and_write(hierarchy, path, var, mesh, staged_values, config);
  hierarchy.erase(staged_key);
  report.drain_seconds = read_back.sim_seconds +
                         report.refactor.phases.get("decimation") +
                         report.refactor.phases.get("delta+compress") +
                         report.refactor.phases.get("io");
  return report;
}

}  // namespace canopus::core
