#pragma once
// Transport modes for the write path (Section III-A).
//
// The paper runs Canopus either *in situ* — refactoring on the simulation
// node before anything is written — or *in transit* — staging the raw data
// to auxiliary memory first so the simulation is blocked only for the cheap
// staging write, with refactoring happening off the critical path. Both are
// runtime options. In this reproduction the distinction is what blocks the
// simulation clock:
//
//   kInSitu:    simulation blocks for decimation + delta + compression + the
//               product writes (refactor_and_write's full cost).
//   kInTransit: simulation blocks only for a raw write to the staging tier;
//               the drain phase (read staged raw -> refactor -> place ->
//               evict staged copy) is accounted separately.

#include <string>

#include "core/refactorer.hpp"
#include "mesh/tri_mesh.hpp"
#include "storage/hierarchy.hpp"

namespace canopus::core {

enum class TransportMode : std::uint8_t {
  kInSitu = 0,
  kInTransit = 1,
};

std::string to_string(TransportMode mode);
TransportMode transport_mode_from_string(const std::string& s);

struct TransportReport {
  /// Simulated seconds the simulation is blocked before resuming compute.
  double simulation_blocked_seconds = 0.0;
  /// Simulated + wall cost of the asynchronous drain (zero for in situ,
  /// where everything is inside the blocked window).
  double drain_seconds = 0.0;
  RefactorReport refactor;
};

/// Writes one variable under the chosen transport mode. For kInTransit,
/// `staging_tier` names the tier that absorbs the raw burst (e.g. a
/// burst-buffer or DRAM tier); it must fit the raw data or Error is thrown.
TransportReport write_with_transport(storage::StorageHierarchy& hierarchy,
                                     const std::string& path, const std::string& var,
                                     const mesh::TriMesh& mesh,
                                     const mesh::Field& values,
                                     const RefactorConfig& config,
                                     TransportMode mode,
                                     std::size_t staging_tier = 0);

}  // namespace canopus::core
