#pragma once
// Unified result classification for the public facade (canopus::Status).
//
// One invariant, repo-wide (DESIGN.md §14): every public entry point on
// Pipeline and ReadSession returns a Status; exceptions thrown by the layers
// underneath (storage::TierIoError, storage::IntegrityError,
// storage::CapacityError, canopus::Error, anything std::exception-derived)
// are mapped to a Status at the facade boundary and never escape it. The
// serve module's scheduler and the fabric control plane reuse the same
// mapper (status_from_current_exception) so one exception always means one
// code, no matter which door it left through.

#include <cstdint>
#include <string>

namespace canopus {

/// Replaces the mixed error reporting of the pre-facade API: thrown
/// canopus::Error / storage::TierIoError / storage::IntegrityError on some
/// paths, core::RefineStatus plus robustness counters on others.
enum class StatusCode : std::uint8_t {
  kOk = 0,            // completed, no faults along the way
  kRetried = 1,       // completed after tier retries or a replica fallback
  kDegraded = 2,      // result usable but at reduced accuracy (read path)
  kInvalidArgument = 3,  // malformed request (caller bug)
  kNotFound = 4,      // container or variable does not exist
  kIoError = 5,       // tier I/O failed after every retry and replica
  kIntegrityError = 6,  // corruption detected and no clean copy remained
  kCapacity = 7,      // no tier can hold the data (write path)
  kInternal = 8,      // unexpected failure; detail carries the message
  kOverloaded = 9,    // query shed by admission control (serve path); the
                      // client should back off and retry, possibly coarser
};

std::string to_string(StatusCode code);

/// Outcome of one Pipeline operation: code + human-readable detail + whether
/// a usable-but-reduced-accuracy result was produced (the elastic-accuracy
/// contract: a degraded read keeps the last good level instead of failing).
struct Status {
  StatusCode code = StatusCode::kOk;
  std::string detail;
  bool degraded = false;

  /// Completed at full requested fidelity (kOk or kRetried).
  bool ok() const {
    return code == StatusCode::kOk || code == StatusCode::kRetried;
  }
  /// Produced a usable result (ok, or degraded with data to analyze).
  bool usable() const { return ok() || degraded; }

  std::string to_string() const;  // "code" or "code: detail"

  static Status success() { return {}; }
  static Status failure(StatusCode code, std::string detail) {
    return {code, std::move(detail), false};
  }
};

/// Maps the in-flight exception (call from inside a catch block) to a
/// Status. The storage error taxonomy maps one-to-one
/// (CapacityError→kCapacity, IntegrityError→kIntegrityError,
/// TierIoError→kIoError); a generic canopus::Error maps to
/// `generic_error_code` — pass kNotFound on open-shaped paths where Error
/// means a missing container or variable, keep the kInternal default where
/// it means a broken invariant. This is the ONLY exception→Status mapping in
/// the tree; facade, serve, and fabric boundaries all call it.
Status status_from_current_exception(
    StatusCode generic_error_code = StatusCode::kInternal);

}  // namespace canopus
