#pragma once
// canopus::Options — the consolidated runtime option surface.
//
// Before this header the knobs of one deployment were scattered: concurrency
// in core::ParallelConfig, instrumentation in obs::ObservabilityOptions,
// robustness in storage::RetryPolicy + FaultInjector, caching in
// cache::CacheConfig, serving in serve::ServeConfig, async I/O in
// io::IoConfig, and the cluster shape in fabric::FabricOptions — each spelled
// slightly differently at each call site (PipelineOptions members,
// ReaderOptions members, XML blocks). Options gathers every per-subsystem
// block under one roof, with one fluent builder per subsystem, uniform
// defaults, and a single validation pass that reports every inconsistency
// with its subsystem context ("canopus::Options: serve.workers must
// be >= 1") instead of a CANOPUS_CHECK deep inside the subsystem.
//
//   auto options = canopus::Options{}
//                      .with_threads(8)
//                      .with_cache({.budget_bytes = 256 << 20})
//                      .with_serve({.workers = 4, .queue_limit = 64})
//                      .with_fabric({.nodes = 4});
//   canopus::Pipeline pipeline(tiers, options);
//
// The old spelling `canopus::PipelineOptions` remains as a deprecated alias
// of this type (see core/pipeline.hpp), so existing designated-initializer
// call sites keep compiling unchanged; see README.md's migration table.
//
// The per-subsystem structs themselves stay where their subsystem defines
// them (serve/serve_config.hpp, io/io_config.hpp, ...): Options is the
// aggregation point, not a parallel redefinition, so a knob added to a
// subsystem is immediately settable here.

#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "cache/block_cache.hpp"
#include "core/status.hpp"
#include "core/types.hpp"
#include "fabric/fabric_config.hpp"
#include "io/io_config.hpp"
#include "obs/observability.hpp"
#include "serve/serve_config.hpp"
#include "storage/hierarchy.hpp"
#include "tiering/tiering_config.hpp"

namespace canopus {

/// Pipeline-lifetime configuration: the one place concurrency,
/// instrumentation, fault policy, caching, serving, async I/O, and the
/// cluster topology are set.
struct Options {
  /// Worker count / pipeline overlap / read-ahead for both directions.
  core::ParallelConfig parallel;
  /// When set, obs::install()ed at construction (enables or disables
  /// process-wide metrics+tracing). Leave unset to keep the current global
  /// observability state (e.g. a bench already enabled --trace-out).
  std::optional<obs::ObservabilityOptions> observability;
  /// When set, applied to the hierarchy at construction.
  std::optional<storage::RetryPolicy> retry;
  /// When set, attached to the hierarchy at construction (seeded fault
  /// injection for robustness testing).
  std::shared_ptr<storage::FaultInjector> faults;
  /// When set, a shared BlockCache with this budget/sharding is attached to
  /// the hierarchy at construction (unless one is already attached): tier
  /// blobs and decoded chunk arrays are then shared across every reader and
  /// ReadSession of this pipeline, with single-flight loading. Leave unset
  /// for the uncached (per-reader) behavior.
  std::optional<cache::CacheConfig> cache;
  /// When set, Pipeline::submit_query()'s QueryScheduler is created with
  /// these knobs (worker count, bounded admission queue, default deadline,
  /// priority aging). Leave unset to get ServeConfig defaults on first use.
  std::optional<serve::ServeConfig> serve;
  /// Async I/O engine shape forwarded into every reader/session this
  /// pipeline opens (core::ReaderOptions::io). The depth-1 default keeps the
  /// blocking read path.
  io::IoConfig io;
  /// Cluster shape (node count, partitioning, network envelope, eviction
  /// watermarks). The pipeline itself does not construct a fabric::Fabric —
  /// build one from these options and Pipeline::attach_fabric() it — but
  /// carrying the block here gives XML configs and builders one home for it
  /// (RuntimeConfig::options() fills it from the <fabric> element).
  std::optional<fabric::FabricOptions> fabric;
  /// Workload-adaptive tiering (heat tracking + TierAdvisor policy). When
  /// set, Pipeline::tier_advisor() is built with these knobs — and created
  /// eagerly by query_scheduler() when `tiering->enabled`, so queries feed
  /// heat and plan against predicted residency from the first submission.
  /// Leave unset for static placement (the advisor can still be created
  /// explicitly with defaults via Pipeline::tier_advisor()).
  std::optional<tiering::TieringConfig> tiering;

  // --- Fluent builders (each returns *this so calls chain). -----------------

  Options& with_parallel(core::ParallelConfig value) {
    parallel = value;
    return *this;
  }
  /// Shorthand for the most-set knob: parallel.threads.
  Options& with_threads(std::size_t threads) {
    parallel.threads = threads;
    return *this;
  }
  Options& with_observability(obs::ObservabilityOptions value) {
    observability = std::move(value);
    return *this;
  }
  /// Shorthand: enable observability with a Chrome-trace sink at `path`.
  Options& with_trace(std::string path) {
    obs::ObservabilityOptions o;
    o.enabled = true;
    o.trace_path = std::move(path);
    observability = std::move(o);
    return *this;
  }
  Options& with_retry(storage::RetryPolicy value) {
    retry = value;
    return *this;
  }
  Options& with_faults(std::shared_ptr<storage::FaultInjector> value) {
    faults = std::move(value);
    return *this;
  }
  Options& with_cache(cache::CacheConfig value) {
    cache = value;
    return *this;
  }
  Options& with_serve(serve::ServeConfig value) {
    serve = value;
    return *this;
  }
  Options& with_io(io::IoConfig value) {
    io = value;
    return *this;
  }
  Options& with_fabric(fabric::FabricOptions value) {
    fabric = value;
    return *this;
  }
  Options& with_tiering(tiering::TieringConfig value) {
    tiering = value;
    return *this;
  }

  /// One validation pass over every set block. Throws canopus::Error whose
  /// message names the offending subsystem and knob ("canopus::Options:
  /// fabric.nodes must be >= 1"); the facade boundary (Pipeline
  /// construction, Pipeline::load) maps it to StatusCode::kInvalidArgument.
  void validate() const;

  /// Exception-free validation for Status-first call sites.
  Status check() const;
};

}  // namespace canopus
