#include "core/options.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace canopus {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw Error("canopus::Options: " + what);
}

void require(bool ok, const char* what) {
  if (!ok) fail(what);
}

bool finite_positive(double v) { return std::isfinite(v) && v > 0.0; }

}  // namespace

void Options::validate() const {
  // Every rule here restates a CANOPUS_CHECK that used to fire deep inside a
  // subsystem constructor; validating up front turns a mid-construction
  // abort into a contextual kInvalidArgument at the facade boundary.
  if (observability.has_value()) {
    require(observability->histogram_buckets >= 2,
            "observability.histogram_buckets must be >= 2");
  }
  if (retry.has_value()) {
    require(retry->max_attempts >= 1, "retry.max_attempts must be >= 1");
    require(std::isfinite(retry->backoff_seconds) &&
                retry->backoff_seconds >= 0.0,
            "retry.backoff_seconds must be finite and >= 0");
    require(std::isfinite(retry->backoff_multiplier) &&
                retry->backoff_multiplier >= 1.0,
            "retry.backoff_multiplier must be finite and >= 1");
  }
  if (cache.has_value()) {
    require(cache->budget_bytes > 0, "cache.budget_bytes must be > 0");
    require(cache->shards >= 1, "cache.shards must be >= 1");
  }
  if (serve.has_value()) {
    require(serve->workers >= 1, "serve.workers must be >= 1");
    require(serve->queue_limit >= 1, "serve.queue_limit must be >= 1");
    require(finite_positive(serve->default_deadline_seconds),
            "serve.default_deadline_seconds must be finite and > 0");
    require(std::isfinite(serve->age_boost) && serve->age_boost >= 0.0,
            "serve.age_boost must be finite and >= 0");
  }
  require(io.batch >= 1, "io.batch must be >= 1");
  require(std::isfinite(io.deadline_seconds) && io.deadline_seconds >= 0.0,
          "io.deadline_seconds must be finite and >= 0 (0 disables)");
  if (fabric.has_value()) {
    require(fabric->nodes >= 1, "fabric.nodes must be >= 1");
    require(finite_positive(fabric->remote_bandwidth),
            "fabric.remote_bandwidth must be finite and > 0");
    require(std::isfinite(fabric->remote_latency_seconds) &&
                fabric->remote_latency_seconds >= 0.0,
            "fabric.remote_latency_seconds must be finite and >= 0");
    if (fabric->eviction_high > 0.0) {
      require(fabric->eviction_high <= 1.0,
              "fabric.eviction_high must be <= 1");
      require(fabric->eviction_low >= 0.0 &&
                  fabric->eviction_low < fabric->eviction_high,
              "fabric.eviction_low must be in [0, eviction_high)");
      require(finite_positive(fabric->eviction_interval_seconds),
              "fabric.eviction_interval_seconds must be finite and > 0");
    }
  }
  if (tiering.has_value()) {
    require(finite_positive(tiering->half_life_seconds),
            "tiering.half_life_seconds must be finite and > 0");
    require(std::isfinite(tiering->promote_threshold) &&
                tiering->promote_threshold >= 0.0,
            "tiering.promote_threshold must be finite and >= 0");
    require(std::isfinite(tiering->demote_threshold) &&
                tiering->demote_threshold >= 0.0 &&
                tiering->demote_threshold < tiering->promote_threshold,
            "tiering.demote_threshold must be in [0, promote_threshold) — "
            "an inverted hysteresis band would thrash");
    require(finite_positive(tiering->interval_seconds),
            "tiering.interval_seconds must be finite and > 0");
    require(tiering->max_moves_per_tick >= 1,
            "tiering.max_moves_per_tick must be >= 1");
    require(std::isfinite(tiering->reserve) && tiering->reserve >= 0.0 &&
                tiering->reserve < 1.0,
            "tiering.reserve must be in [0, 1)");
  }
}

Status Options::check() const {
  try {
    validate();
    return Status::success();
  } catch (...) {
    return status_from_current_exception(StatusCode::kInvalidArgument);
  }
}

}  // namespace canopus
