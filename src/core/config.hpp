#pragma once
// Runtime configuration from an ADIOS-style external XML file.
//
// The paper configures transports and tier mappings declaratively
// ("selected and configured in an external XML configuration file", Section
// III-D) so switching layouts needs no recompilation. This loader accepts:
//
//   <canopus-config>
//     <storage policy="fastest-fit">
//       <tier preset="tmpfs"  capacity="4MiB"/>
//       <tier preset="lustre" capacity="1GiB" read-bw="250MB/s"
//             read-latency="5ms"/>
//       <tier name="archive" capacity="8GiB" read-bw="40MB/s"
//             write-bw="40MB/s" read-latency="50ms" write-latency="50ms"
//             backend="file" root="/tmp/archive"/>
//     </storage>
//     <refactor levels="3" step="2" codec="zfp" error-bound="1e-6"
//               estimate="uniform" priority="shortest"
//               tiered-placement="true"/>
//     <threads>4</threads>
//     <pipeline overlap="true" read-ahead="true"/>
//     <faults seed="42">
//       <tier name="lustre" read-error="0.1" corrupt="0.01"
//             latency-spike="0.05" spike-duration="20ms"/>
//     </faults>
//     <retry max-attempts="4" backoff="1ms" multiplier="2"/>
//     <cache budget="64MiB" shards="8"/>
//     <observability enabled="true" trace="run-trace.json"
//                    histogram-buckets="64"/>
//     <io depth="8" batch="4" deadline="5ms"/>
//     <serve workers="4" queue-limit="64" deadline-default="250ms"
//            age-boost="4"/>
//     <fabric nodes="4" partition="range" remote-us="200" remote-bw="1GB/s"
//             eviction-high="0.9" eviction-low="0.75"
//             eviction-interval="10ms"/>
//     <tiering enabled="true" half-life="500ms" promote-above="4"
//              demote-below="1" interval="10ms" max-moves="8"
//              cooldown-ticks="2" reserve="0.1"/>
//   </canopus-config>
//
// Presets (tmpfs, nvram, ssd, burst-buffer, lustre, campaign) pull the
// envelope from storage/tier.hpp; explicit attributes override preset
// fields. Sizes accept B/KiB/MiB/GiB/TiB (and KB/MB/GB/TB as powers of ten),
// rates accept .../s of the same units, durations accept ns/us/ms/s.
//
// The optional <faults> section wires a seeded storage::FaultInjector into
// the hierarchy: each <tier name="..."> child names a configured tier and
// sets its failure probabilities (read-error, write-error, corrupt,
// latency-spike in [0,1]; spike-duration as a duration). <retry> tunes the
// hierarchy's read retry-with-backoff policy.
//
// <threads> pins the task engine's worker count (0 = hardware concurrency)
// and <pipeline> toggles the writer's compute/commit overlap and the
// reader's delta read-ahead; both land in RefactorConfig::parallel.
//
// The optional <observability> element configures the metrics + tracing
// layer (src/obs): `enabled` flips the process-wide master switch, `trace`
// names the Chrome-trace JSON sink, and `histogram-buckets` sets latency
// histogram resolution (log2 buckets, clamped to [2, 64]).
//
// The optional <cache> element attaches a shared BlockCache to the hierarchy
// (src/cache): `budget` is a size ("64MiB"; `budget-mb` accepts a bare
// MiB count), `shards` the lock-shard count, and `verify-hits` re-checks
// each hit's CRC-32.
//
// The optional <io> element shapes the asynchronous submission/completion
// engine (src/io) the progressive reader routes its delta fetches through:
// `depth` bounds the in-flight tier operations (1 = blocking, the default),
// `batch` the ops per aggregated submission to the storage hierarchy, and
// `deadline` the per-op simulated-latency deadline (a miss is recorded on
// the io.deadline_misses counter, never enforced).
//
// The optional <serve> element configures the deadline-aware query
// scheduler behind Pipeline::submit_query (src/serve): `workers` is the
// service capacity, `queue-limit` bounds the admission queue (excess
// submissions are shed with kOverloaded), `deadline-default` is the
// retrieval-cost budget of queries that name none, and `age-boost` the
// priority points a waiting query gains per queued second.
//
// The optional <fabric> element describes a simulated multi-node serving
// cluster (src/fabric): `nodes` is the node count, `partition` the chunk
// ownership scheme ("range" = contiguous Morton ranges, "hash" = FNV-1a),
// `remote-us` the per-message one-way latency in microseconds and
// `remote-bw` the inter-node bandwidth of the remote-read envelope, and
// `eviction-high`/`eviction-low`/`eviction-interval` the per-node
// anticipatory eviction provider's watermarks (fractions of tier-0
// capacity; high = 0 disables the provider).
//
// The optional <tiering> element configures the workload-adaptive tier
// advisor (src/tiering): `enabled` starts its background policy thread,
// `half-life` the access-heat decay, `promote-above`/`demote-below` the
// hysteresis band (promote-above must exceed demote-below — inverted bands
// are rejected like inverted eviction watermarks), `interval` the policy
// period, `max-moves`/`cooldown-ticks` the churn bounds, and `reserve` the
// headroom fraction kept free on a promotion's target tier (in [0, 1)).

#include <optional>
#include <string>
#include <vector>

#include "cache/block_cache.hpp"
#include "core/options.hpp"
#include "core/types.hpp"
#include "fabric/fabric_config.hpp"
#include "io/io_config.hpp"
#include "obs/observability.hpp"
#include "serve/serve_config.hpp"
#include "storage/fault.hpp"
#include "storage/hierarchy.hpp"
#include "tiering/tiering_config.hpp"

namespace canopus::core {

struct RuntimeConfig {
  std::vector<storage::TierSpec> tiers;  // fastest first, as listed
  storage::PlacementPolicy policy = storage::PlacementPolicy::kFastestFit;
  RefactorConfig refactor;

  /// Fault-injection plan: seed + per-tier profiles, matched by tier name.
  struct TierFaults {
    std::string tier_name;
    storage::FaultProfile profile;
  };
  std::uint64_t fault_seed = 0;
  std::vector<TierFaults> faults;
  std::optional<storage::RetryPolicy> retry;

  /// Metrics + tracing plan from the optional <observability> element;
  /// nullopt leaves the process-wide observability state untouched.
  std::optional<obs::ObservabilityOptions> observability;

  /// Shared block cache from the optional <cache> element; nullopt runs
  /// uncached. make_hierarchy() attaches it; Pipeline::from_config also
  /// forwards it so a facade built from this config shares one cache.
  std::optional<canopus::cache::CacheConfig> cache;

  /// Async-engine shape from the optional <io> element; nullopt keeps the
  /// blocking read path (identical to IoConfig's depth-1 default). Forwarded
  /// by Pipeline::from_config into every reader the pipeline opens.
  std::optional<canopus::io::IoConfig> io;

  /// Query-scheduler knobs from the optional <serve> element; nullopt means
  /// Pipeline::submit_query falls back to ServeConfig defaults on first use.
  /// Forwarded by Pipeline::from_config.
  std::optional<canopus::serve::ServeConfig> serve;

  /// Simulated-cluster shape from the optional <fabric> element; nullopt
  /// means single-node serving. The loader only parses and validates the
  /// options — constructing the fabric::Fabric (and importing a container
  /// into it) is the application's call, since it needs tier specs per node.
  std::optional<canopus::fabric::FabricOptions> fabric;

  /// Workload-adaptive tiering knobs from the optional <tiering> element;
  /// nullopt keeps placement static. Forwarded by Pipeline::from_config into
  /// Options::tiering (the pipeline builds the TierAdvisor from it).
  std::optional<canopus::tiering::TieringConfig> tiering;

  /// Builds the configured hierarchy, with the fault injector attached and
  /// the retry policy applied when the document configured them.
  storage::StorageHierarchy make_hierarchy() const;

  /// The document's option blocks as one canopus::Options (parallel,
  /// observability, cache, io, serve, fabric, tiering). retry and faults are left
  /// unset on purpose: make_hierarchy() already applies them, and a Pipeline
  /// built from (make_hierarchy(), options()) must not apply them twice.
  canopus::Options options() const;
};

/// Parses a configuration document; throws Error with a description of the
/// offending element on invalid input.
RuntimeConfig load_config(const std::string& xml_text);

/// Reads and parses a configuration file.
RuntimeConfig load_config_file(const std::string& path);

/// Unit helpers, exposed for reuse/testing.
std::size_t parse_size(const std::string& text);     // "4MiB" -> bytes
double parse_rate(const std::string& text);          // "250MB/s" -> bytes/s
double parse_duration(const std::string& text);      // "5ms" -> seconds

}  // namespace canopus::core
