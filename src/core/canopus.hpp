#pragma once
// Umbrella header: the public Canopus API.
//
// Typical write side:
//
//   storage::StorageHierarchy tiers({storage::tmpfs_spec(...),
//                                    storage::lustre_spec(...)});
//   core::RefactorConfig config;            // levels, codec, error bound
//   core::refactor_and_write(tiers, "run.bp", "dpot", mesh, values, config);
//
// Typical read side:
//
//   core::ProgressiveReader reader(tiers, "run.bp", "dpot");
//   analyze(reader.values(), reader.current_mesh());   // base accuracy
//   reader.refine();                                   // one level better
//   reader.refine_to(0);                               // full accuracy

#include "core/byte_split.hpp"
#include "core/campaign.hpp"
#include "core/delta.hpp"
#include "core/geometry_cache.hpp"
#include "core/progressive_reader.hpp"
#include "core/refactorer.hpp"
#include "core/transport.hpp"
#include "core/types.hpp"
