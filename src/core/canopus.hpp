#pragma once
// Umbrella header: the public Canopus API.
//
// The preferred entry point is the canopus::Pipeline facade (pipeline.hpp):
//
//   storage::StorageHierarchy tiers({storage::tmpfs_spec(...),
//                                    storage::lustre_spec(...)});
//   Pipeline pipeline(tiers);
//
//   WriteRequest wreq;
//   wreq.path = "run.bp"; wreq.var = "dpot";
//   wreq.mesh = &mesh; wreq.values = &values;
//   Status ws = pipeline.write(wreq);
//
//   ReadRequest rreq;
//   rreq.path = "run.bp"; rreq.var = "dpot";
//   ReadResult data;
//   Status rs = pipeline.read(rreq, &data);   // full accuracy by default
//
// For step-wise elastic refinement, pipeline.open() hands out the underlying
// ProgressiveReader:
//
//   std::unique_ptr<core::ProgressiveReader> reader;
//   pipeline.open(rreq, &reader);
//   analyze(reader->values(), reader->current_mesh());  // base accuracy
//   reader->refine();                                   // one level better
//
// The pre-facade entry points (core::refactor_and_write, direct
// ProgressiveReader construction) remain for source compatibility.

#include "core/byte_split.hpp"
#include "core/campaign.hpp"
#include "core/delta.hpp"
#include "core/geometry_cache.hpp"
#include "core/pipeline.hpp"
#include "core/progressive_reader.hpp"
#include "core/refactorer.hpp"
#include "core/transport.hpp"
#include "core/types.hpp"
