#include "core/geometry_cache.hpp"

#include <map>
#include <mutex>
#include <tuple>

#include "adios/bp.hpp"
#include "util/assert.hpp"
#include "util/crc32.hpp"

namespace canopus::core {

namespace {

/// Geometry fingerprint for the spatial-order memo: vertex count, bounds,
/// and a CRC of the raw coordinate bytes. Computing it is O(n) with a small
/// constant — far cheaper than the O(n log n) Morton sort it saves.
using OrderKey = std::tuple<std::size_t, double, double, double, double,
                            std::uint32_t>;

OrderKey order_key(const mesh::TriMesh& mesh) {
  const auto box = mesh.bounds();
  const auto& verts = mesh.vertices();
  const auto crc = util::Crc32::compute(util::BytesView(
      reinterpret_cast<const std::byte*>(verts.data()),
      verts.size() * sizeof(mesh::Vec2)));
  return {mesh.vertex_count(), box.lo.x, box.lo.y, box.hi.x, box.hi.y, crc};
}

}  // namespace

std::shared_ptr<const std::vector<mesh::VertexId>> cached_spatial_order(
    const mesh::TriMesh& mesh) {
  static std::mutex mu;
  static std::map<OrderKey, std::shared_ptr<const std::vector<mesh::VertexId>>>
      memo;

  const auto key = order_key(mesh);
  {
    std::lock_guard lock(mu);
    if (const auto it = memo.find(key); it != memo.end()) return it->second;
  }
  // Sort outside the lock: concurrent first requests for the same mesh may
  // both compute, but the result is a pure function of the geometry so
  // whichever insert wins is identical.
  auto order = std::make_shared<const std::vector<mesh::VertexId>>(
      mesh::spatial_order(mesh));
  std::lock_guard lock(mu);
  // A process analyzes a handful of distinct meshes; cap the memo so a
  // pathological stream of unique meshes cannot grow it unboundedly.
  if (memo.size() >= 128) memo.clear();
  return memo.try_emplace(key, std::move(order)).first->second;
}

GeometryCache GeometryCache::load(storage::StorageHierarchy& hierarchy,
                                  const std::string& path, const std::string& var,
                                  double* io_seconds) {
  adios::BpReader reader(hierarchy, path);
  const auto levels_attr = reader.attribute("levels");
  CANOPUS_CHECK(levels_attr.has_value(), "container missing 'levels' attribute");
  const auto levels = static_cast<std::size_t>(std::stoul(*levels_attr));

  GeometryCache cache;
  double io = 0.0;
  for (std::size_t l = 0; l < levels; ++l) {
    adios::ReadTiming t;
    const auto raw = reader.read_opaque(var, adios::BlockKind::kMesh,
                                        static_cast<std::uint32_t>(l), &t);
    io += t.io_sim_seconds;
    util::ByteReader br(raw);
    cache.meshes.push_back(mesh::TriMesh::deserialize(br));
  }
  for (std::size_t l = 0; l + 1 < levels; ++l) {
    adios::ReadTiming t;
    const auto raw = reader.read_opaque(var, adios::BlockKind::kMapping,
                                        static_cast<std::uint32_t>(l), &t);
    io += t.io_sim_seconds;
    util::ByteReader br(raw);
    cache.mappings.push_back(VertexMapping::deserialize(br));
  }
  cache.orders.reserve(cache.meshes.size());
  for (const auto& m : cache.meshes) {
    cache.orders.push_back(cached_spatial_order(m));
  }
  if (io_seconds) *io_seconds = io;
  return cache;
}

}  // namespace canopus::core
