#include "core/geometry_cache.hpp"

#include "adios/bp.hpp"
#include "util/assert.hpp"

namespace canopus::core {

GeometryCache GeometryCache::load(storage::StorageHierarchy& hierarchy,
                                  const std::string& path, const std::string& var,
                                  double* io_seconds) {
  adios::BpReader reader(hierarchy, path);
  const auto levels_attr = reader.attribute("levels");
  CANOPUS_CHECK(levels_attr.has_value(), "container missing 'levels' attribute");
  const auto levels = static_cast<std::size_t>(std::stoul(*levels_attr));

  GeometryCache cache;
  double io = 0.0;
  for (std::size_t l = 0; l < levels; ++l) {
    adios::ReadTiming t;
    const auto raw = reader.read_opaque(var, adios::BlockKind::kMesh,
                                        static_cast<std::uint32_t>(l), &t);
    io += t.io_sim_seconds;
    util::ByteReader br(raw);
    cache.meshes.push_back(mesh::TriMesh::deserialize(br));
  }
  for (std::size_t l = 0; l + 1 < levels; ++l) {
    adios::ReadTiming t;
    const auto raw = reader.read_opaque(var, adios::BlockKind::kMapping,
                                        static_cast<std::uint32_t>(l), &t);
    io += t.io_sim_seconds;
    util::ByteReader br(raw);
    cache.mappings.push_back(VertexMapping::deserialize(br));
  }
  if (io_seconds) *io_seconds = io;
  return cache;
}

}  // namespace canopus::core
