#pragma once
// The write side of Canopus: decimate -> delta -> compress -> place.
//
// refactor_and_write() runs the full Section III pipeline for one variable on
// one unstructured triangular mesh and persists every product (base, deltas,
// per-level meshes, restoration mappings) into a BP container across the
// storage hierarchy. The returned report carries the paper's Fig. 6b phase
// breakdown plus per-product sizes for the Fig. 5 comparison.

#include <string>
#include <vector>

#include "adios/bp.hpp"
#include "core/types.hpp"
#include "mesh/cascade.hpp"
#include "storage/hierarchy.hpp"
#include "util/timer.hpp"

namespace canopus::core {

/// Size accounting for one stored product.
struct ProductSize {
  std::string name;           // "base", "delta0", "delta1", ...
  std::uint32_t level = 0;
  std::size_t raw_bytes = 0;
  std::size_t stored_bytes = 0;
  /// Slowest (highest-index) tier holding any chunk of the product — the one
  /// that bounds a retrieval of the whole product.
  std::uint32_t tier = 0;
  /// Tier of every stored chunk, in chunk order (single-chunk products carry
  /// one entry). Hint fallback and striping policies can scatter a chunked
  /// delta across tiers, so one scalar cannot describe the placement.
  std::vector<std::uint32_t> chunk_tiers;
};

struct RefactorReport {
  /// Phase seconds: "decimation", "delta+compress", "io".
  util::PhaseTimer phases;
  std::vector<ProductSize> products;
  /// Vertex counts per level, finest first.
  std::vector<std::size_t> level_vertices;

  std::size_t total_raw_bytes() const;
  std::size_t total_stored_bytes() const;
};

/// Refactors (mesh, values) into `config.levels` accuracy levels and writes
/// them as variable `var` into the container at `path`. The input (level 0)
/// itself is not stored — only the base and the deltas, per Section III-C2.
///
/// Deprecated as a public entry point: prefer canopus::Pipeline::write()
/// (core/pipeline.hpp), which wraps this engine behind a Status-returning
/// request/response API. Kept callable for source compatibility.
///
/// The pipeline is concurrent per config.parallel: delta chunks encode in
/// parallel, the Morton permutation and per-chunk bounding boxes fan out on
/// the pool, and level l's mapping+delta computation overlaps level l+1's
/// compression commit. A single committer serializes every write into the
/// container in the same order as the serial pipeline, so placement, the
/// Fig. 6b phase accounting, and all stored bytes are bitwise-identical for
/// any thread count.
RefactorReport refactor_and_write(storage::StorageHierarchy& hierarchy,
                                  const std::string& path, const std::string& var,
                                  const mesh::TriMesh& mesh,
                                  const mesh::Field& values,
                                  const RefactorConfig& config);

/// Variant taking a prebuilt level hierarchy. Decimation is a mesh-lifetime
/// cost in a campaign (thousands of timesteps share one cascade); this entry
/// point lets callers amortize it and charge only the per-variable
/// delta+compress+place pipeline. `cascade` must have been built with the
/// same levels/step the config describes. No "decimation" phase is recorded.
RefactorReport refactor_and_write(storage::StorageHierarchy& hierarchy,
                                  const std::string& path, const std::string& var,
                                  const mesh::Cascade& cascade,
                                  const RefactorConfig& config);

/// Baseline for Fig. 5: compress every level directly (no deltas) and report
/// the same size accounting. Nothing is written to storage.
RefactorReport direct_multilevel_sizes(const mesh::TriMesh& mesh,
                                       const mesh::Field& values,
                                       const RefactorConfig& config);

}  // namespace canopus::core
