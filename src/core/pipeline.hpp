#pragma once
// The redesigned public facade: canopus::Pipeline.
//
// Before this facade the public surface had grown organically — two
// refactor_and_write overloads, a many-argument ProgressiveReader
// constructor, exceptions on some paths and RefineStatus + counters on
// others. Pipeline consolidates it: option-struct requests, one
// Status-returning entry point per direction, and one place (PipelineOptions)
// where concurrency, fault policy, and observability are configured instead
// of growing every signature.
//
//   storage::StorageHierarchy tiers({...});
//   Pipeline pipeline(tiers);
//
//   WriteRequest wreq;                       // option struct, designated-init
//   wreq.path = "run.bp"; wreq.var = "dpot";
//   wreq.mesh = &mesh; wreq.values = &values;
//   wreq.config.levels = 3;
//   Status ws = pipeline.write(wreq);
//
//   ReadRequest rreq;
//   rreq.path = "run.bp"; rreq.var = "dpot";
//   rreq.target_level = 0;                   // full accuracy
//   ReadResult data;
//   Status rs = pipeline.read(rreq, &data);  // rs.degraded => partial accuracy
//
// The pre-facade entry points (core::refactor_and_write overloads and the
// core::ProgressiveReader constructor) remain as thin deprecated wrappers
// around the same engine for source compatibility; new code should come in
// through Pipeline.

#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "cache/block_cache.hpp"
#include "core/config.hpp"
#include "core/geometry_cache.hpp"
#include "core/progressive_reader.hpp"
#include "core/refactorer.hpp"
#include "obs/observability.hpp"
#include "serve/serve_config.hpp"
#include "storage/hierarchy.hpp"

namespace canopus {

// The deadline-aware query scheduler (src/serve) plugs into the facade via
// Pipeline::submit_query(). Only forward declarations here: the serve module
// links against core, so the member functions touching these types are
// defined in src/serve/pipeline_serve.cpp and core itself never references
// serve symbols.
namespace serve {
struct QueryRequest;
struct QueryResult;
class QueryScheduler;
}  // namespace serve

/// Unified result classification for every facade operation. Replaces the
/// mixed error reporting of the pre-facade API: thrown canopus::Error /
/// storage::TierIoError / storage::IntegrityError on some paths,
/// core::RefineStatus plus robustness counters on others.
enum class StatusCode : std::uint8_t {
  kOk = 0,            // completed, no faults along the way
  kRetried = 1,       // completed after tier retries or a replica fallback
  kDegraded = 2,      // result usable but at reduced accuracy (read path)
  kInvalidArgument = 3,  // malformed request (caller bug)
  kNotFound = 4,      // container or variable does not exist
  kIoError = 5,       // tier I/O failed after every retry and replica
  kIntegrityError = 6,  // corruption detected and no clean copy remained
  kCapacity = 7,      // no tier can hold the data (write path)
  kInternal = 8,      // unexpected failure; detail carries the message
  kOverloaded = 9,    // query shed by admission control (serve path); the
                      // client should back off and retry, possibly coarser
};

std::string to_string(StatusCode code);

/// Outcome of one Pipeline operation: code + human-readable detail + whether
/// a usable-but-reduced-accuracy result was produced (the elastic-accuracy
/// contract: a degraded read keeps the last good level instead of failing).
struct Status {
  StatusCode code = StatusCode::kOk;
  std::string detail;
  bool degraded = false;

  /// Completed at full requested fidelity (kOk or kRetried).
  bool ok() const {
    return code == StatusCode::kOk || code == StatusCode::kRetried;
  }
  /// Produced a usable result (ok, or degraded with data to analyze).
  bool usable() const { return ok() || degraded; }

  std::string to_string() const;  // "code" or "code: detail"

  static Status success() { return {}; }
  static Status failure(StatusCode code, std::string detail) {
    return {code, std::move(detail), false};
  }
};

/// Everything one refactor-and-write needs. Provide either (mesh, values) —
/// the full decimate/delta/compress/place pipeline — or a prebuilt cascade
/// to amortize decimation across a campaign.
struct WriteRequest {
  std::string path;  // container name, e.g. "run.bp"
  std::string var;   // variable name, e.g. "dpot"
  const mesh::TriMesh* mesh = nullptr;
  const mesh::Field* values = nullptr;
  const mesh::Cascade* cascade = nullptr;
  /// Refactoring knobs. `config.parallel` is ignored: concurrency comes from
  /// PipelineOptions so it is configured once per pipeline, not per call.
  core::RefactorConfig config;
};

struct WriteResult {
  core::RefactorReport report;
};

/// Everything one progressive read needs. By default the variable is
/// restored to full accuracy; `target_level`, `rmse_threshold`, and `roi`
/// select the elastic alternatives.
struct ReadRequest {
  std::string path;
  std::string var;
  /// Refine until this accuracy level (0 = full accuracy, N-1 = base only).
  std::uint32_t target_level = 0;
  /// When set, stop refining once the RMS change between consecutive levels
  /// drops below this threshold (Section III-E automated termination);
  /// overrides target_level.
  std::optional<double> rmse_threshold;
  /// When set, perform one focused refinement fetching only the delta chunks
  /// intersecting this region (Section III-E ROI retrieval); overrides
  /// target_level and rmse_threshold.
  std::optional<mesh::Aabb> roi;
  /// Campaign-lifetime geometry (meshes, mappings, spatial orders); must
  /// outlive the call. Without it geometry is fetched on demand and charged
  /// to the timings.
  const core::GeometryCache* geometry = nullptr;
};

struct ReadResult {
  mesh::Field values;    // restored field at `level`
  mesh::TriMesh mesh;    // its geometry
  std::uint32_t level = 0;
  core::RetrievalTimings timings;  // includes the base retrieval
  core::RefineStatus refine_status = core::RefineStatus::kOk;
};

/// Pipeline-lifetime configuration: the one place instrumentation, fault
/// policy, and concurrency are set.
struct PipelineOptions {
  /// Worker count / pipeline overlap / read-ahead for both directions.
  core::ParallelConfig parallel;
  /// When set, obs::install()ed at construction (enables or disables
  /// process-wide metrics+tracing). Leave unset to keep the current global
  /// observability state (e.g. a bench already enabled --trace-out).
  std::optional<obs::ObservabilityOptions> observability;
  /// When set, applied to the hierarchy at construction.
  std::optional<storage::RetryPolicy> retry;
  /// When set, attached to the hierarchy at construction (seeded fault
  /// injection for robustness testing).
  std::shared_ptr<storage::FaultInjector> faults;
  /// When set, a shared BlockCache with this budget/sharding is attached to
  /// the hierarchy at construction (unless one is already attached): tier
  /// blobs and decoded chunk arrays are then shared across every reader and
  /// ReadSession of this pipeline, with single-flight loading. Leave unset
  /// for the uncached (per-reader) behavior.
  std::optional<cache::CacheConfig> cache;
  /// When set, Pipeline::submit_query()'s QueryScheduler is created with
  /// these knobs (worker count, bounded admission queue, default deadline,
  /// priority aging). Leave unset to get ServeConfig defaults on first use.
  std::optional<serve::ServeConfig> serve;
  /// Async I/O engine shape forwarded into every reader/session this
  /// pipeline opens (core::ReaderOptions::io). The depth-1 default keeps the
  /// blocking read path.
  io::IoConfig io;
};

/// One concurrent progressive-read session, created by
/// Pipeline::open_session(). Sessions wrap a ProgressiveReader behind the
/// facade's Status-returning contract (refine() never throws) and — unlike
/// Pipeline::open()'s raw readers — share the pipeline's session thread pool
/// and its block cache, so K sessions refining the same variable trigger one
/// tier fetch and one decode per chunk between them.
///
/// A session is single-threaded (one session per analytics client); many
/// sessions may run concurrently against the same Pipeline.
class ReadSession {
 public:
  ReadSession(const ReadSession&) = delete;
  ReadSession& operator=(const ReadSession&) = delete;

  /// One refinement step. Degradation (delta unreadable after retries +
  /// replica fallback) comes back as a degraded Status, not an exception.
  Status refine();
  /// Refines until `level` (inclusive) or a step degrades.
  Status refine_to(std::uint32_t level);
  /// Refines until the inter-level RMS change drops below `rmse_threshold`,
  /// full accuracy is reached, or a step degrades.
  Status refine_until(double rmse_threshold);

  const mesh::Field& values() const { return reader_->values(); }
  const mesh::TriMesh& mesh() const { return reader_->current_mesh(); }
  std::uint32_t level() const { return reader_->current_level(); }
  bool at_full_accuracy() const { return reader_->at_full_accuracy(); }
  std::size_t level_count() const { return reader_->level_count(); }
  const core::RetrievalTimings& timings() const { return reader_->cumulative(); }

  /// Escape hatch to the underlying reader (refine_region, last_status, ...).
  core::ProgressiveReader& reader() { return *reader_; }

 private:
  friend class Pipeline;
  explicit ReadSession(std::unique_ptr<core::ProgressiveReader> reader)
      : reader_(std::move(reader)) {}

  std::unique_ptr<core::ProgressiveReader> reader_;
};

class Pipeline {
 public:
  /// Borrows `hierarchy` (must outlive the pipeline).
  explicit Pipeline(storage::StorageHierarchy& hierarchy,
                    PipelineOptions options = {});
  /// Takes ownership of `hierarchy`.
  explicit Pipeline(storage::StorageHierarchy&& hierarchy,
                    PipelineOptions options = {});

  /// Builds the configured hierarchy (tiers, placement, faults, retry) and
  /// observability from an XML RuntimeConfig; the pipeline owns the result.
  static Pipeline from_config(const core::RuntimeConfig& config);
  static Pipeline from_config_file(const std::string& path);

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  storage::StorageHierarchy& hierarchy() { return *hierarchy_; }
  const storage::StorageHierarchy& hierarchy() const { return *hierarchy_; }
  const PipelineOptions& options() const { return options_; }

  /// Refactors and writes one variable. Never throws: failures come back as
  /// a Status (kInvalidArgument, kCapacity, kIoError, ...).
  Status write(const WriteRequest& request, WriteResult* result = nullptr);

  /// Retrieves one variable at the requested accuracy. Never throws. A
  /// degraded Status (usable() but not ok()) means faults stopped refinement
  /// early and `result` holds the last good level.
  Status read(const ReadRequest& request, ReadResult* result);

  /// Opens a ProgressiveReader at base accuracy for step-wise refinement
  /// (interactive analytics, ROI zooming). The reader borrows the pipeline's
  /// hierarchy and inherits its concurrency options; request.target_level /
  /// rmse_threshold / roi are ignored here.
  Status open(const ReadRequest& request,
              std::unique_ptr<core::ProgressiveReader>* reader);

  /// Opens a concurrent read session at base accuracy. Sessions share the
  /// pipeline's session thread pool (one pool for all sessions, sized by
  /// PipelineOptions::parallel.threads) and the hierarchy's block cache when
  /// one is configured, so N sessions over the same products cost ~one tier
  /// fetch + one decode per block instead of N. request.target_level /
  /// rmse_threshold / roi are ignored here; refine from the session instead.
  Status open_session(const ReadRequest& request,
                      std::unique_ptr<ReadSession>* session);

  /// Submits one deadline/priority query to the pipeline's QueryScheduler
  /// (serving-under-load entry point: bounded admission queue, per-level
  /// cost-model planning, elastic degradation). Blocks until the query
  /// completes, degrades, or is shed; never throws. kOverloaded means the
  /// admission queue was full and no work was done; a degraded Status means
  /// the deadline (or a fault) stopped refinement above the target level and
  /// `result` holds the coarser answer. Defined in the serve module
  /// (src/serve/pipeline_serve.cpp); see serve/query_scheduler.hpp.
  Status submit_query(const serve::QueryRequest& request,
                      serve::QueryResult* result);

  /// The pipeline's scheduler, created on first use from
  /// PipelineOptions::serve (or defaults); never null. Use for non-blocking
  /// submission (submit()), stats, and the pause/resume admission gate.
  serve::QueryScheduler& query_scheduler();

  /// The cache attached to the hierarchy, or nullptr (for stats in benches).
  cache::BlockCache* block_cache() const { return hierarchy_->block_cache(); }

  /// Writes the Chrome trace to the installed observability sink, if any;
  /// returns the path written ("" when no sink is configured).
  std::string flush_observability();

 private:
  Status run_read(const ReadRequest& request, ReadResult* result);
  /// Shared ctor tail: observability, retry, faults, cache, session pool.
  void apply_options();

  std::optional<storage::StorageHierarchy> owned_;
  storage::StorageHierarchy* hierarchy_;
  PipelineOptions options_;
  /// One worker pool shared by every ReadSession (sized by
  /// options_.parallel.threads; sessions fall back to the global pool when
  /// no thread count is pinned).
  std::optional<util::ThreadPool> session_pool_;
  /// Lazily created by query_scheduler() (definition lives in the serve
  /// module). Declared after session_pool_ so the scheduler's workers join
  /// before the pool they execute on is torn down. shared_ptr's type-erased
  /// deleter makes the incomplete type safe to destroy from core TUs.
  std::shared_ptr<serve::QueryScheduler> scheduler_;
  std::once_flag scheduler_once_;
};

}  // namespace canopus
